// Integration tests of the sweep daemon: an in-process Daemon serves on
// an ephemeral TCP (or Unix) socket while worker loops and raw protocol
// clients run against it from test threads.
//
// The headline property under test is the distributed byte-identity
// contract: however rows reach the daemon -- two clean workers, a worker
// killed mid-lease, duplicated results, a daemon restart -- the final
// canonical journal and aggregate CSV must equal a single-machine run of
// the same sweep byte for byte.
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sweep/aggregate.hpp"
#include "sweep/journal.hpp"
#include "sweep/runner.hpp"
#include "sweepd/client.hpp"
#include "sweepd/daemon.hpp"
#include "sweepd/protocol.hpp"
#include "sweepd/worker.hpp"
#include "util/socket.hpp"

namespace pns::sweepd {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory, removed recursively on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& stem) {
    path_ = (fs::temp_directory_path() /
             (stem + "-" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// The job every test runs: the quick preset over a tiny window.
JobSpec quick_job() {
  JobSpec spec;
  spec.preset = "quick";
  spec.minutes = 1.0;
  return spec;
}

/// Ground truth: the same sweep executed locally, as index -> row.
std::map<std::size_t, sweep::SummaryRow> local_rows(const JobSpec& spec) {
  sweep::SweepRunnerOptions opt;
  opt.threads = 2;
  const auto outcomes = sweep::SweepRunner(opt).run(spec.expand());
  std::map<std::size_t, sweep::SummaryRow> rows;
  for (std::size_t i = 0; i < outcomes.size(); ++i)
    rows.emplace(i, sweep::summarize(outcomes[i]));
  return rows;
}

/// Canonical-journal bytes of a row set (the comparable form).
std::string canonical_bytes(
    const std::string& identity, std::size_t total,
    const std::map<std::size_t, sweep::SummaryRow>& rows) {
  TempDir dir("pns-sweepd-canon");
  const std::string path = dir.path() + "/canon.jsonl";
  sweep::write_canonical_journal(path,
                                 sweep::JournalHeader{identity, total},
                                 rows);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string csv_bytes(const std::map<std::size_t, sweep::SummaryRow>& rows) {
  std::vector<sweep::SummaryRow> ordered;
  for (const auto& [i, row] : rows) ordered.push_back(row);
  std::ostringstream os;
  sweep::Aggregator(ordered).write_csv(os);
  return os.str();
}

/// An in-process daemon on an ephemeral endpoint, served from a thread.
class TestDaemon {
 public:
  explicit TestDaemon(const std::string& state_dir,
                      double lease_timeout_s = 30.0,
                      std::size_t lease_rows = 0) {
    options_.endpoint = net::Endpoint::parse("tcp:127.0.0.1:0");
    options_.state_dir = state_dir;
    options_.lease_timeout_s = lease_timeout_s;
    options_.lease_rows = lease_rows;
    options_.idle_poll_s = 0.02;  // fast idle polling keeps tests quick
    daemon_.emplace(options_);
    daemon_->bind();
    thread_ = std::thread([this] { daemon_->run(); });
  }

  ~TestDaemon() { stop(); }

  net::Endpoint endpoint() const {
    return net::Endpoint::parse("tcp:127.0.0.1:" +
                                std::to_string(daemon_->port()));
  }

  /// Stops the serve loop and joins; jobs() is safe afterwards.
  void stop() {
    if (thread_.joinable()) {
      daemon_->stop();
      thread_.join();
    }
  }

  Daemon& daemon() { return *daemon_; }

 private:
  DaemonOptions options_;
  std::optional<Daemon> daemon_;
  std::thread thread_;
};

/// A hand-driven protocol connection (for misbehaving-peer tests the
/// well-behaved worker/client helpers cannot express).
class RawConn {
 public:
  explicit RawConn(const net::Endpoint& ep)
      : conn_(net::connect_endpoint(ep)) {}

  void send(const std::string& line) {
    ASSERT_TRUE(conn_.send_line_blocking(line));
  }
  JsonValue recv() {
    std::optional<std::string> line = conn_.recv_line_blocking();
    if (!line) throw ProtocolError("peer closed");
    return parse_message(*line);
  }
  void close() { conn_.close(); }
  net::LineConn& io() { return conn_; }

 private:
  net::LineConn conn_;
};

WorkerOptions worker_options(const net::Endpoint& ep) {
  WorkerOptions w;
  w.endpoint = ep;
  w.threads = 2;
  w.once = true;
  return w;
}

void expect_distributed_equals_local(const net::Endpoint& ep,
                                     const std::string& job,
                                     const JobSpec& spec) {
  const ResultsReport report = fetch_results(ep, job);
  ASSERT_TRUE(report.complete);
  const auto local = local_rows(spec);
  ASSERT_EQ(report.rows.size(), local.size());
  EXPECT_EQ(canonical_bytes(report.identity, report.total, report.rows),
            canonical_bytes(spec.identity(), local.size(), local));
  EXPECT_EQ(csv_bytes(report.rows), csv_bytes(local));
}

// ------------------------------------------------------------- happy path

TEST(Daemon, TwoWorkersMatchLocalByteForByte) {
  TempDir state("pns-sweepd-two");
  TestDaemon td(state.path());
  const net::Endpoint ep = td.endpoint();
  const JobSpec spec = quick_job();

  const SubmitResult submitted = submit_job(ep, spec);
  EXPECT_EQ(submitted.job, "job-1");
  EXPECT_EQ(submitted.identity, spec.identity());
  EXPECT_EQ(submitted.total, spec.expand().size());

  WorkerReport r1, r2;
  std::thread w1([&] { r1 = run_worker(worker_options(ep)); });
  std::thread w2([&] { r2 = run_worker(worker_options(ep)); });
  w1.join();
  w2.join();
  EXPECT_EQ(r1.rows + r2.rows, submitted.total);

  const StatusReport status = fetch_status(ep);
  ASSERT_EQ(status.jobs.size(), 1u);
  EXPECT_TRUE(status.jobs[0].complete);
  EXPECT_EQ(status.jobs[0].done, submitted.total);
  EXPECT_EQ(status.jobs[0].duplicates, 0u);

  expect_distributed_equals_local(ep, submitted.job, spec);
}

TEST(Daemon, ServesUnixSockets) {
  TempDir state("pns-sweepd-unix");
  DaemonOptions opt;
  opt.endpoint = net::Endpoint::parse("unix:" + state.path() + "/d.sock");
  opt.state_dir = state.path();
  opt.idle_poll_s = 0.02;
  Daemon daemon(opt);
  daemon.bind();
  std::thread serve([&] { daemon.run(); });

  const SubmitResult submitted = submit_job(opt.endpoint, quick_job());
  run_worker(worker_options(opt.endpoint));
  expect_distributed_equals_local(opt.endpoint, submitted.job,
                                  quick_job());
  shutdown_daemon(opt.endpoint);  // covers the client shutdown path too
  serve.join();
}

// --------------------------------------------------------- failure paths

TEST(Daemon, WorkerKilledMidLeaseIsReLeasedAndStaysByteIdentical) {
  TempDir state("pns-sweepd-kill");
  TestDaemon td(state.path(), /*lease_timeout_s=*/30.0);
  const net::Endpoint ep = td.endpoint();
  const JobSpec spec = quick_job();
  const SubmitResult submitted = submit_job(ep, spec);
  const auto local = local_rows(spec);

  // A worker takes a lease, delivers exactly one row, then dies without
  // lease_done: the daemon must revoke on disconnect (not wait for the
  // 30 s timeout) and hand the remainder to the next worker.
  {
    RawConn evil(ep);
    evil.send(make_hello("worker", 1));
    EXPECT_EQ(message_type(evil.recv()), "hello_ok");
    evil.send(make_lease_request());
    const JsonValue lease = evil.recv();
    ASSERT_EQ(message_type(lease), "lease");
    const auto& indices = lease.at("indices").items();
    ASSERT_FALSE(indices.empty());
    const auto first =
        static_cast<std::size_t>(indices[0].as_uint64());
    evil.send(make_row(submitted.job, lease.at("lease").as_uint64(),
                       first, 0.1, local.at(first)));
    evil.close();  // mid-lease death
  }

  std::thread w([&] { run_worker(worker_options(ep)); });
  w.join();

  const StatusReport status = fetch_status(ep);
  ASSERT_EQ(status.jobs.size(), 1u);
  EXPECT_TRUE(status.jobs[0].complete);
  EXPECT_EQ(status.jobs[0].duplicates, 0u);  // revoked rows, not re-run rows
  expect_distributed_equals_local(ep, submitted.job, spec);
}

TEST(Daemon, DuplicateRowsAreAcceptedIdempotently) {
  TempDir state("pns-sweepd-dup");
  TestDaemon td(state.path());
  const net::Endpoint ep = td.endpoint();
  const JobSpec spec = quick_job();
  const SubmitResult submitted = submit_job(ep, spec);
  const auto local = local_rows(spec);

  {
    RawConn conn(ep);
    conn.send(make_lease_request());
    const JsonValue lease = conn.recv();
    ASSERT_EQ(message_type(lease), "lease");
    const auto lease_id = lease.at("lease").as_uint64();
    const auto first = static_cast<std::size_t>(
        lease.at("indices").items()[0].as_uint64());
    // The same completed row three times: replayed frames and re-leased
    // work must both fold into exactly one journalled row.
    for (int k = 0; k < 3; ++k)
      conn.send(
          make_row(submitted.job, lease_id, first, 0.1, local.at(first)));
    conn.send(make_lease_done(submitted.job, lease_id));
    // Round-trip a status request so all five sends are known-processed
    // before the connection drops.
    conn.send(make_status());
    EXPECT_EQ(message_type(conn.recv()), "status_ok");
  }

  std::thread w([&] { run_worker(worker_options(ep)); });
  w.join();

  const StatusReport status = fetch_status(ep);
  ASSERT_EQ(status.jobs.size(), 1u);
  EXPECT_TRUE(status.jobs[0].complete);
  EXPECT_EQ(status.jobs[0].done, submitted.total);
  EXPECT_EQ(status.jobs[0].duplicates, 2u);
  expect_distributed_equals_local(ep, submitted.job, spec);
}

TEST(Daemon, LeaseTimeoutReturnsRowsToThePool) {
  TempDir state("pns-sweepd-timeout");
  TestDaemon td(state.path(), /*lease_timeout_s=*/0.2);
  const net::Endpoint ep = td.endpoint();
  const JobSpec spec = quick_job();
  const SubmitResult submitted = submit_job(ep, spec);

  // This worker takes a lease and then just sits on it, connection
  // open: only the timeout can recover its rows.
  RawConn stalled(ep);
  stalled.send(make_lease_request());
  ASSERT_EQ(message_type(stalled.recv()), "lease");

  std::thread w([&] { run_worker(worker_options(ep)); });
  w.join();

  const StatusReport status = fetch_status(ep);
  ASSERT_EQ(status.jobs.size(), 1u);
  EXPECT_TRUE(status.jobs[0].complete);
  expect_distributed_equals_local(ep, submitted.job, spec);
}

TEST(Daemon, RestartResumesFromJournalByteIdentically) {
  TempDir state("pns-sweepd-restart");
  const JobSpec spec = quick_job();
  const auto local = local_rows(spec);
  std::string job_id;

  {
    TestDaemon td(state.path(), 30.0, /*lease_rows=*/4);
    const net::Endpoint ep = td.endpoint();
    const SubmitResult submitted = submit_job(ep, spec);
    job_id = submitted.job;

    // Deliver exactly one 4-row lease, then let the daemon die.
    RawConn conn(ep);
    conn.send(make_lease_request());
    const JsonValue lease = conn.recv();
    ASSERT_EQ(message_type(lease), "lease");
    const auto lease_id = lease.at("lease").as_uint64();
    for (const JsonValue& v : lease.at("indices").items()) {
      const auto i = static_cast<std::size_t>(v.as_uint64());
      conn.send(make_row(job_id, lease_id, i, 0.1, local.at(i)));
    }
    conn.send(make_lease_done(job_id, lease_id));
    conn.send(make_status());
    EXPECT_EQ(message_type(conn.recv()), "status_ok");
    td.stop();

    const std::vector<JobStatus> jobs = td.daemon().jobs();
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].done, 4u);
    EXPECT_FALSE(jobs[0].complete);
  }

  // Same state dir, fresh daemon: the job must come back with its 4
  // journalled rows and only the missing 8 get leased out.
  TestDaemon td(state.path());
  const net::Endpoint ep = td.endpoint();
  {
    const StatusReport status = fetch_status(ep);
    ASSERT_EQ(status.jobs.size(), 1u);
    EXPECT_EQ(status.jobs[0].job, job_id);
    EXPECT_EQ(status.jobs[0].done, 4u);
  }
  WorkerReport finish;
  std::thread w([&] { finish = run_worker(worker_options(ep)); });
  w.join();
  EXPECT_EQ(finish.rows, local.size() - 4);

  expect_distributed_equals_local(ep, job_id, spec);
}

// ------------------------------------------------------------- robustness

TEST(Daemon, SurvivesGarbageAndOversizedFrames) {
  TempDir state("pns-sweepd-fuzz");
  TestDaemon td(state.path());
  const net::Endpoint ep = td.endpoint();

  const char* garbage[] = {
      "not json at all",
      "{\"type\":\"submit\"",  // truncated
      "[]",
      "{\"no\":\"type\"}",
      "{\"type\":\"frobnicate\"}",  // unknown type
      "{\"type\":\"row\",\"job\":\"job-99\",\"i\":0,\"row\":{}}",
  };
  for (const char* line : garbage) {
    RawConn conn(ep);
    conn.send(line);
    // Every bad frame earns an explanatory error and a closed stream.
    const JsonValue reply = conn.recv();
    EXPECT_EQ(message_type(reply), "error") << line;
    EXPECT_FALSE(conn.io().recv_line_blocking().has_value()) << line;
  }

  {  // One line beyond the 4 MB framing limit.
    RawConn conn(ep);
    conn.send(std::string((4u << 20) + 100, 'a'));
    for (;;) {
      std::optional<std::string> line = conn.io().recv_line_blocking();
      if (!line) break;  // daemon closed on us, possibly after an error
      EXPECT_EQ(message_type(parse_message(*line)), "error");
    }
  }

  // The daemon shrugged all of it off and still serves real clients.
  const SubmitResult submitted = submit_job(ep, quick_job());
  run_worker(worker_options(ep));
  expect_distributed_equals_local(ep, submitted.job, quick_job());
}

TEST(Daemon, BadSubmissionsAreReportedWithoutDroppingTheConnection) {
  TempDir state("pns-sweepd-badsubmit");
  TestDaemon td(state.path());
  RawConn conn(td.endpoint());

  JobSpec bad = quick_job();
  bad.preset = "no-such-preset";
  conn.send(make_submit(bad));
  const JsonValue reply = conn.recv();
  ASSERT_EQ(message_type(reply), "error");
  // The error must name the valid presets, mirroring the CLI.
  EXPECT_NE(reply.at("error").as_string().find("quick"),
            std::string::npos);

  // Same connection, valid submit: still usable.
  conn.send(make_submit(quick_job()));
  EXPECT_EQ(message_type(conn.recv()), "submitted");
}

TEST(Daemon, WatchStreamsReplayAndLiveRows) {
  TempDir state("pns-sweepd-watch");
  TestDaemon td(state.path());
  const net::Endpoint ep = td.endpoint();
  const JobSpec spec = quick_job();
  const SubmitResult submitted = submit_job(ep, spec);

  std::map<std::size_t, sweep::SummaryRow> streamed;
  std::thread watcher([&] {
    watch_job(ep, submitted.job,
              [&](std::size_t i, const sweep::SummaryRow& row) {
                streamed.emplace(i, row);
              });
  });
  std::thread w([&] { run_worker(worker_options(ep)); });
  w.join();
  watcher.join();

  ASSERT_EQ(streamed.size(), submitted.total);
  EXPECT_EQ(canonical_bytes(submitted.identity, submitted.total, streamed),
            canonical_bytes(spec.identity(), submitted.total,
                            local_rows(spec)));
}

}  // namespace
}  // namespace pns::sweepd
