// Protocol-layer tests: message builders round-trip through the parser,
// malformed frames are rejected with ProtocolError (never accepted,
// never crash), JobSpecs survive their JSON form with identity intact,
// and LineConn's newline framing handles split, batched and oversized
// lines over a real socketpair.
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sweep/aggregate.hpp"
#include "sweepd/job.hpp"
#include "sweepd/protocol.hpp"
#include "util/socket.hpp"

namespace pns::sweepd {
namespace {

// ---------------------------------------------------------- messages

TEST(Protocol, BuildersRoundTripThroughParser) {
  const JsonValue hello = parse_message(make_hello("worker", 4));
  EXPECT_EQ(message_type(hello), "hello");
  EXPECT_EQ(hello.at("role").as_string(), "worker");
  EXPECT_EQ(hello.at("threads").as_uint64(), 4u);
  EXPECT_EQ(hello.at("proto").as_uint64(),
            static_cast<std::uint64_t>(kProtocolVersion));

  JobSpec spec;
  spec.preset = "quick";
  spec.minutes = 2.0;
  const JsonValue lease =
      parse_message(make_lease("job-1", 7, 30.0, spec, {3, 5, 8}));
  EXPECT_EQ(message_type(lease), "lease");
  EXPECT_EQ(lease.at("lease").as_uint64(), 7u);
  const auto& indices = lease.at("indices").items();
  ASSERT_EQ(indices.size(), 3u);
  EXPECT_EQ(indices[1].as_uint64(), 5u);
  EXPECT_EQ(JobSpec::from_json(lease.at("spec")).identity(),
            spec.identity());
}

TEST(Protocol, RowPayloadIsBitExact) {
  sweep::SummaryRow row;
  row.label = "quick/sunny/pns";
  row.ok = true;
  row.neutrality_error = -0.07518492143, row.vc_mean = 5.2999999999973;
  row.renders_per_min = 31.0 / 3.0;
  row.brownouts = 2;

  const JsonValue msg = parse_message(make_row("job-1", 9, 11, 0.25, row));
  EXPECT_EQ(msg.at("i").as_uint64(), 11u);
  EXPECT_EQ(msg.at("lease").as_uint64(), 9u);
  EXPECT_DOUBLE_EQ(msg.at("wall_s").as_double(), 0.25);
  const sweep::SummaryRow back =
      sweep::summary_row_from_json(msg.at("row"));
  EXPECT_EQ(back.label, row.label);
  // Bit-exact, not approximately equal: the distributed byte-identity
  // contract hangs on this.
  EXPECT_EQ(back.neutrality_error, row.neutrality_error);
  EXPECT_EQ(back.vc_mean, row.vc_mean);
  EXPECT_EQ(back.renders_per_min, row.renders_per_min);
  EXPECT_EQ(back.brownouts, row.brownouts);

  // lease 0 / negative wall_s are omitted from the frame entirely.
  const JsonValue bare = parse_message(make_row("job-1", 0, 3, -1.0, row));
  EXPECT_EQ(bare.find("lease"), nullptr);
  EXPECT_EQ(bare.find("wall_s"), nullptr);
}

TEST(Protocol, MalformedFramesAreRejected) {
  const char* bad[] = {
      "",                         // empty line
      "not json at all",          // garbage
      "{\"type\":\"submit\"",     // truncated document
      "[1,2,3]",                  // non-object
      "42",                       // scalar
      "{\"kind\":\"row\"}",       // object without "type"
      "{\"type\":7}",             // mistyped "type"
      "{\"type\":\"x\"}trail",    // trailing junk
  };
  for (const char* line : bad)
    EXPECT_THROW(parse_message(line), ProtocolError) << line;
}

// ----------------------------------------------------------- JobSpec

TEST(JobSpec, JsonRoundTripPreservesIdentity) {
  JobSpec spec;
  spec.preset = "table2";
  spec.minutes = 15.0;
  spec.pv_mode = ehsim::PvSource::Mode::kTabulated;
  spec.controls = {sweep::ControlSpec::parse("pns:v_q=0.04"),
                   sweep::ControlSpec::parse("gov:ondemand")};
  spec.sources = {sweep::SourceSpec::parse("shadow:depth=0.3")};
  spec.integrator = sweep::IntegratorSpec::parse("rk23pi:rtol=1e-6");
  spec.platform = sweep::PlatformSpec::parse("biglittle:big_cores=2");

  std::ostringstream os;
  JsonWriter w(os, JsonStyle::kCompact);
  spec.write_json(w);
  const JobSpec back = JobSpec::from_json(parse_json(os.str()));

  EXPECT_EQ(back.identity(), spec.identity());
  EXPECT_EQ(back.preset, "table2");
  EXPECT_EQ(back.pv_mode, ehsim::PvSource::Mode::kTabulated);
  ASSERT_EQ(back.controls.size(), 2u);
  EXPECT_EQ(back.controls[0].spec_string(),
            spec.controls[0].spec_string());
  EXPECT_EQ(back.integrator.spec_string(),
            spec.integrator.spec_string());
  EXPECT_EQ(back.platform.spec_string(), "biglittle:big_cores=2");
  // Daemon and worker must expand a travelled spec to the same list.
  EXPECT_EQ(back.expand().size(), spec.expand().size());
}

TEST(JobSpec, PlatformAbsentOnTheWireDefaultsToMono) {
  // Jobs serialised before the platform axis existed carry no
  // "platform" key; they must keep meaning the mono board.
  const JobSpec back = JobSpec::from_json(parse_json(
      "{\"preset\":\"quick\",\"minutes\":1,\"pv\":\"exact\","
      "\"controls\":[],\"sources\":[],\"integrator\":\"rk23\"}"));
  EXPECT_EQ(back.platform, sweep::PlatformSpec{});
  // And a default platform never perturbs the journal identity.
  EXPECT_EQ(back.identity().find("platform="), std::string::npos);
}

TEST(JobSpec, RejectsBadSpecs) {
  JobSpec unknown;
  unknown.preset = "no-such-preset";
  try {
    unknown.expand();
    FAIL() << "expected JobError";
  } catch (const JobError& e) {
    // The rejection must name the valid choices.
    EXPECT_NE(std::string(e.what()).find("quick"), std::string::npos);
  }

  EXPECT_THROW(JobSpec::from_json(parse_json("{\"preset\":\"quick\"}")),
               JobError);
  EXPECT_THROW(
      JobSpec::from_json(parse_json(
          "{\"preset\":\"quick\",\"minutes\":1,\"pv\":\"maybe\","
          "\"controls\":[],\"sources\":[],\"integrator\":\"rk23\"}")),
      JobError);
  EXPECT_THROW(
      JobSpec::from_json(parse_json(
          "{\"preset\":\"quick\",\"minutes\":1,\"pv\":\"exact\","
          "\"controls\":[\"bogus:kind\"],\"sources\":[],"
          "\"integrator\":\"rk23\"}")),
      JobError);
}

// ----------------------------------------------------------- framing

/// A connected socketpair wrapped in LineConns, for framing tests
/// without a real listener.
struct Pair {
  Pair(std::size_t max_line_a = 4u << 20) {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a.emplace(net::Socket(fds[0]), max_line_a);
    b.emplace(net::Socket(fds[1]));
  }
  std::optional<net::LineConn> a, b;
};

TEST(LineConn, SplitAndBatchedLinesReframe) {
  Pair p;
  // Three frames delivered as one write; a fourth arrives in two
  // pieces. The reader must yield exactly the four payloads.
  ASSERT_TRUE(p.b->send_line_blocking("one"));
  ASSERT_TRUE(p.b->send_line_blocking("two"));
  ASSERT_TRUE(p.b->send_line_blocking("three"));
  EXPECT_EQ(p.a->recv_line_blocking(), "one");

  net::set_nonblocking(p.a->fd(), true);
  std::vector<std::string> lines;
  EXPECT_EQ(p.a->read_lines(lines), net::IoStatus::kOk);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "two");
  EXPECT_EQ(lines[1], "three");

  const std::string part1 = "fou";
  const std::string part2 = "r\n";
  ASSERT_EQ(::send(p.b->fd(), part1.data(), part1.size(), 0),
            static_cast<ssize_t>(part1.size()));
  lines.clear();
  EXPECT_EQ(p.a->read_lines(lines), net::IoStatus::kOk);
  EXPECT_TRUE(lines.empty());  // incomplete frame: nothing yielded yet
  ASSERT_EQ(::send(p.b->fd(), part2.data(), part2.size(), 0),
            static_cast<ssize_t>(part2.size()));
  EXPECT_EQ(p.a->read_lines(lines), net::IoStatus::kOk);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "four");
}

TEST(LineConn, OversizedLineIsFatalNotAccepted) {
  Pair p(/*max_line_a=*/64);
  const std::string big(1000, 'x');
  ASSERT_TRUE(p.b->send_line_blocking(big));
  net::set_nonblocking(p.a->fd(), true);
  std::vector<std::string> lines;
  net::IoStatus st = net::IoStatus::kOk;
  // Drive until the overflow is detected (non-blocking: may take
  // several reads).
  for (int i = 0; i < 100 && st == net::IoStatus::kOk; ++i)
    st = p.a->read_lines(lines);
  EXPECT_EQ(st, net::IoStatus::kLineTooLong);
  EXPECT_TRUE(lines.empty());
}

TEST(LineConn, EofAfterFinalLineIsDelivered) {
  Pair p;
  ASSERT_TRUE(p.b->send_line_blocking("last"));
  p.b->close();
  EXPECT_EQ(p.a->recv_line_blocking(), "last");
  EXPECT_EQ(p.a->recv_line_blocking(), std::nullopt);
}

}  // namespace
}  // namespace pns::sweepd
