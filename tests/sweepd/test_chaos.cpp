// Chaos tests of the sweep fabric: an in-process daemon and its workers
// run under scripted fault schedules (util/fault.hpp) -- connection
// drops, short reads/writes, EINTR storms, torn journal appends, failed
// fsyncs, a worker killed mid-lease -- and the run must still finish
// with output byte-identical to an undisturbed single-machine sweep.
// Every schedule is seeded, so a failure here replays exactly.
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sweep/aggregate.hpp"
#include "sweep/journal.hpp"
#include "sweep/runner.hpp"
#include "sweepd/client.hpp"
#include "sweepd/daemon.hpp"
#include "sweepd/protocol.hpp"
#include "sweepd/worker.hpp"
#include "util/fault.hpp"
#include "util/socket.hpp"

namespace pns::sweepd {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& stem) {
    path_ = (fs::temp_directory_path() /
             (stem + "-" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

JobSpec quick_job() {
  JobSpec spec;
  spec.preset = "quick";
  spec.minutes = 1.0;
  return spec;
}

std::map<std::size_t, sweep::SummaryRow> local_rows(const JobSpec& spec) {
  sweep::SweepRunnerOptions opt;
  opt.threads = 2;
  const auto outcomes = sweep::SweepRunner(opt).run(spec.expand());
  std::map<std::size_t, sweep::SummaryRow> rows;
  for (std::size_t i = 0; i < outcomes.size(); ++i)
    rows.emplace(i, sweep::summarize(outcomes[i]));
  return rows;
}

std::string canonical_bytes(
    const std::string& identity, std::size_t total,
    const std::map<std::size_t, sweep::SummaryRow>& rows) {
  TempDir dir("pns-chaos-canon");
  const std::string path = dir.path() + "/canon.jsonl";
  sweep::write_canonical_journal(path,
                                 sweep::JournalHeader{identity, total},
                                 rows);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string csv_bytes(const std::map<std::size_t, sweep::SummaryRow>& rows) {
  std::vector<sweep::SummaryRow> ordered;
  for (const auto& [i, row] : rows) ordered.push_back(row);
  std::ostringstream os;
  sweep::Aggregator(ordered).write_csv(os);
  return os.str();
}

/// In-process daemon with optional journal-side fault injection.
class ChaosDaemon {
 public:
  ChaosDaemon(const std::string& state_dir,
              std::shared_ptr<fault::FaultInjector> fault,
              bool fsync = false, double lease_timeout_s = 30.0,
              std::size_t lease_rows = 0) {
    options_.endpoint = net::Endpoint::parse("tcp:127.0.0.1:0");
    options_.state_dir = state_dir;
    options_.fault = std::move(fault);
    options_.fsync_journal = fsync;
    options_.lease_timeout_s = lease_timeout_s;
    options_.lease_rows = lease_rows;
    options_.idle_poll_s = 0.02;
    daemon_.emplace(options_);
    daemon_->bind();
    thread_ = std::thread([this] { daemon_->run(); });
  }

  ~ChaosDaemon() { stop(); }

  net::Endpoint endpoint() const {
    return net::Endpoint::parse("tcp:127.0.0.1:" +
                                std::to_string(daemon_->port()));
  }

  void stop() {
    if (thread_.joinable()) {
      daemon_->stop();
      thread_.join();
    }
  }

  Daemon& daemon() { return *daemon_; }

 private:
  DaemonOptions options_;
  std::optional<Daemon> daemon_;
  std::thread thread_;
};

/// A fault-injected worker tuned for test time scales.
WorkerOptions chaos_worker(const net::Endpoint& ep,
                           const std::string& fault_spec,
                           std::uint64_t backoff_seed) {
  WorkerOptions w;
  w.endpoint = ep;
  w.threads = 2;
  w.once = true;
  w.heartbeat_s = 0.05;
  w.max_reconnects = 50;
  w.backoff_base_s = 0.005;
  w.backoff_cap_s = 0.05;
  w.backoff_seed = backoff_seed;
  w.fault = fault::make_injector(fault_spec);
  return w;
}

void expect_results_equal_local(const net::Endpoint& ep,
                                const std::string& job,
                                const JobSpec& spec) {
  const ResultsReport report = fetch_results(ep, job);
  ASSERT_TRUE(report.complete);
  const auto local = local_rows(spec);
  ASSERT_EQ(report.rows.size(), local.size());
  EXPECT_EQ(canonical_bytes(report.identity, report.total, report.rows),
            canonical_bytes(spec.identity(), local.size(), local));
  EXPECT_EQ(csv_bytes(report.rows), csv_bytes(local));
}

// ----------------------------------------------------------- the big one

/// One seeded chaos storm: daemon-side torn appends + one failed fsync,
/// two workers under connection drops / short IO / EINTR storms, plus a
/// deterministic mid-run worker kill. Leaves the finished run's
/// canonical-journal bytes in *out (gtest ASSERTs force a void return).
void run_chaos_storm(std::uint64_t seed, std::string* out) {
  TempDir state("pns-chaos-storm-" + std::to_string(seed));
  const JobSpec spec = quick_job();
  const auto local = local_rows(spec);

  auto daemon_fault = fault::make_injector(
      "fault:seed=" + std::to_string(seed) +
      ",torn_append=0.15,fsync_fail=3");
  ChaosDaemon cd(state.path(), daemon_fault, /*fsync=*/true);
  const net::Endpoint ep = cd.endpoint();

  // Submission itself may be rejected when the fault schedule tears the
  // journal header write: the daemon reports it cleanly and a retrying
  // client (us) just submits again -- still fully deterministic.
  SubmitResult submitted;
  for (int attempt = 0;; ++attempt) {
    try {
      submitted = submit_job(ep, spec);
      break;
    } catch (const ProtocolError&) {
      ASSERT_LT(attempt, 50);
    }
  }

  // The deterministic mid-run kill: a worker takes a lease, delivers
  // exactly one row, and dies without lease_done.
  {
    net::LineConn victim(net::connect_endpoint(ep));
    ASSERT_TRUE(victim.send_line_blocking(make_hello("worker", 1)));
    auto hello = victim.recv_line_blocking();
    ASSERT_TRUE(hello.has_value());
    ASSERT_TRUE(victim.send_line_blocking(make_lease_request()));
    auto line = victim.recv_line_blocking();
    ASSERT_TRUE(line.has_value());
    const JsonValue lease = parse_message(*line);
    ASSERT_EQ(message_type(lease), "lease");
    const auto first = static_cast<std::size_t>(
        lease.at("indices").items()[0].as_uint64());
    ASSERT_TRUE(victim.send_line_blocking(
        make_row(submitted.job, lease.at("lease").as_uint64(), first, 0.1,
                 local.at(first))));
  }  // closed: mid-lease death, lease revoked on disconnect

  // Two self-healing workers under socket-level chaos finish the job.
  const std::string worker_fault =
      "fault:seed=" + std::to_string(seed + 100) +
      ",conn_drop=0.01,short_read=0.2,short_write=0.2,eintr=0.2";
  WorkerOptions w1 = chaos_worker(ep, worker_fault, seed + 1);
  WorkerOptions w2 = chaos_worker(
      ep,
      "fault:seed=" + std::to_string(seed + 200) +
          ",conn_drop=0.01,short_read=0.2,short_write=0.2,eintr=0.2",
      seed + 2);
  WorkerReport r1, r2;
  std::thread t1([&] { r1 = run_worker(w1); });
  std::thread t2([&] { r2 = run_worker(w2); });
  t1.join();
  t2.join();

  // The chaos genuinely happened -- this was not a clean-path walkover.
  EXPECT_GT(daemon_fault->total_hits() + w1.fault->total_hits() +
                w2.fault->total_hits(),
            0u);

  // And the output is as if none of it had: byte-identical to local.
  expect_results_equal_local(ep, submitted.job, spec);

  const ResultsReport results = fetch_results(ep, submitted.job);
  cd.stop();
  EXPECT_FALSE(cd.daemon().degraded());  // healed by the end
  *out = canonical_bytes(results.identity, results.total, results.rows);
}

TEST(Chaos, StormCompletesByteIdenticalToUndisturbedRun) {
  std::string chaotic;
  run_chaos_storm(7, &chaotic);
  ASSERT_FALSE(chaotic.empty());
  const JobSpec spec = quick_job();
  const auto local = local_rows(spec);
  EXPECT_EQ(chaotic,
            canonical_bytes(spec.identity(), local.size(), local));
}

TEST(Chaos, SameSeedReproducesTheSameBytes) {
  // Same seed, same storm, same bytes -- the reproducibility half of
  // the chaos contract (per-site injection sequences are pure functions
  // of the seed; test_fault.cpp pins the sequences themselves).
  std::string first, second;
  run_chaos_storm(11, &first);
  run_chaos_storm(11, &second);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// ------------------------------------------------------------ heartbeats

TEST(Chaos, HeartbeatsKeepASlowLeaseAlivePastTheTimeout) {
  TempDir state("pns-chaos-hb");
  // One lease covers the whole job (lease_rows = 100 > 12 scenarios),
  // so while it is alive every other worker must be told "idle".
  ChaosDaemon cd(state.path(), nullptr, false, /*lease_timeout_s=*/0.3,
                 /*lease_rows=*/100);
  const net::Endpoint ep = cd.endpoint();
  const JobSpec spec = quick_job();
  const SubmitResult submitted = submit_job(ep, spec);

  // A "slow" worker: takes the whole-job lease, then only heartbeats
  // for several timeout periods before delivering.
  net::LineConn slow(net::connect_endpoint(ep));
  ASSERT_TRUE(slow.send_line_blocking(make_lease_request()));
  auto line = slow.recv_line_blocking();
  ASSERT_TRUE(line.has_value());
  const JsonValue lease = parse_message(*line);
  ASSERT_EQ(message_type(lease), "lease");
  const auto lease_id = lease.at("lease").as_uint64();

  for (int k = 0; k < 10; ++k) {  // ~1 s >> 0.3 s timeout
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_TRUE(slow.send_line_blocking(
        make_heartbeat(submitted.job, lease_id)));
  }

  // The lease must still be alive: a second worker asking for work gets
  // idle, not the re-leased rows a dead worker would have surrendered.
  {
    net::LineConn probe(net::connect_endpoint(ep));
    ASSERT_TRUE(probe.send_line_blocking(make_lease_request()));
    auto reply = probe.recv_line_blocking();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(message_type(parse_message(*reply)), "idle");
  }

  // Deliver everything; no duplicates means no revocation ever happened.
  const auto local = local_rows(spec);
  for (const JsonValue& v : lease.at("indices").items()) {
    const auto i = static_cast<std::size_t>(v.as_uint64());
    ASSERT_TRUE(slow.send_line_blocking(
        make_row(submitted.job, lease_id, i, 0.1, local.at(i))));
  }
  ASSERT_TRUE(slow.send_line_blocking(
      make_lease_done(submitted.job, lease_id)));
  ASSERT_TRUE(slow.send_line_blocking(make_status()));
  ASSERT_TRUE(slow.recv_line_blocking().has_value());

  const StatusReport status = fetch_status(ep);
  ASSERT_EQ(status.jobs.size(), 1u);
  EXPECT_TRUE(status.jobs[0].complete);
  EXPECT_EQ(status.jobs[0].duplicates, 0u);
}

TEST(Chaos, StatusReportsPerWorkerLiveness) {
  TempDir state("pns-chaos-status");
  ChaosDaemon cd(state.path(), nullptr);
  const net::Endpoint ep = cd.endpoint();
  submit_job(ep, quick_job());

  net::LineConn w(net::connect_endpoint(ep));
  ASSERT_TRUE(w.send_line_blocking(make_hello("worker", 3, 2)));
  ASSERT_TRUE(w.recv_line_blocking().has_value());
  ASSERT_TRUE(w.send_line_blocking(make_lease_request()));
  ASSERT_TRUE(w.recv_line_blocking().has_value());

  const StatusReport status = fetch_status(ep);
  ASSERT_EQ(status.worker_info.size(), 1u);
  EXPECT_EQ(status.worker_info[0].worker, 1u);
  EXPECT_EQ(status.worker_info[0].threads, 3u);
  EXPECT_EQ(status.worker_info[0].leases, 1u);
  EXPECT_EQ(status.worker_info[0].retries, 2u);
  EXPECT_GE(status.worker_info[0].last_seen_s, 0.0);
  EXPECT_LT(status.worker_info[0].last_seen_s, 30.0);
  EXPECT_FALSE(status.degraded);
}

// --------------------------------------------------------- degraded mode

TEST(Chaos, DeadDiskPausesLeasingButKeepsServing) {
  TempDir state("pns-chaos-dead");
  // Every fsync from the 2nd on fails: the header write survives, the
  // first accepted row does not, and the disk never comes back.
  ChaosDaemon cd(state.path(),
                 fault::make_injector("fault:seed=1,fsync_fail_from=2"),
                 /*fsync=*/true);
  const net::Endpoint ep = cd.endpoint();
  const JobSpec spec = quick_job();
  const SubmitResult submitted = submit_job(ep, spec);
  const auto local = local_rows(spec);

  net::LineConn w(net::connect_endpoint(ep));
  ASSERT_TRUE(w.send_line_blocking(make_lease_request()));
  auto line = w.recv_line_blocking();
  ASSERT_TRUE(line.has_value());
  const JsonValue lease = parse_message(*line);
  ASSERT_EQ(message_type(lease), "lease");
  const auto first = static_cast<std::size_t>(
      lease.at("indices").items()[0].as_uint64());
  // This row's journal append fails -> degraded, row NOT acknowledged.
  ASSERT_TRUE(w.send_line_blocking(make_row(
      submitted.job, lease.at("lease").as_uint64(), first, 0.1,
      local.at(first))));

  // Status still answers, reports the degradation, and counts no rows.
  StatusReport status = fetch_status(ep);
  EXPECT_TRUE(status.degraded);
  EXPECT_FALSE(status.degraded_reason.empty());
  ASSERT_EQ(status.jobs.size(), 1u);
  EXPECT_EQ(status.jobs[0].done, 0u);

  // Leasing is paused: a fresh worker gets idle, with the active job
  // still counted so --once workers keep polling for the recovery.
  {
    net::LineConn probe(net::connect_endpoint(ep));
    ASSERT_TRUE(probe.send_line_blocking(make_lease_request()));
    auto reply = probe.recv_line_blocking();
    ASSERT_TRUE(reply.has_value());
    const JsonValue msg = parse_message(*reply);
    ASSERT_EQ(message_type(msg), "idle");
    EXPECT_EQ(msg.at("active_jobs").as_uint64(), 1u);
  }

  // Results are still served from memory (empty but answering).
  const ResultsReport results = fetch_results(ep, submitted.job);
  EXPECT_FALSE(results.complete);
  EXPECT_TRUE(results.rows.empty());
}

TEST(Chaos, OneFailedFsyncDegradesThenHealsAndCompletes) {
  TempDir state("pns-chaos-heal");
  // Exactly the 2nd fsync fails (the first row append); every later
  // one succeeds, so the degraded daemon's probe heals it and the
  // unacknowledged row is re-leased and re-delivered.
  auto daemon_fault =
      fault::make_injector("fault:seed=1,fsync_fail=2");
  ChaosDaemon cd(state.path(), daemon_fault, /*fsync=*/true);
  const net::Endpoint ep = cd.endpoint();
  const JobSpec spec = quick_job();
  const SubmitResult submitted = submit_job(ep, spec);

  WorkerReport report;
  std::thread t([&] {
    WorkerOptions w;
    w.endpoint = ep;
    w.threads = 2;
    w.once = true;
    w.heartbeat_s = 0.05;
    report = run_worker(w);
  });
  t.join();

  EXPECT_EQ(daemon_fault->stats(fault::FaultSite::kFsync).hits, 1u);
  expect_results_equal_local(ep, submitted.job, spec);
  cd.stop();
  EXPECT_FALSE(cd.daemon().degraded());
}

}  // namespace
}  // namespace pns::sweepd
