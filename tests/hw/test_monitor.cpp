// Tests for the two-channel threshold monitor (hw/monitor): programmable
// range, quantisation, and edge reporting.
#include "hw/monitor.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace pns::hw {
namespace {

TEST(ThresholdChannel, RangeCoversBoardWindow) {
  ThresholdChannel ch;
  // The ODROID XU4 operates 4.1-5.7 V; the channel must reach past both.
  EXPECT_LT(ch.min_threshold(), 4.1);
  EXPECT_GT(ch.max_threshold(), 5.7);
}

TEST(ThresholdChannel, ThresholdMonotoneDecreasingInCode) {
  ThresholdChannel ch;
  double prev = 1e9;
  for (int c = 0; c < Mcp4131::kSteps; ++c) {
    const double th = ch.threshold_for_code(c);
    EXPECT_LT(th, prev);
    prev = th;
  }
}

TEST(ThresholdChannel, SetThresholdQuantisesClosely) {
  ThresholdChannel ch;
  for (double target = 4.2; target <= 5.6; target += 0.1) {
    const double got = ch.set_threshold(target, 5.0);
    EXPECT_NEAR(got, target, 0.02) << "target " << target;  // <20 mV
    EXPECT_DOUBLE_EQ(got, ch.threshold());
  }
}

TEST(ThresholdChannel, QuantizationErrorSmall) {
  ThresholdChannel ch;
  ch.set_threshold(5.0, 5.2);
  EXPECT_LT(ch.quantization_error(), 0.015);
  EXPECT_GT(ch.quantization_error(), 0.0);
}

TEST(ThresholdChannel, SeedingPreventsSelfTrigger) {
  ThresholdChannel ch;
  ch.set_threshold(5.0, 5.5);  // node above threshold
  EXPECT_TRUE(ch.output());
  ch.set_threshold(5.2, 5.5);  // still above
  EXPECT_TRUE(ch.output());
  ch.set_threshold(5.0, 4.5);  // node below threshold
  EXPECT_FALSE(ch.output());
}

TEST(ThresholdChannel, TripsBracketThreshold) {
  ThresholdChannel ch;
  ch.set_threshold(5.0, 5.5);
  EXPECT_GT(ch.node_rising_trip(), ch.threshold() - 0.01);
  EXPECT_LT(ch.node_falling_trip(), ch.node_rising_trip());
}

TEST(ThresholdChannel, SampleFollowsHysteresis) {
  ThresholdChannel ch;
  ch.set_threshold(5.0, 5.5);
  EXPECT_TRUE(ch.sample(5.4));
  EXPECT_FALSE(ch.sample(ch.node_falling_trip() - 0.01));
  // Inside the hysteresis band: holds low.
  EXPECT_FALSE(ch.sample(ch.threshold()));
  EXPECT_TRUE(ch.sample(ch.node_rising_trip() + 0.01));
}

TEST(ThresholdChannel, ProgramTimeMicroseconds) {
  ThresholdChannel ch;
  EXPECT_GT(ch.program_time(), 0.0);
  EXPECT_LT(ch.program_time(), 1e-3);
}

TEST(VoltageMonitor, SetThresholdsReturnsAchievedPair) {
  VoltageMonitor m;
  const auto [lo, hi] = m.set_thresholds(4.8, 5.2, 5.0);
  EXPECT_NEAR(lo, 4.8, 0.02);
  EXPECT_NEAR(hi, 5.2, 0.02);
  EXPECT_LT(lo, hi);
  EXPECT_DOUBLE_EQ(m.low_threshold(), lo);
  EXPECT_DOUBLE_EQ(m.high_threshold(), hi);
}

TEST(VoltageMonitor, RejectsInvertedThresholds) {
  VoltageMonitor m;
  EXPECT_THROW(m.set_thresholds(5.2, 4.8, 5.0), pns::ContractViolation);
}

TEST(VoltageMonitor, ReportsLowFallingEdge) {
  VoltageMonitor m;
  m.set_thresholds(4.8, 5.2, 5.0);
  EXPECT_FALSE(m.sample(5.0).has_value());
  auto edge = m.sample(4.6);
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(*edge, MonitorEdge::kLowFalling);
}

TEST(VoltageMonitor, ReportsHighRisingEdge) {
  VoltageMonitor m;
  m.set_thresholds(4.8, 5.2, 5.0);
  auto edge = m.sample(5.4);
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(*edge, MonitorEdge::kHighRising);
}

TEST(VoltageMonitor, ReportsReArmEdges) {
  VoltageMonitor m;
  m.set_thresholds(4.8, 5.2, 5.0);
  ASSERT_TRUE(m.sample(4.6).has_value());  // low falling
  auto edge = m.sample(5.0);               // back inside the window
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(*edge, MonitorEdge::kLowRising);

  ASSERT_TRUE(m.sample(5.4).has_value());  // high rising
  edge = m.sample(5.0);
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(*edge, MonitorEdge::kHighFalling);
}

TEST(VoltageMonitor, NoEdgeWhenStable) {
  VoltageMonitor m;
  m.set_thresholds(4.8, 5.2, 5.0);
  EXPECT_FALSE(m.sample(5.0).has_value());
  EXPECT_FALSE(m.sample(5.05).has_value());
  EXPECT_FALSE(m.sample(4.95).has_value());
}

TEST(VoltageMonitor, InterruptLatencyMicrosecondScale) {
  VoltageMonitor m;
  EXPECT_GT(m.interrupt_latency(), 1e-6);
  EXPECT_LT(m.interrupt_latency(), 1e-3);
}

TEST(VoltageMonitor, PowerDrawMatchesPaper) {
  // 1.61 mW measured in the paper (Section V.D).
  EXPECT_DOUBLE_EQ(VoltageMonitor::kPowerW, 1.61e-3);
}

TEST(MonitorEdgeNames, ToString) {
  EXPECT_STREQ(to_string(MonitorEdge::kLowFalling), "low-falling");
  EXPECT_STREQ(to_string(MonitorEdge::kHighRising), "high-rising");
}

// Property: for any programmed pair, a full sweep down and back up yields
// exactly one low-falling and one low-rising edge from the low channel.
class MonitorSweep : public ::testing::TestWithParam<double> {};

TEST_P(MonitorSweep, OneEdgePairPerExcursion) {
  VoltageMonitor m;
  const double centre = GetParam();
  m.set_thresholds(centre - 0.2, centre + 0.2, centre);
  int low_falling = 0, low_rising = 0;
  for (double v = centre; v > centre - 0.6; v -= 0.01) {
    auto e = m.sample(v);
    if (e && *e == MonitorEdge::kLowFalling) ++low_falling;
  }
  for (double v = centre - 0.6; v < centre; v += 0.01) {
    auto e = m.sample(v);
    if (e && *e == MonitorEdge::kLowRising) ++low_rising;
  }
  EXPECT_EQ(low_falling, 1);
  EXPECT_EQ(low_rising, 1);
}

INSTANTIATE_TEST_SUITE_P(Centres, MonitorSweep,
                         ::testing::Values(4.6, 4.9, 5.2, 5.4));

}  // namespace
}  // namespace pns::hw
