// Tests for the divider and digipot models (hw/divider, hw/digipot).
#include <gtest/gtest.h>

#include "hw/digipot.hpp"
#include "hw/divider.hpp"
#include "util/contracts.hpp"

namespace pns::hw {
namespace {

TEST(PotentialDivider, RatioAndOutput) {
  PotentialDivider d{470e3, 100e3};
  EXPECT_NEAR(d.ratio(), 100.0 / 570.0, 1e-12);
  EXPECT_NEAR(d.output(5.7), 1.0, 1e-12);
}

TEST(PotentialDivider, InverseConsistent) {
  PotentialDivider d{470e3, 52e3};
  for (double v : {4.1, 5.0, 5.7}) {
    EXPECT_NEAR(d.input_for_output(d.output(v)), v, 1e-9);
  }
}

TEST(PotentialDivider, BiasCurrent) {
  PotentialDivider d{400e3, 100e3};
  EXPECT_NEAR(d.bias_current(5.0), 1e-5, 1e-12);
}

TEST(PotentialDivider, ContractOnNonPositiveResistors) {
  PotentialDivider d{0.0, 100e3};
  EXPECT_THROW(d.ratio(), pns::ContractViolation);
}

TEST(Mcp4131, CodeRangeClamped) {
  Mcp4131 pot(20e3);
  EXPECT_EQ(pot.set_code(-5), 0);
  EXPECT_EQ(pot.set_code(500), 128);
  EXPECT_EQ(pot.set_code(64), 64);
}

TEST(Mcp4131, ResistanceEndpoints) {
  Mcp4131 pot(20e3, 75.0);
  pot.set_code(0);
  EXPECT_NEAR(pot.resistance(), 75.0, 1e-9);
  pot.set_code(128);
  EXPECT_NEAR(pot.resistance(), 20075.0, 1e-9);
}

TEST(Mcp4131, ResistanceMonotoneInCode) {
  Mcp4131 pot(10e3);
  double prev = -1.0;
  for (int c = 0; c < Mcp4131::kSteps; ++c) {
    const double r = pot.resistance_at(c);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(Mcp4131, StepResistance) {
  Mcp4131 pot(12.8e3);
  EXPECT_NEAR(pot.step_resistance(), 100.0, 1e-9);
  EXPECT_NEAR(pot.resistance_at(10) - pot.resistance_at(9),
              pot.step_resistance(), 1e-9);
}

TEST(Mcp4131, ProgramTimeScalesWithSpiClock) {
  Mcp4131 pot(10e3);
  EXPECT_NEAR(pot.program_time_s(1e6), 20e-6, 1e-12);
  EXPECT_NEAR(pot.program_time_s(10e6), 2e-6, 1e-12);
  EXPECT_THROW(pot.program_time_s(0.0), pns::ContractViolation);
}

TEST(Mcp4131, WritesCounted) {
  Mcp4131 pot(10e3);
  EXPECT_EQ(pot.writes(), 0u);
  pot.set_code(3);
  pot.set_code(4);
  EXPECT_EQ(pot.writes(), 2u);
}

TEST(Mcp4131, ConstructionContracts) {
  EXPECT_THROW(Mcp4131(0.0), pns::ContractViolation);
  EXPECT_THROW(Mcp4131(10e3, -1.0), pns::ContractViolation);
}

}  // namespace
}  // namespace pns::hw
