// Tests for the comparator model (hw/comparator).
#include "hw/comparator.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace pns::hw {
namespace {

TEST(Comparator, TripLevelsBracketReference) {
  Comparator c;
  EXPECT_GT(c.rising_trip(), c.params().v_ref);
  EXPECT_LT(c.falling_trip(), c.rising_trip());
  EXPECT_NEAR(c.rising_trip() - c.falling_trip(), c.params().hysteresis_v,
              1e-12);
}

TEST(Comparator, StartsLow) {
  Comparator c;
  EXPECT_FALSE(c.output());
}

TEST(Comparator, RisesOnlyAboveRisingTrip) {
  Comparator c;
  EXPECT_FALSE(c.update(c.rising_trip() - 1e-6));
  EXPECT_TRUE(c.update(c.rising_trip() + 1e-6));
}

TEST(Comparator, HysteresisPreventsChatter) {
  Comparator c;
  c.update(c.rising_trip() + 1e-3);  // go high
  // Small dip below the rising trip but above the falling trip: stays high.
  EXPECT_TRUE(c.update(c.params().v_ref));
  // Below the falling trip: goes low.
  EXPECT_FALSE(c.update(c.falling_trip() - 1e-6));
  // Rising back just above falling trip: stays low.
  EXPECT_FALSE(c.update(c.params().v_ref));
}

TEST(Comparator, OffsetShiftsBothTrips) {
  ComparatorParams p;
  p.offset_v = 0.01;
  Comparator biased(p);
  ComparatorParams q;
  q.offset_v = 0.0;
  Comparator ideal(q);
  EXPECT_NEAR(biased.rising_trip() - ideal.rising_trip(), 0.01, 1e-12);
  EXPECT_NEAR(biased.falling_trip() - ideal.falling_trip(), 0.01, 1e-12);
}

TEST(Comparator, ResetForcesState) {
  Comparator c;
  c.reset(true);
  EXPECT_TRUE(c.output());
  c.reset(false);
  EXPECT_FALSE(c.output());
}

TEST(Comparator, ZeroHysteresisSwitchesAtReference) {
  ComparatorParams p;
  p.hysteresis_v = 0.0;
  p.offset_v = 0.0;
  Comparator c(p);
  EXPECT_TRUE(c.update(p.v_ref + 1e-9));
  EXPECT_FALSE(c.update(p.v_ref - 1e-9));
}

TEST(Comparator, ContractChecks) {
  ComparatorParams p;
  p.v_ref = 0.0;
  EXPECT_THROW(Comparator{p}, pns::ContractViolation);
  ComparatorParams q;
  q.hysteresis_v = -1.0;
  EXPECT_THROW(Comparator{q}, pns::ContractViolation);
}

}  // namespace
}  // namespace pns::hw
