// Tests for the domain-aware governor wrapper (governors/multi_domain).
//
// Two layers: direct unit tests of the demand-arbitration and staggered
// sampling grids against a hand-built two-domain topology, and a
// differential that replays the engine's hold_until elision loop to pin
// the satellite contract: skipping wrapper ticks never skips a *due*
// domain tick, whatever the stagger. (Full-trajectory byte equality
// between elide on/off is not a meaningful contract -- segment
// boundaries feed the adaptive step controller and the per-segment
// harvest quadrature, so even a constant mono governor's metrics differ
// at the last few digits. The invariant that must hold exactly is the
// decision sequence, which is what this file compares.)
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "governors/multi_domain.hpp"
#include "soc/platform.hpp"
#include "soc/topology.hpp"
#include "util/params.hpp"

namespace pns::gov {
namespace {

soc::Domain make_domain(std::string name, soc::OppTable opps,
                        soc::CoreConfig cores, double share) {
  const soc::Platform xu4 = soc::Platform::odroid_xu4();
  const soc::PowerModelParams& pw = xu4.power.params();
  return soc::Domain{
      .name = std::move(name),
      .opps = std::move(opps),
      .power = soc::PowerModel({.board_base_w = 0.0,
                                .little = pw.little,
                                .big = pw.big}),
      .perf = soc::PerfModel(xu4.perf.params()),
      .cores = cores,
      .workload_share = share,
  };
}

/// Two domains under the demand arbiter (every joint level is a single
/// domain index step, which makes allocations easy to reason about).
soc::Platform two_domain_platform() {
  soc::PlatformTopology topo;
  topo.name = "test-md";
  topo.policy = soc::ArbiterPolicy::kDemand;
  topo.domains.push_back(make_domain(
      "little", soc::OppTable::paper_ladder(), {4, 0}, 0.4));
  topo.domains.push_back(make_domain(
      "big", soc::OppTable({0.3e9, 0.9e9, 1.5e9, 2.0e9}), {0, 4}, 0.6));
  return topo.compile();
}

GovernorContext at(double t, double util, std::size_t level,
                   const soc::Platform& p) {
  return GovernorContext{t, util, soc::OperatingPoint{level, p.min_cores}};
}

TEST(MultiDomainGovernor, RequiresMultiDomainPlatform) {
  const soc::Platform mono = soc::Platform::odroid_xu4();
  EXPECT_THROW(MultiDomainGovernor("ondemand", mono, {}),
               std::invalid_argument);
}

TEST(MultiDomainGovernor, ArbitratesDemandsOntoTheMinimalJointLevel) {
  const soc::Platform p = two_domain_platform();
  const soc::MultiDomainModel& m = *p.domains;
  const std::size_t top = m.level_count() - 1;

  MultiDomainGovernor g("ondemand", p, {});
  // Saturated utilisation: every inner governor demands its ladder top,
  // and only the all-max joint level satisfies both.
  EXPECT_EQ(g.decide(at(0.0, 1.0, 0, p)).freq_index, top);
  // Idle utilisation: every inner steps to its floor; the minimal level
  // covering {0, 0} is the all-min row.
  EXPECT_EQ(g.decide(at(0.1, 0.0, top, p)).freq_index, 0u);
}

TEST(MultiDomainGovernor, StaggeredDomainsSampleOnTheirOwnGrids) {
  const soc::Platform p = two_domain_platform();
  const soc::MultiDomainModel& m = *p.domains;
  const std::size_t top = m.level_count() - 1;
  const std::size_t big_top = m.domains[1].opps.max_index();

  ParamMap params;
  params.set("period", "0.1");
  params.set("stagger", "2");
  MultiDomainGovernor g("ondemand", p, params);

  // t=0: both domains anchor and sample; saturated -> all-max.
  EXPECT_EQ(g.decide(at(0.0, 1.0, 0, p)).freq_index, top);
  // t=0.1: only domain 0 (period 0.1) is due; domain 1 (period 0.2)
  // keeps its max demand, so the arbitrated level must still grant the
  // big domain its ladder top even though utilisation collapsed.
  const std::size_t l1 = g.decide(at(0.1, 0.0, top, p)).freq_index;
  EXPECT_EQ(m.levels[l1][1], big_top) << "big domain sampled early";
  // t=0.2: domain 1's grid fires; with idle utilisation both demands
  // drop to the floor and the wrapper releases the whole budget.
  EXPECT_EQ(g.decide(at(0.2, 0.0, l1, p)).freq_index, 0u);
}

TEST(MultiDomainGovernor, HoldUntilPromisesNothingBeforeFirstTick) {
  const soc::Platform p = two_domain_platform();
  MultiDomainGovernor g("ondemand", p, {});
  const auto ctx = at(5.0, 1.0, 0, p);
  EXPECT_EQ(g.hold_until(ctx), ctx.t);
}

TEST(MultiDomainGovernor, HoldUntilIsAFixedPointOnlyWhenDemandsAreMet) {
  const soc::Platform p = two_domain_platform();
  const std::size_t top = p.domains->level_count() - 1;
  MultiDomainGovernor g("ondemand", p, {});
  g.decide(at(0.0, 1.0, 0, p));  // demands all-max

  // Current allocation below the demand: the next tick moves, so no
  // promise may be made.
  EXPECT_EQ(g.hold_until(at(0.1, 1.0, 0, p)), 0.1);
  // At the demanded level with saturated utilisation, every inner
  // governor is at its jump-to-max fixed point: hold forever.
  EXPECT_EQ(g.hold_until(at(0.1, 1.0, top, p)),
            std::numeric_limits<double>::infinity());
}

TEST(MultiDomainGovernor, ResetReanchorsTheDomainGrids) {
  const soc::Platform p = two_domain_platform();
  const std::size_t top = p.domains->level_count() - 1;
  MultiDomainGovernor g("ondemand", p, {});
  g.decide(at(0.0, 1.0, 0, p));
  g.reset();
  // After reset the wrapper must behave like a fresh instance: no
  // promise, and the first decide re-anchors every domain at its time.
  EXPECT_EQ(g.hold_until(at(7.3, 1.0, top, p)), 7.3);
  EXPECT_EQ(g.decide(at(7.3, 1.0, 0, p)).freq_index, top);
}

TEST(MultiDomainGovernor, ParamListMergesWrapperAndInnerKeys) {
  const auto params = MultiDomainGovernor::params_for("ondemand");
  int period = 0, stagger = 0, up_threshold = 0;
  for (const auto& info : params) {
    period += info.key == "period";
    stagger += info.key == "stagger";
    up_threshold += info.key == "up_threshold";
  }
  EXPECT_EQ(period, 1);  // the wrapper's, not a duplicate inner one
  EXPECT_EQ(stagger, 1);
  EXPECT_EQ(up_threshold, 1);
}

// ------------------------------------------------- elision differential

/// One wrapper-tick trace: the joint level after each decide().
struct TickTrace {
  std::vector<double> times;
  std::vector<std::size_t> levels;
};

/// Reference run: decide at every wrapper tick, no elision.
TickTrace run_unelided(Governor& g, const soc::Platform& p, double util,
                       double period, double t_end) {
  TickTrace tr;
  std::size_t level = 0;
  for (double t = 0.0; t <= t_end + 1e-12; t += period) {
    level = g.decide(at(t, util, level, p)).freq_index;
    tr.times.push_back(t);
    tr.levels.push_back(level);
  }
  return tr;
}

/// Elided run: mirrors the engine's elision loop (sim/engine.cpp,
/// plan_segment) -- consult hold_until, quantise the hold onto the tick
/// grid with the engine's kTimeEps, skip straight to the first tick that
/// could act, decide there. Returns the ticks actually taken.
TickTrace run_elided(Governor& g, const soc::Platform& p, double util,
                     double period, double t_end) {
  constexpr double kTimeEps = 1e-9;  // sim/engine.cpp
  TickTrace tr;
  std::size_t level = 0;
  double next_tick = 0.0;
  while (next_tick <= t_end + 1e-12) {
    const double hold = g.hold_until(at(next_tick, util, level, p));
    if (hold == std::numeric_limits<double>::infinity()) break;
    double tick = next_tick;
    while (tick + kTimeEps < hold) tick += period;
    if (tick > t_end + 1e-12) break;
    level = g.decide(at(tick, util, level, p)).freq_index;
    tr.times.push_back(tick);
    tr.levels.push_back(level);
    next_tick = tick + period;
  }
  return tr;
}

TEST(MultiDomainGovernor, TickElisionNeverSkipsADueStaggeredTick) {
  // The satellite regression: per-domain governor grids must compose
  // with Governor::hold_until elision. Due times are absolute (never
  // countdown counters), so skipping wrapper ticks must never skip a
  // *due domain tick* -- the elided run's decisions must match the
  // unelided run's at the same instants, and every tick the elided run
  // chose to skip must have been a genuine no-op in the reference.
  // Non-integer staggers put domain dues between wrapper ticks, and
  // interactive's finite holds exercise the first-due-after-hold jump
  // arithmetic.
  const soc::Platform p = two_domain_platform();
  const double period = 0.1, t_end = 30.0;
  std::size_t ticks_elided = 0;  // guard against a vacuous pass
  for (const char* inner : {"ondemand", "conservative", "interactive"}) {
    for (const char* stagger : {"1", "2", "2.5", "3.7"}) {
      for (const double util : {0.0, 0.55, 1.0}) {
        ParamMap params;
        params.set("period", "0.1");
        params.set("stagger", stagger);
        MultiDomainGovernor ref(inner, p, params);
        MultiDomainGovernor el(inner, p, params);
        const TickTrace full =
            run_unelided(ref, p, util, period, t_end);
        const TickTrace skip = run_elided(el, p, util, period, t_end);

        const std::string tag = std::string(inner) + " stagger=" +
                                stagger + " util=" +
                                std::to_string(util);
        // Walk the reference; every elided decide must agree with it,
        // and every reference tick between elided decides must have
        // kept the level constant (else a due tick was skipped).
        std::size_t j = 0;
        std::size_t level = 0;
        for (std::size_t i = 0; i < full.times.size(); ++i) {
          if (j < skip.times.size() &&
              std::abs(skip.times[j] - full.times[i]) < 1e-9) {
            ASSERT_EQ(skip.levels[j], full.levels[i])
                << tag << " diverges at t=" << full.times[i];
            level = full.levels[i];
            ++j;
          } else {
            ASSERT_EQ(full.levels[i], level)
                << tag << ": reference acted at t=" << full.times[i]
                << " but the elided run skipped that tick";
          }
        }
        ASSERT_EQ(j, skip.times.size()) << tag << ": off-grid tick";
        ticks_elided += full.times.size() - skip.times.size();
      }
    }
  }
  // The differential only means something if holds actually elide work.
  EXPECT_GT(ticks_elided, 100u);
}

}  // namespace
}  // namespace pns::gov
