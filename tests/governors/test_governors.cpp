// Tests for the Linux-style governor baselines (governors/*).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "util/contracts.hpp"

#include "governors/conservative.hpp"
#include "governors/interactive.hpp"
#include "governors/ondemand.hpp"
#include "governors/performance.hpp"
#include "governors/powersave.hpp"
#include "governors/registry.hpp"
#include "governors/static_governor.hpp"
#include "governors/userspace.hpp"
#include "soc/platform.hpp"

namespace pns::gov {
namespace {

const soc::Platform& xu4() {
  static soc::Platform p = soc::Platform::odroid_xu4();
  return p;
}

GovernorContext ctx(double t, double util, std::size_t fi,
                    soc::CoreConfig cores = {4, 4}) {
  return GovernorContext{t, util, soc::OperatingPoint{fi, cores}};
}

TEST(PerformanceGovernor, AlwaysMaxFrequency) {
  PerformanceGovernor g(xu4());
  EXPECT_EQ(g.decide(ctx(0.0, 1.0, 0)).freq_index, xu4().opps.max_index());
  EXPECT_EQ(g.decide(ctx(1.0, 0.0, 3)).freq_index, xu4().opps.max_index());
}

TEST(PowersaveGovernor, AlwaysMinFrequency) {
  PowersaveGovernor g(xu4());
  EXPECT_EQ(g.decide(ctx(0.0, 1.0, 7)).freq_index, xu4().opps.min_index());
}

TEST(GovernorsPreserveCoreConfig, NoHotplug) {
  PerformanceGovernor g(xu4());
  const auto out = g.decide(ctx(0.0, 1.0, 0, {2, 1}));
  EXPECT_EQ(out.cores, (soc::CoreConfig{2, 1}));
}

TEST(UserspaceGovernor, HoldsSetSpeed) {
  UserspaceGovernor g(xu4());
  g.set_frequency_index(3);
  EXPECT_EQ(g.decide(ctx(0.0, 1.0, 7)).freq_index, 3u);
  g.set_frequency_index(99);  // clamps
  EXPECT_EQ(g.frequency_index(), xu4().opps.max_index());
}

TEST(OndemandGovernor, JumpsToMaxAboveThreshold) {
  OndemandGovernor g(xu4());
  EXPECT_EQ(g.decide(ctx(0.0, 1.0, 0)).freq_index, xu4().opps.max_index());
  EXPECT_EQ(g.decide(ctx(0.1, 0.97, 2)).freq_index, xu4().opps.max_index());
}

TEST(OndemandGovernor, ScalesDownProportionally) {
  OndemandGovernor g(xu4());
  // At max frequency with 30 % utilisation, the proportional target is
  // well below max: expect a much lower ladder index.
  const auto out = g.decide(ctx(0.0, 0.30, xu4().opps.max_index()));
  EXPECT_LT(out.freq_index, 4u);
  EXPECT_GE(xu4().opps.frequency(out.freq_index),
            1.4e9 * 0.30 / 0.95 - 1e6);  // enough capacity for the load
}

TEST(OndemandGovernor, SamplingDownFactorDelaysDrop) {
  OndemandParams p;
  p.sampling_down_factor = 3;
  OndemandGovernor g(xu4(), p);
  // Two low samples: hold; third: drop.
  EXPECT_EQ(g.decide(ctx(0.0, 0.2, 7)).freq_index, 7u);
  EXPECT_EQ(g.decide(ctx(0.1, 0.2, 7)).freq_index, 7u);
  EXPECT_LT(g.decide(ctx(0.2, 0.2, 7)).freq_index, 7u);
}

TEST(ConservativeGovernor, StepsUpGradually) {
  ConservativeGovernor g(xu4());
  std::size_t fi = 0;
  for (int i = 0; i < 3; ++i) fi = g.decide(ctx(i * 0.1, 1.0, fi)).freq_index;
  EXPECT_EQ(fi, 3u);  // one step per decision
}

TEST(ConservativeGovernor, StepsDownWhenIdle) {
  ConservativeGovernor g(xu4());
  EXPECT_EQ(g.decide(ctx(0.0, 0.1, 5)).freq_index, 4u);
}

TEST(ConservativeGovernor, HoldsInDeadband) {
  ConservativeGovernor g(xu4());
  EXPECT_EQ(g.decide(ctx(0.0, 0.5, 5)).freq_index, 5u);
}

TEST(ConservativeGovernor, FreqStepParameter) {
  ConservativeParams p;
  p.freq_step = 2;
  ConservativeGovernor g(xu4(), p);
  EXPECT_EQ(g.decide(ctx(0.0, 1.0, 0)).freq_index, 2u);
}

TEST(InteractiveGovernor, JumpsToHispeedOnLoadSpike) {
  InteractiveGovernor g(xu4());
  const auto out = g.decide(ctx(0.0, 1.0, 0));
  const double hispeed = xu4().opps.frequency(out.freq_index);
  EXPECT_NEAR(hispeed, 1.4e9 * 0.75, 0.15e9);
}

TEST(InteractiveGovernor, ClimbsAfterHispeedDelay) {
  InteractiveGovernor g(xu4());
  auto out = g.decide(ctx(0.0, 1.0, 0));       // jump to hispeed
  const auto hispeed_idx = out.freq_index;
  out = g.decide(ctx(0.005, 1.0, out.freq_index));  // within delay: hold
  EXPECT_EQ(out.freq_index, hispeed_idx);
  out = g.decide(ctx(0.05, 1.0, out.freq_index));   // past delay: climb
  EXPECT_GT(out.freq_index, hispeed_idx);
}

TEST(InteractiveGovernor, WaitsMinSampleTimeBeforeDropping) {
  InteractiveGovernor g(xu4());
  auto out = g.decide(ctx(0.0, 0.2, 5));  // light load starts clock
  EXPECT_EQ(out.freq_index, 5u);
  out = g.decide(ctx(0.02, 0.2, 5));  // still within min_sample_time
  EXPECT_EQ(out.freq_index, 5u);
  out = g.decide(ctx(0.2, 0.2, 5));  // past it: drops
  EXPECT_LT(out.freq_index, 5u);
}

TEST(StaticGovernor, PinsOperatingPoint) {
  StaticGovernor g(xu4(), {3, {2, 0}});
  const auto out = g.decide(ctx(0.0, 1.0, 7));
  EXPECT_EQ(out.freq_index, 3u);
  EXPECT_EQ(out.cores, (soc::CoreConfig{2, 0}));
}

TEST(StaticGovernor, ValidatesOpp) {
  EXPECT_THROW(StaticGovernor(xu4(), {99, {1, 0}}), pns::ContractViolation);
  EXPECT_THROW(StaticGovernor(xu4(), {0, {0, 0}}), pns::ContractViolation);
}

TEST(Registry, BuildsEveryAdvertisedGovernor) {
  for (const auto& name : available_governors()) {
    auto g = make_governor(name, xu4());
    ASSERT_NE(g, nullptr) << name;
    EXPECT_EQ(g->name(), name);
    EXPECT_GT(g->sampling_period(), 0.0);
  }
}

TEST(Registry, UnknownNameThrowsListingValidNames) {
  try {
    make_governor("warp-speed", xu4());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'warp-speed'"), std::string::npos);
    for (const auto& name : available_governors())
      EXPECT_NE(what.find(name), std::string::npos) << name;
  }
  EXPECT_THROW(governor_params("warp-speed"), std::invalid_argument);
}

TEST(Registry, ParamMapOverloadTunesGovernors) {
  const auto g = make_governor("ondemand", xu4(),
                               pns::ParamMap::parse("period=0.05,"
                                                    "up_threshold=0.5"));
  EXPECT_DOUBLE_EQ(g->sampling_period(), 0.05);
  // up_threshold=0.5: 60 % utilisation now jumps to max.
  EXPECT_EQ(g->decide({0.0, 0.6, {2, {4, 4}}}).freq_index,
            xu4().opps.max_index());

  const auto c = make_governor("conservative", xu4(),
                               pns::ParamMap::parse("freq_step=2"));
  EXPECT_EQ(c->decide({0.0, 1.0, {0, {4, 4}}}).freq_index, 2u);

  const auto u = make_governor("userspace", xu4(),
                               pns::ParamMap::parse("index=3"));
  EXPECT_EQ(u->decide({0.0, 1.0, {7, {4, 4}}}).freq_index, 3u);
}

TEST(Registry, ParamMapOverloadRejectsUnknownKeysListingValid) {
  try {
    make_governor("ondemand", xu4(), pns::ParamMap::parse("perod=0.05"));
    FAIL() << "expected ParamError";
  } catch (const pns::ParamError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'perod'"), std::string::npos);
    EXPECT_NE(what.find("period"), std::string::npos);
    EXPECT_NE(what.find("up_threshold"), std::string::npos);
  }
  // Fixed-frequency governors take no params at all.
  try {
    make_governor("powersave", xu4(), pns::ParamMap::parse("period=0.05"));
    FAIL() << "expected ParamError";
  } catch (const pns::ParamError& e) {
    EXPECT_NE(std::string(e.what()).find("no params"), std::string::npos);
  }
}

TEST(Registry, EveryAdvertisedParamHasTypeAndDefault) {
  for (const auto& name : available_governors()) {
    for (const auto& p : governor_params(name)) {
      EXPECT_FALSE(p.key.empty()) << name;
      EXPECT_FALSE(p.type.empty()) << name << "." << p.key;
      EXPECT_FALSE(p.help.empty()) << name << "." << p.key;
    }
  }
}

TEST(Registry, TableTwoGovernorsPresent) {
  const auto names = available_governors();
  for (const char* needed :
       {"performance", "powersave", "ondemand", "conservative",
        "interactive"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), needed), names.end())
        << needed;
  }
}

}  // namespace
}  // namespace pns::gov
