// Tests for parameter search (opt/*): grid and random drivers on synthetic
// objectives, plus a smoke test of the simulation-backed objective.
#include <unistd.h>

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "opt/grid_search.hpp"
#include "opt/objective.hpp"
#include "opt/random_search.hpp"
#include "sweep/journal.hpp"
#include "util/contracts.hpp"

namespace pns::opt {
namespace {

// Synthetic unimodal objective peaked at the paper's optimum.
double synthetic(const ParamSet& p) {
  if (!p.valid()) return -1.0;
  auto gauss = [](double x, double mu, double s) {
    const double d = (x - mu) / s;
    return std::exp(-0.5 * d * d);
  };
  return gauss(p.v_width, 0.144, 0.1) * gauss(p.v_q, 0.048, 0.03) *
         gauss(p.alpha, 0.12, 0.1) * gauss(p.beta, 0.48, 0.3);
}

TEST(ParamSet, ValidityRules) {
  EXPECT_TRUE((ParamSet{0.144, 0.048, 0.12, 0.48}).valid());
  EXPECT_FALSE((ParamSet{0.0, 0.048, 0.12, 0.48}).valid());   // width
  EXPECT_FALSE((ParamSet{0.144, 0.0, 0.12, 0.48}).valid());   // vq
  EXPECT_FALSE((ParamSet{0.144, 0.2, 0.12, 0.48}).valid());   // vq >= width
  EXPECT_FALSE((ParamSet{0.144, 0.048, 0.0, 0.48}).valid());  // alpha
  EXPECT_FALSE((ParamSet{0.144, 0.048, 0.5, 0.48}).valid());  // beta<=alpha
}

TEST(GridSearch, FindsPeakCell) {
  const auto grid = GridSpec::paper_neighbourhood();
  const auto result = grid_search(synthetic, grid);
  EXPECT_EQ(result.evaluated.size(), grid.size());
  // The peak cell of the synthetic objective is the paper's optimum.
  EXPECT_DOUBLE_EQ(result.best.v_width, 0.144);
  EXPECT_DOUBLE_EQ(result.best.v_q, 0.048);
  EXPECT_DOUBLE_EQ(result.best.alpha, 0.12);
  EXPECT_DOUBLE_EQ(result.best.beta, 0.48);
  EXPECT_GT(result.best_score, 0.9);
}

TEST(GridSearch, KeepsAllEvaluations) {
  GridSpec grid{{0.1, 0.2}, {0.05}, {0.1}, {0.3}};
  const auto result = grid_search(synthetic, grid);
  ASSERT_EQ(result.evaluated.size(), 2u);
  for (const auto& e : result.evaluated) EXPECT_LE(e.score, result.best_score);
}

TEST(GridSearch, EmptyAxisRejected) {
  GridSpec grid{{}, {0.05}, {0.1}, {0.3}};
  EXPECT_THROW(grid_search(synthetic, grid), pns::ContractViolation);
}

TEST(GridSearch, InvalidCombosScoredNegative) {
  // vq > width for one combination.
  GridSpec grid{{0.1}, {0.05, 0.2}, {0.1}, {0.3}};
  const auto result = grid_search(synthetic, grid);
  int invalid = 0;
  for (const auto& e : result.evaluated)
    if (e.score < 0.0) ++invalid;
  EXPECT_EQ(invalid, 1);
}

TEST(RandomSearch, DeterministicForSeed) {
  RandomSearchSpec spec;
  spec.iterations = 32;
  spec.seed = 99;
  const auto a = random_search(synthetic, spec);
  const auto b = random_search(synthetic, spec);
  ASSERT_EQ(a.evaluated.size(), b.evaluated.size());
  EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
  EXPECT_DOUBLE_EQ(a.best.v_width, b.best.v_width);
}

TEST(RandomSearch, SamplesValidParamsWithinRanges) {
  RandomSearchSpec spec;
  spec.iterations = 64;
  const auto result = random_search(synthetic, spec);
  EXPECT_EQ(result.evaluated.size(), 64u);
  for (const auto& e : result.evaluated) {
    EXPECT_TRUE(e.params.valid());
    EXPECT_GE(e.params.v_width, spec.v_width_lo);
    EXPECT_LE(e.params.v_width, spec.v_width_hi);
    EXPECT_GE(e.params.beta, spec.beta_lo);
    EXPECT_LE(e.params.beta, spec.beta_hi);
  }
}

TEST(RandomSearch, MoreIterationsNeverWorse) {
  RandomSearchSpec small;
  small.iterations = 8;
  small.seed = 7;
  RandomSearchSpec large;
  large.iterations = 64;
  large.seed = 7;
  const auto a = random_search(synthetic, small);
  const auto b = random_search(synthetic, large);
  EXPECT_GE(b.best_score, a.best_score);  // same stream prefix
}

TEST(BatchSearch, GridBatchMatchesPointwise) {
  const auto grid = GridSpec::paper_neighbourhood();
  const auto pointwise = grid_search(synthetic, grid);
  const auto batch = grid_search(batched(synthetic), grid);
  ASSERT_EQ(batch.evaluated.size(), pointwise.evaluated.size());
  for (std::size_t i = 0; i < batch.evaluated.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch.evaluated[i].score, pointwise.evaluated[i].score);
    EXPECT_DOUBLE_EQ(batch.evaluated[i].params.beta,
                     pointwise.evaluated[i].params.beta);
  }
  EXPECT_DOUBLE_EQ(batch.best_score, pointwise.best_score);
  EXPECT_DOUBLE_EQ(batch.best.v_width, pointwise.best.v_width);
}

TEST(BatchSearch, GridExpandIsCanonicalOrder) {
  GridSpec grid{{0.1, 0.2}, {0.05}, {0.1}, {0.3, 0.4}};
  const auto candidates = grid.expand();
  ASSERT_EQ(candidates.size(), 4u);
  EXPECT_DOUBLE_EQ(candidates[0].v_width, 0.1);
  EXPECT_DOUBLE_EQ(candidates[0].beta, 0.3);
  EXPECT_DOUBLE_EQ(candidates[1].beta, 0.4);  // beta innermost
  EXPECT_DOUBLE_EQ(candidates[2].v_width, 0.2);
}

TEST(BatchSearch, RandomBatchMatchesPointwise) {
  RandomSearchSpec spec;
  spec.iterations = 24;
  spec.seed = 17;
  const auto pointwise = random_search(synthetic, spec);
  const auto batch = random_search(batched(synthetic), spec);
  ASSERT_EQ(batch.evaluated.size(), pointwise.evaluated.size());
  // The candidate stream must be identical: the batch overload consumes
  // the RNG in the same order as the old interleaved loop.
  for (std::size_t i = 0; i < batch.evaluated.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch.evaluated[i].params.v_width,
                     pointwise.evaluated[i].params.v_width);
    EXPECT_DOUBLE_EQ(batch.evaluated[i].score, pointwise.evaluated[i].score);
  }
  EXPECT_DOUBLE_EQ(batch.best_score, pointwise.best_score);
}

TEST(SweepStabilityObjective, BitIdenticalToPointwiseObjective) {
  // The sweep-backed batch objective drives the same experiment entry
  // point with the same configuration, so its scores are bit-identical to
  // StabilityObjective -- parallel search changes nothing but wall-clock.
  static soc::Platform platform = soc::Platform::odroid_xu4();
  const std::uint64_t seed = 5;
  const auto pointwise = StabilityObjective::standard(platform, seed);
  const auto batch = SweepStabilityObjective::standard(platform, seed);

  const std::vector<ParamSet> candidates = {
      {0.144, 0.0479, 0.120, 0.479},  // the paper's optimum
      {0.1, 0.2, 0.1, 0.5},           // invalid: vq >= width
      {0.30, 0.05, 0.05, 0.60},
  };
  const auto scores = batch(candidates);
  ASSERT_EQ(scores.size(), candidates.size());
  EXPECT_EQ(scores[0], pointwise(candidates[0]));
  EXPECT_DOUBLE_EQ(scores[1], -1.0);
  EXPECT_EQ(scores[2], pointwise(candidates[2]));
}

TEST(SweepStabilityObjective, JournalCheckpointsEvaluations) {
  static soc::Platform platform = soc::Platform::odroid_xu4();
  const auto tmp = std::filesystem::temp_directory_path() /
                   ("pns-opt-journal-" + std::to_string(::getpid()) +
                    ".jsonl");
  std::filesystem::remove(tmp);

  SweepObjectiveOptions oopt;
  oopt.threads = 2;
  oopt.journal_path = tmp.string();
  // Short window: this test pays for real simulations.
  sweep::ScenarioSpec base;
  base.platform = platform;
  base.condition = trace::WeatherCondition::kPartialSun;
  base.t_start = 12.0 * 3600.0;
  base.t_end = base.t_start + 60.0;
  base.seed = 3;
  const SweepStabilityObjective objective(base, oopt);

  const std::vector<ParamSet> candidates = {
      {0.144, 0.0479, 0.120, 0.479}, {0.2, 0.08, 0.1, 0.3}};
  const auto first = objective(candidates);
  // Second evaluation answers from the journal; scores must be identical
  // (and the journal holds one row per valid candidate).
  const auto second = objective(candidates);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(first[i], second[i]);
  const auto journal = sweep::read_journal(tmp.string());
  EXPECT_EQ(journal.rows.size(), candidates.size());

  // A changed base scenario (different seed/window/weather) must refuse
  // the journal instead of silently returning the old study's scores.
  sweep::ScenarioSpec other = base;
  other.seed = base.seed + 1;
  const SweepStabilityObjective mismatched(other, oopt);
  EXPECT_THROW(mismatched(candidates), sweep::JournalError);
  std::filesystem::remove(tmp);
}

TEST(StabilityObjective, ScoresRealSimulation) {
  // Tiny scenario to keep the test fast: 2 simulated minutes.
  static soc::Platform platform = soc::Platform::odroid_xu4();
  sim::SolarScenario scenario;
  scenario.condition = trace::WeatherCondition::kFullSun;
  scenario.t_start = 12.0 * 3600.0;
  scenario.t_end = scenario.t_start + 120.0;
  auto cfg = sim::solar_sim_config(scenario);
  cfg.record_series = false;
  StabilityObjective obj(platform, scenario, cfg);

  const double good = obj(ParamSet{0.144, 0.0479, 0.120, 0.479});
  EXPECT_GE(good, 0.0);
  EXPECT_LE(good, 1.0);
  EXPECT_GT(good, 0.3);  // paper-tuned parameters hold the band mostly

  const double invalid = obj(ParamSet{0.1, 0.2, 0.1, 0.5});
  EXPECT_DOUBLE_EQ(invalid, -1.0);
}

}  // namespace
}  // namespace pns::opt
