#!/bin/sh
# CLI contract tests for pns_sweep, registered with ctest.
#
#   pns_sweep_cli_test.sh /path/to/pns_sweep
#
# Covers the error surfaces (unknown sweep/flag must name the valid
# choices and exit non-zero, inconsistent flag combinations are refused)
# and the checkpoint workflows end-to-end on the quick preset: a 2-shard
# run merged, and an interrupted run resumed, must both produce a CSV
# byte-identical to a single uninterrupted run.
set -eu

BIN=$1
[ -x "$BIN" ] || { echo "pns_sweep binary not found: $BIN"; exit 1; }

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fails=0
fail() { echo "FAIL: $1"; fails=$((fails + 1)); }

# --- diagnostics: unknown sweep / flag list the valid choices, exit != 0
if "$BIN" no-such-sweep >out.txt 2>err.txt; then
  fail "unknown sweep exited 0"
fi
grep -q "valid sweeps:" err.txt || fail "unknown sweep: choices not listed"
grep -q "table2" err.txt || fail "unknown sweep: table2 missing from choices"

if "$BIN" quick --no-such-flag >out.txt 2>err.txt; then
  fail "unknown flag exited 0"
fi
grep -q "unknown option: --no-such-flag" err.txt || \
  fail "unknown flag not named in diagnostics"

if "$BIN" quick --pv-mode warp >out.txt 2>err.txt; then
  fail "bad --pv-mode exited 0"
fi
grep -q "valid: exact, tabulated" err.txt || \
  fail "bad --pv-mode: choices not listed"

"$BIN" --help >/dev/null 2>&1 || fail "--help exited non-zero"

# --- refused flag combinations
"$BIN" quick --shard 0/2 --quiet 2>/dev/null && fail "--shard without --journal accepted"
"$BIN" quick --resume --quiet 2>/dev/null && fail "--resume without --journal accepted"
"$BIN" quick --shard 2/2 --journal j.jsonl --quiet 2>/dev/null && fail "--shard K>=N accepted"
"$BIN" quick --shard x/y --journal j.jsonl --quiet 2>/dev/null && fail "malformed --shard accepted"
"$BIN" quick --shard 0/2 --journal j.jsonl --csv p.csv --quiet 2>/dev/null && \
  fail "--shard with --csv accepted (partial aggregate)"
"$BIN" quick --refine --refine-metric bogus --quiet 2>/dev/null && \
  fail "unknown --refine-metric accepted"

# --- the list subcommand is generated from the registries
"$BIN" list >list.txt 2>&1 || fail "list exited non-zero"
for needle in "pns" "gov:ondemand" "static" "solar" "shadow" "trace" \
              "flicker" "period=<double>" "up_threshold=<double>" \
              "rk23" "rk23pi" "rk23batch" "coast=<bool>" "width=<uint>" \
              "table2" "quick"; do
  grep -q "$needle" list.txt || fail "list: '$needle' missing"
done

# --- control/source spec-string diagnostics name the valid choices
if "$BIN" quick --control warp-speed >out.txt 2>err.txt; then
  fail "unknown control kind exited 0"
fi
grep -q "gov:ondemand" err.txt || fail "unknown control: kinds not listed"
if "$BIN" quick --control pns:warp=1 >out.txt 2>err.txt; then
  fail "unknown control param exited 0"
fi
grep -q "v_q" err.txt || fail "unknown control param: keys not listed"
if "$BIN" quick --source flicker:period=abc >out.txt 2>err.txt; then
  fail "malformed source param value exited 0"
fi
grep -q "expected a number" err.txt || \
  fail "malformed source value: no type diagnostic"

# --- integrator spec strings: diagnostics + end-to-end run
if "$BIN" quick --integrator rk99 >out.txt 2>err.txt; then
  fail "unknown integrator kind exited 0"
fi
grep -q "rk23pi" err.txt || fail "unknown integrator: kinds not listed"
if "$BIN" quick --integrator rk23pi:warp=1 >out.txt 2>err.txt; then
  fail "unknown integrator param exited 0"
fi
grep -q "rtol" err.txt || fail "unknown integrator param: keys not listed"
"$BIN" quick --quiet --integrator rk23pi --csv pi.csv >/dev/null || \
  fail "rk23pi run failed"
"$BIN" quick --quiet --integrator rk23pi --threads 4 --csv pi4.csv \
  >/dev/null || fail "rk23pi threaded run failed"
cmp -s pi.csv pi4.csv || fail "rk23pi CSV differs across thread counts"

# --- rk23batch is an execution strategy over rk23pi: byte-identical
# aggregates at every width and thread count, width=1 included
"$BIN" quick --quiet --integrator rk23batch --csv bat.csv >/dev/null || \
  fail "rk23batch run failed"
"$BIN" quick --quiet --integrator rk23batch:width=1 --csv bat1.csv \
  >/dev/null || fail "rk23batch width=1 run failed"
"$BIN" quick --quiet --integrator rk23batch:width=4 --threads 4 \
  --csv bat4.csv >/dev/null || fail "rk23batch width=4 threaded run failed"
cmp -s pi.csv bat.csv || fail "rk23batch CSV differs from rk23pi"
cmp -s pi.csv bat1.csv || fail "rk23batch width=1 CSV differs from rk23pi"
cmp -s pi.csv bat4.csv || \
  fail "rk23batch width=4/threads=4 CSV differs from rk23pi"

# --- width is execution-only: journals interchange across widths
"$BIN" quick --quiet --integrator rk23batch:width=4 --journal w.jsonl \
  >/dev/null || fail "journalled rk23batch run failed"
"$BIN" quick --quiet --integrator rk23batch:width=8 --resume \
  --journal w.jsonl >/dev/null || \
  fail "journal not reusable across rk23batch widths"

# --- a parameterized governor runs end-to-end from the CLI
"$BIN" quick --quiet --control gov:ondemand:period=0.05 --control pns \
  --csv tuned.csv >/dev/null || fail "parameterized governor run failed"
grep -q "gov:ondemand" tuned.csv || fail "tuned run: governor row missing"

# --- the flicker and trace sources run end-to-end from the CLI
"$BIN" quick --quiet --source flicker:period=30,depth=0.5 --csv flick.csv \
  >/dev/null || fail "flicker source run failed"
grep -q "flicker" flick.csv || fail "flicker run: condition cell missing"
printf "t,wm2\n0,0\n43200,800\n86400,0\n" > day.csv
"$BIN" quick --quiet --source "trace:file=day.csv" --csv traced.csv \
  >/dev/null || fail "trace source run failed"
grep -q "trace" traced.csv || fail "trace run: condition cell missing"

# --- journal identity pins the control/source spec strings
"$BIN" quick --quiet --control gov:ondemand:period=0.05 \
  --journal spec.jsonl >/dev/null || fail "journalled tuned run failed"
if "$BIN" quick --quiet --control gov:ondemand:period=0.1 --resume \
  --journal spec.jsonl >/dev/null 2>err.txt; then
  fail "journal reused across differing --control specs"
fi
grep -q "gov:ondemand:period=0.05" err.txt || \
  fail "identity mismatch: original spec string not named"

# --- reference: one uninterrupted run
"$BIN" quick --quiet --csv ref.csv --json ref.json >/dev/null || \
  fail "reference quick run failed"

# --- 2-shard + merge is byte-identical
"$BIN" quick --quiet --shard 0/2 --journal s0.jsonl >/dev/null || fail "shard 0/2 failed"
"$BIN" quick --quiet --shard 1/2 --journal s1.jsonl >/dev/null || fail "shard 1/2 failed"
"$BIN" merge --quiet --csv merged.csv --json merged.json s0.jsonl s1.jsonl >/dev/null || \
  fail "merge failed"
cmp -s ref.csv merged.csv || fail "merged CSV differs from single-run CSV"
cmp -s ref.json merged.json || fail "merged JSON differs from single-run JSON"

# --- merge of an incomplete journal set is an error
if "$BIN" merge --quiet --csv partial.csv s0.jsonl >/dev/null 2>err.txt; then
  fail "merge of one shard exited 0"
fi
grep -q "missing" err.txt || fail "incomplete merge: no missing-shards message"

# --- interrupt (one shard's worth of progress) + resume is byte-identical
"$BIN" quick --quiet --shard 0/2 --journal r.jsonl >/dev/null || fail "partial run failed"
"$BIN" quick --quiet --journal r.jsonl --csv resumed.csv >/dev/null 2>&1 && \
  fail "existing journal without --resume accepted"
"$BIN" quick --quiet --resume --journal r.jsonl --csv resumed.csv >resume_out.txt || \
  fail "resume failed"
grep -q "resumed from journal" resume_out.txt || fail "resume did not reuse journal rows"
cmp -s ref.csv resumed.csv || fail "resumed CSV differs from single-run CSV"

# --- a journal from different sweep parameters is refused
"$BIN" quick --quiet --minutes 5 --resume --journal r.jsonl 2>err.txt && \
  fail "journal reused across differing --minutes"

# --- a journal under a different --integrator is refused
"$BIN" quick --quiet --integrator rk23pi --resume --journal r.jsonl \
  2>err.txt && fail "journal reused across differing --integrator"

# --- compact: rewritten journal resumes byte-identically
"$BIN" quick --quiet --journal c.jsonl >/dev/null || fail "compact prep run failed"
"$BIN" compact c.jsonl >compact_out.txt || fail "compact failed"
grep -q "compacted" compact_out.txt || fail "compact: no summary line"
[ "$(wc -l < c.jsonl)" -eq 2 ] || fail "compacted journal is not 2 lines"
"$BIN" quick --quiet --resume --journal c.jsonl --csv compacted.csv \
  >compact_resume.txt || fail "resume from compacted journal failed"
grep -q "12 resumed from journal" compact_resume.txt || \
  fail "compacted resume re-simulated scenarios"
cmp -s ref.csv compacted.csv || fail "compacted-resume CSV differs"
"$BIN" compact >/dev/null 2>&1 && fail "compact without a journal accepted"

# --- cost-balanced sharding: planned shards merge byte-identically
"$BIN" quick --quiet --cost-journal c.jsonl 2>/dev/null && \
  fail "--cost-journal without --shard accepted"
"$BIN" quick --quiet --shard 0/2 --journal b0.jsonl --cost-journal c.jsonl \
  >/dev/null || fail "cost-balanced shard 0/2 failed"
"$BIN" quick --quiet --shard 1/2 --journal b1.jsonl --cost-journal c.jsonl \
  >/dev/null || fail "cost-balanced shard 1/2 failed"
"$BIN" merge --quiet --csv balanced.csv b0.jsonl b1.jsonl >/dev/null || \
  fail "merge of cost-balanced shards failed"
cmp -s ref.csv balanced.csv || fail "cost-balanced merged CSV differs"

if [ "$fails" -ne 0 ]; then
  echo "$fails CLI check(s) failed"
  exit 1
fi
echo "all CLI checks passed"
