#!/bin/sh
# CLI contract tests for the sweep daemon, registered with ctest.
#
#   pns_sweepd_cli_test.sh /path/to/pns_sweep /path/to/pns_sweepd
#
# Covers the daemon-mode error surfaces, then the distributed workflows
# end-to-end over real processes and sockets: a 2-worker run, a run with
# a worker kill -9'd mid-sweep (re-lease path), a daemon restart
# (journal reload path), and a seeded `--fault` chaos run (injected
# connection drops, short IO, a failed fsync) must all publish a
# canonical journal, CSV and JSON byte-identical to a single-machine run
# of the same sweep.
set -eu

BIN=$1
DAEMON=$2
[ -x "$BIN" ] || { echo "pns_sweep binary not found: $BIN"; exit 1; }
[ -x "$DAEMON" ] || { echo "pns_sweepd binary not found: $DAEMON"; exit 1; }

WORK=$(mktemp -d)
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT
cd "$WORK"

fails=0
fail() { echo "FAIL: $1"; fails=$((fails + 1)); }

# Starts $DAEMON with the given args, scrapes the bound address into
# $ADDR and the pid into $DAEMON_PID. daemon.out is truncated *before*
# the spawn: the background child redirects it asynchronously, so a
# restart could otherwise scrape the previous daemon's address.
start_daemon() {
  : >daemon.out
  "$DAEMON" "$@" >>daemon.out 2>daemon.log &
  DAEMON_PID=$!
  i=0
  while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's/^listening on \(.*\)$/\1/p' daemon.out)
    [ -n "$ADDR" ] && return 0
    kill -0 "$DAEMON_PID" 2>/dev/null || { cat daemon.log; return 1; }
    sleep 0.1
    i=$((i + 1))
  done
  return 1
}

stop_daemon() {
  kill "$1" 2>/dev/null || true
  wait "$1" 2>/dev/null || true
  DAEMON_PID=""
}

# --- error surfaces ----------------------------------------------------
"$DAEMON" >out.txt 2>err.txt && fail "pns_sweepd without --listen exited 0"
if "$DAEMON" --listen bogus-endpoint >out.txt 2>err.txt; then
  fail "bad --listen accepted"
fi
grep -q "unix:" err.txt || fail "bad --listen: accepted forms not named"

"$BIN" worker >out.txt 2>err.txt && fail "worker without --connect exited 0"
grep -q -- "--connect" err.txt || fail "worker: --connect not named"
"$BIN" submit --connect tcp:1 >out.txt 2>err.txt && \
  fail "submit without a sweep name exited 0"
"$BIN" results --connect tcp:1 >out.txt 2>err.txt && \
  fail "results without a job id exited 0"
"$BIN" quick --connect tcp:1 --quiet >out.txt 2>err.txt && \
  fail "--connect on a plain sweep run accepted"
"$BIN" quick --fsync --quiet >out.txt 2>err.txt && \
  fail "--fsync without --journal accepted"
if "$BIN" status --connect "tcp:127.0.0.1:1" >out.txt 2>err.txt; then
  fail "status against a dead endpoint exited 0"
fi

# --- daemon lifecycle + 2-worker quick run -----------------------------
mkdir state
start_daemon --listen tcp:0 --state-dir state --fsync --idle-poll 0.05 || \
  { fail "daemon did not start"; exit 1; }

"$BIN" submit quick --connect "$ADDR" >submit.txt || fail "submit failed"
grep -q "job-1" submit.txt || fail "submit: no job id reported"
grep -q "12 scenarios" submit.txt || fail "submit: scenario count missing"

# An unknown preset is rejected daemon-side, naming the valid choices.
if "$BIN" submit no-such-sweep --connect "$ADDR" >out.txt 2>err.txt; then
  fail "submit of unknown preset exited 0"
fi
grep -q "quick" err.txt || fail "submit rejection: presets not named"

# results of an unfinished job must refuse to publish files.
if "$BIN" results job-1 --connect "$ADDR" --csv early.csv \
    >out.txt 2>err.txt; then
  fail "results --csv of incomplete job exited 0"
fi
grep -q "wait for completion" err.txt || \
  fail "incomplete results: no completion hint"

"$BIN" worker --connect "$ADDR" --once --quiet >w1.txt &
W1=$!
"$BIN" worker --connect "$ADDR" --once --quiet >w2.txt &
W2=$!
wait "$W1" || fail "worker 1 failed"
wait "$W2" || fail "worker 2 failed"

"$BIN" status --connect "$ADDR" >status.txt || fail "status failed"
grep -q "complete" status.txt || fail "status: job-1 not complete"

"$BIN" results job-1 --connect "$ADDR" --quiet \
  --journal dist.canon.jsonl --csv dist.csv --json dist.json >/dev/null || \
  fail "results failed"

# The single-machine reference, canonicalised through merge --journal.
"$BIN" quick --quiet --journal local.jsonl --csv local.csv \
  --json local.json >/dev/null || fail "local reference run failed"
"$BIN" merge --quiet --journal local.canon.jsonl local.jsonl >/dev/null || \
  fail "merge --journal failed"
cmp -s local.canon.jsonl dist.canon.jsonl || \
  fail "distributed canonical journal differs from local run"
cmp -s local.csv dist.csv || fail "distributed CSV differs from local run"
cmp -s local.json dist.json || fail "distributed JSON differs from local run"

# --- worker killed mid-sweep: re-lease, still byte-identical ----------
"$BIN" submit table2 --minutes 10 --connect "$ADDR" >submit2.txt || \
  fail "table2 submit failed"
grep -q "job-2" submit2.txt || fail "second job id is not job-2"

"$BIN" worker --connect "$ADDR" --threads 1 --quiet >victim.txt 2>&1 &
VICTIM=$!
sleep 0.4
kill -9 "$VICTIM" 2>/dev/null || fail "victim worker already gone"
wait "$VICTIM" 2>/dev/null || true

"$BIN" worker --connect "$ADDR" --once --quiet >w3.txt &
W3=$!
"$BIN" worker --connect "$ADDR" --once --quiet >w4.txt &
W4=$!
wait "$W3" || fail "worker 3 failed"
wait "$W4" || fail "worker 4 failed"

"$BIN" results job-2 --connect "$ADDR" --quiet \
  --journal kill.canon.jsonl --csv kill.csv >/dev/null || \
  fail "results after worker kill failed"
"$BIN" table2 --minutes 10 --quiet --journal t2.jsonl --csv t2.csv \
  >/dev/null || fail "local table2 reference failed"
"$BIN" merge --quiet --journal t2.canon.jsonl t2.jsonl >/dev/null || \
  fail "table2 merge --journal failed"
cmp -s t2.canon.jsonl kill.canon.jsonl || \
  fail "canonical journal differs after worker kill"
cmp -s t2.csv kill.csv || fail "CSV differs after worker kill"

# --- daemon restart: jobs reload from the state dir -------------------
stop_daemon "$DAEMON_PID"
start_daemon --listen tcp:0 --state-dir state --idle-poll 0.05 || \
  { fail "daemon did not restart"; exit 1; }
"$BIN" status --connect "$ADDR" >status2.txt || \
  fail "status after restart failed"
grep -q "job-1" status2.txt || fail "restart: job-1 lost"
grep -q "job-2" status2.txt || fail "restart: job-2 lost"
"$BIN" results job-2 --connect "$ADDR" --quiet --csv restart.csv \
  >/dev/null || fail "results after restart failed"
cmp -s t2.csv restart.csv || fail "CSV differs after daemon restart"

# --- orderly shutdown over the protocol -------------------------------
"$BIN" shutdown --connect "$ADDR" >shutdown.txt || fail "shutdown failed"
wait "$DAEMON_PID" || fail "daemon exited non-zero after shutdown"
DAEMON_PID=""

# --- the same flows over a Unix socket --------------------------------
start_daemon --listen "unix:$WORK/d.sock" --state-dir "$WORK/ustate" || \
  { fail "unix-socket daemon did not start"; exit 1; }
[ "$ADDR" = "unix:$WORK/d.sock" ] || fail "unix daemon printed '$ADDR'"
"$BIN" submit quick --connect "$ADDR" >/dev/null || fail "unix submit failed"
"$BIN" worker --connect "$ADDR" --once --quiet >/dev/null || \
  fail "unix worker failed"
"$BIN" results job-1 --connect "$ADDR" --quiet --csv unix.csv \
  >/dev/null || fail "unix results failed"
cmp -s local.csv unix.csv || fail "unix-socket CSV differs from local run"
"$BIN" shutdown --connect "$ADDR" >/dev/null || fail "unix shutdown failed"
wait "$DAEMON_PID" || fail "unix daemon exited non-zero"
DAEMON_PID=""

# --- chaos: a seeded --fault run stays byte-identical ------------------
# Bad fault specs are rejected up front, naming the accepted keys.
if "$DAEMON" --listen tcp:0 --state-dir nostate \
    --fault "fault:frobnicate=1" >out.txt 2>err.txt; then
  fail "daemon accepted a bogus --fault spec"
fi
grep -q "conn_drop" err.txt || fail "bad --fault: accepted keys not named"
if "$BIN" worker --connect tcp:1 --fault "fault:conn_drop=2" \
    >out.txt 2>err.txt; then
  fail "worker accepted an out-of-range --fault probability"
fi

# Daemon under a transient injected fsync failure (degrades, self-heals)
# and workers under seeded connection drops / short IO / EINTR storms:
# the published artifacts must still equal the clean local run byte for
# byte -- the same files the 2-worker section produced above.
mkdir chaos-state
start_daemon --listen tcp:0 --state-dir chaos-state --fsync \
    --idle-poll 0.05 --fault "fault:seed=7,fsync_fail=3" || \
  { fail "chaos daemon did not start"; exit 1; }
"$BIN" submit quick --connect "$ADDR" >/dev/null || \
  fail "chaos submit failed"

# Per-worker liveness in status: park a long-lived worker and wait for
# its heartbeat row to appear.
"$BIN" worker --connect "$ADDR" --quiet \
    --fault "fault:seed=301,short_read=0.2,short_write=0.2,eintr=0.2" \
    >wl.txt 2>&1 &
LIVEW=$!
i=0
seen=""
while [ $i -lt 100 ]; do
  "$BIN" status --connect "$ADDR" >cstatus.txt 2>/dev/null || true
  if grep -q "thread(s)" cstatus.txt; then seen=1; break; fi
  sleep 0.1
  i=$((i + 1))
done
[ -n "$seen" ] || fail "status never showed a per-worker liveness row"
grep -q "last seen" cstatus.txt || fail "status: heartbeat age missing"

# Two chaos workers finish whatever the parked one leaves; then release
# the parked worker (its job is gone, it exits on the daemon shutdown
# below, so just kill it once the job completes).
"$BIN" worker --connect "$ADDR" --once --quiet \
    --fault "fault:seed=302,conn_drop=0.01,short_read=0.2,short_write=0.2,eintr=0.2" \
    >cw1.txt || fail "chaos worker 1 failed"
"$BIN" worker --connect "$ADDR" --once --quiet \
    --fault "fault:seed=303,conn_drop=0.01,short_read=0.2,short_write=0.2,eintr=0.2" \
    >cw2.txt || fail "chaos worker 2 failed"
kill "$LIVEW" 2>/dev/null || true
wait "$LIVEW" 2>/dev/null || true

"$BIN" status --connect "$ADDR" >cstatus2.txt || fail "chaos status failed"
grep -q "complete" cstatus2.txt || fail "chaos job did not complete"
grep -q "DEGRADED" cstatus2.txt && \
  fail "daemon still degraded after transient fsync fault"

"$BIN" results job-1 --connect "$ADDR" --quiet \
  --journal chaos.canon.jsonl --csv chaos.csv --json chaos.json \
  >/dev/null || fail "chaos results failed"
cmp -s local.canon.jsonl chaos.canon.jsonl || \
  fail "chaos canonical journal differs from clean run"
cmp -s local.csv chaos.csv || fail "chaos CSV differs from clean run"
cmp -s local.json chaos.json || fail "chaos JSON differs from clean run"

"$BIN" shutdown --connect "$ADDR" >/dev/null || fail "chaos shutdown failed"
wait "$DAEMON_PID" || fail "chaos daemon exited non-zero"
DAEMON_PID=""

if [ "$fails" -ne 0 ]; then
  echo "$fails daemon CLI check(s) failed"
  exit 1
fi
echo "all daemon CLI checks passed"
