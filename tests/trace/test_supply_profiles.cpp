// Tests for supply profiles (trace/supply_profiles) and trace persistence
// (trace/trace_io).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/supply_profiles.hpp"
#include "trace/trace_io.hpp"
#include "util/contracts.hpp"

namespace pns::trace {
namespace {

TEST(SupplyProfile, EmptyProfileIsConstant) {
  SupplyProfile p(5.0);
  EXPECT_DOUBLE_EQ(p.at(0.0), 5.0);
  EXPECT_DOUBLE_EQ(p.at(100.0), 5.0);
  EXPECT_DOUBLE_EQ(p.duration(), 0.0);
}

TEST(SupplyProfile, HoldKeepsValue) {
  SupplyProfile p(5.0);
  p.hold(10.0);
  EXPECT_DOUBLE_EQ(p.at(5.0), 5.0);
  EXPECT_DOUBLE_EQ(p.duration(), 10.0);
}

TEST(SupplyProfile, RampInterpolates) {
  SupplyProfile p(4.0);
  p.ramp_to(6.0, 10.0);
  EXPECT_DOUBLE_EQ(p.at(0.0), 4.0);
  EXPECT_DOUBLE_EQ(p.at(5.0), 5.0);
  EXPECT_DOUBLE_EQ(p.at(10.0), 6.0);
  EXPECT_DOUBLE_EQ(p.at(20.0), 6.0);  // clamps to final value
}

TEST(SupplyProfile, StepIsInstant) {
  SupplyProfile p(4.0);
  p.hold(1.0).step_to(5.5).hold(1.0);
  EXPECT_DOUBLE_EQ(p.at(0.5), 4.0);
  EXPECT_DOUBLE_EQ(p.at(1.0), 5.5);
  EXPECT_DOUBLE_EQ(p.at(1.5), 5.5);
}

TEST(SupplyProfile, SineOscillatesAroundEntryValue) {
  SupplyProfile p(5.0);
  p.sine(1.0, 4.0, 8.0);  // amplitude 1, period 4, two cycles
  EXPECT_NEAR(p.at(0.0), 5.0, 1e-12);
  EXPECT_NEAR(p.at(1.0), 6.0, 1e-12);
  EXPECT_NEAR(p.at(3.0), 4.0, 1e-12);
  EXPECT_NEAR(p.at(4.0), 5.0, 1e-9);
}

TEST(SupplyProfile, SegmentsChainContinuously) {
  SupplyProfile p(4.0);
  p.ramp_to(6.0, 2.0).hold(1.0).ramp_to(5.0, 2.0);
  EXPECT_DOUBLE_EQ(p.at(2.0), 6.0);
  EXPECT_DOUBLE_EQ(p.at(3.0), 6.0);
  EXPECT_DOUBLE_EQ(p.at(4.0), 5.5);
  EXPECT_DOUBLE_EQ(p.at(5.0), 5.0);
  EXPECT_DOUBLE_EQ(p.duration(), 5.0);
}

TEST(SupplyProfile, AsFunctionSnapshotsState) {
  SupplyProfile p(4.0);
  p.ramp_to(6.0, 2.0);
  auto f = p.as_function();
  p.step_to(0.0);  // later mutation must not affect the snapshot
  EXPECT_DOUBLE_EQ(f(1.0), 5.0);
  EXPECT_DOUBLE_EQ(f(2.0), 6.0);
}

TEST(SupplyProfile, RejectsNegativeDurations) {
  SupplyProfile p(4.0);
  EXPECT_THROW(p.hold(-1.0), pns::ContractViolation);
  EXPECT_THROW(p.ramp_to(5.0, -1.0), pns::ContractViolation);
  EXPECT_THROW(p.sine(1.0, 0.0, 1.0), pns::ContractViolation);
}

TEST(TraceIo, RoundTripsSeries) {
  pns::TimeSeries ts;
  ts.append(0.0, 1.5);
  ts.append(1.0, 2.5);
  ts.append(2.0, -0.5);
  const std::string path = ::testing::TempDir() + "/pns_trace_rt.csv";
  ASSERT_TRUE(save_trace_csv(path, ts));
  auto loaded = load_trace_csv(path);
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded(0.0), 1.5);
  EXPECT_DOUBLE_EQ(loaded(0.5), 2.0);
  EXPECT_DOUBLE_EQ(loaded(2.0), -0.5);
  std::remove(path.c_str());
}

TEST(TraceIo, LoadsHeaderlessCsv) {
  const std::string path = ::testing::TempDir() + "/pns_trace_nh.csv";
  {
    std::ofstream f(path);
    f << "0,1\n1,2\n";
  }
  auto loaded = load_trace_csv(path);
  EXPECT_DOUBLE_EQ(loaded(0.5), 1.5);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace_csv("/nonexistent/path/file.csv"),
               std::runtime_error);
}

TEST(TraceIo, MalformedLineThrows) {
  const std::string path = ::testing::TempDir() + "/pns_trace_bad.csv";
  {
    std::ofstream f(path);
    f << "t,v\n0,1\nnot-a-number,2\n";
  }
  EXPECT_THROW(load_trace_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, TooFewSamplesThrows) {
  const std::string path = ::testing::TempDir() + "/pns_trace_short.csv";
  {
    std::ofstream f(path);
    f << "t,v\n0,1\n";
  }
  EXPECT_THROW(load_trace_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pns::trace
