// Tests for stochastic weather synthesis (trace/weather).
#include "trace/weather.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace pns::trace {
namespace {

double mean_transmittance(WeatherCondition c, std::uint64_t seed) {
  auto trace = synthesize_transmittance(weather_params_for(c), 0.0, 3600.0,
                                        0.1, seed);
  pns::RunningStats s;
  for (double y : trace.ys()) s.add(y);
  return s.mean();
}

TEST(Weather, TransmittanceBounded) {
  for (auto c : {WeatherCondition::kFullSun, WeatherCondition::kPartialSun,
                 WeatherCondition::kCloud, WeatherCondition::kHail}) {
    auto trace = synthesize_transmittance(weather_params_for(c), 0.0,
                                          1800.0, 0.1, 99);
    for (double y : trace.ys()) {
      EXPECT_GE(y, 0.0);
      EXPECT_LE(y, 1.0);
    }
  }
}

TEST(Weather, DeterministicForSeed) {
  auto a = synthesize_transmittance(
      weather_params_for(WeatherCondition::kPartialSun), 0.0, 600.0, 0.1, 7);
  auto b = synthesize_transmittance(
      weather_params_for(WeatherCondition::kPartialSun), 0.0, 600.0, 0.1, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a.ys()[i], b.ys()[i]);
}

TEST(Weather, DifferentSeedsDiffer) {
  auto a = synthesize_transmittance(
      weather_params_for(WeatherCondition::kPartialSun), 0.0, 600.0, 0.1, 1);
  auto b = synthesize_transmittance(
      weather_params_for(WeatherCondition::kPartialSun), 0.0, 600.0, 0.1, 2);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    max_diff = std::max(max_diff, std::abs(a.ys()[i] - b.ys()[i]));
  EXPECT_GT(max_diff, 0.05);
}

TEST(Weather, ConditionSeverityOrdering) {
  // Averaged across seeds, brightness ranks full-sun > partial > cloud,
  // and hail darkest of all.
  double full = 0.0, partial = 0.0, cloud = 0.0, hail = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    full += mean_transmittance(WeatherCondition::kFullSun, seed);
    partial += mean_transmittance(WeatherCondition::kPartialSun, seed);
    cloud += mean_transmittance(WeatherCondition::kCloud, seed);
    hail += mean_transmittance(WeatherCondition::kHail, seed);
  }
  EXPECT_GT(full, partial);
  EXPECT_GT(partial, cloud);
  EXPECT_GT(cloud, hail);
}

TEST(Weather, FullSunMostlyBright) {
  EXPECT_GT(mean_transmittance(WeatherCondition::kFullSun, 3), 0.85);
}

TEST(Weather, IrradianceBoundedByEnvelope) {
  ClearSky sky;
  auto g = synthesize_irradiance(sky, WeatherCondition::kPartialSun,
                                 10.0 * 3600.0, 12.0 * 3600.0, 0.5, 11);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_LE(g.ys()[i], sky.irradiance(g.xs()[i]) + 1e-9);
    EXPECT_GE(g.ys()[i], 0.0);
  }
}

TEST(Weather, MicroVariabilityPresent) {
  // Partial sun must show substantial short-horizon swings (the 'micro'
  // variability of Fig. 1) -- check the max 10 s change exceeds 20 %.
  auto trace = synthesize_transmittance(
      weather_params_for(WeatherCondition::kPartialSun), 0.0, 3600.0, 0.1,
      21);
  double max_swing = 0.0;
  const std::size_t lag = 100;  // 10 s at 0.1 s sampling
  for (std::size_t i = lag; i < trace.size(); ++i)
    max_swing = std::max(max_swing,
                         std::abs(trace.ys()[i] - trace.ys()[i - lag]));
  EXPECT_GT(max_swing, 0.2);
}

TEST(Weather, RejectsBadArguments) {
  const auto p = weather_params_for(WeatherCondition::kFullSun);
  EXPECT_THROW(synthesize_transmittance(p, 10.0, 10.0, 0.1, 1),
               pns::ContractViolation);
  EXPECT_THROW(synthesize_transmittance(p, 0.0, 10.0, 0.0, 1),
               pns::ContractViolation);
}

TEST(ShadowingEvent, PiecewiseShape) {
  auto s = shadowing_event(0.0, 10.0, 2.0, 0.5, 3.0, 0.5, 0.2);
  EXPECT_DOUBLE_EQ(s(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s(1.9), 1.0);
  EXPECT_NEAR(s(2.25), 0.6, 1e-9);   // mid-fall
  EXPECT_DOUBLE_EQ(s(3.0), 0.2);     // hold
  EXPECT_DOUBLE_EQ(s(5.0), 0.2);     // still holding
  EXPECT_NEAR(s(5.75), 0.6, 1e-9);   // mid-recovery
  EXPECT_DOUBLE_EQ(s(6.5), 1.0);
  EXPECT_DOUBLE_EQ(s(10.0), 1.0);
}

TEST(ShadowingEvent, EventAtStartSupported) {
  auto s = shadowing_event(0.0, 5.0, 0.0, 1.0, 1.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(s(0.0), 1.0);
  EXPECT_NEAR(s(0.5), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(s(1.5), 0.0);
}

TEST(ShadowingEvent, RejectsOverrunningWindow) {
  EXPECT_THROW(shadowing_event(0.0, 2.0, 1.0, 1.0, 1.0, 1.0, 0.5),
               pns::ContractViolation);
}

TEST(WeatherNames, ToString) {
  EXPECT_STREQ(to_string(WeatherCondition::kFullSun), "full-sun");
  EXPECT_STREQ(to_string(WeatherCondition::kHail), "hail");
}

}  // namespace
}  // namespace pns::trace
