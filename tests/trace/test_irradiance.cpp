// Tests for the clear-sky irradiance model (trace/irradiance).
#include "trace/irradiance.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace pns::trace {
namespace {

constexpr double kH = 3600.0;

TEST(ClearSky, ZeroOutsideDaylight) {
  ClearSky sky;
  EXPECT_DOUBLE_EQ(sky.irradiance(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sky.irradiance(5.9 * kH), 0.0);
  EXPECT_DOUBLE_EQ(sky.irradiance(20.1 * kH), 0.0);
  EXPECT_DOUBLE_EQ(sky.irradiance(23.9 * kH), 0.0);
}

TEST(ClearSky, PeakAtSolarNoon) {
  ClearSky sky;
  const double noon = sky.solar_noon();
  EXPECT_NEAR(sky.irradiance(noon), sky.params().peak_wm2, 1e-9);
  EXPECT_GT(sky.irradiance(noon), sky.irradiance(noon - 2 * kH));
  EXPECT_GT(sky.irradiance(noon), sky.irradiance(noon + 2 * kH));
}

TEST(ClearSky, MorningMonotoneRise) {
  ClearSky sky;
  double prev = 0.0;
  for (double t = sky.params().sunrise_s + 600.0; t < sky.solar_noon();
       t += 1800.0) {
    const double g = sky.irradiance(t);
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(ClearSky, SymmetricAroundNoon) {
  ClearSky sky;
  const double noon = sky.solar_noon();
  for (double dt = 0.5 * kH; dt <= 6.0 * kH; dt += kH) {
    EXPECT_NEAR(sky.irradiance(noon - dt), sky.irradiance(noon + dt), 1e-9);
  }
}

TEST(ClearSky, InsolationMatchesNumericIntegral) {
  ClearSky sky;
  // crude rectangle check, 1 min resolution
  double sum = 0.0;
  for (double t = 0.0; t < 24.0 * kH; t += 60.0)
    sum += sky.irradiance(t + 30.0) * 60.0;
  EXPECT_NEAR(sky.daily_insolation(), sum, sum * 1e-3);
}

TEST(ClearSky, HigherShapeNarrowsBell) {
  ClearSkyParams p1;
  p1.shape = 1.0;
  ClearSkyParams p2 = p1;
  p2.shape = 2.0;
  ClearSky wide(p1), narrow(p2);
  // Same peak...
  EXPECT_NEAR(wide.irradiance(wide.solar_noon()),
              narrow.irradiance(narrow.solar_noon()), 1e-9);
  // ...less energy off-peak.
  EXPECT_GT(wide.irradiance(8.0 * kH), narrow.irradiance(8.0 * kH));
  EXPECT_GT(wide.daily_insolation(), narrow.daily_insolation());
}

TEST(ClearSky, RejectsBadParams) {
  ClearSkyParams p;
  p.sunrise_s = p.sunset_s;
  EXPECT_THROW(ClearSky{p}, pns::ContractViolation);
  ClearSkyParams q;
  q.shape = 0.0;
  EXPECT_THROW(ClearSky{q}, pns::ContractViolation);
}

}  // namespace
}  // namespace pns::trace
