// Tests for the SoC runtime state machine (soc/soc_state).
#include "soc/soc_state.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/contracts.hpp"

namespace pns::soc {
namespace {

const Platform& xu4() {
  static Platform p = Platform::odroid_xu4();
  return p;
}

TransitionPlanner planner() {
  return TransitionPlanner(xu4().opps, xu4().power, xu4().latency);
}

TEST(SocRuntime, InitialState) {
  SocRuntime soc(xu4(), {3, {4, 1}});
  EXPECT_TRUE(soc.is_on());
  EXPECT_FALSE(soc.transitioning());
  EXPECT_EQ(soc.opp(), (OperatingPoint{3, {4, 1}}));
  EXPECT_EQ(soc.final_target(), soc.opp());
  EXPECT_TRUE(std::isinf(soc.next_boundary()));
}

TEST(SocRuntime, RejectsInvalidInitialOpp) {
  EXPECT_THROW(SocRuntime(xu4(), {99, {1, 0}}), pns::ContractViolation);
  EXPECT_THROW(SocRuntime(xu4(), {0, {0, 0}}), pns::ContractViolation);
  EXPECT_THROW(SocRuntime(xu4(), {0, {5, 0}}), pns::ContractViolation);
}

TEST(SocRuntime, PowerMatchesModelWhenIdle) {
  SocRuntime soc(xu4(), {7, {4, 4}});
  EXPECT_DOUBLE_EQ(soc.power(1.0),
                   xu4().power.board_power({7, {4, 4}}, xu4().opps, 1.0));
}

TEST(SocRuntime, PlanExecutesStepByStep) {
  SocRuntime soc(xu4(), {7, {4, 4}});
  auto plan = planner().plan({7, {4, 4}}, {7, {4, 2}},
                             OrderingPolicy::kCoreFirst);
  ASSERT_EQ(plan.size(), 2u);
  const double d0 = plan[0].duration_s;
  const double d1 = plan[1].duration_s;
  soc.enqueue_plan(std::move(plan), 10.0);
  EXPECT_TRUE(soc.transitioning());
  EXPECT_EQ(soc.final_target(), (OperatingPoint{7, {4, 2}}));
  EXPECT_NEAR(soc.next_boundary(), 10.0 + d0, 1e-12);
  // Live OPP is still the starting one until the step completes.
  EXPECT_EQ(soc.opp(), (OperatingPoint{7, {4, 4}}));

  soc.complete_step(10.0 + d0);
  EXPECT_EQ(soc.opp(), (OperatingPoint{7, {4, 3}}));
  EXPECT_NEAR(soc.next_boundary(), 10.0 + d0 + d1, 1e-12);

  soc.complete_step(10.0 + d0 + d1);
  EXPECT_EQ(soc.opp(), (OperatingPoint{7, {4, 2}}));
  EXPECT_FALSE(soc.transitioning());
  EXPECT_EQ(soc.transitions_completed(), 2u);
}

TEST(SocRuntime, PowerDuringStepIsStepPower) {
  SocRuntime soc(xu4(), {7, {4, 4}});
  auto plan = planner().plan({7, {4, 4}}, {7, {4, 3}},
                             OrderingPolicy::kCoreFirst);
  const double p_step = plan[0].power_w;
  soc.enqueue_plan(std::move(plan), 0.0);
  EXPECT_DOUBLE_EQ(soc.power(1.0), p_step);
}

TEST(SocRuntime, InstructionRateDeratedDuringHotplug) {
  SocRuntime soc(xu4(), {7, {4, 4}});
  const double idle_rate = soc.instruction_rate(1.0);
  auto plan = planner().plan({7, {4, 4}}, {7, {4, 3}},
                             OrderingPolicy::kCoreFirst);
  soc.enqueue_plan(std::move(plan), 0.0);
  EXPECT_NEAR(soc.instruction_rate(1.0),
              idle_rate * (1.0 - xu4().hotplug_stall), 1e-9);
}

TEST(SocRuntime, EnqueueAppendsToPending) {
  SocRuntime soc(xu4(), {7, {4, 4}});
  soc.enqueue_plan(planner().plan({7, {4, 4}}, {7, {4, 3}},
                                  OrderingPolicy::kCoreFirst),
                   0.0);
  // Second plan must start from the final target of the first.
  soc.enqueue_plan(planner().plan({7, {4, 3}}, {6, {4, 3}},
                                  OrderingPolicy::kCoreFirst),
                   0.0);
  EXPECT_EQ(soc.pending_steps(), 2u);
  EXPECT_EQ(soc.final_target(), (OperatingPoint{6, {4, 3}}));
}

TEST(SocRuntime, EnqueueRejectsDiscontinuousPlan) {
  SocRuntime soc(xu4(), {7, {4, 4}});
  auto wrong = planner().plan({6, {4, 4}}, {5, {4, 4}},
                              OrderingPolicy::kCoreFirst);
  EXPECT_THROW(soc.enqueue_plan(std::move(wrong), 0.0),
               pns::ContractViolation);
}

TEST(SocRuntime, BrownoutLifecycle) {
  SocRuntime soc(xu4(), {7, {4, 4}});
  soc.enqueue_plan(planner().plan({7, {4, 4}}, {7, {4, 3}},
                                  OrderingPolicy::kCoreFirst),
                   0.0);
  soc.power_off(1.0);
  EXPECT_EQ(soc.power_state(), PowerState::kOff);
  EXPECT_FALSE(soc.is_on());
  EXPECT_FALSE(soc.transitioning());  // queue dropped
  EXPECT_EQ(soc.brownouts(), 1u);
  EXPECT_DOUBLE_EQ(soc.power(1.0), xu4().off_power_w);
  EXPECT_DOUBLE_EQ(soc.instruction_rate(1.0), 0.0);

  soc.begin_boot(5.0);
  EXPECT_EQ(soc.power_state(), PowerState::kBooting);
  EXPECT_DOUBLE_EQ(soc.power(1.0), xu4().boot_power_w);
  EXPECT_DOUBLE_EQ(soc.instruction_rate(1.0), 0.0);
  EXPECT_NEAR(soc.boot_complete_time(), 5.0 + xu4().boot_time_s, 1e-12);

  soc.complete_boot(soc.boot_complete_time());
  EXPECT_TRUE(soc.is_on());
  EXPECT_EQ(soc.opp(), xu4().lowest_opp());
}

TEST(SocRuntime, BootContractEnforced) {
  SocRuntime soc(xu4(), {0, {1, 0}});
  EXPECT_THROW(soc.begin_boot(0.0), pns::ContractViolation);  // not off
  soc.power_off(0.0);
  EXPECT_THROW(soc.complete_boot(0.0), pns::ContractViolation);  // not booting
}

TEST(SocRuntime, CannotEnqueueWhileOff) {
  SocRuntime soc(xu4(), {7, {4, 4}});
  soc.power_off(0.0);
  EXPECT_THROW(soc.enqueue_plan(planner().plan({0, {1, 0}}, {1, {1, 0}},
                                               OrderingPolicy::kCoreFirst),
                                0.0),
               pns::ContractViolation);
}

TEST(SocRuntime, CompleteStepRequiresPending) {
  SocRuntime soc(xu4(), {0, {1, 0}});
  EXPECT_THROW(soc.complete_step(0.0), pns::ContractViolation);
}

TEST(PowerStateNames, ToString) {
  EXPECT_STREQ(to_string(PowerState::kOn), "on");
  EXPECT_STREQ(to_string(PowerState::kOff), "off");
  EXPECT_STREQ(to_string(PowerState::kBooting), "booting");
}

TEST(Platform, ClampAndValidity) {
  EXPECT_EQ(xu4().clamp_cores({0, 9}), (CoreConfig{1, 4}));
  EXPECT_EQ(xu4().clamp_cores({2, 2}), (CoreConfig{2, 2}));
  EXPECT_TRUE(xu4().valid_cores({1, 0}));
  EXPECT_FALSE(xu4().valid_cores({0, 1}));
}

TEST(Platform, ExtremeOpps) {
  EXPECT_EQ(xu4().lowest_opp(), (OperatingPoint{0, {1, 0}}));
  EXPECT_EQ(xu4().highest_opp(), (OperatingPoint{7, {4, 4}}));
}

}  // namespace
}  // namespace pns::soc
