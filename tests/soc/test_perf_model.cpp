// Tests for the raytrace throughput model (soc/perf_model) including the
// Fig. 7 calibration anchors.
#include "soc/perf_model.hpp"

#include <gtest/gtest.h>

#include "soc/platform.hpp"
#include "util/contracts.hpp"
#include "util/literals.hpp"

namespace pns::soc {
namespace {

using namespace pns::literals;

const Platform& xu4() {
  static Platform p = Platform::odroid_xu4();
  return p;
}

TEST(PerfModel, Fig7AnchorSingleLittle) {
  // ~0.018 FPS for 1xA7 @ 1.4 GHz.
  EXPECT_NEAR(xu4().perf.fps({1, 0}, 1.4_GHz), 0.018, 0.004);
}

TEST(PerfModel, Fig7AnchorFourLittle) {
  // ~0.066 FPS for 4xA7 @ 1.4 GHz.
  EXPECT_NEAR(xu4().perf.fps({4, 0}, 1.4_GHz), 0.066, 0.012);
}

TEST(PerfModel, Fig7AnchorAllCores) {
  // ~0.25 FPS for 4xA7+4xA15 @ 1.4 GHz.
  EXPECT_NEAR(xu4().perf.fps({4, 4}, 1.4_GHz), 0.25, 0.05);
}

TEST(PerfModel, RateLinearInFrequency) {
  const double r1 = xu4().perf.instruction_rate({4, 2}, 0.5_GHz);
  const double r2 = xu4().perf.instruction_rate({4, 2}, 1.0_GHz);
  EXPECT_NEAR(r2, 2.0 * r1, 1e-3 * r2);
}

TEST(PerfModel, BigCoreFasterThanLittle) {
  const double r_l = xu4().perf.instruction_rate({2, 0}, 1.0_GHz);
  const double r_b = xu4().perf.instruction_rate({1, 1}, 1.0_GHz);
  EXPECT_GT(r_b, r_l);
}

TEST(PerfModel, MoreCoresMoreThroughputDespiteOverhead) {
  double prev = 0.0;
  for (int nb = 0; nb <= 4; ++nb) {
    const double r = xu4().perf.instruction_rate({4, nb}, 1.4_GHz);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(PerfModel, ParallelEfficiencyDecreasing) {
  double prev = 1.1;
  for (int n = 1; n <= 8; ++n) {
    const double e = xu4().perf.parallel_efficiency(n);
    EXPECT_LT(e, prev);
    EXPECT_GT(e, 0.7);  // mild overhead for an embarrassingly parallel job
    prev = e;
  }
  EXPECT_DOUBLE_EQ(xu4().perf.parallel_efficiency(1), 1.0);
  EXPECT_DOUBLE_EQ(xu4().perf.parallel_efficiency(0), 1.0);
}

TEST(PerfModel, UtilizationScalesRate) {
  const double full = xu4().perf.instruction_rate({4, 0}, 1.0_GHz, 1.0);
  const double half = xu4().perf.instruction_rate({4, 0}, 1.0_GHz, 0.5);
  EXPECT_NEAR(half, 0.5 * full, 1e-9);
}

TEST(PerfModel, OppOverloadsConsistent) {
  OperatingPoint opp{5, {4, 1}};
  EXPECT_DOUBLE_EQ(
      xu4().perf.instruction_rate(opp, xu4().opps),
      xu4().perf.instruction_rate(opp.cores,
                                  xu4().opps.frequency(opp.freq_index)));
  EXPECT_DOUBLE_EQ(xu4().perf.fps(opp, xu4().opps),
                   xu4().perf.fps(opp.cores,
                                  xu4().opps.frequency(opp.freq_index)));
}

TEST(PerfModel, FpsConsistentWithInstrPerFrame) {
  const double rate = xu4().perf.instruction_rate({4, 4}, 1.4_GHz);
  EXPECT_NEAR(xu4().perf.fps({4, 4}, 1.4_GHz),
              rate / xu4().perf.params().instr_per_frame, 1e-12);
}

TEST(PerfModel, ConstructorContracts) {
  PerfModelParams p;
  p.ipc_little = 0.0;
  EXPECT_THROW(PerfModel{p}, pns::ContractViolation);
  PerfModelParams q;
  q.parallel_overhead = 1.0;
  EXPECT_THROW(PerfModel{q}, pns::ContractViolation);
  PerfModelParams r;
  r.instr_per_frame = 0.0;
  EXPECT_THROW(PerfModel{r}, pns::ContractViolation);
}

TEST(PerfModel, InvalidUtilizationRejected) {
  EXPECT_THROW(xu4().perf.instruction_rate({1, 0}, 1.0_GHz, 1.0001),
               pns::ContractViolation);
}

// Property: performance-per-watt of LITTLE-only configs beats big-cluster
// configs at equal frequency (the whole point of big.LITTLE).
class EfficiencySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EfficiencySweep, LittleClusterMoreEfficient) {
  const auto fi = GetParam();
  const double f = xu4().opps.frequency(fi);
  const double perf_l = xu4().perf.instruction_rate({4, 0}, f);
  const double pow_l = xu4().power.board_power_at({4, 0}, f) -
                       xu4().power.params().board_base_w;
  const double perf_b = xu4().perf.instruction_rate({4, 4}, f);
  const double pow_b = xu4().power.board_power_at({4, 4}, f) -
                       xu4().power.params().board_base_w;
  EXPECT_GT(perf_l / pow_l, perf_b / pow_b) << "at index " << fi;
}

INSTANTIATE_TEST_SUITE_P(Frequencies, EfficiencySweep,
                         ::testing::Values(std::size_t{0}, std::size_t{2},
                                           std::size_t{4}, std::size_t{7}));

}  // namespace
}  // namespace pns::soc
