// Tests for the multi-domain topology compiler (soc/topology.hpp).
//
// The load-bearing invariant is componentwise monotonicity of the
// compiled level table: every arbiter policy must produce rows where no
// domain steps down as the joint level rises, because the compiled
// OppTable requires strictly increasing frequencies and threshold
// control assumes ladder order == power order.
#include <gtest/gtest.h>

#include <stdexcept>

#include "soc/platform.hpp"
#include "soc/topology.hpp"

namespace pns::soc {
namespace {

Domain make_domain(std::string name, OppTable opps, CoreConfig cores,
                   double weight, int priority, double share) {
  const Platform xu4 = Platform::odroid_xu4();
  const PowerModelParams& pw = xu4.power.params();
  return Domain{
      .name = std::move(name),
      .opps = std::move(opps),
      .power = PowerModel({.board_base_w = 0.0,
                           .little = pw.little,
                           .big = pw.big}),
      .perf = PerfModel(xu4.perf.params()),
      .cores = cores,
      .weight = weight,
      .priority = priority,
      .workload_share = share,
  };
}

PlatformTopology two_domain_topology(ArbiterPolicy policy) {
  PlatformTopology topo;
  topo.name = "test-2d";
  topo.policy = policy;
  topo.base_power_w = 1.0;
  topo.domains.push_back(make_domain(
      "little", OppTable::paper_ladder(), {4, 0}, 1.0, 1, 0.4));
  topo.domains.push_back(make_domain(
      "big", OppTable({0.3e9, 0.9e9, 1.5e9, 2.0e9}), {0, 4}, 2.0, 2, 0.6));
  return topo;
}

void expect_monotone_levels(const MultiDomainModel& model) {
  ASSERT_GE(model.level_count(), 2u);
  // Row 0 all-min, last row all-max.
  for (std::size_t d = 0; d < model.domain_count(); ++d) {
    EXPECT_EQ(model.levels.front()[d], 0u);
    EXPECT_EQ(model.levels.back()[d], model.domains[d].opps.max_index());
  }
  for (std::size_t l = 1; l < model.level_count(); ++l) {
    bool strictly_up = false;
    for (std::size_t d = 0; d < model.domain_count(); ++d) {
      EXPECT_GE(model.levels[l][d], model.levels[l - 1][d])
          << "domain " << d << " steps down at level " << l;
      strictly_up = strictly_up || model.levels[l][d] > model.levels[l - 1][d];
    }
    EXPECT_TRUE(strictly_up) << "duplicate rows survived dedup at " << l;
  }
}

TEST(PlatformTopology, EveryPolicyCompilesMonotoneLevels) {
  for (const ArbiterPolicy policy :
       {ArbiterPolicy::kProportional, ArbiterPolicy::kPriority,
        ArbiterPolicy::kDemand}) {
    const Platform p = two_domain_topology(policy).compile();
    ASSERT_NE(p.domains, nullptr) << to_string(policy);
    expect_monotone_levels(*p.domains);
    // The compiled joint ladder is strictly increasing by OppTable's own
    // contract; its size must match the level table.
    EXPECT_EQ(p.opps.max_index() + 1, p.domains->level_count())
        << to_string(policy);
  }
}

TEST(PlatformTopology, CompiledPlatformPinsHotplug) {
  const Platform p = two_domain_topology(ArbiterPolicy::kProportional)
                         .compile();
  // One immovable pseudo-core: the paper's hotplug logic no-ops and
  // threshold control degenerates to pure joint-ladder stepping.
  EXPECT_EQ(p.min_cores, (CoreConfig{1, 0}));
  EXPECT_EQ(p.max_cores, (CoreConfig{1, 0}));
  EXPECT_EQ(p.name, "test-2d");
}

TEST(PlatformTopology, PriorityPolicySaturatesHigherPriorityFirst) {
  const Platform p =
      two_domain_topology(ArbiterPolicy::kPriority).compile();
  const MultiDomainModel& m = *p.domains;
  // "big" (priority 2) must reach its ladder top before "little"
  // (priority 1) leaves index 0.
  const std::size_t big_top = m.domains[1].opps.max_index();
  std::size_t level = 1;
  for (; level < m.level_count() && m.levels[level][1] < big_top; ++level)
    EXPECT_EQ(m.levels[level][0], 0u) << "little rose before big topped out";
  EXPECT_EQ(m.levels[level][1], big_top);
}

TEST(PlatformTopology, DemandPolicyWalksEverySingleStep) {
  const Platform p = two_domain_topology(ArbiterPolicy::kDemand).compile();
  const MultiDomainModel& m = *p.domains;
  // The greedy walk takes exactly one single-domain step per level, so
  // the level count is the total number of ladder steps plus one.
  std::size_t steps = 0;
  for (const Domain& d : m.domains) steps += d.opps.max_index();
  EXPECT_EQ(m.level_count(), steps + 1);
}

TEST(MultiDomainModel, BoardPowerIsBasePlusDomainSum) {
  const Platform p = two_domain_topology(ArbiterPolicy::kDemand).compile();
  const MultiDomainModel& m = *p.domains;
  for (std::size_t l = 0; l < m.level_count(); ++l) {
    double sum = m.base_power_w;
    for (std::size_t d = 0; d < m.domain_count(); ++d)
      sum += m.domain_power(l, d, 0.7);
    EXPECT_DOUBLE_EQ(m.board_power(l, 0.7), sum);
    // The Platform-level dispatch must agree with the model.
    EXPECT_DOUBLE_EQ(p.board_power(OperatingPoint{l, p.min_cores}, 0.7),
                     m.board_power(l, 0.7));
  }
}

TEST(MultiDomainModel, BudgetSharesSumToOne) {
  const Platform p =
      two_domain_topology(ArbiterPolicy::kProportional).compile();
  const MultiDomainModel& m = *p.domains;
  for (std::size_t l = 0; l < m.level_count(); ++l) {
    const auto shares = m.budget_shares(l, 1.0);
    ASSERT_EQ(shares.size(), m.domain_count());
    double total = 0.0;
    for (const double s : shares) {
      EXPECT_GE(s, 0.0);
      total += s;
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << "level " << l;
  }
}

TEST(MultiDomainModel, InstructionRatesScaleByWorkloadShare) {
  const Platform p = two_domain_topology(ArbiterPolicy::kDemand).compile();
  const MultiDomainModel& m = *p.domains;
  const std::size_t top = m.level_count() - 1;
  double sum = 0.0;
  for (std::size_t d = 0; d < m.domain_count(); ++d) {
    const double r = m.domain_instruction_rate(top, d, 1.0);
    EXPECT_GT(r, 0.0);
    sum += r;
  }
  EXPECT_DOUBLE_EQ(m.instruction_rate(top, 1.0), sum);
  EXPECT_DOUBLE_EQ(
      p.instruction_rate(OperatingPoint{top, p.min_cores}, 1.0), sum);
}

TEST(PlatformTopology, CompileValidatesTheTopology) {
  PlatformTopology empty;
  EXPECT_THROW(empty.compile(), std::invalid_argument);

  auto dup = two_domain_topology(ArbiterPolicy::kProportional);
  dup.domains[1].name = "little";
  EXPECT_THROW(dup.compile(), std::invalid_argument);

  auto unnamed = two_domain_topology(ArbiterPolicy::kProportional);
  unnamed.domains[0].name.clear();
  EXPECT_THROW(unnamed.compile(), std::invalid_argument);

  auto coreless = two_domain_topology(ArbiterPolicy::kProportional);
  coreless.domains[0].cores = {0, 0};
  EXPECT_THROW(coreless.compile(), std::invalid_argument);

  auto negative = two_domain_topology(ArbiterPolicy::kProportional);
  negative.domains[0].weight = -1.0;
  EXPECT_THROW(negative.compile(), std::invalid_argument);
}

TEST(ArbiterPolicy, StringRoundTrip) {
  for (const ArbiterPolicy policy :
       {ArbiterPolicy::kProportional, ArbiterPolicy::kPriority,
        ArbiterPolicy::kDemand})
    EXPECT_EQ(arbiter_policy_from_string(to_string(policy)), policy);
  try {
    arbiter_policy_from_string("fair");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("proportional"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace pns::soc
