// Tests for transition planning (soc/transition): step sequences, ordering
// semantics, and the Table I cost asymmetry.
#include "soc/transition.hpp"

#include <gtest/gtest.h>

#include "soc/platform.hpp"
#include "util/contracts.hpp"

namespace pns::soc {
namespace {

const Platform& xu4() {
  static Platform p = Platform::odroid_xu4();
  return p;
}

TransitionPlanner planner() {
  return TransitionPlanner(xu4().opps, xu4().power, xu4().latency);
}

TEST(TransitionPlanner, EmptyPlanWhenAlreadyThere) {
  OperatingPoint opp{3, {4, 0}};
  EXPECT_TRUE(planner().plan(opp, opp, OrderingPolicy::kCoreFirst).empty());
}

TEST(TransitionPlanner, StepsAreChained) {
  const OperatingPoint from{7, {4, 4}};
  const OperatingPoint to{0, {1, 0}};
  for (auto policy :
       {OrderingPolicy::kCoreFirst, OrderingPolicy::kFreqFirst}) {
    const auto steps = planner().plan(from, to, policy);
    ASSERT_FALSE(steps.empty());
    EXPECT_EQ(steps.front().from, from);
    EXPECT_EQ(steps.back().to, to);
    for (std::size_t i = 1; i < steps.size(); ++i)
      EXPECT_EQ(steps[i].from, steps[i - 1].to) << "discontinuity at " << i;
  }
}

TEST(TransitionPlanner, StepCountFullDescent) {
  // 7 core removals + 7 frequency levels.
  const auto steps = planner().plan({7, {4, 4}}, {0, {1, 0}},
                                    OrderingPolicy::kCoreFirst);
  EXPECT_EQ(steps.size(), 14u);
}

TEST(TransitionPlanner, CoreFirstOrderingSequence) {
  const auto steps = planner().plan({7, {4, 4}}, {0, {1, 0}},
                                    OrderingPolicy::kCoreFirst);
  // First 7 steps are hot-plugs, last 7 are DVFS.
  for (std::size_t i = 0; i < 7; ++i)
    EXPECT_EQ(steps[i].kind, TransitionKind::kHotplug) << i;
  for (std::size_t i = 7; i < 14; ++i)
    EXPECT_EQ(steps[i].kind, TransitionKind::kDvfs) << i;
}

TEST(TransitionPlanner, FreqFirstOrderingSequence) {
  const auto steps = planner().plan({7, {4, 4}}, {0, {1, 0}},
                                    OrderingPolicy::kFreqFirst);
  for (std::size_t i = 0; i < 7; ++i)
    EXPECT_EQ(steps[i].kind, TransitionKind::kDvfs) << i;
  for (std::size_t i = 7; i < 14; ++i)
    EXPECT_EQ(steps[i].kind, TransitionKind::kHotplug) << i;
}

TEST(TransitionPlanner, ShrinkRemovesBigCoresFirst) {
  const auto steps = planner().plan({7, {4, 2}}, {7, {2, 0}},
                                    OrderingPolicy::kCoreFirst);
  ASSERT_EQ(steps.size(), 4u);
  EXPECT_EQ(steps[0].to.cores, (CoreConfig{4, 1}));
  EXPECT_EQ(steps[1].to.cores, (CoreConfig{4, 0}));
  EXPECT_EQ(steps[2].to.cores, (CoreConfig{3, 0}));
  EXPECT_EQ(steps[3].to.cores, (CoreConfig{2, 0}));
}

TEST(TransitionPlanner, GrowAddsLittleCoresFirst) {
  const auto steps = planner().plan({0, {2, 0}}, {0, {4, 1}},
                                    OrderingPolicy::kCoreFirst);
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].to.cores, (CoreConfig{3, 0}));
  EXPECT_EQ(steps[1].to.cores, (CoreConfig{4, 0}));
  EXPECT_EQ(steps[2].to.cores, (CoreConfig{4, 1}));
}

TEST(TransitionPlanner, StepPowerIsWorstOfEndpointsPlusOverhead) {
  const auto steps = planner().plan({7, {4, 4}}, {7, {4, 3}},
                                    OrderingPolicy::kCoreFirst);
  ASSERT_EQ(steps.size(), 1u);
  const double p_from = xu4().power.board_power(steps[0].from, xu4().opps);
  const double p_to = xu4().power.board_power(steps[0].to, xu4().opps);
  EXPECT_DOUBLE_EQ(steps[0].power_w,
                   std::max(p_from, p_to) +
                       xu4().latency.params().hotplug_power_overhead_w);
}

TEST(TransitionPlanner, DvfsStepPowerHasNoHotplugOverhead) {
  const auto steps = planner().plan_dvfs_jump({7, {4, 4}}, 6);
  ASSERT_EQ(steps.size(), 1u);
  const double p_from = xu4().power.board_power(steps[0].from, xu4().opps);
  const double p_to = xu4().power.board_power(steps[0].to, xu4().opps);
  EXPECT_DOUBLE_EQ(steps[0].power_w, std::max(p_from, p_to));
}

TEST(TransitionPlanner, TableOneCoreFirstMuchCheaper) {
  // The headline Table I result: core-first completes ~5x faster and
  // spends several-fold less charge than freq-first.
  const auto a = planner().plan({7, {4, 4}}, {0, {1, 0}},
                                OrderingPolicy::kFreqFirst);
  const auto b = planner().plan({7, {4, 4}}, {0, {1, 0}},
                                OrderingPolicy::kCoreFirst);
  const double t_a = TransitionPlanner::total_duration(a);
  const double t_b = TransitionPlanner::total_duration(b);
  const double q_a = TransitionPlanner::total_charge(a, 4.1);
  const double q_b = TransitionPlanner::total_charge(b, 4.1);
  EXPECT_GT(t_a / t_b, 2.5);
  EXPECT_GT(q_a / q_b, 2.5);
  // Absolute scales in the Table I ballpark (hundreds vs tens of ms).
  EXPECT_GT(t_a, 0.15);
  EXPECT_LT(t_b, 0.15);
}

TEST(TransitionPlanner, ChargeConsistentWithEnergy) {
  const auto steps = planner().plan({7, {4, 4}}, {0, {1, 0}},
                                    OrderingPolicy::kCoreFirst);
  const double q = TransitionPlanner::total_charge(steps, 5.0);
  const double e = TransitionPlanner::total_energy(steps);
  EXPECT_NEAR(q, e / 5.0, 1e-12);
}

TEST(TransitionPlanner, DvfsJumpSingleStep) {
  const auto steps = planner().plan_dvfs_jump({7, {4, 4}}, 0);
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].kind, TransitionKind::kDvfs);
  EXPECT_EQ(steps[0].from.freq_index, 7u);
  EXPECT_EQ(steps[0].to.freq_index, 0u);
  EXPECT_EQ(steps[0].to.cores, (CoreConfig{4, 4}));
  EXPECT_TRUE(planner().plan_dvfs_jump({3, {4, 0}}, 3).empty());
}

TEST(TransitionPlanner, TotalChargeRejectsBadVoltage) {
  const auto steps = planner().plan_dvfs_jump({7, {4, 4}}, 0);
  EXPECT_THROW(TransitionPlanner::total_charge(steps, 0.0),
               pns::ContractViolation);
}

TEST(OrderingPolicy, Names) {
  EXPECT_STREQ(to_string(OrderingPolicy::kCoreFirst), "core-first");
  EXPECT_STREQ(to_string(OrderingPolicy::kFreqFirst), "freq-first");
}

// Property: for any pair of OPPs and either policy, the plan is a valid
// chain ending at the target, with positive step durations.
class PlanProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PlanProperty, ChainValidity) {
  const auto [nl, nb, fi] = GetParam();
  const OperatingPoint from{7, {4, 4}};
  const OperatingPoint to{static_cast<std::size_t>(fi), {nl, nb}};
  for (auto policy :
       {OrderingPolicy::kCoreFirst, OrderingPolicy::kFreqFirst}) {
    const auto steps = planner().plan(from, to, policy);
    OperatingPoint cur = from;
    for (const auto& s : steps) {
      EXPECT_EQ(s.from, cur);
      EXPECT_GT(s.duration_s, 0.0);
      EXPECT_GT(s.power_w, 0.0);
      cur = s.to;
    }
    EXPECT_EQ(cur, to);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Targets, PlanProperty,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(0, 2, 4),
                       ::testing::Values(0, 4, 7)));

}  // namespace
}  // namespace pns::soc
