// Tests for workload models (soc/workload).
#include "soc/workload.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace pns::soc {
namespace {

TEST(RaytraceWorkload, AlwaysFullUtilisation) {
  RaytraceWorkload w(1e10);
  EXPECT_DOUBLE_EQ(w.utilization(0.0), 1.0);
  EXPECT_DOUBLE_EQ(w.utilization(12345.0), 1.0);
}

TEST(RaytraceWorkload, AccumulatesInstructions) {
  RaytraceWorkload w(1e10);
  w.advance(0.0, 2.0, 5e9);
  w.advance(2.0, 1.0, 1e9);
  EXPECT_DOUBLE_EQ(w.instructions(), 1.1e10);
  EXPECT_DOUBLE_EQ(w.frames_completed(), 1.1);
}

TEST(RaytraceWorkload, ResetClearsProgress) {
  RaytraceWorkload w(1e10);
  w.advance(0.0, 1.0, 1e9);
  w.reset();
  EXPECT_DOUBLE_EQ(w.instructions(), 0.0);
  EXPECT_DOUBLE_EQ(w.frames_completed(), 0.0);
}

TEST(RaytraceWorkload, RejectsBadAdvance) {
  RaytraceWorkload w(1e10);
  EXPECT_THROW(w.advance(0.0, -1.0, 1e9), pns::ContractViolation);
  EXPECT_THROW(w.advance(0.0, 1.0, -1e9), pns::ContractViolation);
  EXPECT_THROW(RaytraceWorkload(0.0), pns::ContractViolation);
}

TEST(PeriodicWorkload, SquareWavePhases) {
  PeriodicWorkload w(2.0, 3.0, 0.9, 0.1);
  EXPECT_DOUBLE_EQ(w.utilization(0.0), 0.9);
  EXPECT_DOUBLE_EQ(w.utilization(1.99), 0.9);
  EXPECT_DOUBLE_EQ(w.utilization(2.01), 0.1);
  EXPECT_DOUBLE_EQ(w.utilization(4.99), 0.1);
  EXPECT_DOUBLE_EQ(w.utilization(5.01), 0.9);  // wraps
}

TEST(PeriodicWorkload, NegativeTimeTreatedAsStart) {
  PeriodicWorkload w(2.0, 3.0);
  EXPECT_DOUBLE_EQ(w.utilization(-5.0), w.utilization(0.0));
}

TEST(PeriodicWorkload, ValidatesArguments) {
  EXPECT_THROW(PeriodicWorkload(0.0, 1.0), pns::ContractViolation);
  EXPECT_THROW(PeriodicWorkload(1.0, -1.0), pns::ContractViolation);
  EXPECT_THROW(PeriodicWorkload(1.0, 1.0, 1.5), pns::ContractViolation);
}

TEST(ConstantWorkload, HoldsValue) {
  ConstantWorkload w(0.42);
  EXPECT_DOUBLE_EQ(w.utilization(0.0), 0.42);
  EXPECT_DOUBLE_EQ(w.utilization(99.0), 0.42);
  EXPECT_THROW(ConstantWorkload(1.5), pns::ContractViolation);
}

TEST(Workload, NamesStable) {
  RaytraceWorkload r(1e10);
  PeriodicWorkload p(1.0, 1.0);
  ConstantWorkload c(0.5);
  EXPECT_STREQ(r.name(), "raytrace");
  EXPECT_STREQ(p.name(), "periodic");
  EXPECT_STREQ(c.name(), "constant");
}

}  // namespace
}  // namespace pns::soc
