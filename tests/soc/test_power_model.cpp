// Tests for the board power model (soc/power_model) including the Fig. 4
// calibration anchors of the ODROID XU4 platform.
#include "soc/power_model.hpp"

#include <gtest/gtest.h>

#include "soc/platform.hpp"
#include "util/contracts.hpp"
#include "util/literals.hpp"

namespace pns::soc {
namespace {

using namespace pns::literals;

const Platform& xu4() {
  static Platform p = Platform::odroid_xu4();
  return p;
}

TEST(PowerModel, Fig4AnchorSingleLittleLowFreq) {
  // Fig. 4: ~1.8 W at 1xA7 @ 0.2 GHz.
  const double p = xu4().power.board_power_at({1, 0}, 0.2_GHz);
  EXPECT_NEAR(p, 1.8, 0.15);
}

TEST(PowerModel, Fig4AnchorFourLittleTopFreq) {
  // Fig. 4: ~2.7-2.8 W at 4xA7 @ 1.4 GHz.
  const double p = xu4().power.board_power_at({4, 0}, 1.4_GHz);
  EXPECT_NEAR(p, 2.75, 0.3);
}

TEST(PowerModel, Fig4AnchorAllCoresTopFreq) {
  // Fig. 4: ~7 W at 4xA7 + 4xA15 @ 1.4 GHz.
  const double p = xu4().power.board_power_at({4, 4}, 1.4_GHz);
  EXPECT_NEAR(p, 7.0, 0.7);
}

TEST(PowerModel, MonotoneInFrequency) {
  for (int nb = 0; nb <= 4; ++nb) {
    double prev = 0.0;
    for (std::size_t i = 0; i < xu4().opps.size(); ++i) {
      const double p = xu4().power.board_power({i, {4, nb}}, xu4().opps);
      EXPECT_GT(p, prev) << "config 4L+" << nb << "B index " << i;
      prev = p;
    }
  }
}

TEST(PowerModel, MonotoneInLittleCores) {
  double prev = 0.0;
  for (int nl = 1; nl <= 4; ++nl) {
    const double p = xu4().power.board_power_at({nl, 0}, 1.1_GHz);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(PowerModel, MonotoneInBigCores) {
  double prev = 0.0;
  for (int nb = 0; nb <= 4; ++nb) {
    const double p = xu4().power.board_power_at({4, nb}, 1.1_GHz);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(PowerModel, BigCoreCostsMoreThanLittle) {
  const double p_l = xu4().power.core_dynamic_power(CoreType::kLittle,
                                                    1.4_GHz, 1.0);
  const double p_b =
      xu4().power.core_dynamic_power(CoreType::kBig, 1.4_GHz, 1.0);
  EXPECT_GT(p_b, 3.0 * p_l);
}

TEST(PowerModel, OffClusterConsumesNothing) {
  EXPECT_DOUBLE_EQ(xu4().power.cluster_power(CoreType::kBig, 0, 1.4_GHz, 1.0),
                   0.0);
}

TEST(PowerModel, UtilizationScalesDynamicOnly) {
  const double busy = xu4().power.board_power_at({4, 4}, 1.4_GHz, 1.0);
  const double idle = xu4().power.board_power_at({4, 4}, 1.4_GHz, 0.0);
  EXPECT_GT(busy, idle);
  // Idle still pays base + statics.
  EXPECT_GT(idle, xu4().power.params().board_base_w);
}

TEST(PowerModel, UtilizationOutOfRangeRejected) {
  EXPECT_THROW(xu4().power.board_power_at({1, 0}, 1.0_GHz, 1.5),
               pns::ContractViolation);
  EXPECT_THROW(xu4().power.board_power_at({1, 0}, 1.0_GHz, -0.1),
               pns::ContractViolation);
}

TEST(PowerModel, VddCurveRisesWithFrequency) {
  EXPECT_LT(xu4().power.vdd(CoreType::kBig, 0.2_GHz),
            xu4().power.vdd(CoreType::kBig, 1.4_GHz));
  EXPECT_LT(xu4().power.vdd(CoreType::kLittle, 0.2_GHz),
            xu4().power.vdd(CoreType::kLittle, 1.4_GHz));
}

TEST(PowerModel, DynamicPowerSuperlinearInFrequency) {
  // Because Vdd rises with f, P(2f) > 2 P(f).
  const double p1 =
      xu4().power.core_dynamic_power(CoreType::kBig, 0.6_GHz, 1.0);
  const double p2 =
      xu4().power.core_dynamic_power(CoreType::kBig, 1.2_GHz, 1.0);
  EXPECT_GT(p2, 2.0 * p1);
}

// Property sweep: power is positive and bounded for every valid OPP.
class PowerAllConfigs
    : public ::testing::TestWithParam<std::tuple<int, int, std::size_t>> {};

TEST_P(PowerAllConfigs, PositiveAndBounded) {
  const auto [nl, nb, fi] = GetParam();
  const double p =
      xu4().power.board_power({fi, {nl, nb}}, xu4().opps);
  EXPECT_GT(p, 1.0);   // board base alone exceeds 1 W
  EXPECT_LT(p, 12.0);  // sanity ceiling for this platform
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PowerAllConfigs,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(std::size_t{0}, std::size_t{3},
                                         std::size_t{7})));

}  // namespace
}  // namespace pns::soc
