// Tests for DVFS / hot-plug latency (soc/latency_model) against the
// Fig. 10 anchors.
#include "soc/latency_model.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"
#include "util/literals.hpp"

namespace pns::soc {
namespace {

using namespace pns::literals;

LatencyModel model() { return LatencyModel(LatencyModelParams{}); }

TEST(LatencyModel, Fig10HotplugAnchorHighFreq) {
  // ~8-12 ms at 1.4 GHz.
  const double t =
      model().hotplug_latency(CoreType::kLittle, false, 1.4_GHz, {4, 0});
  EXPECT_GT(t, 5e-3);
  EXPECT_LT(t, 15e-3);
}

TEST(LatencyModel, Fig10HotplugAnchorMidFreq) {
  // ~15-20 ms at 800 MHz.
  const double t =
      model().hotplug_latency(CoreType::kLittle, false, 0.8_GHz, {4, 0});
  EXPECT_GT(t, 9e-3);
  EXPECT_LT(t, 22e-3);
}

TEST(LatencyModel, Fig10HotplugAnchorLowFreq) {
  // ~30-40 ms at 200 MHz.
  const double t =
      model().hotplug_latency(CoreType::kLittle, false, 0.2_GHz, {4, 0});
  EXPECT_GT(t, 25e-3);
  EXPECT_LT(t, 45e-3);
}

TEST(LatencyModel, HotplugLatencyDecreasesWithFrequency) {
  double prev = 1e9;
  for (double f : {0.2_GHz, 0.45_GHz, 0.92_GHz, 1.4_GHz}) {
    const double t =
        model().hotplug_latency(CoreType::kLittle, true, f, {2, 0});
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(LatencyModel, BigCoreCostsMore) {
  const double t_l =
      model().hotplug_latency(CoreType::kLittle, false, 1.0_GHz, {4, 2});
  const double t_b =
      model().hotplug_latency(CoreType::kBig, false, 1.0_GHz, {4, 2});
  EXPECT_GT(t_b, t_l);
}

TEST(LatencyModel, ClusterPowerSwitchAddsCost) {
  // First big core up (0 -> 1) pays the cluster switch...
  const double first_on =
      model().hotplug_latency(CoreType::kBig, true, 1.0_GHz, {4, 0});
  // ...second does not.
  const double second_on =
      model().hotplug_latency(CoreType::kBig, true, 1.0_GHz, {4, 1});
  EXPECT_GT(first_on, second_on);
  // Last big core down (1 -> 0) pays it too.
  const double last_off =
      model().hotplug_latency(CoreType::kBig, false, 1.0_GHz, {4, 1});
  const double mid_off =
      model().hotplug_latency(CoreType::kBig, false, 1.0_GHz, {4, 3});
  EXPECT_GT(last_off, mid_off);
}

TEST(LatencyModel, Fig10DvfsRange) {
  // DVFS transitions are 1-3 ms.
  for (int n = 1; n <= 8; ++n) {
    const double down = model().dvfs_latency(1.0_GHz, 0.8_GHz, n);
    const double up = model().dvfs_latency(0.8_GHz, 1.0_GHz, n);
    EXPECT_GT(down, 0.5e-3);
    EXPECT_LT(up, 3.5e-3);
  }
}

TEST(LatencyModel, DvfsUpCostsMoreThanDown) {
  const double up = model().dvfs_latency(0.8_GHz, 1.0_GHz, 4);
  const double down = model().dvfs_latency(1.0_GHz, 0.8_GHz, 4);
  EXPECT_GT(up, down);
}

TEST(LatencyModel, DvfsGrowsWithActiveCores) {
  const double few = model().dvfs_latency(1.0_GHz, 0.8_GHz, 1);
  const double many = model().dvfs_latency(1.0_GHz, 0.8_GHz, 8);
  EXPECT_GT(many, few);
}

TEST(LatencyModel, ContractChecks) {
  EXPECT_THROW(model().hotplug_latency(CoreType::kBig, true, 0.0, {1, 0}),
               pns::ContractViolation);
  EXPECT_THROW(model().dvfs_latency(0.0, 1.0_GHz, 1),
               pns::ContractViolation);
  EXPECT_THROW(model().dvfs_latency(1.0_GHz, 1.0_GHz, -1),
               pns::ContractViolation);
  LatencyModelParams bad;
  bad.big_factor = 0.5;
  EXPECT_THROW(LatencyModel{bad}, pns::ContractViolation);
}

}  // namespace
}  // namespace pns::soc
