// Tests for OPP ladder and core-config vocabulary (soc/opp, soc/core_types).
#include "soc/opp.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"
#include "util/literals.hpp"

namespace pns::soc {
namespace {

using namespace pns::literals;

TEST(OppTable, PaperLadderContents) {
  auto t = OppTable::paper_ladder();
  ASSERT_EQ(t.size(), 8u);
  EXPECT_DOUBLE_EQ(t.frequency(0), 0.2_GHz);
  EXPECT_DOUBLE_EQ(t.frequency(1), 0.45_GHz);
  EXPECT_DOUBLE_EQ(t.frequency(2), 0.72_GHz);
  EXPECT_DOUBLE_EQ(t.frequency(3), 0.92_GHz);
  EXPECT_DOUBLE_EQ(t.frequency(4), 1.1_GHz);
  EXPECT_DOUBLE_EQ(t.frequency(5), 1.2_GHz);
  EXPECT_DOUBLE_EQ(t.frequency(6), 1.3_GHz);
  EXPECT_DOUBLE_EQ(t.frequency(7), 1.4_GHz);
}

TEST(OppTable, RequiresAscendingPositive) {
  EXPECT_THROW(OppTable({}), pns::ContractViolation);
  EXPECT_THROW(OppTable({0.0}), pns::ContractViolation);
  EXPECT_THROW(OppTable({2e9, 1e9}), pns::ContractViolation);
  EXPECT_THROW(OppTable({1e9, 1e9}), pns::ContractViolation);
}

TEST(OppTable, StepSaturatesAtEnds) {
  auto t = OppTable::paper_ladder();
  EXPECT_EQ(t.step_down(0), 0u);
  EXPECT_EQ(t.step_down(3), 2u);
  EXPECT_EQ(t.step_up(7), 7u);
  EXPECT_EQ(t.step_up(3), 4u);
}

TEST(OppTable, NearestIndex) {
  auto t = OppTable::paper_ladder();
  EXPECT_EQ(t.nearest_index(0.1_GHz), 0u);
  EXPECT_EQ(t.nearest_index(0.46_GHz), 1u);
  EXPECT_EQ(t.nearest_index(1.15_GHz), 4u);
  EXPECT_EQ(t.nearest_index(9.0_GHz), 7u);
}

TEST(OppTable, NearestIndexMidpointTieKeepsLowerIndex) {
  // Pinned contract (opp.hpp): an exact midpoint between two ladder
  // levels resolves to the *lower* index -- the power-safe choice, and
  // one that multi-domain joint ladders (scaled copies of each other)
  // hit routinely. These midpoints are exact in binary floating point,
  // so the tie is real, not a rounding accident.
  const OppTable t({1.0e9, 2.0e9, 3.0e9});
  EXPECT_EQ(t.nearest_index(1.5e9), 0u);
  EXPECT_EQ(t.nearest_index(2.5e9), 1u);
  // Off-midpoint requests still round to the genuinely nearest level.
  EXPECT_EQ(t.nearest_index(1.5e9 + 1.0), 1u);
  EXPECT_EQ(t.nearest_index(1.5e9 - 1.0), 0u);
  // The paper ladder's own midpoints obey the same rule.
  const auto p = OppTable::paper_ladder();
  const double mid = (p.frequency(4) + p.frequency(5)) / 2.0;
  EXPECT_EQ(p.nearest_index(mid), 4u);
}

TEST(OppTable, IndexOutOfRangeThrows) {
  auto t = OppTable::paper_ladder();
  EXPECT_THROW(t.frequency(8), pns::ContractViolation);
  EXPECT_THROW(t.step_up(8), pns::ContractViolation);
}

TEST(CoreConfig, TotalsAndCounts) {
  CoreConfig c{3, 2};
  EXPECT_EQ(c.total(), 5);
  EXPECT_EQ(c.count(CoreType::kLittle), 3);
  EXPECT_EQ(c.count(CoreType::kBig), 2);
}

TEST(CoreConfig, WithDelta) {
  CoreConfig c{2, 1};
  EXPECT_EQ(c.with_delta(CoreType::kBig, 1), (CoreConfig{2, 2}));
  EXPECT_EQ(c.with_delta(CoreType::kLittle, -1), (CoreConfig{1, 1}));
  EXPECT_EQ(c, (CoreConfig{2, 1}));  // original untouched
}

TEST(CoreConfig, Within) {
  CoreConfig lo{1, 0}, hi{4, 4};
  EXPECT_TRUE((CoreConfig{1, 0}).within(lo, hi));
  EXPECT_TRUE((CoreConfig{4, 4}).within(lo, hi));
  EXPECT_FALSE((CoreConfig{0, 0}).within(lo, hi));
  EXPECT_FALSE((CoreConfig{4, 5}).within(lo, hi));
}

TEST(CoreConfig, ToStringFormat) {
  EXPECT_EQ((CoreConfig{4, 2}).to_string(), "4L+2B");
}

TEST(CoreType, Names) {
  EXPECT_STREQ(to_string(CoreType::kLittle), "LITTLE");
  EXPECT_STREQ(to_string(CoreType::kBig), "big");
}

TEST(OperatingPoint, EqualityAndToString) {
  auto t = OppTable::paper_ladder();
  OperatingPoint a{4, {4, 1}}, b{4, {4, 1}}, c{5, {4, 1}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(to_string(a, t), "4L+1B @ 1.10 GHz");
}

}  // namespace
}  // namespace pns::soc
