// Tests for the PV source evaluation modes (ehsim/pv_table,
// ehsim/sources): tabulated-mode accuracy against the exact Newton solve,
// and the bit-exactness contract of the default mode.
#include <gtest/gtest.h>

#include <cmath>

#include "ehsim/pv_table.hpp"
#include "ehsim/sources.hpp"

namespace pns::ehsim {
namespace {

SolarCell paper_cell() {
  return SolarCell::calibrate(/*voc=*/6.8, /*isc=*/1.15, /*vmpp=*/5.3,
                              /*rs=*/0.30, /*rp=*/200.0);
}

// ------------------------------------------------------------- PvTable

TEST(PvTable, MeasuredErrorBoundIsTight) {
  const auto cell = paper_cell();
  const PvTable table(cell);
  // The default grid must resolve the IV knee to well under 1% of Isc.
  EXPECT_GT(table.max_abs_error_a(), 0.0);
  EXPECT_LT(table.max_abs_error_a(), 5e-3);
}

TEST(PvTable, OffGridPointsStayWithinMeasuredBound) {
  const auto cell = paper_cell();
  const PvTable table(cell);
  // Probe irrational offsets so no sample lands on a knot or midpoint.
  const double phi = 0.6180339887498949;
  double worst = 0.0;
  for (int k = 1; k <= 200; ++k) {
    const double v = std::fmod(phi * k, 1.0) * table.v_max();
    const double g = std::fmod(phi * phi * k, 1.0) * table.g_max();
    ASSERT_TRUE(table.covers(v, g));
    const double exact = cell.current(v, g);
    worst = std::max(worst, std::abs(table.current(v, g) - exact));
  }
  // Allow a whisker over the midpoint-measured bound: the error field is
  // not exactly maximised at midpoints for a nonlinear surface.
  EXPECT_LT(worst, table.max_abs_error_a() * 1.5 + 1e-12);
}

TEST(PvTable, ExactOnGridKnots) {
  const auto cell = paper_cell();
  const PvTableSpec spec{.v_max = 7.0, .g_max = 1000.0, .nv = 8, .ng = 5};
  const PvTable table(cell, spec);
  for (std::size_t vi = 0; vi < spec.nv; vi += 2) {
    const double v = 7.0 * static_cast<double>(vi) /
                     static_cast<double>(spec.nv - 1);
    const double g = 500.0;  // on the g grid (5 knots over [0, 1000])
    EXPECT_NEAR(table.current(v, g), cell.current(v, g), 1e-9)
        << "v=" << v;
  }
}

TEST(PvTable, CoversOnlyTheTabulatedRectangle) {
  const PvTable table(paper_cell());
  EXPECT_TRUE(table.covers(0.0, 0.0));
  EXPECT_TRUE(table.covers(table.v_max(), table.g_max()));
  EXPECT_FALSE(table.covers(-0.1, 500.0));
  EXPECT_FALSE(table.covers(table.v_max() + 0.1, 500.0));
  EXPECT_FALSE(table.covers(5.0, table.g_max() + 1.0));
  EXPECT_FALSE(table.covers(5.0, -1.0));
}

// ------------------------------------------------------------ PvSource

TEST(PvSource, ExactModeBitIdenticalToDirectNewton) {
  // The default mode's contract: PvSource::current is the same bits as
  // calling the cell directly (the paper-reproduction sweeps rely on this
  // for cross-PR reproducibility).
  const auto cell = paper_cell();
  const PvSource source(cell, [](double t) { return 600.0 + 10.0 * t; });
  for (int k = 0; k < 50; ++k) {
    const double v = 0.13 * k;
    const double t = 0.37 * k;
    EXPECT_EQ(source.current(v, t), cell.current(v, 600.0 + 10.0 * t));
  }
}

TEST(PvSource, RepeatedEvaluationIsMemoisedBitIdentically) {
  const PvSource source(paper_cell(), [](double) { return 850.0; });
  const double first = source.current(5.1, 3.0);
  for (int k = 0; k < 5; ++k) EXPECT_EQ(source.current(5.1, 3.0), first);
}

TEST(PvSource, TabulatedModeStaysWithinTableErrorBound) {
  const auto cell = paper_cell();
  const PvSource exact(cell, [](double) { return 850.0; });
  const PvSource tab(cell, [](double) { return 850.0; },
                     PvSource::Mode::kTabulated);
  ASSERT_NE(tab.table(), nullptr);
  const double bound = tab.table()->max_abs_error_a() * 1.5 + 1e-12;
  for (int k = 0; k < 100; ++k) {
    const double v = 0.068 * k;  // 0 .. 6.73 V
    EXPECT_NEAR(tab.current(v, 0.0), exact.current(v, 0.0), bound)
        << "v=" << v;
  }
}

TEST(PvSource, TabulatedModeFallsBackToNewtonOffTable) {
  const auto cell = paper_cell();
  const PvSource tab(cell, [](double) { return 1500.0; },  // > g_max
                     PvSource::Mode::kTabulated);
  ASSERT_FALSE(tab.table()->covers(5.0, 1500.0));
  // Off the table the answer is a Newton solve (warm-started, so equal to
  // the cold solve to solver tolerance rather than bit-identical).
  EXPECT_NEAR(tab.current(5.0, 0.0), cell.current(5.0, 1500.0), 1e-9);
}

TEST(PvSource, AvailablePowerMemoisedOnIrradiance) {
  const auto cell = paper_cell();
  const PvSource source(cell, [](double) { return 900.0; });
  const double p = source.available_power(0.0);
  EXPECT_EQ(source.available_power(10.0), p);  // same G -> same bits
  EXPECT_NEAR(p, cell.mpp(900.0).power, 1e-12);
}

TEST(PvSource, ExactModeHasNoTable) {
  const PvSource source(paper_cell(), [](double) { return 900.0; });
  EXPECT_EQ(source.mode(), PvSource::Mode::kExact);
  EXPECT_EQ(source.table(), nullptr);
}

}  // namespace
}  // namespace pns::ehsim
