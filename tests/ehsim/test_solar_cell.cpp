// Tests for the single-diode PV model (ehsim/solar_cell): calibration,
// IV-curve invariants and MPP behaviour.
#include "ehsim/solar_cell.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"

namespace pns::ehsim {
namespace {

SolarCell paper_cell() {
  return SolarCell::calibrate(/*voc=*/6.8, /*isc=*/1.15, /*vmpp=*/5.3,
                              /*rs=*/0.30, /*rp=*/200.0);
}

TEST(SolarCellCalibrate, HitsOpenCircuitVoltage) {
  auto cell = paper_cell();
  EXPECT_NEAR(cell.open_circuit_voltage(1000.0), 6.8, 0.02);
}

TEST(SolarCellCalibrate, HitsShortCircuitCurrent) {
  auto cell = paper_cell();
  EXPECT_NEAR(cell.short_circuit_current(1000.0), 1.15, 0.01);
}

TEST(SolarCellCalibrate, HitsMppVoltage) {
  auto cell = paper_cell();
  EXPECT_NEAR(cell.mpp(1000.0).voltage, 5.3, 0.05);
}

TEST(SolarCellCalibrate, MppPowerPlausible) {
  // Paper Fig. 13: array peak power ~5.4 W.
  auto cell = paper_cell();
  const double p = cell.mpp(1000.0).power;
  EXPECT_GT(p, 4.5);
  EXPECT_LT(p, 6.5);
}

TEST(SolarCellCalibrate, RejectsInconsistentTargets) {
  EXPECT_THROW(SolarCell::calibrate(5.0, 1.0, 5.5), std::invalid_argument);
  EXPECT_THROW(SolarCell::calibrate(-1.0, 1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(SolarCell::calibrate(5.0, 0.0, 4.0), std::invalid_argument);
  EXPECT_THROW(SolarCell::calibrate(5.0, 1.0, 4.0, -0.1),
               std::invalid_argument);
}

TEST(SolarCell, CurrentMonotoneDecreasingInVoltage) {
  auto cell = paper_cell();
  double prev = cell.current(0.0, 1000.0);
  for (double v = 0.2; v <= 7.4; v += 0.2) {
    const double i = cell.current(v, 1000.0);
    EXPECT_LT(i, prev) << "at v=" << v;
    prev = i;
  }
}

TEST(SolarCell, SinksBeyondOpenCircuit) {
  auto cell = paper_cell();
  EXPECT_LT(cell.current(7.2, 1000.0), 0.0);
}

TEST(SolarCell, DarkCellProducesNoPower) {
  auto cell = paper_cell();
  EXPECT_DOUBLE_EQ(cell.photo_current(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cell.photo_current(-50.0), 0.0);
  EXPECT_DOUBLE_EQ(cell.open_circuit_voltage(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cell.mpp(0.0).power, 0.0);
  EXPECT_LE(cell.current(1.0, 0.0), 0.0);  // dark diode only absorbs
}

TEST(SolarCell, PhotoCurrentLinearInIrradiance) {
  auto cell = paper_cell();
  const double i1 = cell.photo_current(250.0);
  const double i2 = cell.photo_current(500.0);
  const double i4 = cell.photo_current(1000.0);
  EXPECT_NEAR(i2, 2.0 * i1, 1e-12);
  EXPECT_NEAR(i4, 4.0 * i1, 1e-12);
}

TEST(SolarCell, MppPowerScalesSublinearlyWithIrradiance) {
  auto cell = paper_cell();
  const double p_full = cell.mpp(1000.0).power;
  const double p_half = cell.mpp(500.0).power;
  EXPECT_GT(p_half, 0.40 * p_full);  // roughly proportional
  EXPECT_LT(p_half, 0.60 * p_full);
}

TEST(SolarCell, MppIsActuallyTheMaximum) {
  auto cell = paper_cell();
  const auto mpp = cell.mpp(800.0);
  for (double v = 0.1; v < cell.open_circuit_voltage(800.0); v += 0.1) {
    EXPECT_LE(cell.power(v, 800.0), mpp.power + 1e-6) << "at v=" << v;
  }
}

TEST(SolarCell, ResidualOfImplicitEquationIsSmall) {
  auto cell = paper_cell();
  const auto& p = cell.params();
  for (double v : {0.0, 2.0, 4.0, 5.3, 6.0, 6.8}) {
    const double il = cell.photo_current(1000.0);
    const double i = cell.current_from_photo(v, il);
    const double vd = v + p.rs * i;
    const double residual =
        il - p.i0 * (std::exp(vd / p.vt_eff) - 1.0) - vd / p.rp - i;
    EXPECT_NEAR(residual, 0.0, 1e-9) << "at v=" << v;
  }
}

TEST(SolarCell, IvCurveMatchesDirectEvaluation) {
  auto cell = paper_cell();
  auto curve = cell.iv_curve(1000.0, 128);
  for (double v : {0.5, 2.5, 4.9, 6.1}) {
    EXPECT_NEAR(curve(v), cell.current(v, 1000.0), 5e-3) << "at v=" << v;
  }
}

TEST(SolarCell, ScaledAreaScalesCurrentsNotVoltages) {
  auto cell = paper_cell();
  auto half = cell.scaled_area(0.5);
  EXPECT_NEAR(half.short_circuit_current(1000.0),
              0.5 * cell.short_circuit_current(1000.0), 1e-6);
  EXPECT_NEAR(half.open_circuit_voltage(1000.0),
              cell.open_circuit_voltage(1000.0), 1e-6);
  EXPECT_NEAR(half.mpp(1000.0).power, 0.5 * cell.mpp(1000.0).power, 1e-3);
}

TEST(SolarCell, ScaledAreaRejectsNonPositive) {
  auto cell = paper_cell();
  EXPECT_THROW(cell.scaled_area(0.0), pns::ContractViolation);
}

class SolarIrradianceSweep : public ::testing::TestWithParam<double> {};

// Property: at every irradiance level, 0 <= Vmpp <= Voc, Impp <= Isc and
// MPP power equals Vmpp * Impp.
TEST_P(SolarIrradianceSweep, MppInvariants) {
  auto cell = paper_cell();
  const double g = GetParam();
  const auto mpp = cell.mpp(g);
  const double voc = cell.open_circuit_voltage(g);
  const double isc = cell.short_circuit_current(g);
  EXPECT_GE(mpp.voltage, 0.0);
  EXPECT_LE(mpp.voltage, voc + 1e-9);
  EXPECT_LE(mpp.current, isc + 1e-9);
  EXPECT_NEAR(mpp.power, mpp.voltage * mpp.current, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Irradiances, SolarIrradianceSweep,
                         ::testing::Values(50.0, 100.0, 250.0, 500.0, 750.0,
                                           1000.0, 1200.0));

}  // namespace
}  // namespace pns::ehsim
