// Tests for the ODE integrators (ehsim/rk23, ehsim/fixed_step):
// convergence orders on analytic systems and event localisation.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "ehsim/fixed_step.hpp"
#include "ehsim/ode.hpp"
#include "ehsim/rk23.hpp"

namespace pns::ehsim {
namespace {

/// y' = -k y, y(0) = 1 -> y(t) = exp(-k t).
class ExpDecay : public OdeSystem {
 public:
  explicit ExpDecay(double k) : k_(k) {}
  std::size_t dimension() const override { return 1; }
  void derivatives(double, std::span<const double> y,
                   std::span<double> dydt) const override {
    dydt[0] = -k_ * y[0];
  }

 private:
  double k_;
};

/// Harmonic oscillator: y'' = -w^2 y as a 2-state system.
class Oscillator : public OdeSystem {
 public:
  explicit Oscillator(double w) : w_(w) {}
  std::size_t dimension() const override { return 2; }
  void derivatives(double, std::span<const double> y,
                   std::span<double> dydt) const override {
    dydt[0] = y[1];
    dydt[1] = -w_ * w_ * y[0];
  }

 private:
  double w_;
};

double euler_error(double h) {
  ExpDecay sys(1.0);
  std::vector<double> y{1.0};
  integrate_euler(sys, 0.0, y, 1.0, h);
  return std::abs(y[0] - std::exp(-1.0));
}

double rk4_error(double h) {
  ExpDecay sys(1.0);
  std::vector<double> y{1.0};
  integrate_rk4(sys, 0.0, y, 1.0, h);
  return std::abs(y[0] - std::exp(-1.0));
}

TEST(FixedStep, EulerFirstOrderConvergence) {
  const double e1 = euler_error(0.01);
  const double e2 = euler_error(0.005);
  const double order = std::log2(e1 / e2);
  EXPECT_NEAR(order, 1.0, 0.15);
}

TEST(FixedStep, Rk4FourthOrderConvergence) {
  const double e1 = rk4_error(0.05);
  const double e2 = rk4_error(0.025);
  const double order = std::log2(e1 / e2);
  EXPECT_NEAR(order, 4.0, 0.3);
}

TEST(FixedStep, HandlesPartialFinalStep) {
  ExpDecay sys(1.0);
  std::vector<double> y{1.0};
  integrate_rk4(sys, 0.0, y, 0.95, 0.1);  // 9 full + 1 half step
  EXPECT_NEAR(y[0], std::exp(-0.95), 1e-6);
}

TEST(Rk23, AccurateOnExpDecay) {
  ExpDecay sys(2.0);
  Rk23Options opt;
  opt.rel_tol = 1e-8;
  opt.abs_tol = 1e-10;
  Rk23Integrator ig(sys, opt);
  const double y0 = 1.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  const auto res = ig.advance(2.0);
  EXPECT_FALSE(res.event_fired);
  EXPECT_DOUBLE_EQ(ig.time(), 2.0);
  EXPECT_NEAR(ig.state()[0], std::exp(-4.0), 1e-7);
}

TEST(Rk23, EnergyPreservedOnOscillator) {
  Oscillator sys(2.0 * std::numbers::pi);  // 1 Hz
  Rk23Options opt;
  opt.rel_tol = 1e-9;
  opt.abs_tol = 1e-12;
  Rk23Integrator ig(sys, opt);
  const std::vector<double> y0{1.0, 0.0};
  ig.reset(0.0, y0);
  ig.advance(5.0);  // 5 full periods
  EXPECT_NEAR(ig.state()[0], 1.0, 1e-5);
  EXPECT_NEAR(ig.state()[1], 0.0, 1e-4);
}

TEST(Rk23, ToleranceControlsError) {
  ExpDecay sys(1.0);
  auto run = [&](double rtol) {
    Rk23Options opt;
    opt.rel_tol = rtol;
    opt.abs_tol = rtol * 1e-3;
    Rk23Integrator ig(sys, opt);
    const double y0 = 1.0;
    ig.reset(0.0, std::span<const double>(&y0, 1));
    ig.advance(1.0);
    return std::abs(ig.state()[0] - std::exp(-1.0));
  };
  EXPECT_LT(run(1e-9), run(1e-4));
  EXPECT_LT(run(1e-4), 1e-3);
}

TEST(Rk23, LooserToleranceTakesFewerSteps) {
  ExpDecay sys(1.0);
  auto steps = [&](double rtol) {
    Rk23Options opt;
    opt.rel_tol = rtol;
    opt.abs_tol = 1e-12;
    Rk23Integrator ig(sys, opt);
    const double y0 = 1.0;
    ig.reset(0.0, std::span<const double>(&y0, 1));
    ig.advance(10.0);
    return ig.total_steps();
  };
  EXPECT_LT(steps(1e-3), steps(1e-8));
}

TEST(Rk23, RespectsMaxStep) {
  ExpDecay sys(1e-6);  // nearly constant -> wants huge steps
  Rk23Options opt;
  opt.max_step = 0.125;
  Rk23Integrator ig(sys, opt);
  const double y0 = 1.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  const auto res = ig.advance(1.0);
  EXPECT_GE(res.steps_taken, 8u);
}

TEST(Rk23, EventLocalisedAccurately) {
  // y = exp(-t) crosses 0.5 at t = ln 2.
  ExpDecay sys(1.0);
  Rk23Integrator ig(sys);
  const double y0 = 1.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  EventSpec ev{[](double, std::span<const double> y) { return y[0] - 0.5; },
               EventDirection::kFalling, 42};
  const auto res = ig.advance(5.0, std::span<const EventSpec>(&ev, 1));
  ASSERT_TRUE(res.event_fired);
  EXPECT_EQ(res.event_tag, 42);
  EXPECT_NEAR(res.t, std::numbers::ln2, 1e-5);
  EXPECT_NEAR(ig.state()[0], 0.5, 1e-5);
}

TEST(Rk23, RisingEventIgnoredOnFallingSignal) {
  ExpDecay sys(1.0);
  Rk23Integrator ig(sys);
  const double y0 = 1.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  EventSpec ev{[](double, std::span<const double> y) { return y[0] - 0.5; },
               EventDirection::kRising, 1};
  const auto res = ig.advance(3.0, std::span<const EventSpec>(&ev, 1));
  EXPECT_FALSE(res.event_fired);
  EXPECT_DOUBLE_EQ(res.t, 3.0);
}

TEST(Rk23, ContinuesAfterEvent) {
  ExpDecay sys(1.0);
  Rk23Integrator ig(sys);
  const double y0 = 1.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  EventSpec ev{[](double, std::span<const double> y) { return y[0] - 0.5; },
               EventDirection::kFalling, 1};
  auto res = ig.advance(5.0, std::span<const EventSpec>(&ev, 1));
  ASSERT_TRUE(res.event_fired);
  // Advance again; the same event function is already below zero, so no
  // new crossing fires and the run completes.
  res = ig.advance(5.0, std::span<const EventSpec>(&ev, 1));
  EXPECT_FALSE(res.event_fired);
  EXPECT_NEAR(ig.state()[0], std::exp(-5.0), 1e-6);
}

TEST(Rk23, EarliestOfMultipleEventsWins) {
  ExpDecay sys(1.0);
  Rk23Integrator ig(sys);
  const double y0 = 1.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  std::vector<EventSpec> evs{
      {[](double, std::span<const double> y) { return y[0] - 0.3; },
       EventDirection::kFalling, 1},
      {[](double, std::span<const double> y) { return y[0] - 0.7; },
       EventDirection::kFalling, 2},
  };
  const auto res = ig.advance(5.0, evs);
  ASSERT_TRUE(res.event_fired);
  EXPECT_EQ(res.event_tag, 2);  // 0.7 crossed first
  EXPECT_NEAR(res.t, -std::log(0.7), 1e-5);
}

TEST(Rk23, EarliestOfTwoEventsInOneStepWins) {
  // y' = -1 is integrated exactly by RK23 (zero error estimate), so with a
  // forced large first step BOTH thresholds are crossed inside a single
  // accepted step. The later-listed event crosses first and must win the
  // earliest-root selection.
  class Ramp : public OdeSystem {
   public:
    std::size_t dimension() const override { return 1; }
    void derivatives(double, std::span<const double>,
                     std::span<double> dydt) const override {
      dydt[0] = -1.0;
    }
  };
  Ramp sys;
  Rk23Options opt;
  opt.initial_step = 5.0;
  Rk23Integrator ig(sys, opt);
  const double y0 = 1.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  std::vector<EventSpec> evs{
      EventSpec::threshold(0.35, EventDirection::kFalling, 1),
      EventSpec::threshold(0.65, EventDirection::kFalling, 2),  // earlier
  };
  const auto res = ig.advance(5.0, evs);
  ASSERT_TRUE(res.event_fired);
  EXPECT_EQ(res.steps_taken, 1u);  // both crossings in the same step
  EXPECT_EQ(res.event_tag, 2);
  EXPECT_NEAR(res.t, 0.35, 1e-5);  // y = 1 - t hits 0.65 at t = 0.35
}

TEST(Rk23, ThresholdSpecMatchesCallbackSpec) {
  // The data-only threshold form and an equivalent callback must localise
  // the identical event identically.
  ExpDecay sys(1.0);
  const double y0 = 1.0;
  auto run = [&](const EventSpec& ev) {
    Rk23Integrator ig(sys);
    ig.reset(0.0, std::span<const double>(&y0, 1));
    return ig.advance(5.0, std::span<const EventSpec>(&ev, 1));
  };
  const auto fast =
      run(EventSpec::threshold(0.5, EventDirection::kFalling, 7));
  const auto slow = run(EventSpec{
      [](double, std::span<const double> y) { return y[0] - 0.5; },
      EventDirection::kFalling, 7});
  ASSERT_TRUE(fast.event_fired);
  ASSERT_TRUE(slow.event_fired);
  EXPECT_EQ(fast.event_tag, 7);
  EXPECT_EQ(fast.t, slow.t);  // bit-identical localisation
  EXPECT_EQ(fast.steps_taken, slow.steps_taken);
}

TEST(Rk23, TimeBasedEventOnStiffFlatState) {
  ExpDecay sys(0.0);  // constant state
  Rk23Integrator ig(sys);
  const double y0 = 1.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  EventSpec ev{[](double t, std::span<const double>) { return t - 0.5; },
               EventDirection::kRising, 9};
  const auto res = ig.advance(2.0, std::span<const EventSpec>(&ev, 1));
  ASSERT_TRUE(res.event_fired);
  EXPECT_NEAR(res.t, 0.5, 1e-6);
}

TEST(Rk23, AdvancePastEndIsNoop) {
  ExpDecay sys(1.0);
  Rk23Integrator ig(sys);
  const double y0 = 1.0;
  ig.reset(1.0, std::span<const double>(&y0, 1));
  const auto res = ig.advance(0.5);
  EXPECT_EQ(res.steps_taken, 0u);
  EXPECT_DOUBLE_EQ(ig.time(), 1.0);
}

class Rk23ToleranceSweep : public ::testing::TestWithParam<double> {};

// Property: the achieved global error stays within two orders of magnitude
// of the requested relative tolerance for this smooth problem.
TEST_P(Rk23ToleranceSweep, ErrorTracksTolerance) {
  const double rtol = GetParam();
  ExpDecay sys(1.5);
  Rk23Options opt;
  opt.rel_tol = rtol;
  opt.abs_tol = rtol * 1e-2;
  Rk23Integrator ig(sys, opt);
  const double y0 = 2.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  ig.advance(1.0);
  const double err = std::abs(ig.state()[0] - 2.0 * std::exp(-1.5));
  EXPECT_LT(err, rtol * 100.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Tolerances, Rk23ToleranceSweep,
                         ::testing::Values(1e-3, 1e-4, 1e-5, 1e-6, 1e-7,
                                           1e-8));

}  // namespace
}  // namespace pns::ehsim
