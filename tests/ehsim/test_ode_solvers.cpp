// Tests for the ODE integrators (ehsim/rk23, ehsim/fixed_step):
// convergence orders on analytic systems, event localisation (bisection
// and dense-output root), the PI step controller, and cross-integrator
// parity on the paper's storage-node circuit.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "ehsim/circuit.hpp"
#include "ehsim/dense_output.hpp"
#include "ehsim/fixed_step.hpp"
#include "ehsim/loads.hpp"
#include "ehsim/ode.hpp"
#include "ehsim/rk23.hpp"
#include "ehsim/sources.hpp"
#include "ehsim/stepper_pi.hpp"
#include "sim/experiment.hpp"

namespace pns::ehsim {
namespace {

/// y' = -k y, y(0) = 1 -> y(t) = exp(-k t).
class ExpDecay : public OdeSystem {
 public:
  explicit ExpDecay(double k) : k_(k) {}
  std::size_t dimension() const override { return 1; }
  void derivatives(double, std::span<const double> y,
                   std::span<double> dydt) const override {
    dydt[0] = -k_ * y[0];
  }

 private:
  double k_;
};

/// Harmonic oscillator: y'' = -w^2 y as a 2-state system.
class Oscillator : public OdeSystem {
 public:
  explicit Oscillator(double w) : w_(w) {}
  std::size_t dimension() const override { return 2; }
  void derivatives(double, std::span<const double> y,
                   std::span<double> dydt) const override {
    dydt[0] = y[1];
    dydt[1] = -w_ * w_ * y[0];
  }

 private:
  double w_;
};

double euler_error(double h) {
  ExpDecay sys(1.0);
  std::vector<double> y{1.0};
  integrate_euler(sys, 0.0, y, 1.0, h);
  return std::abs(y[0] - std::exp(-1.0));
}

double rk4_error(double h) {
  ExpDecay sys(1.0);
  std::vector<double> y{1.0};
  integrate_rk4(sys, 0.0, y, 1.0, h);
  return std::abs(y[0] - std::exp(-1.0));
}

TEST(FixedStep, EulerFirstOrderConvergence) {
  const double e1 = euler_error(0.01);
  const double e2 = euler_error(0.005);
  const double order = std::log2(e1 / e2);
  EXPECT_NEAR(order, 1.0, 0.15);
}

TEST(FixedStep, Rk4FourthOrderConvergence) {
  const double e1 = rk4_error(0.05);
  const double e2 = rk4_error(0.025);
  const double order = std::log2(e1 / e2);
  EXPECT_NEAR(order, 4.0, 0.3);
}

TEST(FixedStep, HandlesPartialFinalStep) {
  ExpDecay sys(1.0);
  std::vector<double> y{1.0};
  integrate_rk4(sys, 0.0, y, 0.95, 0.1);  // 9 full + 1 half step
  EXPECT_NEAR(y[0], std::exp(-0.95), 1e-6);
}

TEST(Rk23, AccurateOnExpDecay) {
  ExpDecay sys(2.0);
  Rk23Options opt;
  opt.rel_tol = 1e-8;
  opt.abs_tol = 1e-10;
  Rk23Integrator ig(sys, opt);
  const double y0 = 1.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  const auto res = ig.advance(2.0);
  EXPECT_FALSE(res.event_fired);
  EXPECT_DOUBLE_EQ(ig.time(), 2.0);
  EXPECT_NEAR(ig.state()[0], std::exp(-4.0), 1e-7);
}

TEST(Rk23, EnergyPreservedOnOscillator) {
  Oscillator sys(2.0 * std::numbers::pi);  // 1 Hz
  Rk23Options opt;
  opt.rel_tol = 1e-9;
  opt.abs_tol = 1e-12;
  Rk23Integrator ig(sys, opt);
  const std::vector<double> y0{1.0, 0.0};
  ig.reset(0.0, y0);
  ig.advance(5.0);  // 5 full periods
  EXPECT_NEAR(ig.state()[0], 1.0, 1e-5);
  EXPECT_NEAR(ig.state()[1], 0.0, 1e-4);
}

TEST(Rk23, ToleranceControlsError) {
  ExpDecay sys(1.0);
  auto run = [&](double rtol) {
    Rk23Options opt;
    opt.rel_tol = rtol;
    opt.abs_tol = rtol * 1e-3;
    Rk23Integrator ig(sys, opt);
    const double y0 = 1.0;
    ig.reset(0.0, std::span<const double>(&y0, 1));
    ig.advance(1.0);
    return std::abs(ig.state()[0] - std::exp(-1.0));
  };
  EXPECT_LT(run(1e-9), run(1e-4));
  EXPECT_LT(run(1e-4), 1e-3);
}

TEST(Rk23, LooserToleranceTakesFewerSteps) {
  ExpDecay sys(1.0);
  auto steps = [&](double rtol) {
    Rk23Options opt;
    opt.rel_tol = rtol;
    opt.abs_tol = 1e-12;
    Rk23Integrator ig(sys, opt);
    const double y0 = 1.0;
    ig.reset(0.0, std::span<const double>(&y0, 1));
    ig.advance(10.0);
    return ig.total_steps();
  };
  EXPECT_LT(steps(1e-3), steps(1e-8));
}

TEST(Rk23, RespectsMaxStep) {
  ExpDecay sys(1e-6);  // nearly constant -> wants huge steps
  Rk23Options opt;
  opt.max_step = 0.125;
  Rk23Integrator ig(sys, opt);
  const double y0 = 1.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  const auto res = ig.advance(1.0);
  EXPECT_GE(res.steps_taken, 8u);
}

TEST(Rk23, EventLocalisedAccurately) {
  // y = exp(-t) crosses 0.5 at t = ln 2.
  ExpDecay sys(1.0);
  Rk23Integrator ig(sys);
  const double y0 = 1.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  EventSpec ev{[](double, std::span<const double> y) { return y[0] - 0.5; },
               EventDirection::kFalling, 42};
  const auto res = ig.advance(5.0, std::span<const EventSpec>(&ev, 1));
  ASSERT_TRUE(res.event_fired);
  EXPECT_EQ(res.event_tag, 42);
  EXPECT_NEAR(res.t, std::numbers::ln2, 1e-5);
  EXPECT_NEAR(ig.state()[0], 0.5, 1e-5);
}

TEST(Rk23, RisingEventIgnoredOnFallingSignal) {
  ExpDecay sys(1.0);
  Rk23Integrator ig(sys);
  const double y0 = 1.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  EventSpec ev{[](double, std::span<const double> y) { return y[0] - 0.5; },
               EventDirection::kRising, 1};
  const auto res = ig.advance(3.0, std::span<const EventSpec>(&ev, 1));
  EXPECT_FALSE(res.event_fired);
  EXPECT_DOUBLE_EQ(res.t, 3.0);
}

TEST(Rk23, ContinuesAfterEvent) {
  ExpDecay sys(1.0);
  Rk23Integrator ig(sys);
  const double y0 = 1.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  EventSpec ev{[](double, std::span<const double> y) { return y[0] - 0.5; },
               EventDirection::kFalling, 1};
  auto res = ig.advance(5.0, std::span<const EventSpec>(&ev, 1));
  ASSERT_TRUE(res.event_fired);
  // Advance again; the same event function is already below zero, so no
  // new crossing fires and the run completes.
  res = ig.advance(5.0, std::span<const EventSpec>(&ev, 1));
  EXPECT_FALSE(res.event_fired);
  EXPECT_NEAR(ig.state()[0], std::exp(-5.0), 1e-6);
}

TEST(Rk23, EarliestOfMultipleEventsWins) {
  ExpDecay sys(1.0);
  Rk23Integrator ig(sys);
  const double y0 = 1.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  std::vector<EventSpec> evs{
      {[](double, std::span<const double> y) { return y[0] - 0.3; },
       EventDirection::kFalling, 1},
      {[](double, std::span<const double> y) { return y[0] - 0.7; },
       EventDirection::kFalling, 2},
  };
  const auto res = ig.advance(5.0, evs);
  ASSERT_TRUE(res.event_fired);
  EXPECT_EQ(res.event_tag, 2);  // 0.7 crossed first
  EXPECT_NEAR(res.t, -std::log(0.7), 1e-5);
}

TEST(Rk23, EarliestOfTwoEventsInOneStepWins) {
  // y' = -1 is integrated exactly by RK23 (zero error estimate), so with a
  // forced large first step BOTH thresholds are crossed inside a single
  // accepted step. The later-listed event crosses first and must win the
  // earliest-root selection.
  class Ramp : public OdeSystem {
   public:
    std::size_t dimension() const override { return 1; }
    void derivatives(double, std::span<const double>,
                     std::span<double> dydt) const override {
      dydt[0] = -1.0;
    }
  };
  Ramp sys;
  Rk23Options opt;
  opt.initial_step = 5.0;
  Rk23Integrator ig(sys, opt);
  const double y0 = 1.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  std::vector<EventSpec> evs{
      EventSpec::threshold(0.35, EventDirection::kFalling, 1),
      EventSpec::threshold(0.65, EventDirection::kFalling, 2),  // earlier
  };
  const auto res = ig.advance(5.0, evs);
  ASSERT_TRUE(res.event_fired);
  EXPECT_EQ(res.steps_taken, 1u);  // both crossings in the same step
  EXPECT_EQ(res.event_tag, 2);
  EXPECT_NEAR(res.t, 0.35, 1e-5);  // y = 1 - t hits 0.65 at t = 0.35
}

TEST(Rk23, ThresholdSpecMatchesCallbackSpec) {
  // The data-only threshold form and an equivalent callback must localise
  // the identical event identically.
  ExpDecay sys(1.0);
  const double y0 = 1.0;
  auto run = [&](const EventSpec& ev) {
    Rk23Integrator ig(sys);
    ig.reset(0.0, std::span<const double>(&y0, 1));
    return ig.advance(5.0, std::span<const EventSpec>(&ev, 1));
  };
  const auto fast =
      run(EventSpec::threshold(0.5, EventDirection::kFalling, 7));
  const auto slow = run(EventSpec{
      [](double, std::span<const double> y) { return y[0] - 0.5; },
      EventDirection::kFalling, 7});
  ASSERT_TRUE(fast.event_fired);
  ASSERT_TRUE(slow.event_fired);
  EXPECT_EQ(fast.event_tag, 7);
  EXPECT_EQ(fast.t, slow.t);  // bit-identical localisation
  EXPECT_EQ(fast.steps_taken, slow.steps_taken);
}

TEST(Rk23, TimeBasedEventOnStiffFlatState) {
  ExpDecay sys(0.0);  // constant state
  Rk23Integrator ig(sys);
  const double y0 = 1.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  EventSpec ev{[](double t, std::span<const double>) { return t - 0.5; },
               EventDirection::kRising, 9};
  const auto res = ig.advance(2.0, std::span<const EventSpec>(&ev, 1));
  ASSERT_TRUE(res.event_fired);
  EXPECT_NEAR(res.t, 0.5, 1e-6);
}

TEST(Rk23, AdvancePastEndIsNoop) {
  ExpDecay sys(1.0);
  Rk23Integrator ig(sys);
  const double y0 = 1.0;
  ig.reset(1.0, std::span<const double>(&y0, 1));
  const auto res = ig.advance(0.5);
  EXPECT_EQ(res.steps_taken, 0u);
  EXPECT_DOUBLE_EQ(ig.time(), 1.0);
}

// ------------------------------------------------- PI step controller

TEST(PiStepController, AcceptGrowsRejectShrinks) {
  PiStepController pi;
  const double grow = pi.on_accepted(1e-4);
  EXPECT_GT(grow, 1.0);
  const double shrink = pi.on_rejected(2.0);
  EXPECT_LT(shrink, 1.0);
  EXPECT_EQ(pi.rejections(), 1u);
  // Growth immediately after a rejection is capped at 1.
  EXPECT_LE(pi.on_accepted(1e-6), 1.0);
}

TEST(PiStepController, IntegralTermSmoothsGrowth) {
  // With history, growth is damped by the previous (small) error: the
  // controller walks h up smoothly instead of slamming into the clamp
  // and rejecting. The first accepted step (no history) falls back to
  // the eager elementary rule.
  PiStepController with_history;
  with_history.on_accepted(1e-4);
  const double damped = with_history.on_accepted(1e-4);
  PiStepController fresh;
  const double eager = fresh.on_accepted(1e-4);
  EXPECT_LT(damped, eager);
  EXPECT_GT(damped, 1.0);
}

TEST(Rk23, PiControlTakesFewerStepsOnPaperCircuit) {
  // Engine-shaped workload: the storage node under constant harvest,
  // advanced in 50 ms segments at the classic 10 ms step ceiling. The
  // clamped rule oscillates around the tolerable step (grow 5x,
  // over-reach, shrink); the PI controller converges onto it and stays,
  // which is where BM_Rk23PiSecondOfCircuit's speedup comes from.
  const auto cell = pns::sim::paper_pv_array();
  const PvSource source(cell, [](double) { return 800.0; });
  const ConstantPowerLoad load(3.5);
  const EhCircuit circuit(source, load, Capacitor{47e-3, 0.0, 50e3});
  auto steps = [&](StepControl sc) {
    Rk23Options opt;
    opt.rel_tol = 1e-6;
    opt.abs_tol = 1e-8;
    opt.max_step = 0.01;
    opt.step_control = sc;
    Rk23Integrator ig(circuit, opt);
    const double v0 = 5.0;
    ig.reset(0.0, std::span<const double>(&v0, 1));
    for (double t = 0.0; t < 10.0; t += 0.05) ig.advance(t + 0.05);
    return ig.total_steps() + ig.total_rejected();
  };
  EXPECT_LT(steps(StepControl::kPi), steps(StepControl::kClamped));
}

TEST(Rk23, PiStaysAccurateOnExpDecay) {
  ExpDecay sys(2.0);
  Rk23Options opt;
  opt.rel_tol = 1e-8;
  opt.abs_tol = 1e-10;
  opt.step_control = StepControl::kPi;
  Rk23Integrator ig(sys, opt);
  const double y0 = 1.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  const auto res = ig.advance(2.0);
  EXPECT_FALSE(res.event_fired);
  EXPECT_NEAR(ig.state()[0], std::exp(-4.0), 1e-7);
}

// ------------------------------------------------- dense-output roots

TEST(DenseOutput, HermiteCubicReproducesEndpointData) {
  const auto c = HermiteCubic::from_step(0.5, 2.0, 1.0, -3.0, -1.0);
  EXPECT_NEAR(c.eval(0.0), 2.0, 1e-12);
  EXPECT_NEAR(c.eval(1.0), 1.0, 1e-12);
  // deriv is d/ds = h * dy/dt.
  EXPECT_NEAR(c.deriv(0.0), 0.5 * -3.0, 1e-12);
  EXPECT_NEAR(c.deriv(1.0), 0.5 * -1.0, 1e-12);
}

TEST(DenseOutput, FindsEarliestOfMultipleCrossings) {
  // y(s) = cos(2 pi s)-ish shape via Hermite data: falls then rises, so
  // level 0 is crossed twice; kFalling must return the first crossing
  // and kRising the second.
  const auto c = HermiteCubic::from_step(1.0, 1.0, 1.0, -8.0, 8.0);
  const auto falling =
      earliest_crossing(c, 0.0, EventDirection::kFalling, 1e-9);
  const auto rising =
      earliest_crossing(c, 0.0, EventDirection::kRising, 1e-9);
  // Falling crossing must exist and precede the rising one.
  ASSERT_TRUE(falling.found);
  ASSERT_TRUE(rising.found);
  EXPECT_LT(falling.s, rising.s);
  const auto any = earliest_crossing(c, 0.0, EventDirection::kAny, 1e-9);
  ASSERT_TRUE(any.found);
  EXPECT_NEAR(any.s, falling.s, 1e-6);
}

TEST(Rk23, DenseRootMatchesBisectionRoot) {
  // The satellite contract: on the same event, the dense-output cubic
  // root and the bisection root agree within the event tolerance.
  ExpDecay sys(1.0);
  const double y0 = 1.0;
  auto run = [&](EventLocalization el) {
    Rk23Options opt;
    opt.event_tol = 1e-9;
    opt.event_localization = el;
    Rk23Integrator ig(sys, opt);
    ig.reset(0.0, std::span<const double>(&y0, 1));
    const auto ev =
        EventSpec::threshold(0.5, EventDirection::kFalling, 3);
    return ig.advance(5.0, std::span<const EventSpec>(&ev, 1));
  };
  const auto dense = run(EventLocalization::kDenseRoot);
  const auto bisect = run(EventLocalization::kBisection);
  ASSERT_TRUE(dense.event_fired);
  ASSERT_TRUE(bisect.event_fired);
  EXPECT_EQ(dense.event_tag, 3);
  EXPECT_NEAR(dense.t, bisect.t, 1e-7);
  EXPECT_NEAR(dense.t, std::numbers::ln2, 1e-5);
}

TEST(Rk23, DenseRootEarliestOfTwoEventsInOneStepWins) {
  // The dense-root analogue of the ramp test: both thresholds cross in
  // one forced large step; the later-listed (earlier-crossing) event
  // must win under dense localisation too.
  class Ramp : public OdeSystem {
   public:
    std::size_t dimension() const override { return 1; }
    void derivatives(double, std::span<const double>,
                     std::span<double> dydt) const override {
      dydt[0] = -1.0;
    }
  };
  Ramp sys;
  Rk23Options opt;
  opt.initial_step = 5.0;
  opt.event_localization = EventLocalization::kDenseRoot;
  Rk23Integrator ig(sys, opt);
  const double y0 = 1.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  std::vector<EventSpec> evs{
      EventSpec::threshold(0.35, EventDirection::kFalling, 1),
      EventSpec::threshold(0.65, EventDirection::kFalling, 2),
  };
  const auto res = ig.advance(5.0, evs);
  ASSERT_TRUE(res.event_fired);
  EXPECT_EQ(res.event_tag, 2);
  EXPECT_NEAR(res.t, 0.35, 1e-5);
}

// ------------------------------------- cross-integrator circuit parity

TEST(IntegratorParity, FixedRk23AndPiAgreeOnPaperCircuit) {
  // The paper's storage node under constant irradiance and a constant-
  // power load, integrated three ways: classic RK4 at a small fixed
  // step (reference), the default adaptive RK23, and the rk23pi
  // configuration (PI control + dense events, looser tolerance). All
  // three must agree on the final node voltage to well under a
  // millivolt over 10 simulated seconds.
  const auto cell = pns::sim::paper_pv_array();
  const PvSource source(cell, [](double) { return 800.0; });
  const ConstantPowerLoad load(3.5);
  const EhCircuit circuit(source, load, Capacitor{47e-3, 0.0, 50e3});

  const double v0 = 5.0;
  std::vector<double> ref{v0};
  integrate_rk4(circuit, 0.0, ref, 10.0, 1e-3);

  auto adaptive = [&](StepControl sc, EventLocalization el, double rtol,
                      double max_step) {
    Rk23Options opt;
    opt.rel_tol = rtol;
    opt.abs_tol = 1e-8;
    opt.max_step = max_step;
    opt.step_control = sc;
    opt.event_localization = el;
    Rk23Integrator ig(circuit, opt);
    ig.reset(0.0, std::span<const double>(&v0, 1));
    ig.advance(10.0);
    return ig.state()[0];
  };
  const double rk23 = adaptive(StepControl::kClamped,
                               EventLocalization::kBisection, 1e-6, 0.01);
  const double rk23pi = adaptive(StepControl::kPi,
                                 EventLocalization::kDenseRoot, 1e-4, 0.25);
  EXPECT_NEAR(rk23, ref[0], 1e-4);
  EXPECT_NEAR(rk23pi, ref[0], 5e-4);
  EXPECT_NEAR(rk23pi, rk23, 5e-4);
}

class Rk23ToleranceSweep : public ::testing::TestWithParam<double> {};

// Property: the achieved global error stays within two orders of magnitude
// of the requested relative tolerance for this smooth problem.
TEST_P(Rk23ToleranceSweep, ErrorTracksTolerance) {
  const double rtol = GetParam();
  ExpDecay sys(1.5);
  Rk23Options opt;
  opt.rel_tol = rtol;
  opt.abs_tol = rtol * 1e-2;
  Rk23Integrator ig(sys, opt);
  const double y0 = 2.0;
  ig.reset(0.0, std::span<const double>(&y0, 1));
  ig.advance(1.0);
  const double err = std::abs(ig.state()[0] - 2.0 * std::exp(-1.5));
  EXPECT_LT(err, rtol * 100.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Tolerances, Rk23ToleranceSweep,
                         ::testing::Values(1e-3, 1e-4, 1e-5, 1e-6, 1e-7,
                                           1e-8));

}  // namespace
}  // namespace pns::ehsim
