// Tests for the capacitor, sources, loads and the single-node circuit
// (ehsim/capacitor, ehsim/sources, ehsim/loads, ehsim/circuit).
#include <gtest/gtest.h>

#include <cmath>

#include "ehsim/capacitor.hpp"
#include "ehsim/circuit.hpp"
#include "ehsim/loads.hpp"
#include "ehsim/rk23.hpp"
#include "ehsim/sources.hpp"
#include "util/contracts.hpp"

namespace pns::ehsim {
namespace {

TEST(Capacitor, EnergyAndCharge) {
  Capacitor c{.capacitance = 47e-3};
  EXPECT_NEAR(c.energy(5.0), 0.5 * 47e-3 * 25.0, 1e-12);
  EXPECT_NEAR(c.charge(5.0), 0.235, 1e-12);
}

TEST(Capacitor, LeakageCurrent) {
  Capacitor c{.capacitance = 1e-3, .esr = 0.0, .leakage_resistance = 1e4};
  EXPECT_NEAR(c.leakage_current(5.0), 5e-4, 1e-12);
}

TEST(Capacitor, TerminalVoltageDropsAcrossEsr) {
  Capacitor c{.capacitance = 1e-3, .esr = 0.1};
  EXPECT_NEAR(c.terminal_voltage(5.0, 2.0), 4.8, 1e-12);
}

TEST(Capacitor, RequiredCapacitanceRule) {
  // Table I scenario (b): 46.1 mC over 3 V -> ~15.4 mF.
  EXPECT_NEAR(required_capacitance(0.0461, 3.0), 15.37e-3, 0.05e-3);
  EXPECT_THROW(required_capacitance(0.1, 0.0), pns::ContractViolation);
  EXPECT_THROW(required_capacitance(-0.1, 1.0), pns::ContractViolation);
}

TEST(ConstantPowerLoad, CurrentIsPowerOverVoltage) {
  ConstantPowerLoad load(10.0);
  EXPECT_NEAR(load.current(5.0, 0.0), 2.0, 1e-12);
  EXPECT_NEAR(load.current(4.0, 0.0), 2.5, 1e-12);
}

TEST(ConstantPowerLoad, CutoffSwitchesToResidual) {
  ConstantPowerLoad load(10.0, 4.1, 0.05);
  EXPECT_NEAR(load.current(4.0, 0.0), 0.05 / 4.0, 1e-12);
  EXPECT_NEAR(load.current(4.2, 0.0), 10.0 / 4.2, 1e-12);
}

TEST(ConstantPowerLoad, NoSingularityAtZeroVolts) {
  ConstantPowerLoad load(10.0);
  EXPECT_LT(load.current(0.0, 0.0), 10.0 / 0.049);
  EXPECT_GT(load.current(0.0, 0.0), 0.0);
}

TEST(ConstantPowerLoad, SetWattsValidates) {
  ConstantPowerLoad load(10.0);
  load.set_watts(3.0);
  EXPECT_NEAR(load.current(3.0, 0.0), 1.0, 1e-12);
  EXPECT_THROW(load.set_watts(-1.0), pns::ContractViolation);
}

TEST(ResistiveLoad, OhmsLaw) {
  ResistiveLoad load(100.0);
  EXPECT_NEAR(load.current(5.0, 0.0), 0.05, 1e-12);
  EXPECT_THROW(ResistiveLoad(0.0), pns::ContractViolation);
}

TEST(CallbackLoad, ForwardsToFunction) {
  CallbackLoad load([](double v, double t) { return v + t; });
  EXPECT_DOUBLE_EQ(load.current(2.0, 3.0), 5.0);
}

TEST(ControlledSupply, PushesAndSinks) {
  ControlledSupply s([](double) { return 5.0; }, 10.0);
  EXPECT_NEAR(s.current(4.0, 0.0), 0.1, 1e-12);
  EXPECT_NEAR(s.current(6.0, 0.0), -0.1, 1e-12);
}

TEST(ControlledSupply, DiodeIsolationBlocksSinking) {
  ControlledSupply s([](double) { return 5.0; }, 10.0,
                     /*diode_isolated=*/true);
  EXPECT_NEAR(s.current(6.0, 0.0), 0.0, 1e-12);
  EXPECT_GT(s.current(4.0, 0.0), 0.0);
}

TEST(ControlledSupply, AvailablePowerIsMaxTransfer) {
  ControlledSupply s([](double) { return 10.0; }, 5.0);
  EXPECT_NEAR(s.available_power(0.0), 100.0 / 20.0, 1e-12);
}

TEST(EhCircuit, RcDischargeMatchesAnalytic) {
  // C discharging through R: v(t) = v0 exp(-t/RC).
  ConstantCurrentSource none(0.0);
  ResistiveLoad load(100.0);
  EhCircuit circuit(none, load, Capacitor{.capacitance = 1e-2,
                                          .esr = 0.0,
                                          .leakage_resistance = 1e12});
  Rk23Options opt;
  opt.rel_tol = 1e-9;
  opt.abs_tol = 1e-12;
  Rk23Integrator ig(circuit, opt);
  const double v0 = 5.0;
  ig.reset(0.0, std::span<const double>(&v0, 1));
  ig.advance(1.0);
  EXPECT_NEAR(ig.state()[0], 5.0 * std::exp(-1.0), 1e-6);
}

TEST(EhCircuit, ConstantCurrentChargesLinearly) {
  ConstantCurrentSource src(0.1);
  ConstantPowerLoad load(0.0);
  EhCircuit circuit(src, load, Capacitor{.capacitance = 0.05,
                                         .esr = 0.0,
                                         .leakage_resistance = 1e12});
  Rk23Integrator ig(circuit);
  const double v0 = 1.0;
  ig.reset(0.0, std::span<const double>(&v0, 1));
  ig.advance(2.0);
  // dv/dt = I/C = 2 V/s -> v(2) = 5 V
  EXPECT_NEAR(ig.state()[0], 5.0, 1e-5);
}

TEST(EhCircuit, NodeVoltageCannotGoNegative) {
  ConstantCurrentSource none(0.0);
  ConstantPowerLoad load(1.0);  // keeps drawing even at 0 V (floored)
  EhCircuit circuit(none, load, Capacitor{.capacitance = 1e-3,
                                          .esr = 0.0,
                                          .leakage_resistance = 1e12});
  Rk23Options opt;
  opt.max_step = 1e-3;
  Rk23Integrator ig(circuit, opt);
  const double v0 = 0.5;
  ig.reset(0.0, std::span<const double>(&v0, 1));
  ig.advance(5.0);
  EXPECT_GE(ig.state()[0], -1e-6);
}

TEST(EhCircuit, EquilibriumFoundByBisection) {
  // Supply 5 V behind 10 ohm vs resistive load 10 ohm -> equilibrium 2.5 V.
  ControlledSupply src([](double) { return 5.0; }, 10.0);
  ResistiveLoad load(10.0);
  EhCircuit circuit(src, load, Capacitor{.capacitance = 1e-3,
                                         .esr = 0.0,
                                         .leakage_resistance = 1e12});
  EXPECT_NEAR(circuit.equilibrium_voltage(0.0, 0.0, 5.0), 2.5, 1e-6);
}

TEST(EhCircuit, LeakageDischargesIdleNode) {
  ConstantCurrentSource none(0.0);
  ConstantPowerLoad load(0.0);
  EhCircuit circuit(none, load, Capacitor{.capacitance = 1e-2,
                                          .esr = 0.0,
                                          .leakage_resistance = 100.0});
  Rk23Options opt;
  opt.rel_tol = 1e-9;
  opt.abs_tol = 1e-12;
  Rk23Integrator ig(circuit, opt);
  const double v0 = 5.0;
  ig.reset(0.0, std::span<const double>(&v0, 1));
  ig.advance(1.0);  // tau = R*C = 1 s
  EXPECT_NEAR(ig.state()[0], 5.0 * std::exp(-1.0), 1e-5);
}

TEST(EhCircuit, PvSourceDrivesNodeTowardsOpenCircuit) {
  auto cell = SolarCell::calibrate(6.8, 1.15, 5.3, 0.3, 200.0);
  PvSource src(cell, [](double) { return 1000.0; });
  ConstantPowerLoad load(0.0);  // no load
  EhCircuit circuit(src, load, Capacitor{.capacitance = 47e-3,
                                         .esr = 0.0,
                                         .leakage_resistance = 1e9});
  Rk23Options opt;
  opt.max_step = 0.01;
  Rk23Integrator ig(circuit, opt);
  const double v0 = 4.5;
  ig.reset(0.0, std::span<const double>(&v0, 1));
  ig.advance(30.0);
  EXPECT_NEAR(ig.state()[0], cell.open_circuit_voltage(1000.0), 0.02);
}

TEST(PvSource, AvailablePowerIsMpp) {
  auto cell = SolarCell::calibrate(6.8, 1.15, 5.3, 0.3, 200.0);
  PvSource src(cell, [](double t) { return t < 1.0 ? 1000.0 : 500.0; });
  EXPECT_NEAR(src.available_power(0.0), cell.mpp(1000.0).power, 1e-9);
  EXPECT_NEAR(src.available_power(2.0), cell.mpp(500.0).power, 1e-9);
}

}  // namespace
}  // namespace pns::ehsim
