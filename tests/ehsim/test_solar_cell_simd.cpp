// Packed PV kernels vs. their scalar counterparts, bit for bit.
//
// The differential batch-parity suite (tests/sim/test_batch_parity)
// proves the end-to-end contract; these tests aim the microscope at the
// kernel layer itself: newton_packed / bilinear_packed against
// SolarCell::current_from_photo_counted / PvTable::current on adversarial
// operating points, the scalar fallback routing, the startup self-test,
// and the plan/execute/commit decomposition of PvSource::current that
// the batched evaluator relies on.
#include "ehsim/solar_cell_simd.hpp"

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ehsim/pv_table.hpp"
#include "ehsim/solar_cell.hpp"
#include "ehsim/sources.hpp"

namespace pns::ehsim {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

SolarCell test_cell() {
  return SolarCell(SolarCellParams{2e-9, 1.6, 0.3, 200.0, 1.15, 1000.0});
}

/// Newton probe lanes spanning cold seeds, warm seeds, the damped-step
/// branch and near-zero photo-currents (the dawn/dusk regime).
std::vector<NewtonLane> newton_probes(const SolarCell& cell) {
  std::vector<NewtonLane> lanes;
  for (double v : {0.0, 0.8, 2.3, 4.2, 5.3, 6.1, 7.0})
    for (double il : {0.0, 1e-6, 0.02, 0.4, 1.15})
      lanes.push_back({&cell, v, il, il});
  // Warm seeds: start from a converged neighbour's current, as the
  // PvSource cache does.
  for (std::size_t k = 0; k < 5; ++k) {
    NewtonLane ln = lanes[7 * k + 3];
    ln.seed = cell.current_from_photo(ln.v, ln.il) + 0.003;
    lanes.push_back(ln);
  }
  return lanes;
}

TEST(SolarCellSimd, NewtonPackedIsBitIdenticalToScalar) {
  const SolarCell cell = test_cell();
  const auto lanes = newton_probes(cell);
  std::vector<double> got(lanes.size());
  std::vector<std::uint32_t> got_iters(lanes.size());
  simd_detail::newton_packed(lanes, got.data(), got_iters.data());
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    std::uint32_t want_iters = 0;
    const double want = cell.current_from_photo_counted(
        lanes[k].v, lanes[k].il, lanes[k].seed, &want_iters);
    EXPECT_EQ(bits(got[k]), bits(want))
        << "lane " << k << " v=" << lanes[k].v << " il=" << lanes[k].il;
    EXPECT_EQ(got_iters[k], want_iters) << "lane " << k;
  }
}

TEST(SolarCellSimd, NewtonPackedHandlesEveryRemainder) {
  // 1..9 lanes cover: scalar-only, one half chunk, full chunk, full+1,
  // full+half, full+half+1, two full chunks and beyond.
  const SolarCell cell = test_cell();
  const auto all = newton_probes(cell);
  for (std::size_t n = 1; n <= 9; ++n) {
    std::vector<NewtonLane> lanes(all.begin(), all.begin() + n);
    std::vector<double> got(n);
    std::vector<std::uint32_t> iters(n);
    const std::size_t packed =
        simd_detail::newton_packed(lanes, got.data(), iters.data());
    EXPECT_LE(packed, n);
    for (std::size_t k = 0; k < n; ++k) {
      const double want = cell.current_from_photo(lanes[k].v, lanes[k].il);
      EXPECT_EQ(bits(got[k]), bits(want)) << "n=" << n << " lane " << k;
    }
  }
}

TEST(SolarCellSimd, BilinearPackedIsBitIdenticalToScalar) {
  const SolarCell cell = test_cell();
  PvTableSpec spec;
  spec.v_max = 7.0;
  spec.g_max = 1200.0;
  spec.nv = 17;
  spec.ng = 9;
  const PvTable table(cell, spec);
  std::vector<TableLane> lanes;
  // Corners, knot-exact points, cell interiors and the far edges (the
  // clamped fv/fg branch).
  for (double v : {0.0, 0.4375, 1.31, 3.5, 6.99, 7.0})
    for (double g : {0.0, 150.0, 512.7, 1199.0, 1200.0})
      lanes.push_back({&table, v, g});
  std::vector<double> got(lanes.size());
  simd_detail::bilinear_packed(lanes, got.data());
  for (std::size_t k = 0; k < lanes.size(); ++k)
    EXPECT_EQ(bits(got[k]), bits(table.current(lanes[k].v, lanes[k].g)))
        << "lane " << k << " v=" << lanes[k].v << " g=" << lanes[k].g;
}

TEST(SolarCellSimd, SelfTestPassesHere) {
  // If this fails, the platform contracts vector expressions differently
  // from scalar ones and every packed entry point must degrade -- which
  // the routing test below would then exercise for real.
  EXPECT_TRUE(simd_kernel_self_test());
}

TEST(SolarCellSimd, ForcedScalarRoutingStillAnswersEveryLane) {
  struct ForceScalar {
    ForceScalar() { simd_force_scalar(true); }
    ~ForceScalar() { simd_force_scalar(false); }
  } guard;
  EXPECT_FALSE(simd_kernel_active());
  const SolarCell cell = test_cell();
  const auto lanes = newton_probes(cell);
  std::vector<double> got(lanes.size());
  std::vector<std::uint32_t> iters(lanes.size());
  const std::size_t packed =
      newton_current_batch(lanes, got.data(), iters.data());
  EXPECT_EQ(packed, 0u);  // everything drained scalar
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    std::uint32_t want_iters = 0;
    const double want = cell.current_from_photo_counted(
        lanes[k].v, lanes[k].il, lanes[k].seed, &want_iters);
    EXPECT_EQ(bits(got[k]), bits(want)) << "lane " << k;
    EXPECT_EQ(iters[k], want_iters) << "lane " << k;
  }
}

TEST(SolarCellSimd, KernelCompiledMatchesBuildConfiguration) {
#ifdef PNS_SIMD_DISABLE
  EXPECT_FALSE(simd_kernel_compiled());
#else
#if defined(__GNUC__) || defined(__clang__)
  EXPECT_TRUE(simd_kernel_compiled());
#endif
#endif
}

// ---------------------------------------------------------------- PvSource
// plan/execute/commit must BE PvSource::current: same value, same cache
// evolution, same counters. A drift here would let the batched path and
// the scalar path disagree on warm-start seeds a few calls later.

PvSource make_source(PvSource::Mode mode) {
  SolarCell cell = test_cell();
  auto irr = [](double t) { return t < 100.0 ? 800.0 : 30.0; };
  if (mode == PvSource::Mode::kExact) return PvSource(cell, irr);
  PvTableSpec spec;
  spec.v_max = 7.0;
  spec.g_max = 1200.0;
  spec.nv = 17;
  spec.ng = 9;
  return PvSource(cell, irr,
                  std::make_shared<const PvTable>(cell, spec));
}

TEST(SolarCellSimd, PlanExecuteCommitReplaysCurrentExactly) {
  for (const auto mode :
       {PvSource::Mode::kExact, PvSource::Mode::kTabulated}) {
    PvSource a = make_source(mode);
    PvSource b = make_source(mode);
    // A call sequence hitting memo (same v,t), cold solves (jumps), and
    // -- in tabulated mode -- the table path plus the off-table Newton
    // fallback (v beyond the table's 7 V edge) whose second call
    // warm-starts from the first.
    const double pts[][2] = {{5.3, 10.0}, {5.3, 10.0},  {5.31, 11.0},
                             {2.0, 12.0}, {2.01, 13.0}, {5.3, 200.0},
                             {5.3, 200.0}, {0.5, 201.0}, {7.5, 300.0},
                             {7.52, 301.0}};
    for (const auto& p : pts) {
      const double want = a.current(p[0], p[1]);
      // Replay on b through the decomposed path.
      const PvSource::SolvePlan plan = b.plan_current(p[0], p[1]);
      double got = 0.0;
      switch (plan.path) {
        case PvSource::SolvePlan::Path::kMemo:
          got = plan.value;
          break;
        case PvSource::SolvePlan::Path::kTable:
          got = b.table()->current(plan.v, plan.g);
          break;
        case PvSource::SolvePlan::Path::kNewton: {
          std::uint32_t iters = 0;
          got = b.cell().current_from_photo_counted(plan.v, plan.il,
                                                    plan.seed, &iters);
          b.commit_newton(plan, got, iters, false);
          break;
        }
      }
      EXPECT_EQ(bits(got), bits(want)) << "v=" << p[0] << " t=" << p[1];
    }
    // Identical cache evolution => identical counters.
    EXPECT_EQ(a.solve_stats().calls, b.solve_stats().calls);
    EXPECT_EQ(a.solve_stats().memo_hits, b.solve_stats().memo_hits);
    EXPECT_EQ(a.solve_stats().table_hits, b.solve_stats().table_hits);
    EXPECT_EQ(a.solve_stats().newton_solves, b.solve_stats().newton_solves);
    EXPECT_EQ(a.solve_stats().newton_iterations,
              b.solve_stats().newton_iterations);
    EXPECT_EQ(a.solve_stats().warm_starts, b.solve_stats().warm_starts);
    if (mode == PvSource::Mode::kExact) {
      // Exact mode has no table, hence no off-table warm-start rule.
      EXPECT_GT(a.solve_stats().newton_solves, 0u);
      EXPECT_GT(a.solve_stats().memo_hits, 0u);
      EXPECT_EQ(a.solve_stats().warm_starts, 0u);
    } else {
      EXPECT_GT(a.solve_stats().table_hits, 0u);
      EXPECT_GT(a.solve_stats().newton_solves, 0u);
      EXPECT_GT(a.solve_stats().warm_starts, 0u);
    }
  }
}

TEST(SolarCellSimd, SolveStatsAccumulate) {
  PvSolveStats a;
  a.calls = 3;
  a.newton_solves = 2;
  a.newton_iterations = 11;
  PvSolveStats b;
  b.calls = 5;
  b.memo_hits = 4;
  b.simd_lanes = 2;
  a += b;
  EXPECT_EQ(a.calls, 8u);
  EXPECT_EQ(a.memo_hits, 4u);
  EXPECT_EQ(a.newton_solves, 2u);
  EXPECT_EQ(a.newton_iterations, 11u);
  EXPECT_EQ(a.simd_lanes, 2u);
}

}  // namespace
}  // namespace pns::ehsim
