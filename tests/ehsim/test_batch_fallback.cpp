// Seeded fuzz of the batched engine's lane-retirement paths.
//
// Three ways a lane leaves the shared lockstep rounds (see
// sim/batch_engine.hpp):
//   * event root   -- the window closes at the root, the lane rejoins at
//                     the next superstep;
//   * divergence   -- the window outlives the round budget and finishes
//                     in the scalar tail loop inside run_rounds;
//   * coast        -- the lane retires for good and finishes the rest of
//                     the simulation in the scalar run() loop.
// Every path is scheduling-only: the retired/diverged lane must produce
// exactly the bits the scalar engine produces, from the retirement point
// through the end. The synthetic tests pin this on the stepper with
// analytic systems; the fuzz drives whole scenario batches under a
// divergence budget of 1 (every multi-step window diverges) and checks
// the population actually exercised all three paths.
#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "../support/scenario_grid.hpp"
#include "ehsim/batch_state.hpp"
#include "ehsim/ode.hpp"
#include "ehsim/rk23.hpp"
#include "ehsim/rk23_batch.hpp"
#include "sim/batch_engine.hpp"
#include "sim/experiment.hpp"
#include "sweep/assets.hpp"
#include "sweep/registry.hpp"
#include "sweep/scenario.hpp"

namespace pns::ehsim {
namespace {

/// y' = -k y: cheap, smooth, and step counts vary with k -- good for
/// making one lane's window outlast another's.
class ExpDecay : public OdeSystem {
 public:
  explicit ExpDecay(double k) : k_(k) {}
  std::size_t dimension() const override { return 1; }
  void derivatives(double, std::span<const double> y,
                   std::span<double> dydt) const override {
    dydt[0] = -k_ * y[0];
  }

 private:
  double k_;
};

struct ScalarRun {
  IntegrationResult result;
  double t = 0.0;
  double y = 0.0;
};

ScalarRun scalar_window(const OdeSystem& sys, double y0, double t_end,
                        std::span<const EventSpec> events,
                        const Rk23Options& opts) {
  Rk23Integrator ig(sys, opts);
  const double y0v[] = {y0};
  ig.reset(0.0, y0v);
  ScalarRun run;
  run.result = ig.advance(t_end, events);
  run.t = ig.time();
  run.y = ig.state()[0];
  return run;
}

/// Opens one window on every lane and runs the stepper to completion.
void run_batch_windows(std::vector<Rk23Integrator*>& igs,
                       std::vector<IntegrationResult>& results,
                       BatchState& state, double t_end,
                       std::span<const EventSpec> events,
                       Rk23BatchStepper& stepper) {
  for (std::size_t i = 0; i < igs.size(); ++i) {
    if (igs[i]->begin_window(t_end, events, results[i])) {
      state.status[i] = LaneStatus::kLockstep;
      state.t_stop[i] = t_end;
      state.rounds[i] = 0;
    }
    state.observe(i, *igs[i]);
  }
  stepper.run_rounds(igs, results, state);
}

TEST(BatchFallback, DivergentTailWindowIsBitIdenticalToScalar) {
  // Decay rates spread over two decades: under a tolerance tight enough
  // to need many steps, the fast lanes' windows outlast the slow ones'
  // round budget and take the tail path.
  const std::vector<double> ks = {0.1, 1.0, 30.0, 90.0};
  Rk23Options opts;
  opts.rel_tol = 1e-9;
  std::vector<std::unique_ptr<ExpDecay>> systems;
  std::vector<std::unique_ptr<Rk23Integrator>> owned;
  std::vector<Rk23Integrator*> igs;
  for (const double k : ks) {
    systems.push_back(std::make_unique<ExpDecay>(k));
    owned.push_back(std::make_unique<Rk23Integrator>(*systems.back(), opts));
    const double y0[] = {1.0};
    owned.back()->reset(0.0, y0);
    igs.push_back(owned.back().get());
  }
  BatchState state;
  state.resize(igs.size());
  std::vector<IntegrationResult> results(igs.size());
  Rk23BatchStepper stepper(Rk23BatchOptions{/*divergence_rounds=*/2});
  run_batch_windows(igs, results, state, 3.0, {}, stepper);

  EXPECT_GT(stepper.stats().divergences, 0u)
      << "fuzz premise broken: no lane ever left lockstep";
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const ScalarRun ref = scalar_window(*systems[i], 1.0, 3.0, {}, opts);
    EXPECT_EQ(results[i].t, ref.result.t) << "k=" << ks[i];
    EXPECT_EQ(results[i].steps_taken, ref.result.steps_taken)
        << "k=" << ks[i];
    EXPECT_EQ(results[i].rejected_steps, ref.result.rejected_steps)
        << "k=" << ks[i];
    EXPECT_EQ(igs[i]->time(), ref.t) << "k=" << ks[i];
    EXPECT_EQ(igs[i]->state()[0], ref.y) << "k=" << ks[i];
    EXPECT_EQ(state.status[i], LaneStatus::kIdle);
  }
}

TEST(BatchFallback, EventRootStopsTheLaneExactlyWhereScalarDoes) {
  const std::vector<double> ks = {0.5, 2.0, 5.0};
  const std::vector<EventSpec> events = {
      EventSpec::threshold(0.25, EventDirection::kFalling, /*tag=*/7)};
  Rk23Options opts;
  std::vector<std::unique_ptr<ExpDecay>> systems;
  std::vector<std::unique_ptr<Rk23Integrator>> owned;
  std::vector<Rk23Integrator*> igs;
  for (const double k : ks) {
    systems.push_back(std::make_unique<ExpDecay>(k));
    owned.push_back(std::make_unique<Rk23Integrator>(*systems.back(), opts));
    const double y0[] = {1.0};
    owned.back()->reset(0.0, y0);
    igs.push_back(owned.back().get());
  }
  BatchState state;
  state.resize(igs.size());
  std::vector<IntegrationResult> results(igs.size());
  Rk23BatchStepper stepper;
  run_batch_windows(igs, results, state, 50.0, events, stepper);

  EXPECT_EQ(stepper.stats().event_windows, ks.size());
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const ScalarRun ref =
        scalar_window(*systems[i], 1.0, 50.0, events, opts);
    ASSERT_TRUE(ref.result.event_fired);
    EXPECT_TRUE(results[i].event_fired) << "k=" << ks[i];
    EXPECT_EQ(results[i].event_tag, 7);
    EXPECT_EQ(results[i].t, ref.result.t) << "k=" << ks[i];
    EXPECT_EQ(igs[i]->time(), ref.t) << "k=" << ks[i];
    EXPECT_EQ(igs[i]->state()[0], ref.y) << "k=" << ks[i];
  }
}

// ------------------------------------------------------- scenario fuzz

using testsupport::GridOptions;
using testsupport::canonical_metrics;
using testsupport::make_scenario_grid;

/// One resolved scenario lane (what run_scenarios_batched builds
/// internally), constructed here so the test can pick BatchEngineOptions.
struct Lane {
  std::unique_ptr<PvSource> source;
  sim::EngineBundle bundle;
};

Lane make_lane(const sweep::ScenarioSpec& spec,
               sweep::ScenarioAssets& assets) {
  const auto& source_entry =
      sweep::SourceRegistry::instance().require(spec.source.kind);
  sim::ControlSelection control =
      sweep::resolve_control(spec.control, spec);
  Lane lane;
  lane.source =
      std::make_unique<PvSource>(sweep::resolve_source(spec, assets));
  lane.bundle = sim::make_pv_engine(spec.platform, *lane.source,
                                    std::move(control),
                                    sweep::make_sim_config(spec),
                                    source_entry.solar_defaults);
  return lane;
}

TEST(BatchFallback, RetiredLanesMatchScalarUnderAOneRoundBudget) {
  // divergence_rounds=1 turns every multi-step window into a tail
  // finish; coasting scenarios retire whole lanes mid-run. Across the
  // seeded population all three retirement classes must fire, and every
  // lane must still reproduce its scalar rk23pi metrics exactly.
  std::uint64_t divergences = 0, event_windows = 0, coast_retirements = 0;
  for (const std::uint64_t seed :
       {0xFA11BACCull, 0x0C0A57EDull, 0xD1F0FA57ull}) {
    GridOptions opt;
    opt.count = 4;
    opt.min_window_s = 40.0;
    opt.integrator = "rk23batch";
    const auto specs = make_scenario_grid(seed, opt);

    std::vector<std::string> ref;
    {
      sweep::ScenarioAssets assets;
      for (auto spec : specs) {
        spec.integrator = sweep::IntegratorSpec::parse("rk23pi");
        ref.push_back(
            canonical_metrics(spec, sweep::run_scenario(spec, assets)));
      }
    }

    sweep::ScenarioAssets assets;
    std::vector<Lane> lanes;
    std::vector<sim::SimEngine*> engines;
    for (const auto& spec : specs) {
      lanes.push_back(make_lane(spec, assets));
      engines.push_back(lanes.back().bundle.engine.get());
    }
    sim::BatchEngine batch(std::move(engines),
                           sim::BatchEngineOptions{/*divergence_rounds=*/1});
    const auto results = batch.run();
    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
      EXPECT_EQ(canonical_metrics(specs[i], results[i]), ref[i])
          << specs[i].label;

    divergences += batch.stats().stepping.divergences;
    event_windows += batch.stats().stepping.event_windows;
    coast_retirements += batch.stats().coast_retirements;
  }
  EXPECT_GT(divergences, 0u);
  EXPECT_GT(event_windows, 0u);
  EXPECT_GT(coast_retirements, 0u)
      << "fuzz premise broken: no scenario in the population coasts";
}

}  // namespace
}  // namespace pns::ehsim
