// Tests of the deterministic fault-injection fabric (util/fault.hpp):
// spec-string parsing, and -- the property everything else rests on --
// that a seed fully determines every site's injection sequence.
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/fault.hpp"
#include "util/params.hpp"

namespace pns::fault {
namespace {

TEST(FaultSpec, ParsesFullGrammar) {
  const FaultSpec spec = FaultSpec::parse(
      "fault:seed=7,conn_drop=0.05,short_read=0.25,short_write=0.1,"
      "eintr=0.5,fsync_fail=2,fsync_fail_from=9,torn_append=0.2");
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_DOUBLE_EQ(spec.conn_drop, 0.05);
  EXPECT_DOUBLE_EQ(spec.short_read, 0.25);
  EXPECT_DOUBLE_EQ(spec.short_write, 0.1);
  EXPECT_DOUBLE_EQ(spec.eintr, 0.5);
  EXPECT_EQ(spec.fsync_fail, 2u);
  EXPECT_EQ(spec.fsync_fail_from, 9u);
  EXPECT_DOUBLE_EQ(spec.torn_append, 0.2);
}

TEST(FaultSpec, PrefixIsOptionalAndDefaultsAreOff) {
  EXPECT_EQ(FaultSpec::parse("seed=3"), FaultSpec::parse("fault:seed=3"));
  const FaultSpec off = FaultSpec::parse("fault");
  EXPECT_EQ(off, FaultSpec{});
  EXPECT_DOUBLE_EQ(off.conn_drop, 0.0);
  EXPECT_EQ(off.fsync_fail, 0u);
}

TEST(FaultSpec, SpecStringRoundTrips) {
  const char* cases[] = {
      "fault:seed=7,conn_drop=0.05,short_write=0.1,fsync_fail=2",
      "fault:seed=1",
      "fault:seed=42,eintr=0.9,torn_append=0.5,fsync_fail_from=3",
  };
  for (const char* text : cases) {
    const FaultSpec spec = FaultSpec::parse(text);
    EXPECT_EQ(FaultSpec::parse(spec.spec_string()), spec) << text;
  }
}

TEST(FaultSpec, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(FaultSpec::parse("fault:frobnicate=1"), ParamError);
  EXPECT_THROW(FaultSpec::parse("fault:conn_drop=1.5"), ParamError);
  EXPECT_THROW(FaultSpec::parse("fault:short_read=-0.1"), ParamError);
  EXPECT_THROW(FaultSpec::parse("fault:seed=banana"), ParamError);
  // The unknown-key diagnostic names the accepted keys.
  try {
    FaultSpec::parse("fault:frobnicate=1");
    FAIL() << "expected ParamError";
  } catch (const ParamError& e) {
    EXPECT_NE(std::string(e.what()).find("conn_drop"), std::string::npos);
  }
}

/// The decision record of one injector, exercised in a fixed pattern.
std::vector<std::uint64_t> exercise(FaultInjector& f) {
  std::vector<std::uint64_t> record;
  for (int k = 0; k < 200; ++k) {
    record.push_back(f.drop_connection() ? 1 : 0);
    record.push_back(f.clamp_read(4096));
    record.push_back(f.clamp_write(4096));
    record.push_back(f.inject_eintr() ? 1 : 0);
    record.push_back(f.fail_fsync() ? 1 : 0);
    record.push_back(f.tear_append(100));
  }
  return record;
}

TEST(FaultInjector, SameSeedReplaysTheSameSchedule) {
  const FaultSpec spec = FaultSpec::parse(
      "fault:seed=7,conn_drop=0.1,short_read=0.3,short_write=0.3,"
      "eintr=0.2,fsync_fail_from=50,torn_append=0.2");
  FaultInjector a(spec);
  FaultInjector b(spec);
  EXPECT_EQ(exercise(a), exercise(b));
  EXPECT_GT(a.total_hits(), 0u);
  EXPECT_EQ(a.total_hits(), b.total_hits());
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultSpec spec = FaultSpec::parse(
      "fault:seed=7,conn_drop=0.1,short_read=0.3,short_write=0.3,"
      "eintr=0.2,torn_append=0.2");
  FaultInjector a(spec);
  spec.seed = 8;
  FaultInjector b(spec);
  EXPECT_NE(exercise(a), exercise(b));
}

TEST(FaultInjector, SitesAreIndependentStreams) {
  // Exercising *other* sites between two draws of one site must not
  // change that site's sequence -- this is what makes chaos runs immune
  // to thread-interleaving across components.
  const FaultSpec spec =
      FaultSpec::parse("fault:seed=9,conn_drop=0.5,eintr=0.5");
  FaultInjector lone(spec);
  FaultInjector mixed(spec);
  std::vector<int> lone_seq, mixed_seq;
  for (int k = 0; k < 100; ++k) {
    lone_seq.push_back(lone.drop_connection() ? 1 : 0);
    mixed_seq.push_back(mixed.drop_connection() ? 1 : 0);
    mixed.inject_eintr();  // extra traffic on an unrelated site
    mixed.clamp_read(100);
  }
  EXPECT_EQ(lone_seq, mixed_seq);
}

TEST(FaultInjector, ClampsAreShortButNeverZero) {
  const FaultSpec spec =
      FaultSpec::parse("fault:seed=3,short_read=1,short_write=1");
  FaultInjector f(spec);
  for (int k = 0; k < 300; ++k) {
    const std::size_t r = f.clamp_read(1000);
    const std::size_t w = f.clamp_write(1000);
    EXPECT_GE(r, 1u);
    EXPECT_LT(r, 1000u);  // p=1: every budget is genuinely short
    EXPECT_GE(w, 1u);
    EXPECT_LT(w, 1000u);
    EXPECT_EQ(f.clamp_read(1), 1u);  // nothing to shorten
  }
  EXPECT_EQ(f.stats(FaultSite::kShortRead).ops, 600u);
  EXPECT_EQ(f.stats(FaultSite::kShortWrite).ops, 300u);
}

TEST(FaultInjector, EintrStormsAlwaysYieldACleanCall) {
  // Even at p=1 the storm/cooldown structure must guarantee forward
  // progress: runs of injected EINTRs are finite (<= 3) and every storm
  // is followed by at least one clean call.
  FaultInjector f(FaultSpec::parse("fault:seed=5,eintr=1"));
  int run = 0;
  int clean_calls = 0;
  for (int k = 0; k < 500; ++k) {
    if (f.inject_eintr()) {
      ++run;
      ASSERT_LE(run, 3);
    } else {
      ++clean_calls;
      run = 0;
    }
  }
  EXPECT_GT(clean_calls, 100);
}

TEST(FaultInjector, FsyncScheduleCountsFromOne) {
  {  // exactly the Nth fsync fails
    FaultInjector f(FaultSpec::parse("fault:seed=1,fsync_fail=3"));
    std::vector<bool> fails;
    for (int k = 0; k < 6; ++k) fails.push_back(f.fail_fsync());
    EXPECT_EQ(fails,
              (std::vector<bool>{false, false, true, false, false, false}));
  }
  {  // every fsync from the Nth on fails (dead disk)
    FaultInjector f(FaultSpec::parse("fault:seed=1,fsync_fail_from=2"));
    std::vector<bool> fails;
    for (int k = 0; k < 4; ++k) fails.push_back(f.fail_fsync());
    EXPECT_EQ(fails, (std::vector<bool>{false, true, true, true}));
  }
}

TEST(FaultInjector, TearOffsetsStayInsideTheLine) {
  FaultInjector f(FaultSpec::parse("fault:seed=2,torn_append=1"));
  for (int k = 0; k < 200; ++k) {
    const std::size_t keep = f.tear_append(80);
    EXPECT_LT(keep, 80u);  // p=1: always torn, never the whole line
  }
}

TEST(MakeInjector, EmptySpecMeansNoInjector) {
  EXPECT_EQ(make_injector(""), nullptr);
  const auto f = make_injector("fault:seed=11,conn_drop=0.5");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->spec().seed, 11u);
}

}  // namespace
}  // namespace pns::fault
