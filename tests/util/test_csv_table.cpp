// Tests for CSV emission and console-table rendering (util/csv, util/table).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace pns {
namespace {

TEST(CsvEscape, PlainCellUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, CommaQuoted) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(CsvEscape, QuoteDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineQuoted) { EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\""); }

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"t", "v"});
  w.row({1.0, 2.5});
  w.row({2.0, 3.5});
  EXPECT_EQ(os.str(), "t,v\n1,2.5\n2,3.5\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(CsvWriter, RowWidthEnforcedAfterHeader) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b"});
  EXPECT_THROW(w.row({1.0}), ContractViolation);
}

TEST(CsvWriter, DoubleHeaderRejected) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a"});
  EXPECT_THROW(w.header({"b"}), ContractViolation);
}

TEST(CsvWriter, FullPrecisionRoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({0.1234567890123});
  EXPECT_NE(os.str().find("0.1234567890123"), std::string::npos);
}

TEST(WriteSeriesCsv, WritesPairsWithPadding) {
  TimeSeries a, b;
  a.append(0.0, 1.0);
  a.append(1.0, 2.0);
  b.append(0.0, 5.0);
  const std::string path = ::testing::TempDir() + "/pns_series_test.csv";
  ASSERT_TRUE(write_series_csv(path, {{"a", &a}, {"b", &b}}));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a_t,a_v,b_t,b_v");
  std::getline(f, line);
  EXPECT_EQ(line, "0,1,0,5");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2,,");
  std::remove(path.c_str());
}

TEST(ConsoleTable, RendersAlignedRows) {
  ConsoleTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os, "My Table");
  const std::string s = os.str();
  EXPECT_NE(s.find("My Table"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22    |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(ConsoleTable, RowWidthEnforced) {
  ConsoleTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(FmtHelpers, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(-1.0, 0), "-1");
}

TEST(FmtHelpers, FmtMmss) {
  EXPECT_EQ(fmt_mmss(0.0), "00:00");
  EXPECT_EQ(fmt_mmss(5.0), "00:05");
  EXPECT_EQ(fmt_mmss(3600.0), "60:00");
  EXPECT_EQ(fmt_mmss(-3.0), "00:00");
}

TEST(FmtHelpers, FmtHhmm) {
  EXPECT_EQ(fmt_hhmm(10.5 * 3600.0), "10:30");
  EXPECT_EQ(fmt_hhmm(0.0), "00:00");
  EXPECT_EQ(fmt_hhmm(25.0 * 3600.0), "01:00");  // wraps past midnight
}

}  // namespace
}  // namespace pns
