// Tests for the typed spec-string parameter map (util/params).
#include <gtest/gtest.h>

#include <string>

#include "util/params.hpp"

namespace pns {
namespace {

TEST(ParamMap, ParsesAndSerializesRoundTrip) {
  const std::string text = "v_q=0.04,ordering=freq-first,steps=3";
  const ParamMap map = ParamMap::parse(text);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.serialize(), text);
  EXPECT_EQ(ParamMap::parse(map.serialize()), map);
}

TEST(ParamMap, EmptyTextIsEmptyMap) {
  const ParamMap map = ParamMap::parse("");
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.serialize(), "");
}

TEST(ParamMap, TypedGetters) {
  const ParamMap map =
      ParamMap::parse("a=0.5,b=-3,c=hello,d=true,e=0,u=42");
  EXPECT_DOUBLE_EQ(map.get_double("a", 0.0), 0.5);
  EXPECT_EQ(map.get_int("b", 0), -3);
  EXPECT_EQ(map.get_string("c", ""), "hello");
  EXPECT_TRUE(map.get_bool("d", false));
  EXPECT_FALSE(map.get_bool("e", true));
  EXPECT_EQ(map.get_uint("u", 0), 42u);
  // Absent keys fall back.
  EXPECT_DOUBLE_EQ(map.get_double("zz", 1.5), 1.5);
  EXPECT_EQ(map.get_string("zz", "dflt"), "dflt");
}

TEST(ParamMap, DoubleSettersRoundTripBitExactly) {
  // shortest_double encoding: the decoded value is the identical double.
  const double value = 0.1 + 0.2;  // not exactly 0.3
  ParamMap map;
  map.set_double("x", value);
  const ParamMap back = ParamMap::parse(map.serialize());
  EXPECT_EQ(back.get_double("x", 0.0), value);
}

TEST(ParamMap, MalformedTextThrows) {
  EXPECT_THROW(ParamMap::parse("novalue"), ParamError);
  EXPECT_THROW(ParamMap::parse("=3"), ParamError);
  EXPECT_THROW(ParamMap::parse("a=1,,b=2"), ParamError);
  EXPECT_THROW(ParamMap::parse("sp ace=1"), ParamError);
  EXPECT_THROW(ParamMap::parse("a=1,a=2"), ParamError);  // duplicate
  EXPECT_THROW(ParamMap::parse("a=1,"), ParamError);     // trailing comma
}

TEST(ParamMap, OutOfRangeValuesThrowInsteadOfTruncating) {
  // Overflowing int64 / double tokens.
  EXPECT_THROW(ParamMap::parse("a=99999999999999999999").get_int("a", 0),
               ParamError);
  EXPECT_THROW(ParamMap::parse("a=1e999").get_double("a", 0.0), ParamError);
  // Fits int64 but not int: get_int32 must refuse, not wrap to 1.
  EXPECT_THROW(ParamMap::parse("a=4294967297").get_int32("a", 0),
               ParamError);
  EXPECT_EQ(ParamMap::parse("a=-7").get_int32("a", 0), -7);
}

TEST(ParamMap, BadTypedValuesThrowNamingKeyAndType) {
  const ParamMap map = ParamMap::parse("a=abc,b=1.5,c=maybe");
  try {
    map.get_double("a", 0.0);
    FAIL() << "expected ParamError";
  } catch (const ParamError& e) {
    EXPECT_NE(std::string(e.what()).find("'a'"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("abc"), std::string::npos);
  }
  EXPECT_THROW(map.get_int("b", 0), ParamError);   // 1.5 not an int
  EXPECT_THROW(map.get_bool("c", false), ParamError);
  EXPECT_THROW(map.get_uint("a", 0), ParamError);
}

TEST(ParamMap, ValidateKeysListsValidChoices) {
  const std::vector<ParamInfo> valid = {
      {"period", "double", "0.1", "sampling period"},
      {"up_threshold", "double", "0.95", "threshold"},
  };
  const ParamMap ok = ParamMap::parse("period=0.05");
  EXPECT_NO_THROW(ok.validate_keys(valid, "governor 'ondemand'"));

  const ParamMap bad = ParamMap::parse("perod=0.05");
  try {
    bad.validate_keys(valid, "governor 'ondemand'");
    FAIL() << "expected ParamError";
  } catch (const ParamError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("governor 'ondemand'"), std::string::npos);
    EXPECT_NE(what.find("'perod'"), std::string::npos);
    EXPECT_NE(what.find("period"), std::string::npos);
    EXPECT_NE(what.find("up_threshold"), std::string::npos);
  }
}

TEST(ParamMap, ValidateTypesCatchesMalformedValues) {
  const std::vector<ParamInfo> valid = {
      {"period", "double", "0.1", ""},
      {"name", "string", "", ""},
  };
  EXPECT_NO_THROW(ParamMap::parse("period=0.5,name=x").validate_types(valid));
  EXPECT_THROW(ParamMap::parse("period=abc").validate_types(valid),
               ParamError);
}

TEST(ParamMap, SetInsertsAndOverwrites) {
  ParamMap map;
  map.set("k", "1");
  map.set("j", "2");
  map.set("k", "3");
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.serialize(), "k=3,j=2");
}

TEST(SplitSpecString, SplitsKindFromParams) {
  auto p = split_spec_string("pns");
  EXPECT_EQ(p.kind, "pns");
  EXPECT_EQ(p.params, "");

  p = split_spec_string("static:opp=4");
  EXPECT_EQ(p.kind, "static");
  EXPECT_EQ(p.params, "opp=4");

  // Multi-segment kinds keep their colon; params may contain ':'.
  p = split_spec_string("gov:ondemand:period=0.05,up_threshold=0.9");
  EXPECT_EQ(p.kind, "gov:ondemand");
  EXPECT_EQ(p.params, "period=0.05,up_threshold=0.9");

  p = split_spec_string("trace:file=/data/run:3.csv");
  EXPECT_EQ(p.kind, "trace");
  EXPECT_EQ(p.params, "file=/data/run:3.csv");

  p = split_spec_string("gov:ondemand");
  EXPECT_EQ(p.kind, "gov:ondemand");
  EXPECT_EQ(p.params, "");

  EXPECT_THROW(split_spec_string("k=v"), ParamError);  // no kind at all
}

}  // namespace
}  // namespace pns
