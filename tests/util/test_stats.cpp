// Tests for streaming and batch statistics (util/stats).
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/contracts.hpp"

namespace pns {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.2);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.2);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.2);
  EXPECT_DOUBLE_EQ(s.max(), 4.2);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_NEAR(s.mean(), 6.2, 1e-12);
  // population variance
  double var = 0.0;
  for (double x : xs) var += (x - 6.2) * (x - 6.2);
  var /= xs.size();
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
}

TEST(RunningStats, WeightedMean) {
  RunningStats s;
  s.add_weighted(1.0, 3.0);
  s.add_weighted(5.0, 1.0);
  EXPECT_NEAR(s.mean(), 2.0, 1e-12);
  EXPECT_NEAR(s.total_weight(), 4.0, 1e-12);
}

TEST(RunningStats, ZeroWeightIgnored) {
  RunningStats s;
  s.add_weighted(100.0, 0.0);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStats, NegativeWeightRejected) {
  RunningStats s;
  EXPECT_THROW(s.add_weighted(1.0, -1.0), ContractViolation);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 3 + i * 0.01;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_EQ(a.count(), all.count());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Percentile, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenOrderStats) {
  // sorted: 10, 20; q=0.25 -> 12.5
  EXPECT_DOUBLE_EQ(percentile({20.0, 10.0}, 0.25), 12.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> xs{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 9.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, RejectsOutOfRangeQ) {
  EXPECT_THROW(percentile({1.0}, -0.1), ContractViolation);
  EXPECT_THROW(percentile({1.0}, 1.1), ContractViolation);
}

TEST(BatchStats, MeanAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(mean_of(xs), 5.0, 1e-12);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(BatchStats, DegenerateSizes) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev_of({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev_of({3.0}), 0.0);
}

}  // namespace
}  // namespace pns
