// Tests for util/json: compact-style emission and the parser that reads
// the repo's own formats (checkpoint journals, bench reports) back.
#include <cstdint>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "util/json.hpp"

namespace pns {
namespace {

TEST(JsonWriterCompact, SingleLineNoWhitespace) {
  std::ostringstream os;
  JsonWriter w(os, JsonStyle::kCompact);
  w.begin_object();
  w.kv("name", "quick");
  w.kv("total", std::uint64_t{12});
  w.key("values");
  w.begin_array();
  w.value(1.5);
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(),
            "{\"name\":\"quick\",\"total\":12,\"values\":[1.5,true,null]}");
  EXPECT_EQ(os.str().find('\n'), std::string::npos);
}

TEST(JsonWriterPretty, UnchangedByStyleParameterDefault) {
  std::ostringstream a, b;
  JsonWriter wa(a);
  JsonWriter wb(b, JsonStyle::kPretty);
  for (JsonWriter* w : {&wa, &wb}) {
    w->begin_object();
    w->kv("k", 1);
    w->end_object();
  }
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(a.str(), "{\n  \"k\": 1\n}");
}

TEST(JsonParse, Scalars) {
  EXPECT_EQ(parse_json("null").type(), JsonValue::Type::kNull);
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("-2.5e3").as_double(), -2500.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse_json("  42  ").as_int64(), 42);
}

TEST(JsonParse, Uint64RoundTripsExactly) {
  const std::uint64_t big = 18446744073709551615ull;  // UINT64_MAX
  const JsonValue v = parse_json(std::to_string(big));
  EXPECT_EQ(v.as_uint64(), big);
}

TEST(JsonParse, ShortestDoubleRoundTripsBitExactly) {
  // The property the checkpoint/merge machinery rests on: a double
  // serialised with shortest_double parses back bit-identically.
  for (double d : {0.1, 1.0 / 3.0, 6.62607015e-34, -0.047, 5.300000000000001,
                   1e308, 4.9e-324}) {
    const JsonValue v = parse_json(shortest_double(d));
    EXPECT_EQ(v.as_double(), d) << shortest_double(d);
  }
}

TEST(JsonParse, ObjectsPreserveOrderAndNest) {
  const JsonValue v =
      parse_json("{\"a\": 1, \"b\": {\"c\": [1, 2, {\"d\": \"x\"}]}}");
  ASSERT_EQ(v.type(), JsonValue::Type::kObject);
  EXPECT_EQ(v.members()[0].first, "a");
  EXPECT_EQ(v.members()[1].first, "b");
  const JsonValue& c = v.at("b").at("c");
  ASSERT_EQ(c.items().size(), 3u);
  EXPECT_EQ(c.items()[2].at("d").as_string(), "x");
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), JsonError);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json("\"a\\\"b\\\\c\\n\\t\"").as_string(), "a\"b\\c\n\t");
  EXPECT_EQ(parse_json("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
  // json_escape output parses back to the original bytes.
  const std::string nasty = "line1\nline2\t\"quoted\"\x01 end";
  EXPECT_EQ(parse_json(json_escape(nasty)).as_string(), nasty);
}

TEST(JsonParse, MalformedInputThrows) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\":1,}", "nan", "--1", "{\"a\" 1}"}) {
    EXPECT_THROW(parse_json(bad), JsonError) << bad;
  }
}

TEST(JsonParse, TypeMismatchThrows) {
  const JsonValue v = parse_json("[1]");
  EXPECT_THROW(v.as_string(), JsonError);
  EXPECT_THROW(v.as_bool(), JsonError);
  EXPECT_THROW(v.members(), JsonError);
  EXPECT_THROW(parse_json("1").items(), JsonError);
}

TEST(JsonParse, CompactWriterOutputParsesBack) {
  std::ostringstream os;
  JsonWriter w(os, JsonStyle::kCompact);
  w.begin_object();
  w.kv("x", 0.1 + 0.2);
  w.kv("s", "a\"b\n");
  w.end_object();
  const JsonValue v = parse_json(os.str());
  EXPECT_EQ(v.at("x").as_double(), 0.1 + 0.2);
  EXPECT_EQ(v.at("s").as_string(), "a\"b\n");
}

}  // namespace
}  // namespace pns
