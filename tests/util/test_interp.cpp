// Tests for piecewise-linear interpolation (util/interp).
#include "util/interp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/contracts.hpp"

namespace pns {
namespace {

PiecewiseLinear ramp() { return PiecewiseLinear({0.0, 1.0, 3.0}, {0.0, 2.0, 2.0}); }

TEST(PiecewiseLinear, RejectsBadKnots) {
  EXPECT_THROW(PiecewiseLinear({}, {}), ContractViolation);
  EXPECT_THROW(PiecewiseLinear({0.0, 0.0}, {1.0, 2.0}), ContractViolation);
  EXPECT_THROW(PiecewiseLinear({1.0, 0.0}, {1.0, 2.0}), ContractViolation);
  EXPECT_THROW(PiecewiseLinear({0.0, 1.0}, {1.0}), ContractViolation);
}

TEST(PiecewiseLinear, EvaluatesAtKnots) {
  auto f = ramp();
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 2.0);
  EXPECT_DOUBLE_EQ(f(3.0), 2.0);
}

TEST(PiecewiseLinear, InterpolatesBetweenKnots) {
  auto f = ramp();
  EXPECT_DOUBLE_EQ(f(0.5), 1.0);
  EXPECT_DOUBLE_EQ(f(2.0), 2.0);
}

TEST(PiecewiseLinear, ClampsOutsideRange) {
  auto f = ramp();
  EXPECT_DOUBLE_EQ(f(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(f(99.0), 2.0);
}

TEST(PiecewiseLinear, SlopePerSegment) {
  auto f = ramp();
  EXPECT_DOUBLE_EQ(f.slope_at(0.5), 2.0);
  EXPECT_DOUBLE_EQ(f.slope_at(2.0), 0.0);
  EXPECT_DOUBLE_EQ(f.slope_at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(f.slope_at(4.0), 0.0);
}

TEST(PiecewiseLinear, IntegrateFullRange) {
  auto f = ramp();
  // triangle 0..1 (area 1) + rectangle 1..3 (area 4)
  EXPECT_NEAR(f.integrate(0.0, 3.0), 5.0, 1e-12);
}

TEST(PiecewiseLinear, IntegratePartialAndClamped) {
  auto f = ramp();
  EXPECT_NEAR(f.integrate(0.0, 0.5), 0.25, 1e-12);
  // extrapolated flat at 2.0 beyond x=3
  EXPECT_NEAR(f.integrate(3.0, 5.0), 4.0, 1e-12);
  // extrapolated flat at 0.0 before x=0
  EXPECT_NEAR(f.integrate(-2.0, 0.0), 0.0, 1e-12);
}

TEST(PiecewiseLinear, IntegrateRejectsInvertedRange) {
  auto f = ramp();
  EXPECT_THROW(f.integrate(1.0, 0.0), ContractViolation);
}

TEST(PiecewiseLinear, EvalHintedBitIdenticalToOperator) {
  // Build an irregular function and compare hinted vs plain evaluation for
  // forward sweeps, backward sweeps, random jumps and out-of-range points.
  // The contract is bit-identity, so EXPECT_EQ on the doubles.
  std::vector<double> xs, ys;
  double x = 0.0;
  for (int i = 0; i < 64; ++i) {
    xs.push_back(x);
    ys.push_back(std::sin(0.7 * i) + 0.01 * i);
    x += 0.1 + 0.03 * (i % 5);
  }
  const PiecewiseLinear f(xs, ys);
  std::size_t hint = 0;
  auto check = [&](double q) { EXPECT_EQ(f.eval_hinted(q, hint), f(q)); };
  for (double q = -0.5; q < x + 0.5; q += 0.0137) check(q);   // forward
  for (double q = x + 0.5; q > -0.5; q -= 0.0213) check(q);   // backward
  for (int i = 0; i < 200; ++i)                               // jumps
    check(std::fmod(i * 2.718281828, x));
  for (double q : xs) check(q);                               // exact knots
  hint = 9999;                                                // stale hint
  check(1.0);
}

TEST(PiecewiseLinear, FromPairsSorts) {
  auto f = PiecewiseLinear::from_pairs({{2.0, 20.0}, {0.0, 0.0}, {1.0, 10.0}});
  EXPECT_DOUBLE_EQ(f(0.5), 5.0);
  EXPECT_DOUBLE_EQ(f(1.5), 15.0);
}

TEST(PiecewiseLinear, ScaledMultipliesValues) {
  auto f = ramp().scaled(3.0);
  EXPECT_DOUBLE_EQ(f(1.0), 6.0);
  EXPECT_DOUBLE_EQ(f(0.5), 3.0);
}

TEST(PiecewiseLinear, FirstCrossingFindsRoot) {
  auto f = ramp();
  EXPECT_NEAR(f.first_crossing(1.0, -1.0), 0.5, 1e-12);
}

TEST(PiecewiseLinear, FirstCrossingFallback) {
  auto f = ramp();
  EXPECT_DOUBLE_EQ(f.first_crossing(5.0, -1.0), -1.0);
}

TEST(PiecewiseLinear, FirstCrossingAtKnotStart) {
  PiecewiseLinear f({0.0, 1.0}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(f.first_crossing(1.0, -1.0), 0.0);
}

TEST(PiecewiseLinear, SingleKnotBehavesAsConstant) {
  PiecewiseLinear f({2.0}, {7.0});
  EXPECT_DOUBLE_EQ(f(0.0), 7.0);
  EXPECT_DOUBLE_EQ(f(5.0), 7.0);
  EXPECT_DOUBLE_EQ(f.slope_at(2.0), 0.0);
}

TEST(PiecewiseLinear, FlatUntilWalksLevelRuns) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  //            sloped      flat run          sloped   flat tail
  PiecewiseLinear f({0.0, 1.0, 2.0, 3.0, 4.0, 5.0},
                    {0.0, 2.0, 2.0, 2.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(f.flat_until(0.5), 0.5);   // inside a sloped segment
  EXPECT_DOUBLE_EQ(f.flat_until(1.0), 3.0);   // start of the level run
  EXPECT_DOUBLE_EQ(f.flat_until(2.5), 3.0);   // inside the level run
  EXPECT_DOUBLE_EQ(f.flat_until(3.5), 3.5);   // sloped again
  EXPECT_DOUBLE_EQ(f.flat_until(4.2), kInf);  // level to the end + clamp
  EXPECT_DOUBLE_EQ(f.flat_until(9.0), kInf);  // clamped extrapolation
  EXPECT_DOUBLE_EQ(f.flat_until(-2.0), 0.0);  // clamped region before
}

TEST(PiecewiseLinear, FlatUntilOnConstantAndSingleKnot) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  PiecewiseLinear flat({0.0, 1.0, 2.0}, {3.0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(flat.flat_until(0.0), kInf);
  EXPECT_DOUBLE_EQ(flat.flat_until(1.5), kInf);
  PiecewiseLinear single({2.0}, {7.0});
  EXPECT_DOUBLE_EQ(single.flat_until(0.0), kInf);
  EXPECT_DOUBLE_EQ(single.flat_until(5.0), kInf);
}

class InterpLinearityProperty : public ::testing::TestWithParam<double> {};

// Property: for any query point inside a segment, the interpolated value
// lies between the segment endpoint values.
TEST_P(InterpLinearityProperty, ValueBoundedByEndpoints) {
  auto f = PiecewiseLinear({0.0, 1.0, 2.0, 4.0}, {1.0, -3.0, 5.0, 0.0});
  const double x = GetParam();
  const double y = f(x);
  EXPECT_GE(y, -3.0);
  EXPECT_LE(y, 5.0);
}

INSTANTIATE_TEST_SUITE_P(QueryPoints, InterpLinearityProperty,
                         ::testing::Values(0.0, 0.3, 0.9, 1.0, 1.5, 2.7,
                                           3.999, 4.0));

}  // namespace
}  // namespace pns
