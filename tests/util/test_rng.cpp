// Tests for the deterministic PRNG (util/rng).
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace pns {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(Rng, UniformRangeRejectsInverted) {
  Rng rng(9);
  EXPECT_THROW(rng.uniform(1.0, 0.0), ContractViolation);
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(10);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.stddev(), 1.0 / std::sqrt(12.0), 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Rng rng(12);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeSigma) {
  Rng rng(13);
  EXPECT_THROW(rng.normal(0.0, -1.0), ContractViolation);
}

TEST(Rng, ExponentialMean) {
  Rng rng(14);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
  EXPECT_GT(s.min(), 0.0);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(15);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(16);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(17);
  EXPECT_THROW(rng.uniform_index(0), ContractViolation);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(18);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(20);
  Rng b = a.split();
  // The parent advanced by one draw; child must not replay the parent.
  Rng a2(20);
  a2.next_u64();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (b.next_u64() == a2.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformStaysInRangeForAllSeeds) {
  Rng rng(GetParam());
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.uniform());
  EXPECT_GE(s.min(), 0.0);
  EXPECT_LT(s.max(), 1.0);
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 0xFFFFull,
                                           0xDEADBEEFull,
                                           0xFFFFFFFFFFFFFFFFull));

}  // namespace
}  // namespace pns
