// VecD<W>: the SIMD abstraction under the bit-identity contract.
//
// Every operation must be elementwise-identical to the scalar expression
// it stands in for -- including the IEEE edge cases (signed zero, NaN
// comparison semantics, std::max/std::min argument order). The native
// (vector-extension) and fallback (double-array) backends are both
// compiled in every build, so the tests drive the two implementations
// against each other and against scalar std:: functions.
#include "util/simd.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace pns::simd {
namespace {

constexpr int kW = 4;

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Probe values hitting the sign, subnormal, huge and NaN corners.
const std::vector<double>& probes() {
  static const std::vector<double> v = {
      0.0,     -0.0,
      1.0,     -1.0,
      0.5,     -2.5,
      1e-308,  -1e-308,  // subnormal neighbourhood
      1e308,   -1e308,
      3.14159, 2.718281828,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
  };
  return v;
}

template <typename V>
V make(double a, double b, double c, double d) {
  double lanes[kW] = {a, b, c, d};
  return V::load(lanes);
}

/// Checks one binary op of implementation V against its scalar form.
template <typename V, typename VecOp, typename ScalarOp>
void check_binop(VecOp vec_op, ScalarOp scalar_op, const char* name) {
  const auto& p = probes();
  for (std::size_t i = 0; i + kW <= p.size(); ++i)
    for (std::size_t j = 0; j + kW <= p.size(); ++j) {
      const V a = V::load(&p[i]);
      const V b = V::load(&p[j]);
      const V r = vec_op(a, b);
      for (int l = 0; l < kW; ++l)
        EXPECT_EQ(bits(r[l]), bits(scalar_op(p[i + l], p[j + l])))
            << name << " lane " << l << " a=" << p[i + l]
            << " b=" << p[j + l];
    }
}

template <typename V>
void run_backend_suite() {
  check_binop<V>([](V a, V b) { return a + b; },
                 [](double a, double b) { return a + b; }, "add");
  check_binop<V>([](V a, V b) { return a - b; },
                 [](double a, double b) { return a - b; }, "sub");
  check_binop<V>([](V a, V b) { return a * b; },
                 [](double a, double b) { return a * b; }, "mul");
  check_binop<V>([](V a, V b) { return a / b; },
                 [](double a, double b) { return a / b; }, "div");
  // vmax/vmin promise std::max/std::min semantics: (a < b) ? b : a and
  // (b < a) ? b : a, which pick the *first* argument on ties -- the
  // property that makes max(-0.0, 0.0) == -0.0.
  check_binop<V>([](V a, V b) { return vmax(a, b); },
                 [](double a, double b) { return std::max(a, b); }, "vmax");
  check_binop<V>([](V a, V b) { return vmin(a, b); },
                 [](double a, double b) { return std::min(a, b); }, "vmin");

  for (std::size_t i = 0; i + kW <= probes().size(); ++i) {
    const V a = V::load(&probes()[i]);
    const V na = -a;
    const V ab = vabs(a);
    for (int l = 0; l < kW; ++l) {
      EXPECT_EQ(bits(na[l]), bits(-probes()[i + l]));
      EXPECT_EQ(bits(ab[l]), bits(std::fabs(probes()[i + l])));
    }
  }
}

TEST(Simd, FallbackBackendMatchesScalar) {
  run_backend_suite<VecDImpl<kW, false>>();
}

TEST(Simd, ActiveBackendMatchesScalar) { run_backend_suite<VecD<kW>>(); }

TEST(Simd, AbsClearsSignOfZeroAndNan) {
  using V = VecD<kW>;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const V a = make<V>(-0.0, 0.0, -nan, nan);
  const V r = vabs(a);
  EXPECT_EQ(bits(r[0]), bits(0.0));
  EXPECT_EQ(bits(r[1]), bits(0.0));
  EXPECT_TRUE(std::isnan(r[2]));
  EXPECT_TRUE(std::isnan(r[3]));
  EXPECT_FALSE(std::signbit(r[2]));
}

TEST(Simd, ComparisonsAndSelectFollowScalarTernary) {
  using V = VecD<kW>;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const V a = make<V>(1.0, 2.0, nan, -0.0);
  const V b = make<V>(2.0, 1.0, 1.0, 0.0);
  const auto lt = cmp_lt(a, b);
  const auto gt = cmp_gt(a, b);
  // NaN compares false both ways; -0.0 == 0.0 compares false both ways.
  EXPECT_TRUE(lt.test(0));
  EXPECT_FALSE(lt.test(1));
  EXPECT_FALSE(lt.test(2));
  EXPECT_FALSE(lt.test(3));
  EXPECT_FALSE(gt.test(0));
  EXPECT_TRUE(gt.test(1));
  EXPECT_FALSE(gt.test(2));
  EXPECT_FALSE(gt.test(3));

  const V sel = select(lt, a, b);
  EXPECT_EQ(bits(sel[0]), bits(1.0));  // taken from a
  EXPECT_EQ(bits(sel[1]), bits(1.0));  // taken from b
  EXPECT_EQ(bits(sel[2]), bits(1.0));  // NaN lane falls through to b
  EXPECT_EQ(bits(sel[3]), bits(0.0));
}

TEST(Simd, MaskAlgebraMatchesBoolLogic) {
  using V = VecD<kW>;
  const V a = make<V>(1.0, 3.0, 5.0, 7.0);
  const V t2 = V::broadcast(2.0);
  const V t6 = V::broadcast(6.0);
  const auto lo = cmp_lt(a, t6);   // 1,1,1,0
  const auto hi = cmp_gt(a, t2);   // 0,1,1,1
  const auto both = lo & hi;       // 0,1,1,0
  const auto either = lo | hi;     // 1,1,1,1
  const auto neither = ~either;    // 0,0,0,0
  const bool want_both[kW] = {false, true, true, false};
  for (int l = 0; l < kW; ++l) {
    EXPECT_EQ(both.test(l), want_both[l]) << l;
    EXPECT_TRUE(either.test(l)) << l;
    EXPECT_FALSE(neither.test(l)) << l;
  }
  EXPECT_TRUE(both.any());
  EXPECT_FALSE(neither.any());
}

TEST(Simd, LoadStoreSetRoundTrip) {
  using V = VecD<kW>;
  double in[kW] = {-0.0, 1.5, -1e308, 42.0};
  V v = V::load(in);
  v.set(1, 2.5);
  double out[kW];
  v.store(out);
  EXPECT_EQ(bits(out[0]), bits(-0.0));
  EXPECT_EQ(bits(out[1]), bits(2.5));
  EXPECT_EQ(bits(out[2]), bits(-1e308));
  EXPECT_EQ(bits(out[3]), bits(42.0));
}

TEST(Simd, NativeAndFallbackAgreeBitForBit) {
  // When the native backend is compiled, it must be indistinguishable
  // from the fallback on the same inputs (the fallback is the semantics
  // spec). In the PNS_SIMD=off leg both sides are the fallback and this
  // still holds trivially.
  using N = VecD<kW>;
  using F = VecDImpl<kW, false>;
  const auto& p = probes();
  for (std::size_t i = 0; i + kW <= p.size(); ++i)
    for (std::size_t j = 0; j + kW <= p.size(); ++j) {
      const N na = N::load(&p[i]), nb = N::load(&p[j]);
      const F fa = F::load(&p[i]), fb = F::load(&p[j]);
      const N nr = select(cmp_lt(na, nb), na * nb - nb, na / nb + nb);
      const F fr = select(cmp_lt(fa, fb), fa * fb - fb, fa / fb + fb);
      for (int l = 0; l < kW; ++l)
        EXPECT_EQ(bits(nr[l]), bits(fr[l])) << "lane " << l;
    }
}

TEST(Simd, Width2AndWidth8Compile) {
  // The kernels chunk at widths 2 and 4 and the stress tests sweep 8;
  // every width the header advertises must actually instantiate.
  VecD<2> a2 = VecD<2>::broadcast(3.0);
  VecD<8> a8 = VecD<8>::broadcast(2.0);
  EXPECT_EQ((a2 * a2)[1], 9.0);
  EXPECT_EQ((a8 + a8)[7], 4.0);
}

}  // namespace
}  // namespace pns::simd
