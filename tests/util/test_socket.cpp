// Tests of LineConn's fault seams and interrupted-syscall handling
// (util/socket.hpp): EINTR storms, forced short reads/writes and
// injected connection drops, driven over a local socketpair. The real
// EINTR path and the injected one share the same retry edge in the
// io_recv/io_send funnels, so exercising the injector exercises the
// uniform EINTR/EAGAIN handling the daemon and workers rely on.
#include <sys/socket.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/fault.hpp"
#include "util/socket.hpp"

namespace pns::net {
namespace {

/// A connected AF_UNIX stream pair wrapped in LineConns.
struct Pair {
  Pair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a.emplace(Socket(fds[0]));
    b.emplace(Socket(fds[1]));
  }
  std::optional<LineConn> a, b;
};

TEST(Endpoint, ParsesTheThreeSpellings) {
  const Endpoint u = Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(u.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(u.path, "/tmp/x.sock");
  const Endpoint p = Endpoint::parse("tcp:7654");
  EXPECT_EQ(p.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(p.port, 7654);
  const Endpoint hp = Endpoint::parse("tcp:example.org:80");
  EXPECT_EQ(hp.host, "example.org");
  EXPECT_EQ(hp.port, 80);
  EXPECT_THROW(Endpoint::parse("tcp:"), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("unix:"), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("carrier-pigeon:coop"),
               std::invalid_argument);
}

TEST(LineConnFault, EintrStormsNeverBreakFramingOrProgress) {
  Pair pair;
  // p=0.9 EINTR storms on both directions: every recv/send retries
  // through bursts of injected interrupts, exactly like a process being
  // peppered with signals mid-syscall.
  pair.a->set_fault(
      fault::make_injector("fault:seed=11,eintr=0.9"));
  pair.b->set_fault(
      fault::make_injector("fault:seed=12,eintr=0.9"));

  std::vector<std::string> sent;
  for (int k = 0; k < 200; ++k)
    sent.push_back("line-" + std::to_string(k) + "-" +
                   std::string(static_cast<std::size_t>(k % 17), 'x'));

  std::thread writer([&] {
    for (const std::string& line : sent)
      ASSERT_TRUE(pair.a->send_line_blocking(line));
  });
  std::vector<std::string> got;
  while (got.size() < sent.size()) {
    std::optional<std::string> line = pair.b->recv_line_blocking();
    ASSERT_TRUE(line.has_value());
    got.push_back(*std::move(line));
  }
  writer.join();
  EXPECT_EQ(got, sent);
}

TEST(LineConnFault, ShortReadsAndWritesReassembleLargeLinesIntact) {
  Pair pair;
  // Every send and recv is clamped to a random short budget (p=1), so a
  // 64 KB line crosses the socket in many ragged fragments; framing must
  // reassemble every byte in order.
  auto fa = fault::make_injector(
      "fault:seed=21,short_read=1,short_write=1");
  auto fb = fault::make_injector(
      "fault:seed=22,short_read=1,short_write=1");
  pair.a->set_fault(fa);
  pair.b->set_fault(fb);

  std::vector<std::string> sent;
  for (int k = 0; k < 8; ++k) {
    std::string line;
    line.reserve(64u << 10);
    while (line.size() < (64u << 10))
      line += "payload-" + std::to_string(k) + "-" +
              std::to_string(line.size()) + ";";
    sent.push_back(std::move(line));
  }

  std::thread writer([&] {
    for (const std::string& line : sent)
      ASSERT_TRUE(pair.a->send_line_blocking(line));
  });
  std::vector<std::string> got;
  while (got.size() < sent.size()) {
    std::optional<std::string> line = pair.b->recv_line_blocking();
    ASSERT_TRUE(line.has_value());
    got.push_back(*std::move(line));
  }
  writer.join();
  EXPECT_EQ(got, sent);
  // The clamps genuinely fired -- this was not a clean-path walkover.
  EXPECT_GT(fa->stats(fault::FaultSite::kShortWrite).hits, 8u);
  EXPECT_GT(fb->stats(fault::FaultSite::kShortRead).hits, 8u);
}

TEST(LineConnFault, InjectedDropLooksLikeADeadPeer) {
  {  // drop on send: the blocking sender sees the peer as gone
    Pair pair;
    pair.a->set_fault(fault::make_injector("fault:seed=5,conn_drop=1"));
    EXPECT_FALSE(pair.a->send_line_blocking("doomed"));
    EXPECT_FALSE(pair.a->valid());  // severed, not merely failed once
  }
  {  // drop on recv: the blocking receiver sees end of conversation
    Pair pair;
    pair.b->set_fault(fault::make_injector("fault:seed=5,conn_drop=1"));
    ASSERT_TRUE(pair.a->send_line_blocking("hello"));
    EXPECT_FALSE(pair.b->recv_line_blocking().has_value());
  }
}

TEST(LineConnFault, MidFrameDropLeavesATornPrefixForThePeer) {
  // The injected sever pushes half the frame first, modelling what a
  // dying host's kernel may already have flushed. The peer must treat
  // the torn tail as an unterminated line, not deliver it.
  Pair pair;
  pair.a->set_fault(fault::make_injector("fault:seed=5,conn_drop=1"));
  const std::string line(100, 'z');
  EXPECT_FALSE(pair.a->send_line_blocking(line));
  std::vector<std::string> got;
  IoStatus st;
  do {
    st = pair.b->read_lines(got);
  } while (st == IoStatus::kOk && got.empty());
  EXPECT_EQ(st, IoStatus::kClosed);
  EXPECT_TRUE(got.empty());  // a torn prefix is not a line
}

TEST(LineConnFault, SameSeedSameWorkloadSameInjections) {
  // The full determinism contract at the socket layer: identical
  // workloads against same-seed injectors draw identical decisions.
  const std::string spec =
      "fault:seed=33,short_read=0.5,short_write=0.5,eintr=0.3";
  std::vector<std::uint64_t> counts[2];
  for (int run = 0; run < 2; ++run) {
    Pair pair;
    auto inj = fault::make_injector(spec);
    pair.a->set_fault(inj);
    std::thread reader([&] {
      for (int k = 0; k < 50; ++k)
        if (!pair.b->recv_line_blocking()) return;
    });
    for (int k = 0; k < 50; ++k)
      ASSERT_TRUE(
          pair.a->send_line_blocking(std::string(1000 + 13 * k, 'q')));
    reader.join();
    for (const auto site :
         {fault::FaultSite::kShortWrite, fault::FaultSite::kEintr}) {
      counts[run].push_back(inj->stats(site).ops);
      counts[run].push_back(inj->stats(site).hits);
    }
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_GT(counts[0][1], 0u);  // short writes actually fired
}

}  // namespace
}  // namespace pns::net
