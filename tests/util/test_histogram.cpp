// Tests for the uniform-bin histogram (util/histogram).
#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace pns {
namespace {

TEST(Histogram, ConstructionContracts) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Histogram, BinGeometry) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 5.0);
}

TEST(Histogram, SamplesLandInCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_DOUBLE_EQ(h.weight(0), 2.0);
  EXPECT_DOUBLE_EQ(h.weight(1), 1.0);
  EXPECT_DOUBLE_EQ(h.weight(4), 1.0);
}

TEST(Histogram, UnderOverflowTracked) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.5);
  h.add(1.0);  // hi edge counts as overflow (half-open range)
  h.add(2.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 3.0);
}

TEST(Histogram, FractionNormalises) {
  Histogram h(0.0, 4.0, 4);
  h.add_weighted(0.5, 3.0);
  h.add_weighted(2.5, 1.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.25);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
}

TEST(Histogram, FractionOfEmptyIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, ModeBin) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(Histogram, WeightedAddRejectsNegative) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.add_weighted(0.5, -1.0), ContractViolation);
}

TEST(Histogram, ZeroWeightIsNoop) {
  Histogram h(0.0, 1.0, 2);
  h.add_weighted(0.5, 0.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
}

TEST(Histogram, ToStringContainsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const std::string s = h.to_string(10);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find('%'), std::string::npos);
}

TEST(Histogram, OutOfRangeBinAccessThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.weight(2), ContractViolation);
  EXPECT_THROW(h.bin_lo(2), ContractViolation);
}

}  // namespace
}  // namespace pns
