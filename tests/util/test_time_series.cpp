// Tests for the sampled time-series container (util/time_series).
#include "util/time_series.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace pns {
namespace {

TimeSeries make_ramp() {
  TimeSeries ts;
  ts.append(0.0, 0.0);
  ts.append(1.0, 1.0);
  ts.append(2.0, 1.0);
  ts.append(3.0, 0.0);
  return ts;
}

TEST(TimeSeries, AppendRequiresMonotoneTime) {
  TimeSeries ts;
  ts.append(1.0, 0.0);
  ts.append(1.0, 1.0);  // equal is fine (step)
  EXPECT_THROW(ts.append(0.5, 2.0), ContractViolation);
}

TEST(TimeSeries, AtInterpolatesAndClamps) {
  auto ts = make_ramp();
  EXPECT_DOUBLE_EQ(ts.at(0.5), 0.5);
  EXPECT_DOUBLE_EQ(ts.at(1.5), 1.0);
  EXPECT_DOUBLE_EQ(ts.at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.at(9.0), 0.0);
}

TEST(TimeSeries, IntegralTrapezoid) {
  auto ts = make_ramp();
  // 0.5 + 1.0 + 0.5
  EXPECT_NEAR(ts.integral(), 2.0, 1e-12);
  EXPECT_NEAR(ts.integral(1.0, 2.0), 1.0, 1e-12);
  EXPECT_NEAR(ts.integral(0.5, 1.5), 0.375 + 0.5, 1e-12);
}

TEST(TimeSeries, TimeWeightedMean) {
  auto ts = make_ramp();
  EXPECT_NEAR(ts.time_weighted_mean(), 2.0 / 3.0, 1e-12);
}

TEST(TimeSeries, DurationAndEndpoints) {
  auto ts = make_ramp();
  EXPECT_DOUBLE_EQ(ts.t_front(), 0.0);
  EXPECT_DOUBLE_EQ(ts.t_back(), 3.0);
  EXPECT_DOUBLE_EQ(ts.duration(), 3.0);
}

TEST(TimeSeries, FractionWithinWholeBand) {
  auto ts = make_ramp();
  EXPECT_NEAR(ts.fraction_within(-1.0, 2.0), 1.0, 1e-12);
}

TEST(TimeSeries, FractionWithinPartialBand) {
  auto ts = make_ramp();
  // Band [0.5, 1.0]: ramp up contributes 0.5 s of its 1 s; plateau 1 s;
  // ramp down 0.5 s -> 2.0/3.0 of the total.
  EXPECT_NEAR(ts.fraction_within(0.5, 1.0), 2.0 / 3.0, 1e-12);
}

TEST(TimeSeries, FractionWithinFlatSegmentOnEdge) {
  TimeSeries ts;
  ts.append(0.0, 1.0);
  ts.append(2.0, 1.0);
  EXPECT_NEAR(ts.fraction_within(1.0, 2.0), 1.0, 1e-12);
  EXPECT_NEAR(ts.fraction_within(1.5, 2.0), 0.0, 1e-12);
}

TEST(TimeSeries, FractionWithinEmptyOrSingle) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.fraction_within(0.0, 1.0), 0.0);
  ts.append(0.0, 0.5);
  EXPECT_DOUBLE_EQ(ts.fraction_within(0.0, 1.0), 0.0);
}

TEST(TimeSeries, MinMax) {
  auto ts = make_ramp();
  EXPECT_DOUBLE_EQ(ts.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 1.0);
}

TEST(TimeSeries, HistogramFillUsesDwellTime) {
  TimeSeries ts;
  ts.append(0.0, 0.5);
  ts.append(3.0, 0.5);  // 3 s at 0.5
  ts.append(4.0, 2.5);  // 1 s ramping, midpoint 1.5
  Histogram h(0.0, 3.0, 3);
  ts.fill_histogram(h);
  EXPECT_DOUBLE_EQ(h.weight(0), 3.0);
  EXPECT_DOUBLE_EQ(h.weight(1), 1.0);
}

TEST(TimeSeries, SegmentStatsTimeWeighted) {
  TimeSeries ts;
  ts.append(0.0, 1.0);
  ts.append(3.0, 1.0);
  ts.append(4.0, 5.0);
  const auto s = ts.segment_stats();
  // 3 s at 1.0, 1 s at midpoint 3.0 -> mean 1.5
  EXPECT_NEAR(s.mean(), 1.5, 1e-12);
  EXPECT_NEAR(s.total_weight(), 4.0, 1e-12);
}

TEST(TimeSeries, DownsampleKeepsEndpointsAndBound) {
  TimeSeries ts;
  for (int i = 0; i <= 1000; ++i) ts.append(i * 0.1, i * 1.0);
  auto d = ts.downsampled(11);
  EXPECT_EQ(d.size(), 11u);
  EXPECT_DOUBLE_EQ(d.times().front(), 0.0);
  EXPECT_DOUBLE_EQ(d.times().back(), 100.0);
}

TEST(TimeSeries, DownsampleNoopWhenSmall) {
  auto ts = make_ramp();
  auto d = ts.downsampled(100);
  EXPECT_EQ(d.size(), ts.size());
}

TEST(TimeSeries, EmptyContracts) {
  TimeSeries ts;
  EXPECT_THROW(ts.t_front(), ContractViolation);
  EXPECT_THROW(ts.min_value(), ContractViolation);
  EXPECT_THROW(ts.at(0.0), ContractViolation);
}

}  // namespace
}  // namespace pns
