// Sweep-layer tests for the platform axis (sweep/scenario.hpp
// PlatformSpec, sweep/registry.cpp resolve_platform, the registered
// "mono"/"biglittle" kinds) and the per-domain metrics that ride the
// SummaryRow JSON.
//
// The two contracts pinned here: (1) the default platform is
// byte-invisible -- an explicit "mono" run and a default run produce
// identical canonical metrics, and the journal identity omits the
// platform key entirely; (2) multi-domain runs are execution-strategy
// independent -- the rk23batch lanes reproduce the scalar rk23pi
// per-domain metrics bit for bit.
#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../support/scenario_grid.hpp"
#include "soc/topology.hpp"
#include "sweep/aggregate.hpp"
#include "sweep/assets.hpp"
#include "sweep/journal.hpp"
#include "sweep/registry.hpp"
#include "sweep/scenario.hpp"
#include "util/json.hpp"
#include "util/params.hpp"

namespace pns::sweep {
namespace {

using testsupport::GridOptions;
using testsupport::canonical_metrics;
using testsupport::make_scenario_grid;

// ------------------------------------------------------ spec strings

TEST(PlatformSpec, ParseRoundTripsEveryRegisteredKind) {
  for (const PlatformEntry& entry : PlatformRegistry::instance().entries()) {
    const PlatformSpec spec = PlatformSpec::parse(entry.kind);
    EXPECT_EQ(spec.kind, entry.kind);
    EXPECT_EQ(PlatformSpec::parse(spec.spec_string()).spec_string(),
              spec.spec_string());
  }
  const PlatformSpec two =
      PlatformSpec::parse("biglittle:big_cores=2,arbiter=priority");
  EXPECT_EQ(two.spec_string(), "biglittle:big_cores=2,arbiter=priority");
}

TEST(PlatformSpec, UnknownKindNamesTheValidChoices) {
  try {
    PlatformSpec::parse("quadlittle");
    FAIL() << "expected ParamError";
  } catch (const ParamError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("mono"), std::string::npos) << what;
    EXPECT_NE(what.find("biglittle"), std::string::npos) << what;
  }
}

TEST(PlatformSpec, UnknownAndMistypedParamsAreRejected) {
  EXPECT_THROW(PlatformSpec::parse("biglittle:turbo=1"), ParamError);
  EXPECT_THROW(PlatformSpec::parse("biglittle:big_cores=many"),
               ParamError);
  EXPECT_THROW(PlatformSpec::parse("mono:cores=4"), ParamError);
  // Keys and types gate parse; *values* gate resolution -- a bad
  // arbiter spelling is caught by the factory, naming the policies.
  try {
    resolve_platform(PlatformSpec::parse("biglittle:arbiter=fair"));
    FAIL() << "expected ParamError";
  } catch (const ParamError& e) {
    EXPECT_NE(std::string(e.what()).find("proportional"),
              std::string::npos);
  }
}

TEST(ResolvePlatform, CompilesRegisteredMultiDomainKinds) {
  const soc::Platform mono = resolve_platform(PlatformSpec{});
  EXPECT_EQ(mono.domains, nullptr);

  const soc::Platform bl =
      resolve_platform(PlatformSpec::parse("biglittle"));
  ASSERT_NE(bl.domains, nullptr);
  EXPECT_EQ(bl.domains->domain_count(), 2u);
  EXPECT_EQ(bl.domains->domains[0].name, "little");
  EXPECT_EQ(bl.domains->domains[1].name, "big");

  const soc::Platform uncore =
      resolve_platform(PlatformSpec::parse("biglittle:uncore=true"));
  ASSERT_NE(uncore.domains, nullptr);
  EXPECT_EQ(uncore.domains->domain_count(), 3u);
}

// --------------------------------------------------- journal identity

TEST(SweepIdentity, DefaultPlatformIsOmitted) {
  const std::string id =
      sweep_identity("table2", 15.0, ehsim::PvSource::Mode::kExact, {},
                     {}, IntegratorSpec{}, PlatformSpec{});
  EXPECT_EQ(id.find("platform="), std::string::npos) << id;
  // Spelling "mono" out loud must not perturb pre-platform identities.
  EXPECT_EQ(sweep_identity("table2", 15.0, ehsim::PvSource::Mode::kExact,
                           {}, {}, IntegratorSpec{},
                           PlatformSpec::parse("mono")),
            id);
}

TEST(SweepIdentity, NonDefaultPlatformIsPinned) {
  const PlatformSpec bl = PlatformSpec::parse("biglittle:big_cores=2");
  const std::string id = sweep_identity(
      "table2", 15.0, ehsim::PvSource::Mode::kExact, {}, {},
      IntegratorSpec{}, bl);
  EXPECT_NE(id.find("platform=biglittle:big_cores=2"), std::string::npos)
      << id;
  // Different topology -> different identity (resume-mixing guard).
  EXPECT_NE(id, sweep_identity("table2", 15.0,
                               ehsim::PvSource::Mode::kExact, {}, {},
                               IntegratorSpec{},
                               PlatformSpec::parse("biglittle")));
}

// ------------------------------------------------- default neutrality

TEST(PlatformAxis, ExplicitMonoMatchesDefaultByteForByte) {
  GridOptions opt;
  opt.count = 4;
  opt.max_window_s = 40.0;
  const auto specs = make_scenario_grid(0x5EEDFACEull, opt);
  ScenarioAssets assets;
  for (ScenarioSpec spec : specs) {
    spec.platform_spec = PlatformSpec{};
    const std::string def =
        canonical_metrics(spec, run_scenario(spec, assets));
    spec.platform_spec = PlatformSpec::parse("mono");
    EXPECT_EQ(canonical_metrics(spec, run_scenario(spec, assets)), def)
        << spec.label;
  }
}

// --------------------------------------------- per-domain metrics

TEST(PlatformAxis, MultiDomainRunsProducePerDomainMetrics) {
  ScenarioSpec spec;
  spec.label = "md-metrics";
  spec.platform_spec = PlatformSpec::parse("biglittle");
  spec.control = ControlSpec::parse("pns");
  spec.integrator = IntegratorSpec::parse("rk23pi");
  spec.t_end = spec.t_start + 60.0;

  SweepOutcome out;
  out.spec = spec;
  out.result = run_scenario(spec);
  out.ok = true;
  const SummaryRow row = summarize(out);

  ASSERT_EQ(row.domains.size(), 2u);
  EXPECT_EQ(row.domains[0].name, "little");
  EXPECT_EQ(row.domains[1].name, "big");
  double share = 0.0, energy = 0.0, instr = 0.0;
  for (const sim::DomainMetrics& d : row.domains) {
    EXPECT_GT(d.energy_j, 0.0) << d.name;
    EXPECT_GT(d.instructions, 0.0) << d.name;
    share += d.mean_budget_share;
    energy += d.energy_j;
    instr += d.instructions;
  }
  EXPECT_NEAR(share, 1.0, 1e-9);
  // Domain decomposition is a decomposition: parts bounded by wholes.
  EXPECT_LE(energy, out.result.metrics.energy_consumed_j * (1 + 1e-9));
  EXPECT_NEAR(instr, out.result.metrics.instructions, 1e-6 * instr);

  // Determinism: a second run reproduces the exact bytes.
  EXPECT_EQ(canonical_metrics(spec, run_scenario(spec)),
            canonical_metrics(out));
}

TEST(PlatformAxis, MonoRowsCarryNoDomainsArray) {
  ScenarioSpec spec;
  spec.label = "mono-metrics";
  spec.t_end = spec.t_start + 30.0;
  SweepOutcome out;
  out.spec = spec;
  out.result = run_scenario(spec);
  out.ok = true;
  EXPECT_TRUE(summarize(out).domains.empty());
  // The frozen CSV/JSON surface: no "domains" key at all on mono rows.
  EXPECT_EQ(canonical_metrics(out).find("\"domains\""),
            std::string::npos);
}

TEST(SummaryRow, DomainsSurviveTheJsonRoundTrip) {
  SummaryRow row;
  row.label = "rt";
  row.ok = true;
  row.domains.push_back({"little", 1.25, 3.0e9, 0.4375});
  row.domains.push_back({"big", 7.5, 2.1e10, 0.5625});

  std::ostringstream os;
  JsonWriter w(os, JsonStyle::kCompact);
  write_summary_row_json(w, row);
  const SummaryRow back = summary_row_from_json(parse_json(os.str()));
  ASSERT_EQ(back.domains.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back.domains[i].name, row.domains[i].name);
    EXPECT_EQ(back.domains[i].energy_j, row.domains[i].energy_j);
    EXPECT_EQ(back.domains[i].instructions, row.domains[i].instructions);
    EXPECT_EQ(back.domains[i].mean_budget_share,
              row.domains[i].mean_budget_share);
  }
}

// ------------------------------------------------------ batch parity

TEST(PlatformAxis, MultiDomainBatchLanesMatchScalarExactly) {
  GridOptions opt;
  opt.count = 8;
  opt.max_window_s = 60.0;
  opt.platforms = {"biglittle", "biglittle:arbiter=priority",
                   "biglittle:arbiter=demand,big_cores=2",
                   "biglittle:uncore=true"};
  opt.controls = {"pns", "gov:ondemand", "mdgov:conservative",
                  "mdgov:ondemand:stagger=2", "static"};
  const auto specs = make_scenario_grid(0xD0A1A1ull, opt);

  // Scalar reference under rk23pi.
  std::vector<std::string> ref;
  ScenarioAssets assets;
  for (ScenarioSpec spec : specs) {
    spec.integrator = IntegratorSpec::parse("rk23pi");
    ref.push_back(canonical_metrics(spec, run_scenario(spec, assets)));
    // Every reference row must actually carry per-domain metrics,
    // otherwise this parity test is comparing empty arrays.
    EXPECT_NE(ref.back().find("\"domains\""), std::string::npos);
  }

  // Batched lanes under rk23batch, width 4.
  std::vector<ScenarioSpec> batched = specs;
  for (auto& spec : batched)
    spec.integrator = IntegratorSpec::parse("rk23batch:width=4");
  for (std::size_t begin = 0; begin < batched.size(); begin += 4) {
    const std::size_t n = std::min<std::size_t>(4, batched.size() - begin);
    const auto outcomes =
        run_scenarios_batched(batched.data() + begin, n, assets);
    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_TRUE(outcomes[k].ok) << outcomes[k].error;
      EXPECT_EQ(canonical_metrics(outcomes[k]), ref[begin + k])
          << specs[begin + k].label;
    }
  }
}

}  // namespace
}  // namespace pns::sweep
