// Tests for the checkpoint journal + shard/merge machinery: an
// interrupted-then-resumed or N-shard-merged sweep must publish an
// aggregate byte-identical to a single uninterrupted run.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sweep/aggregate.hpp"
#include "sweep/journal.hpp"
#include "sweep/runner.hpp"
#include "sweep/scenario.hpp"
#include "util/contracts.hpp"
#include "util/fault.hpp"

namespace pns::sweep {
namespace {

namespace fs = std::filesystem;

// Unique-per-test scratch file, removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& stem) {
    path_ = (fs::temp_directory_path() /
             (stem + "-" + std::to_string(::getpid()) + ".jsonl"))
                .string();
    fs::remove(path_);
  }
  ~TempFile() { fs::remove(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Six fast scenarios (30 simulated seconds each) exercising several
// control paths, as in test_sweep.cpp.
SweepSpec small_sweep() {
  SweepSpec sw;
  sw.base.t_start = 12.0 * 3600.0;
  sw.base.t_end = sw.base.t_start + 30.0;
  sw.base.record_series = false;
  sw.controls = {ControlSpec::power_neutral(),
                 ControlSpec::linux_governor("powersave"),
                 ControlSpec::linux_governor("ondemand")};
  sw.seeds = {11, 12};
  return sw;
}

SweepRunner runner_with(unsigned threads) {
  SweepRunnerOptions opt;
  opt.threads = threads;
  return SweepRunner(opt);
}

std::string csv_of(const std::vector<SummaryRow>& rows) {
  std::ostringstream os;
  Aggregator(rows).write_csv(os);
  return os.str();
}

std::string json_of(const std::vector<SummaryRow>& rows) {
  std::ostringstream os;
  Aggregator(rows).write_json(os);
  return os.str();
}

std::vector<SummaryRow> uninterrupted_rows(
    const std::vector<ScenarioSpec>& specs) {
  const auto outcomes = runner_with(2).run(specs);
  std::vector<SummaryRow> rows;
  rows.reserve(outcomes.size());
  for (const auto& o : outcomes) rows.push_back(summarize(o));
  return rows;
}

// ----------------------------------------------------------- journal

TEST(Journal, RowsRoundTripBitExactly) {
  const auto specs = small_sweep().expand();
  const auto rows = uninterrupted_rows(specs);
  TempFile file("pns-journal-roundtrip");

  JournalWriter writer =
      JournalWriter::create(file.path(), {"small", specs.size()});
  for (std::size_t i = 0; i < rows.size(); ++i) writer.append(i, rows[i]);

  const JournalContents contents = read_journal(file.path());
  EXPECT_EQ(contents.header.sweep, "small");
  EXPECT_EQ(contents.header.total, specs.size());
  EXPECT_EQ(contents.dropped_lines, 0u);
  ASSERT_EQ(contents.rows.size(), rows.size());
  std::vector<SummaryRow> parsed;
  for (const auto& [i, row] : contents.rows) {
    EXPECT_EQ(i, parsed.size());
    parsed.push_back(row);
  }
  // Bitwise-identical serialisation is the contract resume/merge rest on.
  EXPECT_EQ(csv_of(parsed), csv_of(rows));
  EXPECT_EQ(json_of(parsed), json_of(rows));
}

TEST(Journal, TornTrailingLineIsDropped) {
  const auto specs = small_sweep().expand();
  const auto rows = uninterrupted_rows(specs);
  TempFile file("pns-journal-torn");
  {
    JournalWriter writer =
        JournalWriter::create(file.path(), {"small", specs.size()});
    writer.append(0, rows[0]);
    writer.append(1, rows[1]);
  }
  {
    // A kill mid-append leaves a prefix of a line with no newline.
    std::ofstream torn(file.path(), std::ios::app);
    torn << "{\"kind\":\"row\",\"i\":2,\"row\":{\"label\":\"trunc";
  }
  const JournalContents contents = read_journal(file.path());
  EXPECT_EQ(contents.rows.size(), 2u);
  EXPECT_EQ(contents.dropped_lines, 1u);
}

TEST(Journal, FsyncDurabilityWritesIdenticalBytes) {
  const auto specs = small_sweep().expand();
  const auto rows = uninterrupted_rows(specs);
  TempFile flushed("pns-journal-flush");
  TempFile fsynced("pns-journal-fsync");
  {
    JournalWriter a = JournalWriter::create(
        flushed.path(), {"small", specs.size()}, JournalDurability::kFlush);
    JournalWriter b = JournalWriter::create(
        fsynced.path(), {"small", specs.size()}, JournalDurability::kFsync);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      a.append(i, rows[i], 0.5);
      b.append(i, rows[i], 0.5);
    }
  }
  // --fsync changes crash durability, never the bytes.
  std::ifstream fa(flushed.path(), std::ios::binary);
  std::ifstream fb(fsynced.path(), std::ios::binary);
  std::stringstream sa, sb;
  sa << fa.rdbuf();
  sb << fb.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_NE(sa.str().find("pns-sweep-journal"), std::string::npos);
}

TEST(Journal, CanonicalFormIsIndexOrderedAndTimingFree) {
  const auto specs = small_sweep().expand();
  const auto rows = uninterrupted_rows(specs);
  TempFile file("pns-journal-canon");

  // Completion-order appends with wall_s metadata...
  std::map<std::size_t, SummaryRow> by_index;
  {
    JournalWriter writer =
        JournalWriter::create(file.path(), {"small", specs.size()});
    for (std::size_t k = rows.size(); k-- > 0;)
      writer.append(k, rows[k], 0.1 * static_cast<double>(k));
    for (std::size_t i = 0; i < rows.size(); ++i)
      by_index.emplace(i, rows[i]);
  }
  TempFile canon_a("pns-journal-canon-a");
  write_canonical_journal(canon_a.path(), {"small", specs.size()},
                          by_index);
  // ...canonicalise to the same bytes as rows that never saw a journal:
  // the canonical form is a pure function of the sweep.
  const JournalContents round = read_journal(file.path());
  TempFile canon_b("pns-journal-canon-b");
  write_canonical_journal(canon_b.path(), round.header, round.rows);

  std::ifstream fa(canon_a.path(), std::ios::binary);
  std::ifstream fb(canon_b.path(), std::ios::binary);
  std::stringstream sa, sb;
  sa << fa.rdbuf();
  sb << fb.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_EQ(sa.str().find("wall_s"), std::string::npos);

  // And reading the canonical journal back yields the original rows.
  const JournalContents canon = read_journal(canon_a.path());
  ASSERT_EQ(canon.rows.size(), rows.size());
  std::vector<SummaryRow> parsed;
  for (const auto& [i, row] : canon.rows) parsed.push_back(row);
  EXPECT_EQ(csv_of(parsed), csv_of(rows));
}

TEST(Journal, MissingHeaderRejected) {
  TempFile file("pns-journal-noheader");
  std::ofstream(file.path()) << "{\"kind\":\"row\",\"i\":0}\n";
  EXPECT_THROW(read_journal(file.path()), JournalError);
  EXPECT_THROW(read_journal("/no/such/journal.jsonl"), JournalError);
}

TEST(Journal, IdentityMismatchRejected) {
  TempFile file("pns-journal-mismatch");
  JournalWriter::create(file.path(), {"table2", 18});
  EXPECT_NO_THROW(read_journal(file.path(), JournalHeader{"table2", 18}));
  EXPECT_THROW(read_journal(file.path(), JournalHeader{"table2", 12}),
               JournalError);
  EXPECT_THROW(read_journal(file.path(), JournalHeader{"weather", 18}),
               JournalError);
}

// ------------------------------------------------- CRC + chaos recovery

std::vector<std::string> file_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

void write_lines(const std::string& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  for (const std::string& line : lines) out << line << '\n';
}

TEST(JournalCrc, EveryWrittenLineCarriesAChecksum) {
  const auto specs = small_sweep().expand();
  const auto rows = uninterrupted_rows(specs);
  TempFile file("pns-crc-every");
  {
    JournalWriter writer =
        JournalWriter::create(file.path(), {"small", specs.size()});
    for (std::size_t i = 0; i < rows.size(); ++i) writer.append(i, rows[i]);
  }
  const auto lines = file_lines(file.path());
  ASSERT_EQ(lines.size(), rows.size() + 1);  // header + one per row
  for (const std::string& line : lines) {
    // The fixed-width suffix: ,"crc":"xxxxxxxx"}
    ASSERT_GE(line.size(), 18u) << line;
    const std::string tail = line.substr(line.size() - 18);
    EXPECT_EQ(tail.substr(0, 8), ",\"crc\":\"") << line;
    EXPECT_EQ(tail.substr(16), "\"}") << line;
    for (char c : tail.substr(8, 8))
      EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c))) << line;
  }
}

TEST(JournalCrc, LegacyJournalsWithoutChecksumsStillRead) {
  const auto specs = small_sweep().expand();
  const auto rows = uninterrupted_rows(specs);
  TempFile file("pns-crc-legacy");
  {
    JournalWriter writer =
        JournalWriter::create(file.path(), {"small", specs.size()});
    for (std::size_t i = 0; i < rows.size(); ++i) writer.append(i, rows[i]);
  }
  // Strip every crc suffix, leaving the journal exactly as a pre-CRC
  // build would have written it.
  auto lines = file_lines(file.path());
  for (std::string& line : lines)
    line = line.substr(0, line.size() - 18) + "}";
  write_lines(file.path(), lines);

  const JournalContents contents = read_journal(file.path());
  EXPECT_EQ(contents.quarantined_lines, 0u);
  EXPECT_EQ(contents.dropped_lines, 0u);
  ASSERT_EQ(contents.rows.size(), rows.size());
  std::vector<SummaryRow> parsed;
  for (const auto& [i, row] : contents.rows) parsed.push_back(row);
  EXPECT_EQ(csv_of(parsed), csv_of(rows));
}

TEST(JournalCrc, CorruptRowIsQuarantinedAndResumeHealsIt) {
  const auto specs = small_sweep().expand();
  const auto full = uninterrupted_rows(specs);
  TempFile file("pns-crc-flip");
  {
    JournalWriter writer =
        JournalWriter::create(file.path(), {"small", specs.size()});
    for (std::size_t i = 0; i < full.size(); ++i) writer.append(i, full[i]);
  }
  // Flip one byte inside row 2's payload: the line still parses as JSON
  // (a silent corruption), but its checksum no longer matches.
  auto lines = file_lines(file.path());
  std::string& target = lines[3];  // header, row0, row1, row2
  const std::size_t label = target.find("\"label\":\"");
  ASSERT_NE(label, std::string::npos);
  target[label + 9] = (target[label + 9] == 'Z') ? 'Y' : 'Z';
  write_lines(file.path(), lines);

  const JournalContents contents = read_journal(file.path());
  EXPECT_EQ(contents.quarantined_lines, 1u);
  EXPECT_EQ(contents.rows.size(), full.size() - 1);
  EXPECT_EQ(contents.rows.count(2), 0u);
  ASSERT_FALSE(contents.notes.empty());
  EXPECT_NE(contents.notes[0].find("checksum"), std::string::npos);

  // A resume re-runs exactly the quarantined scenario and the published
  // aggregate equals the clean run that never saw the corruption.
  const auto report = runner_with(1).resume(specs, file.path(), "small");
  EXPECT_EQ(report.reused, full.size() - 1);
  EXPECT_EQ(report.executed, 1u);
  EXPECT_EQ(csv_of(report.rows), csv_of(full));
  EXPECT_EQ(json_of(report.rows), json_of(full));
}

TEST(JournalCrc, MergeAfterQuarantineEqualsCleanRun) {
  // The shard-merge workflow with corruption in one shard: after the
  // shard re-runs its quarantined row, the merged union is byte-equal
  // to the single clean run.
  const auto specs = small_sweep().expand();
  const auto full = uninterrupted_rows(specs);
  TempFile a("pns-crc-merge-a");
  TempFile b("pns-crc-merge-b");
  for (std::size_t k = 0; k < 2; ++k)
    runner_with(2).run_checkpointed(
        specs, (k == 0 ? a : b).path(), "small",
        shard_range(specs.size(), k, 2));

  // Corrupt the first row line of shard a.
  auto lines = file_lines(a.path());
  const std::size_t label = lines[1].find("\"label\":\"");
  ASSERT_NE(label, std::string::npos);
  lines[1][label + 9] = (lines[1][label + 9] == 'Z') ? 'Y' : 'Z';
  write_lines(a.path(), lines);
  EXPECT_EQ(read_journal(a.path()).quarantined_lines, 1u);

  // The shard worker re-runs: only the quarantined scenario executes,
  // and its fresh row supersedes the corrupt line (later wins).
  const auto healed = runner_with(1).run_checkpointed(
      specs, a.path(), "small", shard_range(specs.size(), 0, 2));
  EXPECT_EQ(healed.executed, 1u);

  std::map<std::size_t, SummaryRow> merged;
  for (const auto* f : {&a, &b}) {
    JournalContents part =
        read_journal(f->path(), JournalHeader{"small", specs.size()});
    merged.insert(part.rows.begin(), part.rows.end());
  }
  ASSERT_EQ(merged.size(), specs.size());
  std::vector<SummaryRow> rows;
  for (auto& [i, row] : merged) rows.push_back(std::move(row));
  EXPECT_EQ(csv_of(rows), csv_of(full));
}

TEST(Journal, TornHeaderIsUnrecoverableWithAClearDiagnostic) {
  const auto specs = small_sweep().expand();
  TempFile file("pns-crc-header");
  JournalWriter::create(file.path(), {"small", specs.size()});
  // Truncate mid-header: no trustworthy identity survives.
  const auto lines = file_lines(file.path());
  std::ofstream(file.path(), std::ios::trunc | std::ios::binary)
      << lines[0].substr(0, lines[0].size() / 2);
  try {
    read_journal(file.path());
    FAIL() << "expected JournalError";
  } catch (const JournalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unrecoverable"), std::string::npos) << what;
    EXPECT_NE(what.find("re-run"), std::string::npos) << what;
  }
}

TEST(Journal, FailedFsyncAppendThrowsThenResynchronises) {
  const auto specs = small_sweep().expand();
  const auto full = uninterrupted_rows(specs);
  TempFile file("pns-crc-fsync");
  // The 2nd fsync (the first row append; the header took the 1st) is
  // scheduled to fail. The append must fail loudly; the writer stays
  // usable and the retry lands on a fresh line.
  auto inj = fault::make_injector("fault:seed=1,fsync_fail=2");
  JournalWriter writer = JournalWriter::create(
      file.path(), {"small", specs.size()}, JournalDurability::kFsync, inj);
  EXPECT_THROW(writer.append(0, full[0]), JournalError);
  EXPECT_NO_THROW(writer.append(0, full[0]));
  EXPECT_NO_THROW(writer.append(1, full[1]));
  EXPECT_TRUE(writer.probe());

  const JournalContents contents = read_journal(file.path());
  EXPECT_EQ(contents.rows.size(), 2u);
  EXPECT_EQ(csv_of({contents.rows.at(0), contents.rows.at(1)}),
            csv_of({full[0], full[1]}));
}

TEST(Journal, TornAppendLeavesItsOwnDroppedLine) {
  const auto specs = small_sweep().expand();
  const auto full = uninterrupted_rows(specs);
  // Find a seed whose tear-site schedule is miss, hit, miss, miss: the
  // header write goes through, the first append tears, and the retry +
  // second append go through (each site's sequence is a pure function
  // of the seed, so this probe is exact).
  std::uint64_t seed = 0;
  for (std::uint64_t s = 1; s < 500; ++s) {
    fault::FaultInjector probe(
        fault::FaultSpec::parse("fault:seed=" + std::to_string(s) +
                                ",torn_append=0.5"));
    if (probe.tear_append(100) == 100 && probe.tear_append(100) < 100 &&
        probe.tear_append(100) == 100 && probe.tear_append(100) == 100) {
      seed = s;
      break;
    }
  }
  ASSERT_NE(seed, 0u);

  TempFile file("pns-crc-torn-append");
  auto inj = fault::make_injector("fault:seed=" + std::to_string(seed) +
                                  ",torn_append=0.5");
  JournalWriter writer = JournalWriter::create(
      file.path(), {"small", specs.size()}, JournalDurability::kFlush, inj);
  EXPECT_THROW(writer.append(0, full[0]), JournalError);
  EXPECT_NO_THROW(writer.append(0, full[0]));
  EXPECT_NO_THROW(writer.append(1, full[1]));

  // The torn fragment became its own dropped line; both rows are intact.
  const JournalContents contents = read_journal(file.path());
  EXPECT_EQ(contents.dropped_lines, 1u);
  ASSERT_FALSE(contents.notes.empty());
  EXPECT_EQ(contents.rows.size(), 2u);
  EXPECT_EQ(csv_of({contents.rows.at(0), contents.rows.at(1)}),
            csv_of({full[0], full[1]}));
}

// ------------------------------------------------------------- resume

TEST(SweepRunnerResume, FreshRunJournalsEveryScenario) {
  const auto specs = small_sweep().expand();
  TempFile file("pns-resume-fresh");
  const auto report = runner_with(2).resume(specs, file.path(), "small");
  EXPECT_EQ(report.reused, 0u);
  EXPECT_EQ(report.executed, specs.size());
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(read_journal(file.path()).rows.size(), specs.size());
  EXPECT_EQ(csv_of(report.rows), csv_of(uninterrupted_rows(specs)));
}

TEST(SweepRunnerResume, InterruptedRunResumesAndMatchesByteForByte) {
  const auto specs = small_sweep().expand();
  const auto full = uninterrupted_rows(specs);
  const std::string reference_csv = csv_of(full);
  const std::string reference_json = json_of(full);

  // Simulate a run killed after K completed scenarios: a journal holding
  // only the first K rows.
  for (std::size_t k : {std::size_t{1}, std::size_t{4}}) {
    TempFile file("pns-resume-k" + std::to_string(k));
    {
      JournalWriter writer =
          JournalWriter::create(file.path(), {"small", specs.size()});
      for (std::size_t i = 0; i < k; ++i) writer.append(i, full[i]);
    }
    const auto report = runner_with(2).resume(specs, file.path(), "small");
    EXPECT_EQ(report.reused, k);
    EXPECT_EQ(report.executed, specs.size() - k);
    EXPECT_EQ(csv_of(report.rows), reference_csv);
    EXPECT_EQ(json_of(report.rows), reference_json);
    // The journal is now complete: a second resume simulates nothing.
    const auto again = runner_with(2).resume(specs, file.path(), "small");
    EXPECT_EQ(again.reused, specs.size());
    EXPECT_EQ(again.executed, 0u);
    EXPECT_EQ(csv_of(again.rows), reference_csv);
  }
}

TEST(SweepRunnerResume, KilledMidAppendReRunsTheTornScenario) {
  const auto specs = small_sweep().expand();
  const auto full = uninterrupted_rows(specs);
  TempFile file("pns-resume-torn");
  {
    JournalWriter writer =
        JournalWriter::create(file.path(), {"small", specs.size()});
    writer.append(0, full[0]);
    writer.append(1, full[1]);
  }
  {
    std::ofstream torn(file.path(), std::ios::app);
    torn << "{\"kind\":\"row\",\"i\":2,\"row\":{\"label\"";
  }
  const auto report = runner_with(1).resume(specs, file.path(), "small");
  EXPECT_EQ(report.reused, 2u);
  EXPECT_EQ(report.executed, specs.size() - 2);
  EXPECT_EQ(csv_of(report.rows), csv_of(full));
}

TEST(SweepRunnerResume, IdentityPinsControlAndSourceSpecStrings) {
  // The CLI journals under sweep_identity(...), which embeds the full
  // --control/--source spec strings: resuming with a different tuning of
  // the *same* control kind must fail the header match with a message
  // naming both identities.
  const auto specs = small_sweep().expand();
  const auto mode = ehsim::PvSource::Mode::kExact;
  const std::string original = sweep_identity(
      "quick", 2.0, mode,
      {ControlSpec::parse("gov:ondemand:period=0.05")},
      {SourceSpec::parse("flicker:period=30,depth=0.5")});
  EXPECT_EQ(original,
            "quick?minutes=2&pv=exact&control=gov:ondemand:period=0.05"
            "&source=flicker:period=30,depth=0.5");
  // The default integrator is omitted (identical computation); any other
  // integrator spec is pinned.
  EXPECT_EQ(sweep_identity("quick", 2.0, mode, {}, {},
                           IntegratorSpec::parse("rk23")),
            "quick?minutes=2&pv=exact");
  EXPECT_EQ(sweep_identity("quick", 2.0, mode, {}, {},
                           IntegratorSpec::parse("rk23pi:rtol=0.001")),
            "quick?minutes=2&pv=exact&integrator=rk23pi:rtol=0.001");

  TempFile file("pns-identity-specs");
  runner_with(1).resume(specs, file.path(), original);
  // Same invocation resumes...
  EXPECT_NO_THROW(runner_with(1).resume(specs, file.path(), original));
  // ...a different governor period does not.
  const std::string retuned = sweep_identity(
      "quick", 2.0, mode, {ControlSpec::parse("gov:ondemand:period=0.1")},
      {SourceSpec::parse("flicker:period=30,depth=0.5")});
  try {
    runner_with(1).resume(specs, file.path(), retuned);
    FAIL() << "expected JournalError";
  } catch (const JournalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gov:ondemand:period=0.05"), std::string::npos);
    EXPECT_NE(what.find("gov:ondemand:period=0.1"), std::string::npos);
  }
  // Dropping the source override fails too.
  const std::string no_source = sweep_identity(
      "quick", 2.0, mode, {ControlSpec::parse("gov:ondemand:period=0.05")},
      {});
  EXPECT_THROW(runner_with(1).resume(specs, file.path(), no_source),
               JournalError);
}

TEST(SweepRunnerResume, BatchWidthIsExecutionOnlyInTheIdentity) {
  // rk23batch's `width` shapes execution, not results (the batched
  // engine is bit-identical at every width), so sweep_identity strips
  // it: journals written at one width are interchangeable with runs at
  // any other. Result-shaping params (rtol, ...) still pin.
  const auto mode = ehsim::PvSource::Mode::kExact;
  EXPECT_EQ(sweep_identity("quick", 2.0, mode, {}, {},
                           IntegratorSpec::parse("rk23batch:width=4")),
            "quick?minutes=2&pv=exact&integrator=rk23batch");
  EXPECT_EQ(sweep_identity("quick", 2.0, mode, {}, {},
                           IntegratorSpec::parse("rk23batch:width=8")),
            sweep_identity("quick", 2.0, mode, {}, {},
                           IntegratorSpec::parse("rk23batch")));
  EXPECT_EQ(
      sweep_identity("quick", 2.0, mode, {}, {},
                     IntegratorSpec::parse("rk23batch:width=4,rtol=0.001")),
      "quick?minutes=2&pv=exact&integrator=rk23batch:rtol=0.001");

  // A journal fully written under width=4 resumes under width=8 with
  // every row reused.
  auto sw4 = small_sweep();
  sw4.base.integrator = IntegratorSpec::parse("rk23batch:width=4");
  const std::string id4 = sweep_identity("small", 0.5, mode, {}, {},
                                         sw4.base.integrator);
  TempFile file("pns-batch-width");
  runner_with(1).resume(sw4.expand(), file.path(), id4);

  auto sw8 = small_sweep();
  sw8.base.integrator = IntegratorSpec::parse("rk23batch:width=8");
  const auto specs8 = sw8.expand();
  const std::string id8 = sweep_identity("small", 0.5, mode, {}, {},
                                         sw8.base.integrator);
  EXPECT_EQ(id4, id8);
  const auto report = runner_with(1).resume(specs8, file.path(), id8);
  EXPECT_EQ(report.reused, specs8.size());
  EXPECT_EQ(report.executed, 0u);
}

TEST(SweepRunnerResume, JournalFromDifferentSweepRejected) {
  const auto specs = small_sweep().expand();
  TempFile file("pns-resume-wrong");
  JournalWriter::create(file.path(), {"small", specs.size() + 1});
  EXPECT_THROW(runner_with(1).resume(specs, file.path(), "small"),
               JournalError);
}

TEST(SweepRunnerResume, JournaledLabelMismatchRejected) {
  const auto specs = small_sweep().expand();
  const auto full = uninterrupted_rows(specs);
  TempFile file("pns-resume-label");
  {
    JournalWriter writer =
        JournalWriter::create(file.path(), {"small", specs.size()});
    SummaryRow impostor = full[0];
    impostor.label = "not-the-scenario";
    writer.append(0, impostor);
  }
  EXPECT_THROW(runner_with(1).resume(specs, file.path(), "small"),
               JournalError);
}

// ---------------------------------------------------------- compaction

TEST(Journal, CompactedJournalResumesIdentically) {
  // The satellite contract: compacting a completed journal must not
  // change what a resume computes -- byte for byte.
  const auto specs = small_sweep().expand();
  TempFile original("pns-compact-src");
  const auto first = runner_with(2).resume(specs, original.path(), "small");
  const std::string reference_csv = csv_of(first.rows);

  TempFile compacted("pns-compact-dst");
  const std::size_t rows =
      compact_journal(original.path(), compacted.path());
  EXPECT_EQ(rows, specs.size());

  // The compacted journal parses to identical contents...
  const JournalContents a = read_journal(original.path());
  const JournalContents b = read_journal(compacted.path());
  EXPECT_EQ(a.header, b.header);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  std::vector<SummaryRow> av, bv;
  for (const auto& [i, row] : a.rows) av.push_back(row);
  for (const auto& [i, row] : b.rows) bv.push_back(row);
  EXPECT_EQ(csv_of(av), csv_of(bv));
  EXPECT_EQ(a.costs, b.costs);
  // ...and holds exactly two lines (header + rows block).
  std::ifstream in(compacted.path());
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_EQ(lines, 2u);

  // Resuming from the compacted journal simulates nothing and publishes
  // the identical aggregate.
  const auto resumed =
      runner_with(2).resume(specs, compacted.path(), "small");
  EXPECT_EQ(resumed.reused, specs.size());
  EXPECT_EQ(resumed.executed, 0u);
  EXPECT_EQ(csv_of(resumed.rows), reference_csv);
}

TEST(Journal, CompactInPlaceKeepsResumability) {
  const auto specs = small_sweep().expand();
  TempFile file("pns-compact-inplace");
  const auto first = runner_with(2).resume(specs, file.path(), "small");
  compact_journal(file.path(), file.path());
  const auto resumed = runner_with(1).resume(specs, file.path(), "small");
  EXPECT_EQ(resumed.reused, specs.size());
  EXPECT_EQ(csv_of(resumed.rows), csv_of(first.rows));
}

TEST(Journal, CheckpointedRunsRecordCosts) {
  const auto specs = small_sweep().expand();
  TempFile file("pns-costs");
  runner_with(2).resume(specs, file.path(), "small");
  const JournalContents contents = read_journal(file.path());
  EXPECT_EQ(contents.costs.size(), specs.size());
  for (const auto& [i, wall_s] : contents.costs) EXPECT_GE(wall_s, 0.0);
}

// -------------------------------------------------------------- shards

TEST(ShardRange, PartitionsExactly) {
  for (std::size_t total : {0u, 1u, 5u, 12u, 17u}) {
    for (std::size_t n : {1u, 2u, 3u, 4u, 7u}) {
      std::vector<int> covered(total, 0);
      std::size_t prev_end = 0;
      for (std::size_t k = 0; k < n; ++k) {
        const ShardRange r = shard_range(total, k, n);
        EXPECT_EQ(r.begin, prev_end);
        prev_end = r.end;
        for (std::size_t i = r.begin; i < r.end; ++i) ++covered[i];
      }
      EXPECT_EQ(prev_end, total);
      for (std::size_t i = 0; i < total; ++i) EXPECT_EQ(covered[i], 1);
    }
  }
  EXPECT_THROW(shard_range(10, 2, 2), ContractViolation);
  EXPECT_THROW(shard_range(10, 0, 0), ContractViolation);
}

TEST(SweepRunnerShards, MergedShardJournalsMatchSingleRunByteForByte) {
  const auto specs = small_sweep().expand();
  const auto full = uninterrupted_rows(specs);
  const std::string reference_csv = csv_of(full);
  const std::string reference_json = json_of(full);

  for (std::size_t n : {std::size_t{2}, std::size_t{4}}) {
    // Each shard worker writes its own partial journal...
    std::vector<TempFile> files;
    files.reserve(n);
    for (std::size_t k = 0; k < n; ++k)
      files.emplace_back("pns-shard-" + std::to_string(n) + "-" +
                         std::to_string(k));
    for (std::size_t k = 0; k < n; ++k) {
      const auto report = runner_with(2).run_checkpointed(
          specs, files[k].path(), "small", shard_range(specs.size(), k, n));
      EXPECT_EQ(report.executed, shard_range(specs.size(), k, n).size());
    }
    // ...and the merge (union by global index) reproduces the canonical
    // aggregate exactly.
    std::map<std::size_t, SummaryRow> merged;
    for (const auto& f : files) {
      JournalContents part =
          read_journal(f.path(), JournalHeader{"small", specs.size()});
      merged.insert(part.rows.begin(), part.rows.end());
    }
    ASSERT_EQ(merged.size(), specs.size());
    std::vector<SummaryRow> rows;
    for (auto& [i, row] : merged) rows.push_back(std::move(row));
    EXPECT_EQ(csv_of(rows), reference_csv) << n << " shards";
    EXPECT_EQ(json_of(rows), reference_json) << n << " shards";
  }
}

TEST(PlanShards, NoCostsDegradesToContiguousRanges) {
  const std::map<std::size_t, double> none;
  for (std::size_t total : {0u, 1u, 7u, 12u}) {
    for (std::size_t n : {1u, 2u, 3u, 5u}) {
      const auto plan = plan_shards(total, n, none);
      ASSERT_EQ(plan.size(), n);
      for (std::size_t k = 0; k < n; ++k) {
        const ShardRange r = shard_range(total, k, n);
        ASSERT_EQ(plan[k].size(), r.size());
        for (std::size_t j = 0; j < plan[k].size(); ++j)
          EXPECT_EQ(plan[k][j], r.begin + j);
      }
    }
  }
}

TEST(PlanShards, BalancesByMeasuredCostAndPartitionsExactly) {
  // One pathologically slow scenario: contiguous sharding would pair it
  // with its neighbours; LPT must isolate it and spread the rest.
  std::map<std::size_t, double> costs;
  for (std::size_t i = 0; i < 8; ++i) costs[i] = 1.0;
  costs[3] = 10.0;
  const auto plan = plan_shards(8, 2, costs);
  ASSERT_EQ(plan.size(), 2u);
  // Exact partition of [0, 8).
  std::vector<int> covered(8, 0);
  for (const auto& shard : plan) {
    EXPECT_TRUE(std::is_sorted(shard.begin(), shard.end()));
    for (std::size_t i : shard) ++covered[i];
  }
  for (int c : covered) EXPECT_EQ(c, 1);
  // The slow spec's shard carries it alone-ish: loads are 10 vs 7.
  double load0 = 0.0, load1 = 0.0;
  for (std::size_t i : plan[0]) load0 += costs[i];
  for (std::size_t i : plan[1]) load1 += costs[i];
  EXPECT_EQ(std::max(load0, load1), 10.0);
  EXPECT_EQ(std::min(load0, load1), 7.0);
  // Deterministic: same inputs, same partition.
  EXPECT_EQ(plan_shards(8, 2, costs), plan);
}

TEST(SweepRunnerShards, CostBalancedShardsMergeByteIdentically) {
  // The full cost-balanced workflow: a prior journal provides wall_s,
  // plan_shards carves (non-contiguous) shards, each worker journals its
  // share, and the merged union still reproduces the canonical
  // aggregate byte for byte.
  const auto specs = small_sweep().expand();
  const auto full = uninterrupted_rows(specs);
  const std::string reference_csv = csv_of(full);

  TempFile prior("pns-balance-prior");
  runner_with(2).resume(specs, prior.path(), "small");
  const JournalContents measured = read_journal(prior.path());
  ASSERT_EQ(measured.costs.size(), specs.size());

  const auto plan = plan_shards(specs.size(), 3, measured.costs);
  std::vector<TempFile> files;
  files.reserve(3);
  for (std::size_t k = 0; k < 3; ++k)
    files.emplace_back("pns-balance-" + std::to_string(k));
  for (std::size_t k = 0; k < 3; ++k) {
    const auto report = runner_with(2).run_checkpointed(
        specs, files[k].path(), "small", plan[k]);
    EXPECT_EQ(report.executed, plan[k].size());
    EXPECT_EQ(report.rows.size(), plan[k].size());
  }
  std::map<std::size_t, SummaryRow> merged;
  for (const auto& f : files) {
    JournalContents part =
        read_journal(f.path(), JournalHeader{"small", specs.size()});
    merged.insert(part.rows.begin(), part.rows.end());
  }
  ASSERT_EQ(merged.size(), specs.size());
  std::vector<SummaryRow> rows;
  for (auto& [i, row] : merged) rows.push_back(std::move(row));
  EXPECT_EQ(csv_of(rows), reference_csv);
}

TEST(SweepRunnerShards, Rk23PiShardsMergeByteIdentically) {
  // The rk23pi axis rides through the checkpoint/shard machinery like
  // any other sweep knob: shard-merged output equals the single run.
  auto sw = small_sweep();
  sw.base.integrator = IntegratorSpec::parse("rk23pi");
  const auto specs = sw.expand();
  const auto full = uninterrupted_rows(specs);

  std::vector<TempFile> files;
  files.reserve(2);
  for (std::size_t k = 0; k < 2; ++k)
    files.emplace_back("pns-pi-shard-" + std::to_string(k));
  for (std::size_t k = 0; k < 2; ++k)
    runner_with(2).run_checkpointed(specs, files[k].path(), "small-pi",
                                    shard_range(specs.size(), k, 2));
  std::map<std::size_t, SummaryRow> merged;
  for (const auto& f : files) {
    JournalContents part =
        read_journal(f.path(), JournalHeader{"small-pi", specs.size()});
    merged.insert(part.rows.begin(), part.rows.end());
  }
  ASSERT_EQ(merged.size(), specs.size());
  std::vector<SummaryRow> rows;
  for (auto& [i, row] : merged) rows.push_back(std::move(row));
  EXPECT_EQ(csv_of(rows), csv_of(full));
}

TEST(SweepRunnerShards, InterruptedShardResumes) {
  const auto specs = small_sweep().expand();
  const auto full = uninterrupted_rows(specs);
  const ShardRange range = shard_range(specs.size(), 1, 2);
  TempFile file("pns-shard-resume");
  {
    // Shard worker died after its first scenario.
    JournalWriter writer =
        JournalWriter::create(file.path(), {"small", specs.size()});
    writer.append(range.begin, full[range.begin]);
  }
  const auto report = runner_with(1).run_checkpointed(specs, file.path(),
                                                      "small", range);
  EXPECT_EQ(report.reused, 1u);
  EXPECT_EQ(report.executed, range.size() - 1);
  ASSERT_EQ(report.rows.size(), range.size());
  std::vector<SummaryRow> expected(full.begin() + range.begin,
                                   full.begin() + range.end);
  EXPECT_EQ(csv_of(report.rows), csv_of(expected));
}

}  // namespace
}  // namespace pns::sweep
