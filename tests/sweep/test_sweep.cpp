// Tests for the scenario-sweep subsystem (sweep/).
#include <cstdlib>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "ehsim/sources.hpp"
#include "sweep/aggregate.hpp"
#include "sweep/presets.hpp"
#include "sweep/runner.hpp"
#include "sweep/scenario.hpp"

namespace pns::sweep {
namespace {

// A deliberately short solar window so engine-backed tests stay fast.
ScenarioSpec tiny_solar_spec() {
  ScenarioSpec s;
  s.t_start = 12.0 * 3600.0;
  s.t_end = s.t_start + 30.0;
  s.record_series = false;
  return s;
}

// ------------------------------------------------------------- expansion

TEST(SweepSpec, EmptyAxesExpandToSingleBaseScenario) {
  SweepSpec sw;
  sw.base = tiny_solar_spec();
  EXPECT_EQ(sw.size(), 1u);
  const auto specs = sw.expand();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].seed, sw.base.seed);
  EXPECT_EQ(specs[0].capacitance_f, sw.base.capacitance_f);
}

TEST(SweepSpec, CartesianAxesMultiply) {
  SweepSpec sw;
  sw.base = tiny_solar_spec();
  sw.conditions = {trace::WeatherCondition::kFullSun,
                   trace::WeatherCondition::kCloud};
  sw.controls = {ControlSpec::power_neutral(),
                 ControlSpec::linux_governor("powersave"),
                 ControlSpec::linux_governor("ondemand")};
  sw.capacitances_f = {22e-3, 47e-3};
  sw.seeds = {1, 2, 3, 4, 5};
  EXPECT_EQ(sw.size(), 2u * 3u * 2u * 5u);
  EXPECT_EQ(sw.expand().size(), sw.size());
}

TEST(SweepSpec, ExpansionOrderIsSeedInnermost) {
  SweepSpec sw;
  sw.base = tiny_solar_spec();
  sw.controls = {ControlSpec::power_neutral(),
                 ControlSpec::linux_governor("powersave")};
  sw.seeds = {7, 8};
  const auto specs = sw.expand();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].seed, 7u);
  EXPECT_EQ(specs[1].seed, 8u);
  EXPECT_EQ(specs[0].control.kind, "pns");
  EXPECT_EQ(specs[2].control.kind, "gov:powersave");
}

TEST(SweepSpec, LabelsAreUniqueAcrossTheProduct) {
  SweepSpec sw;
  sw.base = tiny_solar_spec();
  sw.conditions = {trace::WeatherCondition::kFullSun,
                   trace::WeatherCondition::kPartialSun};
  sw.controls = {ControlSpec::power_neutral(),
                 ControlSpec::linux_governor("ondemand")};
  sw.capacitances_f = {22e-3, 47e-3};
  sw.seeds = {1, 2};
  std::unordered_set<std::string> labels;
  for (const auto& s : sw.expand()) labels.insert(s.label);
  EXPECT_EQ(labels.size(), sw.size());
}

TEST(SweepSpec, ShadowDepthAxisAppliesToShadowSpec) {
  SweepSpec sw;
  sw.base.source = SourceKind::kShadowing;
  sw.base.t_start = 0.0;
  sw.base.t_end = 10.0;
  sw.shadow_depths = {0.2, 0.5};
  const auto specs = sw.expand();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_DOUBLE_EQ(specs[0].shadow.depth, 0.2);
  EXPECT_DOUBLE_EQ(specs[1].shadow.depth, 0.5);
}

TEST(SweepSpec, DuplicateControlLabelsAreDisambiguated) {
  // Two controller tunings share the "pns" label; expansion must keep
  // their scenario labels distinct (e.g. a grid search over alpha/beta).
  SweepSpec sw;
  sw.base = tiny_solar_spec();
  ctl::ControllerConfig a, b;
  a.alpha = 0.1;
  b.alpha = 0.2;
  sw.controls = {ControlSpec::power_neutral(a), ControlSpec::power_neutral(b),
                 ControlSpec::linux_governor("ondemand")};
  std::unordered_set<std::string> labels;
  for (const auto& s : sw.expand()) labels.insert(s.label);
  EXPECT_EQ(labels.size(), 3u);
}

TEST(RunScenario, ShadowTimesAreRelativeToWindowStart) {
  // Shifting the window must shift the event with it instead of tripping
  // shadowing_event's t_event >= t0 precondition.
  ScenarioSpec spec = fig6_shadowing_base();
  spec.t_start = 100.0;
  spec.t_end = 110.0;
  spec.control = ControlSpec::static_opp_point(*spec.initial_opp);
  const auto r = run_scenario(spec);
  EXPECT_DOUBLE_EQ(r.metrics.duration(), 10.0);
  EXPECT_GT(r.metrics.energy_harvested_j, 0.0);
}

TEST(SweepSpec, ShadowDepthAxisIgnoredForSolarSweeps) {
  // A depth axis on a solar sweep would multiply out identical runs with
  // colliding labels; it must be inert for non-shadowing sources.
  SweepSpec sw;
  sw.base = tiny_solar_spec();
  sw.shadow_depths = {0.2, 0.5};
  EXPECT_EQ(sw.size(), 1u);
  EXPECT_EQ(sw.expand().size(), 1u);
}

// ----------------------------------------------------- spec -> engine

TEST(RunScenario, PowerNeutralWiring) {
  auto spec = tiny_solar_spec();
  spec.control = ControlSpec::power_neutral();
  const auto r = run_scenario(spec);
  EXPECT_TRUE(r.used_controller);
  EXPECT_DOUBLE_EQ(r.metrics.duration(), spec.duration());
  EXPECT_GT(r.metrics.energy_harvested_j, 0.0);
}

TEST(RunScenario, GovernorWiring) {
  auto spec = tiny_solar_spec();
  spec.control = ControlSpec::linux_governor("powersave");
  const auto r = run_scenario(spec);
  EXPECT_FALSE(r.used_controller);
  EXPECT_EQ(r.control_name, "powersave");
  EXPECT_GT(r.metrics.instructions, 0.0);
}

TEST(RunScenario, StaticWiring) {
  auto spec = tiny_solar_spec();
  spec.control =
      ControlSpec::static_opp_point(spec.platform.lowest_opp());
  const auto r = run_scenario(spec);
  EXPECT_FALSE(r.used_controller);
  EXPECT_GT(r.metrics.instructions, 0.0);
}

TEST(RunScenario, ShadowingControlBeatsStatic) {
  // The Fig. 6 story: under a sudden shadow the controlled system keeps
  // VC higher than the uncontrolled one pinned at a hot OPP.
  ScenarioSpec base = fig6_shadowing_base();
  ScenarioSpec uncontrolled = base;
  uncontrolled.control = ControlSpec::static_opp_point(*base.initial_opp);
  ScenarioSpec controlled = base;
  controlled.control = ControlSpec::power_neutral(fig6_controller_config());
  const auto off = run_scenario(uncontrolled);
  const auto on = run_scenario(controlled);
  EXPECT_GT(on.metrics.vc_stats.min(), off.metrics.vc_stats.min());
  EXPECT_LE(on.metrics.brownouts, off.metrics.brownouts);
}

TEST(RunScenario, MakeSimConfigAppliesOverrides) {
  auto spec = tiny_solar_spec();
  spec.capacitance_f = 100e-3;
  spec.band_fraction = 0.1;
  spec.enable_reboot = false;
  spec.record_series = true;
  spec.record_interval_s = 0.5;
  const auto cfg = make_sim_config(spec);
  EXPECT_DOUBLE_EQ(cfg.capacitance_f, 100e-3);
  EXPECT_DOUBLE_EQ(cfg.band_fraction, 0.1);
  EXPECT_DOUBLE_EQ(cfg.v_target, 5.3);  // solar default
  EXPECT_FALSE(cfg.enable_reboot);
  EXPECT_TRUE(cfg.record_series);
  EXPECT_DOUBLE_EQ(cfg.record_interval_s, 0.5);

  spec.source = SourceKind::kShadowing;
  EXPECT_DOUBLE_EQ(make_sim_config(spec).v_target, 0.0);  // band disabled
  spec.v_target = 4.9;
  EXPECT_DOUBLE_EQ(make_sim_config(spec).v_target, 4.9);
}

// ------------------------------------------------------------ runner

SweepSpec determinism_sweep() {
  SweepSpec sw;
  sw.base = tiny_solar_spec();
  sw.controls = {ControlSpec::power_neutral(),
                 ControlSpec::linux_governor("powersave"),
                 ControlSpec::linux_governor("ondemand")};
  sw.seeds = {11, 12};
  return sw;
}

SweepRunner runner_with(unsigned threads) {
  SweepRunnerOptions opt;
  opt.threads = threads;
  return SweepRunner(opt);
}

std::string csv_of(const std::vector<SweepOutcome>& outcomes) {
  std::ostringstream os;
  Aggregator(outcomes).write_csv(os);
  return os.str();
}

TEST(SweepRunner, ResultsArriveInSpecOrder) {
  const auto specs = determinism_sweep().expand();
  const auto outcomes = runner_with(3).run(specs);
  ASSERT_EQ(outcomes.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(outcomes[i].spec.label, specs[i].label);
    EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
  }
}

TEST(SweepRunner, MultiThreadAggregateBitIdenticalToSingleThread) {
  const auto sw = determinism_sweep();
  const auto serial = runner_with(1).run(sw);
  const auto parallel = runner_with(4).run(sw);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok);
    ASSERT_TRUE(parallel[i].ok);
    // Bitwise equality of raw metrics, not just approximate agreement.
    EXPECT_EQ(serial[i].result.metrics.instructions,
              parallel[i].result.metrics.instructions);
    EXPECT_EQ(serial[i].result.metrics.energy_harvested_j,
              parallel[i].result.metrics.energy_harvested_j);
    EXPECT_EQ(serial[i].result.metrics.vc_stats.mean(),
              parallel[i].result.metrics.vc_stats.mean());
  }
  // And the serialised aggregate (what a sweep actually publishes) is
  // byte-identical.
  EXPECT_EQ(csv_of(serial), csv_of(parallel));
}

TEST(SweepRunner, TabulatedPvModeBitIdenticalAcrossThreadCounts) {
  // The tabulated PV mode trades exactness against the Newton solve for
  // speed, but it must stay *deterministic*: all workers read the same
  // immutable process-wide table (sim::paper_pv_table()), so the
  // aggregate CSV may not depend on the thread count in this mode either.
  auto sw = determinism_sweep();
  sw.base.pv_mode = ehsim::PvSource::Mode::kTabulated;
  const auto serial = runner_with(1).run(sw);
  const auto parallel = runner_with(4).run(sw);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok) << serial[i].error;
    ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
    EXPECT_EQ(serial[i].result.metrics.instructions,
              parallel[i].result.metrics.instructions);
  }
  EXPECT_EQ(csv_of(serial), csv_of(parallel));
}

TEST(SweepRunner, Rk23PiAggregateBitIdenticalAcrossThreadCounts) {
  // The rk23pi integrator changes the numerics, not the determinism
  // story: its aggregate CSV may not depend on thread count either.
  auto sw = determinism_sweep();
  sw.base.integrator = IntegratorSpec::parse("rk23pi");
  const auto serial = runner_with(1).run(sw);
  const auto parallel = runner_with(4).run(sw);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok) << serial[i].error;
    ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
    EXPECT_EQ(serial[i].result.metrics.instructions,
              parallel[i].result.metrics.instructions);
  }
  EXPECT_EQ(csv_of(serial), csv_of(parallel));
}

TEST(SweepRunner, AssetReuseBitIdenticalToRebuilding) {
  // Cached weather traces are pure functions of their keys: disabling
  // the per-worker asset cache must not move a single output bit.
  const auto sw = determinism_sweep();
  SweepRunnerOptions no_reuse_opt;
  no_reuse_opt.threads = 2;
  no_reuse_opt.reuse_assets = false;
  const auto reused = runner_with(2).run(sw);
  const auto rebuilt = SweepRunner(no_reuse_opt).run(sw);
  EXPECT_EQ(csv_of(reused), csv_of(rebuilt));
}

TEST(SweepRunner, Rk23BatchBitIdenticalToRk23PiAcrossWidthsAndThreads) {
  // rk23batch is an execution strategy over the rk23pi numerics, not a
  // numeric variant: every batch width, at every thread count, must
  // publish an aggregate byte-identical to scalar rk23pi. The sweep's
  // seed-innermost expansion puts compatible rows adjacent, so widths
  // >= 2 really do share lockstep batches here.
  auto ref_sw = determinism_sweep();
  ref_sw.base.integrator = IntegratorSpec::parse("rk23pi");
  const auto ref = runner_with(1).run(ref_sw);
  const std::string ref_csv = csv_of(ref);
  for (const unsigned width : {1u, 4u, 8u}) {
    auto sw = determinism_sweep();
    sw.base.integrator =
        IntegratorSpec::parse("rk23batch:width=" + std::to_string(width));
    for (const unsigned threads : {1u, 2u, 8u}) {
      const auto got = runner_with(threads).run(sw);
      EXPECT_EQ(csv_of(got), ref_csv)
          << "width=" << width << " threads=" << threads;
    }
  }
}

TEST(RunScenario, Rk23PiStaysCloseToDefaultIntegrator) {
  // Bounded divergence: the looser rk23pi numerics shift trajectories,
  // but paper-level metrics agree to a fraction of a percent.
  auto spec = tiny_solar_spec();
  spec.control = ControlSpec::power_neutral();
  const auto exact = run_scenario(spec);
  spec.integrator = IntegratorSpec::parse("rk23pi");
  const auto pi = run_scenario(spec);
  EXPECT_NEAR(pi.metrics.energy_harvested_j,
              exact.metrics.energy_harvested_j,
              0.005 * exact.metrics.energy_harvested_j);
  EXPECT_NEAR(pi.metrics.energy_consumed_j,
              exact.metrics.energy_consumed_j,
              0.005 * exact.metrics.energy_consumed_j);
  EXPECT_NEAR(pi.metrics.vc_stats.mean(), exact.metrics.vc_stats.mean(),
              0.01);
  EXPECT_EQ(pi.metrics.brownouts, exact.metrics.brownouts);
}

TEST(RunScenario, UnknownIntegratorKindFailsWithDiagnostics) {
  auto spec = tiny_solar_spec();
  spec.integrator.kind = "rk99";
  const auto outcomes =
      runner_with(1).run(std::vector<ScenarioSpec>{spec});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_NE(outcomes[0].error.find("rk99"), std::string::npos);
  EXPECT_NE(outcomes[0].error.find("rk23pi"), std::string::npos);
}

TEST(RunScenario, PvModeReachesTheSolarSource) {
  // Exact and tabulated runs of the same scenario agree closely (the
  // table's current error is ~mA) but are distinct trajectories.
  auto spec = tiny_solar_spec();
  spec.control = ControlSpec::linux_governor("powersave");
  const auto exact = run_scenario(spec);
  spec.pv_mode = ehsim::PvSource::Mode::kTabulated;
  const auto tab = run_scenario(spec);
  EXPECT_NEAR(tab.metrics.energy_harvested_j,
              exact.metrics.energy_harvested_j,
              0.01 * exact.metrics.energy_harvested_j + 1e-9);
}

TEST(SweepRunner, FailuresAreIsolatedPerScenario) {
  auto good = tiny_solar_spec();
  good.control = ControlSpec::linux_governor("powersave");
  auto bad = tiny_solar_spec();
  bad.control = ControlSpec::linux_governor("no-such-governor");
  const auto outcomes = runner_with(2).run(std::vector<ScenarioSpec>{good, bad, good});
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_NE(outcomes[1].error.find("no-such-governor"), std::string::npos);
  EXPECT_TRUE(outcomes[2].ok);
}

TEST(SweepRunner, EffectiveThreadsNeverExceedsScenarioCount) {
  SweepRunner runner = runner_with(8);
  EXPECT_EQ(runner.effective_threads(3), 3u);
  EXPECT_EQ(runner.effective_threads(100), 8u);
  EXPECT_EQ(runner.effective_threads(0), 1u);
}

// --------------------------------------------------------- aggregation

TEST(Aggregator, CsvRoundTripsNumericFields) {
  const auto outcomes = runner_with(2).run(determinism_sweep());
  const Aggregator agg(outcomes);
  std::ostringstream os;
  agg.write_csv(os);

  std::istringstream in(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));  // header
  // Count header columns.
  std::size_t n_cols = 1;
  for (char c : line) n_cols += c == ',';
  EXPECT_EQ(n_cols, Aggregator::columns().size());

  std::size_t row_idx = 0;
  while (std::getline(in, line)) {
    ASSERT_LT(row_idx, agg.rows().size());
    // No cell in this schema needs RFC 4180 quoting for passing runs, so
    // a plain comma split re-tokenises the row.
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream ls(line);
    while (std::getline(ls, cell, ',')) cells.push_back(cell);
    ASSERT_EQ(cells.size(), n_cols);
    const auto& r = agg.rows()[row_idx];
    EXPECT_EQ(cells[0], r.label);
    // %.15g round-trips these doubles exactly.
    EXPECT_EQ(std::strtod(cells[11].c_str(), nullptr), r.instructions);
    EXPECT_EQ(std::strtod(cells[16].c_str(), nullptr), r.vc_mean);
    EXPECT_EQ(std::strtoull(cells[4].c_str(), nullptr, 10), r.seed);
    ++row_idx;
  }
  EXPECT_EQ(row_idx, agg.rows().size());
}

TEST(Aggregator, JsonOutputIsStructurallySound) {
  const auto outcomes = runner_with(2).run(determinism_sweep());
  const Aggregator agg(outcomes);
  std::ostringstream os;
  agg.write_json(os);
  const std::string doc = os.str();

  // Balanced braces/brackets and one "label" entry per row.
  long depth = 0;
  std::size_t labels = 0;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    if (doc[i] == '{' || doc[i] == '[') ++depth;
    if (doc[i] == '}' || doc[i] == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  for (std::size_t pos = doc.find("\"label\""); pos != std::string::npos;
       pos = doc.find("\"label\"", pos + 1))
    ++labels;
  EXPECT_EQ(labels, agg.rows().size());
  EXPECT_NE(doc.find("\"total\": " + std::to_string(agg.rows().size())),
            std::string::npos);
  EXPECT_NE(doc.find("\"failed\": 0"), std::string::npos);
}

TEST(Aggregator, NeutralityErrorMatchesMetrics) {
  auto spec = tiny_solar_spec();
  spec.control = ControlSpec::power_neutral();
  const auto outcomes = runner_with(1).run(std::vector<ScenarioSpec>{spec});
  ASSERT_TRUE(outcomes[0].ok);
  const auto row = summarize(outcomes[0]);
  const auto& m = outcomes[0].result.metrics;
  EXPECT_DOUBLE_EQ(
      row.neutrality_error,
      (m.energy_consumed_j - m.energy_harvested_j) / m.energy_harvested_j);
}

TEST(Aggregator, FailedRowsAreMarked) {
  auto bad = tiny_solar_spec();
  bad.control = ControlSpec::linux_governor("bogus");
  const auto outcomes = runner_with(1).run(std::vector<ScenarioSpec>{bad});
  const Aggregator agg(outcomes);
  EXPECT_EQ(agg.failed_count(), 1u);
  ASSERT_EQ(agg.rows().size(), 1u);
  EXPECT_FALSE(agg.rows()[0].ok);
  EXPECT_FALSE(agg.rows()[0].error.empty());
}

}  // namespace
}  // namespace pns::sweep
