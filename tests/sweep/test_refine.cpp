// Tests for adaptive capacitance-axis refinement (sweep/refine.hpp).
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sweep/aggregate.hpp"
#include "sweep/refine.hpp"
#include "sweep/runner.hpp"
#include "sweep/scenario.hpp"

namespace pns::sweep {
namespace {

// Two-point capacitance axis over a 30-second window: cheap enough that a
// few bisection rounds stay fast.
SweepSpec two_cap_sweep() {
  SweepSpec sw;
  sw.base.t_start = 12.0 * 3600.0;
  sw.base.t_end = sw.base.t_start + 30.0;
  sw.base.record_series = false;
  sw.base.control = ControlSpec::linux_governor("powersave");
  sw.capacitances_f = {22e-3, 47e-3};
  return sw;
}

std::vector<SummaryRow> rows_of(const std::vector<ScenarioSpec>& specs) {
  std::vector<SummaryRow> rows;
  for (const auto& o : SweepRunner().run(specs)) rows.push_back(summarize(o));
  return rows;
}

TEST(Refine, MetricAccessorCoversNumericColumns) {
  for (const char* name :
       {"lifetime_s", "brownouts", "renders_per_min", "instructions",
        "energy_harvested_j", "energy_consumed_j", "neutrality_error",
        "fraction_in_band", "vc_mean", "vc_stddev", "vc_min", "vc_max",
        "dwell_mode_v", "interrupts", "cpu_overhead", "capacitance_f",
        "duration_s"}) {
    EXPECT_NE(metric_accessor(name), nullptr) << name;
  }
  EXPECT_EQ(metric_accessor("label"), nullptr);
  EXPECT_EQ(metric_accessor("no-such-column"), nullptr);

  SummaryRow r;
  r.brownouts = 3;
  r.vc_min = 4.25;
  EXPECT_DOUBLE_EQ(metric_accessor("brownouts")(r), 3.0);
  EXPECT_DOUBLE_EQ(metric_accessor("vc_min")(r), 4.25);
}

TEST(Refine, DivergenceCriterion) {
  EXPECT_FALSE(rows_diverge(1.0, 1.0, 0.25));
  EXPECT_FALSE(rows_diverge(100.0, 110.0, 0.25));
  EXPECT_TRUE(rows_diverge(100.0, 10.0, 0.25));
  // Any change away from exactly zero diverges: the brownout boundary.
  EXPECT_TRUE(rows_diverge(0.0, 1.0, 0.25));
  EXPECT_FALSE(rows_diverge(0.0, 0.0, 0.25));
}

TEST(Refine, UnknownMetricThrows) {
  const auto specs = two_cap_sweep().expand();
  const auto rows = rows_of(specs);
  RefineOptions opt;
  opt.metric = "label";
  EXPECT_THROW(
      refine_capacitance_axis(SweepRunner(), specs, rows, opt),
      std::invalid_argument);
}

TEST(Refine, NoDivergenceLeavesPassUntouched) {
  const auto specs = two_cap_sweep().expand();
  const auto rows = rows_of(specs);
  RefineOptions opt;
  opt.metric = "instructions";
  opt.tolerance = 1e9;  // nothing diverges at this tolerance
  const auto result =
      refine_capacitance_axis(SweepRunner(), specs, rows, opt);
  EXPECT_EQ(result.added, 0u);
  EXPECT_EQ(result.rounds, 0);
  ASSERT_EQ(result.rows.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_EQ(result.rows[i].label, rows[i].label);
}

TEST(Refine, BisectsEveryDivergingIntervalUpToDepth) {
  const auto specs = two_cap_sweep().expand();
  ASSERT_EQ(specs.size(), 2u);
  const auto rows = rows_of(specs);
  RefineOptions opt;
  opt.metric = "vc_mean";
  opt.tolerance = 0.0;  // any trajectory difference diverges -> pure bisection
  opt.max_depth = 2;
  const auto result =
      refine_capacitance_axis(SweepRunner(), specs, rows, opt);
  // Round 1 splits [22, 47] -> +1; round 2 splits both halves -> +2.
  EXPECT_EQ(result.added, 3u);
  EXPECT_EQ(result.rounds, 2);
  ASSERT_EQ(result.rows.size(), 5u);

  // Capacitances ascend and labels stay unique.
  std::set<std::string> labels;
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    labels.insert(result.rows[i].label);
    if (i > 0) {
      EXPECT_GT(result.rows[i].capacitance_f,
                result.rows[i - 1].capacitance_f);
    }
  }
  EXPECT_EQ(labels.size(), result.rows.size());
  EXPECT_DOUBLE_EQ(result.rows[1].capacitance_f, 0.5 * (22e-3 + 34.5e-3));
  EXPECT_DOUBLE_EQ(result.rows[2].capacitance_f, 34.5e-3);
}

TEST(Refine, MinGapStopsBisection) {
  const auto specs = two_cap_sweep().expand();
  const auto rows = rows_of(specs);
  RefineOptions opt;
  opt.metric = "vc_mean";
  opt.tolerance = 0.0;  // any trajectory difference diverges -> pure bisection
  opt.max_depth = 8;
  opt.min_gap_f = 20e-3;  // the first split already lands under the floor
  const auto result =
      refine_capacitance_axis(SweepRunner(), specs, rows, opt);
  EXPECT_EQ(result.added, 1u);
  EXPECT_EQ(result.rounds, 1);
}

TEST(Refine, GroupsRefineIndependently) {
  // Two conditions x two capacitances: refinement must bisect within each
  // condition's curve, never across conditions.
  SweepSpec sw = two_cap_sweep();
  sw.conditions = {trace::WeatherCondition::kFullSun,
                   trace::WeatherCondition::kPartialSun};
  const auto specs = sw.expand();
  ASSERT_EQ(specs.size(), 4u);
  const auto rows = rows_of(specs);
  RefineOptions opt;
  opt.metric = "vc_mean";
  opt.tolerance = 0.0;  // any trajectory difference diverges -> pure bisection
  opt.max_depth = 1;
  const auto result =
      refine_capacitance_axis(SweepRunner(), specs, rows, opt);
  EXPECT_EQ(result.added, 2u);  // one midpoint per condition curve
  ASSERT_EQ(result.rows.size(), 6u);
  // Each group of three: same condition, ascending capacitance.
  for (std::size_t g = 0; g < 2; ++g) {
    const auto& a = result.rows[3 * g];
    const auto& b = result.rows[3 * g + 1];
    const auto& c = result.rows[3 * g + 2];
    EXPECT_EQ(a.condition, b.condition);
    EXPECT_EQ(b.condition, c.condition);
    EXPECT_LT(a.capacitance_f, b.capacitance_f);
    EXPECT_LT(b.capacitance_f, c.capacitance_f);
  }
}

}  // namespace
}  // namespace pns::sweep
