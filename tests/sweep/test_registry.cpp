// Tests for the open control/source plugin registries: spec-string round
// trips for every registered kind, diagnostics naming the valid choices,
// lossless equivalence between the programmatic factories and their spec
// strings, and the new trace/flicker sources end-to-end.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <unordered_set>

#include "sweep/registry.hpp"
#include "sweep/presets.hpp"
#include "sweep/runner.hpp"
#include "trace/trace_io.hpp"
#include "util/time_series.hpp"

namespace pns::sweep {
namespace {

ScenarioSpec tiny_solar_spec() {
  ScenarioSpec s;
  s.t_start = 12.0 * 3600.0;
  s.t_end = s.t_start + 30.0;
  s.record_series = false;
  return s;
}

// ------------------------------------------------- spec-string round trips

// Composes "kind:k=default,..." from an entry's declared params (keys
// with no rendered default are skipped).
template <typename Entry>
std::string spec_with_defaults(const Entry& entry) {
  ParamMap params;
  for (const auto& p : entry.params)
    if (!p.default_value.empty()) params.set(p.key, p.default_value);
  return params.empty() ? entry.kind
                        : entry.kind + ":" + params.serialize();
}

TEST(Registry, EveryControlKindRoundTripsItsSpecString) {
  for (const auto& entry : ControlRegistry::instance().entries()) {
    // Bare kind.
    const ControlSpec bare = ControlSpec::parse(entry.kind);
    EXPECT_EQ(bare.spec_string(), entry.kind);
    EXPECT_EQ(ControlSpec::parse(bare.spec_string()), bare);
    // Kind with every advertised parameter at its default.
    const std::string text = spec_with_defaults(entry);
    const ControlSpec full = ControlSpec::parse(text);
    EXPECT_EQ(full.spec_string(), text) << entry.kind;
    EXPECT_EQ(ControlSpec::parse(full.spec_string()), full) << entry.kind;
  }
}

TEST(Registry, EverySourceKindRoundTripsItsSpecString) {
  for (const auto& entry : SourceRegistry::instance().entries()) {
    const SourceSpec bare = SourceSpec::parse(entry.kind);
    EXPECT_EQ(bare.spec_string(), entry.kind);
    EXPECT_EQ(SourceSpec::parse(bare.spec_string()), bare);
    const std::string text = spec_with_defaults(entry);
    const SourceSpec full = SourceSpec::parse(text);
    EXPECT_EQ(full.spec_string(), text) << entry.kind;
    EXPECT_EQ(SourceSpec::parse(full.spec_string()), full) << entry.kind;
  }
}

TEST(Registry, CompatFactoriesRoundTripThroughSpecStrings) {
  // The programmatic factories encode losslessly: parsing their spec
  // string reproduces the identical spec.
  const ControlSpec pns = ControlSpec::power_neutral(fig6_controller_config());
  EXPECT_EQ(ControlSpec::parse(pns.spec_string()), pns);

  const ControlSpec gov = ControlSpec::linux_governor("ondemand");
  EXPECT_EQ(gov.spec_string(), "gov:ondemand");
  EXPECT_EQ(ControlSpec::parse(gov.spec_string()), gov);

  const ControlSpec pin =
      ControlSpec::static_opp_point(soc::OperatingPoint{4, {4, 2}});
  EXPECT_EQ(pin.spec_string(), "static:opp=4,little=4,big=2");
  EXPECT_EQ(ControlSpec::parse(pin.spec_string()), pin);
}

TEST(Registry, EveryIntegratorKindRoundTripsItsSpecString) {
  for (const auto& entry : IntegratorRegistry::instance().entries()) {
    const IntegratorSpec bare = IntegratorSpec::parse(entry.kind);
    EXPECT_EQ(bare.spec_string(), entry.kind);
    EXPECT_EQ(IntegratorSpec::parse(bare.spec_string()), bare);
    const std::string text = spec_with_defaults(entry);
    const IntegratorSpec full = IntegratorSpec::parse(text);
    EXPECT_EQ(full.spec_string(), text) << entry.kind;
    EXPECT_EQ(IntegratorSpec::parse(full.spec_string()), full)
        << entry.kind;
  }
}

TEST(Registry, IntegratorKindsResolveToDistinctNumerics) {
  auto spec = tiny_solar_spec();
  const auto default_cfg = make_sim_config(spec);
  EXPECT_EQ(default_cfg.step_control, ehsim::StepControl::kClamped);
  EXPECT_FALSE(default_cfg.coast);

  spec.integrator = IntegratorSpec::parse("rk23pi");
  const auto pi_cfg = make_sim_config(spec);
  EXPECT_EQ(pi_cfg.step_control, ehsim::StepControl::kPi);
  EXPECT_EQ(pi_cfg.event_localization,
            ehsim::EventLocalization::kDenseRoot);
  EXPECT_TRUE(pi_cfg.coast);
  EXPECT_DOUBLE_EQ(pi_cfg.rel_tol, 1e-4);
  EXPECT_DOUBLE_EQ(pi_cfg.max_segment_s, 0.25);
  EXPECT_DOUBLE_EQ(pi_cfg.max_ode_step_s, 0.25);

  spec.integrator = IntegratorSpec::parse(
      "rk23pi:rtol=1e-05,seg=0.1,coast=false");
  const auto tuned = make_sim_config(spec);
  EXPECT_DOUBLE_EQ(tuned.rel_tol, 1e-5);
  EXPECT_DOUBLE_EQ(tuned.max_segment_s, 0.1);
  EXPECT_DOUBLE_EQ(tuned.max_ode_step_s, 0.1);
  EXPECT_FALSE(tuned.coast);

  // The explicit "rk23" kind with numeric overrides tweaks tolerances
  // without flipping the engine.
  spec.integrator = IntegratorSpec::parse("rk23:rtol=1e-07");
  const auto tightened = make_sim_config(spec);
  EXPECT_EQ(tightened.step_control, ehsim::StepControl::kClamped);
  EXPECT_DOUBLE_EQ(tightened.rel_tol, 1e-7);
}

// ------------------------------------------------------------ diagnostics

TEST(Registry, UnknownKindsNameTheValidChoices) {
  try {
    ControlSpec::parse("warp-speed");
    FAIL() << "expected ParamError";
  } catch (const ParamError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'warp-speed'"), std::string::npos);
    EXPECT_NE(what.find("pns"), std::string::npos);
    EXPECT_NE(what.find("gov:ondemand"), std::string::npos);
    EXPECT_NE(what.find("static"), std::string::npos);
  }
  try {
    SourceSpec::parse("darkness");
    FAIL() << "expected ParamError";
  } catch (const ParamError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("solar"), std::string::npos);
    EXPECT_NE(what.find("shadow"), std::string::npos);
    EXPECT_NE(what.find("trace"), std::string::npos);
    EXPECT_NE(what.find("flicker"), std::string::npos);
  }
}

TEST(Registry, UnknownAndMalformedParamsRejectedAtParseTime) {
  EXPECT_THROW(ControlSpec::parse("pns:warp=1"), ParamError);
  EXPECT_THROW(ControlSpec::parse("gov:ondemand:period=abc"), ParamError);
  EXPECT_THROW(SourceSpec::parse("flicker:cadence=3"), ParamError);
  EXPECT_THROW(IntegratorSpec::parse("rk99"), ParamError);
  EXPECT_THROW(IntegratorSpec::parse("rk23pi:warp=1"), ParamError);
  EXPECT_THROW(IntegratorSpec::parse("rk23pi:rtol=tight"), ParamError);
  // Unsigned tunables reject negatives at parse time, not mid-sweep.
  EXPECT_THROW(ControlSpec::parse("static:opp=-1"), ParamError);
  EXPECT_THROW(ControlSpec::parse("gov:userspace:index=-2"), ParamError);
  try {
    ControlSpec::parse("gov:ondemand:perod=0.05");
    FAIL() << "expected ParamError";
  } catch (const ParamError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'perod'"), std::string::npos);
    EXPECT_NE(what.find("period"), std::string::npos);
    EXPECT_NE(what.find("up_threshold"), std::string::npos);
  }
}

TEST(Registry, BadWeatherParamNamesTheConditions) {
  auto spec = tiny_solar_spec();
  spec.source = SourceSpec::parse("solar:weather=apocalypse");
  try {
    resolve_source(spec);
    FAIL() << "expected ParamError";
  } catch (const ParamError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("apocalypse"), std::string::npos);
    EXPECT_NE(what.find("full-sun"), std::string::npos);
    EXPECT_NE(what.find("hail"), std::string::npos);
  }
}

// -------------------------------------------- factory/spec equivalence

TEST(Registry, PnsSpecStringDrivesBitIdenticalSimulation) {
  auto programmatic = tiny_solar_spec();
  programmatic.control = ControlSpec::power_neutral(fig6_controller_config());
  auto parsed = tiny_solar_spec();
  parsed.control = ControlSpec::parse(programmatic.control.spec_string());
  const auto a = run_scenario(programmatic);
  const auto b = run_scenario(parsed);
  EXPECT_EQ(a.metrics.instructions, b.metrics.instructions);
  EXPECT_EQ(a.metrics.energy_harvested_j, b.metrics.energy_harvested_j);
  EXPECT_EQ(a.metrics.vc_stats.mean(), b.metrics.vc_stats.mean());
}

TEST(Registry, GovernorParamsReachTheGovernor) {
  const auto spec = tiny_solar_spec();
  auto control = ControlSpec::parse("gov:ondemand:period=0.05");
  const auto sel = resolve_control(control, spec);
  ASSERT_EQ(sel.kind, sim::ControlKind::kGovernor);
  ASSERT_NE(sel.governor, nullptr);
  EXPECT_DOUBLE_EQ(sel.governor->sampling_period(), 0.05);
}

TEST(Registry, ControllerParamsReachTheConfig) {
  const auto spec = tiny_solar_spec();
  auto control = ControlSpec::parse("pns:v_q=0.04,ordering=freq-first");
  const auto sel = resolve_control(control, spec);
  ASSERT_EQ(sel.kind, sim::ControlKind::kPowerNeutral);
  EXPECT_DOUBLE_EQ(sel.controller.v_q, 0.04);
  EXPECT_EQ(sel.controller.ordering, soc::OrderingPolicy::kFreqFirst);
  // Untouched keys keep their defaults.
  EXPECT_DOUBLE_EQ(sel.controller.v_width, ctl::ControllerConfig{}.v_width);
}

TEST(Registry, StaticParamsResolveTheOperatingPoint) {
  const auto spec = tiny_solar_spec();
  const auto sel =
      resolve_control(ControlSpec::parse("static:opp=4,little=4,big=2"),
                      spec);
  ASSERT_EQ(sel.kind, sim::ControlKind::kStatic);
  ASSERT_TRUE(sel.static_opp.has_value());
  EXPECT_EQ(sel.static_opp->freq_index, 4u);
  EXPECT_EQ(sel.static_opp->cores, (soc::CoreConfig{4, 2}));
  EXPECT_THROW(
      resolve_control(ControlSpec::parse("static:opp=99"), spec),
      ParamError);
}

TEST(Registry, SolarWeatherParamOverridesTheCondition) {
  auto by_axis = tiny_solar_spec();
  by_axis.condition = trace::WeatherCondition::kCloud;
  auto by_param = tiny_solar_spec();  // condition left at full-sun
  by_param.source = SourceSpec::parse("solar:weather=cloud");
  by_param.control = by_axis.control;
  const auto a = run_scenario(by_axis);
  const auto b = run_scenario(by_param);
  EXPECT_EQ(a.metrics.energy_harvested_j, b.metrics.energy_harvested_j);
  EXPECT_EQ(source_condition_label(by_param), "cloud");
}

TEST(Registry, ShadowParamsOverrideTheShadowSpec) {
  ScenarioSpec by_field = fig6_shadowing_base();
  by_field.shadow.depth = 0.2;
  by_field.control = ControlSpec::static_opp_point(*by_field.initial_opp);
  ScenarioSpec by_param = fig6_shadowing_base();
  by_param.source = SourceSpec::parse("shadow:depth=0.2");
  by_param.control = by_field.control;
  const auto a = run_scenario(by_field);
  const auto b = run_scenario(by_param);
  EXPECT_EQ(a.metrics.energy_harvested_j, b.metrics.energy_harvested_j);
  EXPECT_EQ(a.metrics.vc_stats.min(), b.metrics.vc_stats.min());
}

// ----------------------------------------------------- new source kinds

TEST(Registry, FlickerSourceRunsEndToEnd) {
  auto spec = tiny_solar_spec();
  spec.source = SourceSpec::parse("flicker:period=10,depth=0.5,duty=0.4");
  const auto r = run_scenario(spec);
  EXPECT_TRUE(r.used_controller);  // default control is pns
  EXPECT_GT(r.metrics.energy_harvested_j, 0.0);
  // Deterministic: no seed sensitivity at all.
  auto reseeded = spec;
  reseeded.seed = spec.seed + 17;
  EXPECT_EQ(run_scenario(reseeded).metrics.energy_harvested_j,
            r.metrics.energy_harvested_j);
}

TEST(Registry, TraceSourceRunsFromCsv) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("pns-trace-src-" + std::to_string(::getpid()) + ".csv"))
          .string();
  {
    TimeSeries series;
    series.append(0.0, 0.0);
    series.append(12.0 * 3600.0, 800.0);
    series.append(24.0 * 3600.0, 0.0);
    ASSERT_TRUE(trace::save_trace_csv(path, series));
  }
  auto spec = tiny_solar_spec();
  spec.source = SourceSpec::parse("trace:file=" + path);
  const auto r = run_scenario(spec);
  EXPECT_GT(r.metrics.energy_harvested_j, 0.0);
  // scale= attenuates the harvest.
  spec.source = SourceSpec::parse("trace:file=" + path + ",scale=0.5");
  const auto half = run_scenario(spec);
  EXPECT_LT(half.metrics.energy_harvested_j, r.metrics.energy_harvested_j);
  std::filesystem::remove(path);

  // A missing file is a per-scenario error, not a crash.
  auto bad = tiny_solar_spec();
  bad.source = SourceSpec::parse("trace:file=/no/such/file.csv");
  EXPECT_THROW(run_scenario(bad), std::exception);
}

// -------------------------------------------------- extension mechanics

TEST(Registry, RuntimeRegisteredKindIsReachableFromSpecs) {
  // A user-registered control kind (a trivial "pin the top OPP" policy)
  // becomes addressable by spec string with no other wiring.
  static bool registered = false;
  if (!registered) {
    ControlRegistry::instance().add(ControlEntry{
        "test-top",
        "test-only: pin the highest frequency",
        {},
        [](const ScenarioSpec& spec, const ParamMap&) {
          return sim::ControlSelection::pinned(soc::OperatingPoint{
              spec.platform.opps.max_index(), spec.platform.max_cores});
        },
    });
    registered = true;
  }
  auto spec = tiny_solar_spec();
  spec.control = ControlSpec::parse("test-top");
  const auto r = run_scenario(spec);
  EXPECT_FALSE(r.used_controller);
  EXPECT_GT(r.metrics.instructions, 0.0);
  EXPECT_THROW(
      ControlRegistry::instance().add(ControlEntry{"test-top", "", {}, {}}),
      std::invalid_argument);
}

TEST(Registry, DepthAxisGatesPerSourceNotPerBase) {
  // A shadowing base overridden by a non-shadow sources axis must not
  // clone identical scenarios over the now-meaningless depth axis...
  SweepSpec sw;
  sw.base = fig6_shadowing_base();
  sw.shadow_depths = {0.2, 0.3, 0.4, 0.5};
  sw.sources = {SourceSpec::parse("flicker:period=10")};
  EXPECT_EQ(sw.size(), 1u);
  EXPECT_EQ(sw.expand().size(), 1u);

  // ...while a mixed axis keeps the depth sweep for its shadow member
  // only, with unique labels throughout.
  sw.sources = {SourceSpec::parse("flicker:period=10"),
                SourceSpec::parse("shadow")};
  EXPECT_EQ(sw.size(), 1u + 4u);
  const auto specs = sw.expand();
  ASSERT_EQ(specs.size(), 5u);
  std::unordered_set<std::string> labels;
  for (const auto& s : specs) labels.insert(s.label);
  EXPECT_EQ(labels.size(), specs.size());
}

TEST(Registry, ConditionAxisGatesPerSource) {
  // Sources that ignore ScenarioSpec::condition must not multiply over
  // the weather axis (`pns_sweep weather --source shadow:...` used to
  // clone 4 identical scenarios per control).
  SweepSpec sw = weather_sweep(2.0);
  const std::size_t n_controls = sw.controls.size();
  ASSERT_EQ(sw.size(), 4u * n_controls);
  sw.sources = {SourceSpec::parse("shadow:depth=0.5")};
  EXPECT_EQ(sw.size(), n_controls);
  const auto specs = sw.expand();
  ASSERT_EQ(specs.size(), n_controls);
  std::unordered_set<std::string> labels;
  for (const auto& s : specs) labels.insert(s.label);
  EXPECT_EQ(labels.size(), specs.size());
  // A mixed axis keeps the weather multiplication for solar only.
  sw.sources = {SourceSpec::parse("solar"),
                SourceSpec::parse("flicker:period=10")};
  EXPECT_EQ(sw.size(), 4u * n_controls + n_controls);
  EXPECT_EQ(sw.expand().size(), sw.size());
}

TEST(Registry, SourceAxisExpandsAndLabels) {
  SweepSpec sw;
  sw.base = tiny_solar_spec();
  sw.sources = {SourceSpec::parse("solar"),
                SourceSpec::parse("flicker:period=10")};
  sw.seeds = {1, 2};
  EXPECT_EQ(sw.size(), 4u);
  const auto specs = sw.expand();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].label, "full-sun/pns/seed=1");
  EXPECT_EQ(specs[2].label, "flicker/pns/seed=1");
}

}  // namespace
}  // namespace pns::sweep
