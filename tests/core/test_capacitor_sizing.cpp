// Tests for the Table I worst-case capacitance analysis
// (core/capacitor_sizing).
#include "core/capacitor_sizing.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace pns::ctl {
namespace {

const soc::Platform& xu4() {
  static soc::Platform p = soc::Platform::odroid_xu4();
  return p;
}

TEST(CapacitorSizing, PlanSpansHighestToLowest) {
  const auto r = analyze_worst_case_transition(
      xu4(), soc::OrderingPolicy::kCoreFirst, 4.1, 1.6);
  ASSERT_FALSE(r.steps.empty());
  EXPECT_EQ(r.steps.front().from, xu4().highest_opp());
  EXPECT_EQ(r.steps.back().to, xu4().lowest_opp());
}

TEST(CapacitorSizing, CoreFirstBeatsFreqFirst) {
  const auto results = compare_orderings(xu4());
  ASSERT_EQ(results.size(), 2u);
  const auto& freq_first = results[0];
  const auto& core_first = results[1];
  ASSERT_EQ(freq_first.policy, soc::OrderingPolicy::kFreqFirst);
  ASSERT_EQ(core_first.policy, soc::OrderingPolicy::kCoreFirst);
  // Table I: scenario (b) [core-first] is several-fold cheaper in time,
  // charge and therefore required capacitance.
  EXPECT_GT(freq_first.transition_time_s / core_first.transition_time_s,
            2.5);
  EXPECT_GT(freq_first.charge_c / core_first.charge_c, 2.5);
  EXPECT_GT(freq_first.required_capacitance_f /
                core_first.required_capacitance_f,
            2.5);
}

TEST(CapacitorSizing, TimesInTableOneBallpark) {
  const auto results = compare_orderings(xu4());
  // (a) freq-first: hundreds of ms (paper: 345 ms).
  EXPECT_GT(results[0].transition_time_s, 0.15);
  EXPECT_LT(results[0].transition_time_s, 0.7);
  // (b) core-first: tens of ms (paper: 63 ms).
  EXPECT_GT(results[1].transition_time_s, 0.02);
  EXPECT_LT(results[1].transition_time_s, 0.15);
}

TEST(CapacitorSizing, ChargeInTableOneBallpark) {
  const auto results = compare_orderings(xu4());
  // (a): paper measures ~130 mC; (b): ~46 mC. Allow generous model slack.
  EXPECT_GT(results[0].charge_c, 0.05);
  EXPECT_LT(results[0].charge_c, 0.6);
  EXPECT_GT(results[1].charge_c, 0.01);
  EXPECT_LT(results[1].charge_c, 0.2);
}

TEST(CapacitorSizing, PaperBufferCoversCoreFirstScenario) {
  // The paper uses 47 mF. Our core-first requirement must fit within it.
  const auto results = compare_orderings(xu4());
  EXPECT_LT(results[1].required_capacitance_f, 47e-3);
}

TEST(CapacitorSizing, CapacitanceIsChargeOverDroop) {
  const auto r = analyze_worst_case_transition(
      xu4(), soc::OrderingPolicy::kCoreFirst, 4.1, 2.0);
  EXPECT_NEAR(r.required_capacitance_f, r.charge_c / 2.0, 1e-12);
}

TEST(CapacitorSizing, LowerNodeVoltageNeedsMoreCharge) {
  const auto at_min = analyze_worst_case_transition(
      xu4(), soc::OrderingPolicy::kCoreFirst, 4.1, 1.6);
  const auto at_max = analyze_worst_case_transition(
      xu4(), soc::OrderingPolicy::kCoreFirst, 5.7, 1.6);
  EXPECT_GT(at_min.charge_c, at_max.charge_c);
}

TEST(CapacitorSizing, ContractChecks) {
  EXPECT_THROW(analyze_worst_case_transition(
                   xu4(), soc::OrderingPolicy::kCoreFirst, 0.0, 1.0),
               pns::ContractViolation);
  EXPECT_THROW(analyze_worst_case_transition(
                   xu4(), soc::OrderingPolicy::kCoreFirst, 4.1, 0.0),
               pns::ContractViolation);
}

}  // namespace
}  // namespace pns::ctl
