// Tests for the control policies (core/dvfs_policy, core/hotplug_policy):
// eq. 2 factors, Fig. 5 exclusive decision, and bounded application.
#include <gtest/gtest.h>

#include "core/dvfs_policy.hpp"
#include "core/hotplug_policy.hpp"
#include "soc/platform.hpp"
#include "util/contracts.hpp"

namespace pns::ctl {
namespace {

const soc::Platform& xu4() {
  static soc::Platform p = soc::Platform::odroid_xu4();
  return p;
}

DerivativeHotplugPolicy policy() {
  // The paper's simulation-derived optimum: alpha 0.120, beta 0.479 V/s.
  return DerivativeHotplugPolicy({0.120, 0.479});
}

TEST(LinearDvfsPolicy, OneStepEachWay) {
  LinearDvfsPolicy p;
  EXPECT_EQ(p.next_index(xu4().opps, 4, ScaleDirection::kDown), 3u);
  EXPECT_EQ(p.next_index(xu4().opps, 4, ScaleDirection::kUp), 5u);
}

TEST(LinearDvfsPolicy, SaturatesAtLadderEnds) {
  LinearDvfsPolicy p;
  EXPECT_EQ(p.next_index(xu4().opps, 0, ScaleDirection::kDown), 0u);
  EXPECT_EQ(p.next_index(xu4().opps, 7, ScaleDirection::kUp), 7u);
}

TEST(LinearDvfsPolicy, MultiStepVariant) {
  LinearDvfsPolicy p(2);
  EXPECT_EQ(p.next_index(xu4().opps, 4, ScaleDirection::kDown), 2u);
  EXPECT_EQ(p.next_index(xu4().opps, 1, ScaleDirection::kDown), 0u);
  EXPECT_THROW(LinearDvfsPolicy(0), pns::ContractViolation);
}

TEST(HotplugPolicy, Eq2FactorsBothSet) {
  // |slope| > beta implies both factors fire in the raw eq. 2 form.
  auto s = policy().factors(0.6);
  EXPECT_EQ(s.s_big, 1);
  EXPECT_EQ(s.s_little, 1);
  s = policy().factors(-0.6);
  EXPECT_EQ(s.s_big, -1);
  EXPECT_EQ(s.s_little, -1);
}

TEST(HotplugPolicy, Eq2FactorsLittleOnly) {
  auto s = policy().factors(0.2);
  EXPECT_EQ(s.s_big, 0);
  EXPECT_EQ(s.s_little, 1);
}

TEST(HotplugPolicy, Eq2FactorsNone) {
  auto s = policy().factors(0.05);
  EXPECT_EQ(s.s_big, 0);
  EXPECT_EQ(s.s_little, 0);
}

TEST(HotplugPolicy, DecideBigOnFastCrossing) {
  // tau < Vq/beta -> big. Vq = 47.9 mV, beta = 0.479 -> Vq/beta = 0.1 s.
  auto s = policy().decide(0.05, 0.0479, ScaleDirection::kDown);
  EXPECT_EQ(s.s_big, -1);
  EXPECT_EQ(s.s_little, 0);  // exclusive per the Fig. 5 flowchart
}

TEST(HotplugPolicy, DecideLittleOnModerateCrossing) {
  // Vq/beta = 0.1 s < tau < Vq/alpha = 0.399 s -> LITTLE.
  auto s = policy().decide(0.2, 0.0479, ScaleDirection::kDown);
  EXPECT_EQ(s.s_big, 0);
  EXPECT_EQ(s.s_little, -1);
}

TEST(HotplugPolicy, DecideNoneOnSlowCrossing) {
  auto s = policy().decide(1.0, 0.0479, ScaleDirection::kDown);
  EXPECT_EQ(s.s_big, 0);
  EXPECT_EQ(s.s_little, 0);
}

TEST(HotplugPolicy, DecideDirectionSign) {
  auto s = policy().decide(0.05, 0.0479, ScaleDirection::kUp);
  EXPECT_EQ(s.s_big, 1);
}

TEST(HotplugPolicy, DecideDegenerateTauActsAsBig) {
  auto s = policy().decide(0.0, 0.0479, ScaleDirection::kDown);
  EXPECT_EQ(s.s_big, -1);
}

TEST(HotplugPolicy, DecideBoundaryExactlyAtThreshold) {
  // slope == beta is NOT strictly greater: falls through to LITTLE.
  const double vq = 0.0479;
  const double tau = vq / 0.479;
  auto s = policy().decide(tau, vq, ScaleDirection::kDown);
  EXPECT_EQ(s.s_big, 0);
  EXPECT_EQ(s.s_little, -1);
}

TEST(HotplugPolicy, ApplyAddsAndRemoves) {
  auto next = policy().apply(xu4(), {4, 2}, {.s_big = -1, .s_little = 0});
  EXPECT_EQ(next, (soc::CoreConfig{4, 1}));
  next = policy().apply(xu4(), {3, 0}, {.s_big = 0, .s_little = 1});
  EXPECT_EQ(next, (soc::CoreConfig{4, 0}));
}

TEST(HotplugPolicy, ApplyEscalatesBigToLittle) {
  // Remove-big with no big cores online falls back to a LITTLE removal.
  auto next = policy().apply(xu4(), {3, 0}, {.s_big = -1, .s_little = 0});
  EXPECT_EQ(next, (soc::CoreConfig{2, 0}));
}

TEST(HotplugPolicy, ApplyEscalatesLittleToBig) {
  // Add-LITTLE with the LITTLE cluster full escalates to a big core.
  auto next = policy().apply(xu4(), {4, 1}, {.s_big = 0, .s_little = 1});
  EXPECT_EQ(next, (soc::CoreConfig{4, 2}));
}

TEST(HotplugPolicy, ApplyRespectsHardFloor) {
  // Cannot go below 1 LITTLE / 0 big no matter what.
  auto next = policy().apply(xu4(), {1, 0}, {.s_big = -1, .s_little = -1});
  EXPECT_EQ(next, (soc::CoreConfig{1, 0}));
}

TEST(HotplugPolicy, ApplyRespectsHardCeiling) {
  auto next = policy().apply(xu4(), {4, 4}, {.s_big = 1, .s_little = 1});
  EXPECT_EQ(next, (soc::CoreConfig{4, 4}));
}

TEST(HotplugPolicy, ParamContracts) {
  EXPECT_THROW(DerivativeHotplugPolicy({0.0, 1.0}), pns::ContractViolation);
  EXPECT_THROW(DerivativeHotplugPolicy({0.5, 0.5}), pns::ContractViolation);
  EXPECT_THROW(DerivativeHotplugPolicy({0.5, 0.2}), pns::ContractViolation);
  EXPECT_THROW(policy().decide(1.0, 0.0, ScaleDirection::kUp),
               pns::ContractViolation);
}

TEST(ScaleDirectionNames, ToString) {
  EXPECT_STREQ(to_string(ScaleDirection::kDown), "down");
  EXPECT_STREQ(to_string(ScaleDirection::kUp), "up");
}

// Property: apply() always yields a valid platform configuration.
class ApplySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ApplySweep, AlwaysValid) {
  const auto [nl, nb, sb, sl] = GetParam();
  const auto next =
      policy().apply(xu4(), {nl, nb}, {.s_big = sb, .s_little = sl});
  EXPECT_TRUE(xu4().valid_cores(next))
      << "from " << soc::CoreConfig{nl, nb}.to_string() << " -> "
      << next.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    AllMoves, ApplySweep,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(0, 1, 4),
                       ::testing::Values(-1, 0, 1),
                       ::testing::Values(-1, 0, 1)));

}  // namespace
}  // namespace pns::ctl
