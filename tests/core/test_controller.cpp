// Tests for the power-neutral controller ISR (core/controller): the Fig. 5
// flowchart end to end against a real monitor model.
#include "core/controller.hpp"

#include <gtest/gtest.h>

#include "soc/platform.hpp"

namespace pns::ctl {
namespace {

const soc::Platform& xu4() {
  static soc::Platform p = soc::Platform::odroid_xu4();
  return p;
}

struct Rig {
  hw::VoltageMonitor monitor;
  PowerNeutralController controller;

  explicit Rig(ControllerConfig cfg = {})
      : controller(xu4(), monitor, cfg) {}
};

TEST(Controller, CalibrateProgramsMonitorPerEq1) {
  Rig rig;
  rig.controller.calibrate(5.0, 0.0);
  EXPECT_NEAR(rig.controller.thresholds().v_low(), 5.0 - 0.072, 1e-9);
  EXPECT_NEAR(rig.controller.thresholds().v_high(), 5.0 + 0.072, 1e-9);
  // The monitor was programmed to the (quantised) tracker values.
  EXPECT_NEAR(rig.monitor.low_threshold(),
              rig.controller.thresholds().v_low(), 0.02);
  EXPECT_NEAR(rig.monitor.high_threshold(),
              rig.controller.thresholds().v_high(), 0.02);
}

TEST(Controller, LowCrossingStepsFrequencyDown) {
  Rig rig;
  rig.controller.calibrate(5.0, 0.0);
  const soc::OperatingPoint cur{4, {4, 0}};
  // Slow crossing (tau = 1 s >> Vq/alpha): DVFS only.
  const auto plan =
      rig.controller.on_interrupt(hw::MonitorEdge::kLowFalling, 1.0, cur);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].kind, soc::TransitionKind::kDvfs);
  EXPECT_EQ(plan[0].to.freq_index, 3u);
  EXPECT_EQ(plan[0].to.cores, cur.cores);
}

TEST(Controller, FirstCrossingAfterCalibrateNeverHotplugs) {
  // One isolated crossing carries no trend information: the derivative
  // response needs two same-direction crossings.
  Rig rig;
  rig.controller.calibrate(5.0, 0.0);
  const auto plan = rig.controller.on_interrupt(
      hw::MonitorEdge::kLowFalling, 0.01, {4, {4, 2}});
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].kind, soc::TransitionKind::kDvfs);
}

TEST(Controller, AlternatingCrossingsUseDvfsOnly) {
  // A stationary limit cycle (low, high, low, high...) must not churn
  // cores no matter how fast it runs -- the paper observes core scaling
  // far rarer than frequency scaling (Fig. 11).
  Rig rig;
  rig.controller.calibrate(5.0, 0.0);
  soc::OperatingPoint cur{4, {4, 2}};
  double t = 0.0;
  for (int i = 0; i < 10; ++i) {
    t += 0.03;  // fast enough that tau < Vq/beta every time
    const auto edge = i % 2 ? hw::MonitorEdge::kHighRising
                            : hw::MonitorEdge::kLowFalling;
    const auto plan = rig.controller.on_interrupt(edge, t, cur);
    for (const auto& step : plan)
      EXPECT_EQ(step.kind, soc::TransitionKind::kDvfs) << "iteration " << i;
    if (!plan.empty()) cur = plan.back().to;
  }
  EXPECT_EQ(rig.controller.stats().hotplug_steps, 0u);
}

TEST(Controller, HighCrossingStepsFrequencyUp) {
  Rig rig;
  rig.controller.calibrate(5.0, 0.0);
  const soc::OperatingPoint cur{4, {4, 0}};
  const auto plan =
      rig.controller.on_interrupt(hw::MonitorEdge::kHighRising, 1.0, cur);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].to.freq_index, 5u);
}

TEST(Controller, FastLowCrossingsRemoveBigCore) {
  Rig rig;
  rig.controller.calibrate(5.0, 0.0);
  // Two consecutive LOW crossings tau = 0.05 s apart (< Vq/beta = 0.1 s):
  // the second fires the big-core response.
  (void)rig.controller.on_interrupt(hw::MonitorEdge::kLowFalling, 1.0,
                                    {5, {4, 2}});
  const auto plan = rig.controller.on_interrupt(
      hw::MonitorEdge::kLowFalling, 1.05, {4, {4, 2}});
  ASSERT_EQ(plan.size(), 2u);
  // Core-first ordering: hot-plug before DVFS.
  EXPECT_EQ(plan[0].kind, soc::TransitionKind::kHotplug);
  EXPECT_EQ(plan[0].to.cores, (soc::CoreConfig{4, 1}));
  EXPECT_EQ(plan[1].kind, soc::TransitionKind::kDvfs);
  EXPECT_EQ(plan[1].to.freq_index, 3u);
}

TEST(Controller, ModerateLowCrossingsRemoveLittleCore) {
  Rig rig;
  rig.controller.calibrate(5.0, 0.0);
  // Consecutive LOW crossings with Vq/beta = 0.1 < tau = 0.2 < Vq/alpha:
  // LITTLE response on the second.
  (void)rig.controller.on_interrupt(hw::MonitorEdge::kLowFalling, 1.0,
                                    {5, {4, 0}});
  const auto plan = rig.controller.on_interrupt(
      hw::MonitorEdge::kLowFalling, 1.2, {4, {4, 0}});
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].to.cores, (soc::CoreConfig{3, 0}));
}

TEST(Controller, TauMeasuredBetweenConsecutiveCrossings) {
  Rig rig;
  rig.controller.calibrate(5.0, 0.0);
  // Three LOW crossings: slow gap (1.0 s, no cores), then fast gap
  // (0.05 s, big-core response) -- tau resets at every crossing.
  (void)rig.controller.on_interrupt(hw::MonitorEdge::kLowFalling, 1.0,
                                    {5, {4, 2}});
  const auto slow = rig.controller.on_interrupt(
      hw::MonitorEdge::kLowFalling, 2.0, {4, {4, 2}});
  ASSERT_EQ(slow.size(), 1u);  // DVFS only
  const auto fast = rig.controller.on_interrupt(
      hw::MonitorEdge::kLowFalling, 2.05, {3, {4, 2}});
  ASSERT_FALSE(fast.empty());
  EXPECT_EQ(fast[0].kind, soc::TransitionKind::kHotplug);
  EXPECT_EQ(fast[0].to.cores, (soc::CoreConfig{4, 1}));
}

TEST(Controller, ThresholdsShiftDownByVqOnLowCrossing) {
  Rig rig;
  rig.controller.calibrate(5.0, 0.0);
  const double lo = rig.controller.thresholds().v_low();
  (void)rig.controller.on_interrupt(hw::MonitorEdge::kLowFalling, 1.0,
                                    {4, {4, 0}});
  EXPECT_NEAR(rig.controller.thresholds().v_low(), lo - 0.0479, 1e-9);
}

TEST(Controller, ThresholdsShiftUpOnHighCrossing) {
  Rig rig;
  rig.controller.calibrate(5.0, 0.0);
  const double hi = rig.controller.thresholds().v_high();
  (void)rig.controller.on_interrupt(hw::MonitorEdge::kHighRising, 1.0,
                                    {4, {4, 0}});
  EXPECT_NEAR(rig.controller.thresholds().v_high(), hi + 0.0479, 1e-9);
}

TEST(Controller, ReArmEdgesIgnored) {
  Rig rig;
  rig.controller.calibrate(5.0, 0.0);
  EXPECT_TRUE(rig.controller
                  .on_interrupt(hw::MonitorEdge::kLowRising, 1.0, {4, {4, 0}})
                  .empty());
  EXPECT_TRUE(rig.controller
                  .on_interrupt(hw::MonitorEdge::kHighFalling, 1.0,
                                {4, {4, 0}})
                  .empty());
  EXPECT_EQ(rig.controller.stats().interrupts, 0u);
}

TEST(Controller, EmptyPlanAtLadderFloorSlowCrossing) {
  Rig rig;
  rig.controller.calibrate(4.5, 0.0);
  // Already at min frequency and min cores; slow crossing -> nothing to do.
  const auto plan = rig.controller.on_interrupt(
      hw::MonitorEdge::kLowFalling, 10.0, xu4().lowest_opp());
  EXPECT_TRUE(plan.empty());
  // But the thresholds still tracked downwards.
  EXPECT_LT(rig.controller.thresholds().v_low(), 4.5);
}

TEST(Controller, StatsAccounting) {
  Rig rig;
  rig.controller.calibrate(5.0, 0.0);
  (void)rig.controller.on_interrupt(hw::MonitorEdge::kLowFalling, 1.0,
                                    {4, {4, 2}});
  (void)rig.controller.on_interrupt(hw::MonitorEdge::kLowFalling, 1.05,
                                    {3, {4, 2}});
  const auto& s = rig.controller.stats();
  EXPECT_EQ(s.interrupts, 2u);
  EXPECT_EQ(s.dvfs_steps, 2u);
  EXPECT_EQ(s.hotplug_steps, 1u);
  EXPECT_EQ(s.big_ops, 1u);
  EXPECT_EQ(s.little_ops, 0u);
  EXPECT_GT(s.isr_busy_s, 0.0);
  // calibrate + 2 interrupts = 3 threshold programming passes
  EXPECT_EQ(s.threshold_moves, 3u);
}

TEST(Controller, CpuOverheadTinyFraction) {
  Rig rig;
  rig.controller.calibrate(5.0, 0.0);
  for (int i = 0; i < 100; ++i) {
    (void)rig.controller.on_interrupt(hw::MonitorEdge::kLowFalling,
                                      i * 0.5 + 0.5, {4, {4, 0}});
  }
  // 100 ISRs in 50 s of wall time: overhead far below 1 % (Fig. 15).
  EXPECT_LT(rig.controller.stats().cpu_overhead(50.0), 0.01);
  EXPECT_GT(rig.controller.stats().cpu_overhead(50.0), 0.0);
}

TEST(Controller, FreqFirstOrderingHonoured) {
  ControllerConfig cfg;
  cfg.ordering = soc::OrderingPolicy::kFreqFirst;
  Rig rig(cfg);
  rig.controller.calibrate(5.0, 0.0);
  (void)rig.controller.on_interrupt(hw::MonitorEdge::kLowFalling, 1.0,
                                    {5, {4, 2}});
  const auto plan = rig.controller.on_interrupt(
      hw::MonitorEdge::kLowFalling, 1.05, {4, {4, 2}});
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].kind, soc::TransitionKind::kDvfs);
  EXPECT_EQ(plan[1].kind, soc::TransitionKind::kHotplug);
}

TEST(Controller, DefaultConfigMatchesPaperOptimum) {
  ControllerConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.v_width, 0.144);
  EXPECT_DOUBLE_EQ(cfg.v_q, 0.0479);
  EXPECT_DOUBLE_EQ(cfg.alpha, 0.120);
  EXPECT_DOUBLE_EQ(cfg.beta, 0.479);
  EXPECT_EQ(cfg.ordering, soc::OrderingPolicy::kCoreFirst);
}

}  // namespace
}  // namespace pns::ctl
