// Tests for the dynamic threshold tracker (core/thresholds) -- eq. 1 and
// the tracking shifts.
#include "core/thresholds.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace pns::ctl {
namespace {

ThresholdConfig config() {
  return ThresholdConfig{.v_width = 0.144,
                         .v_q = 0.0479,
                         .v_floor = 4.1,
                         .v_ceil = 5.7};
}

TEST(ThresholdTracker, CalibrationCentresWindow) {
  ThresholdTracker t(config());
  t.calibrate(5.0);
  // eq. 1: Vhigh = Vc + w/2, Vlow = Vc - w/2.
  EXPECT_NEAR(t.v_low(), 5.0 - 0.072, 1e-12);
  EXPECT_NEAR(t.v_high(), 5.0 + 0.072, 1e-12);
  EXPECT_FALSE(t.saturated());
}

TEST(ThresholdTracker, WidthPreserved) {
  ThresholdTracker t(config());
  t.calibrate(5.0);
  for (int i = 0; i < 10; ++i) {
    t.shift_down();
    EXPECT_NEAR(t.v_high() - t.v_low(), 0.144, 1e-12);
  }
}

TEST(ThresholdTracker, ShiftDownMovesBothByVq) {
  ThresholdTracker t(config());
  t.calibrate(5.0);
  const double lo = t.v_low(), hi = t.v_high();
  t.shift_down();
  EXPECT_NEAR(t.v_low(), lo - 0.0479, 1e-12);
  EXPECT_NEAR(t.v_high(), hi - 0.0479, 1e-12);
}

TEST(ThresholdTracker, ShiftUpMovesBothByVq) {
  ThresholdTracker t(config());
  t.calibrate(5.0);
  const double lo = t.v_low();
  t.shift_up();
  EXPECT_NEAR(t.v_low(), lo + 0.0479, 1e-12);
}

TEST(ThresholdTracker, ClampsAtFloor) {
  ThresholdTracker t(config());
  t.calibrate(4.2);
  for (int i = 0; i < 20; ++i) t.shift_down();
  EXPECT_NEAR(t.v_low(), 4.1, 1e-12);
  EXPECT_NEAR(t.v_high(), 4.1 + 0.144, 1e-12);
  EXPECT_TRUE(t.saturated());
}

TEST(ThresholdTracker, ClampsAtCeiling) {
  ThresholdTracker t(config());
  t.calibrate(5.6);
  for (int i = 0; i < 20; ++i) t.shift_up();
  EXPECT_NEAR(t.v_high(), 5.7, 1e-12);
  EXPECT_NEAR(t.v_low(), 5.7 - 0.144, 1e-12);
  EXPECT_TRUE(t.saturated());
}

TEST(ThresholdTracker, SaturationClearsOnShiftAway) {
  ThresholdTracker t(config());
  t.calibrate(4.15);  // calibration itself clamps at the floor
  EXPECT_TRUE(t.saturated());
  t.shift_up();
  EXPECT_FALSE(t.saturated());
}

TEST(ThresholdTracker, CalibrationClampsOutOfRangeVc) {
  ThresholdTracker t(config());
  t.calibrate(3.0);
  EXPECT_GE(t.v_low(), 4.1);
  t.calibrate(7.0);
  EXPECT_LE(t.v_high(), 5.7);
}

TEST(ThresholdTracker, ConfigContracts) {
  EXPECT_THROW(ThresholdTracker({.v_width = 0.0,
                                 .v_q = 0.01,
                                 .v_floor = 4.0,
                                 .v_ceil = 5.0}),
               pns::ContractViolation);
  EXPECT_THROW(ThresholdTracker({.v_width = 0.1,
                                 .v_q = 0.0,
                                 .v_floor = 4.0,
                                 .v_ceil = 5.0}),
               pns::ContractViolation);
  EXPECT_THROW(ThresholdTracker({.v_width = 0.1,
                                 .v_q = 0.01,
                                 .v_floor = 5.0,
                                 .v_ceil = 4.0}),
               pns::ContractViolation);
  // Window wider than the allowed range cannot fit.
  EXPECT_THROW(ThresholdTracker({.v_width = 2.0,
                                 .v_q = 0.01,
                                 .v_floor = 4.0,
                                 .v_ceil = 5.0}),
               pns::ContractViolation);
}

class TrackerShiftSweep : public ::testing::TestWithParam<int> {};

// Property: after any number of shifts in any direction the invariants
// floor <= v_low < v_high <= ceil and width preservation hold.
TEST_P(TrackerShiftSweep, InvariantsHold) {
  ThresholdTracker t(config());
  t.calibrate(5.0);
  const int n = GetParam();
  for (int i = 0; i < n; ++i) {
    if (i % 3 == 0)
      t.shift_up();
    else
      t.shift_down();
    EXPECT_GE(t.v_low(), 4.1 - 1e-12);
    EXPECT_LE(t.v_high(), 5.7 + 1e-12);
    EXPECT_NEAR(t.v_high() - t.v_low(), 0.144, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(ShiftCounts, TrackerShiftSweep,
                         ::testing::Values(1, 5, 17, 64, 333));

}  // namespace
}  // namespace pns::ctl
