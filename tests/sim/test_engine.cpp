// Integration tests for the co-simulation engine (sim/engine): charging,
// brownout/reboot, governor mode, and the paper's central claims that the
// power-neutral controller (a) survives where static operation dies and
// (b) converges to approximate power neutrality.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ehsim/sources.hpp"
#include "governors/registry.hpp"
#include "sim/experiment.hpp"
#include "sweep/registry.hpp"
#include "trace/supply_profiles.hpp"
#include "util/contracts.hpp"

namespace pns::sim {
namespace {

const soc::Platform& xu4() {
  static soc::Platform p = soc::Platform::odroid_xu4();
  return p;
}

soc::RaytraceWorkload make_workload() {
  return soc::RaytraceWorkload(xu4().perf.params().instr_per_frame);
}

TEST(SimEngine, StaticLoadSettlesAtSupplyEquilibrium) {
  // 5.5 V behind 1 ohm vs lowest OPP (~1.76 W incl. nothing else):
  // equilibrium solves (5.5 - v)/1 = P/v.
  trace::SupplyProfile profile(5.5);
  profile.hold(30.0);
  ehsim::ControlledSupply source(profile.as_function(), 1.0);
  auto workload = make_workload();
  SimConfig cfg;
  cfg.t_end = 30.0;
  cfg.vc0 = 5.0;
  cfg.v_target = 0.0;
  SimEngine engine(xu4(), source, workload, cfg);
  const auto r = engine.run();

  const double p_low =
      xu4().power.board_power(xu4().lowest_opp(), xu4().opps, 1.0);
  const double v_eq =
      (5.5 + std::sqrt(5.5 * 5.5 - 4.0 * p_low)) / 2.0;  // positive root
  EXPECT_NEAR(r.series.vc.values().back(), v_eq, 0.05);
  EXPECT_EQ(r.metrics.brownouts, 0u);
  EXPECT_EQ(r.control_name, "static");
}

TEST(SimEngine, WorkloadProgressMatchesRate) {
  trace::SupplyProfile profile(5.5);
  profile.hold(10.0);
  ehsim::ControlledSupply source(profile.as_function(), 1.0);
  auto workload = make_workload();
  SimConfig cfg;
  cfg.t_end = 10.0;
  cfg.v_target = 0.0;
  SimEngine engine(xu4(), source, workload, cfg);
  const auto r = engine.run();
  const double rate =
      xu4().perf.instruction_rate(xu4().lowest_opp(), xu4().opps, 1.0);
  EXPECT_NEAR(r.metrics.instructions, rate * 10.0, rate * 0.01);
  EXPECT_NEAR(workload.instructions(), r.metrics.instructions, 1.0);
}

TEST(SimEngine, BrownoutWhenSupplyCollapses) {
  trace::SupplyProfile profile(5.5);
  profile.hold(5.0).ramp_to(2.0, 1.0).hold(24.0);
  ehsim::ControlledSupply source(profile.as_function(), 0.5);
  auto workload = make_workload();
  SimConfig cfg;
  cfg.t_end = 30.0;
  cfg.v_target = 0.0;
  cfg.enable_reboot = false;
  cfg.initial_opp = xu4().highest_opp();
  SimEngine engine(xu4(), source, workload, cfg);
  const auto r = engine.run();
  EXPECT_GE(r.metrics.brownouts, 1u);
  EXPECT_LT(r.metrics.lifetime_s, 10.0);
  EXPECT_GT(r.metrics.lifetime_s, 4.0);
  // Once off (no reboot), the node floats back towards the (diminished)
  // supply; compute stays dead so uptime is short.
  EXPECT_LT(r.metrics.uptime_s, 10.0);
}

TEST(SimEngine, RebootAfterRecovery) {
  trace::SupplyProfile profile(5.5);
  profile.hold(3.0).step_to(2.0).hold(3.0).step_to(5.5).hold(24.0);
  ehsim::ControlledSupply source(profile.as_function(), 1.0);
  auto workload = make_workload();
  SimConfig cfg;
  cfg.t_end = 30.0;
  cfg.v_target = 0.0;
  cfg.enable_reboot = true;
  cfg.initial_opp = xu4().highest_opp();
  SimEngine engine(xu4(), source, workload, cfg);
  const auto r = engine.run();
  EXPECT_GE(r.metrics.brownouts, 1u);
  // After recovery the board reboots and finishes the run executing: the
  // last recorded frequency is non-zero.
  EXPECT_GT(r.series.freq_hz.values().back(), 0.0);
  EXPECT_GT(r.metrics.uptime_s, 15.0);
}

TEST(SimEngine, ControllerSurvivesDipThatKillsStatic) {
  // The Fig. 3/6 claim: under a deep dip in source power, static
  // performance browns out while power-neutral scaling rides it through.
  auto build_profile = [] {
    trace::SupplyProfile p(5.6);
    p.hold(10.0).ramp_to(4.55, 2.0).hold(30.0).ramp_to(5.6, 2.0).hold(16.0);
    return p;
  };
  const double r_series = 0.55;

  // Static at a high OPP: dies during the dip. (4.55 V source behind
  // 0.55 ohm cannot deliver ~6 W above 4.1 V.)
  {
    auto profile = build_profile();
    ehsim::ControlledSupply source(profile.as_function(), r_series);
    auto workload = make_workload();
    SimConfig cfg;
    cfg.t_end = 60.0;
    cfg.vc0 = 5.5;
    cfg.v_target = 0.0;
    cfg.enable_reboot = false;
    cfg.initial_opp = soc::OperatingPoint{7, {4, 3}};
    SimEngine engine(xu4(), source, workload, cfg);
    const auto r = engine.run();
    EXPECT_GE(r.metrics.brownouts, 1u);
    EXPECT_LT(r.metrics.lifetime_s, 20.0);
  }

  // Power-neutral controller: scales down and survives the whole run.
  {
    auto profile = build_profile();
    ehsim::ControlledSupply source(profile.as_function(), r_series);
    auto workload = make_workload();
    SimConfig cfg;
    cfg.t_end = 60.0;
    cfg.vc0 = 5.5;
    cfg.v_target = 0.0;
    cfg.enable_reboot = false;
    cfg.initial_opp = soc::OperatingPoint{7, {4, 3}};
    SimEngine engine(xu4(), source, workload, cfg, ctl::ControllerConfig{});
    const auto r = engine.run();
    EXPECT_EQ(r.metrics.brownouts, 0u)
        << "power-neutral control should survive the dip";
    EXPECT_NEAR(r.metrics.lifetime_s, 60.0, 1e-6);
    EXPECT_GT(r.controller.interrupts, 0u);
    EXPECT_TRUE(r.used_controller);
    EXPECT_EQ(r.control_name, "power-neutral");
  }
}

TEST(SimEngine, ControllerTracksRisingSupply) {
  // Rising available power must pull the OPP (and consumption) up.
  trace::SupplyProfile profile(4.8);
  profile.hold(5.0).ramp_to(5.8, 10.0).hold(30.0);
  ehsim::ControlledSupply source(profile.as_function(), 0.4);
  auto workload = make_workload();
  SimConfig cfg;
  cfg.t_end = 45.0;
  cfg.vc0 = 4.8;
  cfg.v_target = 0.0;
  SimEngine engine(xu4(), source, workload, cfg, ctl::ControllerConfig{});
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.brownouts, 0u);
  // Final consumption well above the lowest OPP's.
  const double p_low =
      xu4().power.board_power(xu4().lowest_opp(), xu4().opps, 1.0);
  EXPECT_GT(r.series.p_consumed.values().back(), p_low + 0.5);
}

TEST(SimEngine, PowerNeutralityUnderConstantSun) {
  // Constant full sun through the paper's PV array: after convergence the
  // consumed power approximates the available (MPP) power -- the Fig. 14
  // property -- and VC stays inside the operating window near the MPP.
  auto cell = paper_pv_array();
  ehsim::PvSource source(cell, [](double) { return 1000.0; });
  auto workload = make_workload();
  SimConfig cfg;
  cfg.t_end = 120.0;
  cfg.vc0 = 5.3;
  cfg.v_target = 5.3;
  SimEngine engine(xu4(), source, workload, cfg, ctl::ControllerConfig{});
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.brownouts, 0u);

  const double p_mpp = cell.mpp(1000.0).power;
  // Average consumed power over the run within 25 % of MPP power.
  EXPECT_NEAR(r.metrics.avg_power_consumed_w(), p_mpp, 0.25 * p_mpp);
  // The node voltage dwells near the MPP voltage.
  EXPECT_NEAR(r.metrics.vc_stats.mean(), 5.3, 0.5);
  // Plenty of control activity happened.
  EXPECT_GT(r.controller.interrupts, 20u);
}

TEST(SimEngine, GovernorPerformanceDiesOnSolar) {
  auto cell = paper_pv_array();
  ehsim::PvSource source(cell, [](double) { return 1000.0; });
  auto workload = make_workload();
  SimConfig cfg;
  cfg.t_end = 60.0;
  cfg.v_target = 0.0;
  cfg.enable_reboot = false;
  cfg.initial_opp = soc::OperatingPoint{0, xu4().max_cores};
  SimEngine engine(xu4(), source, workload, cfg,
                   gov::make_governor("performance", xu4()));
  const auto r = engine.run();
  EXPECT_GE(r.metrics.brownouts, 1u);
  EXPECT_LT(r.metrics.lifetime_s, 30.0);
  EXPECT_EQ(r.control_name, "performance");
}

TEST(SimEngine, GovernorPowersaveSurvivesOnSolar) {
  auto cell = paper_pv_array();
  ehsim::PvSource source(cell, [](double) { return 1000.0; });
  auto workload = make_workload();
  SimConfig cfg;
  cfg.t_end = 60.0;
  cfg.v_target = 0.0;
  cfg.initial_opp = soc::OperatingPoint{0, xu4().max_cores};
  SimEngine engine(xu4(), source, workload, cfg,
                   gov::make_governor("powersave", xu4()));
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.brownouts, 0u);
  EXPECT_NEAR(r.metrics.lifetime_s, 60.0, 1e-6);
}

TEST(SimEngine, RecordedSeriesWellFormed) {
  trace::SupplyProfile profile(5.5);
  profile.sine(0.4, 8.0, 40.0);
  ehsim::ControlledSupply source(profile.as_function(), 0.5);
  auto workload = make_workload();
  SimConfig cfg;
  cfg.t_end = 40.0;
  cfg.v_target = 0.0;
  cfg.record_interval_s = 0.1;
  SimEngine engine(xu4(), source, workload, cfg, ctl::ControllerConfig{});
  const auto r = engine.run();

  const auto& vc = r.series.vc;
  ASSERT_GT(vc.size(), 100u);
  for (std::size_t i = 1; i < vc.times().size(); ++i)
    ASSERT_GE(vc.times()[i], vc.times()[i - 1]);
  EXPECT_GT(vc.min_value(), 3.0);
  EXPECT_LT(vc.max_value(), 7.0);
  // Core counts stay within platform limits.
  EXPECT_GE(r.series.n_little.min_value(), 1.0);
  EXPECT_LE(r.series.n_little.max_value(), 4.0);
  EXPECT_LE(r.series.n_big.max_value(), 4.0);
  // Threshold traces recorded in controller mode and bracket each other.
  for (std::size_t i = 0; i < r.series.v_low.size(); ++i)
    EXPECT_LT(r.series.v_low.values()[i], r.series.v_high.values()[i]);
}

TEST(SimEngine, MetricsHistogramAccumulatesDuration) {
  trace::SupplyProfile profile(5.5);
  profile.hold(20.0);
  ehsim::ControlledSupply source(profile.as_function(), 1.0);
  auto workload = make_workload();
  SimConfig cfg;
  cfg.t_end = 20.0;
  cfg.v_target = 0.0;
  SimEngine engine(xu4(), source, workload, cfg);
  const auto r = engine.run();
  EXPECT_NEAR(r.voltage_histogram.total_weight(), 20.0, 0.1);
}

TEST(SimEngine, ConfigContracts) {
  trace::SupplyProfile profile(5.5);
  ehsim::ControlledSupply source(profile.as_function(), 1.0);
  auto workload = make_workload();
  {
    SimConfig cfg;
    cfg.t_end = 0.0;
    EXPECT_THROW(SimEngine(xu4(), source, workload, cfg),
                 pns::ContractViolation);
  }
  {
    SimConfig cfg;
    cfg.vc0 = 3.0;  // below v_min
    EXPECT_THROW(SimEngine(xu4(), source, workload, cfg),
                 pns::ContractViolation);
  }
  {
    SimConfig cfg;
    cfg.capacitance_f = 0.0;
    EXPECT_THROW(SimEngine(xu4(), source, workload, cfg),
                 pns::ContractViolation);
  }
}

TEST(SimEngine, SteadyRegulationDoesNotChurnCores) {
  // Regression: the stationary limit cycle of quantised power levels must
  // be absorbed by DVFS alone (direction-alternating crossings carry no
  // trend); hot-plugs happen at most during the initial convergence.
  // Moderate irradiance keeps the tracking window mid-range (away from
  // its clamps, where linear core fallback may legitimately engage).
  auto cell = paper_pv_array();
  ehsim::PvSource source(cell, [](double) { return 600.0; });
  auto workload = make_workload();
  SimConfig cfg;
  cfg.t_end = 120.0;
  cfg.vc0 = 5.2;
  cfg.v_target = 0.0;
  cfg.initial_opp = soc::OperatingPoint{4, {4, 1}};  // near balance
  SimEngine engine(xu4(), source, workload, cfg, ctl::ControllerConfig{});
  const auto r = engine.run();
  EXPECT_EQ(r.metrics.brownouts, 0u);
  EXPECT_GT(r.controller.dvfs_steps, 50u);
  // Far fewer core operations than frequency operations (paper Fig. 11).
  EXPECT_LT(r.controller.hotplug_steps, r.controller.dvfs_steps / 5);
}

TEST(SimEngine, RecoversRegulationAfterReboot) {
  // Regression: during the 8 s boot the node charges towards Voc, beyond
  // the whole tracking window; the engine's post-calibration level check
  // must restart regulation instead of parking at the lowest OPP forever.
  auto cell = paper_pv_array();
  // Darkness for 30 s (forces a brownout from the demanding start OPP),
  // then steady sun.
  ehsim::PvSource source(
      cell, [](double t) { return t < 30.0 ? 0.0 : 900.0; });
  auto workload = make_workload();
  SimConfig cfg;
  cfg.t_end = 180.0;
  cfg.vc0 = 5.3;
  cfg.v_target = 5.3;
  cfg.enable_reboot = true;
  cfg.initial_opp = soc::OperatingPoint{5, {4, 2}};
  SimEngine engine(xu4(), source, workload, cfg, ctl::ControllerConfig{});
  const auto r = engine.run();
  EXPECT_GE(r.metrics.brownouts, 1u);
  // After recovery the system consumes far more than the lowest OPP: the
  // last recorded consumption must exceed the powersave floor.
  const double p_low =
      xu4().power.board_power(xu4().lowest_opp(), xu4().opps, 1.0);
  EXPECT_GT(r.series.p_consumed.values().back(), p_low + 1.0);
  // And the node voltage came back down into the operating window.
  EXPECT_LT(r.series.vc.values().back(), 5.8);
}

TEST(SimEngine, CustomMonitorNetworkRespected) {
  // A divider scaled for a lower-voltage node must change the achievable
  // threshold range the controller tracks within.
  trace::SupplyProfile profile(5.3);
  profile.hold(5.0);
  ehsim::ControlledSupply source(profile.as_function(), 1.0);
  auto workload = make_workload();
  SimConfig cfg;
  cfg.t_end = 5.0;
  cfg.v_target = 0.0;
  cfg.monitor_network.r_top = 600.0e3;  // shifts the range upwards
  SimEngine engine(xu4(), source, workload, cfg, ctl::ControllerConfig{});
  const auto r = engine.run();  // must simply run without contract issues
  EXPECT_EQ(r.metrics.brownouts, 0u);
}

TEST(SimEngine, LoadVoltageFloorIsNamedAndDefaultsToLegacyValue) {
  // The I = P/V clamp used to be a magic 0.05 inside the engine; it is now
  // a SimConfig knob so low-voltage platforms can widen their valid range.
  SimConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.load_v_floor_v, 0.05);
}

TEST(SimEngine, LoadVoltageFloorIsConfigurable) {
  // A floor above the operating point turns I = P / max(v, floor) into a
  // constant-current drain, which shifts the supply equilibrium upward:
  // (5.5 - v)/R = P/floor instead of P/v. The settled voltage must move.
  auto run_with_floor = [&](double floor) {
    trace::SupplyProfile profile(5.5);
    profile.hold(30.0);
    ehsim::ControlledSupply source(profile.as_function(), 1.0);
    auto workload = make_workload();
    SimConfig cfg;
    cfg.t_end = 30.0;
    cfg.vc0 = 5.0;
    cfg.v_target = 0.0;
    cfg.load_v_floor_v = floor;
    SimEngine engine(xu4(), source, workload, cfg);
    return engine.run().series.vc.values().back();
  };
  const double v_default = run_with_floor(0.05);
  const double v_floored = run_with_floor(5.4);
  // P/5.4 draws less than P/v_eq (~5.16 V), so the floored run settles
  // measurably higher.
  EXPECT_GT(v_floored, v_default + 0.005);
}

// ------------------------------------------------ steady-state coasting

/// The registered rk23pi kind's engine settings (resolved through the
/// integrator registry, so these tests track the shipped defaults),
/// minus coasting unless asked.
SimConfig rk23pi_config(SimConfig cfg, bool coast) {
  sweep::ScenarioSpec spec;
  spec.integrator = sweep::IntegratorSpec::parse("rk23pi");
  sweep::resolve_integrator(spec, cfg);
  cfg.coast = coast;
  return cfg;
}

TEST(SimEngine, CoastingMatchesSteppedRunOnQuiescentHour) {
  // Constant irradiance, pinned OPP: after the node settles at its
  // stable equilibrium the coasting engine jumps to the end in analytic
  // strides. Every reported metric must agree tightly with the fully
  // stepped run -- coasting is a fast path, not an approximation knob.
  auto run = [&](bool coast) {
    ehsim::PvSource source(sim::paper_pv_array(),
                           [](double) { return 700.0; });
    source.set_irradiance_hold([](double) {
      return std::numeric_limits<double>::infinity();
    });
    auto workload = make_workload();
    SimConfig cfg;
    cfg.t_end = 3600.0;
    cfg.vc0 = 5.3;
    cfg.initial_opp = balanced_opp(xu4(), source.available_power(0.0));
    cfg.record_series = false;
    SimEngine engine(xu4(), source, workload, rk23pi_config(cfg, coast));
    return engine.run();
  };
  const auto coasted = run(true);
  const auto stepped = run(false);
  EXPECT_EQ(coasted.metrics.brownouts, 0u);
  EXPECT_NEAR(coasted.metrics.energy_harvested_j,
              stepped.metrics.energy_harvested_j,
              1e-4 * stepped.metrics.energy_harvested_j);
  EXPECT_NEAR(coasted.metrics.energy_consumed_j,
              stepped.metrics.energy_consumed_j,
              1e-4 * stepped.metrics.energy_consumed_j);
  EXPECT_NEAR(coasted.metrics.vc_stats.mean(),
              stepped.metrics.vc_stats.mean(), 1e-3);
  EXPECT_EQ(coasted.metrics.instructions, stepped.metrics.instructions);
}

TEST(SimEngine, CoastingRespectsRecordingInterval) {
  // A recording run must keep its series density: coasting is capped at
  // the sampling interval, so the hour still records ~1 sample per
  // interval instead of one giant jump.
  ehsim::PvSource source(sim::paper_pv_array(),
                         [](double) { return 700.0; });
  source.set_irradiance_hold([](double) {
    return std::numeric_limits<double>::infinity();
  });
  auto workload = make_workload();
  SimConfig cfg;
  cfg.t_end = 600.0;
  cfg.vc0 = 5.3;
  cfg.initial_opp = balanced_opp(xu4(), source.available_power(0.0));
  cfg.record_series = true;
  cfg.record_interval_s = 1.0;
  SimEngine engine(xu4(), source, workload,
                   rk23pi_config(cfg, /*coast=*/true));
  const auto r = engine.run();
  // ~600 intervals; decimation and forced samples make the exact count
  // fuzzy, but a single coast-to-end would leave only a handful.
  EXPECT_GT(r.series.vc.size(), 400u);
}

TEST(SimEngine, CoastingDoesNotSkipControllerLimitCycle) {
  // Under the power-neutral controller at constant sun the node is NOT
  // quiescent -- it limit-cycles between the comparator thresholds.
  // Even though the source vouches for constancy, the quiescence and
  // threshold-distance guards must keep the engine stepping, so the
  // controlled run sees the same interrupt activity with coasting
  // enabled.
  auto run = [&](bool coast) {
    ehsim::PvSource source(sim::paper_pv_array(),
                           [](double) { return 700.0; });
    source.set_irradiance_hold([](double) {
      return std::numeric_limits<double>::infinity();
    });
    SimConfig cfg;
    cfg.t_end = 120.0;
    cfg.vc0 = 5.3;
    cfg.v_target = 5.3;
    cfg.record_series = false;
    // Warm start (regulation-anchored window + balanced OPP), as the
    // paper's recordings: this is the configuration whose limit cycle
    // ticks ~2 interrupts per second at constant sun.
    return run_pv_control(xu4(), source, ControlSelection::power_neutral(),
                          rk23pi_config(cfg, coast), /*warm_start=*/true);
  };
  const auto coasted = run(true);
  const auto stepped = run(false);
  EXPECT_GT(coasted.controller.interrupts, 20u);  // the cycle is alive
  EXPECT_EQ(coasted.controller.interrupts, stepped.controller.interrupts);
  EXPECT_EQ(coasted.metrics.brownouts, stepped.metrics.brownouts);
}

TEST(SimEngine, RunIsOneShot) {
  trace::SupplyProfile profile(5.5);
  ehsim::ControlledSupply source(profile.as_function(), 1.0);
  auto workload = make_workload();
  SimConfig cfg;
  cfg.t_end = 1.0;
  cfg.v_target = 0.0;
  SimEngine engine(xu4(), source, workload, cfg);
  (void)engine.run();
  EXPECT_THROW(engine.run(), pns::ContractViolation);
}

}  // namespace
}  // namespace pns::sim
