// Tests for the experiment scenario helpers (sim/experiment).
#include "sim/experiment.hpp"

#include <gtest/gtest.h>

namespace pns::sim {
namespace {

const soc::Platform& xu4() {
  static soc::Platform p = soc::Platform::odroid_xu4();
  return p;
}

TEST(PaperPvArray, MatchesFig13Anchors) {
  auto cell = paper_pv_array();
  EXPECT_NEAR(cell.open_circuit_voltage(1000.0), 6.8, 0.05);
  EXPECT_NEAR(cell.short_circuit_current(1000.0), 1.15, 0.02);
  EXPECT_NEAR(cell.mpp(1000.0).voltage, 5.3, 0.05);
}

TEST(Fig1PvCell, AreaScaledDown) {
  auto big = paper_pv_array();
  auto small = fig1_pv_cell();
  EXPECT_NEAR(small.mpp(1000.0).power / big.mpp(1000.0).power,
              250.0 / 1340.0, 0.01);
}

TEST(PaperClearSky, DaylightWindow) {
  auto sky = paper_clear_sky();
  EXPECT_DOUBLE_EQ(sky.irradiance(4.0 * 3600.0), 0.0);
  EXPECT_GT(sky.irradiance(13.0 * 3600.0), 900.0);
}

TEST(SolarSimConfig, MatchesPaperSetup) {
  SolarScenario scenario;
  const auto cfg = solar_sim_config(scenario);
  EXPECT_DOUBLE_EQ(cfg.capacitance_f, 47e-3);  // the paper's buffer
  EXPECT_DOUBLE_EQ(cfg.v_target, 5.3);         // calibrated MPP
  EXPECT_DOUBLE_EQ(cfg.band_fraction, 0.05);
  EXPECT_DOUBLE_EQ(cfg.t_start, scenario.t_start);
}

TEST(RunSolarPowerNeutral, ShortFullSunRunStaysAlive) {
  SolarScenario scenario;
  scenario.t_start = 12.0 * 3600.0;
  scenario.t_end = scenario.t_start + 120.0;
  auto cfg = solar_sim_config(scenario);
  const auto r = run_solar_power_neutral(xu4(), scenario, cfg);
  EXPECT_EQ(r.metrics.brownouts, 0u);
  EXPECT_TRUE(r.used_controller);
  EXPECT_GT(r.metrics.instructions, 0.0);
  EXPECT_GT(r.metrics.fraction_in_band(), 0.2);
}

TEST(RunSolarGovernor, PowersaveRunsConservativeDies) {
  SolarScenario scenario;
  scenario.t_start = 12.0 * 3600.0;
  scenario.t_end = scenario.t_start + 90.0;
  auto cfg = solar_sim_config(scenario);
  cfg.enable_reboot = false;

  const auto powersave =
      run_solar_governor(xu4(), scenario, "powersave", cfg);
  EXPECT_EQ(powersave.metrics.brownouts, 0u);

  const auto conservative =
      run_solar_governor(xu4(), scenario, "conservative", cfg);
  EXPECT_GE(conservative.metrics.brownouts, 1u);
  // Table II: conservative dies within seconds of ramping up.
  EXPECT_LT(conservative.metrics.lifetime_s, 30.0);
}

TEST(RunSolarStatic, LowOppSurvivesNoon) {
  SolarScenario scenario;
  scenario.t_start = 12.0 * 3600.0;
  scenario.t_end = scenario.t_start + 60.0;
  auto cfg = solar_sim_config(scenario);
  const auto r =
      run_solar_static(xu4(), scenario, xu4().lowest_opp(), cfg);
  EXPECT_EQ(r.metrics.brownouts, 0u);
  EXPECT_EQ(r.control_name, "static");
}

TEST(RunControlledSupply, TracksBenchProfile) {
  trace::SupplyProfile profile(5.4);
  profile.hold(10.0).ramp_to(4.8, 5.0).hold(10.0).ramp_to(5.4, 5.0).hold(
      10.0);
  SimConfig cfg;
  cfg.t_end = 40.0;
  cfg.vc0 = 5.3;
  cfg.v_target = 0.0;
  const auto r = run_controlled_supply(xu4(), profile, 0.5, cfg);
  EXPECT_EQ(r.metrics.brownouts, 0u);
  EXPECT_GT(r.controller.interrupts, 0u);
}

TEST(BalancedOpp, PicksHighestThroughputWithinBudget) {
  // Generous budget: the full machine fits.
  const auto top = balanced_opp(xu4(), 100.0);
  EXPECT_EQ(top, xu4().highest_opp());
  // Tiny budget: only the floor fits.
  const auto bottom = balanced_opp(xu4(), 0.5);
  EXPECT_EQ(bottom, xu4().lowest_opp());
  // Mid budget: the chosen OPP fits and no faster OPP under budget exists.
  const double budget = 4.0;
  const auto mid = balanced_opp(xu4(), budget);
  EXPECT_LE(xu4().power.board_power(mid, xu4().opps, 1.0), budget);
  const double rate = xu4().perf.instruction_rate(mid, xu4().opps, 1.0);
  for (int nl = 1; nl <= 4; ++nl)
    for (int nb = 0; nb <= 4; ++nb)
      for (std::size_t fi = 0; fi < xu4().opps.size(); ++fi) {
        const soc::OperatingPoint opp{fi, {nl, nb}};
        if (xu4().power.board_power(opp, xu4().opps, 1.0) <= budget) {
          EXPECT_LE(xu4().perf.instruction_rate(opp, xu4().opps, 1.0),
                    rate + 1e-6);
        }
      }
}

TEST(BalancedOpp, MonotoneInBudget) {
  double prev_rate = -1.0;
  for (double w : {2.0, 3.0, 4.0, 5.0, 6.0, 8.0}) {
    const auto opp = balanced_opp(xu4(), w);
    const double rate = xu4().perf.instruction_rate(opp, xu4().opps, 1.0);
    EXPECT_GE(rate, prev_rate);
    prev_rate = rate;
  }
}

TEST(RunSolarPowerNeutral, AnchorsWindowAtMppTarget) {
  // The helper caps the tracking window just above the configured target
  // (the paper's "target voltage set at the calibrated MPP"): the mean
  // node voltage must settle near the target, not drift towards v_max.
  SolarScenario scenario;
  scenario.t_start = 12.0 * 3600.0;
  scenario.t_end = scenario.t_start + 300.0;
  auto cfg = solar_sim_config(scenario);
  cfg.record_series = false;
  const auto r = run_solar_power_neutral(xu4(), scenario, cfg);
  EXPECT_NEAR(r.metrics.vc_stats.mean(), 5.3, 0.25);
}

TEST(SolarScenario, SeedChangesOutcomeDeterministically) {
  SolarScenario a;
  a.condition = trace::WeatherCondition::kPartialSun;
  a.t_start = 12.0 * 3600.0;
  a.t_end = a.t_start + 60.0;
  a.seed = 1;
  SolarScenario b = a;
  b.seed = 2;
  auto cfg = solar_sim_config(a);
  cfg.record_series = false;
  const auto ra1 = run_solar_power_neutral(xu4(), a, cfg);
  const auto ra2 = run_solar_power_neutral(xu4(), a, cfg);
  const auto rb = run_solar_power_neutral(xu4(), b, cfg);
  // Same seed -> identical metrics; different seed -> different harvest.
  EXPECT_DOUBLE_EQ(ra1.metrics.energy_harvested_j,
                   ra2.metrics.energy_harvested_j);
  EXPECT_NE(ra1.metrics.energy_harvested_j, rb.metrics.energy_harvested_j);
}

}  // namespace
}  // namespace pns::sim
