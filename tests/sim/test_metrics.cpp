// Tests for metric accumulation (sim/metrics).
#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace pns::sim {
namespace {

TEST(BandOverlap, FullyInside) {
  EXPECT_DOUBLE_EQ(band_overlap_fraction(5.0, 5.1, 4.9, 5.2), 1.0);
}

TEST(BandOverlap, FullyOutside) {
  EXPECT_DOUBLE_EQ(band_overlap_fraction(4.0, 4.5, 4.9, 5.2), 0.0);
  EXPECT_DOUBLE_EQ(band_overlap_fraction(5.5, 6.0, 4.9, 5.2), 0.0);
}

TEST(BandOverlap, PartialCrossing) {
  // Segment 4.8 -> 5.2 against band [5.0, 5.4]: half inside.
  EXPECT_NEAR(band_overlap_fraction(4.8, 5.2, 5.0, 5.4), 0.5, 1e-12);
}

TEST(BandOverlap, DirectionIrrelevant) {
  EXPECT_DOUBLE_EQ(band_overlap_fraction(4.8, 5.2, 5.0, 5.4),
                   band_overlap_fraction(5.2, 4.8, 5.0, 5.4));
}

TEST(BandOverlap, FlatSegmentInsideAndOnEdge) {
  EXPECT_DOUBLE_EQ(band_overlap_fraction(5.0, 5.0, 4.9, 5.1), 1.0);
  EXPECT_DOUBLE_EQ(band_overlap_fraction(4.9, 4.9, 4.9, 5.1), 1.0);
  EXPECT_DOUBLE_EQ(band_overlap_fraction(4.0, 4.0, 4.9, 5.1), 0.0);
}

TEST(BandOverlap, SpanningWholeBand) {
  // Segment 4.0 -> 6.0 against band [4.9, 5.1]: 0.2 / 2.0 = 0.1.
  EXPECT_NEAR(band_overlap_fraction(4.0, 6.0, 4.9, 5.1), 0.1, 1e-12);
}

TEST(BandOverlap, RejectsInvertedBand) {
  EXPECT_THROW(band_overlap_fraction(1.0, 2.0, 3.0, 2.0),
               pns::ContractViolation);
}

TEST(MetricsAccumulator, EnergyIntegrals) {
  MetricsAccumulator acc(0.0, 0.0, 0.05);
  // 2 s at 3 W harvested (flat), 2 W consumed.
  acc.add_segment(0.0, 2.0, 5.0, 5.0, 3.0, 3.0, 2.0, 1e9, true);
  const auto m = acc.finish(2.0, 1e10);
  EXPECT_NEAR(m.energy_harvested_j, 6.0, 1e-12);
  EXPECT_NEAR(m.energy_consumed_j, 4.0, 1e-12);
  EXPECT_NEAR(m.instructions, 2e9, 1e-3);
  EXPECT_NEAR(m.frames, 0.2, 1e-12);
  EXPECT_NEAR(m.uptime_s, 2.0, 1e-12);
  EXPECT_NEAR(m.avg_power_consumed_w(), 2.0, 1e-12);
}

TEST(MetricsAccumulator, TrapezoidalHarvest) {
  MetricsAccumulator acc(0.0, 0.0, 0.05);
  acc.add_segment(0.0, 2.0, 5.0, 5.0, 1.0, 3.0, 0.0, 0.0, true);
  const auto m = acc.finish(2.0, 1.0);
  EXPECT_NEAR(m.energy_harvested_j, 4.0, 1e-12);  // mean 2 W over 2 s
}

TEST(MetricsAccumulator, BandTimeTracked) {
  MetricsAccumulator acc(0.0, 5.0, 0.05);  // band [4.75, 5.25]
  acc.add_segment(0.0, 1.0, 5.0, 5.1, 0, 0, 0, 0, true);   // inside
  acc.add_segment(1.0, 2.0, 5.1, 6.0, 0, 0, 0, 0, true);   // partially
  const auto m = acc.finish(2.0, 1.0);
  const double expected = 1.0 + (5.25 - 5.1) / (6.0 - 5.1);
  EXPECT_NEAR(m.time_in_band_s, expected, 1e-9);
  EXPECT_NEAR(m.fraction_in_band(), expected / 2.0, 1e-9);
}

TEST(MetricsAccumulator, BandDisabledWhenTargetZero) {
  MetricsAccumulator acc(0.0, 0.0, 0.05);
  acc.add_segment(0.0, 1.0, 5.0, 5.0, 0, 0, 0, 0, true);
  EXPECT_DOUBLE_EQ(acc.finish(1.0, 1.0).time_in_band_s, 0.0);
}

TEST(MetricsAccumulator, LifetimeUntilFirstBrownout) {
  MetricsAccumulator acc(10.0, 0.0, 0.05);
  acc.add_segment(10.0, 12.0, 5.0, 4.0, 0, 0, 0, 0, true);
  acc.on_brownout(12.0);
  acc.add_segment(12.0, 15.0, 4.0, 4.5, 0, 0, 0, 0, false);
  acc.on_brownout(14.5);  // second brownout does not move lifetime
  const auto m = acc.finish(15.0, 1.0);
  EXPECT_NEAR(m.lifetime_s, 2.0, 1e-12);
  EXPECT_EQ(m.brownouts, 2u);
  EXPECT_NEAR(m.uptime_s, 2.0, 1e-12);
}

TEST(MetricsAccumulator, LifetimeFullDurationWithoutBrownout) {
  MetricsAccumulator acc(0.0, 0.0, 0.05);
  acc.add_segment(0.0, 60.0, 5.0, 5.0, 0, 0, 0, 0, true);
  const auto m = acc.finish(60.0, 1.0);
  EXPECT_NEAR(m.lifetime_s, 60.0, 1e-12);
  EXPECT_EQ(m.brownouts, 0u);
}

TEST(MetricsAccumulator, HistogramAttachment) {
  pns::Histogram h(0.0, 8.0, 16);
  MetricsAccumulator acc(0.0, 0.0, 0.05);
  acc.attach_histogram(&h);
  acc.add_segment(0.0, 3.0, 5.0, 5.0, 0, 0, 0, 0, true);
  EXPECT_NEAR(h.total_weight(), 3.0, 1e-12);
  EXPECT_NEAR(h.weight(10), 3.0, 1e-12);  // 5.0 V lands in bin [5.0, 5.5)
}

TEST(MetricsAccumulator, VcStatsTimeWeighted) {
  MetricsAccumulator acc(0.0, 0.0, 0.05);
  acc.add_segment(0.0, 3.0, 4.0, 4.0, 0, 0, 0, 0, true);
  acc.add_segment(3.0, 4.0, 6.0, 6.0, 0, 0, 0, 0, true);
  const auto m = acc.finish(4.0, 1.0);
  EXPECT_NEAR(m.vc_stats.mean(), 4.5, 1e-12);
}

TEST(MetricsAccumulator, RendersPerMinute) {
  MetricsAccumulator acc(0.0, 0.0, 0.05);
  acc.add_segment(0.0, 60.0, 5.0, 5.0, 0, 0, 0, 5e9, true);
  const auto m = acc.finish(60.0, 1e10);
  EXPECT_NEAR(m.renders_per_min(), 30.0, 1e-6);
}

TEST(MetricsAccumulator, ZeroLengthSegmentIgnored) {
  MetricsAccumulator acc(0.0, 5.0, 0.05);
  acc.add_segment(1.0, 1.0, 5.0, 5.0, 1.0, 1.0, 1.0, 1.0, true);
  const auto m = acc.finish(1.0, 1.0);
  EXPECT_DOUBLE_EQ(m.energy_consumed_j, 0.0);
}

}  // namespace
}  // namespace pns::sim
