// Differential-testing harness for the batched lockstep engine.
//
// The contract under test (sim/batch_engine.hpp): running scenarios
// through rk23batch is an execution strategy, not a numeric one -- for
// any batch width and any lane order, every scenario's metrics are
// *identical* (to the last bit, asserted via the shortest_double
// round-trip serialisation) to running it alone under rk23pi. The grids
// come from tests/support/scenario_grid.hpp: seeded, diverse (controls,
// weather, windows, capacitances, brownout-provoking start voltages) and
// deterministic, so a failure reproduces from its seed.
#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../support/scenario_grid.hpp"
#include "ehsim/solar_cell_simd.hpp"
#include "sweep/assets.hpp"
#include "sweep/scenario.hpp"

namespace pns::sweep {
namespace {

using testsupport::GridOptions;
using testsupport::canonical_metrics;
using testsupport::make_scenario_grid;

/// Scalar reference: each spec alone under rk23pi (the engine rk23batch
/// must reproduce bit for bit).
std::vector<std::string> scalar_reference(std::vector<ScenarioSpec> specs) {
  std::vector<std::string> ref;
  ref.reserve(specs.size());
  ScenarioAssets assets;
  for (auto& spec : specs) {
    spec.integrator = IntegratorSpec::parse("rk23pi");
    ref.push_back(
        canonical_metrics(spec, run_scenario(spec, assets)));
  }
  return ref;
}

/// Runs `specs` through run_scenarios_batched in groups of `width`,
/// under <kind>:width=<width>, and returns canonical metrics per spec.
std::vector<std::string> batched_run(std::vector<ScenarioSpec> specs,
                                     std::size_t width,
                                     const std::string& kind = "rk23batch") {
  for (auto& spec : specs)
    spec.integrator =
        IntegratorSpec::parse(kind + ":width=" + std::to_string(width));
  std::vector<std::string> got(specs.size());
  ScenarioAssets assets;
  for (std::size_t begin = 0; begin < specs.size(); begin += width) {
    const std::size_t n = std::min(width, specs.size() - begin);
    const auto outcomes =
        run_scenarios_batched(specs.data() + begin, n, assets);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_TRUE(outcomes[k].ok) << outcomes[k].error;
      got[begin + k] = canonical_metrics(outcomes[k]);
    }
  }
  return got;
}

TEST(BatchParity, EveryWidthMatchesScalarRk23PiExactly) {
  GridOptions opt;
  opt.count = 10;
  const auto specs = make_scenario_grid(0xB41C5EEDull, opt);
  const auto ref = scalar_reference(specs);
  for (const std::size_t width : {std::size_t{1}, std::size_t{2},
                                  std::size_t{3}, std::size_t{8}}) {
    const auto got = batched_run(specs, width);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_EQ(got[i], ref[i])
          << "width=" << width << " diverged on " << specs[i].label;
  }
}

TEST(BatchParity, LaneOrderDoesNotChangeAnyLane) {
  GridOptions opt;
  opt.count = 6;
  auto specs = make_scenario_grid(0x0DDC0FFEull, opt);
  const auto ref = scalar_reference(specs);

  // Reverse the lane assignment: spec i rides in lane count-1-i of the
  // same batch. Results must still match spec for spec.
  std::vector<ScenarioSpec> reversed(specs.rbegin(), specs.rend());
  auto got_reversed = batched_run(std::move(reversed), opt.count);
  std::reverse(got_reversed.begin(), got_reversed.end());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_EQ(got_reversed[i], ref[i])
        << "lane permutation changed " << specs[i].label;
}

TEST(BatchParity, MixedControlFamiliesShareABatchSafely) {
  // The runner only groups compatible rows, but run_scenarios_batched
  // itself must not care: a batch deliberately mixing the controller,
  // governors and the static baseline still reproduces each lane.
  GridOptions opt;
  opt.count = 8;
  const auto specs = make_scenario_grid(0x5EEDF00Dull, opt);
  bool mixed = false;
  for (const auto& s : specs)
    mixed = mixed || s.control.kind != specs[0].control.kind;
  ASSERT_TRUE(mixed) << "grid seed no longer yields mixed controls";
  const auto ref = scalar_reference(specs);
  const auto got = batched_run(specs, specs.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_EQ(got[i], ref[i]) << specs[i].label;
}

TEST(BatchParity, BadLaneFailsAloneAndNeverPoisonsBatchmates) {
  GridOptions opt;
  opt.count = 4;
  auto specs = make_scenario_grid(0xBADBADull, opt);
  const auto ref = scalar_reference(specs);
  for (auto& spec : specs)
    spec.integrator = IntegratorSpec::parse("rk23batch");
  specs[1].source.kind = "no-such-source";
  ScenarioAssets assets;
  const auto outcomes =
      run_scenarios_batched(specs.data(), specs.size(), assets);
  ASSERT_EQ(outcomes.size(), specs.size());
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_NE(outcomes[1].error.find("no-such-source"), std::string::npos)
      << outcomes[1].error;
  for (const std::size_t i : {std::size_t{0}, std::size_t{2},
                              std::size_t{3}}) {
    ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
    EXPECT_EQ(canonical_metrics(outcomes[i]), ref[i]) << specs[i].label;
  }
}

// --------------------------------------------------------------- rk23simd
// The SIMD stepper makes the same promise as rk23batch -- execution
// strategy, not numerics -- with more machinery that could break it:
// vector RK stages, packed masked Newton, packed bilinear lookups, and a
// scalar fallback that must agree with all of the above.

TEST(BatchParity, SimdEveryWidthMatchesScalarRk23PiExactly) {
  GridOptions opt;
  opt.count = 10;
  const auto specs = make_scenario_grid(0xB41C5EEDull, opt);
  const auto ref = scalar_reference(specs);
  for (const std::size_t width : {std::size_t{2}, std::size_t{4},
                                  std::size_t{8}}) {
    const auto got = batched_run(specs, width, "rk23simd");
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_EQ(got[i], ref[i])
          << "rk23simd width=" << width << " diverged on " << specs[i].label;
  }
}

TEST(BatchParity, SimdSurvivesNewtonStressGridsAtEveryWidth) {
  // Dawn/dusk irradiance ramps, near-brownout stiff spans, and lanes
  // mixing tabulated and exact PV: the inputs most likely to expose a
  // packed kernel that is almost-but-not-quite the scalar sequence.
  GridOptions opt;
  opt.count = 9;
  const auto specs = testsupport::make_newton_stress_grid(0x57E55EEDull, opt);
  bool tabulated = false, exact = false;
  for (const auto& s : specs) {
    tabulated = tabulated || s.pv_mode == ehsim::PvSource::Mode::kTabulated;
    exact = exact || s.pv_mode == ehsim::PvSource::Mode::kExact;
  }
  ASSERT_TRUE(tabulated && exact)
      << "stress seed no longer yields mixed PV modes";
  const auto ref = scalar_reference(specs);
  for (const std::size_t width : {std::size_t{2}, std::size_t{4},
                                  std::size_t{8}}) {
    const auto got = batched_run(specs, width, "rk23simd");
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_EQ(got[i], ref[i])
          << "rk23simd width=" << width << " diverged on " << specs[i].label;
  }
}

TEST(BatchParity, SimdLaneOrderDoesNotChangeAnyLane) {
  GridOptions opt;
  opt.count = 8;
  auto specs = testsupport::make_newton_stress_grid(0x0DDC0FFEull, opt);
  const auto ref = scalar_reference(specs);
  std::vector<ScenarioSpec> reversed(specs.rbegin(), specs.rend());
  auto got_reversed = batched_run(std::move(reversed), opt.count, "rk23simd");
  std::reverse(got_reversed.begin(), got_reversed.end());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_EQ(got_reversed[i], ref[i])
        << "rk23simd lane permutation changed " << specs[i].label;
}

TEST(BatchParity, SimdForcedScalarFallbackMatchesToo) {
  // Platforms whose packed kernels fail the startup self-test degrade to
  // per-lane scalar execution; force that path and hold it to the same
  // contract. (Restore the override even if an assertion throws.)
  struct ForceScalar {
    ForceScalar() { ehsim::simd_force_scalar(true); }
    ~ForceScalar() { ehsim::simd_force_scalar(false); }
  } guard;
  ASSERT_FALSE(ehsim::simd_kernel_active());
  GridOptions opt;
  opt.count = 6;
  const auto specs = testsupport::make_newton_stress_grid(0xFA11BAC2ull, opt);
  const auto ref = scalar_reference(specs);
  const auto got = batched_run(specs, 4, "rk23simd");
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_EQ(got[i], ref[i]) << "forced-scalar " << specs[i].label;
}

TEST(BatchParity, BatchedStaysWithinToleranceOfRk23Reference) {
  // rk23 (the bit-exact published reference) uses different numerics, so
  // agreement here is tolerance-level, not bitwise: the batched engine
  // must land on the same physics. Restrict to warm daytime grids (vc0
  // at the MPP, harvest present); brownout timing near the cutoff or at
  // night is legitimately numerics-sensitive.
  GridOptions opt;
  opt.count = 20;
  opt.min_window_s = 60.0;
  auto specs = make_scenario_grid(0x70E1E4A4ull, opt);
  specs.erase(std::remove_if(specs.begin(), specs.end(),
                             [](const ScenarioSpec& s) {
                               return s.vc0 != 5.3 ||
                                      s.t_start < 9.0 * 3600.0;
                             }),
              specs.end());
  ASSERT_GE(specs.size(), 6u);

  ScenarioAssets assets;
  for (auto& spec : specs) {
    spec.integrator = IntegratorSpec{};  // rk23, the published reference
    const SummaryRow exact = summarize(
        SweepOutcome{spec, run_scenario(spec, assets), true, "", 0.0});
    spec.integrator = IntegratorSpec::parse("rk23batch:width=4");
    const auto outcomes = run_scenarios_batched(&spec, 1, assets);
    ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
    const SummaryRow batched = summarize(outcomes[0]);

    EXPECT_NEAR(batched.vc_mean, exact.vc_mean, 0.02) << spec.label;
    EXPECT_NEAR(batched.energy_harvested_j, exact.energy_harvested_j,
                0.01 * std::max(1.0, exact.energy_harvested_j))
        << spec.label;
    EXPECT_NEAR(batched.lifetime_s, exact.lifetime_s,
                0.05 * exact.duration_s)
        << spec.label;
  }
}

}  // namespace
}  // namespace pns::sweep
