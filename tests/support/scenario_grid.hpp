// Seeded scenario-grid generator for differential tests.
//
// The batched-engine harnesses (tests/sim/test_batch_parity,
// tests/ehsim/test_batch_fallback, tests/sweep) all need the same thing:
// a reproducible population of *diverse* ScenarioSpecs -- different
// controls, weather, seeds, capacitances, windows -- to drive two
// execution strategies over and compare the outputs. This header builds
// those grids from a single 64-bit seed (pns::Rng, so the draw is
// bit-stable across platforms) and provides an exact whole-result
// comparison: two SimResults are serialised through the sweep layer's
// SummaryRow JSON (every numeric field shortest_double round-trips, so
// equality of the strings is equality of the doubles) and compared as
// strings, which makes a mismatch print *which* metric diverged instead
// of a bare false.
//
// Header-only on purpose: tests/support has no .cpp files, so the CMake
// per-directory test glob does not turn it into a test binary.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sweep/aggregate.hpp"
#include "sweep/scenario.hpp"
#include "trace/weather.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace pns::testsupport {

/// Tuning for grid synthesis. Defaults make one test run a few seconds;
/// scale `count` up for soak runs.
struct GridOptions {
  std::size_t count = 8;       ///< specs to generate
  double min_window_s = 20.0;  ///< shortest simulated span
  double max_window_s = 90.0;  ///< longest simulated span
  /// Restrict the control draw ("pns", "gov:ondemand", "static", ...);
  /// empty = the built-in mix below.
  std::vector<std::string> controls;
  /// Integrator every spec runs under (the comparison harness swaps this
  /// out per execution strategy).
  std::string integrator = "rk23pi";
  /// Platform draw ("mono", "biglittle:arbiter=demand", ...); empty =
  /// the default mono platform on every spec. Multi-domain entries give
  /// the differential harnesses per-domain metrics to compare.
  std::vector<std::string> platforms;
};

/// The default control mix: the paper's controller, a representative
/// governor pair, and the uncontrolled baseline.
inline const std::vector<std::string>& default_control_mix() {
  static const std::vector<std::string> mix = {
      "pns", "gov:ondemand", "gov:powersave", "static"};
  return mix;
}

/// Deterministically synthesises `opt.count` diverse specs from `seed`.
/// Pure function of (seed, opt): the same arguments always yield the
/// same specs, on every platform.
inline std::vector<sweep::ScenarioSpec> make_scenario_grid(
    std::uint64_t seed, const GridOptions& opt = {}) {
  Rng rng(seed);
  const auto& conditions = trace::all_weather_conditions();
  const auto& controls =
      opt.controls.empty() ? default_control_mix() : opt.controls;
  std::vector<sweep::ScenarioSpec> specs;
  specs.reserve(opt.count);
  for (std::size_t i = 0; i < opt.count; ++i) {
    sweep::ScenarioSpec s;
    s.label = "grid-" + std::to_string(i);
    s.condition = conditions[rng.uniform_index(conditions.size())];
    s.control = sweep::ControlSpec::parse(
        controls[rng.uniform_index(controls.size())]);
    s.integrator = sweep::IntegratorSpec::parse(opt.integrator);
    if (!opt.platforms.empty())
      s.platform_spec = sweep::PlatformSpec::parse(
          opt.platforms[rng.uniform_index(opt.platforms.size())]);
    // Mostly mid-day starts, so full-sun and cloud conditions both have
    // harvest to regulate against; jitter start and span. A fraction
    // start at night instead: with no harvest the cap drains to
    // brownout, and the dead span that follows is exactly the quiescent
    // state the engines coast across (lane retirement in the batched
    // engine).
    s.t_start = rng.bernoulli(0.25) ? 3600.0 * rng.uniform(0.0, 3.0)
                                    : 3600.0 * rng.uniform(9.0, 15.0);
    s.t_end = s.t_start + rng.uniform(opt.min_window_s, opt.max_window_s);
    s.seed = rng.next_u64();
    s.capacitance_f = rng.bernoulli(0.5) ? 47e-3 : 22e-3;
    // A starting voltage barely above the platform's 4.1 V cutoff
    // exercises brownout/reboot handling in a fraction of the grids
    // (engines require vc0 > v_min at construction).
    s.vc0 = rng.bernoulli(0.25) ? rng.uniform(4.15, 4.6) : 5.3;
    s.record_series = false;
    specs.push_back(std::move(s));
  }
  return specs;
}

/// Newton-stress variant: specs engineered to hammer the PV solve paths
/// the packed SIMD kernels accelerate, where bit-divergence would be most
/// likely to hide. Dawn/dusk starts put the irradiance ramp right at the
/// solve's hard region (tiny photo-currents, long cold Newton runs);
/// near-brownout starting voltages make the span stiff (events, rejected
/// steps, divergence tails); and a fraction of lanes run tabulated-mode
/// PV so batches mix bilinear lookups, Newton solves and memo hits.
/// Same purity contract as make_scenario_grid.
inline std::vector<sweep::ScenarioSpec> make_newton_stress_grid(
    std::uint64_t seed, const GridOptions& opt = {}) {
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  const auto& conditions = trace::all_weather_conditions();
  const auto& controls =
      opt.controls.empty() ? default_control_mix() : opt.controls;
  std::vector<sweep::ScenarioSpec> specs;
  specs.reserve(opt.count);
  for (std::size_t i = 0; i < opt.count; ++i) {
    sweep::ScenarioSpec s;
    s.label = "newton-stress-" + std::to_string(i);
    s.condition = conditions[rng.uniform_index(conditions.size())];
    s.control = sweep::ControlSpec::parse(
        controls[rng.uniform_index(controls.size())]);
    s.integrator = sweep::IntegratorSpec::parse(opt.integrator);
    if (!opt.platforms.empty())
      s.platform_spec = sweep::PlatformSpec::parse(
          opt.platforms[rng.uniform_index(opt.platforms.size())]);
    // Dawn (5.5-7.5 h) or dusk (16.5-19 h): the irradiance ramp sweeps
    // the photo-current through the cold-solve region during the window.
    s.t_start = rng.bernoulli(0.5) ? 3600.0 * rng.uniform(5.5, 7.5)
                                   : 3600.0 * rng.uniform(16.5, 19.0);
    s.t_end = s.t_start + rng.uniform(opt.min_window_s, opt.max_window_s);
    s.seed = rng.next_u64();
    // Small buffers steepen dVC/dt; near-cutoff starts (4.1 V platform
    // cutoff) make brownout events and rejected steps routine.
    s.capacitance_f = rng.bernoulli(0.5) ? 22e-3 : 10e-3;
    s.vc0 = rng.bernoulli(0.5) ? rng.uniform(4.12, 4.25) : 4.6;
    s.pv_mode = rng.bernoulli(0.33) ? ehsim::PvSource::Mode::kTabulated
                                    : ehsim::PvSource::Mode::kExact;
    s.record_series = false;
    specs.push_back(std::move(s));
  }
  return specs;
}

/// Canonical exact serialisation of one outcome's metrics: the sweep
/// layer's SummaryRow JSON. shortest_double makes every numeric field
/// round-trip bit for bit, so string equality here is double equality --
/// and an EXPECT_EQ failure prints the diverging field by name.
inline std::string canonical_metrics(const sweep::SweepOutcome& outcome) {
  std::ostringstream os;
  JsonWriter w(os, JsonStyle::kCompact);
  sweep::write_summary_row_json(w, sweep::summarize(outcome));
  return os.str();
}

/// Convenience: wraps a bare SimResult (ok outcome) for canonical
/// comparison against another run of the same spec.
inline std::string canonical_metrics(const sweep::ScenarioSpec& spec,
                                     const sim::SimResult& result) {
  sweep::SweepOutcome out;
  out.spec = spec;
  out.result = result;
  out.ok = true;
  return canonical_metrics(out);
}

}  // namespace pns::testsupport
