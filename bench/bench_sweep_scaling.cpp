// Sweep-throughput scaling micro-bench.
//
// Runs the same 32-scenario governor sweep at 1, 2, 4 and
// hardware_concurrency() worker threads and reports scenarios/second and
// speedup vs the serial run. Scenarios are embarrassingly parallel
// (engine-per-task, no shared state), so on an N-core machine the sweep
// should scale close to linearly until N saturates the cores; on a
// single-core machine all rows collapse to ~1x, which is itself the
// correctness statement (threading adds no overhead worth seeing).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "sweep/runner.hpp"
#include "sweep/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace pns;

  // 32 scenarios: 4 schemes x 2 weather conditions x 4 seeds, over a
  // 5-simulated-minute midday window (long enough that a scenario costs
  // real work, short enough that the bench finishes promptly).
  sweep::SweepSpec sw;
  sw.base.t_start = 12.0 * 3600.0;
  sw.base.t_end = sw.base.t_start + 5.0 * 60.0;
  sw.base.record_series = false;
  sw.controls = {sweep::ControlSpec::power_neutral(),
                 sweep::ControlSpec::linux_governor("powersave"),
                 sweep::ControlSpec::linux_governor("ondemand"),
                 sweep::ControlSpec::linux_governor("conservative")};
  sw.conditions = {trace::WeatherCondition::kFullSun,
                   trace::WeatherCondition::kCloud};
  sw.seeds = {1, 2, 3, 4};
  const auto specs = sw.expand();

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> thread_counts = {1, 2, 4, hw};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  std::printf("sweep scaling: %zu scenarios (%zu schemes x %zu conditions "
              "x %zu seeds), hardware_concurrency = %u\n\n",
              specs.size(), sw.controls.size(), sw.conditions.size(),
              sw.seeds.size(), hw);

  ConsoleTable table(
      {"threads", "wall (s)", "scenarios/s", "speedup vs 1T"});
  double serial_wall = 0.0;
  for (unsigned t : thread_counts) {
    sweep::SweepRunnerOptions opt;
    opt.threads = t;
    const auto t0 = std::chrono::steady_clock::now();
    const auto outcomes = sweep::SweepRunner(opt).run(specs);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::size_t failed = 0;
    for (const auto& o : outcomes)
      if (!o.ok) ++failed;
    if (failed != 0) {
      std::fprintf(stderr, "%zu scenarios failed at %u threads\n", failed,
                   t);
      return 1;
    }
    if (t == 1) serial_wall = wall;
    table.add_row({std::to_string(t), fmt_double(wall, 2),
                   fmt_double(specs.size() / wall, 2),
                   fmt_double(serial_wall > 0.0 ? serial_wall / wall : 1.0,
                              2)});
  }
  table.print(std::cout);
  std::printf(
      "\nscenarios are engine-per-task with no shared mutable state, so\n"
      "throughput scales with cores until the pool saturates them; the\n"
      "aggregate rows are bit-identical at every thread count (see\n"
      "tests/sweep/test_sweep.cpp).\n");
  return 0;
}
