// Fig. 11 -- "System performance using a controlled variable voltage
// supply."
//
// A bench supply is ramped and stepped by hand; the system must modulate
// frequency for minor fluctuations (point 'A' in the paper) and shed
// cores in addition to DVFS for the sudden reduction (point 'B'). Uses
// the paper's deliberately large illustration parameters Vwidth=335 mV,
// Vq=190 mV, alpha=0.238 V/s, beta=0.633 V/s.
#include <cstdio>
#include <iostream>

#include "sim/experiment.hpp"
#include "trace/supply_profiles.hpp"
#include "util/table.hpp"

int main() {
  using namespace pns;
  const soc::Platform board = soc::Platform::odroid_xu4();

  // A bench-profile echoing Fig. 11: gentle wiggles ('A'), a sudden deep
  // step ('B'), recovery, and a slow ramp down.
  trace::SupplyProfile profile(5.4);
  profile.hold(20.0)
      .sine(0.15, 10.0, 30.0)      // minor fluctuations 'A'
      .hold(10.0)
      .ramp_to(4.6, 1.5)           // sudden reduction 'B'
      .hold(25.0)
      .ramp_to(5.5, 10.0)          // recovery
      .hold(20.0)
      .ramp_to(4.9, 15.0)          // slow decline
      .hold(10.0);

  sim::SimConfig cfg;
  cfg.t_start = 0.0;
  cfg.t_end = profile.duration();
  cfg.vc0 = 5.4;
  cfg.v_target = 0.0;
  cfg.record_interval_s = 0.1;
  cfg.initial_opp = soc::OperatingPoint{3, {4, 0}};

  ctl::ControllerConfig ctl_cfg;  // the paper's Fig. 11 parameters
  ctl_cfg.v_width = 0.335;
  ctl_cfg.v_q = 0.190;
  ctl_cfg.alpha = 0.238;
  ctl_cfg.beta = 0.633;

  std::printf(
      "Fig. 11: controlled variable supply, Vwidth=335 mV Vq=190 mV "
      "alpha=0.238 beta=0.633\n\n");
  const auto r = run_controlled_supply(board, profile, 0.45, cfg, ctl_cfg);

  ConsoleTable traj({"t (s)", "Vsupply (V)", "VC (V)", "f (MHz)",
                     "LITTLE", "total cores"});
  for (double t = 0.0; t <= cfg.t_end; t += 5.0) {
    const double nl = r.series.n_little.at(t);
    const double nb = r.series.n_big.at(t);
    traj.add_row({fmt_double(t, 0), fmt_double(profile.at(t), 2),
                  fmt_double(r.series.vc.at(t), 2),
                  fmt_double(r.series.freq_hz.at(t) / 1e6, 0),
                  fmt_double(nl, 0), fmt_double(nl + nb, 0)});
  }
  traj.print(std::cout);

  std::printf("\ninterrupts: %zu, DVFS steps: %zu, hot-plug ops: %zu "
              "(big %zu / LITTLE %zu)\n",
              r.controller.interrupts, r.controller.dvfs_steps,
              r.controller.hotplug_steps, r.controller.big_ops,
              r.controller.little_ops);
  std::printf("brownouts: %zu\n", r.metrics.brownouts);
  std::printf(
      "\nshape check (paper Fig. 11): frequency moves far more often than\n"
      "cores -- minor wiggles are absorbed by DVFS alone ('A'), while the\n"
      "sudden drop additionally unplugs cores ('B'), i.e. DVFS steps\n"
      "should outnumber hot-plug operations several-fold above.\n");
  return 0;
}
