// Fig. 12 -- "VC over time whilst testing the system under full sun
// conditions."
//
// Six hours (10:30-16:30) of full-sun harvesting through the PV array
// with the power-neutral controller. The paper reports VC within +/-5 %
// of the 5.3 V MPP target for 93.3 % of the test. Prints half-hourly VC
// rows and the in-band statistic.
#include <cstdio>
#include <iostream>

#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace pns;
  const soc::Platform board = soc::Platform::odroid_xu4();

  sim::SolarScenario scenario;
  scenario.condition = trace::WeatherCondition::kFullSun;
  scenario.t_start = 10.5 * 3600.0;
  scenario.t_end = 16.5 * 3600.0;
  scenario.seed = 403155;  // the paper's dataset DOI suffix, for fun

  auto cfg = sim::solar_sim_config(scenario);
  cfg.record_interval_s = 5.0;
  // The paper's recording starts mid-day on an already-running system;
  // begin at a near-balanced OPP instead of cold-starting at the bottom.
  cfg.initial_opp = soc::OperatingPoint{5, {4, 2}};

  std::printf("Fig. 12: VC under full sun, 10:30-16:30, 47 mF buffer, "
              "target %.1f V +/- 5%%\n\n", cfg.v_target);
  const auto r = sim::run_solar_power_neutral(board, scenario, cfg);

  ConsoleTable traj({"time", "VC (V)", "in band?"});
  const double lo = cfg.v_target * 0.95, hi = cfg.v_target * 1.05;
  for (double t = scenario.t_start; t <= scenario.t_end; t += 1800.0) {
    const double v = r.series.vc.at(t);
    traj.add_row({fmt_hhmm(t), fmt_double(v, 3),
                  (v >= lo && v <= hi) ? "yes" : "NO"});
  }
  traj.print(std::cout);

  const auto& m = r.metrics;
  std::printf("\ntime within +/-5%% of target: %.1f %%  (paper: 93.3 %%)\n",
              100.0 * m.fraction_in_band());
  std::printf("mean VC %.3f V, std-dev %.3f V, range [%.2f, %.2f] V\n",
              m.vc_stats.mean(), m.vc_stats.stddev(),
              r.series.vc.min_value(), r.series.vc.max_value());
  std::printf("brownouts: %zu (paper: none)\n", m.brownouts);
  std::printf("controller interrupts over 6 h: %zu\n",
              r.controller.interrupts);
  std::printf(
      "\nshape check: the controller holds the 47 mF node within the 5%%\n"
      "band for the overwhelming majority of the six-hour window without\n"
      "any battery or MPPT converter.\n");
  return 0;
}
