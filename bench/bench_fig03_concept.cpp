// Fig. 3 -- "Behaviour of an EH system to a transient input, with and
// without power neutral performance scaling."
//
// A sinusoidal source sags below what a fixed operating point can
// tolerate. With only the small capacitor, VC follows the dip through the
// minimum operating voltage and the system dies marginally later than the
// input crossing; with power-neutral scaling, performance sheds load and
// VC rides the trough. Prints both trajectories and the lifetimes.
#include <cstdio>
#include <iostream>

#include "ehsim/sources.hpp"
#include "sim/engine.hpp"
#include "soc/workload.hpp"
#include "trace/supply_profiles.hpp"
#include "util/table.hpp"

namespace {

pns::trace::SupplyProfile fig3_input() {
  // ~Fig. 3: source oscillating between ~4.3 and ~5.7 V with a 4 s
  // period; the troughs sag below what the demanding OPP can sustain but
  // stay (just) above what the minimum OPP needs.
  pns::trace::SupplyProfile p(5.0);
  p.sine(0.7, 4.0, 12.0);
  return p;
}

}  // namespace

int main() {
  using namespace pns;
  const soc::Platform board = soc::Platform::odroid_xu4();

  auto run = [&](bool controlled) {
    auto profile = fig3_input();
    ehsim::ControlledSupply source(profile.as_function(), 0.3);
    soc::RaytraceWorkload workload(board.perf.params().instr_per_frame);
    sim::SimConfig cfg;
    cfg.t_end = 12.0;
    cfg.vc0 = 5.0;
    cfg.v_target = 0.0;
    cfg.capacitance_f = 47e-3;  // "tiny" buffer only
    cfg.enable_reboot = false;
    cfg.record_interval_s = 0.05;
    cfg.initial_opp = soc::OperatingPoint{5, {4, 2}};  // demanding OPP
    if (controlled) {
      sim::SimEngine engine(board, source, workload, cfg,
                            ctl::ControllerConfig{});
      return engine.run();
    }
    sim::SimEngine engine(board, source, workload, cfg);
    return engine.run();
  };

  std::printf(
      "Fig. 3: transient sinusoidal input (4.3-5.7 V, 4 s period), 47 mF "
      "buffer\n\n");
  const auto uncontrolled = run(false);
  const auto controlled = run(true);

  ConsoleTable traj({"t (s)", "Vsource (V)", "VC no-scaling (V)",
                     "VC power-neutral (V)"});
  auto profile = fig3_input();
  for (double t = 0.0; t <= 12.0; t += 0.5) {
    traj.add_row({fmt_double(t, 1), fmt_double(profile.at(t), 2),
                  fmt_double(uncontrolled.series.vc.at(t), 2),
                  fmt_double(controlled.series.vc.at(t), 2)});
  }
  traj.print(std::cout);

  ConsoleTable summary({"configuration", "lifetime (s)", "brownouts",
                        "min VC (V)"});
  summary.add_row({"small capacitor only (static OPP)",
                   fmt_double(uncontrolled.metrics.lifetime_s, 2),
                   std::to_string(uncontrolled.metrics.brownouts),
                   fmt_double(uncontrolled.series.vc.min_value(), 2)});
  summary.add_row({"power-neutral performance scaling",
                   fmt_double(controlled.metrics.lifetime_s, 2),
                   std::to_string(controlled.metrics.brownouts),
                   fmt_double(controlled.series.vc.min_value(), 2)});
  summary.print(std::cout, "\nlifetime comparison");

  std::printf(
      "\nshape check (paper Fig. 3): without scaling the device dies just\n"
      "after the input sags below Vmin = %.1f V; with scaling it sheds\n"
      "load and operates through every trough.\n",
      board.v_min);
  return 0;
}
