// Fig. 14 -- "Available (estimated) and consumed power over the course of
// a day."
//
// Runs the controlled system 10:30-16:30 under full sun and prints the
// half-hourly available-power estimate (the array's MPP power, as the
// paper estimates from a contiguous reference array) against the power
// the board actually consumed. Power neutrality means the two series
// track each other, with consumption never persistently exceeding
// availability.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace pns;
  const soc::Platform board = soc::Platform::odroid_xu4();

  sim::SolarScenario scenario;
  scenario.condition = trace::WeatherCondition::kFullSun;
  scenario.t_start = 10.5 * 3600.0;
  scenario.t_end = 16.5 * 3600.0;
  auto cfg = sim::solar_sim_config(scenario);
  cfg.record_interval_s = 5.0;

  std::printf("Fig. 14: available vs consumed power, full-sun day\n\n");
  const auto r = sim::run_solar_power_neutral(board, scenario, cfg);

  ConsoleTable table({"time", "available (W)", "consumed (W)",
                      "utilised (%)"});
  RunningStats utilisation;
  for (double t = scenario.t_start; t < scenario.t_end; t += 1800.0) {
    // Average both series over the half-hour bucket.
    const double t_hi = std::min(t + 1800.0, scenario.t_end);
    const double avail =
        r.series.p_available.integral(t, t_hi) / (t_hi - t);
    const double cons = r.series.p_consumed.integral(t, t_hi) / (t_hi - t);
    const double frac = avail > 0.0 ? cons / avail : 0.0;
    utilisation.add(frac);
    table.add_row({fmt_hhmm(t), fmt_double(avail, 2), fmt_double(cons, 2),
                   fmt_double(100.0 * frac, 1)});
  }
  table.print(std::cout);

  const auto& m = r.metrics;
  std::printf("\nexact energy totals: %.2f Wh consumed vs %.2f Wh "
              "harvested (%.1f %% -- storage is too small to absorb any "
              "surplus)\n",
              m.energy_consumed_j / 3600.0, m.energy_harvested_j / 3600.0,
              100.0 * m.energy_consumed_j /
                  std::max(1e-9, m.energy_harvested_j));
  std::printf("bucket-mean consumed/available ratio: %.1f %% (sampled "
              "series; the MPP estimate is an upper bound the same way the "
              "paper's reference-array estimate is)\n",
              100.0 * utilisation.mean());
  std::printf(
      "\nshape check (paper Fig. 14): consumed power closely follows the\n"
      "available-power estimate across the whole day -- the system uses\n"
      "what the sun offers, no more, no less; storage never accumulates\n"
      "a surplus because there is (almost) no storage.\n");
  return 0;
}
