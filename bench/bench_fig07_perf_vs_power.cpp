// Fig. 7 -- "Raytrace performance vs power consumption for the operating
// points in Fig. 4."
//
// Prints FPS against board power for every (configuration, frequency)
// operating point, split like the paper into the LITTLE-only panel and
// the big+LITTLE panel.
#include <cstdio>
#include <iostream>
#include <vector>

#include "soc/platform.hpp"
#include "util/table.hpp"

namespace {

void panel(const pns::soc::Platform& board,
           const std::vector<pns::soc::CoreConfig>& configs,
           const char* title) {
  using namespace pns;
  ConsoleTable table({"config", "f (GHz)", "power (W)", "perf (FPS)"});
  for (const auto& c : configs) {
    for (std::size_t i = 0; i < board.opps.size(); i += 2) {
      const double f = board.opps.frequency(i);
      table.add_row({c.to_string(), fmt_double(f / 1e9, 2),
                     fmt_double(board.power.board_power_at(c, f), 2),
                     fmt_double(board.perf.fps(c, f), 4)});
    }
    const double f_top = board.opps.frequency(board.opps.max_index());
    table.add_row({c.to_string(), fmt_double(f_top / 1e9, 2),
                   fmt_double(board.power.board_power_at(c, f_top), 2),
                   fmt_double(board.perf.fps(c, f_top), 4)});
  }
  table.print(std::cout, title);
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace pns;
  const soc::Platform board = soc::Platform::odroid_xu4();

  std::printf(
      "Fig. 7: raytrace performance (frames/s at 5 samples/pixel) vs "
      "board power\n\n");
  panel(board, {{1, 0}, {2, 0}, {3, 0}, {4, 0}}, "'LITTLE' A7 cores only");
  panel(board, {{4, 1}, {4, 2}, {4, 3}, {4, 4}},
        "'big' A15 and 'LITTLE' A7 cores");

  const double fps_4l =
      board.perf.fps({4, 0}, board.opps.frequency(board.opps.max_index()));
  const double fps_all =
      board.perf.fps({4, 4}, board.opps.frequency(board.opps.max_index()));
  std::printf(
      "shape check (paper Fig. 7): LITTLE-only tops out ~0.065 FPS below\n"
      "2.8 W (here %.3f FPS); the full 4L+4B machine reaches ~0.25 FPS\n"
      "(here %.3f FPS) at several times the power -- performance scales\n"
      "near-linearly with power across the OPP space, which is what makes\n"
      "fine-grained power-neutral scaling worthwhile.\n",
      fps_4l, fps_all);
  return 0;
}
