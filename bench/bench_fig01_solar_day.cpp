// Fig. 1 -- "Experimentally obtained data showing the varying power output
// of a 250 cm^2 solar cell over the course of a day."
//
// Regenerates the figure's series from the synthetic weather model: the
// diurnal ('macro') envelope with partial-sun cloud shadowing ('micro')
// superimposed, evaluated through the area-scaled PV model at the MPP.
// Prints half-hourly rows plus variability statistics that quantify the
// macro/micro decomposition the paper's argument rests on.
#include <cstdio>
#include <iostream>

#include "sim/experiment.hpp"
#include "trace/weather.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace pns;

  const auto cell = sim::fig1_pv_cell();  // 250 cm^2 of the paper's array
  const auto sky = sim::paper_clear_sky();
  const double t0 = 0.0, t1 = 24.0 * 3600.0, dt = 1.0;
  const auto irradiance = trace::synthesize_irradiance(
      sky, trace::WeatherCondition::kPartialSun, t0, t1, dt, /*seed=*/2017);

  std::printf(
      "Fig. 1: power output of a 250 cm^2 cell over a day "
      "(synthetic weather, partial sun)\n\n");

  ConsoleTable table({"time", "MPP power (W)", "irradiance (W/m^2)"});
  RunningStats all_power;
  std::vector<double> minute_power;  // 1-minute grid for micro analysis
  for (double t = t0; t < t1; t += 60.0) {
    const double g = irradiance(t);
    const double p = cell.mpp(g).power;
    minute_power.push_back(p);
    all_power.add(p);
    if (static_cast<long>(t) % 1800 == 0) {
      table.add_row({fmt_hhmm(t), fmt_double(p, 3), fmt_double(g, 0)});
    }
  }
  table.print(std::cout);

  // Macro variability: range of the hour-scale moving mean.
  // Micro variability: largest swing inside any 10-minute window.
  double macro_lo = 1e9, macro_hi = -1e9, micro = 0.0;
  const std::size_t hour = 60, ten_min = 10;
  for (std::size_t i = 0; i + hour <= minute_power.size(); i += hour) {
    double m = 0.0;
    for (std::size_t k = 0; k < hour; ++k) m += minute_power[i + k];
    m /= hour;
    macro_lo = std::min(macro_lo, m);
    macro_hi = std::max(macro_hi, m);
  }
  for (std::size_t i = 0; i + ten_min <= minute_power.size(); ++i) {
    double lo = 1e9, hi = -1e9;
    for (std::size_t k = 0; k < ten_min; ++k) {
      lo = std::min(lo, minute_power[i + k]);
      hi = std::max(hi, minute_power[i + k]);
    }
    micro = std::max(micro, hi - lo);
  }

  std::printf("\npeak MPP power            : %.3f W (paper: ~1 W)\n",
              all_power.max());
  std::printf("macro variability (hourly means span): %.3f W\n",
              macro_hi - macro_lo);
  std::printf("micro variability (max 10-min swing) : %.3f W\n", micro);
  std::printf(
      "\nshape check: power rises from zero at dawn to ~1 W around noon\n"
      "and collapses within minutes when clouds shadow the cell -- the\n"
      "two variability classes the power-neutral controller must absorb.\n");
  return 0;
}
