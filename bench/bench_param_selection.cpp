// Section III -- "Simulations were performed ... for multiple parameter
// combinations whilst assessing the control strategy's performance
// [giving] best performing values for Vwidth, Vq, alpha and beta of
// 144 mV, 47.9 mV, 0.120 V/s and 0.479 V/s."
//
// Reproduces the selection study: a grid around the paper's optimum is
// scored by the fraction of time the node voltage stays within 5 % of the
// MPP target over a turbulent partial-sun window.
#include <cstdio>
#include <iostream>

#include "opt/grid_search.hpp"
#include "opt/objective.hpp"
#include "util/table.hpp"

int main() {
  using namespace pns;
  const soc::Platform board = soc::Platform::odroid_xu4();

  // A slightly shorter window than the tests' default keeps the full grid
  // sweep to a few seconds while still separating tunings. The batch
  // objective evaluates the grid through sweep::SweepRunner, so the 81
  // simulations fan out across every core.
  sweep::ScenarioSpec base;
  base.platform = board;
  base.condition = trace::WeatherCondition::kPartialSun;
  base.t_start = 12.0 * 3600.0;
  base.t_end = base.t_start + 600.0;
  base.seed = 7;
  const opt::SweepStabilityObjective objective(base);

  const auto grid = opt::GridSpec::paper_neighbourhood();
  std::printf("Section III parameter selection: %zu-point grid around the "
              "paper's optimum, 10-minute partial-sun scoring window\n\n",
              grid.size());
  const auto result = opt::grid_search(objective, grid);

  // Print the best ten and the worst three for contrast.
  auto sorted = result.evaluated;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.score > b.score; });
  ConsoleTable table({"rank", "Vwidth (mV)", "Vq (mV)", "alpha (V/s)",
                      "beta (V/s)", "time-in-band (%)"});
  for (std::size_t i = 0; i < std::min<std::size_t>(10, sorted.size()); ++i) {
    const auto& e = sorted[i];
    table.add_row({std::to_string(i + 1),
                   fmt_double(e.params.v_width * 1e3, 0),
                   fmt_double(e.params.v_q * 1e3, 0),
                   fmt_double(e.params.alpha, 2),
                   fmt_double(e.params.beta, 2),
                   fmt_double(100.0 * e.score, 1)});
  }
  for (std::size_t i = sorted.size() - 3; i < sorted.size(); ++i) {
    const auto& e = sorted[i];
    table.add_row({std::to_string(i + 1),
                   fmt_double(e.params.v_width * 1e3, 0),
                   fmt_double(e.params.v_q * 1e3, 0),
                   fmt_double(e.params.alpha, 2),
                   fmt_double(e.params.beta, 2),
                   fmt_double(100.0 * e.score, 1)});
  }
  table.print(std::cout);

  const double paper_score =
      objective(std::vector<opt::ParamSet>{{0.144, 0.0479, 0.120, 0.479}})[0];
  std::printf("\nbest grid point : Vwidth %.0f mV, Vq %.0f mV, alpha %.2f, "
              "beta %.2f -> %.1f %% in band\n",
              result.best.v_width * 1e3, result.best.v_q * 1e3,
              result.best.alpha, result.best.beta,
              100.0 * result.best_score);
  std::printf("paper's optimum : Vwidth 144 mV, Vq 48 mV, alpha 0.12, "
              "beta 0.48 -> %.1f %% in band here\n", 100.0 * paper_score);
  std::printf(
      "\nshape check: the paper's optimum scores at or near the top of\n"
      "the grid; small Vq with a window a few times wider than Vq and\n"
      "beta several-fold above alpha is the winning region.\n");
  return 0;
}
