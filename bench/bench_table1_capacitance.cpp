// Table I -- "Time and current expended whilst transitioning from the
// highest to the lowest OPP."
//
// Scenario (a): frequency scaling first, then core hot-plugging.
// Scenario (b): core hot-plugging first, then frequency scaling.
// For each: total transition time, charge drawn from the node, and the
// buffer capacitance required to ride the transition through the board's
// operating window.
#include <cstdio>
#include <iostream>

#include "core/capacitor_sizing.hpp"
#include "util/table.hpp"

int main() {
  using namespace pns;
  const soc::Platform board = soc::Platform::odroid_xu4();

  std::printf(
      "Table I: worst-case transition %s -> %s\n\n",
      to_string(board.highest_opp(), board.opps).c_str(),
      to_string(board.lowest_opp(), board.opps).c_str());

  const auto results = ctl::compare_orderings(board);

  ConsoleTable table({"scenario", "transition time (ms)", "charge Q (C)",
                      "required C (mF)"});
  const char* labels[2] = {"(a) Frequency, Core", "(b) Core, Frequency"};
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    table.add_row({labels[i], fmt_double(r.transition_time_s * 1e3, 2),
                   fmt_double(r.charge_c, 4),
                   fmt_double(r.required_capacitance_f * 1e3, 1)});
  }
  table.print(std::cout);

  const double t_ratio =
      results[0].transition_time_s / results[1].transition_time_s;
  const double q_ratio = results[0].charge_c / results[1].charge_c;
  std::printf("\npaper: (a) 345.42 ms / 0.1299 C / 84.2 mF;"
              " (b) 63.21 ms / 0.0461 C / 15.4 mF\n");
  std::printf("ratios (a)/(b): time %.2fx (paper 5.5x), charge %.2fx "
              "(paper 2.8x)\n", t_ratio, q_ratio);
  std::printf(
      "\nshape check: core-first wins decisively because hot-plugging at\n"
      "the still-high clock is fast, whereas scenario (a) performs every\n"
      "unplug at 200 MHz where each one costs ~40 ms. The paper chose a\n"
      "47 mF buffer to cover scenario (b) with margin; our model's (b)\n"
      "requirement fits inside that buffer as well.\n");

  std::printf("\nscenario (b) step-by-step plan:\n");
  ConsoleTable steps({"#", "kind", "from", "to", "dt (ms)", "P (W)"});
  for (std::size_t i = 0; i < results[1].steps.size(); ++i) {
    const auto& s = results[1].steps[i];
    steps.add_row({std::to_string(i + 1),
                   s.kind == soc::TransitionKind::kHotplug ? "hot-plug"
                                                           : "DVFS",
                   to_string(s.from, board.opps),
                   to_string(s.to, board.opps),
                   fmt_double(s.duration_s * 1e3, 2),
                   fmt_double(s.power_w, 2)});
  }
  steps.print(std::cout);
  return 0;
}
