// Micro benchmarks (google-benchmark) of the library's hot paths:
// the implicit PV solve, adaptive integrator stepping, power-model
// evaluation, controller ISR, monitor programming, and an end-to-end
// simulated second. These bound the cost of the co-simulation loop and
// document the sim/realtime ratio.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "ehsim/circuit.hpp"
#include "ehsim/rk23.hpp"
#include "ehsim/solar_cell.hpp"
#include "ehsim/solar_cell_simd.hpp"
#include "ehsim/sources.hpp"
#include "hw/monitor.hpp"
#include "sim/experiment.hpp"
#include "sweep/assets.hpp"
#include "sweep/registry.hpp"
#include "sweep/scenario.hpp"

namespace {

using namespace pns;

const soc::Platform& xu4() {
  static soc::Platform p = soc::Platform::odroid_xu4();
  return p;
}

void BM_SolarCellNewtonSolve(benchmark::State& state) {
  const auto cell = sim::paper_pv_array();
  double v = 4.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.current(v, 850.0));
    v += 0.01;
    if (v > 6.5) v = 4.1;
  }
}
BENCHMARK(BM_SolarCellNewtonSolve);

void BM_SolarCellNewtonSolveWarmSeed(benchmark::State& state) {
  // The tabulated mode's off-table fallback: Newton seeded with the last
  // converged current of a nearby operating point.
  const auto cell = sim::paper_pv_array();
  double v = 4.1;
  double seed = cell.current(v, 850.0);
  for (auto _ : state) {
    const double il = cell.photo_current(850.0);
    seed = cell.current_from_photo_seeded(v, il, seed);
    benchmark::DoNotOptimize(seed);
    v += 0.01;
    if (v > 6.5) v = 4.1;
  }
}
BENCHMARK(BM_SolarCellNewtonSolveWarmSeed);

void BM_NewtonSolveSimd(benchmark::State& state) {
  // Eight packed Newton lanes per iteration, through the same entry point
  // the batched stepper uses (two width-4 chunks on x86-64). Per-solve
  // cost = cpu_time / 8; compare against BM_SolarCellNewtonSolve, which
  // times one scalar solve. The spread of operating points keeps the
  // lockstep loop running as long as the slowest lane, as it does in a
  // real batch.
  const auto cell = sim::paper_pv_array();
  std::vector<ehsim::NewtonLane> lanes;
  for (double v : {4.1, 4.6, 5.0, 5.3, 5.6, 5.9, 6.2, 6.5})
    lanes.push_back({&cell, v, cell.photo_current(850.0),
                     cell.photo_current(850.0)});
  double out[8];
  std::uint32_t iters[8];
  double dv = 0.0;
  for (auto _ : state) {
    for (auto& ln : lanes) ln.v += dv;
    benchmark::DoNotOptimize(
        ehsim::newton_current_batch(lanes, out, iters));
    benchmark::DoNotOptimize(out[0]);
    dv = (dv == 0.0) ? 0.01 : -dv;  // wobble, stay in range
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_NewtonSolveSimd);

void BM_PvSourceExactRepeatedPoint(benchmark::State& state) {
  // The memo path: the co-simulation loop re-evaluates the source at the
  // same (v, t) at every FSAL restart and segment boundary.
  const ehsim::PvSource source(sim::paper_pv_array(),
                               [](double) { return 850.0; });
  for (auto _ : state) {
    benchmark::DoNotOptimize(source.current(5.1, 0.0));
  }
}
BENCHMARK(BM_PvSourceExactRepeatedPoint);

void BM_PvSourceTabulated(benchmark::State& state) {
  const ehsim::PvSource source(sim::paper_pv_array(),
                               [](double) { return 850.0; },
                               ehsim::PvSource::Mode::kTabulated);
  double v = 4.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(source.current(v, 0.0));
    v += 0.01;
    if (v > 6.5) v = 4.1;
  }
}
BENCHMARK(BM_PvSourceTabulated);

void BM_SolarCellMppSearch(benchmark::State& state) {
  const auto cell = sim::paper_pv_array();
  double g = 200.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.mpp(g).power);
    g += 37.0;
    if (g > 1100.0) g = 200.0;
  }
}
BENCHMARK(BM_SolarCellMppSearch);

void BM_PowerModelBoardPower(benchmark::State& state) {
  const auto& p = xu4();
  std::size_t i = 0;
  for (auto _ : state) {
    const soc::OperatingPoint opp{i % p.opps.size(),
                                  {1 + static_cast<int>(i % 4),
                                   static_cast<int>(i % 5)}};
    benchmark::DoNotOptimize(p.power.board_power(opp, p.opps, 1.0));
    ++i;
  }
}
BENCHMARK(BM_PowerModelBoardPower);

void BM_Rk23SecondOfCircuit(benchmark::State& state) {
  const auto cell = sim::paper_pv_array();
  const ehsim::PvSource source(cell, [](double) { return 900.0; });
  const ehsim::ConstantPowerLoad load(3.5);
  const ehsim::EhCircuit circuit(
      source, load,
      ehsim::Capacitor{47e-3, 0.0, 50e3});
  ehsim::Rk23Options opt;
  opt.max_step = 0.01;
  for (auto _ : state) {
    ehsim::Rk23Integrator ig(circuit, opt);
    const double v0 = 5.2;
    ig.reset(0.0, std::span<const double>(&v0, 1));
    benchmark::DoNotOptimize(ig.advance(1.0).steps_taken);
  }
}
BENCHMARK(BM_Rk23SecondOfCircuit);

void BM_Rk23PiSecondOfCircuit(benchmark::State& state) {
  // Same integration as BM_Rk23SecondOfCircuit under the PI step
  // controller with the rk23pi kind's 50 ms ceiling: the controller
  // holds the step at what the tolerance admits instead of cycling
  // through the clamp.
  const auto cell = sim::paper_pv_array();
  const ehsim::PvSource source(cell, [](double) { return 900.0; });
  const ehsim::ConstantPowerLoad load(3.5);
  const ehsim::EhCircuit circuit(source, load,
                                 ehsim::Capacitor{47e-3, 0.0, 50e3});
  ehsim::Rk23Options opt;
  opt.max_step = 0.25;
  opt.step_control = ehsim::StepControl::kPi;
  opt.event_localization = ehsim::EventLocalization::kDenseRoot;
  for (auto _ : state) {
    ehsim::Rk23Integrator ig(circuit, opt);
    const double v0 = 5.2;
    ig.reset(0.0, std::span<const double>(&v0, 1));
    benchmark::DoNotOptimize(ig.advance(1.0).steps_taken);
  }
}
BENCHMARK(BM_Rk23PiSecondOfCircuit);

// Event-path cost of one integrated second with a (never-firing) watch
// level, in both event representations. The threshold form evaluates as a
// subtract; the callback form pays the type-erased call.
void bench_rk23_event_path(benchmark::State& state,
                           const ehsim::EventSpec& ev) {
  const auto cell = sim::paper_pv_array();
  const ehsim::PvSource source(cell, [](double) { return 900.0; });
  const ehsim::ConstantPowerLoad load(3.5);
  const ehsim::EhCircuit circuit(source, load,
                                 ehsim::Capacitor{47e-3, 0.0, 50e3});
  ehsim::Rk23Options opt;
  opt.max_step = 0.01;
  ehsim::Rk23Integrator ig(circuit, opt);
  for (auto _ : state) {
    const double v0 = 5.2;
    ig.reset(0.0, std::span<const double>(&v0, 1));
    benchmark::DoNotOptimize(
        ig.advance(1.0, std::span<const ehsim::EventSpec>(&ev, 1))
            .steps_taken);
  }
}

void BM_Rk23EventPathThreshold(benchmark::State& state) {
  bench_rk23_event_path(state,
                        ehsim::EventSpec::threshold(
                            1.0, ehsim::EventDirection::kFalling, 1));
}
BENCHMARK(BM_Rk23EventPathThreshold);

void BM_Rk23EventPathCallback(benchmark::State& state) {
  bench_rk23_event_path(
      state,
      ehsim::EventSpec{[](double, std::span<const double> y) {
                         return y[0] - 1.0;
                       },
                       ehsim::EventDirection::kFalling, 1});
}
BENCHMARK(BM_Rk23EventPathCallback);

void BM_DenseOutputEventPath(benchmark::State& state) {
  // A *firing* threshold localised by the dense-output cubic root solve:
  // the node discharges from 5.2 V with no harvest, fires the watch
  // level, and the integrator continues to the end of the second. The
  // bisection path pays ~60 Hermite evaluations at the crossing; the
  // cubic solve a handful of polynomial ones.
  const ehsim::ConstantCurrentSource source(0.0);
  const ehsim::ConstantPowerLoad load(3.5);
  const ehsim::EhCircuit circuit(source, load,
                                 ehsim::Capacitor{47e-3, 0.0, 50e3});
  ehsim::Rk23Options opt;
  opt.max_step = 0.05;
  opt.step_control = ehsim::StepControl::kPi;
  opt.event_localization = ehsim::EventLocalization::kDenseRoot;
  ehsim::Rk23Integrator ig(circuit, opt);
  const auto ev =
      ehsim::EventSpec::threshold(5.0, ehsim::EventDirection::kFalling, 1);
  for (auto _ : state) {
    const double v0 = 5.2;
    ig.reset(0.0, std::span<const double>(&v0, 1));
    auto res = ig.advance(1.0, std::span<const ehsim::EventSpec>(&ev, 1));
    benchmark::DoNotOptimize(res.event_fired);
    res = ig.advance(1.0);
    benchmark::DoNotOptimize(res.steps_taken);
  }
}
BENCHMARK(BM_DenseOutputEventPath);

void BM_ControllerIsr(benchmark::State& state) {
  hw::VoltageMonitor monitor;
  ctl::PowerNeutralController controller(xu4(), monitor, {});
  controller.calibrate(5.2, 0.0);
  double t = 0.0;
  soc::OperatingPoint opp{4, {4, 1}};
  for (auto _ : state) {
    t += 0.3;
    auto plan = controller.on_interrupt(
        (static_cast<long>(t * 10) % 2) != 0
            ? hw::MonitorEdge::kLowFalling
            : hw::MonitorEdge::kHighRising,
        t, opp);
    benchmark::DoNotOptimize(plan.size());
  }
}
BENCHMARK(BM_ControllerIsr);

void BM_MonitorThresholdProgramming(benchmark::State& state) {
  hw::VoltageMonitor monitor;
  double v = 4.4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.set_thresholds(v, v + 0.2, v + 0.1));
    v += 0.05;
    if (v > 5.4) v = 4.4;
  }
}
BENCHMARK(BM_MonitorThresholdProgramming);

/// Applies the registered `rk23pi` kind's default tuning, so these
/// benches always measure exactly what `--integrator rk23pi` runs.
void apply_rk23pi(sim::SimConfig& cfg) {
  sweep::ScenarioSpec spec;
  spec.integrator = sweep::IntegratorSpec::parse("rk23pi");
  sweep::resolve_integrator(spec, cfg);
}

void bench_end_to_end(benchmark::State& state,
                      ehsim::PvSource::Mode pv_mode, bool pi = false) {
  for (auto _ : state) {
    sim::SolarScenario scenario;
    scenario.condition = trace::WeatherCondition::kPartialSun;
    scenario.t_start = 12.0 * 3600.0;
    scenario.t_end = scenario.t_start + 60.0;
    scenario.pv_mode = pv_mode;
    auto cfg = sim::solar_sim_config(scenario);
    cfg.record_series = false;
    if (pi) apply_rk23pi(cfg);
    const auto r = sim::run_solar_power_neutral(xu4(), scenario, cfg);
    benchmark::DoNotOptimize(r.metrics.instructions);
  }
}

void BM_EndToEndSimulatedMinute(benchmark::State& state) {
  bench_end_to_end(state, ehsim::PvSource::Mode::kExact);
}
BENCHMARK(BM_EndToEndSimulatedMinute)->Unit(benchmark::kMillisecond);

void BM_EndToEndSimulatedMinuteTabulated(benchmark::State& state) {
  bench_end_to_end(state, ehsim::PvSource::Mode::kTabulated);
}
BENCHMARK(BM_EndToEndSimulatedMinuteTabulated)
    ->Unit(benchmark::kMillisecond);

void BM_EndToEndSimulatedMinuteRk23Pi(benchmark::State& state) {
  bench_end_to_end(state, ehsim::PvSource::Mode::kExact, /*pi=*/true);
}
BENCHMARK(BM_EndToEndSimulatedMinuteRk23Pi)->Unit(benchmark::kMillisecond);

// One simulated HOUR at a pinned operating point under constant
// irradiance -- a sensor node on steady sun. The node charges to its
// stable equilibrium in the first seconds and then nothing happens for
// 59.9 minutes: exactly the shape the coasting fast path exists for.
// (The power-neutral controller is NOT quiescent here -- it limit-cycles
// between thresholds -- so the static OPP is the honest scenario.)
void bench_quiescent_hour(benchmark::State& state, bool coast) {
  // Array calibration and the OPP search are hoisted out of the loop so
  // the iteration times the simulated hour, not the setup.
  ehsim::PvSource source(sim::paper_pv_array(),
                         [](double) { return 700.0; });
  source.set_irradiance_hold(
      [](double) { return std::numeric_limits<double>::infinity(); });
  const auto opp = sim::balanced_opp(xu4(), source.available_power(0.0));
  sim::SolarScenario scenario;  // only used for the config shape
  scenario.t_start = 0.0;
  scenario.t_end = 3600.0;
  for (auto _ : state) {
    auto cfg = sim::solar_sim_config(scenario);
    cfg.record_series = false;
    apply_rk23pi(cfg);
    cfg.coast = coast;
    auto r = sim::run_pv_control(xu4(), source,
                                 sim::ControlSelection::pinned(opp), cfg,
                                 /*warm_start=*/true);
    benchmark::DoNotOptimize(r.metrics.instructions);
  }
}

/// One batched window: `width` midday solar scenarios stepped in lockstep
/// under the given integrator kind, through the same run_scenarios_batched
/// entry the sweep runner uses.
void bench_step_window(benchmark::State& state, const char* kind,
                       std::size_t width) {
  std::vector<sweep::ScenarioSpec> specs(width);
  for (std::size_t i = 0; i < width; ++i) {
    auto& s = specs[i];
    s.label = "bench-lane-" + std::to_string(i);
    s.condition = trace::WeatherCondition::kPartialSun;
    s.t_start = 12.0 * 3600.0 + 7.0 * static_cast<double>(i);
    s.t_end = s.t_start + 30.0;
    s.seed = 0xBE7C4ull + i;
    s.record_series = false;
    s.integrator = sweep::IntegratorSpec::parse(
        std::string(kind) + ":width=" + std::to_string(width));
  }
  sweep::ScenarioAssets assets;
  for (auto _ : state) {
    const auto outcomes =
        sweep::run_scenarios_batched(specs.data(), specs.size(), assets);
    benchmark::DoNotOptimize(outcomes.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(width));
}

void BM_StepWindowSimd(benchmark::State& state) {
  bench_step_window(state, "rk23simd", 4);
}
BENCHMARK(BM_StepWindowSimd)->Unit(benchmark::kMillisecond);

void BM_StepWindowBatchScalar(benchmark::State& state) {
  // The scalar lockstep engine on the identical window: the denominator
  // of the packed kernels' speedup at micro-bench granularity.
  bench_step_window(state, "rk23batch", 4);
}
BENCHMARK(BM_StepWindowBatchScalar)->Unit(benchmark::kMillisecond);

void BM_CoastingQuiescentHour(benchmark::State& state) {
  bench_quiescent_hour(state, /*coast=*/true);
}
BENCHMARK(BM_CoastingQuiescentHour)->Unit(benchmark::kMillisecond);

void BM_QuiescentHourNoCoast(benchmark::State& state) {
  // The same hour stepped the ordinary way: the denominator of the
  // coasting speedup the performance docs quote.
  bench_quiescent_hour(state, /*coast=*/false);
}
BENCHMARK(BM_QuiescentHourNoCoast)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
