// Ablation -- one-at-a-time sensitivity of the controller parameters.
//
// DESIGN.md calls out the four tunables (Vwidth, Vq, alpha, beta) as the
// design's key degrees of freedom. This bench perturbs each one over a
// 4x range around the paper optimum while holding the others fixed and
// reports the voltage-stability objective, exposing which knobs the
// design is actually sensitive to.
#include <cstdio>
#include <iostream>
#include <vector>

#include "opt/objective.hpp"
#include "util/table.hpp"

int main() {
  using namespace pns;
  const soc::Platform board = soc::Platform::odroid_xu4();

  sim::SolarScenario scenario;
  scenario.condition = trace::WeatherCondition::kPartialSun;
  scenario.t_start = 12.0 * 3600.0;
  scenario.t_end = scenario.t_start + 600.0;
  scenario.seed = 17;
  auto cfg = sim::solar_sim_config(scenario);
  cfg.record_series = false;
  const opt::StabilityObjective objective(board, scenario, cfg);

  const opt::ParamSet base{0.144, 0.0479, 0.120, 0.479};
  const std::vector<double> scales{0.5, 0.71, 1.0, 1.41, 2.0};

  std::printf("Ablation: one-at-a-time parameter sensitivity "
              "(time-in-band %%, 10-minute partial sun)\n\n");

  ConsoleTable table({"scale", "Vwidth only", "Vq only", "alpha only",
                      "beta only"});
  for (double k : scales) {
    auto with = [&](int which) {
      opt::ParamSet p = base;
      if (which == 0) p.v_width *= k;
      if (which == 1) p.v_q *= k;
      if (which == 2) p.alpha *= k;
      if (which == 3) p.beta *= k;
      const double s = objective(p);
      return s < 0.0 ? std::string("invalid") : fmt_double(100.0 * s, 1);
    };
    table.add_row({fmt_double(k, 2), with(0), with(1), with(2), with(3)});
  }
  table.print(std::cout);

  std::printf("\nbaseline (paper optimum): %.1f %% in band\n",
              100.0 * objective(base));
  std::printf(
      "\nreading: stability degrades fastest when Vq grows towards Vwidth\n"
      "(threshold leapfrogging) or when beta falls towards alpha (every\n"
      "crossing sheds a big core, over-reacting to micro variability) --\n"
      "matching the paper's reasoning for beta >> alpha and Vq << Vwidth.\n");
  return 0;
}
