// Ablation -- transition ordering policy under live harvesting.
//
// Table I sizes the worst-case transition offline; this ablation checks
// that the ordering choice matters *in closed loop* too: the same
// turbulent partial-sun scenario is run with core-first (the paper's
// choice) and freq-first orderings at several buffer sizes, recording
// survival and voltage stability. With small buffers, freq-first's slow
// worst-case descent costs brownouts.
#include <cstdio>
#include <iostream>

#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace pns;
  const soc::Platform board = soc::Platform::odroid_xu4();

  std::printf("Ablation: transition ordering under live full-sun "
              "harvesting (15 min x 3 seeds; supply always sufficient, so\n"
              "every brownout is a lost shedding race, the effect Table I "
              "sizes for)\n\n");

  ConsoleTable table({"buffer (mF)", "ordering", "brownouts",
                      "time-in-band (%)", "instructions (G)"});
  for (double cap_mf : {3.0, 8.0, 20.0, 47.0}) {
    for (auto ordering : {soc::OrderingPolicy::kCoreFirst,
                          soc::OrderingPolicy::kFreqFirst}) {
      std::size_t brownouts = 0;
      double band = 0.0, instr = 0.0;
      for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
        sim::SolarScenario scenario;
        scenario.condition = trace::WeatherCondition::kFullSun;
        scenario.t_start = 12.0 * 3600.0;
        scenario.t_end = scenario.t_start + 900.0;
        scenario.seed = seed;
        auto cfg = sim::solar_sim_config(scenario);
        cfg.capacitance_f = cap_mf * 1e-3;
        cfg.record_series = false;
        ctl::ControllerConfig ctl_cfg;
        ctl_cfg.ordering = ordering;
        const auto r =
            sim::run_solar_power_neutral(board, scenario, cfg, ctl_cfg);
        brownouts += r.metrics.brownouts;
        band += r.metrics.fraction_in_band() / 3.0;
        instr += r.metrics.instructions / 3.0;
      }
      table.add_row({fmt_double(cap_mf, 0), to_string(ordering),
                     std::to_string(brownouts), fmt_double(100.0 * band, 1),
                     fmt_double(instr / 1e9, 1)});
    }
  }
  table.print(std::cout);

  std::printf(
      "\nreading: in gentle closed-loop operation the two orderings are\n"
      "nearly indistinguishable -- steady regulation is dominated by DVFS\n"
      "steps and compound core+frequency descents are rare. The ordering\n"
      "asymmetry concentrates in the worst-case full descent that Table I\n"
      "sizes the buffer for: it bounds the capacitor, not the everyday\n"
      "behaviour. (Undersized buffers fail for both orderings alike, from\n"
      "ripple amplitude rather than transition charge.)\n");
  return 0;
}
