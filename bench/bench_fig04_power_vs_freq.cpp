// Fig. 4 -- "Board power consumption vs operating frequency for multiple
// core configurations ... whilst running CPU intensive ray tracing."
//
// Prints the full grid from the calibrated power model: one row per
// ladder frequency, one column per core configuration (the paper's eight
// configurations: 1-4 LITTLE, then 4 LITTLE + 1-4 big).
#include <cstdio>
#include <iostream>
#include <vector>

#include "soc/platform.hpp"
#include "util/table.hpp"

int main() {
  using namespace pns;
  const soc::Platform board = soc::Platform::odroid_xu4();

  const std::vector<soc::CoreConfig> configs = {
      {1, 0}, {2, 0}, {3, 0}, {4, 0}, {4, 1}, {4, 2}, {4, 3}, {4, 4}};

  std::printf(
      "Fig. 4: board power (W) vs operating frequency, raytrace at 100%% "
      "utilisation\n\n");

  std::vector<std::string> headers{"f (GHz)"};
  for (const auto& c : configs) headers.push_back(c.to_string());
  ConsoleTable table(headers);

  for (std::size_t i = 0; i < board.opps.size(); ++i) {
    const double f = board.opps.frequency(i);
    std::vector<std::string> row{fmt_double(f / 1e9, 2)};
    for (const auto& c : configs)
      row.push_back(fmt_double(board.power.board_power_at(c, f), 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::printf(
      "\nshape check (paper Fig. 4): ~1.8 W floor at 1xA7/0.2 GHz;\n"
      "LITTLE-only configs stay under ~2.8 W even at 1.4 GHz; each big\n"
      "core adds ~1 W at the top frequency, reaching ~7 W for 4L+4B.\n"
      "Curves fan out super-linearly because Vdd rises with f.\n");
  return 0;
}
