// Fig. 15 -- "CPU usage over time, showing overhead of proposed
// approach."
//
// The paper measures the power-budgeting software at 0.104 % average CPU
// usage (interrupt-driven design) and the monitoring hardware at 1.61 mW
// (0.82 % of minimum system power). This bench reproduces both overhead
// numbers from the model: ISR invocations x modelled ISR cost over a
// 30-minute harvesting run, plus the monitor's power share.
#include <cstdio>
#include <iostream>

#include "hw/monitor.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace pns;
  const soc::Platform board = soc::Platform::odroid_xu4();

  sim::SolarScenario scenario;
  scenario.condition = trace::WeatherCondition::kPartialSun;  // busy case
  scenario.t_start = 12.0 * 3600.0;
  scenario.t_end = scenario.t_start + 1800.0;
  auto cfg = sim::solar_sim_config(scenario);
  cfg.record_series = false;

  std::printf("Fig. 15: controller CPU overhead, 30-minute partial-sun "
              "run (worst-case event rate)\n\n");
  const auto r = sim::run_solar_power_neutral(board, scenario, cfg);
  const auto& s = r.controller;
  const double elapsed = r.metrics.duration();

  ConsoleTable table({"quantity", "value"});
  table.add_row({"run length", fmt_mmss(elapsed)});
  table.add_row({"interrupts handled", std::to_string(s.interrupts)});
  table.add_row({"interrupt rate",
                 fmt_double(s.interrupts / elapsed, 2) + " /s"});
  table.add_row({"threshold reprogram passes",
                 std::to_string(s.threshold_moves)});
  table.add_row({"total ISR busy time",
                 fmt_double(s.isr_busy_s * 1e3, 1) + " ms"});
  table.add_row({"avg CPU usage of budgeting software",
                 fmt_double(100.0 * s.cpu_overhead(elapsed), 3) + " %"});
  table.print(std::cout);

  const double p_min =
      board.power.board_power(board.lowest_opp(), board.opps, 1.0);
  const double p_max =
      board.power.board_power(board.highest_opp(), board.opps, 1.0);
  std::printf("\nmonitoring hardware power: %.2f mW = %.2f %% of minimum "
              "(%.2f W) and %.3f %% of maximum (%.2f W) system power\n",
              hw::VoltageMonitor::kPowerW * 1e3,
              100.0 * hw::VoltageMonitor::kPowerW / p_min, p_min,
              100.0 * hw::VoltageMonitor::kPowerW / p_max, p_max);
  std::printf(
      "\nshape check (paper Fig. 15 / Section V.D): interrupt-driven\n"
      "control keeps software overhead around a tenth of a percent\n"
      "(paper: 0.104 %%), and the external comparator hardware costs\n"
      "under 1 %% of even the minimum system power (paper: 0.82 %%).\n");
  return 0;
}
