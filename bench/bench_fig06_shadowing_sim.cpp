// Fig. 6 -- "Simulation showing operation of the control algorithm"
// during a period of sudden shadowing.
//
// The PV array loses most of its illumination for a few seconds. Without
// control (static performance) VC crashes through Vmin; with the proposed
// controller the frequency steps down, cores unplug in proportion to
// dVC/dt, and VC stays above Vmin. Uses the paper's simulation parameters
// Vwidth=0.2 V, Vq=80 mV, alpha=0.1 V/s, beta=0.12 V/s.
//
// Both runs are ScenarioSpecs executed by sweep::SweepRunner (in parallel
// when cores allow); the bench only does the reporting.
#include <cstdio>
#include <iostream>

#include "sweep/presets.hpp"
#include "sweep/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace pns;
  const soc::Platform board = soc::Platform::odroid_xu4();

  // Sudden shadowing (see sweep::fig6_shadowing_base): full sun collapses
  // to 40 % between t=2 s and t=6 s (the array still supplies slightly
  // more than the lowest OPP needs, as in the paper's scenario where
  // control keeps VC above Vmin).
  sweep::ScenarioSpec base = sweep::fig6_shadowing_base();
  base.record_series = true;
  base.record_interval_s = 0.02;

  sweep::ScenarioSpec uncontrolled = base;
  uncontrolled.label = "static";
  uncontrolled.control = sweep::ControlSpec::static_opp_point(*base.initial_opp);

  sweep::ScenarioSpec controlled = base;
  controlled.label = "controlled";
  controlled.control =
      sweep::ControlSpec::power_neutral(sweep::fig6_controller_config());

  std::printf(
      "Fig. 6: sudden shadowing at t=2 s (irradiance drops to 40%%), "
      "Vwidth=0.2 V Vq=80 mV alpha=0.1 beta=0.12\n\n");
  const auto outcomes =
      sweep::SweepRunner().run({uncontrolled, controlled});
  for (const auto& o : outcomes) {
    if (!o.ok) {
      std::fprintf(stderr, "scenario %s failed: %s\n", o.spec.label.c_str(),
                   o.error.c_str());
      return 1;
    }
  }
  const auto& off = outcomes[0].result;
  const auto& on = outcomes[1].result;

  ConsoleTable traj({"t (s)", "VC static (V)", "VC controlled (V)",
                     "f (GHz)", "LITTLE", "big"});
  for (double t = 0.0; t <= 10.0; t += 0.5) {
    traj.add_row({fmt_double(t, 1), fmt_double(off.series.vc.at(t), 2),
                  fmt_double(on.series.vc.at(t), 2),
                  fmt_double(on.series.freq_hz.at(t) / 1e9, 2),
                  fmt_double(on.series.n_little.at(t), 0),
                  fmt_double(on.series.n_big.at(t), 0)});
  }
  traj.print(std::cout);

  std::printf("\nstatic run    : min VC %.2f V, brownouts %zu\n",
              off.series.vc.min_value(), off.metrics.brownouts);
  std::printf("controlled run: min VC %.2f V, brownouts %zu, "
              "%zu interrupts, %zu hot-plug ops\n",
              on.series.vc.min_value(), on.metrics.brownouts,
              on.controller.interrupts, on.controller.hotplug_steps);
  std::printf(
      "\nshape check (paper Fig. 6): without control VC falls through\n"
      "Vmin = %.1f V during the shadow; with control the OPP collapses\n"
      "(cores drop out, frequency bottoms) and VC never crosses Vmin,\n"
      "then performance is restored as the shadow passes.\n",
      board.v_min);
  return 0;
}
