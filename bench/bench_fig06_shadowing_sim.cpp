// Fig. 6 -- "Simulation showing operation of the control algorithm"
// during a period of sudden shadowing.
//
// The PV array loses most of its illumination for a few seconds. Without
// control (static performance) VC crashes through Vmin; with the proposed
// controller the frequency steps down, cores unplug in proportion to
// dVC/dt, and VC stays above Vmin. Uses the paper's simulation parameters
// Vwidth=0.2 V, Vq=80 mV, alpha=0.1 V/s, beta=0.12 V/s.
#include <cstdio>
#include <iostream>

#include "ehsim/sources.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "trace/weather.hpp"
#include "util/table.hpp"

int main() {
  using namespace pns;
  const soc::Platform board = soc::Platform::odroid_xu4();
  const auto cell = sim::paper_pv_array();

  // Sudden shadowing: full sun collapses to 40 % between t=2 s and t=6 s
  // (the array still supplies slightly more than the lowest OPP needs, as
  // in the paper's scenario where control keeps VC above Vmin).
  const auto shade =
      trace::shadowing_event(0.0, 10.0, 2.0, 0.4, 3.2, 0.4, 0.40);

  auto run = [&](bool controlled) {
    ehsim::PvSource source(
        cell, [&shade](double t) { return 1000.0 * shade(t); });
    soc::RaytraceWorkload workload(board.perf.params().instr_per_frame);
    sim::SimConfig cfg;
    cfg.t_end = 10.0;
    cfg.vc0 = 5.3;
    cfg.v_target = 0.0;
    cfg.enable_reboot = false;
    cfg.record_interval_s = 0.02;
    cfg.initial_opp = soc::OperatingPoint{4, {4, 2}};  // ~4.5 W draw
    if (!controlled) {
      sim::SimEngine engine(board, source, workload, cfg);
      return engine.run();
    }
    ctl::ControllerConfig ctl_cfg;  // the paper's Fig. 6 parameters
    ctl_cfg.v_width = 0.2;
    ctl_cfg.v_q = 0.080;
    ctl_cfg.alpha = 0.10;
    ctl_cfg.beta = 0.12;
    sim::SimEngine engine(board, source, workload, cfg, ctl_cfg);
    return engine.run();
  };

  std::printf(
      "Fig. 6: sudden shadowing at t=2 s (irradiance drops to 40%%), "
      "Vwidth=0.2 V Vq=80 mV alpha=0.1 beta=0.12\n\n");
  const auto off = run(false);
  const auto on = run(true);

  ConsoleTable traj({"t (s)", "VC static (V)", "VC controlled (V)",
                     "f (GHz)", "LITTLE", "big"});
  for (double t = 0.0; t <= 10.0; t += 0.5) {
    traj.add_row({fmt_double(t, 1), fmt_double(off.series.vc.at(t), 2),
                  fmt_double(on.series.vc.at(t), 2),
                  fmt_double(on.series.freq_hz.at(t) / 1e9, 2),
                  fmt_double(on.series.n_little.at(t), 0),
                  fmt_double(on.series.n_big.at(t), 0)});
  }
  traj.print(std::cout);

  std::printf("\nstatic run    : min VC %.2f V, brownouts %zu\n",
              off.series.vc.min_value(), off.metrics.brownouts);
  std::printf("controlled run: min VC %.2f V, brownouts %zu, "
              "%zu interrupts, %zu hot-plug ops\n",
              on.series.vc.min_value(), on.metrics.brownouts,
              on.controller.interrupts, on.controller.hotplug_steps);
  std::printf(
      "\nshape check (paper Fig. 6): without control VC falls through\n"
      "Vmin = %.1f V during the shadow; with control the OPP collapses\n"
      "(cores drop out, frequency bottoms) and VC never crosses Vmin,\n"
      "then performance is restored as the shadow passes.\n",
      board.v_min);
  return 0;
}
