// Fig. 10 -- "Latency to switch number of active CPU cores using
// hot-plugging (top) and to change the operating frequency (bottom)."
//
// Top: hot-plug latency for each core-count transition 1->2 ... 7->8 at
// 200 MHz, 800 MHz and 1.4 GHz (the f-dependence is the mechanism behind
// Table I). Bottom: DVFS latency for representative down- and
// up-transitions at several active-core counts.
#include <cstdio>
#include <iostream>
#include <vector>

#include "soc/platform.hpp"
#include "util/literals.hpp"
#include "util/table.hpp"

int main() {
  using namespace pns;
  using namespace pns::literals;
  const soc::Platform board = soc::Platform::odroid_xu4();
  const auto& lat = board.latency;

  std::printf("Fig. 10 (top): hot-plug latency (ms) per core transition\n\n");
  // The ladder of configurations 1..8 cores mirrors Fig. 4's ordering:
  // LITTLE cores first, then big cores.
  const std::vector<soc::CoreConfig> ladder = {
      {1, 0}, {2, 0}, {3, 0}, {4, 0}, {4, 1}, {4, 2}, {4, 3}, {4, 4}};
  ConsoleTable top({"transition", "type", "@200 MHz", "@800 MHz",
                    "@1.4 GHz"});
  for (std::size_t i = 0; i + 1 < ladder.size(); ++i) {
    const auto& before = ladder[i];
    const auto& after = ladder[i + 1];
    const auto type = after.n_big > before.n_big ? soc::CoreType::kBig
                                                 : soc::CoreType::kLittle;
    char name[32];
    std::snprintf(name, sizeof name, "%zu -> %zu cores", i + 1, i + 2);
    top.add_row(
        {name, to_string(type),
         fmt_double(lat.hotplug_latency(type, true, 0.2_GHz, before) * 1e3,
                    1),
         fmt_double(lat.hotplug_latency(type, true, 0.8_GHz, before) * 1e3,
                    1),
         fmt_double(lat.hotplug_latency(type, true, 1.4_GHz, before) * 1e3,
                    1)});
  }
  top.print(std::cout);

  std::printf("\nFig. 10 (bottom): DVFS transition latency (ms)\n\n");
  struct Jump {
    double from, to;
    const char* label;
  };
  const std::vector<Jump> jumps = {
      {0.4_GHz, 0.2_GHz, "0.4 -> 0.2 (down)"},
      {1.0_GHz, 0.8_GHz, "1.0 -> 0.8 (down)"},
      {1.4_GHz, 1.2_GHz, "1.4 -> 1.2 (down)"},
      {0.2_GHz, 0.4_GHz, "0.2 -> 0.4 (up)"},
      {0.8_GHz, 1.0_GHz, "0.8 -> 1.0 (up)"},
      {1.2_GHz, 1.4_GHz, "1.2 -> 1.4 (up)"},
  };
  ConsoleTable bottom({"transition (GHz)", "1xA7", "4xA7", "4xA7+1xA15",
                       "4xA7+4xA15"});
  for (const auto& j : jumps) {
    bottom.add_row({j.label,
                    fmt_double(lat.dvfs_latency(j.from, j.to, 1) * 1e3, 2),
                    fmt_double(lat.dvfs_latency(j.from, j.to, 4) * 1e3, 2),
                    fmt_double(lat.dvfs_latency(j.from, j.to, 5) * 1e3, 2),
                    fmt_double(lat.dvfs_latency(j.from, j.to, 8) * 1e3, 2)});
  }
  bottom.print(std::cout);

  std::printf(
      "\nshape check (paper Fig. 10): hot-plugging costs ~30-45 ms at\n"
      "200 MHz but only ~8-12 ms at 1.4 GHz (kernel work runs at the\n"
      "current clock); entering the big cluster (4->5 cores) pays a\n"
      "cluster power-switch surcharge. DVFS costs 1-3 ms, slightly more\n"
      "with more online cores and for up-transitions.\n");
  return 0;
}
