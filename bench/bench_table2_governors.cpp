// Table II -- "Performance of power management schemes in a 60 minute
// test."
//
// Every stock Linux governor plus the proposed power-neutral controller
// runs a 60-minute solar-harvesting test (full sun, all cores online for
// the governors as in stock Linux). Reported per scheme: average
// performance (renders/min), lifetime during the test, and instructions
// completed -- the paper's headline is +69 % instructions vs powersave.
#include <cstdio>
#include <iostream>
#include <vector>

#include "governors/registry.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace pns;
  const soc::Platform board = soc::Platform::odroid_xu4();

  // A late-afternoon hour: the sun is well past zenith, so the margin over
  // the powersave floor is moderate -- the regime the paper's +69 % figure
  // reflects (at peak sun the proposed approach's advantage is far larger).
  sim::SolarScenario scenario;
  scenario.condition = trace::WeatherCondition::kFullSun;
  scenario.t_start = 16.5 * 3600.0;
  scenario.t_end = scenario.t_start + 3600.0;  // 60 minutes
  auto cfg = sim::solar_sim_config(scenario);
  cfg.record_series = false;
  cfg.enable_reboot = false;  // lifetime = time to first brownout

  std::printf("Table II: 60-minute harvesting test per scheme "
              "(full sun)\n\n");

  struct Row {
    std::string name;
    sim::SimMetrics m;
  };
  std::vector<Row> rows;
  for (const char* name :
       {"performance", "ondemand", "interactive", "conservative",
        "powersave"}) {
    const auto r = sim::run_solar_governor(board, scenario, name, cfg);
    rows.push_back({std::string("Linux ") + name, r.metrics});
  }
  const auto proposed = sim::run_solar_power_neutral(board, scenario, cfg);
  rows.push_back({"Proposed Approach", proposed.metrics});

  ConsoleTable table({"power management scheme", "avg perf (renders/min)",
                      "lifetime (mm:ss)", "instructions (billions)"});
  double powersave_instr = 0.0;
  for (const auto& row : rows) {
    if (row.name == "Linux powersave") powersave_instr = row.m.instructions;
    table.add_row({row.name, fmt_double(row.m.renders_per_min(), 4),
                   fmt_mmss(row.m.lifetime_s),
                   fmt_double(row.m.instructions / 1e9, 1)});
  }
  table.print(std::cout);

  if (powersave_instr > 0.0) {
    const double gain =
        (proposed.metrics.instructions / powersave_instr - 1.0) * 100.0;
    std::printf("\nproposed vs powersave: %+.1f %% instructions "
                "(paper: +69.0 %%)\n", gain);
    std::printf(
        "note: this factor scales with the hour's harvest margin over the\n"
        "powersave floor (the paper does not report its test hour's\n"
        "conditions); at peak sun our gain exceeds +350 %%, and in the\n"
        "evening it approaches the paper's value -- the qualitative\n"
        "ordering is invariant.\n");
  }
  std::printf(
      "\nshape check (paper Table II): performance/ondemand/interactive\n"
      "cannot sustain operation (they pin near-max draw that the array\n"
      "cannot supply); conservative ramps up and browns out within\n"
      "seconds; powersave survives the hour at minimum performance; the\n"
      "proposed approach survives the whole hour AND completes the most\n"
      "instructions by consuming exactly what is harvestable.\n");
  return 0;
}
