// Table II -- "Performance of power management schemes in a 60 minute
// test."
//
// Every stock Linux governor plus the proposed power-neutral controller
// runs a 60-minute solar-harvesting test (full sun, all cores online for
// the governors as in stock Linux). Reported per scheme: average
// performance (renders/min), lifetime during the test, and instructions
// completed -- the paper's headline is +69 % instructions vs powersave.
//
// The scheme loop is a declarative sweep executed by sweep::SweepRunner
// across all available cores; the rows come back in spec order.
#include <cstdio>
#include <iostream>
#include <vector>

#include "sweep/presets.hpp"
#include "sweep/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace pns;

  // A late-afternoon hour (see sweep::table2_sweep): the sun is well past
  // zenith, so the margin over the powersave floor is moderate -- the
  // regime the paper's +69 % figure reflects (at peak sun the proposed
  // approach's advantage is far larger).
  const sweep::SweepSpec sw = sweep::table2_sweep();

  std::printf("Table II: 60-minute harvesting test per scheme "
              "(full sun)\n\n");

  const auto outcomes = sweep::SweepRunner().run(sw);

  ConsoleTable table({"power management scheme", "avg perf (renders/min)",
                      "lifetime (mm:ss)", "instructions (billions)"});
  double powersave_instr = 0.0;
  double proposed_instr = 0.0;
  for (const auto& o : outcomes) {
    if (!o.ok) {
      std::fprintf(stderr, "scenario %s failed: %s\n", o.spec.label.c_str(),
                   o.error.c_str());
      return 1;
    }
    const bool is_proposed = o.spec.control.kind == "pns";
    const std::string name = is_proposed
                                 ? "Proposed Approach"
                                 : "Linux " + o.spec.control.governor_name();
    const auto& m = o.result.metrics;
    if (o.spec.control.governor_name() == "powersave")
      powersave_instr = m.instructions;
    if (is_proposed) proposed_instr = m.instructions;
    table.add_row({name, fmt_double(m.renders_per_min(), 4),
                   fmt_mmss(m.lifetime_s),
                   fmt_double(m.instructions / 1e9, 1)});
  }
  table.print(std::cout);

  if (powersave_instr > 0.0) {
    const double gain = (proposed_instr / powersave_instr - 1.0) * 100.0;
    std::printf("\nproposed vs powersave: %+.1f %% instructions "
                "(paper: +69.0 %%)\n", gain);
    std::printf(
        "note: this factor scales with the hour's harvest margin over the\n"
        "powersave floor (the paper does not report its test hour's\n"
        "conditions); at peak sun our gain exceeds +350 %%, and in the\n"
        "evening it approaches the paper's value -- the qualitative\n"
        "ordering is invariant.\n");
  }
  std::printf(
      "\nshape check (paper Table II): performance/ondemand/interactive\n"
      "cannot sustain operation (they pin near-max draw that the array\n"
      "cannot supply); conservative ramps up and browns out within\n"
      "seconds; powersave survives the hour at minimum performance; the\n"
      "proposed approach survives the whole hour AND completes the most\n"
      "instructions by consuming exactly what is harvestable.\n");
  return 0;
}
