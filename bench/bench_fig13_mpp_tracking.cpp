// Fig. 13 -- "IV characteristics of the PV array and the proportion of
// time spent at each operating voltage."
//
// Left axes of the paper's figure: the array's I-V and P-V curves. Bars:
// the dwell-time histogram of the node voltage from a full-sun run. The
// claim: the controller makes the system dwell at/near the MPP voltage,
// obviating dedicated MPPT hardware.
#include <cstdio>
#include <iostream>

#include "sim/experiment.hpp"
#include "util/histogram.hpp"
#include "util/table.hpp"

int main() {
  using namespace pns;
  const soc::Platform board = soc::Platform::odroid_xu4();
  const auto cell = sim::paper_pv_array();

  std::printf("Fig. 13: PV array IV/PV characteristics (full sun)\n\n");
  ConsoleTable iv({"V (V)", "I (A)", "P (W)"});
  for (double v = 0.0; v <= 7.0; v += 0.5) {
    iv.add_row({fmt_double(v, 1), fmt_double(cell.current(v, 1000.0), 3),
                fmt_double(cell.power(v, 1000.0), 3)});
  }
  iv.print(std::cout);
  const auto mpp = cell.mpp(1000.0);
  std::printf("\nMPP: %.2f W at %.2f V (paper: ~5.4 W at 5.3 V); "
              "Isc %.2f A, Voc %.2f V\n\n",
              mpp.power, mpp.voltage, cell.short_circuit_current(1000.0),
              cell.open_circuit_voltage(1000.0));

  // Dwell-time histogram from a 3-hour full-sun controlled run.
  sim::SolarScenario scenario;
  scenario.condition = trace::WeatherCondition::kFullSun;
  scenario.t_start = 11.0 * 3600.0;
  scenario.t_end = 14.0 * 3600.0;
  auto cfg = sim::solar_sim_config(scenario);
  cfg.record_series = false;
  const auto r = sim::run_solar_power_neutral(board, scenario, cfg);

  std::printf("time spent at each operating voltage (3 h full sun):\n\n");
  // Re-bin the engine's 50 mV histogram into the 4.0-6.0 V window.
  Histogram zoom(4.0, 6.0, 20);
  for (std::size_t i = 0; i < r.voltage_histogram.bin_count(); ++i) {
    const double c = r.voltage_histogram.bin_center(i);
    zoom.add_weighted(c, r.voltage_histogram.weight(i));
  }
  std::cout << zoom.to_string(44);

  const double modal = zoom.bin_center(zoom.mode_bin());
  std::printf("\nmodal operating voltage: %.2f V vs MPP %.2f V "
              "(|delta| = %.0f mV)\n",
              modal, mpp.voltage, std::abs(modal - mpp.voltage) * 1e3);
  std::printf(
      "\nshape check: the dwell histogram concentrates in a narrow band\n"
      "around the MPP voltage -- emergent maximum-power-point tracking\n"
      "with no MPPT converter in the power path.\n");
  return 0;
}
