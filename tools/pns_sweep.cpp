// pns_sweep -- batch scenario-sweep driver.
//
// Runs a built-in named sweep (the paper's headline experiment families)
// across a thread pool and prints the aggregate table, optionally dumping
// CSV/JSON for downstream analysis:
//
//   pns_sweep table2                # Table II: schemes x seeds
//   pns_sweep capacitance           # Table I-style: buffer sizes x weather
//   pns_sweep fig6 --threads 4      # Fig. 6: shadow depths x {static,pns}
//   pns_sweep weather --json out.json --csv out.csv
//
// Sweep outputs are bit-identical across thread counts (verified by
// tests/sweep/test_sweep.cpp), so --threads only changes wall-clock.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "ehsim/sources.hpp"
#include "sweep/aggregate.hpp"
#include "sweep/presets.hpp"
#include "sweep/runner.hpp"
#include "sweep/scenario.hpp"

namespace {

using namespace pns;

struct Options {
  std::string sweep_name;
  unsigned threads = 0;  // 0 = hardware_concurrency
  double minutes = 60.0;
  std::string csv_path;
  std::string json_path;
  bool quiet = false;
  ehsim::PvSource::Mode pv_mode = ehsim::PvSource::Mode::kExact;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s <sweep> [options]\n"
      "\n"
      "sweeps:\n"
      "  table2       power-management schemes x 3 seeds (18 scenarios)\n"
      "  capacitance  buffer sizes x weather, PNS controller\n"
      "  fig6         shadowing depths x {static, controlled}\n"
      "  weather      weather conditions x control schemes\n"
      "\n"
      "options:\n"
      "  --threads N   worker threads (default: hardware concurrency)\n"
      "  --minutes M   simulated window length where applicable "
      "(default 60)\n"
      "  --csv PATH    write the aggregate rows as CSV\n"
      "  --json PATH   write the aggregate rows as JSON\n"
      "  --pv-mode M   PV solve mode: exact (default, bit-reproducible)\n"
      "                or tabulated (interpolation table with a measured\n"
      "                error bound, ~3x faster sweep wall-clock)\n"
      "  --quiet       suppress per-scenario progress\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  Options opt;
  opt.sweep_name = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads")
      opt.threads = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--minutes")
      opt.minutes = std::atof(next());
    else if (arg == "--csv")
      opt.csv_path = next();
    else if (arg == "--json")
      opt.json_path = next();
    else if (arg == "--pv-mode") {
      const std::string mode = next();
      if (mode == "exact") {
        opt.pv_mode = ehsim::PvSource::Mode::kExact;
      } else if (mode == "tabulated") {
        opt.pv_mode = ehsim::PvSource::Mode::kTabulated;
      } else {
        std::fprintf(stderr, "unknown --pv-mode: %s\n", mode.c_str());
        return 2;
      }
    } else if (arg == "--quiet")
      opt.quiet = true;
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  sweep::SweepSpec sw;
  if (opt.sweep_name == "table2")
    sw = sweep::table2_sweep(opt.minutes, {42, 43, 44});
  else if (opt.sweep_name == "capacitance")
    sw = sweep::capacitance_sweep(opt.minutes);
  else if (opt.sweep_name == "fig6")
    sw = sweep::fig6_depth_sweep();
  else if (opt.sweep_name == "weather")
    sw = sweep::weather_sweep(opt.minutes);
  else {
    std::fprintf(stderr, "unknown sweep: %s\n", opt.sweep_name.c_str());
    usage(argv[0]);
    return 2;
  }

  sw.base.pv_mode = opt.pv_mode;

  const auto specs = sw.expand();
  sweep::SweepRunnerOptions ropt;
  ropt.threads = opt.threads;
  if (!opt.quiet) {
    ropt.progress = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\r[%zu/%zu]", done, total);
      if (done == total) std::fprintf(stderr, "\n");
    };
  }
  sweep::SweepRunner runner(ropt);

  std::printf("sweep '%s': %zu scenarios on %u thread(s)\n\n",
              opt.sweep_name.c_str(), specs.size(),
              runner.effective_threads(specs.size()));
  const auto t0 = std::chrono::steady_clock::now();
  const auto outcomes = runner.run(specs);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  sweep::Aggregator agg(outcomes);
  agg.console_table().print(std::cout);
  std::printf("\n%zu scenarios in %.2f s (%.2f scenarios/s), %zu failed\n",
              outcomes.size(), wall,
              wall > 0.0 ? outcomes.size() / wall : 0.0,
              agg.failed_count());

  bool write_failed = false;
  if (!opt.csv_path.empty()) {
    if (agg.write_csv_file(opt.csv_path)) {
      std::printf("wrote %s\n", opt.csv_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", opt.csv_path.c_str());
      write_failed = true;
    }
  }
  if (!opt.json_path.empty()) {
    if (agg.write_json_file(opt.json_path)) {
      std::printf("wrote %s\n", opt.json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      write_failed = true;
    }
  }
  return agg.failed_count() == 0 && !write_failed ? 0 : 1;
}
