// pns_sweep -- batch scenario-sweep driver.
//
// Runs a built-in named sweep (the paper's headline experiment families)
// across a thread pool and prints the aggregate table, optionally dumping
// CSV/JSON for downstream analysis:
//
//   pns_sweep table2                # Table II: schemes x seeds
//   pns_sweep capacitance           # Table I-style: buffer sizes x weather
//   pns_sweep fig6 --threads 4      # Fig. 6: shadow depths x {static,pns}
//   pns_sweep weather --json out.json --csv out.csv
//
// Control and source selection are open, registry-driven axes addressed
// by spec strings (docs/sweeps.md documents the grammar; `pns_sweep list`
// prints every registered kind and its parameters):
//
//   pns_sweep table2 --control pns --control gov:ondemand:period=0.05
//   pns_sweep quick --source flicker:period=30,depth=0.5
//   pns_sweep quick --source trace:file=day.csv
//
// Production-sweep features (docs/sweeps.md has the full workflow):
//
//   pns_sweep table2 --journal t2.jsonl            # checkpoint every row
//   pns_sweep table2 --journal t2.jsonl --resume   # continue after a kill
//   pns_sweep table2 --shard 0/4 --journal p0.jsonl  # 1 of 4 workers
//   pns_sweep merge --csv out.csv p0.jsonl p1.jsonl p2.jsonl p3.jsonl
//   pns_sweep capacitance --refine --refine-metric brownouts
//
// Against a running `pns_sweepd` daemon (docs/sweepd.md), the same binary
// is the worker and the client:
//
//   pns_sweep worker --connect tcp:host:7654       # pull + execute leases
//   pns_sweep submit table2 --connect tcp:host:7654
//   pns_sweep status --connect tcp:host:7654
//   pns_sweep results job-1 --connect tcp:host:7654 --csv out.csv
//
// Distributed results are byte-identical to a local run of the same
// sweep (tests/sweepd/ and the CI smoke job enforce this).
//
// Sweep outputs are bit-identical across thread counts, interruptions and
// shard counts (verified by tests/sweep/), so --threads/--shard/--resume
// only change wall-clock and durability, never the published aggregate.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ehsim/sources.hpp"
#include "sweep/aggregate.hpp"
#include "sweep/journal.hpp"
#include "sweep/presets.hpp"
#include "sweep/refine.hpp"
#include "sweep/registry.hpp"
#include "sweep/runner.hpp"
#include "sweep/scenario.hpp"
#include "sweepd/client.hpp"
#include "sweepd/worker.hpp"
#include "util/json.hpp"
#include "util/params.hpp"
#include "util/socket.hpp"

namespace {

using namespace pns;

struct Options {
  std::string sweep_name;
  unsigned threads = 0;  // 0 = hardware_concurrency
  double minutes = 60.0;
  std::string csv_path;
  std::string json_path;
  bool quiet = false;
  ehsim::PvSource::Mode pv_mode = ehsim::PvSource::Mode::kExact;

  // Control/source overrides (spec strings, repeatable -> axes).
  std::vector<sweep::ControlSpec> controls;
  std::vector<sweep::SourceSpec> sources;

  // Integration engine (whole-sweep knob, like --pv-mode).
  sweep::IntegratorSpec integrator;

  // Platform topology (whole-sweep knob, like --pv-mode).
  sweep::PlatformSpec platform;

  // Checkpointing / sharding.
  std::string journal_path;
  bool resume = false;
  bool sharded = false;
  std::size_t shard_k = 0;
  std::size_t shard_n = 1;
  /// Prior journal whose measured wall_s entries balance the shards.
  std::string cost_journal_path;
  /// `compact --out`: compacted journal destination (default: in place).
  std::string out_path;

  // Adaptive refinement.
  bool refine = false;
  sweep::RefineOptions refine_options;

  // Daemon mode (worker/submit/status/results/watch/shutdown).
  std::string connect;  ///< daemon endpoint spec string
  bool once = false;    ///< worker: exit when the work runs dry
  std::string fault_spec;   ///< worker: --fault chaos injection spec
  long max_reconnects = -1; ///< worker: -1 = library default
  /// fsync journal appends (sweep runs) so acknowledged rows survive a
  /// machine crash; a disk round-trip per row.
  bool fsync = false;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s <sweep> [options]\n"
      "       %s list\n"
      "       %s merge [--csv PATH] [--json PATH] [--journal PATH] "
      "[--quiet] JOURNAL...\n"
      "       %s compact [--out PATH] JOURNAL\n"
      "       %s worker --connect EP [--threads N] [--once]\n"
      "                 [--fault SPEC] [--max-reconnects N]\n"
      "       %s submit <sweep> --connect EP [sweep options]\n"
      "       %s status [JOB] --connect EP\n"
      "       %s results JOB --connect EP [--csv/--json/--journal PATH]\n"
      "       %s watch JOB --connect EP\n"
      "       %s shutdown --connect EP\n"
      "\n"
      "sweeps:\n",
      argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0,
      argv0);
  for (const auto& p : sweep::sweep_presets())
    std::printf("  %-12s %s\n", p.name.c_str(), p.summary.c_str());
  std::printf(
      "\n"
      "options:\n"
      "  --control S   replace the sweep's control axis with spec string S\n"
      "                (repeatable; e.g. pns:v_q=0.04, gov:ondemand:"
      "period=0.05,\n"
      "                static:opp=4 -- 'list' prints every kind)\n"
      "  --source S    replace the sweep's source axis with spec string S\n"
      "                (repeatable; e.g. shadow:depth=0.2, trace:file=x.csv,"
      "\n"
      "                flicker:period=30,depth=0.5)\n"
      "  --threads N   worker threads (default: hardware concurrency)\n"
      "  --minutes M   simulated window length where applicable "
      "(default 60)\n"
      "  --csv PATH    write the aggregate rows as CSV\n"
      "  --json PATH   write the aggregate rows as JSON\n"
      "  --pv-mode M   PV solve mode: exact (default, bit-reproducible)\n"
      "                or tabulated (interpolation table with a measured\n"
      "                error bound, ~3x faster sweep wall-clock)\n"
      "  --integrator S  integration engine spec string: rk23 (default,\n"
      "                bit-reproducible), rk23pi[:rtol=...,coast=...]\n"
      "                (PI step control + dense events + coasting, ~2x\n"
      "                faster), or rk23batch[:width=...] (rk23pi in\n"
      "                lockstep batches, bit-identical to rk23pi at\n"
      "                every width; docs/performance.md has the grammar)\n"
      "  --platform S  platform topology spec string: mono (default,\n"
      "                the paper's single-domain board) or a multi-domain\n"
      "                kind such as biglittle[:little_cores=4,big_cores=4,\n"
      "                arbiter=demand] (docs/platforms.md has the grammar)\n"
      "  --journal P   append each completed scenario to the checkpoint\n"
      "                journal at P (JSON lines; see docs/sweeps.md);\n"
      "                with merge/results: write the canonical journal\n"
      "                (index order, no timing) of the full row set to P\n"
      "  --fsync       fsync the journal after every append, so rows\n"
      "                survive a machine crash (requires --journal)\n"
      "  --resume      reuse completed rows from an existing --journal\n"
      "                instead of refusing to overwrite it\n"
      "  --shard K/N   run only the K-th (0-based) of N contiguous spec\n"
      "                ranges; requires --journal, fold partial journals\n"
      "                with the merge subcommand\n"
      "  --cost-journal P  balance --shard K/N by the measured wall_s\n"
      "                entries of the prior journal at P (same sweep)\n"
      "                instead of contiguous index ranges\n"
      "  --refine      after the pass, bisect capacitance intervals whose\n"
      "                adjacent rows diverge (adaptive axis refinement)\n"
      "  --refine-metric M  aggregate column compared (default brownouts)\n"
      "  --refine-tol T     relative divergence threshold (default 0.25)\n"
      "  --refine-depth D   maximum bisection rounds (default 3)\n"
      "  --quiet       suppress per-scenario progress\n"
      "\n"
      "daemon mode (`pns_sweepd`; docs/sweepd.md):\n"
      "  --connect EP  daemon endpoint: unix:PATH, tcp:HOST:PORT or\n"
      "                tcp:PORT (required by worker/submit/status/\n"
      "                results/watch/shutdown)\n"
      "  --once        worker: exit once every job is complete instead\n"
      "                of polling for future submissions\n"
      "  --fault SPEC  worker: deterministic fault injection on the daemon\n"
      "                connection (docs/fault-injection.md), e.g.\n"
      "                fault:seed=7,conn_drop=0.05,short_write=0.1\n"
      "  --max-reconnects N  worker: reconnect attempts before giving up\n"
      "                (default 8; 0 = die on the first disconnect)\n");
}

void list_sweeps(std::FILE* os) {
  std::fprintf(os, "valid sweeps:");
  for (const auto& p : sweep::sweep_presets())
    std::fprintf(os, " %s", p.name.c_str());
  std::fprintf(os, " (or the 'list'/'merge' subcommands)\n");
}

void print_params(const std::vector<ParamInfo>& params) {
  for (const auto& p : params) {
    std::string key = p.key + "=<" + p.type + ">";
    std::printf("      %-28s %s", key.c_str(), p.help.c_str());
    if (!p.default_value.empty())
      std::printf(" (default %s)", p.default_value.c_str());
    std::printf("\n");
  }
}

/// The `list` subcommand: every registered control/source kind, its
/// accepted parameters and the sweep presets -- generated from the
/// registries, so it cannot go stale.
int run_list() {
  std::printf("controls (--control KIND[:key=value,...]):\n");
  for (const auto& e : sweep::ControlRegistry::instance().entries()) {
    std::printf("  %-16s %s\n", e.kind.c_str(), e.summary.c_str());
    print_params(e.params);
  }
  std::printf("\nsources (--source KIND[:key=value,...]):\n");
  for (const auto& e : sweep::SourceRegistry::instance().entries()) {
    std::printf("  %-16s %s\n", e.kind.c_str(), e.summary.c_str());
    print_params(e.params);
  }
  std::printf("\nintegrators (--integrator KIND[:key=value,...]):\n");
  const std::string default_integrator = sweep::IntegratorSpec{}.kind;
  for (const auto& e : sweep::IntegratorRegistry::instance().entries()) {
    const bool is_default = e.kind == default_integrator;
    std::printf("  %-16s %s%s\n", e.kind.c_str(), e.summary.c_str(),
                is_default ? " (default)" : "");
    print_params(e.params);
  }
  std::printf("\nplatforms (--platform KIND[:key=value,...]):\n");
  const std::string default_platform = sweep::PlatformSpec{}.kind;
  for (const auto& e : sweep::PlatformRegistry::instance().entries()) {
    const bool is_default = e.kind == default_platform;
    std::printf("  %-16s %s%s\n", e.kind.c_str(), e.summary.c_str(),
                is_default ? " (default)" : "");
    print_params(e.params);
  }
  std::printf("\nsweep presets:\n");
  for (const auto& p : sweep::sweep_presets())
    std::printf("  %-16s %s\n", p.name.c_str(), p.summary.c_str());
  std::printf("\nrefine metrics (--refine-metric):");
  for (const auto& name : sweep::refine_metric_names())
    std::printf(" %s", name.c_str());
  std::printf("\n");
  return 0;
}

/// Writes CSV/JSON side outputs; returns false when any write failed.
bool write_outputs(const sweep::Aggregator& agg, const Options& opt) {
  bool ok = true;
  if (!opt.csv_path.empty()) {
    if (agg.write_csv_file(opt.csv_path)) {
      std::printf("wrote %s\n", opt.csv_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", opt.csv_path.c_str());
      ok = false;
    }
  }
  if (!opt.json_path.empty()) {
    if (agg.write_json_file(opt.json_path)) {
      std::printf("wrote %s\n", opt.json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      ok = false;
    }
  }
  return ok;
}

/// Folds shard journals back into the canonical aggregate.
int run_merge(const std::vector<std::string>& journals, const Options& opt) {
  if (journals.empty()) {
    std::fprintf(stderr, "merge: no journal files given\n");
    return 2;
  }
  try {
    sweep::JournalContents first = sweep::read_journal(journals[0]);
    std::map<std::size_t, sweep::SummaryRow> rows = std::move(first.rows);
    for (std::size_t i = 1; i < journals.size(); ++i) {
      sweep::JournalContents part =
          sweep::read_journal(journals[i], first.header);
      // insert (not assign): on an index collision the earlier journal
      // wins, but completed rows of a deterministic sweep are identical
      // anyway.
      rows.insert(part.rows.begin(), part.rows.end());
    }
    if (rows.size() != first.header.total) {
      std::fprintf(stderr,
                   "merge: journals cover %zu of %zu scenarios of sweep "
                   "'%s' -- missing shards or an interrupted worker\n",
                   rows.size(), first.header.total,
                   first.header.sweep.c_str());
      return 1;
    }
    // --journal: the canonical (index-ordered, timing-free) journal of
    // the merged sweep -- the byte-comparable form shared with
    // `pns_sweep results --journal` (docs/sweepd.md).
    if (!opt.journal_path.empty())
      sweep::write_canonical_journal(opt.journal_path, first.header, rows);

    std::vector<sweep::SummaryRow> ordered;
    ordered.reserve(rows.size());
    for (auto& [index, row] : rows) ordered.push_back(std::move(row));

    sweep::Aggregator agg(std::move(ordered));
    if (!opt.quiet) {
      std::printf("merged %zu journal(s): sweep '%s', %zu scenarios\n\n",
                  journals.size(), first.header.sweep.c_str(),
                  first.header.total);
      agg.console_table().print(std::cout);
      std::printf("\n");
    }
    if (!opt.journal_path.empty())
      std::printf("wrote %s\n", opt.journal_path.c_str());
    const bool wrote = write_outputs(agg, opt);
    return agg.failed_count() == 0 && wrote ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "merge: %s\n", e.what());
    return 1;
  }
}

/// The `compact` subcommand: rewrites a journal as header + one
/// aggregate rows block (sweep::compact_journal).
int run_compact(const std::vector<std::string>& journals,
                const Options& opt) {
  if (journals.size() != 1) {
    std::fprintf(stderr, "compact: expected exactly one journal file\n");
    return 2;
  }
  const std::string& in = journals[0];
  const std::string out = opt.out_path.empty() ? in : opt.out_path;
  try {
    const std::size_t rows = sweep::compact_journal(in, out);
    if (!opt.quiet)
      std::printf("compacted %s -> %s (%zu rows)\n", in.c_str(),
                  out.c_str(), rows);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "compact: %s\n", e.what());
    return 1;
  }
}

/// Parses --connect (required for every daemon-mode subcommand).
/// Exits with usage guidance when missing or malformed.
net::Endpoint daemon_endpoint(const Options& opt, const char* subcommand) {
  if (opt.connect.empty()) {
    std::fprintf(stderr,
                 "%s requires --connect (unix:PATH, tcp:HOST:PORT or "
                 "tcp:PORT)\n",
                 subcommand);
    std::exit(2);
  }
  try {
    return net::Endpoint::parse(opt.connect);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "invalid --connect '%s': %s\n",
                 opt.connect.c_str(), e.what());
    std::exit(2);
  }
}

/// The sweep selection of a `submit`, as a daemon JobSpec.
sweepd::JobSpec job_spec_from(const Options& opt) {
  sweepd::JobSpec spec;
  spec.preset = opt.sweep_name;
  spec.minutes = opt.minutes;
  spec.pv_mode = opt.pv_mode;
  spec.controls = opt.controls;
  spec.sources = opt.sources;
  spec.integrator = opt.integrator;
  spec.platform = opt.platform;
  return spec;
}

/// `worker --connect EP`: pull and execute leases until the daemon says
/// goodbye (or, with --once, until the work runs dry).
int run_worker_cmd(const Options& opt) {
  sweepd::WorkerOptions wopt;
  wopt.endpoint = daemon_endpoint(opt, "worker");
  wopt.threads = opt.threads;
  wopt.once = opt.once;
  if (opt.max_reconnects >= 0)
    wopt.max_reconnects = static_cast<std::size_t>(opt.max_reconnects);
  if (!opt.fault_spec.empty()) {
    try {
      wopt.fault = fault::make_injector(opt.fault_spec);
      // The same seed also drives the backoff jitter, so a whole chaos
      // session is reproducible from one number.
      wopt.backoff_seed = fault::FaultSpec::parse(opt.fault_spec).seed;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "invalid --fault '%s': %s\n",
                   opt.fault_spec.c_str(), e.what());
      return 2;
    }
  }
  if (!opt.quiet) {
    wopt.log = [](const std::string& line) {
      std::fprintf(stderr, "worker: %s\n", line.c_str());
    };
  }
  try {
    const sweepd::WorkerReport report = sweepd::run_worker(wopt);
    std::printf(
        "worker: %zu lease(s), %zu row(s), %zu failed, %zu reconnect(s)\n",
        report.leases, report.rows, report.failed, report.reconnects);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "worker: %s\n", e.what());
    return 1;
  }
}

/// `submit <sweep> --connect EP [sweep options]`.
int run_submit(const Options& opt,
               const std::vector<std::string>& positional) {
  if (positional.size() != 1) {
    std::fprintf(stderr, "submit: expected exactly one sweep name\n");
    list_sweeps(stderr);
    return 2;
  }
  Options sub = opt;
  sub.sweep_name = positional[0];
  try {
    const sweepd::SubmitResult result = sweepd::submit_job(
        daemon_endpoint(opt, "submit"), job_spec_from(sub));
    std::printf("submitted %s: '%s', %zu scenarios\n", result.job.c_str(),
                result.identity.c_str(), result.total);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "submit: %s\n", e.what());
    return 1;
  }
}

/// `status [JOB] --connect EP`.
int run_status_cmd(const Options& opt,
                   const std::vector<std::string>& positional) {
  if (positional.size() > 1) {
    std::fprintf(stderr, "status: expected at most one job id\n");
    return 2;
  }
  try {
    const sweepd::StatusReport report = sweepd::fetch_status(
        daemon_endpoint(opt, "status"),
        positional.empty() ? "" : positional[0]);
    std::printf("%zu worker(s) connected, %zu job(s)%s\n", report.workers,
                report.jobs.size(),
                report.degraded ? "  [DEGRADED: leasing paused]" : "");
    if (report.degraded && !report.degraded_reason.empty())
      std::printf("  degraded: %s\n", report.degraded_reason.c_str());
    for (const auto& w : report.worker_info) {
      std::printf(
          "  worker %-3zu %u thread(s), %zu lease(s) held, %zu row(s), "
          "%zu duplicate(s), %zu retry(ies), last seen %.1fs ago\n",
          w.worker, w.threads, w.leases, w.rows, w.duplicates, w.retries,
          w.last_seen_s);
    }
    for (const auto& j : report.jobs) {
      std::printf(
          "  %-8s %4zu/%-4zu done, %zu pending, %zu leased, %zu failed, "
          "%zu duplicate(s)%s  [%s]\n",
          j.job.c_str(), j.done, j.total, j.pending, j.leased, j.failed,
          j.duplicates, j.complete ? ", complete" : "",
          j.identity.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "status: %s\n", e.what());
    return 1;
  }
}

/// `results JOB --connect EP [--csv/--json/--journal PATH]`: fetch the
/// job's rows and publish them exactly like a local run would.
int run_results_cmd(const Options& opt,
                    const std::vector<std::string>& positional) {
  if (positional.size() != 1) {
    std::fprintf(stderr, "results: expected exactly one job id\n");
    return 2;
  }
  try {
    const sweepd::ResultsReport report = sweepd::fetch_results(
        daemon_endpoint(opt, "results"), positional[0]);
    const bool wants_files = !opt.csv_path.empty() ||
                             !opt.json_path.empty() ||
                             !opt.journal_path.empty();
    if (!report.complete && wants_files) {
      // Publishing a partial aggregate would silently break the
      // byte-identity contract with the local run.
      std::fprintf(stderr,
                   "results: %s has %zu of %zu rows; wait for completion "
                   "before writing --csv/--json/--journal\n",
                   report.job.c_str(), report.rows.size(), report.total);
      return 1;
    }
    if (!opt.journal_path.empty())
      sweep::write_canonical_journal(
          opt.journal_path,
          sweep::JournalHeader{report.identity, report.total},
          report.rows);
    std::vector<sweep::SummaryRow> ordered;
    ordered.reserve(report.rows.size());
    for (const auto& [index, row] : report.rows) ordered.push_back(row);
    sweep::Aggregator agg(std::move(ordered));
    if (!opt.quiet) {
      std::printf("%s: sweep '%s', %zu/%zu rows%s\n\n", report.job.c_str(),
                  report.identity.c_str(), report.rows.size(),
                  report.total, report.complete ? "" : " (incomplete)");
      agg.console_table().print(std::cout);
      std::printf("\n");
    }
    if (!opt.journal_path.empty())
      std::printf("wrote %s\n", opt.journal_path.c_str());
    const bool wrote = write_outputs(agg, opt);
    return report.complete && report.failed == 0 && wrote ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "results: %s\n", e.what());
    return 1;
  }
}

/// `watch JOB --connect EP`: subscribe and print each row as it lands.
int run_watch_cmd(const Options& opt,
                  const std::vector<std::string>& positional) {
  if (positional.size() != 1) {
    std::fprintf(stderr, "watch: expected exactly one job id\n");
    return 2;
  }
  try {
    std::size_t seen = 0;
    const std::size_t failed = sweepd::watch_job(
        daemon_endpoint(opt, "watch"), positional[0],
        [&](std::size_t index, const sweep::SummaryRow& row) {
          ++seen;
          if (!opt.quiet)
            std::printf("row %4zu  %-40s %s\n", index, row.label.c_str(),
                        row.ok ? "ok" : row.error.c_str());
        });
    std::printf("%s complete: %zu row(s) streamed, %zu failed\n",
                positional[0].c_str(), seen, failed);
    return failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "watch: %s\n", e.what());
    return 1;
  }
}

/// `shutdown --connect EP`.
int run_shutdown_cmd(const Options& opt) {
  try {
    sweepd::shutdown_daemon(daemon_endpoint(opt, "shutdown"));
    std::printf("daemon shut down\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shutdown: %s\n", e.what());
    return 1;
  }
}

bool parse_shard(const std::string& text, Options& opt) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 ||
      slash + 1 >= text.size())
    return false;
  // Named locals: the *end checks must not outlive the strings they
  // point into.
  const std::string k_text = text.substr(0, slash);
  const std::string n_text = text.substr(slash + 1);
  char* end = nullptr;
  const unsigned long long k = std::strtoull(k_text.c_str(), &end, 10);
  if (end != k_text.c_str() + k_text.size()) return false;
  const unsigned long long n = std::strtoull(n_text.c_str(), &end, 10);
  if (end != n_text.c_str() + n_text.size()) return false;
  if (n == 0 || k >= n) return false;
  opt.sharded = true;
  opt.shard_k = static_cast<std::size_t>(k);
  opt.shard_n = static_cast<std::size_t>(n);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  if (std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0) {
    usage(argv[0]);
    return 0;
  }
  Options opt;
  opt.sweep_name = argv[1];

  if (opt.sweep_name == "list") return run_list();

  const bool merging = opt.sweep_name == "merge";
  const bool compacting = opt.sweep_name == "compact";
  // Daemon-mode subcommands (docs/sweepd.md): positionals are job ids or
  // (for submit) the sweep name.
  const bool daemon_cmd =
      opt.sweep_name == "worker" || opt.sweep_name == "submit" ||
      opt.sweep_name == "status" || opt.sweep_name == "results" ||
      opt.sweep_name == "watch" || opt.sweep_name == "shutdown";
  std::vector<std::string> positional_journals;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--control" || arg == "--source" || arg == "--integrator" ||
        arg == "--platform") {
      // Spec strings are validated against the registries up front so a
      // typo fails in milliseconds, not after the sweep ran.
      const std::string spec = next();
      try {
        if (arg == "--control")
          opt.controls.push_back(sweep::ControlSpec::parse(spec));
        else if (arg == "--source")
          opt.sources.push_back(sweep::SourceSpec::parse(spec));
        else if (arg == "--integrator")
          opt.integrator = sweep::IntegratorSpec::parse(spec);
        else
          opt.platform = sweep::PlatformSpec::parse(spec);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "invalid %s '%s': %s\n", arg.c_str(),
                     spec.c_str(), e.what());
        std::fprintf(stderr,
                     "run '%s list' for every registered kind and its "
                     "parameters\n",
                     argv[0]);
        return 2;
      }
    } else if (arg == "--threads")
      opt.threads = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--minutes")
      opt.minutes = std::atof(next());
    else if (arg == "--csv")
      opt.csv_path = next();
    else if (arg == "--json")
      opt.json_path = next();
    else if (arg == "--pv-mode") {
      const std::string mode = next();
      if (mode == "exact") {
        opt.pv_mode = ehsim::PvSource::Mode::kExact;
      } else if (mode == "tabulated") {
        opt.pv_mode = ehsim::PvSource::Mode::kTabulated;
      } else {
        std::fprintf(stderr,
                     "unknown --pv-mode: %s (valid: exact, tabulated)\n",
                     mode.c_str());
        return 2;
      }
    } else if (arg == "--journal")
      opt.journal_path = next();
    else if (arg == "--cost-journal")
      opt.cost_journal_path = next();
    else if (arg == "--out")
      opt.out_path = next();
    else if (arg == "--resume")
      opt.resume = true;
    else if (arg == "--shard") {
      const std::string spec = next();
      if (!parse_shard(spec, opt)) {
        std::fprintf(stderr,
                     "invalid --shard '%s': expected K/N with 0 <= K < N "
                     "(e.g. --shard 0/4)\n",
                     spec.c_str());
        return 2;
      }
    } else if (arg == "--refine")
      opt.refine = true;
    else if (arg == "--refine-metric")
      opt.refine_options.metric = next();
    else if (arg == "--refine-tol")
      opt.refine_options.tolerance = std::atof(next());
    else if (arg == "--refine-depth")
      opt.refine_options.max_depth = std::atoi(next());
    else if (arg == "--quiet")
      opt.quiet = true;
    else if (arg == "--connect")
      opt.connect = next();
    else if (arg == "--once")
      opt.once = true;
    else if (arg == "--fault")
      opt.fault_spec = next();
    else if (arg == "--max-reconnects")
      opt.max_reconnects = std::atol(next());
    else if (arg == "--fsync")
      opt.fsync = true;
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if ((merging || compacting || daemon_cmd) &&
               arg.rfind("--", 0) != 0) {
      positional_journals.push_back(arg);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (!compacting && !opt.out_path.empty()) {
    std::fprintf(stderr, "--out only applies to the compact subcommand\n");
    return 2;
  }
  if (!daemon_cmd && !opt.connect.empty()) {
    std::fprintf(stderr,
                 "--connect only applies to the worker/submit/status/"
                 "results/watch/shutdown subcommands\n");
    return 2;
  }
  if (daemon_cmd) {
    if (opt.sweep_name == "worker") return run_worker_cmd(opt);
    if (opt.sweep_name == "submit")
      return run_submit(opt, positional_journals);
    if (opt.sweep_name == "status")
      return run_status_cmd(opt, positional_journals);
    if (opt.sweep_name == "results")
      return run_results_cmd(opt, positional_journals);
    if (opt.sweep_name == "watch")
      return run_watch_cmd(opt, positional_journals);
    return run_shutdown_cmd(opt);
  }
  if (merging) return run_merge(positional_journals, opt);
  if (compacting) return run_compact(positional_journals, opt);
  if (opt.fsync && opt.journal_path.empty()) {
    std::fprintf(stderr, "--fsync requires --journal\n");
    return 2;
  }

  const sweep::SweepPreset* preset =
      sweep::find_sweep_preset(opt.sweep_name);
  if (!preset) {
    std::fprintf(stderr, "unknown sweep: %s\n", opt.sweep_name.c_str());
    list_sweeps(stderr);
    return 2;
  }
  sweep::SweepSpec sw = preset->make(opt.minutes);
  // --control/--source replace the preset's corresponding axis wholesale;
  // repeating a flag sweeps over the given specs.
  if (!opt.controls.empty()) sw.controls = opt.controls;
  if (!opt.sources.empty()) sw.sources = opt.sources;

  // Flag consistency: refuse combinations whose output would be partial
  // or ambiguous instead of silently producing the wrong aggregate.
  if (opt.resume && opt.journal_path.empty()) {
    std::fprintf(stderr, "--resume requires --journal\n");
    return 2;
  }
  if (opt.sharded && opt.journal_path.empty()) {
    std::fprintf(stderr,
                 "--shard requires --journal (each worker writes a partial "
                 "journal; fold them with 'pns_sweep merge')\n");
    return 2;
  }
  if (opt.sharded && (!opt.csv_path.empty() || !opt.json_path.empty())) {
    std::fprintf(stderr,
                 "--shard produces a partial result; write the aggregate "
                 "with 'pns_sweep merge --csv/--json JOURNAL...'\n");
    return 2;
  }
  if (opt.sharded && opt.refine) {
    std::fprintf(stderr,
                 "--refine needs the full pass; run it on the merged sweep "
                 "instead of a shard\n");
    return 2;
  }
  if (!opt.cost_journal_path.empty() && !opt.sharded) {
    std::fprintf(stderr,
                 "--cost-journal only balances sharded runs; pass "
                 "--shard K/N\n");
    return 2;
  }
  if (opt.refine && !sweep::metric_accessor(opt.refine_options.metric)) {
    std::fprintf(stderr, "unknown --refine-metric: %s (valid:",
                 opt.refine_options.metric.c_str());
    for (const auto& name : sweep::refine_metric_names())
      std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, ")\n");
    return 2;
  }

  sw.base.pv_mode = opt.pv_mode;
  sw.base.integrator = opt.integrator;
  sw.base.platform_spec = opt.platform;

  // The journal identity pins every knob that changes what the scenarios
  // compute (window length, PV mode, control/source/integrator/platform
  // overrides) -- labels alone would not catch a --minutes mismatch
  // between the original run and the resume.
  const std::string journal_name =
      sweep::sweep_identity(opt.sweep_name, opt.minutes, opt.pv_mode,
                            opt.controls, opt.sources, opt.integrator,
                            opt.platform);

  const auto specs = sw.expand();

  // The shard's index set: contiguous by default; balanced by the prior
  // journal's measured costs when one is given (falls back to contiguous
  // when the journal recorded none).
  sweep::ShardIndices shard_indices;
  if (opt.sharded && !opt.cost_journal_path.empty()) {
    try {
      const sweep::JournalContents prior = sweep::read_journal(
          opt.cost_journal_path,
          sweep::JournalHeader{journal_name, specs.size()});
      shard_indices = sweep::plan_shards(specs.size(), opt.shard_n,
                                         prior.costs)[opt.shard_k];
      if (!opt.quiet && prior.costs.empty())
        std::fprintf(stderr,
                     "note: %s holds no wall_s entries; using contiguous "
                     "shards\n",
                     opt.cost_journal_path.c_str());
    } catch (const sweep::JournalError& e) {
      std::fprintf(stderr, "--cost-journal: %s\n", e.what());
      return 1;
    }
  } else {
    const sweep::ShardRange range =
        opt.sharded
            ? sweep::shard_range(specs.size(), opt.shard_k, opt.shard_n)
            : sweep::ShardRange{0, specs.size()};
    shard_indices.resize(range.size());
    for (std::size_t j = 0; j < range.size(); ++j)
      shard_indices[j] = range.begin + j;
  }

  if (!opt.journal_path.empty() && !opt.resume &&
      std::ifstream(opt.journal_path).good()) {
    std::fprintf(stderr,
                 "journal %s already exists; pass --resume to continue it "
                 "or delete it to start over\n",
                 opt.journal_path.c_str());
    return 2;
  }

  sweep::SweepRunnerOptions ropt;
  ropt.threads = opt.threads;
  if (opt.fsync)
    ropt.journal_durability = sweep::JournalDurability::kFsync;
  if (!opt.quiet) {
    ropt.progress = [](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\r[%zu/%zu]", done, total);
      if (done == total) std::fprintf(stderr, "\n");
    };
  }
  sweep::SweepRunner runner(ropt);

  std::printf("sweep '%s': %zu scenarios", opt.sweep_name.c_str(),
              specs.size());
  if (opt.sharded) {
    std::printf(", shard %zu/%zu -> %zu spec(s)", opt.shard_k, opt.shard_n,
                shard_indices.size());
    if (!opt.cost_journal_path.empty())
      std::printf(" (cost-balanced)");
  }
  std::printf(" on %u thread(s)\n\n",
              runner.effective_threads(shard_indices.size()));

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<sweep::SummaryRow> rows;
  std::size_t reused = 0;
  std::size_t executed = shard_indices.size();
  try {
    if (opt.journal_path.empty()) {
      const auto outcomes = runner.run(specs);
      rows.reserve(outcomes.size());
      for (const auto& o : outcomes) rows.push_back(sweep::summarize(o));
    } else {
      auto report = runner.run_checkpointed(specs, opt.journal_path,
                                            journal_name, shard_indices);
      rows = std::move(report.rows);
      reused = report.reused;
      executed = report.executed;
    }
  } catch (const sweep::JournalError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  int refine_added = 0;
  if (opt.refine) {
    sweep::RefineOptions ropts = opt.refine_options;
    const auto refined =
        sweep::refine_capacitance_axis(runner, specs, rows, ropts);
    refine_added = static_cast<int>(refined.added);
    rows = refined.rows;
    if (!opt.quiet && refined.added > 0)
      std::fprintf(stderr, "refined: +%zu scenarios over %d round(s)\n",
                   refined.added, refined.rounds);
  }

  sweep::Aggregator agg(std::move(rows));
  agg.console_table().print(std::cout);
  std::printf("\n%zu scenarios in %.2f s (%.2f scenarios/s), %zu failed",
              executed, wall, wall > 0.0 ? executed / wall : 0.0,
              agg.failed_count());
  if (reused > 0) std::printf(", %zu resumed from journal", reused);
  if (refine_added > 0) std::printf(", %d added by refinement", refine_added);
  std::printf("\n");

  const bool wrote = write_outputs(agg, opt);
  return agg.failed_count() == 0 && wrote ? 0 : 1;
}
