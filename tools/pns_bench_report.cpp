// pns_bench_report -- machine-readable performance trajectory runner.
//
// Executes the google-benchmark micro suite (bench_micro_hotpaths, when it
// was built) plus wall-clock timings of the `table2` sweep -- exact and
// tabulated PV, the rk23pi / rk23batch / rk23simd integrators (with the
// PV implicit-solve accounting: iteration counts, memo/table hit rates
// and the packed-lane fraction), an asset-reuse A/B, the same sweep
// on the 2-domain biglittle platform (the joint-ladder dispatch tax), and
// the sweep daemon's dispatch overhead (the same sweep through an
// in-process pns_sweepd with 4 local socket workers versus a plain
// 4-thread run) -- and writes one JSON document (BENCH_<n>.json) that
// future PRs append to -- the repo's record that the hot path stays fast:
//
//   pns_bench_report                        # full run, writes BENCH_10.json
//   pns_bench_report --quick --out q.json   # CI smoke (~seconds)
//
// scripts/check_bench_regression.py diffs a fresh report against the
// checked-in baseline. The sweep timing runs in-process; the micro suite
// is spawned as the sibling bench_micro_hotpaths binary so the numbers
// are exactly what a developer gets running it by hand.
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ehsim/sources.hpp"
#include "sweep/aggregate.hpp"
#include "sweep/presets.hpp"
#include "sweep/runner.hpp"
#include "sweep/scenario.hpp"
#include "sweepd/client.hpp"
#include "sweepd/daemon.hpp"
#include "sweepd/worker.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace {

using namespace pns;

struct Options {
  std::string out_path = "BENCH_10.json";
  std::string bench_bin;  // empty = <dir of argv[0]>/bench_micro_hotpaths
  double minutes = 60.0;
  unsigned threads = 0;
  bool quick = false;
};

struct MicroResult {
  std::string name;
  double real_time_ns = 0.0;
  double cpu_time_ns = 0.0;
  std::uint64_t iterations = 0;
};

double unit_to_ns(const std::string& unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1.0;
}

std::string strip_quotes(std::string s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"')
    return s.substr(1, s.size() - 2);
  return s;
}

/// Runs the micro-benchmark binary with CSV output and parses the rows.
/// Returns false (with `error` set) when the binary is missing or fails;
/// the report then records the sweep timings alone.
bool run_micro_suite(const Options& opt, std::vector<MicroResult>& out,
                     std::string& error) {
  const std::string csv_path = opt.out_path + ".micro.csv";
  std::string cmd = "\"" + opt.bench_bin + "\"";
  if (opt.quick) cmd += " --benchmark_min_time=0.05";
  cmd += " --benchmark_format=csv > \"" + csv_path + "\" 2> /dev/null";
  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    error = "running '" + opt.bench_bin + "' failed (exit " +
            std::to_string(rc) + "); was it built?";
    std::remove(csv_path.c_str());
    return false;
  }
  std::ifstream in(csv_path);
  std::string line;
  bool seen_header = false;
  while (std::getline(in, line)) {
    if (line.rfind("name,", 0) == 0) {
      seen_header = true;
      continue;
    }
    if (!seen_header || line.empty()) continue;
    std::vector<std::string> cells;
    std::istringstream ls(line);
    std::string cell;
    while (std::getline(ls, cell, ',')) cells.push_back(cell);
    // name,iterations,real_time,cpu_time,time_unit,...
    if (cells.size() < 5) continue;
    MicroResult r;
    r.name = strip_quotes(cells[0]);
    r.iterations = std::strtoull(cells[1].c_str(), nullptr, 10);
    const double scale = unit_to_ns(cells[4]);
    r.real_time_ns = std::strtod(cells[2].c_str(), nullptr) * scale;
    r.cpu_time_ns = std::strtod(cells[3].c_str(), nullptr) * scale;
    out.push_back(std::move(r));
  }
  std::remove(csv_path.c_str());
  if (out.empty()) {
    error = "no benchmark rows parsed from " + opt.bench_bin;
    return false;
  }
  return true;
}

struct SweepTiming {
  double wall_s = 0.0;
  double simulated_s = 0.0;
  std::size_t scenarios = 0;
  std::size_t failed = 0;
  unsigned threads = 0;
  /// PV implicit-solve accounting summed over the sweep's runs -- where
  /// the time goes and what fraction the packed kernels took.
  ehsim::PvSolveStats pv;
};

SweepTiming time_table2(const Options& opt, ehsim::PvSource::Mode mode,
                        const std::string& integrator = "rk23",
                        bool reuse_assets = true,
                        const std::string& platform = "") {
  auto sw = sweep::table2_sweep(opt.minutes, {42, 43, 44});
  sw.base.pv_mode = mode;
  sw.base.integrator = sweep::IntegratorSpec::parse(integrator);
  if (!platform.empty())
    sw.base.platform_spec = sweep::PlatformSpec::parse(platform);
  const auto specs = sw.expand();

  sweep::SweepRunnerOptions ropt;
  ropt.threads = opt.threads;
  ropt.reuse_assets = reuse_assets;
  sweep::SweepRunner runner(ropt);

  SweepTiming t;
  t.scenarios = specs.size();
  t.threads = runner.effective_threads(specs.size());
  for (const auto& s : specs) t.simulated_s += s.duration();

  const auto t0 = std::chrono::steady_clock::now();
  const auto outcomes = runner.run(specs);
  t.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  t.failed = sweep::Aggregator(outcomes).failed_count();
  for (const auto& o : outcomes)
    if (o.ok) t.pv += o.result.metrics.pv_solve;
  return t;
}

/// The daemon-dispatch A/B: one `table2` job executed through an
/// in-process daemon with 4 single-threaded local socket workers, versus
/// the identical scenario vector on a plain 4-thread SweepRunner. The
/// difference is what the protocol costs -- one JSON round-trip per row
/// plus lease bookkeeping and journalling.
struct DispatchTiming {
  SweepTiming in_process;
  SweepTiming daemon;
  unsigned workers = 4;
  double overhead_s = 0.0;
  double overhead_per_row_ms = 0.0;
  bool ok = false;
  std::string error;
};

DispatchTiming time_daemon_dispatch(const Options& opt) {
  DispatchTiming t;

  sweepd::JobSpec job;
  job.preset = "table2";
  job.minutes = opt.minutes;
  const auto specs = job.expand();
  double simulated_s = 0.0;
  for (const auto& s : specs) simulated_s += s.duration();

  {
    sweep::SweepRunnerOptions ropt;
    ropt.threads = t.workers;
    sweep::SweepRunner runner(ropt);
    t.in_process.scenarios = specs.size();
    t.in_process.threads = runner.effective_threads(specs.size());
    t.in_process.simulated_s = simulated_s;
    const auto t0 = std::chrono::steady_clock::now();
    const auto outcomes = runner.run(specs);
    t.in_process.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    t.in_process.failed = sweep::Aggregator(outcomes).failed_count();
  }

  const std::string state_dir = opt.out_path + ".sweepd-state";
  ::mkdir(state_dir.c_str(), 0755);
  std::string job_id;
  try {
    sweepd::DaemonOptions dopt;
    dopt.endpoint = net::Endpoint::parse("tcp:127.0.0.1:0");
    dopt.state_dir = state_dir;
    dopt.idle_poll_s = 0.01;
    sweepd::Daemon daemon(dopt);
    daemon.bind();
    const auto ep = net::Endpoint::parse("tcp:127.0.0.1:" +
                                         std::to_string(daemon.port()));
    std::thread serve([&daemon] { daemon.run(); });

    t.daemon.scenarios = specs.size();
    t.daemon.threads = t.workers;
    t.daemon.simulated_s = simulated_s;
    const auto t0 = std::chrono::steady_clock::now();
    job_id = sweepd::submit_job(ep, job).job;
    std::vector<std::thread> workers;
    for (unsigned i = 0; i < t.workers; ++i)
      workers.emplace_back([&ep] {
        try {
          sweepd::WorkerOptions wopt;
          wopt.endpoint = ep;
          wopt.threads = 1;
          wopt.once = true;
          sweepd::run_worker(wopt);
        } catch (const std::exception& e) {
          // Crashed workers are the daemon's problem (re-lease); the
          // surviving ones finish the job, so timing stays meaningful.
          std::fprintf(stderr, "warning: dispatch worker: %s\n", e.what());
        }
      });
    for (auto& th : workers) th.join();
    t.daemon.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    daemon.stop();
    serve.join();
    for (const auto& js : daemon.jobs())
      if (js.job == job_id) {
        t.daemon.failed = js.failed;
        t.ok = js.complete;
        if (!js.complete) t.error = "daemon job did not complete";
      }
  } catch (const std::exception& e) {
    t.error = e.what();
  }
  if (!job_id.empty()) {
    std::remove((state_dir + "/" + job_id + ".jsonl").c_str());
    std::remove((state_dir + "/" + job_id + ".spec.json").c_str());
  }
  ::rmdir(state_dir.c_str());

  t.overhead_s = t.daemon.wall_s - t.in_process.wall_s;
  t.overhead_per_row_ms =
      specs.empty() ? 0.0
                    : t.overhead_s / static_cast<double>(specs.size()) * 1e3;
  return t;
}

void write_sweep(JsonWriter& w, const SweepTiming& t) {
  w.begin_object();
  w.kv("scenarios", t.scenarios);
  w.kv("failed", t.failed);
  w.kv("threads", static_cast<std::uint64_t>(t.threads));
  w.kv("wall_s", t.wall_s);
  w.kv("simulated_s", t.simulated_s);
  w.kv("sim_realtime_ratio", t.wall_s > 0.0 ? t.simulated_s / t.wall_s : 0.0);
  if (t.pv.calls > 0) {
    const double solves = static_cast<double>(t.pv.newton_solves);
    w.key("pv_solve");
    w.begin_object();
    w.kv("calls", t.pv.calls);
    w.kv("memo_hits", t.pv.memo_hits);
    w.kv("table_hits", t.pv.table_hits);
    w.kv("newton_solves", t.pv.newton_solves);
    w.kv("newton_iterations", t.pv.newton_iterations);
    w.kv("warm_starts", t.pv.warm_starts);
    w.kv("simd_lanes", t.pv.simd_lanes);
    w.kv("iters_per_solve",
         solves > 0.0 ? static_cast<double>(t.pv.newton_iterations) / solves
                      : 0.0);
    w.kv("memo_hit_rate",
         static_cast<double>(t.pv.memo_hits) /
             static_cast<double>(t.pv.calls));
    w.kv("simd_lane_fraction",
         solves > 0.0 ? static_cast<double>(t.pv.simd_lanes) / solves : 0.0);
    w.end_object();
  }
  w.end_object();
}

void print_pv(const char* label, const SweepTiming& t) {
  if (t.pv.calls == 0) return;
  const double solves = static_cast<double>(t.pv.newton_solves);
  std::printf(
      "pv solve %-10s %10llu calls: %5.1f%% memo, %5.1f%% table, "
      "%llu newton (%.2f iters/solve, %5.1f%% warm, %5.1f%% packed)\n",
      label, static_cast<unsigned long long>(t.pv.calls),
      100.0 * static_cast<double>(t.pv.memo_hits) /
          static_cast<double>(t.pv.calls),
      100.0 * static_cast<double>(t.pv.table_hits) /
          static_cast<double>(t.pv.calls),
      static_cast<unsigned long long>(t.pv.newton_solves),
      solves > 0.0 ? static_cast<double>(t.pv.newton_iterations) / solves
                   : 0.0,
      solves > 0.0 ? 100.0 * static_cast<double>(t.pv.warm_starts) / solves
                   : 0.0,
      solves > 0.0 ? 100.0 * static_cast<double>(t.pv.simd_lanes) / solves
                   : 0.0);
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "options:\n"
      "  --out PATH       output JSON path (default BENCH_10.json)\n"
      "  --bench-bin P    micro-benchmark binary (default: next to this "
      "binary)\n"
      "  --minutes M      simulated window of the table2 timing "
      "(default 60)\n"
      "  --threads N      sweep worker threads (default: hardware)\n"
      "  --quick          CI smoke mode: 2-minute windows, short micro "
      "reps\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out")
      opt.out_path = next();
    else if (arg == "--bench-bin")
      opt.bench_bin = next();
    else if (arg == "--minutes")
      opt.minutes = std::atof(next());
    else if (arg == "--threads")
      opt.threads = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--quick")
      opt.quick = true;
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (opt.quick) opt.minutes = 2.0;
  if (opt.bench_bin.empty()) {
    std::string self = argv[0];
    const auto slash = self.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? std::string(".") : self.substr(0, slash);
    opt.bench_bin = dir + "/bench_micro_hotpaths";
  }

  std::vector<MicroResult> micro;
  std::string micro_error;
  const bool micro_ok = run_micro_suite(opt, micro, micro_error);
  if (!micro_ok)
    std::fprintf(stderr, "warning: micro suite skipped: %s\n",
                 micro_error.c_str());

  std::fprintf(stderr, "timing table2 sweep (exact PV, %.0f min)...\n",
               opt.minutes);
  const auto exact = time_table2(opt, ehsim::PvSource::Mode::kExact);
  std::fprintf(stderr, "timing table2 sweep (tabulated PV, %.0f min)...\n",
               opt.minutes);
  const auto tab = time_table2(opt, ehsim::PvSource::Mode::kTabulated);
  std::fprintf(stderr, "timing table2 sweep (rk23pi, %.0f min)...\n",
               opt.minutes);
  const auto pi =
      time_table2(opt, ehsim::PvSource::Mode::kExact, "rk23pi");
  std::fprintf(stderr, "timing table2 sweep (rk23batch, %.0f min)...\n",
               opt.minutes);
  const auto batch =
      time_table2(opt, ehsim::PvSource::Mode::kExact, "rk23batch");
  std::fprintf(stderr, "timing table2 sweep (rk23simd, %.0f min)...\n",
               opt.minutes);
  const auto simd =
      time_table2(opt, ehsim::PvSource::Mode::kExact, "rk23simd");
  std::fprintf(stderr,
               "timing table2 sweep (exact PV, no asset reuse, %.0f "
               "min)...\n",
               opt.minutes);
  const auto no_reuse = time_table2(opt, ehsim::PvSource::Mode::kExact,
                                    "rk23", /*reuse_assets=*/false);
  std::fprintf(stderr,
               "timing table2 sweep (biglittle platform, %.0f min)...\n",
               opt.minutes);
  const auto biglittle =
      time_table2(opt, ehsim::PvSource::Mode::kExact, "rk23",
                  /*reuse_assets=*/true, "biglittle");
  std::fprintf(stderr,
               "timing daemon dispatch (4 socket workers vs 4 threads, "
               "%.0f min)...\n",
               opt.minutes);
  const auto dispatch = time_daemon_dispatch(opt);
  if (!dispatch.ok)
    std::fprintf(stderr, "warning: daemon dispatch timing failed: %s\n",
                 dispatch.error.c_str());

  std::ofstream out(opt.out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", opt.out_path.c_str());
    return 1;
  }
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "pns-bench-report-v1");
  w.kv("generated_unix", static_cast<std::int64_t>(std::time(nullptr)));
  w.kv("quick", opt.quick);
  w.key("table2");
  w.begin_object();
  w.kv("minutes", opt.minutes);
  w.key("exact");
  write_sweep(w, exact);
  w.key("tabulated");
  write_sweep(w, tab);
  w.key("rk23pi");
  write_sweep(w, pi);
  w.key("rk23batch");
  write_sweep(w, batch);
  w.key("rk23simd");
  write_sweep(w, simd);
  w.key("exact_no_asset_reuse");
  write_sweep(w, no_reuse);
  w.end_object();
  // Same schemes and windows on the compiled 2-domain platform: what
  // the joint-ladder dispatch and per-domain accounting cost relative
  // to table2.exact. Own section so the mono trajectory stays
  // key-compatible with earlier BENCH_*.json reports.
  w.key("table2_biglittle");
  w.begin_object();
  w.kv("minutes", opt.minutes);
  w.kv("platform", "biglittle");
  w.key("exact");
  write_sweep(w, biglittle);
  w.end_object();
  w.key("daemon_dispatch");
  if (dispatch.ok) {
    w.begin_object();
    w.kv("workers", static_cast<std::uint64_t>(dispatch.workers));
    w.key("in_process");
    write_sweep(w, dispatch.in_process);
    w.key("daemon");
    write_sweep(w, dispatch.daemon);
    w.kv("overhead_s", dispatch.overhead_s);
    w.kv("overhead_per_row_ms", dispatch.overhead_per_row_ms);
    w.end_object();
  } else {
    w.null();
    w.kv("daemon_dispatch_error", dispatch.error);
  }
  w.key("micro");
  if (micro_ok) {
    w.begin_array();
    for (const auto& r : micro) {
      w.begin_object();
      w.kv("name", r.name);
      w.kv("iterations", r.iterations);
      w.kv("real_time_ns", r.real_time_ns);
      w.kv("cpu_time_ns", r.cpu_time_ns);
      w.end_object();
    }
    w.end_array();
  } else {
    w.null();
    w.kv("micro_error", micro_error);
  }
  w.end_object();
  out << "\n";

  std::printf("wrote %s\n", opt.out_path.c_str());
  std::printf("table2 exact: %.2f s wall (%.0fx realtime); tabulated: "
              "%.2f s wall (%.0fx realtime); rk23pi: %.2f s wall "
              "(%.0fx realtime); rk23batch: %.2f s wall (%.0fx realtime); "
              "rk23simd: %.2f s wall (%.0fx realtime); "
              "no asset reuse: %.2f s wall\n",
              exact.wall_s,
              exact.wall_s > 0 ? exact.simulated_s / exact.wall_s : 0.0,
              tab.wall_s, tab.wall_s > 0 ? tab.simulated_s / tab.wall_s : 0.0,
              pi.wall_s, pi.wall_s > 0 ? pi.simulated_s / pi.wall_s : 0.0,
              batch.wall_s,
              batch.wall_s > 0 ? batch.simulated_s / batch.wall_s : 0.0,
              simd.wall_s,
              simd.wall_s > 0 ? simd.simulated_s / simd.wall_s : 0.0,
              no_reuse.wall_s);
  print_pv("exact:", exact);
  print_pv("tabulated:", tab);
  print_pv("rk23pi:", pi);
  print_pv("rk23simd:", simd);
  std::printf("table2 biglittle: %.2f s wall (%.0fx realtime)\n",
              biglittle.wall_s,
              biglittle.wall_s > 0
                  ? biglittle.simulated_s / biglittle.wall_s
                  : 0.0);
  if (dispatch.ok)
    std::printf("daemon dispatch: %.2f s via daemon + %u workers vs "
                "%.2f s in-process (%+.1f ms/row overhead)\n",
                dispatch.daemon.wall_s, dispatch.workers,
                dispatch.in_process.wall_s, dispatch.overhead_per_row_ms);
  const bool sweeps_ok = exact.failed == 0 && tab.failed == 0 &&
                         pi.failed == 0 && batch.failed == 0 &&
                         simd.failed == 0 && no_reuse.failed == 0 &&
                         biglittle.failed == 0 && dispatch.ok &&
                         dispatch.daemon.failed == 0;
  return sweeps_ok ? 0 : 1;
}
