// pns_sweepd -- the sweep daemon.
//
// Serves the JSON-lines sweep protocol (docs/sweepd.md): clients submit
// jobs and stream results, pull-workers lease rows and push them back,
// and every accepted row is checkpointed to the job's journal in
// --state-dir before it is acknowledged. Restarting the daemon with the
// same state dir resumes every job from its journal.
//
//   pns_sweepd --listen tcp:7654 --state-dir /var/lib/pns
//   pns_sweepd --listen unix:/tmp/sweepd.sock --state-dir . --fsync
//
// Then, from anywhere that can reach it:
//
//   pns_sweep worker --connect tcp:daemon-host:7654
//   pns_sweep submit quick --connect tcp:daemon-host:7654
//   pns_sweep results job-1 --connect tcp:daemon-host:7654 --csv out.csv
//
// With --listen tcp:0 the kernel picks the port; the resolved address is
// printed as the first stdout line, so scripts can scrape it.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sweepd/daemon.hpp"

namespace {

using namespace pns;

void usage(const char* argv0) {
  std::printf(
      "usage: %s --listen ENDPOINT [options]\n"
      "\n"
      "  --listen EP        address to serve: unix:PATH, tcp:PORT or\n"
      "                     tcp:HOST:PORT (tcp:0 = ephemeral port,\n"
      "                     printed on startup)\n"
      "\n"
      "options:\n"
      "  --state-dir DIR    job specs + checkpoint journals live here\n"
      "                     (default: current directory); restarting with\n"
      "                     the same dir resumes every job\n"
      "  --fsync            fsync the journal after every accepted row, so\n"
      "                     acknowledged rows survive a machine crash (not\n"
      "                     just a daemon crash); costs a disk round-trip\n"
      "                     per row\n"
      "  --lease-timeout S  re-lease a worker's rows when no result arrived\n"
      "                     for S seconds (default 120)\n"
      "  --lease-rows N     rows per lease; 0 = size automatically from the\n"
      "                     pending and worker counts (default)\n"
      "  --idle-poll S      poll-again hint sent to idle workers\n"
      "                     (default 0.5)\n"
      "  --fault SPEC       deterministic fault injection for chaos runs\n"
      "                     (docs/fault-injection.md), e.g.\n"
      "                     fault:seed=7,torn_append=0.1,fsync_fail=2\n"
      "  --quiet            suppress the per-event log on stderr\n",
      argv0);
}

sweepd::Daemon* g_daemon = nullptr;

void handle_signal(int) {
  if (g_daemon) g_daemon->stop();
}

}  // namespace

int main(int argc, char** argv) {
  sweepd::DaemonOptions opt;
  bool quiet = false;
  bool have_listen = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--listen") {
      const std::string spec = next();
      try {
        opt.endpoint = net::Endpoint::parse(spec);
        have_listen = true;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "invalid --listen '%s': %s\n", spec.c_str(),
                     e.what());
        return 2;
      }
    } else if (arg == "--state-dir")
      opt.state_dir = next();
    else if (arg == "--fsync")
      opt.fsync_journal = true;
    else if (arg == "--lease-timeout")
      opt.lease_timeout_s = std::atof(next());
    else if (arg == "--lease-rows")
      opt.lease_rows = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--idle-poll")
      opt.idle_poll_s = std::atof(next());
    else if (arg == "--fault") {
      const std::string spec = next();
      try {
        opt.fault = fault::make_injector(spec);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "invalid --fault '%s': %s\n", spec.c_str(),
                     e.what());
        return 2;
      }
    } else if (arg == "--quiet")
      quiet = true;
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (!have_listen) {
    usage(argv[0]);
    return 2;
  }
  if (!quiet) {
    opt.log = [](const std::string& line) {
      std::fprintf(stderr, "pns_sweepd: %s\n", line.c_str());
    };
  }

  try {
    sweepd::Daemon daemon(opt);
    daemon.bind();

    // The resolved serving address, scrapeable by scripts (tcp:0 was
    // replaced by the kernel's choice at bind time).
    net::Endpoint bound = opt.endpoint;
    if (bound.kind == net::Endpoint::Kind::kTcp)
      bound.port = daemon.port();
    std::printf("listening on %s\n", bound.to_string().c_str());
    std::fflush(stdout);

    g_daemon = &daemon;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGPIPE, SIG_IGN);

    daemon.run();
    g_daemon = nullptr;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pns_sweepd: %s\n", e.what());
    return 1;
  }
  return 0;
}
