#!/usr/bin/env python3
"""Compare a fresh pns_bench_report JSON against the checked-in baseline.

Usage:
    scripts/check_bench_regression.py FRESH.json [BASELINE.json]
    scripts/check_bench_regression.py --list-baseline

With no BASELINE argument the newest checked-in BENCH_*.json (highest
number) is used. Named micro benchmarks are compared on cpu_time_ns; a
slowdown beyond --threshold (default 15 %) is reported as a warning.

The exit code is 0 unless --strict is given (then any warning fails):
micro benchmarks on shared CI runners jitter far more than 15 %, so this
runs as a *non-blocking* smoke in CI -- a tap on the shoulder in the
logs, not a gate. Run it locally on a quiet machine before trusting a
number either way.
"""

import argparse
import glob
import json
import os
import re
import sys

# The watched subset: end-to-end and integrator-path benches that the
# BENCH trajectory is meant to track. Purely-synthetic micro benches
# (e.g. the never-firing event paths) jitter too much to gate on.
WATCHED = [
    "BM_Rk23SecondOfCircuit",
    "BM_Rk23PiSecondOfCircuit",
    "BM_NewtonSolveSimd",
    "BM_StepWindowSimd",
    "BM_EndToEndSimulatedMinute",
    "BM_EndToEndSimulatedMinuteTabulated",
    "BM_EndToEndSimulatedMinuteRk23Pi",
    "BM_CoastingQuiescentHour",
]

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def newest_baseline():
    candidates = []
    for path in glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")):
        m = re.fullmatch(r"BENCH_(\d+)\.json", os.path.basename(path))
        if m:
            candidates.append((int(m.group(1)), path))
    if not candidates:
        return None
    return max(candidates)[1]


def micro_map(report):
    micro = report.get("micro")
    if not isinstance(micro, list):
        return {}
    return {
        row["name"]: row
        for row in micro
        if isinstance(row, dict) and "name" in row
    }


def compare_sweep_section(fresh, baseline, threshold, section):
    """Compares one sweep section's wall-clocks key by key.

    Used for "table2" and "table2_biglittle" (the 2-domain platform
    trajectory added in BENCH_9). The key set is learned from the
    reports themselves, so a newly added integrator entry (e.g.
    `rk23batch` in BENCH_8) or a whole new section shows up as `new`
    the first time -- informational, never a warning -- and is tracked
    automatically once a baseline containing it is checked in. Keys the
    baseline has but the fresh report lost are flagged: a silently
    dropped bench reads as "still fine" when nothing measured it.
    """
    fresh_t = fresh.get(section)
    base_t = baseline.get(section)
    if not isinstance(fresh_t, dict):
        if isinstance(base_t, dict):
            print(f"{section:42} {'missing!':>12}")
            return [(f"{section} (dropped from report)", 0.0)]
        return []
    if not isinstance(base_t, dict):
        base_t = {}

    def wall(section_obj, key):
        row = section_obj.get(key)
        if isinstance(row, dict) and "wall_s" in row:
            return float(row["wall_s"])
        return None

    keys = [k for k in list(fresh_t) + list(base_t)
            if wall(fresh_t, k) is not None or
            wall(base_t, k) is not None]
    keys = list(dict.fromkeys(keys))  # de-dup, report order preserved
    warnings = []
    for key in keys:
        name = f"{section} {key}"
        fresh_s = wall(fresh_t, key)
        base_s = wall(base_t, key)
        if fresh_s is None:
            print(f"{name:42} {'missing!':>12}")
            warnings.append((name + " (dropped from report)", 0.0))
            continue
        if base_s is None:
            print(f"{name:42} {'new':>12} {fresh_s:10.2f}s")
            continue
        if base_s <= 0:
            continue
        delta = fresh_s / base_s - 1.0
        flag = ""
        if delta > threshold:
            flag = "  <-- REGRESSION"
            warnings.append((name, delta))
        print(f"{name:42} {base_s:11.2f}s {fresh_s:11.2f}s "
              f"{delta:+7.1%}{flag}")
    return warnings


def compare_dispatch(fresh, baseline, threshold):
    """Compares daemon_dispatch.overhead_per_row_ms; returns warnings."""
    fresh_d = fresh.get("daemon_dispatch")
    base_d = baseline.get("daemon_dispatch")
    if not isinstance(fresh_d, dict):
        return []
    fresh_ms = float(fresh_d.get("overhead_per_row_ms", 0.0))
    if not isinstance(base_d, dict):
        print(f"{'daemon_dispatch overhead/row':42} {'new':>12} "
              f"{fresh_ms:9.2f}ms")
        return []
    base_ms = float(base_d.get("overhead_per_row_ms", 0.0))
    # The overhead is a small difference of two wall-clocks and can be
    # near (or below) zero on a noisy machine; compare on an absolute
    # floor so tiny absolute wobbles don't trip the relative threshold.
    floor_ms = 1.0
    delta = (fresh_ms - base_ms) / max(abs(base_ms), floor_ms)
    flag = ""
    warnings = []
    if delta > threshold:
        flag = "  <-- REGRESSION"
        warnings.append(("daemon_dispatch overhead/row", delta))
    print(f"{'daemon_dispatch overhead/row':42} {base_ms:10.2f}ms "
          f"{fresh_ms:10.2f}ms {delta:+7.1%}{flag}")
    return warnings


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", nargs="?", help="freshly generated report")
    parser.add_argument("baseline", nargs="?", help="checked-in baseline")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative slowdown that warns (default 0.15)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when any bench regressed")
    parser.add_argument("--list-baseline", action="store_true",
                        help="print the baseline path that would be used")
    args = parser.parse_args()

    baseline_path = args.baseline or newest_baseline()
    if args.list_baseline:
        print(baseline_path or "")
        return 0
    if not args.fresh:
        parser.error("missing FRESH.json")
    if not baseline_path:
        print("check_bench_regression: no checked-in BENCH_*.json baseline")
        return 0

    with open(args.fresh) as f:
        fresh = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    fresh_micro = micro_map(fresh)
    base_micro = micro_map(baseline)
    if not fresh_micro:
        print(f"check_bench_regression: {args.fresh} has no micro rows "
              "(bench_micro_hotpaths not built?); nothing to compare")
        return 0

    regressed = []
    print(f"baseline: {os.path.basename(baseline_path)}   "
          f"fresh: {os.path.basename(args.fresh)}")
    print(f"{'benchmark':42} {'base':>12} {'fresh':>12} {'delta':>8}")
    for name in WATCHED:
        base_row = base_micro.get(name)
        fresh_row = fresh_micro.get(name)
        if base_row is None:
            # First sight of a newly added bench: informational only.
            # It becomes tracked once a baseline containing it lands.
            fresh_ns = float(fresh_row["cpu_time_ns"]) if fresh_row else 0.0
            print(f"{name:42} {'new':>12} {fresh_ns:10.0f}ns")
            continue
        if fresh_row is None:
            print(f"{name:42} {'missing!':>12}")
            regressed.append((name + " (dropped from report)", 0.0))
            continue
        base_ns = float(base_row["cpu_time_ns"])
        fresh_ns = float(fresh_row["cpu_time_ns"])
        if base_ns <= 0:
            continue
        delta = fresh_ns / base_ns - 1.0
        flag = ""
        if delta > args.threshold:
            flag = "  <-- REGRESSION"
            regressed.append((name, delta))
        print(f"{name:42} {base_ns:10.0f}ns {fresh_ns:10.0f}ns "
              f"{delta:+7.1%}{flag}")

    regressed += compare_sweep_section(fresh, baseline, args.threshold,
                                       "table2")
    regressed += compare_sweep_section(fresh, baseline, args.threshold,
                                       "table2_biglittle")
    regressed += compare_dispatch(fresh, baseline, args.threshold)

    if regressed:
        print()
        for name, delta in regressed:
            if name.endswith("(dropped from report)"):
                print(f"warning: {name}")
            else:
                print(f"warning: {name} slowed down {delta:+.1%} "
                      f"(threshold {args.threshold:.0%})")
        if args.strict:
            return 1
    else:
        print("\nno regressions beyond "
              f"{args.threshold:.0%} on the watched benches")
    return 0


if __name__ == "__main__":
    sys.exit(main())
