#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown docs.

Usage:
    check_markdown_links.py [FILE.md ...]

With no arguments, checks README.md, docs/*.md and CHANGES/ROADMAP/PAPER
files relative to the current directory (the repo root in CI and under
ctest). For every markdown link or image `[text](target)`:

  - http(s)/mailto links are skipped (no network in CI);
  - pure-anchor links (#section) are checked against the headings of the
    same file;
  - relative paths must exist on disk (anchors on them are checked
    against the target file's headings when it is markdown).

Exit status is the number of dead links (0 = all good). Stdlib only.
"""

import glob
import os
import re
import sys

# Inline links/images: [text](target) / ![alt](target), tolerating one
# level of nested brackets in the text and an optional "title".
LINK_RE = re.compile(r"!?\[(?:[^\[\]]|\[[^\]]*\])*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_anchor(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, drop punctuation."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_~]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(md_path: str) -> set:
    with open(md_path, encoding="utf-8") as f:
        body = f.read()
    return {github_anchor(h) for h in HEADING_RE.findall(body)}


def check_file(md_path: str) -> list:
    with open(md_path, encoding="utf-8") as f:
        body = f.read()
    # Links inside fenced code blocks are examples, not navigation.
    body = CODE_FENCE_RE.sub("", body)

    errors = []
    base = os.path.dirname(md_path)
    for match in LINK_RE.finditer(body):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path, _, anchor = target.partition("#")
        if not path:  # same-file anchor
            if github_anchor(anchor) not in anchors_of(md_path):
                errors.append(f"{md_path}: dead anchor '#{anchor}'")
            continue
        resolved = os.path.normpath(os.path.join(base, path))
        if not os.path.exists(resolved):
            errors.append(f"{md_path}: dead link '{target}' -> {resolved}")
            continue
        if anchor and resolved.endswith(".md"):
            if github_anchor(anchor) not in anchors_of(resolved):
                errors.append(
                    f"{md_path}: dead anchor '{target}' (no such heading "
                    f"in {resolved})"
                )
    return errors


def main(argv: list) -> int:
    files = argv[1:]
    if not files:
        files = [
            p
            for p in ["README.md", "ROADMAP.md", "PAPER.md", "CHANGES.md"]
            if os.path.exists(p)
        ] + sorted(glob.glob("docs/*.md"))
    if not files:
        print("check_markdown_links: no markdown files found", file=sys.stderr)
        return 1

    all_errors = []
    for md in files:
        all_errors.extend(check_file(md))
    for err in all_errors:
        print(err, file=sys.stderr)
    print(
        f"checked {len(files)} file(s): "
        + ("OK" if not all_errors else f"{len(all_errors)} dead link(s)")
    )
    return min(len(all_errors), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
