// Append-only sampled time series.
//
// Simulation recorders append (t, value) pairs with non-decreasing t;
// analysis code then computes time-weighted statistics (how long the
// voltage stayed in a band, average consumed power, total charge, ...).
#pragma once

#include <cstddef>
#include <vector>

#include "util/histogram.hpp"
#include "util/interp.hpp"
#include "util/stats.hpp"

namespace pns {

/// Sampled signal: parallel vectors of time stamps (non-decreasing) and
/// values. Between samples the signal is treated as linearly interpolated.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Appends a sample; t must be >= the last appended t.
  void append(double t, double value);

  std::size_t size() const { return ts_.size(); }
  bool empty() const { return ts_.empty(); }

  const std::vector<double>& times() const { return ts_; }
  const std::vector<double>& values() const { return vs_; }

  double t_front() const;
  double t_back() const;
  /// Total covered duration (t_back - t_front); 0 for fewer than 2 samples.
  double duration() const;

  /// Linear interpolation at time t (clamped outside the sample range).
  double at(double t) const;

  /// Trapezoidal integral of the signal over its full duration
  /// (e.g. power series -> energy in joules).
  double integral() const;

  /// Trapezoidal integral over [a, b].
  double integral(double a, double b) const;

  /// Time-weighted mean over the full duration; plain mean for < 2 samples.
  double time_weighted_mean() const;

  /// Fraction of total duration during which the (interpolated) signal lies
  /// within [lo, hi]. Crossings inside a sampling interval are resolved by
  /// linear interpolation, so the result is exact for the piecewise-linear
  /// reconstruction.
  double fraction_within(double lo, double hi) const;

  /// Minimum / maximum sampled value (contract violation when empty).
  double min_value() const;
  double max_value() const;

  /// Accumulates the series into a histogram, weighting each segment's
  /// midpoint value by the segment duration ("time spent at each value").
  void fill_histogram(Histogram& h) const;

  /// Time-weighted running statistics over all segments.
  RunningStats segment_stats() const;

  /// Returns a copy downsampled to at most `max_points` samples (always
  /// keeps first and last). Used to bound bench output sizes.
  TimeSeries downsampled(std::size_t max_points) const;

 private:
  std::vector<double> ts_;
  std::vector<double> vs_;
};

}  // namespace pns
