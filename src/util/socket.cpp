#include "util/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "util/fault.hpp"

namespace pns::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

bool parse_port(const std::string& text, std::uint16_t& port) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long v = std::strtoul(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size() || v > 65535)
    return false;
  port = static_cast<std::uint16_t>(v);
  return true;
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path))
    throw SocketError("unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    // Not a dotted quad: resolve the name (getaddrinfo, IPv4).
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (getaddrinfo(ep.host.c_str(), nullptr, &hints, &res) != 0 || !res)
      throw SocketError("cannot resolve host: " + ep.host);
    addr.sin_addr =
        reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
    freeaddrinfo(res);
  }
  return addr;
}

}  // namespace

Endpoint Endpoint::parse(const std::string& spec) {
  const auto invalid = [&]() -> std::invalid_argument {
    return std::invalid_argument(
        "invalid endpoint '" + spec +
        "' (expected unix:PATH, tcp:HOST:PORT, tcp:PORT or HOST:PORT)");
  };
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) throw invalid();
    return ep;
  }
  std::string rest = spec;
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  const auto colon = rest.rfind(':');
  if (colon == std::string::npos) {
    // "tcp:PORT" -- loopback on the given port.
    if (rest == spec || !parse_port(rest, ep.port)) throw invalid();
    return ep;
  }
  const std::string host = rest.substr(0, colon);
  if (host.empty() || !parse_port(rest.substr(colon + 1), ep.port))
    throw invalid();
  ep.host = host;
  return ep;
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void set_nonblocking(int fd, bool on) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd, F_SETFL, want) < 0) throw_errno("fcntl(F_SETFL)");
}

Socket listen_endpoint(const Endpoint& ep, int backlog) {
  const int family = ep.kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET;
  Socket s(::socket(family, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket");
  if (ep.kind == Endpoint::Kind::kUnix) {
    // A stale socket file from a previous daemon would fail the bind.
    ::unlink(ep.path.c_str());
    const sockaddr_un addr = unix_addr(ep.path);
    if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0)
      throw_errno("bind " + ep.to_string());
  } else {
    const int one = 1;
    ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in addr = tcp_addr(ep);
    if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0)
      throw_errno("bind " + ep.to_string());
  }
  if (::listen(s.fd(), backlog) < 0) throw_errno("listen " + ep.to_string());
  return s;
}

namespace {

/// Completes a connect() that a signal interrupted. POSIX: after EINTR
/// the connection attempt continues asynchronously, so re-issuing
/// connect() yields EALREADY (or EISCONN) rather than success -- the
/// retry loop this replaces was wrong. Wait for writability, then read
/// the attempt's actual outcome from SO_ERROR.
int finish_interrupted_connect(int fd) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLOUT;
  int rc;
  do {
    rc = ::poll(&p, 1, -1);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return -1;
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) return -1;
  if (err != 0) {
    errno = err;
    return -1;
  }
  return 0;
}

int connect_once(int fd, const sockaddr* addr, socklen_t len) {
  int rc = ::connect(fd, addr, len);
  if (rc < 0 && errno == EINTR) rc = finish_interrupted_connect(fd);
  return rc;
}

}  // namespace

Socket connect_endpoint(const Endpoint& ep) {
  const int family = ep.kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET;
  Socket s(::socket(family, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket");
  int rc;
  if (ep.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = unix_addr(ep.path);
    rc = connect_once(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr));
  } else {
    const sockaddr_in addr = tcp_addr(ep);
    rc = connect_once(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr));
  }
  if (rc < 0) throw_errno("connect " + ep.to_string());
  if (ep.kind == Endpoint::Kind::kTcp) {
    // Row messages are latency-sensitive single lines; don't batch them.
    const int one = 1;
    ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return s;
}

Socket accept_connection(const Socket& listener) {
  int fd;
  do {
    fd = ::accept(listener.fd(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Socket();  // EAGAIN/transient: nothing pending
  return Socket(fd);
}

std::uint16_t local_port(const Socket& s) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    throw_errno("getsockname");
  return ntohs(addr.sin_port);
}

LineConn::LineConn(Socket s, std::size_t max_line)
    : sock_(std::move(s)), max_line_(max_line) {}

ssize_t LineConn::io_recv(char* buf, std::size_t cap) {
  for (;;) {
    std::size_t budget = cap;
    if (fault_) {
      if (fault_->drop_connection()) {
        // Model a severed link: from here every call on this connection
        // fails the way a real dead peer's would.
        sock_.close();
        errno = ECONNRESET;
        return -1;
      }
      // An injected interrupt takes the same retry edge a real one does.
      if (fault_->inject_eintr()) continue;
      budget = std::max<std::size_t>(1, fault_->clamp_read(cap));
    }
    const ssize_t n = ::recv(sock_.fd(), buf, budget, 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

ssize_t LineConn::io_send(const char* buf, std::size_t len) {
  for (;;) {
    std::size_t budget = len;
    if (fault_) {
      if (fault_->drop_connection()) {
        // Sever mid-frame: push a torn prefix first (what a dying
        // host's kernel may already have flushed), so the peer gets to
        // exercise its partial-line handling too.
        if (len > 1) ::send(sock_.fd(), buf, len / 2, MSG_NOSIGNAL);
        sock_.close();
        errno = ECONNRESET;
        return -1;
      }
      if (fault_->inject_eintr()) continue;
      budget = std::max<std::size_t>(1, fault_->clamp_write(len));
    }
    const ssize_t n = ::send(sock_.fd(), buf, budget, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

bool LineConn::drain_lines(std::vector<std::string>& out) {
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = read_buf_.find('\n', start);
    if (nl == std::string::npos) break;
    // The limit applies to complete lines too, not just the unterminated
    // tail -- an oversized frame that happens to arrive whole is still a
    // protocol violation, not a free pass.
    if (nl - start > max_line_) {
      overflowed_ = true;
      return false;
    }
    out.emplace_back(read_buf_, start, nl - start);
    start = nl + 1;
  }
  if (start > 0) read_buf_.erase(0, start);
  if (read_buf_.size() > max_line_) {
    overflowed_ = true;
    return false;
  }
  return true;
}

IoStatus LineConn::read_lines(std::vector<std::string>& out) {
  if (overflowed_) return IoStatus::kLineTooLong;
  // Mixed use with recv_line_blocking: hand over anything it framed.
  for (; next_pending_ < pending_lines_.size(); ++next_pending_)
    out.push_back(std::move(pending_lines_[next_pending_]));
  pending_lines_.clear();
  next_pending_ = 0;
  char chunk[16384];
  for (;;) {
    const ssize_t n = io_recv(chunk, sizeof(chunk));
    if (n > 0) {
      read_buf_.append(chunk, static_cast<std::size_t>(n));
      if (!drain_lines(out)) return IoStatus::kLineTooLong;
      continue;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kOk;
    return IoStatus::kError;
  }
}

void LineConn::queue_line(const std::string& line) {
  // Compact the consumed prefix occasionally so a long-lived streaming
  // connection doesn't grow its buffer without bound.
  if (write_pos_ > 0 && write_pos_ == write_buf_.size()) {
    write_buf_.clear();
    write_pos_ = 0;
  } else if (write_pos_ > (64u << 10)) {
    write_buf_.erase(0, write_pos_);
    write_pos_ = 0;
  }
  write_buf_ += line;
  write_buf_ += '\n';
}

IoStatus LineConn::flush() {
  while (write_pos_ < write_buf_.size()) {
    const ssize_t n = io_send(write_buf_.data() + write_pos_,
                              write_buf_.size() - write_pos_);
    if (n > 0) {
      write_pos_ += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kOk;
    return errno == EPIPE || errno == ECONNRESET ? IoStatus::kClosed
                                                 : IoStatus::kError;
  }
  return IoStatus::kOk;
}

bool LineConn::send_line_blocking(const std::string& line) {
  queue_line(line);
  const IoStatus st = flush();
  return st == IoStatus::kOk && !pending_write();
}

std::optional<std::string> LineConn::recv_line_blocking() {
  // Serve lines framed by an earlier read first.
  if (next_pending_ < pending_lines_.size())
    return std::move(pending_lines_[next_pending_++]);
  pending_lines_.clear();
  next_pending_ = 0;

  char chunk[16384];
  for (;;) {
    const ssize_t n = io_recv(chunk, sizeof(chunk));
    if (n > 0) {
      read_buf_.append(chunk, static_cast<std::size_t>(n));
      if (!drain_lines(pending_lines_)) return std::nullopt;
      if (pending_lines_.empty()) continue;
      return std::move(pending_lines_[next_pending_++]);
    }
    // EOF, EAGAIN (a blocking fd never sees it) and hard errors all end
    // the conversation for a blocking caller; EINTR was already retried.
    return std::nullopt;
  }
}

}  // namespace pns::net
