#include "util/crc32.hpp"

#include <array>

namespace pns {

namespace {

/// The 256-entry lookup table for the reflected IEEE polynomial,
/// computed once at first use (constexpr-built, so no init-order games).
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(std::string_view data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data)
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::string crc32_hex(std::uint32_t crc) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

}  // namespace pns
