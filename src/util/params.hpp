// Typed key=value parameter maps for spec strings.
//
// The open control/source plugin API addresses every policy and supply
// shape with a compact spec string -- "pns:v_q=0.04,ordering=freq-first",
// "gov:ondemand:period=0.05", "flicker:period=30,depth=0.5" -- whose
// parameter portion is a ParamMap: an ordered list of key=value pairs
// that parses and serialises losslessly (doubles are encoded with
// shortest_double, so a round-tripped map drives a bit-identical
// simulation). Registries pair a map with the ParamInfo list of the keys
// a kind accepts; validation errors name the offending key *and* the
// valid choices, matching the CLI's diagnostics convention.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pns {

/// Error raised for malformed parameter text, unknown keys, and values
/// that do not parse as the expected type. A distinct type (rather than a
/// contract violation) because spec strings are external input.
class ParamError : public std::runtime_error {
 public:
  explicit ParamError(const std::string& what) : std::runtime_error(what) {}
};

/// Declaration of one accepted parameter: consumed by validation
/// diagnostics and by `pns_sweep list`, so the advertised keys can never
/// drift from the accepted ones.
struct ParamInfo {
  std::string key;
  std::string type;           ///< "double", "int", "string", "bool", ...
  std::string default_value;  ///< rendered default (display only)
  std::string help;           ///< one-line description
};

/// Ordered key=value map with typed accessors.
///
/// Grammar: `key=value[,key=value...]`. Keys are `[A-Za-z0-9_.-]+`;
/// values are any characters except `,` (the pair separator) and are
/// split from the key at the first `=`. Duplicate keys are rejected.
/// Serialisation preserves insertion order, so parse -> serialize is the
/// identity on well-formed text.
class ParamMap {
 public:
  using Entry = std::pair<std::string, std::string>;

  ParamMap() = default;

  /// Parses `key=value,key=value`; empty text yields an empty map.
  /// Throws ParamError on a missing '=', an empty or malformed key, or a
  /// duplicate key.
  static ParamMap parse(std::string_view text);

  /// Inverse of parse: `key=value,key=value` in insertion order.
  std::string serialize() const;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

  bool has(const std::string& key) const { return find(key) != nullptr; }
  /// Raw value lookup; nullptr when absent.
  const std::string* find(const std::string& key) const;

  /// Inserts or overwrites the raw value for `key`.
  void set(std::string key, std::string value);
  /// Typed setters; set_double uses shortest_double so the value reads
  /// back as the bit-identical double.
  void set_double(const std::string& key, double v);
  void set_int(const std::string& key, std::int64_t v);
  void set_uint(const std::string& key, std::uint64_t v);
  void set_bool(const std::string& key, bool v);

  /// Typed getters return `fallback` when the key is absent and throw
  /// ParamError (naming the key, the expected type and the offending
  /// text) when the value does not parse.
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  /// get_int plus an int-range check, so narrow tunables reject
  /// overflowing values instead of silently wrapping.
  int get_int32(const std::string& key, int fallback) const;
  std::uint64_t get_uint(const std::string& key,
                         std::uint64_t fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;

  /// Throws ParamError when this map holds a key not declared in `valid`,
  /// listing the accepted keys. `context` prefixes the message (e.g.
  /// "control 'pns'").
  void validate_keys(const std::vector<ParamInfo>& valid,
                     const std::string& context) const;

  /// Type-checks every present value against its ParamInfo declaration
  /// ("double"/"int"/"uint"/"bool"; other types pass), so a malformed
  /// value fails at spec-parse time rather than mid-sweep. Keys must
  /// already have passed validate_keys.
  void validate_types(const std::vector<ParamInfo>& valid) const;

  bool operator==(const ParamMap&) const = default;

 private:
  std::vector<Entry> entries_;
};

/// Splits a spec string into its kind path and parameter text. The kind
/// is everything before the last ':' that precedes the first '=' (so
/// multi-segment kinds like "gov:ondemand" survive and values may contain
/// ':'); with no '=' present the whole text is the kind:
///   "pns"                       -> {"pns", ""}
///   "static:opp=4"              -> {"static", "opp=4"}
///   "gov:ondemand:period=0.05"  -> {"gov:ondemand", "period=0.05"}
struct SpecParts {
  std::string kind;
  std::string params;
};
SpecParts split_spec_string(std::string_view text);

/// Renders a ParamInfo list as "key=<type> (default), ..." for error
/// messages and `pns_sweep list`.
std::string describe_params(const std::vector<ParamInfo>& params);

}  // namespace pns
