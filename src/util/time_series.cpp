#include "util/time_series.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace pns {

void TimeSeries::append(double t, double value) {
  PNS_EXPECTS(ts_.empty() || t >= ts_.back());
  ts_.push_back(t);
  vs_.push_back(value);
}

double TimeSeries::t_front() const {
  PNS_EXPECTS(!empty());
  return ts_.front();
}

double TimeSeries::t_back() const {
  PNS_EXPECTS(!empty());
  return ts_.back();
}

double TimeSeries::duration() const {
  return size() < 2 ? 0.0 : ts_.back() - ts_.front();
}

double TimeSeries::at(double t) const {
  PNS_EXPECTS(!empty());
  if (t <= ts_.front()) return vs_.front();
  if (t >= ts_.back()) return vs_.back();
  const auto it = std::upper_bound(ts_.begin(), ts_.end(), t);
  const auto i = static_cast<std::size_t>(it - ts_.begin());
  const double t0 = ts_[i - 1], t1 = ts_[i];
  if (t1 == t0) return vs_[i];
  const double f = (t - t0) / (t1 - t0);
  return vs_[i - 1] + f * (vs_[i] - vs_[i - 1]);
}

double TimeSeries::integral() const {
  if (size() < 2) return 0.0;
  return integral(ts_.front(), ts_.back());
}

double TimeSeries::integral(double a, double b) const {
  PNS_EXPECTS(!empty());
  PNS_EXPECTS(a <= b);
  if (a == b) return 0.0;
  double total = 0.0;
  double t_prev = a;
  double v_prev = at(a);
  for (std::size_t i = 0; i < ts_.size(); ++i) {
    if (ts_[i] <= a) continue;
    if (ts_[i] >= b) break;
    total += 0.5 * (v_prev + vs_[i]) * (ts_[i] - t_prev);
    t_prev = ts_[i];
    v_prev = vs_[i];
  }
  total += 0.5 * (v_prev + at(b)) * (b - t_prev);
  return total;
}

double TimeSeries::time_weighted_mean() const {
  if (empty()) return 0.0;
  const double d = duration();
  if (d <= 0.0) return vs_.back();
  return integral() / d;
}

double TimeSeries::fraction_within(double lo, double hi) const {
  PNS_EXPECTS(lo <= hi);
  if (size() < 2) return 0.0;
  double inside = 0.0;
  for (std::size_t i = 1; i < ts_.size(); ++i) {
    const double dt = ts_[i] - ts_[i - 1];
    if (dt <= 0.0) continue;
    double v0 = vs_[i - 1];
    double v1 = vs_[i];
    if (v0 > v1) std::swap(v0, v1);  // segment range [v0, v1]
    if (v1 <= lo || v0 >= hi) {
      if ((v0 >= lo && v1 <= hi)) inside += dt;  // degenerate equal-edge case
      continue;
    }
    if (v1 == v0) {
      if (v0 >= lo && v0 <= hi) inside += dt;
      continue;
    }
    // Fraction of the segment's value span that overlaps [lo, hi]; since the
    // reconstruction is linear in t, value-fraction == time-fraction.
    const double span = v1 - v0;
    const double overlap = std::min(v1, hi) - std::max(v0, lo);
    if (overlap > 0.0) inside += dt * overlap / span;
  }
  const double d = duration();
  return d > 0.0 ? inside / d : 0.0;
}

double TimeSeries::min_value() const {
  PNS_EXPECTS(!empty());
  return *std::min_element(vs_.begin(), vs_.end());
}

double TimeSeries::max_value() const {
  PNS_EXPECTS(!empty());
  return *std::max_element(vs_.begin(), vs_.end());
}

void TimeSeries::fill_histogram(Histogram& h) const {
  for (std::size_t i = 1; i < ts_.size(); ++i) {
    const double dt = ts_[i] - ts_[i - 1];
    if (dt <= 0.0) continue;
    h.add_weighted(0.5 * (vs_[i] + vs_[i - 1]), dt);
  }
}

RunningStats TimeSeries::segment_stats() const {
  RunningStats rs;
  for (std::size_t i = 1; i < ts_.size(); ++i) {
    const double dt = ts_[i] - ts_[i - 1];
    if (dt <= 0.0) continue;
    rs.add_weighted(0.5 * (vs_[i] + vs_[i - 1]), dt);
  }
  return rs;
}

TimeSeries TimeSeries::downsampled(std::size_t max_points) const {
  PNS_EXPECTS(max_points >= 2);
  if (size() <= max_points) return *this;
  TimeSeries out;
  const double step = static_cast<double>(size() - 1) /
                      static_cast<double>(max_points - 1);
  for (std::size_t k = 0; k < max_points; ++k) {
    const auto i = static_cast<std::size_t>(
        std::llround(static_cast<double>(k) * step));
    out.append(ts_[std::min(i, size() - 1)], vs_[std::min(i, size() - 1)]);
  }
  return out;
}

}  // namespace pns
