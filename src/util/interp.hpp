// Piecewise-linear function of one variable.
//
// Backbone of every table-driven model in the library: irradiance traces,
// measured IV curves, latency tables and supply profiles are all
// PiecewiseLinear instances. Evaluation clamps outside the knot range
// (constant extrapolation), which is the physically sensible behaviour for
// all of those uses.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace pns {

/// Immutable-after-build piecewise-linear function y(x) defined by knots
/// with strictly increasing x. Evaluation is O(log n).
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;

  /// Builds from parallel knot vectors. Requires equal non-zero sizes and
  /// strictly increasing xs.
  PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

  /// Builds from (x, y) pairs; pairs are sorted by x first.
  static PiecewiseLinear from_pairs(
      std::vector<std::pair<double, double>> pts);

  /// Number of knots.
  std::size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  double x_front() const;
  double x_back() const;

  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& ys() const { return ys_; }

  /// Interpolated value; clamps to the end values outside [x_front, x_back].
  double operator()(double x) const;

  /// Same result as operator() -- bit for bit -- but O(1) for the
  /// mostly-monotone access patterns of a simulation loop: `hint` caches
  /// the last knot index between calls and is first checked (and its right
  /// neighbour) before falling back to binary search. Callers keep one
  /// hint per traversal; any value (including stale ones) is safe.
  double eval_hinted(double x, std::size_t& hint) const;

  /// Largest X >= x such that y is constant on [x, X]: the end of the
  /// run of level segments containing x, +infinity when that run reaches
  /// the last knot (clamped extrapolation is constant), or `x` itself
  /// when the containing segment has slope. Powers the steady-state
  /// coasting fast path's "source is flat until" query.
  double flat_until(double x) const;

  /// Same result as flat_until -- bit for bit -- with the hinted O(1)
  /// bracket lookup of eval_hinted. The simulation loop asks this once
  /// per segment at near-monotone times, which otherwise pays a binary
  /// search over the whole trace every segment.
  double flat_until_hinted(double x, std::size_t& hint) const;

  /// Derivative dy/dx of the segment containing x (one-sided at knots,
  /// 0 outside the knot range).
  double slope_at(double x) const;

  /// Trapezoidal integral of y dx over [a, b] (a <= b), with the same
  /// clamped extrapolation as operator().
  double integrate(double a, double b) const;

  /// Returns a new function with every y multiplied by `factor`.
  PiecewiseLinear scaled(double factor) const;

  /// Smallest x in [x_front, x_back] where y crosses `level`, searching
  /// segment by segment; returns `fallback` when no crossing exists.
  double first_crossing(double level, double fallback) const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace pns
