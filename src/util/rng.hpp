// Deterministic random number generation for reproducible simulations.
//
// Xoshiro256++ seeded via SplitMix64: fast, high-quality, and fully
// deterministic across platforms (unlike std::default_random_engine whose
// distributions are implementation-defined). All stochastic components of
// the library (weather synthesis, random search) take a pns::Rng or a seed
// so that every experiment is repeatable bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace pns {

/// Xoshiro256++ PRNG with portable, deterministic distribution helpers.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed (expanded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal deviate (Marsaglia polar method, deterministic).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential deviate with the given mean (i.e. rate 1/mean).
  double exponential(double mean);

  /// Uniform integer in [0, n), n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Returns true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Derives an independent child generator (for parallel streams).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace pns
