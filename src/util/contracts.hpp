// Lightweight contract checking (C++ Core Guidelines I.6/I.8 style).
//
// PNS_EXPECTS(cond)  -- precondition; throws pns::ContractViolation on failure.
// PNS_ENSURES(cond)  -- postcondition; same behaviour.
//
// Throwing (rather than aborting) keeps contract failures testable with
// gtest and recoverable in long-running sweeps.
#pragma once

#include <stdexcept>
#include <string>

namespace pns {

/// Thrown when a PNS_EXPECTS / PNS_ENSURES contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace pns

#define PNS_EXPECTS(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::pns::detail::contract_fail("precondition", #cond, __FILE__,      \
                                   __LINE__);                            \
  } while (false)

#define PNS_ENSURES(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::pns::detail::contract_fail("postcondition", #cond, __FILE__,     \
                                   __LINE__);                            \
  } while (false)
