#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/contracts.hpp"

namespace pns {

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PNS_EXPECTS(!headers_.empty());
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  PNS_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void ConsoleTable::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      os << (c + 1 < row.size() ? " | " : " |");
    }
    os << '\n';
  };

  std::size_t total = 1;
  for (std::size_t w : widths) total += w + 3;

  if (!title.empty()) os << title << '\n';
  os << std::string(total, '-') << '\n';
  print_row(headers_);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  os << std::string(total, '-') << '\n';
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_mmss(double seconds) {
  const long total = std::lround(std::max(0.0, seconds));
  char buf[32];
  std::snprintf(buf, sizeof buf, "%02ld:%02ld", total / 60, total % 60);
  return buf;
}

std::string fmt_hhmm(double seconds_since_midnight) {
  long total = std::lround(std::max(0.0, seconds_since_midnight));
  total %= 24 * 3600;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%02ld:%02ld", total / 3600,
                (total % 3600) / 60);
  return buf;
}

}  // namespace pns
