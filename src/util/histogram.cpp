#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/contracts.hpp"

namespace pns {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  PNS_EXPECTS(lo < hi);
  PNS_EXPECTS(bins >= 1);
}

void Histogram::add_weighted(double x, double weight) {
  PNS_EXPECTS(weight >= 0.0);
  if (weight == 0.0) return;
  if (x < lo_) {
    underflow_ += weight;
  } else if (x >= hi_) {
    overflow_ += weight;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);  // guard FP edge at hi_
    counts_[idx] += weight;
  }
}

double Histogram::bin_lo(std::size_t i) const {
  PNS_EXPECTS(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_center(std::size_t i) const {
  return bin_lo(i) + width_ / 2.0;
}

double Histogram::weight(std::size_t i) const {
  PNS_EXPECTS(i < counts_.size());
  return counts_[i];
}

double Histogram::total_weight() const {
  return std::accumulate(counts_.begin(), counts_.end(), 0.0) + underflow_ +
         overflow_;
}

double Histogram::fraction(std::size_t i) const {
  const double total = total_weight();
  if (total <= 0.0) return 0.0;
  return weight(i) / total;
}

std::size_t Histogram::mode_bin() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string Histogram::to_string(std::size_t max_bar) const {
  std::ostringstream os;
  double peak = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    peak = std::max(peak, fraction(i));
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double frac = fraction(i);
    const auto bar = peak > 0.0
                         ? static_cast<std::size_t>(std::round(
                               frac / peak * static_cast<double>(max_bar)))
                         : 0;
    char buf[96];
    std::snprintf(buf, sizeof buf, "%8.3f..%-8.3f %6.2f%% |", bin_lo(i),
                  bin_lo(i) + width_, frac * 100.0);
    os << buf << std::string(bar, '#') << '\n';
  }
  return os.str();
}

}  // namespace pns
