// Portable fixed-width SIMD vectors over compiler vector extensions.
//
// VecD<W> packs W doubles and exposes exactly the elementwise operations
// the batched kernels need: +,-,*,/ and unary minus, abs/min/max with
// std::fabs/std::min/std::max semantics, IEEE comparisons yielding a
// per-lane mask, and a bitwise select. Every operation is elementwise
// IEEE-754 double arithmetic, so a VecD computation is bit-identical to
// the same expression written as W scalar statements -- which is the
// whole point: the lockstep engine's SIMD path (ehsim/solar_cell_simd,
// ehsim/rk23_batch) promises byte-identical results to the scalar
// integrator, and the abstraction must not be able to break that promise.
//
// Two interchangeable implementations sit behind the VecD<W> alias:
//   * native   -- GCC/Clang vector extensions (vector_size attribute);
//                 no intrinsics headers, no target-specific code, the
//                 compiler lowers to whatever the ISA offers and
//                 synthesises the rest.
//   * fallback -- a plain double array with scalar loops. Selected at
//                 compile time by -DPNS_SIMD_DISABLE (the CMake
//                 PNS_SIMD=off leg) or on compilers without the
//                 extension. Both implementations are always *compiled*
//                 (the fallback is a template either way) and the unit
//                 tests exercise both, so the off-switch cannot rot.
//
// Contraction: expressions over VecD must not be FMA-fused where the
// matching scalar code is not. The TUs that use VecD for bit-sensitive
// math pin -ffp-contract=off (see CMakeLists.txt); this header contains
// no arithmetic of its own beyond single operations, which are immune.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#if !defined(PNS_SIMD_DISABLE) && (defined(__GNUC__) || defined(__clang__))
#define PNS_SIMD_NATIVE 1
#else
#define PNS_SIMD_NATIVE 0
#endif

// Vectors wider than the target baseline (e.g. 32/64-byte doubles on
// plain x86-64) draw a -Wpsabi note about their parameter-passing ABI.
// Irrelevant here: every VecD function is inline and header-only, so no
// vector ever crosses a compiled ABI boundary.
#if PNS_SIMD_NATIVE && defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

namespace pns::simd {

/// True when VecD<W> is backed by compiler vector extensions in this
/// build (PNS_SIMD=auto on GCC/Clang); false in the forced-scalar build.
inline constexpr bool kNativeVectors = PNS_SIMD_NATIVE != 0;

/// Chunk width the packed kernels process at a time. 4 doubles spans one
/// AVX2 register and two SSE2 / NEON registers; the compiler splits or
/// widens as the target allows, so there is no per-ISA tuning here.
inline constexpr int kDefaultWidth = 4;

template <int W, bool Native>
struct VecDImpl;

// ------------------------------------------------------------- fallback
/// Scalar-array implementation: semantics documentation for the native
/// one, and the only implementation when PNS_SIMD_DISABLE is set.
template <int W>
struct VecDImpl<W, false> {
  static constexpr int kWidth = W;
  double lane[W];

  struct Mask {
    bool lane[W];
    bool test(int i) const { return lane[i]; }
    bool any() const {
      for (int i = 0; i < W; ++i)
        if (lane[i]) return true;
      return false;
    }
    friend Mask operator&(Mask a, Mask b) {
      Mask r;
      for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] && b.lane[i];
      return r;
    }
    friend Mask operator|(Mask a, Mask b) {
      Mask r;
      for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] || b.lane[i];
      return r;
    }
    friend Mask operator~(Mask a) {
      Mask r;
      for (int i = 0; i < W; ++i) r.lane[i] = !a.lane[i];
      return r;
    }
  };

  static VecDImpl broadcast(double x) {
    VecDImpl r;
    for (int i = 0; i < W; ++i) r.lane[i] = x;
    return r;
  }
  static VecDImpl load(const double* p) {
    VecDImpl r;
    for (int i = 0; i < W; ++i) r.lane[i] = p[i];
    return r;
  }
  void store(double* p) const {
    for (int i = 0; i < W; ++i) p[i] = lane[i];
  }
  double operator[](int i) const { return lane[i]; }
  void set(int i, double x) { lane[i] = x; }

#define PNS_SIMD_FALLBACK_BINOP(op)                        \
  friend VecDImpl operator op(VecDImpl a, VecDImpl b) {    \
    VecDImpl r;                                            \
    for (int i = 0; i < W; ++i)                            \
      r.lane[i] = a.lane[i] op b.lane[i];                  \
    return r;                                              \
  }
  PNS_SIMD_FALLBACK_BINOP(+)
  PNS_SIMD_FALLBACK_BINOP(-)
  PNS_SIMD_FALLBACK_BINOP(*)
  PNS_SIMD_FALLBACK_BINOP(/)
#undef PNS_SIMD_FALLBACK_BINOP

  friend VecDImpl operator-(VecDImpl a) {
    VecDImpl r;
    for (int i = 0; i < W; ++i) r.lane[i] = -a.lane[i];
    return r;
  }

#define PNS_SIMD_FALLBACK_CMP(name, op)               \
  friend Mask name(VecDImpl a, VecDImpl b) {          \
    Mask r;                                           \
    for (int i = 0; i < W; ++i)                       \
      r.lane[i] = a.lane[i] op b.lane[i];             \
    return r;                                         \
  }
  PNS_SIMD_FALLBACK_CMP(cmp_lt, <)
  PNS_SIMD_FALLBACK_CMP(cmp_gt, >)
#undef PNS_SIMD_FALLBACK_CMP

  /// std::fabs per lane (clears the sign bit, -0.0 -> +0.0).
  friend VecDImpl vabs(VecDImpl a) {
    VecDImpl r;
    for (int i = 0; i < W; ++i) r.lane[i] = std::fabs(a.lane[i]);
    return r;
  }
  /// std::max semantics per lane: (a < b) ? b : a.
  friend VecDImpl vmax(VecDImpl a, VecDImpl b) {
    VecDImpl r;
    for (int i = 0; i < W; ++i) r.lane[i] = std::max(a.lane[i], b.lane[i]);
    return r;
  }
  /// std::min semantics per lane: (b < a) ? b : a.
  friend VecDImpl vmin(VecDImpl a, VecDImpl b) {
    VecDImpl r;
    for (int i = 0; i < W; ++i) r.lane[i] = std::min(a.lane[i], b.lane[i]);
    return r;
  }
  /// Per-lane m ? a : b (a bitwise blend in the native implementation;
  /// for doubles selected whole, the two are indistinguishable).
  friend VecDImpl select(Mask m, VecDImpl a, VecDImpl b) {
    VecDImpl r;
    for (int i = 0; i < W; ++i) r.lane[i] = m.lane[i] ? a.lane[i] : b.lane[i];
    return r;
  }
};

// --------------------------------------------------------------- native
#if PNS_SIMD_NATIVE

/// Width-specific vector typedefs. vector_size wants an integral
/// constant, so the supported widths are enumerated instead of computed.
template <int W>
struct NativeVecTypes;
template <>
struct NativeVecTypes<2> {
  typedef double V __attribute__((vector_size(16)));
  typedef long long M __attribute__((vector_size(16)));
  typedef unsigned long long U __attribute__((vector_size(16)));
};
template <>
struct NativeVecTypes<4> {
  typedef double V __attribute__((vector_size(32)));
  typedef long long M __attribute__((vector_size(32)));
  typedef unsigned long long U __attribute__((vector_size(32)));
};
template <>
struct NativeVecTypes<8> {
  typedef double V __attribute__((vector_size(64)));
  typedef long long M __attribute__((vector_size(64)));
  typedef unsigned long long U __attribute__((vector_size(64)));
};

template <int W>
struct VecDImpl<W, true> {
  static constexpr int kWidth = W;
  using V = typename NativeVecTypes<W>::V;
  using MV = typename NativeVecTypes<W>::M;
  using UV = typename NativeVecTypes<W>::U;
  V v;

  struct Mask {
    MV m;  ///< per-lane all-ones (true) / all-zeros (false)
    bool test(int i) const { return m[i] != 0; }
    bool any() const {
      long long r = 0;  // branchless OR-reduce: any() runs once per
      for (int i = 0; i < W; ++i) r |= m[i];  // kernel iteration
      return r != 0;
    }
    friend Mask operator&(Mask a, Mask b) { return {a.m & b.m}; }
    friend Mask operator|(Mask a, Mask b) { return {a.m | b.m}; }
    friend Mask operator~(Mask a) { return {~a.m}; }
  };

  static VecDImpl broadcast(double x) {
    VecDImpl r;
    for (int i = 0; i < W; ++i) r.v[i] = x;
    return r;
  }
  static VecDImpl load(const double* p) {
    VecDImpl r;
    for (int i = 0; i < W; ++i) r.v[i] = p[i];
    return r;
  }
  void store(double* p) const {
    for (int i = 0; i < W; ++i) p[i] = v[i];
  }
  double operator[](int i) const { return v[i]; }
  void set(int i, double x) { v[i] = x; }

  friend VecDImpl operator+(VecDImpl a, VecDImpl b) { return {a.v + b.v}; }
  friend VecDImpl operator-(VecDImpl a, VecDImpl b) { return {a.v - b.v}; }
  friend VecDImpl operator*(VecDImpl a, VecDImpl b) { return {a.v * b.v}; }
  friend VecDImpl operator/(VecDImpl a, VecDImpl b) { return {a.v / b.v}; }
  friend VecDImpl operator-(VecDImpl a) { return {-a.v}; }

  friend Mask cmp_lt(VecDImpl a, VecDImpl b) { return {a.v < b.v}; }
  friend Mask cmp_gt(VecDImpl a, VecDImpl b) { return {a.v > b.v}; }

  friend VecDImpl vabs(VecDImpl a) {
    // fabs: clear the sign bit. Exact for every value incl. -0.0 / NaN.
    const UV sign = std::bit_cast<UV>(broadcast(-0.0).v);
    return {std::bit_cast<V>(std::bit_cast<UV>(a.v) & ~sign)};
  }
  friend VecDImpl vmax(VecDImpl a, VecDImpl b) {
    return select(cmp_lt(a, b), b, a);  // std::max: (a < b) ? b : a
  }
  friend VecDImpl vmin(VecDImpl a, VecDImpl b) {
    return select(cmp_lt(b, a), b, a);  // std::min: (b < a) ? b : a
  }
  friend VecDImpl select(Mask m, VecDImpl a, VecDImpl b) {
    const UV mu = std::bit_cast<UV>(m.m);
    return {std::bit_cast<V>((std::bit_cast<UV>(a.v) & mu) |
                             (std::bit_cast<UV>(b.v) & ~mu))};
  }
};

#endif  // PNS_SIMD_NATIVE

/// The width-W double vector of this build (native or fallback).
template <int W>
using VecD = VecDImpl<W, kNativeVectors>;

}  // namespace pns::simd
