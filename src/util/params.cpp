#include "util/params.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "util/json.hpp"

namespace pns {

namespace {

bool valid_key(std::string_view key) {
  if (key.empty()) return false;
  for (char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

[[noreturn]] void bad_value(const std::string& key, const char* type,
                            const std::string& text) {
  throw ParamError("param '" + key + "': expected " + type + ", got '" +
                   text + "'");
}

double parse_double(const std::string& key, const std::string& text) {
  if (text.empty()) bad_value(key, "a number", text);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) bad_value(key, "a number", text);
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL))
    bad_value(key, "a representable number", text);
  return v;
}

}  // namespace

ParamMap ParamMap::parse(std::string_view text) {
  ParamMap map;
  if (!text.empty() && text.back() == ',')
    throw ParamError("malformed parameter text '" + std::string(text) +
                     "': trailing ','");
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view pair = text.substr(pos, comma - pos);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos)
      throw ParamError("malformed parameter '" + std::string(pair) +
                       "': expected key=value");
    const std::string key(pair.substr(0, eq));
    if (!valid_key(key))
      throw ParamError("malformed parameter key '" + key +
                       "': keys are [A-Za-z0-9_.-]+");
    if (map.has(key)) throw ParamError("duplicate parameter '" + key + "'");
    map.entries_.emplace_back(key, std::string(pair.substr(eq + 1)));
    pos = comma + 1;
  }
  return map;
}

std::string ParamMap::serialize() const {
  std::string out;
  for (const auto& [key, value] : entries_) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

const std::string* ParamMap::find(const std::string& key) const {
  for (const auto& [k, v] : entries_)
    if (k == key) return &v;
  return nullptr;
}

void ParamMap::set(std::string key, std::string value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(std::move(key), std::move(value));
}

void ParamMap::set_double(const std::string& key, double v) {
  set(key, shortest_double(v));
}

void ParamMap::set_int(const std::string& key, std::int64_t v) {
  set(key, std::to_string(v));
}

void ParamMap::set_uint(const std::string& key, std::uint64_t v) {
  set(key, std::to_string(v));
}

void ParamMap::set_bool(const std::string& key, bool v) {
  set(key, v ? "true" : "false");
}

double ParamMap::get_double(const std::string& key, double fallback) const {
  const std::string* v = find(key);
  return v ? parse_double(key, *v) : fallback;
}

std::int64_t ParamMap::get_int(const std::string& key,
                               std::int64_t fallback) const {
  const std::string* v = find(key);
  if (!v) return fallback;
  if (v->empty()) bad_value(key, "an integer", *v);
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (end != v->c_str() + v->size()) bad_value(key, "an integer", *v);
  if (errno == ERANGE) bad_value(key, "a representable integer", *v);
  return parsed;
}

int ParamMap::get_int32(const std::string& key, int fallback) const {
  const std::int64_t v = get_int(key, fallback);
  // Refuse to truncate rather than silently wrap (down_factor=2^32+1
  // must not become 1).
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max())
    bad_value(key, "a 32-bit integer", *find(key));
  return static_cast<int>(v);
}

std::uint64_t ParamMap::get_uint(const std::string& key,
                                 std::uint64_t fallback) const {
  const std::string* v = find(key);
  if (!v) return fallback;
  if (v->empty() || (*v)[0] == '-')
    bad_value(key, "a non-negative integer", *v);
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(v->c_str(), &end, 10);
  if (end != v->c_str() + v->size())
    bad_value(key, "a non-negative integer", *v);
  if (errno == ERANGE) bad_value(key, "a representable integer", *v);
  return parsed;
}

bool ParamMap::get_bool(const std::string& key, bool fallback) const {
  const std::string* v = find(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1") return true;
  if (*v == "false" || *v == "0") return false;
  bad_value(key, "a bool (true/false/1/0)", *v);
}

std::string ParamMap::get_string(const std::string& key,
                                 const std::string& fallback) const {
  const std::string* v = find(key);
  return v ? *v : fallback;
}

void ParamMap::validate_keys(const std::vector<ParamInfo>& valid,
                             const std::string& context) const {
  for (const auto& [key, value] : entries_) {
    bool known = false;
    for (const auto& info : valid) known = known || info.key == key;
    if (known) continue;
    std::string msg = context + ": unknown param '" + key + "'";
    if (valid.empty()) {
      msg += " (takes no params)";
    } else {
      msg += " (valid: " + describe_params(valid) + ")";
    }
    throw ParamError(msg);
  }
}

void ParamMap::validate_types(const std::vector<ParamInfo>& valid) const {
  for (const auto& info : valid) {
    if (!has(info.key)) continue;
    if (info.type == "double") {
      (void)get_double(info.key, 0.0);
    } else if (info.type == "int") {
      (void)get_int(info.key, 0);
    } else if (info.type == "uint") {
      (void)get_uint(info.key, 0);
    } else if (info.type == "bool") {
      (void)get_bool(info.key, false);
    }
  }
}

SpecParts split_spec_string(std::string_view text) {
  const std::size_t eq = text.find('=');
  if (eq == std::string_view::npos)
    return {std::string(text), std::string()};
  const std::size_t colon = text.rfind(':', eq);
  if (colon == std::string_view::npos)
    throw ParamError("malformed spec '" + std::string(text) +
                     "': expected kind[:key=value,...]");
  return {std::string(text.substr(0, colon)),
          std::string(text.substr(colon + 1))};
}

std::string describe_params(const std::vector<ParamInfo>& params) {
  std::string out;
  for (const auto& p : params) {
    if (!out.empty()) out += ", ";
    out += p.key;
    out += "=<" + p.type + ">";
  }
  return out;
}

}  // namespace pns
