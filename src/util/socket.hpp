// POSIX stream sockets + newline framing for the sweep daemon protocol.
//
// The `pns_sweepd` wire format is JSON Lines: one compact JSON document
// per '\n'-terminated line (util/json writes and parses the documents;
// this header moves the bytes). Two address families are supported,
// selected by an Endpoint spec string:
//
//   "unix:/run/pns/sweepd.sock"   -- Unix domain socket (local workers)
//   "tcp:host:port"               -- TCP (remote workers); "tcp:port" and
//                                    a bare "host:port" also parse
//
// Socket is a move-only RAII fd. LineConn layers buffered line framing on
// top: a bounded read buffer that yields complete lines (an over-long
// line is a protocol error, not an allocation bomb), a write buffer that
// absorbs partial non-blocking writes, and blocking send/receive helpers
// for the worker/client side where a simple sequential loop is clearer
// than a poll state machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/types.h>

namespace pns::fault {
class FaultInjector;
}

namespace pns::net {

/// Error raised for socket-level failures (bind/connect/accept/IO); the
/// message carries the endpoint and errno text.
class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& what) : std::runtime_error(what) {}
};

/// A parsed listen/connect address.
struct Endpoint {
  enum class Kind { kTcp, kUnix };

  Kind kind = Kind::kTcp;
  std::string host = "127.0.0.1";  ///< TCP only
  std::uint16_t port = 0;          ///< TCP only; 0 = ephemeral (tests)
  std::string path;                ///< Unix only

  /// Parses "unix:PATH", "tcp:HOST:PORT", "tcp:PORT" or "HOST:PORT".
  /// Throws std::invalid_argument naming the accepted forms.
  static Endpoint parse(const std::string& spec);

  /// Round-trippable spec string ("unix:/x", "tcp:127.0.0.1:7654").
  std::string to_string() const;
};

/// Move-only owning file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();
  /// Releases ownership without closing.
  int release();

 private:
  int fd_ = -1;
};

/// Creates a listening socket bound to `ep` (SO_REUSEADDR for TCP; an
/// existing Unix socket file is unlinked first). Throws SocketError.
Socket listen_endpoint(const Endpoint& ep, int backlog = 16);

/// Connects to `ep` (blocking). Throws SocketError.
Socket connect_endpoint(const Endpoint& ep);

/// Accepts one pending connection; an invalid Socket when none is
/// pending (EAGAIN) or the accept was interrupted.
Socket accept_connection(const Socket& listener);

/// The port a bound TCP socket actually listens on (resolves port 0).
std::uint16_t local_port(const Socket& s);

void set_nonblocking(int fd, bool on);

/// Result of a LineConn IO step.
enum class IoStatus {
  kOk,           ///< progress made (possibly zero bytes; retry later)
  kClosed,       ///< orderly EOF from the peer
  kError,        ///< connection-level error (errno-style failure)
  kLineTooLong,  ///< peer sent a line beyond the framing limit
};

/// Newline framing over one connected socket.
///
/// The daemon drives read_lines()/flush() from a poll loop on a
/// non-blocking fd; workers and clients use the *_blocking helpers on a
/// blocking fd. Lines handed to queue_line/send_line_blocking must not
/// contain '\n' (the frame delimiter is appended here).
class LineConn {
 public:
  /// Takes ownership of `s`. `max_line` bounds one *incoming* line
  /// (delimiter excluded); the JSON-lines messages this protocol reads
  /// are row-sized, so the default is generous rather than tight.
  explicit LineConn(Socket s, std::size_t max_line = 4u << 20);

  int fd() const { return sock_.fd(); }
  bool valid() const { return sock_.valid(); }
  void close() { sock_.close(); }

  /// Attaches a deterministic fault injector (util/fault.hpp): every
  /// recv/send on this connection then consults it for forced short
  /// reads/writes, injected EINTRs and mid-frame connection drops.
  /// Null (the default) means no faults. Injected failures surface
  /// through the normal IoStatus/optional paths -- callers cannot tell
  /// a scheduled fault from a real one, which is the point.
  void set_fault(std::shared_ptr<fault::FaultInjector> fault) {
    fault_ = std::move(fault);
  }

  /// Non-blocking read step: consumes whatever the socket has and
  /// appends every complete line to `out` (delimiter stripped). kOk
  /// means "call again when readable"; kClosed reports EOF *after* any
  /// final complete lines were delivered. On kLineTooLong the connection
  /// must be dropped -- the stream can no longer be re-synchronised.
  IoStatus read_lines(std::vector<std::string>& out);

  /// Queues `line` + '\n' on the write buffer (no IO yet).
  void queue_line(const std::string& line);
  /// Non-blocking write step; kOk with pending_write() still true means
  /// "poll for writability".
  IoStatus flush();
  bool pending_write() const { return write_pos_ < write_buf_.size(); }

  /// Blocking send of one framed line (loops over partial writes).
  /// Returns false when the peer is gone.
  bool send_line_blocking(const std::string& line);
  /// Blocking receive of the next line; nullopt on EOF or error (an
  /// over-long line counts as an error: the stream is unrecoverable).
  std::optional<std::string> recv_line_blocking();

 private:
  Socket sock_;
  std::size_t max_line_;
  std::string read_buf_;
  std::string write_buf_;
  std::size_t write_pos_ = 0;
  bool overflowed_ = false;
  /// Lines already framed but not yet handed out (recv_line_blocking
  /// yields one line per call; a read may deliver several).
  std::vector<std::string> pending_lines_;
  std::size_t next_pending_ = 0;
  std::shared_ptr<fault::FaultInjector> fault_;

  /// Splits complete lines out of read_buf_; false on overflow.
  bool drain_lines(std::vector<std::string>& out);

  /// The single recv/send funnels: uniform EINTR retry (real and
  /// injected interrupts alike), fault hooks, EAGAIN passed through to
  /// the caller. Every byte this connection moves goes through these.
  ssize_t io_recv(char* buf, std::size_t cap);
  ssize_t io_send(const char* buf, std::size_t len);
};

}  // namespace pns::net
