// Uniform-bin histogram with optional sample weights.
//
// Used for the "time spent at each operating voltage" analysis of Fig. 13:
// samples are voltages weighted by the dwell time at that voltage, so the
// normalised histogram is the fraction of total time per voltage bin.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pns {

/// Fixed-range uniform-bin histogram. Out-of-range samples accumulate in
/// dedicated underflow/overflow counters so no weight is silently dropped.
class Histogram {
 public:
  /// Creates `bins` equal-width bins covering [lo, hi). Requires lo < hi
  /// and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds a sample with weight 1.
  void add(double x) { add_weighted(x, 1.0); }

  /// Adds a sample with a non-negative weight.
  void add_weighted(double x, double weight);

  std::size_t bin_count() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const { return width_; }

  /// Lower edge of bin i.
  double bin_lo(std::size_t i) const;
  /// Centre of bin i.
  double bin_center(std::size_t i) const;

  /// Accumulated weight in bin i.
  double weight(std::size_t i) const;
  /// Weight of samples below lo() / at or above hi().
  double underflow() const { return underflow_; }
  double overflow() const { return overflow_; }

  /// Total accumulated weight including under/overflow.
  double total_weight() const;

  /// Fraction of total weight in bin i (0 if histogram is empty).
  double fraction(std::size_t i) const;

  /// Index of the heaviest bin (0 if empty).
  std::size_t mode_bin() const;

  /// Multi-line "bin_lo..bin_hi : fraction" rendering with unit bars,
  /// useful for quick console inspection in benches.
  std::string to_string(std::size_t max_bar = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
};

}  // namespace pns
