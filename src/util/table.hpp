// Console table rendering for the benchmark harnesses.
//
// Every bench binary prints the rows/series of the paper table or figure it
// reproduces; ConsoleTable gives them a uniform, aligned plain-text format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace pns {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class ConsoleTable {
 public:
  /// Creates a table with the given column headers.
  explicit ConsoleTable(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with column alignment, a header separator and optional title.
  void print(std::ostream& os, const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places.
std::string fmt_double(double v, int digits = 3);

/// Formats a duration in seconds as "mm:ss" (rounded to whole seconds),
/// matching the lifetime column of Table II.
std::string fmt_mmss(double seconds);

/// Formats a time-of-day in seconds-since-midnight as "HH:mm".
std::string fmt_hhmm(double seconds_since_midnight);

}  // namespace pns
