#include "util/fault.hpp"

#include <algorithm>

namespace pns::fault {

namespace {

constexpr const char* kSiteNames[kFaultSiteCount] = {
    "conn_drop", "short_read", "short_write",
    "eintr",     "fsync",      "torn_append",
};

/// Validates a probability knob (ParamError keeps the CLI diagnostics
/// convention: name the key, show the offending value).
double checked_probability(const ParamMap& params, const char* key) {
  const double p = params.get_double(key, 0.0);
  if (p < 0.0 || p > 1.0)
    throw ParamError(std::string("fault spec: '") + key + "' must be a " +
                     "probability in [0,1], got " + *params.find(key));
  return p;
}

}  // namespace

const std::vector<ParamInfo>& FaultSpec::params() {
  static const std::vector<ParamInfo> infos = {
      {"seed", "uint", "1", "master seed; same seed = same injection "
                            "sequence"},
      {"conn_drop", "double", "0",
       "P(sever the connection at a socket call)"},
      {"short_read", "double", "0", "P(truncate one recv's byte budget)"},
      {"short_write", "double", "0", "P(truncate one send's byte budget)"},
      {"eintr", "double", "0", "P(start a 1-3 call EINTR storm)"},
      {"fsync_fail", "uint", "0", "fail exactly the Nth fsync (1-based)"},
      {"fsync_fail_from", "uint", "0",
       "fail every fsync from the Nth on (dead disk)"},
      {"torn_append", "double", "0",
       "P(tear a journal line mid-append)"},
  };
  return infos;
}

FaultSpec FaultSpec::parse(const std::string& text) {
  std::string body = text;
  if (body == "fault")
    body.clear();
  else if (body.rfind("fault:", 0) == 0)
    body = body.substr(6);
  const ParamMap map = ParamMap::parse(body);
  map.validate_keys(params(), "fault spec");
  map.validate_types(params());

  FaultSpec spec;
  spec.seed = map.get_uint("seed", spec.seed);
  spec.conn_drop = checked_probability(map, "conn_drop");
  spec.short_read = checked_probability(map, "short_read");
  spec.short_write = checked_probability(map, "short_write");
  spec.eintr = checked_probability(map, "eintr");
  spec.fsync_fail = map.get_uint("fsync_fail", 0);
  spec.fsync_fail_from = map.get_uint("fsync_fail_from", 0);
  spec.torn_append = checked_probability(map, "torn_append");
  return spec;
}

std::string FaultSpec::spec_string() const {
  ParamMap map;
  map.set_uint("seed", seed);
  if (conn_drop > 0.0) map.set_double("conn_drop", conn_drop);
  if (short_read > 0.0) map.set_double("short_read", short_read);
  if (short_write > 0.0) map.set_double("short_write", short_write);
  if (eintr > 0.0) map.set_double("eintr", eintr);
  if (fsync_fail != 0) map.set_uint("fsync_fail", fsync_fail);
  if (fsync_fail_from != 0)
    map.set_uint("fsync_fail_from", fsync_fail_from);
  if (torn_append > 0.0) map.set_double("torn_append", torn_append);
  return "fault:" + map.serialize();
}

const char* fault_site_name(FaultSite site) {
  return kSiteNames[static_cast<std::size_t>(site)];
}

FaultInjector::FaultInjector(FaultSpec spec) : spec_(spec) {
  // One independent stream per site, derived from the master seed with
  // distinct golden-ratio offsets (Rng's SplitMix64 expansion decorrelates
  // the nearby seeds). A site's decisions then depend only on the seed
  // and how many times *that site* was consulted -- never on scheduling.
  for (std::size_t i = 0; i < kFaultSiteCount; ++i)
    streams_[i] = Rng(spec_.seed + (i + 1) * 0x9E3779B97F4A7C15ull);
}

bool FaultInjector::draw(FaultSite site, double p) {
  const auto i = static_cast<std::size_t>(site);
  ++stats_[i].ops;
  if (p <= 0.0) return false;
  const bool hit = streams_[i].bernoulli(p);
  if (hit) ++stats_[i].hits;
  return hit;
}

bool FaultInjector::drop_connection() {
  std::lock_guard<std::mutex> lock(mu_);
  return draw(FaultSite::kConnDrop, spec_.conn_drop);
}

std::size_t FaultInjector::clamp_read(std::size_t want) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!draw(FaultSite::kShortRead, spec_.short_read) || want <= 1)
    return want;
  const auto i = static_cast<std::size_t>(FaultSite::kShortRead);
  return 1 + static_cast<std::size_t>(
                 streams_[i].uniform_index(want - 1));
}

std::size_t FaultInjector::clamp_write(std::size_t want) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!draw(FaultSite::kShortWrite, spec_.short_write) || want <= 1)
    return want;
  const auto i = static_cast<std::size_t>(FaultSite::kShortWrite);
  return 1 + static_cast<std::size_t>(
                 streams_[i].uniform_index(want - 1));
}

bool FaultInjector::inject_eintr() {
  std::lock_guard<std::mutex> lock(mu_);
  const auto i = static_cast<std::size_t>(FaultSite::kEintr);
  ++stats_[i].ops;
  if (eintr_storm_left_ > 0) {
    --eintr_storm_left_;
    // When the storm ends, let the next call through un-faulted so even
    // eintr=1 cannot starve the retry loop of progress.
    if (eintr_storm_left_ == 0) eintr_cooldown_ = true;
    ++stats_[i].hits;
    return true;
  }
  if (eintr_cooldown_) {
    eintr_cooldown_ = false;
    return false;
  }
  if (spec_.eintr <= 0.0 || !streams_[i].bernoulli(spec_.eintr))
    return false;
  const std::uint64_t storm = 1 + streams_[i].uniform_index(3);  // 1-3
  eintr_storm_left_ = storm - 1;
  eintr_cooldown_ = eintr_storm_left_ == 0;
  ++stats_[i].hits;
  return true;
}

bool FaultInjector::fail_fsync() {
  std::lock_guard<std::mutex> lock(mu_);
  const auto i = static_cast<std::size_t>(FaultSite::kFsync);
  ++stats_[i].ops;
  ++fsync_count_;
  const bool hit =
      (spec_.fsync_fail != 0 && fsync_count_ == spec_.fsync_fail) ||
      (spec_.fsync_fail_from != 0 &&
       fsync_count_ >= spec_.fsync_fail_from);
  if (hit) ++stats_[i].hits;
  return hit;
}

std::size_t FaultInjector::tear_append(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!draw(FaultSite::kTornAppend, spec_.torn_append) || n == 0)
    return n;
  const auto i = static_cast<std::size_t>(FaultSite::kTornAppend);
  return static_cast<std::size_t>(streams_[i].uniform_index(n));  // 0..n-1
}

SiteStats FaultInjector::stats(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_[static_cast<std::size_t>(site)];
}

std::uint64_t FaultInjector::total_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const SiteStats& s : stats_) total += s.hits;
  return total;
}

std::shared_ptr<FaultInjector> make_injector(
    const std::string& spec_text) {
  if (spec_text.empty()) return nullptr;
  return std::make_shared<FaultInjector>(FaultSpec::parse(spec_text));
}

}  // namespace pns::fault
