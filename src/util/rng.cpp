#include "util/rng.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace pns {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PNS_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * m;
  has_cached_normal_ = true;
  return u * m;
}

double Rng::normal(double mean, double stddev) {
  PNS_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  PNS_EXPECTS(mean > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  PNS_EXPECTS(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace pns
