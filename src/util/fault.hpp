// Deterministic fault injection for the daemon's I/O seams.
//
// The sweep fabric promises byte-identical output under worker crashes,
// partitions and torn writes. That promise is only testable if the
// hostile conditions themselves are reproducible, so faults are not
// sprinkled with rand(): a FaultSpec is a seeded *schedule*, parsed from
// the same spec-string grammar as every other knob
// (`fault:seed=7,conn_drop=0.05,short_write=0.1,fsync_fail=2`), and a
// FaultInjector derives one independent Rng stream per injection site
// from that seed. Each site's decision sequence is therefore a pure
// function of the seed -- independent of thread interleaving, wall
// clock, or how other sites are exercised -- so the same seed replays
// the same injection sequence, run after run, machine after machine.
//
// Consumers:
//   util/socket.hpp  LineConn -- forced short reads/writes, mid-frame
//                    connection drops, EINTR storms
//   sweep/journal.hpp JournalWriter -- torn appends, failed fsyncs
//   pns_sweepd / pns_sweep worker -- the `--fault` flag
//
// docs/fault-injection.md has the grammar and chaos-test recipes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/params.hpp"
#include "util/rng.hpp"

namespace pns::fault {

/// Parsed `--fault` schedule. Probabilities are per injection
/// opportunity (one socket call, one journal append); counts are
/// 1-based ordinals. Everything defaults to "off", so an empty spec is
/// a no-op injector.
struct FaultSpec {
  std::uint64_t seed = 1;      ///< master seed for every site stream
  double conn_drop = 0.0;      ///< P(sever the connection at a socket op)
  double short_read = 0.0;     ///< P(truncate one recv's byte budget)
  double short_write = 0.0;    ///< P(truncate one send's byte budget)
  double eintr = 0.0;          ///< P(start a 1-3 call EINTR storm)
  std::uint64_t fsync_fail = 0;       ///< fail exactly the Nth fsync; 0=off
  std::uint64_t fsync_fail_from = 0;  ///< fail every fsync from the Nth
                                      ///< on (a dead disk); 0 = off
  double torn_append = 0.0;    ///< P(tear a journal line mid-append)

  /// Parses "fault:key=value,..." (the prefix is optional: bare
  /// "key=value,..." and the lone word "fault" also parse). Throws
  /// ParamError naming the offending key and the accepted ones.
  static FaultSpec parse(const std::string& text);

  /// Round-trippable spec string ("fault:seed=7,conn_drop=0.05").
  std::string spec_string() const;

  /// The accepted keys, for validation and diagnostics.
  static const std::vector<ParamInfo>& params();

  bool operator==(const FaultSpec&) const = default;
};

/// One injection site = one independent decision stream.
enum class FaultSite {
  kConnDrop = 0,
  kShortRead,
  kShortWrite,
  kEintr,
  kFsync,
  kTornAppend,
};
inline constexpr std::size_t kFaultSiteCount = 6;

/// Stable lowercase name of a site ("conn_drop", ...).
const char* fault_site_name(FaultSite site);

/// Per-site counters: opportunities seen and faults actually injected.
struct SiteStats {
  std::uint64_t ops = 0;
  std::uint64_t hits = 0;
};

/// Draws scheduled faults at the I/O seams. Thread-safe: the daemon's
/// journal and a worker's heartbeat/row senders consult one injector
/// from several threads, and per-site streams keep each site's decision
/// sequence deterministic regardless of how calls interleave *across*
/// sites. (Interleaving *within* one site is the caller's to serialise
/// -- LineConn and JournalWriter already are.)
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec);

  const FaultSpec& spec() const { return spec_; }

  // --- socket seams (LineConn) ------------------------------------
  /// True: sever the connection now, mid-conversation.
  bool drop_connection();
  /// Byte budget for one recv of up to `want` bytes (short read).
  std::size_t clamp_read(std::size_t want);
  /// Byte budget for one send of up to `want` bytes (short write).
  std::size_t clamp_write(std::size_t want);
  /// True: behave as if the syscall returned EINTR. Fires in storms of
  /// 1-3 consecutive injections, then guarantees one clean call, so
  /// retry loops are exercised without ever losing forward progress.
  bool inject_eintr();

  // --- journal seams (JournalWriter) ------------------------------
  /// True: this fsync "fails" (per the Nth / from-Nth schedule).
  bool fail_fsync();
  /// Bytes of an `n`-byte line append to actually write; < n means the
  /// append tears at that offset.
  std::size_t tear_append(std::size_t n);

  SiteStats stats(FaultSite site) const;
  /// Faults injected across all sites (quick "did anything fire?").
  std::uint64_t total_hits() const;

 private:
  /// One Bernoulli decision on `site`'s stream; counts the opportunity.
  bool draw(FaultSite site, double p);

  FaultSpec spec_;
  mutable std::mutex mu_;
  Rng streams_[kFaultSiteCount];
  SiteStats stats_[kFaultSiteCount];
  std::uint64_t eintr_storm_left_ = 0;
  bool eintr_cooldown_ = false;
  std::uint64_t fsync_count_ = 0;
};

/// Parses `--fault SPEC` into a shared injector (null for empty text),
/// the form DaemonOptions/WorkerOptions carry.
std::shared_ptr<FaultInjector> make_injector(const std::string& spec_text);

}  // namespace pns::fault
