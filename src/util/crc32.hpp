// CRC-32 checksums (IEEE 802.3 reflected polynomial, as in zip/gzip).
//
// The checkpoint journal embeds a CRC-32 in every line it writes so
// silent corruption -- a bit flip, a partially overwritten sector, a
// buggy transfer -- is *detected* rather than folded into the aggregate
// (sweep/journal.hpp quarantines mismatching lines). Table-driven and
// byte-order independent, so the same bytes checksum identically on
// every platform the byte-identity contract spans.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace pns {

/// CRC-32 of `data` (polynomial 0xEDB88320, init/final XOR 0xFFFFFFFF --
/// the "crc32" everyone means: zlib, gzip, PNG).
std::uint32_t crc32(std::string_view data);

/// Fixed-width lowercase hex rendering ("0007f3a2"): the form journal
/// lines embed, chosen so framed lines keep a constant-length suffix.
std::string crc32_hex(std::uint32_t crc);

}  // namespace pns
