// Minimal CSV emission for experiment outputs.
//
// Benches and examples optionally dump full-resolution series to CSV files
// so that plots matching the paper's figures can be regenerated with any
// plotting tool. Only writing is needed; values are numbers or plain
// strings (escaped per RFC 4180 when required).
#pragma once

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "util/time_series.hpp"

namespace pns {

/// Streams rows of comma-separated values to an std::ostream.
class CsvWriter {
 public:
  /// Writes to an externally owned stream (not owned, must outlive this).
  explicit CsvWriter(std::ostream& os);

  /// Writes the header row. Must be the first row written, at most once.
  void header(const std::vector<std::string>& columns);

  /// Writes one row of doubles with full round-trip precision.
  void row(const std::vector<double>& values);

  /// Writes one row of pre-formatted cells (escaped as needed).
  void row_strings(const std::vector<std::string>& cells);

  std::size_t rows_written() const { return rows_; }

 private:
  void write_cells(const std::vector<std::string>& cells);

  std::ostream* os_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

/// Escapes a single CSV cell per RFC 4180 (quotes when the cell contains a
/// comma, quote or newline).
std::string csv_escape(const std::string& cell);

/// Convenience: dumps named time series (shared time axis not required;
/// each series contributes "<name>_t,<name>_v" column pairs, padded with
/// empty cells) to `path`. Returns false if the file cannot be opened.
bool write_series_csv(const std::string& path,
                      const std::vector<std::pair<std::string,
                                                  const TimeSeries*>>& series);

}  // namespace pns
