// Minimal streaming JSON emission + parsing for experiment outputs.
//
// Sweep aggregates are dumped as JSON so downstream analysis (notebooks,
// dashboards) can ingest them without a CSV dialect guessing game. The
// writer tracks container nesting and comma placement so callers just
// emit keys and values in order. The parser exists for the formats this
// repo itself writes (sweep checkpoint journals, bench reports): numbers
// keep their raw token so a value written with shortest_double() reads
// back as the bit-identical double.
#pragma once

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pns {

/// How a JsonWriter lays out the document.
enum class JsonStyle {
  kPretty,   ///< newlines + two-space indentation (reports)
  kCompact,  ///< no whitespace at all -- one document per line (journals)
};

/// Streams a single JSON document to an std::ostream. Containers are
/// opened/closed explicitly; with JsonStyle::kPretty the writer inserts
/// commas, newlines and two-space indentation, with kCompact it emits no
/// whitespace so a document fits one journal line. Misuse (a value where
/// a key is required, close without open, ...) trips a contract violation
/// rather than emitting malformed output.
class JsonWriter {
 public:
  /// Writes to an externally owned stream (not owned, must outlive this).
  explicit JsonWriter(std::ostream& os, JsonStyle style = JsonStyle::kPretty);

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits the key of the next object member. Must be inside an object.
  void key(const std::string& k);

  void value(double v);  ///< non-finite values are emitted as null
  void value(std::int64_t v);
  void value(std::uint64_t v);  ///< also covers std::size_t
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void value(const std::string& v);
  void value(const char* v) { value(std::string(v)); }
  void null();

  /// Convenience: key(k) followed by value(v).
  template <typename T>
  void kv(const std::string& k, const T& v) {
    key(k);
    value(v);
  }

  /// True when every opened container has been closed and a top-level
  /// value was written (i.e. the document is complete).
  bool complete() const;

 private:
  enum class Scope { kObject, kArray };

  void before_value();  ///< comma/indent bookkeeping shared by all values
  void indent();

  std::ostream* os_;
  JsonStyle style_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
  bool root_written_ = false;
};

/// Error raised by parse_json on malformed input and by JsonValue
/// accessors on type mismatches / missing keys. A distinct type (rather
/// than a contract violation) because the input is external data -- a
/// torn journal line, a truncated report -- that callers are expected to
/// catch and handle.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

/// One parsed JSON node. Value semantics; object members preserve source
/// order. Numbers keep their raw token text so integers outside the
/// double-exact range survive and doubles written with shortest_double()
/// round-trip bit-for-bit.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool as_bool() const;
  double as_double() const;        ///< exact for shortest_double() output
  std::int64_t as_int64() const;
  std::uint64_t as_uint64() const;
  const std::string& as_string() const;
  /// Raw number token as it appeared in the document.
  const std::string& number_token() const;

  const std::vector<JsonValue>& items() const;  ///< array elements
  const std::vector<Member>& members() const;   ///< object members, in order

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;
  /// Object member lookup; throws JsonError when absent.
  const JsonValue& at(const std::string& key) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::string text_;  ///< string value, or raw number token
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error). Throws JsonError on malformed input.
JsonValue parse_json(std::string_view text);

/// Escapes a string per RFC 8259 (quotes, backslash, control characters)
/// and wraps it in double quotes.
std::string json_escape(const std::string& s);

/// Shortest decimal representation that parses back to the exact same
/// double (std::to_chars). Shared by the JSON writer and the sweep
/// aggregator's CSV cells so both formats round-trip bit-for-bit and
/// never drift from each other. Non-finite values render via printf %g
/// ("inf"/"nan"); JSON callers must handle those separately.
std::string shortest_double(double v);

}  // namespace pns
