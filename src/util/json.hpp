// Minimal streaming JSON emission for experiment outputs.
//
// Sweep aggregates are dumped as JSON so downstream analysis (notebooks,
// dashboards) can ingest them without a CSV dialect guessing game. Only
// writing is needed; the writer tracks container nesting and comma
// placement so callers just emit keys and values in order.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace pns {

/// Streams a single JSON document to an std::ostream. Containers are
/// opened/closed explicitly; the writer inserts commas, newlines and
/// two-space indentation. Misuse (a value where a key is required, close
/// without open, ...) trips a contract violation rather than emitting
/// malformed output.
class JsonWriter {
 public:
  /// Writes to an externally owned stream (not owned, must outlive this).
  explicit JsonWriter(std::ostream& os);

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits the key of the next object member. Must be inside an object.
  void key(const std::string& k);

  void value(double v);  ///< non-finite values are emitted as null
  void value(std::int64_t v);
  void value(std::uint64_t v);  ///< also covers std::size_t
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void value(const std::string& v);
  void value(const char* v) { value(std::string(v)); }
  void null();

  /// Convenience: key(k) followed by value(v).
  template <typename T>
  void kv(const std::string& k, const T& v) {
    key(k);
    value(v);
  }

  /// True when every opened container has been closed and a top-level
  /// value was written (i.e. the document is complete).
  bool complete() const;

 private:
  enum class Scope { kObject, kArray };

  void before_value();  ///< comma/indent bookkeeping shared by all values
  void indent();

  std::ostream* os_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
  bool root_written_ = false;
};

/// Escapes a string per RFC 8259 (quotes, backslash, control characters)
/// and wraps it in double quotes.
std::string json_escape(const std::string& s);

/// Shortest decimal representation that parses back to the exact same
/// double (std::to_chars). Shared by the JSON writer and the sweep
/// aggregator's CSV cells so both formats round-trip bit-for-bit and
/// never drift from each other. Non-finite values render via printf %g
/// ("inf"/"nan"); JSON callers must handle those separately.
std::string shortest_double(double v);

}  // namespace pns
