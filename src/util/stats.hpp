// Streaming and batch statistics.
//
// RunningStats uses Welford's online algorithm so six-hour simulations can
// accumulate voltage/power statistics without retaining samples. Percentile
// helpers operate on explicit sample vectors (used by the experiment
// harnesses when a full series is recorded anyway).
#pragma once

#include <cstddef>
#include <vector>

namespace pns {

/// Online mean/variance/min/max accumulator (Welford).
class RunningStats {
 public:
  /// Adds one sample.
  void add(double x);

  /// Adds a sample with a non-negative weight (e.g. a time duration, for
  /// time-weighted averages over irregularly sampled series).
  void add_weighted(double x, double weight);

  /// Number of add() calls (weighted adds count once each).
  std::size_t count() const { return count_; }

  /// Sum of weights (== count() when only add() was used).
  double total_weight() const { return weight_sum_; }

  /// Weighted mean of the samples; 0 if empty.
  double mean() const;

  /// Weighted population variance; 0 if fewer than 2 samples.
  double variance() const;

  /// Square root of variance().
  double stddev() const;

  double min() const;  ///< Smallest sample; +inf if empty.
  double max() const;  ///< Largest sample; -inf if empty.

  /// Merges another accumulator into this one.
  void merge(const RunningStats& other);

  /// Resets to the empty state.
  void reset();

 private:
  std::size_t count_ = 0;
  double weight_sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  bool has_minmax_ = false;
};

/// Returns the q-quantile (q in [0,1]) of `samples` by linear interpolation
/// between order statistics. The input is copied and sorted.
double percentile(std::vector<double> samples, double q);

/// Arithmetic mean of a sample vector; 0 if empty.
double mean_of(const std::vector<double>& samples);

/// Sample standard deviation (n-1 denominator); 0 if fewer than 2 samples.
double stddev_of(const std::vector<double>& samples);

}  // namespace pns
