#include "util/interp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace pns {

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs,
                                 std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  PNS_EXPECTS(!xs_.empty());
  PNS_EXPECTS(xs_.size() == ys_.size());
  for (std::size_t i = 1; i < xs_.size(); ++i) PNS_EXPECTS(xs_[i] > xs_[i - 1]);
}

PiecewiseLinear PiecewiseLinear::from_pairs(
    std::vector<std::pair<double, double>> pts) {
  std::sort(pts.begin(), pts.end());
  std::vector<double> xs, ys;
  xs.reserve(pts.size());
  ys.reserve(pts.size());
  for (const auto& [x, y] : pts) {
    xs.push_back(x);
    ys.push_back(y);
  }
  return PiecewiseLinear(std::move(xs), std::move(ys));
}

double PiecewiseLinear::x_front() const {
  PNS_EXPECTS(!empty());
  return xs_.front();
}

double PiecewiseLinear::x_back() const {
  PNS_EXPECTS(!empty());
  return xs_.back();
}

double PiecewiseLinear::operator()(double x) const {
  PNS_EXPECTS(!empty());
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const auto i = static_cast<std::size_t>(it - xs_.begin());
  const double x0 = xs_[i - 1], x1 = xs_[i];
  const double y0 = ys_[i - 1], y1 = ys_[i];
  const double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

double PiecewiseLinear::eval_hinted(double x, std::size_t& hint) const {
  PNS_EXPECTS(!empty());
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  // Find i such that xs_[i-1] <= x < xs_[i] -- exactly the index
  // upper_bound would return in operator(), so the interpolation below is
  // bit-identical to it.
  std::size_t i = hint;
  const std::size_t n = xs_.size();
  if (!(i >= 1 && i < n && xs_[i] > x && xs_[i - 1] <= x)) {
    if (i + 1 < n && xs_[i + 1] > x && xs_[i] <= x) {
      ++i;  // advanced one knot since the last call (the common case)
    } else {
      const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
      i = static_cast<std::size_t>(it - xs_.begin());
    }
  }
  hint = i;
  const double x0 = xs_[i - 1], x1 = xs_[i];
  const double y0 = ys_[i - 1], y1 = ys_[i];
  const double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

double PiecewiseLinear::flat_until(double x) const {
  PNS_EXPECTS(!empty());
  if (x >= xs_.back())  // constant extrapolation beyond the last knot
    return std::numeric_limits<double>::infinity();
  // Index of the first knot strictly beyond x; the function is flat on
  // [x, xs_[i]] iff the surrounding segment is level (or x sits in the
  // clamped region before the first knot).
  auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  auto i = static_cast<std::size_t>(it - xs_.begin());
  if (i >= 1 && ys_[i] != ys_[i - 1]) return x;
  // Extend across consecutive level segments.
  while (i + 1 < xs_.size() && ys_[i + 1] == ys_[i]) ++i;
  return i + 1 < xs_.size() ? xs_[i]
                            : std::numeric_limits<double>::infinity();
}

double PiecewiseLinear::flat_until_hinted(double x, std::size_t& hint) const {
  PNS_EXPECTS(!empty());
  if (x >= xs_.back())  // constant extrapolation beyond the last knot
    return std::numeric_limits<double>::infinity();
  // Same bracket as flat_until's upper_bound: xs_[i] > x, xs_[i-1] <= x
  // (or i == 0 in the clamped region before the first knot).
  std::size_t i = hint;
  const std::size_t n = xs_.size();
  if (!(i < n && xs_[i] > x && (i == 0 || xs_[i - 1] <= x))) {
    if (i + 1 < n && xs_[i + 1] > x && xs_[i] <= x) {
      ++i;  // advanced one knot since the last call (the common case)
    } else {
      const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
      i = static_cast<std::size_t>(it - xs_.begin());
    }
  }
  hint = i;
  if (i >= 1 && ys_[i] != ys_[i - 1]) return x;
  while (i + 1 < n && ys_[i + 1] == ys_[i]) ++i;
  return i + 1 < n ? xs_[i] : std::numeric_limits<double>::infinity();
}

double PiecewiseLinear::slope_at(double x) const {
  PNS_EXPECTS(!empty());
  if (xs_.size() < 2 || x < xs_.front() || x > xs_.back()) return 0.0;
  auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  if (it == xs_.end()) --it;  // x == x_back: use last segment
  auto i = static_cast<std::size_t>(it - xs_.begin());
  if (i == 0) i = 1;
  return (ys_[i] - ys_[i - 1]) / (xs_[i] - xs_[i - 1]);
}

double PiecewiseLinear::integrate(double a, double b) const {
  PNS_EXPECTS(!empty());
  PNS_EXPECTS(a <= b);
  if (a == b) return 0.0;
  // Integrate the clamped-extrapolated function by splitting at knots.
  double total = 0.0;
  double x_prev = a;
  double y_prev = (*this)(a);
  for (double knot : xs_) {
    if (knot <= a) continue;
    if (knot >= b) break;
    const double y = (*this)(knot);
    total += 0.5 * (y_prev + y) * (knot - x_prev);
    x_prev = knot;
    y_prev = y;
  }
  total += 0.5 * (y_prev + (*this)(b)) * (b - x_prev);
  return total;
}

PiecewiseLinear PiecewiseLinear::scaled(double factor) const {
  PiecewiseLinear out = *this;
  for (auto& y : out.ys_) y *= factor;
  return out;
}

double PiecewiseLinear::first_crossing(double level, double fallback) const {
  PNS_EXPECTS(!empty());
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    const double y0 = ys_[i - 1] - level;
    const double y1 = ys_[i] - level;
    if (y0 == 0.0) return xs_[i - 1];
    if (y0 * y1 < 0.0) {
      const double t = y0 / (y0 - y1);
      return xs_[i - 1] + t * (xs_[i] - xs_[i - 1]);
    }
  }
  if (ys_.back() == level) return xs_.back();
  return fallback;
}

}  // namespace pns
