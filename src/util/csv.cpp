#include "util/csv.hpp"

#include <cstdio>

#include "util/contracts.hpp"

namespace pns {

CsvWriter::CsvWriter(std::ostream& os) : os_(&os) {}

void CsvWriter::header(const std::vector<std::string>& columns) {
  PNS_EXPECTS(!header_written_);
  PNS_EXPECTS(rows_ == 0);
  PNS_EXPECTS(!columns.empty());
  columns_ = columns.size();
  header_written_ = true;
  write_cells(columns);
}

void CsvWriter::row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.15g", v);
    cells.emplace_back(buf);
  }
  row_strings(cells);
}

void CsvWriter::row_strings(const std::vector<std::string>& cells) {
  if (header_written_) PNS_EXPECTS(cells.size() == columns_);
  write_cells(cells);
  ++rows_;
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) (*os_) << ',';
    (*os_) << csv_escape(cells[i]);
  }
  (*os_) << '\n';
}

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

bool write_series_csv(
    const std::string& path,
    const std::vector<std::pair<std::string, const TimeSeries*>>& series) {
  std::ofstream f(path);
  if (!f) return false;
  CsvWriter w(f);
  std::vector<std::string> cols;
  std::size_t max_len = 0;
  for (const auto& [name, ts] : series) {
    cols.push_back(name + "_t");
    cols.push_back(name + "_v");
    max_len = std::max(max_len, ts->size());
  }
  w.header(cols);
  for (std::size_t i = 0; i < max_len; ++i) {
    std::vector<std::string> cells;
    for (const auto& [name, ts] : series) {
      (void)name;
      if (i < ts->size()) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.15g", ts->times()[i]);
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.15g", ts->values()[i]);
        cells.emplace_back(buf);
      } else {
        cells.emplace_back("");
        cells.emplace_back("");
      }
    }
    w.row_strings(cells);
  }
  return true;
}

}  // namespace pns
