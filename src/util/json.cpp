#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/contracts.hpp"

namespace pns {

JsonWriter::JsonWriter(std::ostream& os) : os_(&os) {}

void JsonWriter::begin_object() {
  before_value();
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  (*os_) << '{';
}

void JsonWriter::end_object() {
  PNS_EXPECTS(!stack_.empty() && stack_.back() == Scope::kObject);
  PNS_EXPECTS(!key_pending_);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) {
    (*os_) << '\n';
    indent();
  }
  (*os_) << '}';
}

void JsonWriter::begin_array() {
  before_value();
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  (*os_) << '[';
}

void JsonWriter::end_array() {
  PNS_EXPECTS(!stack_.empty() && stack_.back() == Scope::kArray);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) {
    (*os_) << '\n';
    indent();
  }
  (*os_) << ']';
}

void JsonWriter::key(const std::string& k) {
  PNS_EXPECTS(!stack_.empty() && stack_.back() == Scope::kObject);
  PNS_EXPECTS(!key_pending_);
  if (has_items_.back()) (*os_) << ',';
  has_items_.back() = true;
  (*os_) << '\n';
  indent();
  (*os_) << json_escape(k) << ": ";
  key_pending_ = true;
}

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    (*os_) << "null";
    return;
  }
  (*os_) << shortest_double(v);
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  (*os_) << v;
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  (*os_) << v;
}

void JsonWriter::value(bool v) {
  before_value();
  (*os_) << (v ? "true" : "false");
}

void JsonWriter::value(const std::string& v) {
  before_value();
  (*os_) << json_escape(v);
}

void JsonWriter::null() {
  before_value();
  (*os_) << "null";
}

bool JsonWriter::complete() const {
  return stack_.empty() && root_written_ && !key_pending_;
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    // Top level: exactly one value per document.
    PNS_EXPECTS(!root_written_);
    root_written_ = true;
    return;
  }
  if (stack_.back() == Scope::kObject) {
    // Object members must come through key().
    PNS_EXPECTS(key_pending_);
    key_pending_ = false;
    return;
  }
  // Array element.
  if (has_items_.back()) (*os_) << ',';
  has_items_.back() = true;
  (*os_) << '\n';
  indent();
}

void JsonWriter::indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) (*os_) << "  ";
}

std::string shortest_double(double v) {
  char buf[40];
  if (!std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
  }
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace pns
