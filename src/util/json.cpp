#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/contracts.hpp"

namespace pns {

JsonWriter::JsonWriter(std::ostream& os, JsonStyle style)
    : os_(&os), style_(style) {}

void JsonWriter::begin_object() {
  before_value();
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  (*os_) << '{';
}

void JsonWriter::end_object() {
  PNS_EXPECTS(!stack_.empty() && stack_.back() == Scope::kObject);
  PNS_EXPECTS(!key_pending_);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items && style_ == JsonStyle::kPretty) {
    (*os_) << '\n';
    indent();
  }
  (*os_) << '}';
}

void JsonWriter::begin_array() {
  before_value();
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  (*os_) << '[';
}

void JsonWriter::end_array() {
  PNS_EXPECTS(!stack_.empty() && stack_.back() == Scope::kArray);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items && style_ == JsonStyle::kPretty) {
    (*os_) << '\n';
    indent();
  }
  (*os_) << ']';
}

void JsonWriter::key(const std::string& k) {
  PNS_EXPECTS(!stack_.empty() && stack_.back() == Scope::kObject);
  PNS_EXPECTS(!key_pending_);
  if (has_items_.back()) (*os_) << ',';
  has_items_.back() = true;
  if (style_ == JsonStyle::kPretty) {
    (*os_) << '\n';
    indent();
    (*os_) << json_escape(k) << ": ";
  } else {
    (*os_) << json_escape(k) << ':';
  }
  key_pending_ = true;
}

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    (*os_) << "null";
    return;
  }
  (*os_) << shortest_double(v);
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  (*os_) << v;
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  (*os_) << v;
}

void JsonWriter::value(bool v) {
  before_value();
  (*os_) << (v ? "true" : "false");
}

void JsonWriter::value(const std::string& v) {
  before_value();
  (*os_) << json_escape(v);
}

void JsonWriter::null() {
  before_value();
  (*os_) << "null";
}

bool JsonWriter::complete() const {
  return stack_.empty() && root_written_ && !key_pending_;
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    // Top level: exactly one value per document.
    PNS_EXPECTS(!root_written_);
    root_written_ = true;
    return;
  }
  if (stack_.back() == Scope::kObject) {
    // Object members must come through key().
    PNS_EXPECTS(key_pending_);
    key_pending_ = false;
    return;
  }
  // Array element.
  if (has_items_.back()) (*os_) << ',';
  has_items_.back() = true;
  if (style_ == JsonStyle::kPretty) {
    (*os_) << '\n';
    indent();
  }
}

void JsonWriter::indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) (*os_) << "  ";
}

std::string shortest_double(double v) {
  char buf[40];
  if (!std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
  }
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

// ----------------------------------------------------------- parsing

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw JsonError("json: not a boolean");
  return bool_;
}

double JsonValue::as_double() const {
  if (type_ != Type::kNumber) throw JsonError("json: not a number");
  // from_chars, not strtod: parsing must be locale-independent to match
  // the locale-independent shortest_double emission bit for bit.
  double v = 0.0;
  std::from_chars(text_.data(), text_.data() + text_.size(), v);
  return v;
}

std::int64_t JsonValue::as_int64() const {
  if (type_ != Type::kNumber) throw JsonError("json: not a number");
  return static_cast<std::int64_t>(std::strtoll(text_.c_str(), nullptr, 10));
}

std::uint64_t JsonValue::as_uint64() const {
  if (type_ != Type::kNumber) throw JsonError("json: not a number");
  return static_cast<std::uint64_t>(
      std::strtoull(text_.c_str(), nullptr, 10));
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw JsonError("json: not a string");
  return text_;
}

const std::string& JsonValue::number_token() const {
  if (type_ != Type::kNumber) throw JsonError("json: not a number");
  return text_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) throw JsonError("json: not an array");
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (type_ != Type::kObject) throw JsonError("json: not an object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (!v) throw JsonError("json: missing key \"" + key + "\"");
  return *v;
}

/// Recursive-descent parser over a string_view. Depth is bounded to keep
/// hostile inputs from exhausting the stack; the formats this repo writes
/// nest three levels deep.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"':
        v.type_ = JsonValue::Type::kString;
        v.text_ = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        v.type_ = JsonValue::Type::kNull;
        return v;
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items_.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape");
      }
    }
  }

  std::string parse_unicode_escape() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    // UTF-8 encode. Surrogate pairs are not combined -- json_escape only
    // emits \u00xx for control characters, which is all we need to read.
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      fail("invalid number");
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.text_ = std::string(text_.substr(start, pos_ - start));
    // Validate with locale-independent from_chars: the token must parse
    // and be consumed entirely.
    double parsed = 0.0;
    const auto res = std::from_chars(
        v.text_.data(), v.text_.data() + v.text_.size(), parsed);
    if (res.ec != std::errc{} || res.ptr != v.text_.data() + v.text_.size())
      fail("invalid number");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace pns
