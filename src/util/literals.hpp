// Unit-literal helpers.
//
// All physical quantities in this library are plain `double` in SI base
// units (volts, amps, watts, farads, seconds, hertz, joules, coulombs).
// These user-defined literals make call sites self-documenting without the
// overhead or template noise of a strong-unit type system:
//
//   using namespace pns::literals;
//   double c = 47.0_mF;      // farads
//   double f = 1.4_GHz;      // hertz
//   double v = 5.3_V;        // volts
//
// Guideline rationale: zero-overhead (Per.*) and interface clarity (I.4)
// without forcing every arithmetic expression through a unit wrapper.
#pragma once

namespace pns::literals {

// --- voltage -------------------------------------------------------------
constexpr double operator""_V(long double v) { return static_cast<double>(v); }
constexpr double operator""_V(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_mV(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_mV(unsigned long long v) { return static_cast<double>(v) * 1e-3; }

// --- current -------------------------------------------------------------
constexpr double operator""_A(long double v) { return static_cast<double>(v); }
constexpr double operator""_A(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_mA(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_mA(unsigned long long v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uA(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_uA(unsigned long long v) { return static_cast<double>(v) * 1e-6; }

// --- power ---------------------------------------------------------------
constexpr double operator""_W(long double v) { return static_cast<double>(v); }
constexpr double operator""_W(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_mW(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_mW(unsigned long long v) { return static_cast<double>(v) * 1e-3; }

// --- capacitance ---------------------------------------------------------
constexpr double operator""_F(long double v) { return static_cast<double>(v); }
constexpr double operator""_mF(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_mF(unsigned long long v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uF(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_uF(unsigned long long v) { return static_cast<double>(v) * 1e-6; }

// --- resistance ----------------------------------------------------------
constexpr double operator""_Ohm(long double v) { return static_cast<double>(v); }
constexpr double operator""_Ohm(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_kOhm(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_kOhm(unsigned long long v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_MOhm(long double v) { return static_cast<double>(v) * 1e6; }
constexpr double operator""_MOhm(unsigned long long v) { return static_cast<double>(v) * 1e6; }

// --- time ----------------------------------------------------------------
constexpr double operator""_s(long double v) { return static_cast<double>(v); }
constexpr double operator""_s(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_ms(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_ms(unsigned long long v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_us(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_us(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_min(long double v) { return static_cast<double>(v) * 60.0; }
constexpr double operator""_min(unsigned long long v) { return static_cast<double>(v) * 60.0; }
constexpr double operator""_h(long double v) { return static_cast<double>(v) * 3600.0; }
constexpr double operator""_h(unsigned long long v) { return static_cast<double>(v) * 3600.0; }

// --- frequency -----------------------------------------------------------
constexpr double operator""_Hz(long double v) { return static_cast<double>(v); }
constexpr double operator""_Hz(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_kHz(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_kHz(unsigned long long v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_MHz(long double v) { return static_cast<double>(v) * 1e6; }
constexpr double operator""_MHz(unsigned long long v) { return static_cast<double>(v) * 1e6; }
constexpr double operator""_GHz(long double v) { return static_cast<double>(v) * 1e9; }
constexpr double operator""_GHz(unsigned long long v) { return static_cast<double>(v) * 1e9; }

// --- irradiance (W/m^2) --------------------------------------------------
constexpr double operator""_Wm2(long double v) { return static_cast<double>(v); }
constexpr double operator""_Wm2(unsigned long long v) { return static_cast<double>(v); }

}  // namespace pns::literals
