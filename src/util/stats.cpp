#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/contracts.hpp"

namespace pns {

void RunningStats::add(double x) { add_weighted(x, 1.0); }

void RunningStats::add_weighted(double x, double weight) {
  PNS_EXPECTS(weight >= 0.0);
  if (weight == 0.0) return;
  ++count_;
  weight_sum_ += weight;
  const double delta = x - mean_;
  mean_ += (weight / weight_sum_) * delta;
  m2_ += weight * delta * (x - mean_);
  if (!has_minmax_) {
    min_ = max_ = x;
    has_minmax_ = true;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double RunningStats::mean() const { return weight_sum_ > 0.0 ? mean_ : 0.0; }

double RunningStats::variance() const {
  if (count_ < 2 || weight_sum_ <= 0.0) return 0.0;
  return m2_ / weight_sum_;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  return has_minmax_ ? min_ : std::numeric_limits<double>::infinity();
}

double RunningStats::max() const {
  return has_minmax_ ? max_ : -std::numeric_limits<double>::infinity();
}

void RunningStats::merge(const RunningStats& other) {
  if (other.weight_sum_ == 0.0) return;
  if (weight_sum_ == 0.0) {
    *this = other;
    return;
  }
  const double w = weight_sum_ + other.weight_sum_;
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * weight_sum_ * other.weight_sum_ / w;
  mean_ += delta * other.weight_sum_ / w;
  weight_sum_ = w;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double percentile(std::vector<double> samples, double q) {
  PNS_EXPECTS(q >= 0.0 && q <= 1.0);
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double mean_of(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  return std::accumulate(samples.begin(), samples.end(), 0.0) /
         static_cast<double>(samples.size());
}

double stddev_of(const std::vector<double>& samples) {
  if (samples.size() < 2) return 0.0;
  const double m = mean_of(samples);
  double acc = 0.0;
  for (double s : samples) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples.size() - 1));
}

}  // namespace pns
