#include "soc/soc_state.hpp"

#include "soc/topology.hpp"
#include "util/contracts.hpp"

namespace pns::soc {

const char* to_string(PowerState s) {
  switch (s) {
    case PowerState::kOn:
      return "on";
    case PowerState::kOff:
      return "off";
    case PowerState::kBooting:
      return "booting";
  }
  return "?";
}

SocRuntime::SocRuntime(const Platform& platform, OperatingPoint initial)
    : platform_(&platform), opp_(initial) {
  PNS_EXPECTS(initial.freq_index < platform.opps.size());
  PNS_EXPECTS(platform.valid_cores(initial.cores));
}

OperatingPoint SocRuntime::final_target() const {
  return pending_.empty() ? opp_ : pending_.back().to;
}

double SocRuntime::power(double u) const {
  switch (power_state_) {
    case PowerState::kOff:
      return platform_->off_power_w;
    case PowerState::kBooting:
      return platform_->boot_power_w;
    case PowerState::kOn:
      break;
  }
  if (!pending_.empty()) return pending_.front().power_w;
  return platform_->board_power(opp_, u);
}

double SocRuntime::instruction_rate(double u) const {
  if (power_state_ != PowerState::kOn) return 0.0;
  const double rate = platform_->instruction_rate(opp_, u);
  if (pending_.empty()) return rate;
  const double stall = pending_.front().kind == TransitionKind::kHotplug
                           ? platform_->hotplug_stall
                           : platform_->dvfs_stall;
  return rate * (1.0 - stall);
}

void SocRuntime::domain_rates(double u, std::vector<double>& power_w,
                              std::vector<double>& rate) const {
  const MultiDomainModel& model = *platform_->domains;
  const std::size_t n = model.domain_count();
  PNS_EXPECTS(power_w.size() == n && rate.size() == n);
  if (power_state_ != PowerState::kOn) {
    // Off/boot draw is board-level plumbing, not attributable to a
    // domain; compute is zero either way.
    for (std::size_t d = 0; d < n; ++d) power_w[d] = rate[d] = 0.0;
    return;
  }
  // During a transition the live joint level keeps drawing/retiring,
  // derated like instruction_rate(); the step's blended power_w stays a
  // board-level total.
  double stall = 0.0;
  if (!pending_.empty()) {
    stall = pending_.front().kind == TransitionKind::kHotplug
                ? platform_->hotplug_stall
                : platform_->dvfs_stall;
  }
  for (std::size_t d = 0; d < n; ++d) {
    power_w[d] = model.domain_power(opp_.freq_index, d, u);
    rate[d] = model.domain_instruction_rate(opp_.freq_index, d, u) *
              (1.0 - stall);
  }
}

void SocRuntime::enqueue_plan(std::vector<TransitionStep> plan,
                              double t_now) {
  PNS_EXPECTS(power_state_ == PowerState::kOn);
  if (plan.empty()) return;
  PNS_EXPECTS(plan.front().from == final_target());
  const bool was_idle = pending_.empty();
  for (auto& step : plan) pending_.push_back(std::move(step));
  if (was_idle) step_started_at_ = t_now;
}

double SocRuntime::next_boundary() const {
  if (pending_.empty()) return std::numeric_limits<double>::infinity();
  return step_started_at_ + pending_.front().duration_s;
}

void SocRuntime::complete_step(double t) {
  PNS_EXPECTS(!pending_.empty());
  opp_ = pending_.front().to;
  pending_.pop_front();
  step_started_at_ = t;
  ++steps_done_;
}

void SocRuntime::power_off(double t) {
  (void)t;
  power_state_ = PowerState::kOff;
  pending_.clear();
  opp_ = platform_->lowest_opp();
  ++brownouts_;
}

void SocRuntime::begin_boot(double t) {
  PNS_EXPECTS(power_state_ == PowerState::kOff);
  power_state_ = PowerState::kBooting;
  boot_started_at_ = t;
}

double SocRuntime::boot_complete_time() const {
  if (power_state_ != PowerState::kBooting)
    return std::numeric_limits<double>::infinity();
  return boot_started_at_ + platform_->boot_time_s;
}

void SocRuntime::complete_boot(double t) {
  (void)t;
  PNS_EXPECTS(power_state_ == PowerState::kBooting);
  power_state_ = PowerState::kOn;
  opp_ = platform_->lowest_opp();
}

}  // namespace pns::soc
