// Runtime state machine of the SoC during co-simulation.
//
// Tracks the live operating point, the queue of in-flight transition steps
// and the power on/off/boot lifecycle. The co-simulation engine asks it
// for instantaneous power and instruction rate and tells it when step
// boundaries or brownout/boot events occur.
#pragma once

#include <deque>
#include <limits>
#include <vector>

#include "soc/platform.hpp"
#include "soc/transition.hpp"

namespace pns::soc {

/// Power lifecycle of the board.
enum class PowerState {
  kOn,       ///< executing the workload
  kOff,      ///< browned out; residual draw only
  kBooting,  ///< recovering after brownout, not yet executing
};

const char* to_string(PowerState s);

/// Mutable runtime model of one board.
class SocRuntime {
 public:
  /// Borrows `platform` (must outlive the runtime).
  SocRuntime(const Platform& platform, OperatingPoint initial);

  const Platform& platform() const { return *platform_; }

  /// Operating point that is currently *live* (mid-plan: the OPP reached
  /// by the last completed step).
  const OperatingPoint& opp() const { return opp_; }

  /// Final OPP once all queued steps finish (== opp() when idle).
  OperatingPoint final_target() const;

  PowerState power_state() const { return power_state_; }
  bool is_on() const { return power_state_ == PowerState::kOn; }
  bool transitioning() const { return !pending_.empty(); }
  std::size_t pending_steps() const { return pending_.size(); }

  /// Instantaneous board power (W) at utilisation `u`.
  double power(double u) const;

  /// Instantaneous workload instruction rate (instr/s) at utilisation `u`
  /// (0 when off/booting; derated by the stall factor during steps).
  double instruction_rate(double u) const;

  /// Per-domain instantaneous power and instruction rate at utilisation
  /// `u`, mirroring power()/instruction_rate() semantics: zero rate when
  /// off/booting, live level during transitions, same stall derating.
  /// Only meaningful when platform().domains is set; `power_w` and
  /// `rate` must each have domain_count() entries.
  void domain_rates(double u, std::vector<double>& power_w,
                    std::vector<double>& rate) const;

  /// Appends a transition plan. Steps execute strictly in order after any
  /// already queued ones. `t_now` starts the first step's clock when the
  /// queue was empty.
  void enqueue_plan(std::vector<TransitionStep> plan, double t_now);

  /// Absolute completion time of the step at the queue head
  /// (+infinity when idle).
  double next_boundary() const;

  /// Completes the head step (requires one pending); the live OPP becomes
  /// the step's target, and the next step's clock starts at `t`.
  void complete_step(double t);

  /// Brownout: clears pending steps, zeroes compute. The live OPP resets
  /// to the platform's lowest point (the PMIC comes back in its default
  /// state).
  void power_off(double t);

  /// Begins the boot sequence (valid when off).
  void begin_boot(double t);

  /// Absolute time at which boot completes (+infinity unless booting).
  double boot_complete_time() const;

  /// Completes boot and resumes execution at the lowest OPP.
  void complete_boot(double t);

  /// Lifetime counters.
  std::size_t transitions_completed() const { return steps_done_; }
  std::size_t brownouts() const { return brownouts_; }

 private:
  const Platform* platform_;
  OperatingPoint opp_;
  PowerState power_state_ = PowerState::kOn;
  std::deque<TransitionStep> pending_;
  double step_started_at_ = 0.0;
  double boot_started_at_ = 0.0;
  std::size_t steps_done_ = 0;
  std::size_t brownouts_ = 0;
};

}  // namespace pns::soc
