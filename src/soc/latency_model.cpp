#include "soc/latency_model.hpp"

#include "util/contracts.hpp"

namespace pns::soc {

LatencyModel::LatencyModel(LatencyModelParams params) : params_(params) {
  PNS_EXPECTS(params_.hotplug_base_s >= 0.0);
  PNS_EXPECTS(params_.hotplug_cycles >= 0.0);
  PNS_EXPECTS(params_.big_factor >= 1.0);
  PNS_EXPECTS(params_.dvfs_base_s >= 0.0);
}

double LatencyModel::hotplug_latency(CoreType type, bool adding,
                                     double f_hz,
                                     const CoreConfig& cores_before) const {
  PNS_EXPECTS(f_hz > 0.0);
  double t = params_.hotplug_base_s + params_.hotplug_cycles / f_hz;
  if (type == CoreType::kBig) {
    t *= params_.big_factor;
    // Powering the big cluster up for its first core (or down after its
    // last) flips the cluster power switch and re-initialises the L2.
    const bool cluster_toggles =
        (adding && cores_before.n_big == 0) ||
        (!adding && cores_before.n_big == 1);
    if (cluster_toggles) t += params_.cluster_switch_s;
  }
  return t;
}

double LatencyModel::dvfs_latency(double f_from_hz, double f_to_hz,
                                  int n_active) const {
  PNS_EXPECTS(f_from_hz > 0.0 && f_to_hz > 0.0);
  PNS_EXPECTS(n_active >= 0);
  double t = params_.dvfs_base_s + params_.dvfs_per_core_s * n_active;
  if (f_to_hz > f_from_hz) t += params_.dvfs_up_extra_s;
  return t;
}

}  // namespace pns::soc
