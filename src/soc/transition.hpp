// OPP transition planning.
//
// An OPP change is not atomic: the ladder frequency moves one level at a
// time and cores hot-plug one at a time, each step taking real time
// (latency model) during which the board still burns power. The *order* of
// steps matters enormously -- Table I of the paper measures 345 ms /
// 130 mC for DVFS-first vs 63 ms / 46 mC for core-first when dropping from
// the highest to the lowest OPP -- because hot-plugging at a low clock is
// slow. TransitionPlanner builds the explicit step sequence for either
// ordering so the co-simulation (and the Table I bench) can integrate the
// true cost.
#pragma once

#include <vector>

#include "soc/latency_model.hpp"
#include "soc/opp.hpp"
#include "soc/power_model.hpp"

namespace pns::soc {

struct Platform;

/// Which class of action a step performs.
enum class TransitionKind { kDvfs, kHotplug };

/// Ordering of the two phases of a compound transition. The paper's
/// scenario (a) is kFreqFirst, scenario (b) -- the winner -- kCoreFirst.
enum class OrderingPolicy { kCoreFirst, kFreqFirst };

const char* to_string(OrderingPolicy policy);

/// One atomic step of a transition plan.
struct TransitionStep {
  TransitionKind kind;
  OperatingPoint from;
  OperatingPoint to;
  double duration_s;  ///< latency of this step
  double power_w;     ///< board power while the step executes
};

/// Builds step sequences between OPPs. Borrows the models; they must
/// outlive the planner.
class TransitionPlanner {
 public:
  TransitionPlanner(const OppTable& table, const PowerModel& power,
                    const LatencyModel& latency);

  /// Platform-aware planner: step powers dispatch through
  /// Platform::board_power(), so compiled multi-domain platforms charge
  /// the joint-level power. Identical arithmetic to the three-argument
  /// constructor on single-domain platforms.
  explicit TransitionPlanner(const Platform& platform);

  /// Full plan from `from` to `to` under `policy`. Frequency moves one
  /// ladder level per step; cores change one at a time (when shrinking,
  /// big cores are removed before LITTLE ones; when growing, LITTLE cores
  /// are added first). During each step the board is charged the worse of
  /// the step's endpoint powers (the old configuration keeps burning while
  /// the kernel works, plus switching overlap).
  std::vector<TransitionStep> plan(const OperatingPoint& from,
                                   const OperatingPoint& to,
                                   OrderingPolicy policy,
                                   double utilization = 1.0) const;

  /// Single-step frequency jump (no ladder walk): how cpufreq governors
  /// change frequency. Returns an empty plan when already at the target.
  std::vector<TransitionStep> plan_dvfs_jump(const OperatingPoint& from,
                                             std::size_t to_index,
                                             double utilization = 1.0) const;

  /// Sum of step durations (s).
  static double total_duration(const std::vector<TransitionStep>& steps);

  /// Total charge (C) drawn from the storage node at voltage `v_node`
  /// while the plan executes: Q = sum(P_step * dt) / v.
  static double total_charge(const std::vector<TransitionStep>& steps,
                             double v_node);

  /// Total energy (J) burned while the plan executes.
  static double total_energy(const std::vector<TransitionStep>& steps);

 private:
  void plan_core_phase(std::vector<TransitionStep>& out, OperatingPoint& cur,
                       const CoreConfig& target, double utilization) const;
  void plan_freq_phase(std::vector<TransitionStep>& out, OperatingPoint& cur,
                       std::size_t target_index, double utilization) const;
  TransitionStep make_step(TransitionKind kind, const OperatingPoint& from,
                           const OperatingPoint& to, double duration,
                           double utilization) const;

  const OppTable* table_;
  const PowerModel* power_;
  const LatencyModel* latency_;
  const Platform* platform_ = nullptr;  ///< set by the Platform ctor only
};

}  // namespace pns::soc
