#include "soc/topology.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>
#include <stdexcept>

namespace pns::soc {

double Domain::power_at(std::size_t idx, double u) const {
  return power.board_power_at(cores, opps.frequency(idx), u);
}

double Domain::instruction_rate_at(std::size_t idx, double u) const {
  return workload_share * perf.instruction_rate(cores, opps.frequency(idx), u);
}

const char* to_string(ArbiterPolicy policy) {
  switch (policy) {
    case ArbiterPolicy::kProportional: return "proportional";
    case ArbiterPolicy::kPriority: return "priority";
    case ArbiterPolicy::kDemand: return "demand";
  }
  return "?";
}

ArbiterPolicy arbiter_policy_from_string(const std::string& s) {
  if (s == "proportional") return ArbiterPolicy::kProportional;
  if (s == "priority") return ArbiterPolicy::kPriority;
  if (s == "demand") return ArbiterPolicy::kDemand;
  throw std::invalid_argument("unknown arbiter policy '" + s +
                              "' (valid: proportional, priority, demand)");
}

double MultiDomainModel::domain_power(std::size_t level, std::size_t d,
                                      double u) const {
  return domains[d].power_at(levels[level][d], u);
}

double MultiDomainModel::domain_instruction_rate(std::size_t level,
                                                 std::size_t d,
                                                 double u) const {
  return domains[d].instruction_rate_at(levels[level][d], u);
}

double MultiDomainModel::board_power(std::size_t level, double u) const {
  double p = base_power_w;
  for (std::size_t d = 0; d < domains.size(); ++d) {
    p += domain_power(level, d, u);
  }
  return p;
}

double MultiDomainModel::instruction_rate(std::size_t level, double u) const {
  double rate = 0.0;
  for (std::size_t d = 0; d < domains.size(); ++d) {
    rate += domain_instruction_rate(level, d, u);
  }
  return rate;
}

std::vector<double> MultiDomainModel::budget_shares(std::size_t level,
                                                    double u) const {
  std::vector<double> shares(domains.size(), 0.0);
  double total = 0.0;
  for (std::size_t d = 0; d < domains.size(); ++d) {
    shares[d] = domain_power(level, d, u);
    total += shares[d];
  }
  if (total > 0.0) {
    for (double& s : shares) s /= total;
  }
  return shares;
}

namespace {

using LevelRow = std::vector<std::size_t>;

LevelRow all_min_row(const std::vector<Domain>& domains) {
  return LevelRow(domains.size(), 0);
}

LevelRow all_max_row(const std::vector<Domain>& domains) {
  LevelRow row(domains.size());
  for (std::size_t d = 0; d < domains.size(); ++d) {
    row[d] = domains[d].opps.max_index();
  }
  return row;
}

// Proportional: an even total-power grid from all-min to all-max; the
// headroom above each domain's floor is split in proportion to weight,
// and every domain takes the highest ladder step whose power fits its
// slice. Per-domain targets grow monotonically with the level, so the
// chosen indices never step down.
std::vector<LevelRow> proportional_levels_for(const std::vector<Domain>& ds,
                                              std::size_t n_levels) {
  const std::size_t n = std::max<std::size_t>(n_levels, 2);
  double p_min = 0.0;
  double p_max = 0.0;
  double weight_sum = 0.0;
  for (const Domain& d : ds) {
    p_min += d.power_at(0, 1.0);
    p_max += d.power_at(d.opps.max_index(), 1.0);
    weight_sum += d.weight;
  }
  std::vector<LevelRow> levels;
  levels.reserve(n);
  for (std::size_t level = 0; level < n; ++level) {
    const double frac = static_cast<double>(level) / static_cast<double>(n - 1);
    const double headroom = (p_max - p_min) * frac;
    LevelRow row(ds.size(), 0);
    for (std::size_t d = 0; d < ds.size(); ++d) {
      const double share =
          weight_sum > 0.0 ? ds[d].weight / weight_sum : 1.0 / ds.size();
      const double target = ds[d].power_at(0, 1.0) + headroom * share;
      std::size_t idx = 0;
      while (idx < ds[d].opps.max_index() &&
             ds[d].power_at(idx + 1, 1.0) <= target) {
        ++idx;
      }
      row[d] = idx;
    }
    levels.push_back(std::move(row));
  }
  levels.back() = all_max_row(ds);
  return levels;
}

// Priority: raise domains to their ladder tops one at a time in
// descending priority order (ties resolve to the lower domain index),
// one frequency step per joint level.
std::vector<LevelRow> priority_levels_for(const std::vector<Domain>& ds) {
  std::vector<std::size_t> order(ds.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return ds[a].priority > ds[b].priority;
                   });
  std::vector<LevelRow> levels;
  LevelRow row = all_min_row(ds);
  levels.push_back(row);
  for (std::size_t d : order) {
    while (row[d] < ds[d].opps.max_index()) {
      ++row[d];
      levels.push_back(row);
    }
  }
  return levels;
}

// Demand-driven (SysScale-style): from all-min, repeatedly take the
// single-domain index step with the best marginal instructions per
// joule of extra power, i.e. the greedy Pareto walk of the joint
// configuration space. Ties (including zero-workload domains, whose
// marginal rate is 0) resolve to the lower domain index.
std::vector<LevelRow> demand_levels_for(const std::vector<Domain>& ds) {
  std::vector<LevelRow> levels;
  LevelRow row = all_min_row(ds);
  levels.push_back(row);
  for (;;) {
    double best_ratio = -1.0;
    std::size_t best_d = ds.size();
    for (std::size_t d = 0; d < ds.size(); ++d) {
      if (row[d] >= ds[d].opps.max_index()) continue;
      const double dp = ds[d].power_at(row[d] + 1, 1.0) -
                        ds[d].power_at(row[d], 1.0);
      const double di = ds[d].instruction_rate_at(row[d] + 1, 1.0) -
                        ds[d].instruction_rate_at(row[d], 1.0);
      const double ratio = dp > 0.0 ? di / dp
                                    : std::numeric_limits<double>::max();
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_d = d;
      }
    }
    if (best_d == ds.size()) break;  // every domain at its top
    ++row[best_d];
    levels.push_back(row);
  }
  return levels;
}

}  // namespace

Platform PlatformTopology::compile() const {
  if (domains.empty()) {
    throw std::invalid_argument("platform topology has no domains");
  }
  std::set<std::string> names;
  for (const Domain& d : domains) {
    if (d.name.empty()) {
      throw std::invalid_argument("platform domain has an empty name");
    }
    if (!names.insert(d.name).second) {
      throw std::invalid_argument("duplicate platform domain '" + d.name +
                                  "'");
    }
    if (d.cores.total() < 1) {
      throw std::invalid_argument("platform domain '" + d.name +
                                  "' has no cores");
    }
    if (d.weight < 0.0 || d.workload_share < 0.0) {
      throw std::invalid_argument("platform domain '" + d.name +
                                  "' has a negative weight or share");
    }
  }

  std::vector<LevelRow> levels;
  switch (policy) {
    case ArbiterPolicy::kProportional:
      levels = proportional_levels_for(domains, proportional_levels);
      break;
    case ArbiterPolicy::kPriority:
      levels = priority_levels_for(domains);
      break;
    case ArbiterPolicy::kDemand:
      levels = demand_levels_for(domains);
      break;
  }
  // Collapse duplicate adjacent rows (the proportional grid can land
  // two consecutive power targets on the same configuration). Rows are
  // componentwise monotone, so the deduped walk stays monotone with
  // every consecutive pair distinct.
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());

  // Joint ladder frequency of a level: the mean of the per-domain
  // frequencies. Monotone distinct rows make it strictly increasing,
  // which OppTable requires.
  std::vector<double> freqs;
  freqs.reserve(levels.size());
  for (const LevelRow& row : levels) {
    double sum = 0.0;
    for (std::size_t d = 0; d < domains.size(); ++d) {
      sum += domains[d].opps.frequency(row[d]);
    }
    freqs.push_back(sum / static_cast<double>(domains.size()));
  }

  auto model = std::make_shared<MultiDomainModel>();
  model->domains = domains;
  model->policy = policy;
  model->base_power_w = base_power_w;
  model->levels = std::move(levels);

  Platform p = base;
  p.name = name.empty() ? "topology" : name;
  p.opps = OppTable(std::move(freqs));
  // One immovable pseudo-core: hotplug no-ops and threshold control
  // degenerates to pure joint-ladder stepping, which is exactly the
  // per-tick budget arbitration.
  p.min_cores = CoreConfig{1, 0};
  p.max_cores = CoreConfig{1, 0};
  p.domains = std::move(model);
  return p;
}

}  // namespace pns::soc
