#include "soc/opp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/contracts.hpp"
#include "util/literals.hpp"

namespace pns::soc {

using namespace pns::literals;

const char* to_string(CoreType type) {
  return type == CoreType::kLittle ? "LITTLE" : "big";
}

std::string CoreConfig::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%dL+%dB", n_little, n_big);
  return buf;
}

OppTable::OppTable(std::vector<double> frequencies_hz)
    : freqs_(std::move(frequencies_hz)) {
  PNS_EXPECTS(!freqs_.empty());
  PNS_EXPECTS(freqs_.front() > 0.0);
  for (std::size_t i = 1; i < freqs_.size(); ++i)
    PNS_EXPECTS(freqs_[i] > freqs_[i - 1]);
}

OppTable OppTable::paper_ladder() {
  return OppTable({0.2_GHz, 0.45_GHz, 0.72_GHz, 0.92_GHz, 1.1_GHz, 1.2_GHz,
                   1.3_GHz, 1.4_GHz});
}

double OppTable::frequency(std::size_t index) const {
  PNS_EXPECTS(index < freqs_.size());
  return freqs_[index];
}

std::size_t OppTable::step_down(std::size_t index) const {
  PNS_EXPECTS(index < freqs_.size());
  return index == 0 ? 0 : index - 1;
}

std::size_t OppTable::step_up(std::size_t index) const {
  PNS_EXPECTS(index < freqs_.size());
  return std::min(index + 1, freqs_.size() - 1);
}

std::size_t OppTable::nearest_index(double f_hz) const {
  std::size_t best = 0;
  double best_d = std::abs(freqs_[0] - f_hz);
  // Strict `<`: an exact-midpoint tie keeps the earlier (lower) index,
  // as documented in the header. Do not weaken to `<=`.
  for (std::size_t i = 1; i < freqs_.size(); ++i) {
    const double d = std::abs(freqs_[i] - f_hz);
    if (d < best_d) {
      best = i;
      best_d = d;
    }
  }
  return best;
}

std::string to_string(const OperatingPoint& opp, const OppTable& table) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s @ %.2f GHz",
                opp.cores.to_string().c_str(),
                table.frequency(opp.freq_index) / 1e9);
  return buf;
}

}  // namespace pns::soc
