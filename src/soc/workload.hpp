// Workload models.
//
// The paper benchmarks with smallpt, a CPU-bound path tracer: utilisation
// is pinned at 100 % and progress is measured in rendered frames and
// retired instructions (Table II's "Renders/min" and "Instructions
// Completed"). RaytraceWorkload reproduces that accounting. Duty-cycled
// and bursty workloads are provided for exercising the utilisation-driven
// Linux governors (ondemand/conservative/interactive) under conditions
// where they actually modulate frequency.
#pragma once

#include <limits>
#include <string>

namespace pns::soc {

/// A job running on the SoC: supplies demanded utilisation and accumulates
/// progress from the instruction rate the platform delivers.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Demanded CPU utilisation in [0, 1] at time t.
  virtual double utilization(double t) const = 0;

  /// Latest time T >= t such that utilization() is provably constant on
  /// [t, T]. Workloads that cannot vouch return `t`; constant-demand
  /// workloads return +infinity. Consulted by the engine's steady-state
  /// coasting fast path, which must not jump across a demand change.
  virtual double constant_until(double t) const { return t; }

  /// Accumulates `dt` seconds of execution at `instr_rate` instr/s.
  virtual void advance(double t, double dt, double instr_rate);

  /// Total instructions retired so far.
  double instructions() const { return instructions_; }

  /// Identification for reports.
  virtual const char* name() const = 0;

  /// Clears accumulated progress.
  virtual void reset() { instructions_ = 0.0; }

 protected:
  double instructions_ = 0.0;
};

/// Fully CPU-bound path tracer (smallpt, 5 samples/pixel).
class RaytraceWorkload : public Workload {
 public:
  /// `instr_per_frame` must match the PerfModel calibration so FPS and
  /// frame counts are consistent.
  explicit RaytraceWorkload(double instr_per_frame);

  double utilization(double /*t*/) const override { return 1.0; }
  double constant_until(double /*t*/) const override {
    return std::numeric_limits<double>::infinity();
  }
  const char* name() const override { return "raytrace"; }

  /// Frames completed (fractional; Table II reports averages like 0.246
  /// renders/min, so fractional progress is the right unit).
  double frames_completed() const;

 private:
  double instr_per_frame_;
};

/// Square-wave utilisation: `busy_util` for `busy_s`, then `idle_util`
/// for `idle_s`, repeating. Exercises reactive governors.
class PeriodicWorkload : public Workload {
 public:
  PeriodicWorkload(double busy_s, double idle_s, double busy_util = 1.0,
                   double idle_util = 0.05);

  double utilization(double t) const override;
  /// Next square-wave edge after t.
  double constant_until(double t) const override;
  const char* name() const override { return "periodic"; }

 private:
  double busy_s_;
  double idle_s_;
  double busy_util_;
  double idle_util_;
};

/// Constant configurable utilisation (unit-test baseline).
class ConstantWorkload : public Workload {
 public:
  explicit ConstantWorkload(double util);
  double utilization(double /*t*/) const override { return util_; }
  double constant_until(double /*t*/) const override {
    return std::numeric_limits<double>::infinity();
  }
  const char* name() const override { return "constant"; }

 private:
  double util_;
};

}  // namespace pns::soc
