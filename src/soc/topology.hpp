// Multi-domain heterogeneous platform topology.
//
// Real mobile MP-SoCs scale several voltage/frequency domains (big and
// LITTLE clusters, interconnect, memory) under one harvested power
// budget. This subsystem generalizes the paper's single-domain model:
// a Domain carries its own frequency ladder, power/perf models and
// workload share, and a PlatformTopology composes N heterogeneous
// domains behind the existing single-domain Platform interface.
//
// The key design decision is *compilation*: rather than teach every
// engine/controller/governor about N ladders, PlatformTopology::compile()
// bakes the shared-budget arbitration into a synthetic joint ladder.
// Each level of the compiled OppTable maps to one frequency index per
// domain (MultiDomainModel::levels); the arbiter policy decides which
// per-domain allocations the joint ladder walks through:
//
//   - kProportional: an even power grid from all-min to all-max; the
//     headroom at each level splits across domains in proportion to
//     Domain::weight (each domain takes the highest ladder step whose
//     power fits its slice).
//   - kPriority: domains are raised to their ladder tops one at a time
//     in descending Domain::priority order, one index step per level.
//   - kDemand: SysScale-style demand-driven construction -- at every
//     level the single index step with the best marginal
//     instructions/sec per watt across all domains is taken, so the
//     joint ladder is the greedy Pareto walk of the configuration
//     space.
//
// All three constructions are componentwise monotone (no domain ever
// steps down as the joint level rises), which keeps the compiled
// frequency ladder strictly increasing and threshold control
// well-defined. The compiled Platform pins min_cores == max_cores so
// the paper's hotplug logic no-ops; stepping the joint ladder *is* the
// per-tick budget arbitration.
//
// When Platform::domains is null every dispatch helper falls through
// to the legacy single-domain arithmetic, byte-identical to pre-PR
// output.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "soc/platform.hpp"

namespace pns::soc {

/// One voltage/frequency domain of a heterogeneous platform.
struct Domain {
  std::string name;          ///< "little", "big", "uncore", ...
  OppTable opps;             ///< this domain's private DVFS ladder
  PowerModel power;          ///< board_base_w must be 0 (base is shared)
  PerfModel perf;            ///< throughput model for this domain's cores
  CoreConfig cores{1, 0};    ///< online cores, fixed (total() >= 1)
  double weight = 1.0;       ///< proportional-arbiter headroom share
  int priority = 0;          ///< priority arbiter rank (higher first)
  double workload_share = 1.0;  ///< fraction of workload run here

  /// Power drawn by this domain at ladder index `idx`, utilisation `u`.
  double power_at(std::size_t idx, double u) const;

  /// Instruction rate of this domain at ladder index `idx`, already
  /// scaled by workload_share so rates sum across domains.
  double instruction_rate_at(std::size_t idx, double u) const;
};

/// How the shared harvested budget is split across domains.
enum class ArbiterPolicy {
  kProportional,  ///< headroom split in proportion to Domain::weight
  kPriority,      ///< higher Domain::priority saturates first
  kDemand,        ///< greedy best marginal instr/s per watt (SysScale)
};

const char* to_string(ArbiterPolicy policy);

/// Parses "proportional" / "priority" / "demand"; throws
/// std::invalid_argument on anything else, naming the valid choices.
ArbiterPolicy arbiter_policy_from_string(const std::string& s);

/// The compiled joint-level model attached to a Platform. Immutable
/// after compile(); shared by every copy of the compiled Platform.
struct MultiDomainModel {
  std::vector<Domain> domains;
  ArbiterPolicy policy = ArbiterPolicy::kProportional;
  double base_power_w = 0.0;  ///< shared non-domain board power

  /// levels[L][d] = frequency index into domains[d].opps at joint
  /// level L. Componentwise non-decreasing in L; row 0 is all-min and
  /// the last row all-max.
  std::vector<std::vector<std::size_t>> levels;

  std::size_t domain_count() const { return domains.size(); }
  std::size_t level_count() const { return levels.size(); }

  /// Power of domain `d` at joint level `level`.
  double domain_power(std::size_t level, std::size_t d, double u) const;

  /// Workload-share-scaled instruction rate of domain `d`.
  double domain_instruction_rate(std::size_t level, std::size_t d,
                                 double u) const;

  /// base_power_w + sum of per-domain powers.
  double board_power(std::size_t level, double u) const;

  /// Sum of per-domain instruction rates.
  double instruction_rate(std::size_t level, double u) const;

  /// Fraction of the (base-exclusive) domain budget allocated to each
  /// domain at `level`; sums to 1 whenever any domain draws power.
  std::vector<double> budget_shares(std::size_t level, double u) const;
};

/// A composition of heterogeneous domains plus the arbiter policy,
/// compiled into a Platform the unchanged engine stack can run.
struct PlatformTopology {
  std::string name;
  std::vector<Domain> domains;
  ArbiterPolicy policy = ArbiterPolicy::kProportional;
  double base_power_w = 0.0;

  /// Grid resolution of the proportional policy's power grid. The
  /// priority and demand walks always emit one level per single-domain
  /// index step, so their level count is fixed by the ladders.
  std::size_t proportional_levels = 8;

  /// Electrical/latency template: v_min/v_max, boot and off behaviour,
  /// transition stalls and the LatencyModel are copied from here.
  Platform base = Platform::odroid_xu4();

  /// Bakes the arbitration into a joint ladder and returns a Platform
  /// whose OppTable is the compiled ladder and whose `domains` member
  /// carries the level table. Throws std::invalid_argument on an
  /// empty/degenerate topology.
  Platform compile() const;
};

}  // namespace pns::soc
