#include "soc/power_model.hpp"

#include "util/contracts.hpp"

namespace pns::soc {

PowerModel::PowerModel(PowerModelParams params)
    : params_(std::move(params)) {
  PNS_EXPECTS(params_.board_base_w >= 0.0);
  PNS_EXPECTS(params_.little.c_eff_f > 0.0);
  PNS_EXPECTS(params_.big.c_eff_f > 0.0);
  PNS_EXPECTS(!params_.little.vdd_of_freq.empty());
  PNS_EXPECTS(!params_.big.vdd_of_freq.empty());
}

double PowerModel::vdd(CoreType type, double f_hz) const {
  const auto& curve = type == CoreType::kLittle
                          ? params_.little.vdd_of_freq
                          : params_.big.vdd_of_freq;
  return curve(f_hz);
}

double PowerModel::core_dynamic_power(CoreType type, double f_hz,
                                      double u) const {
  PNS_EXPECTS(u >= 0.0 && u <= 1.0);
  const auto& p =
      type == CoreType::kLittle ? params_.little : params_.big;
  const double v = vdd(type, f_hz);
  return u * p.c_eff_f * f_hz * v * v;
}

double PowerModel::cluster_power(CoreType type, int n, double f_hz,
                                 double u) const {
  PNS_EXPECTS(n >= 0);
  if (n == 0) return 0.0;  // hot-plugged out: cluster fully power-gated
  const auto& p =
      type == CoreType::kLittle ? params_.little : params_.big;
  return p.cluster_static_w +
         n * (p.core_static_w + core_dynamic_power(type, f_hz, u));
}

double PowerModel::board_power(const OperatingPoint& opp,
                               const OppTable& table, double u) const {
  return board_power_at(opp.cores, table.frequency(opp.freq_index), u);
}

double PowerModel::board_power_at(const CoreConfig& cores, double f_hz,
                                  double u) const {
  return params_.board_base_w +
         cluster_power(CoreType::kLittle, cores.n_little, f_hz, u) +
         cluster_power(CoreType::kBig, cores.n_big, f_hz, u);
}

}  // namespace pns::soc
