// DVFS and hot-plug latency model calibrated against Fig. 10 of the paper.
//
// Hot-plugging a core is kernel work executed *at the current clock*, so
// its latency grows as the clock slows:
//
//   t_hotplug = base + cycles / f  (+ cluster power-switch extra when the
//                                    first big core comes up / last goes
//                                    down, + a big-core factor)
//
// Measured anchors (Fig. 10 top): ~8-12 ms at 1.4 GHz, ~15-20 ms at
// 800 MHz, ~30-40 ms at 200 MHz. This f-dependence is the entire reason
// Table I finds core-first ordering ~5x cheaper than frequency-first:
// scaling the clock down *before* unplugging makes every unplug slow.
//
// DVFS transitions (Fig. 10 bottom) cost ~1-3 ms, growing mildly with the
// number of online cores and slightly more for up-transitions (the rail
// must settle at the higher voltage before the PLL relocks).
#pragma once

#include "soc/opp.hpp"

namespace pns::soc {

/// Calibration constants of the latency model.
struct LatencyModelParams {
  double hotplug_base_s = 2.5e-3;    ///< f-independent kernel overhead
  double hotplug_cycles = 8.0e6;     ///< cycles of kernel work per hot-plug
  double big_factor = 1.25;          ///< big-core hot-plug multiplier
  double cluster_switch_s = 6.0e-3;  ///< first-on/last-off cluster cost
  double dvfs_base_s = 0.8e-3;       ///< fixed DVFS cost
  double dvfs_per_core_s = 0.18e-3;  ///< added per online core
  double dvfs_up_extra_s = 0.5e-3;   ///< extra when raising frequency
  /// Extra board power while a hot-plug executes: the kernel's IPI storm
  /// and task migration keep the remaining cores fully busy regardless of
  /// workload. This is what makes long low-clock hot-plug phases expensive
  /// in charge, not just in time (Table I).
  double hotplug_power_overhead_w = 0.7;
};

/// Evaluates transition latencies.
class LatencyModel {
 public:
  explicit LatencyModel(LatencyModelParams params);

  const LatencyModelParams& params() const { return params_; }

  /// Latency (s) to hot-plug one core of `type` in or out while the
  /// cluster clock runs at `f_hz`. `cores_before` is the configuration
  /// before the change (used to detect cluster power switching).
  double hotplug_latency(CoreType type, bool adding, double f_hz,
                         const CoreConfig& cores_before) const;

  /// Latency (s) of a one-step frequency change with `n_active` online
  /// cores.
  double dvfs_latency(double f_from_hz, double f_to_hz, int n_active) const;

 private:
  LatencyModelParams params_;
};

}  // namespace pns::soc
