// Analytic board power model calibrated against Fig. 4 of the paper.
//
//   P_board(OPP, u) = P_base
//                   + sum over clusters with >=1 online core:
//                       P_cluster_static
//                       + n * (P_core_static + u * Ceff * f * Vdd(f)^2)
//
// Vdd(f) is the per-cluster DVFS voltage curve, so dynamic power grows
// super-linearly in frequency exactly as the measured curves do. `u` is
// workload utilisation (1.0 for the paper's CPU-bound raytracer).
// P_base covers everything outside the CPU clusters (DRAM, fan, USB, eMMC,
// regulators) -- the reason Fig. 4 shows ~1.8 W even at 1xA7 200 MHz.
#pragma once

#include "soc/opp.hpp"
#include "util/interp.hpp"

namespace pns::soc {

/// Electrical constants of one core type.
struct CorePowerParams {
  double c_eff_f;          ///< effective switched capacitance (F)
  double core_static_w;    ///< per-online-core leakage (W)
  double cluster_static_w; ///< cluster-level overhead when any core online
  pns::PiecewiseLinear vdd_of_freq;  ///< cluster rail voltage vs f (V)
};

/// Full board power parameters.
struct PowerModelParams {
  double board_base_w;  ///< non-CPU board power (W)
  CorePowerParams little;
  CorePowerParams big;
};

/// Evaluates board power for any operating point.
class PowerModel {
 public:
  explicit PowerModel(PowerModelParams params);

  const PowerModelParams& params() const { return params_; }

  /// Rail voltage of a cluster at frequency f (V).
  double vdd(CoreType type, double f_hz) const;

  /// Dynamic power of one core of `type` at `f_hz` and utilisation `u`.
  double core_dynamic_power(CoreType type, double f_hz, double u) const;

  /// Power contribution of a whole cluster with `n` online cores.
  double cluster_power(CoreType type, int n, double f_hz, double u) const;

  /// Total board power at an operating point with utilisation `u`.
  double board_power(const OperatingPoint& opp, const OppTable& table,
                     double u = 1.0) const;

  /// Same, with the frequency given directly.
  double board_power_at(const CoreConfig& cores, double f_hz,
                        double u = 1.0) const;

 private:
  PowerModelParams params_;
};

}  // namespace pns::soc
