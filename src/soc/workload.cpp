#include "soc/workload.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace pns::soc {

void Workload::advance(double /*t*/, double dt, double instr_rate) {
  PNS_EXPECTS(dt >= 0.0);
  PNS_EXPECTS(instr_rate >= 0.0);
  instructions_ += dt * instr_rate;
}

RaytraceWorkload::RaytraceWorkload(double instr_per_frame)
    : instr_per_frame_(instr_per_frame) {
  PNS_EXPECTS(instr_per_frame > 0.0);
}

double RaytraceWorkload::frames_completed() const {
  return instructions_ / instr_per_frame_;
}

PeriodicWorkload::PeriodicWorkload(double busy_s, double idle_s,
                                   double busy_util, double idle_util)
    : busy_s_(busy_s),
      idle_s_(idle_s),
      busy_util_(busy_util),
      idle_util_(idle_util) {
  PNS_EXPECTS(busy_s > 0.0 && idle_s >= 0.0);
  PNS_EXPECTS(busy_util >= 0.0 && busy_util <= 1.0);
  PNS_EXPECTS(idle_util >= 0.0 && idle_util <= 1.0);
}

double PeriodicWorkload::utilization(double t) const {
  const double period = busy_s_ + idle_s_;
  if (period <= 0.0) return busy_util_;
  const double phase = std::fmod(std::max(t, 0.0), period);
  return phase < busy_s_ ? busy_util_ : idle_util_;
}

double PeriodicWorkload::constant_until(double t) const {
  const double period = busy_s_ + idle_s_;
  if (idle_s_ <= 0.0 || busy_util_ == idle_util_)
    return std::numeric_limits<double>::infinity();
  const double tc = std::max(t, 0.0);
  const double phase = std::fmod(tc, period);
  return tc + (phase < busy_s_ ? busy_s_ - phase : period - phase);
}

ConstantWorkload::ConstantWorkload(double util) : util_(util) {
  PNS_EXPECTS(util >= 0.0 && util <= 1.0);
}

}  // namespace pns::soc
