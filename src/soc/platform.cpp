#include "soc/platform.hpp"

#include <algorithm>

#include "soc/topology.hpp"
#include "util/literals.hpp"

namespace pns::soc {

using namespace pns::literals;

CoreConfig Platform::clamp_cores(const CoreConfig& c) const {
  CoreConfig out = c;
  out.n_little = std::clamp(c.n_little, min_cores.n_little,
                            max_cores.n_little);
  out.n_big = std::clamp(c.n_big, min_cores.n_big, max_cores.n_big);
  return out;
}

bool Platform::valid_cores(const CoreConfig& c) const {
  return c.within(min_cores, max_cores);
}

OperatingPoint Platform::lowest_opp() const {
  return {opps.min_index(), min_cores};
}

OperatingPoint Platform::highest_opp() const {
  return {opps.max_index(), max_cores};
}

double Platform::board_power(const OperatingPoint& opp, double u) const {
  if (domains) return domains->board_power(opp.freq_index, u);
  return power.board_power(opp, opps, u);
}

double Platform::instruction_rate(const OperatingPoint& opp, double u) const {
  if (domains) return domains->instruction_rate(opp.freq_index, u);
  return perf.instruction_rate(opp, opps, u);
}

Platform Platform::odroid_xu4() {
  // --- DVFS rail voltage curves (V vs Hz), Exynos5422-like ---------------
  // The LITTLE rail spans ~0.9-1.20 V and the big rail ~0.9-1.25 V over
  // the paper's 0.2-1.4 GHz window.
  pns::PiecewiseLinear vdd_little({0.2_GHz, 0.6_GHz, 1.0_GHz, 1.4_GHz},
                                  {0.90, 1.00, 1.10, 1.20});
  pns::PiecewiseLinear vdd_big({0.2_GHz, 0.6_GHz, 1.0_GHz, 1.4_GHz},
                               {0.92, 1.02, 1.13, 1.25});

  // --- power calibration (Fig. 4) ----------------------------------------
  // Anchors: ~1.8 W for 1xA7 @ 0.2 GHz (board base dominates); ~2.7 W for
  // 4xA7 @ 1.4 GHz; ~7 W for 4xA7+4xA15 @ 1.4 GHz.
  PowerModelParams power{
      .board_base_w = 1.70,
      .little = {.c_eff_f = 0.11e-9,
                 .core_static_w = 6.0e-3,
                 .cluster_static_w = 30.0e-3,
                 .vdd_of_freq = vdd_little},
      .big = {.c_eff_f = 0.46e-9,
              .core_static_w = 35.0e-3,
              .cluster_static_w = 120.0e-3,
              .vdd_of_freq = vdd_big},
  };

  // --- performance calibration (Fig. 7) ----------------------------------
  // Anchors: ~0.018 FPS for 1xA7 @ 1.4 GHz; ~0.066 FPS for 4xA7 @ 1.4 GHz;
  // ~0.25 FPS for 4xA7+4xA15 @ 1.4 GHz, all at 5 samples/pixel.
  PerfModelParams perf{
      .ipc_little = 0.65,
      .ipc_big = 2.0,
      .parallel_overhead = 0.025,
      .instr_per_frame = 5.0e10,
  };

  // --- latency calibration (Fig. 10) --------------------------------------
  // Hot-plug ~8-12 ms @1.4 GHz rising to ~30-40 ms @200 MHz; DVFS 1-3 ms.
  LatencyModelParams latency{};  // defaults are the calibrated values

  return Platform{
      .name = "ODROID-XU4 (Exynos5422)",
      .opps = OppTable::paper_ladder(),
      .power = PowerModel(power),
      .perf = PerfModel(perf),
      .latency = LatencyModel(latency),
      .min_cores = {1, 0},
      .max_cores = {4, 4},
      .v_min = 4.1,
      .v_max = 5.7,
      .boot_time_s = 8.0,
      .boot_power_w = 2.2,
      .off_power_w = 0.012,
      .hotplug_stall = 0.5,
      .dvfs_stall = 0.15,
  };
}

}  // namespace pns::soc
