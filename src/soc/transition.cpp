#include "soc/transition.hpp"

#include <algorithm>

#include "soc/platform.hpp"
#include "util/contracts.hpp"

namespace pns::soc {

const char* to_string(OrderingPolicy policy) {
  return policy == OrderingPolicy::kCoreFirst ? "core-first" : "freq-first";
}

TransitionPlanner::TransitionPlanner(const OppTable& table,
                                     const PowerModel& power,
                                     const LatencyModel& latency)
    : table_(&table), power_(&power), latency_(&latency) {}

TransitionPlanner::TransitionPlanner(const Platform& platform)
    : table_(&platform.opps),
      power_(&platform.power),
      latency_(&platform.latency),
      platform_(&platform) {}

TransitionStep TransitionPlanner::make_step(TransitionKind kind,
                                            const OperatingPoint& from,
                                            const OperatingPoint& to,
                                            double duration,
                                            double utilization) const {
  const double p_from = platform_
                            ? platform_->board_power(from, utilization)
                            : power_->board_power(from, *table_, utilization);
  const double p_to = platform_
                          ? platform_->board_power(to, utilization)
                          : power_->board_power(to, *table_, utilization);
  double p = std::max(p_from, p_to);
  if (kind == TransitionKind::kHotplug)
    p += latency_->params().hotplug_power_overhead_w;
  return {kind, from, to, duration, p};
}

void TransitionPlanner::plan_core_phase(std::vector<TransitionStep>& out,
                                        OperatingPoint& cur,
                                        const CoreConfig& target,
                                        double utilization) const {
  const double f = table_->frequency(cur.freq_index);
  auto hotplug_one = [&](CoreType type, bool adding) {
    OperatingPoint next = cur;
    next.cores = cur.cores.with_delta(type, adding ? +1 : -1);
    const double dt =
        latency_->hotplug_latency(type, adding, f, cur.cores);
    out.push_back(
        make_step(TransitionKind::kHotplug, cur, next, dt, utilization));
    cur = next;
  };
  // Shrinking: retire expensive big cores first. Growing: bring cheap
  // LITTLE capacity online first.
  while (cur.cores.n_big > target.n_big) hotplug_one(CoreType::kBig, false);
  while (cur.cores.n_little > target.n_little)
    hotplug_one(CoreType::kLittle, false);
  while (cur.cores.n_little < target.n_little)
    hotplug_one(CoreType::kLittle, true);
  while (cur.cores.n_big < target.n_big) hotplug_one(CoreType::kBig, true);
}

void TransitionPlanner::plan_freq_phase(std::vector<TransitionStep>& out,
                                        OperatingPoint& cur,
                                        std::size_t target_index,
                                        double utilization) const {
  while (cur.freq_index != target_index) {
    OperatingPoint next = cur;
    next.freq_index = target_index > cur.freq_index
                          ? table_->step_up(cur.freq_index)
                          : table_->step_down(cur.freq_index);
    const double dt = latency_->dvfs_latency(
        table_->frequency(cur.freq_index),
        table_->frequency(next.freq_index), cur.cores.total());
    out.push_back(
        make_step(TransitionKind::kDvfs, cur, next, dt, utilization));
    cur = next;
  }
}

std::vector<TransitionStep> TransitionPlanner::plan(
    const OperatingPoint& from, const OperatingPoint& to,
    OrderingPolicy policy, double utilization) const {
  PNS_EXPECTS(from.freq_index < table_->size());
  PNS_EXPECTS(to.freq_index < table_->size());
  PNS_EXPECTS(to.cores.n_little >= 0 && to.cores.n_big >= 0);
  std::vector<TransitionStep> out;
  OperatingPoint cur = from;
  if (policy == OrderingPolicy::kCoreFirst) {
    plan_core_phase(out, cur, to.cores, utilization);
    plan_freq_phase(out, cur, to.freq_index, utilization);
  } else {
    plan_freq_phase(out, cur, to.freq_index, utilization);
    plan_core_phase(out, cur, to.cores, utilization);
  }
  PNS_ENSURES(cur == to);
  return out;
}

std::vector<TransitionStep> TransitionPlanner::plan_dvfs_jump(
    const OperatingPoint& from, std::size_t to_index,
    double utilization) const {
  PNS_EXPECTS(to_index < table_->size());
  if (to_index == from.freq_index) return {};
  OperatingPoint to = from;
  to.freq_index = to_index;
  const double dt = latency_->dvfs_latency(
      table_->frequency(from.freq_index), table_->frequency(to_index),
      from.cores.total());
  return {make_step(TransitionKind::kDvfs, from, to, dt, utilization)};
}

double TransitionPlanner::total_duration(
    const std::vector<TransitionStep>& steps) {
  double t = 0.0;
  for (const auto& s : steps) t += s.duration_s;
  return t;
}

double TransitionPlanner::total_charge(
    const std::vector<TransitionStep>& steps, double v_node) {
  PNS_EXPECTS(v_node > 0.0);
  double q = 0.0;
  for (const auto& s : steps) q += s.power_w * s.duration_s / v_node;
  return q;
}

double TransitionPlanner::total_energy(
    const std::vector<TransitionStep>& steps) {
  double e = 0.0;
  for (const auto& s : steps) e += s.power_w * s.duration_s;
  return e;
}

}  // namespace pns::soc
