#include "soc/perf_model.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace pns::soc {

PerfModel::PerfModel(PerfModelParams params) : params_(params) {
  PNS_EXPECTS(params_.ipc_little > 0.0);
  PNS_EXPECTS(params_.ipc_big > 0.0);
  PNS_EXPECTS(params_.parallel_overhead >= 0.0 &&
              params_.parallel_overhead < 1.0);
  PNS_EXPECTS(params_.instr_per_frame > 0.0);
}

double PerfModel::parallel_efficiency(int n_cores) const {
  if (n_cores <= 1) return 1.0;
  return std::pow(1.0 - params_.parallel_overhead, n_cores - 1);
}

double PerfModel::instruction_rate(const CoreConfig& cores, double f_hz,
                                   double u) const {
  PNS_EXPECTS(u >= 0.0 && u <= 1.0);
  PNS_EXPECTS(f_hz > 0.0);
  const double per_cycle = cores.n_little * params_.ipc_little +
                           cores.n_big * params_.ipc_big;
  return u * parallel_efficiency(cores.total()) * f_hz * per_cycle;
}

double PerfModel::fps(const CoreConfig& cores, double f_hz) const {
  return instruction_rate(cores, f_hz) / params_.instr_per_frame;
}

double PerfModel::instruction_rate(const OperatingPoint& opp,
                                   const OppTable& table, double u) const {
  return instruction_rate(opp.cores, table.frequency(opp.freq_index), u);
}

double PerfModel::fps(const OperatingPoint& opp,
                      const OppTable& table) const {
  return fps(opp.cores, table.frequency(opp.freq_index));
}

}  // namespace pns::soc
