// Core-cluster vocabulary for heterogeneous big.LITTLE MP-SoCs.
//
// The Exynos5422 of the paper has four 'LITTLE' Cortex-A7 cores and four
// 'big' Cortex-A15 cores. A CoreConfig is the number of *online*
// (hot-plugged-in) cores per cluster; the paper's DPM knob is exactly this
// pair.
#pragma once

#include <compare>
#include <string>

namespace pns::soc {

/// Which cluster a core belongs to.
enum class CoreType {
  kLittle,  ///< low-power in-order cluster (Cortex-A7)
  kBig,     ///< high-performance out-of-order cluster (Cortex-A15)
};

/// Human-readable cluster name ("LITTLE"/"big").
const char* to_string(CoreType type);

/// Number of online cores per cluster.
struct CoreConfig {
  int n_little = 1;
  int n_big = 0;

  int total() const { return n_little + n_big; }

  /// Count for one cluster.
  int count(CoreType type) const {
    return type == CoreType::kLittle ? n_little : n_big;
  }

  /// Returns a copy with the given cluster count changed by `delta`.
  CoreConfig with_delta(CoreType type, int delta) const {
    CoreConfig c = *this;
    (type == CoreType::kLittle ? c.n_little : c.n_big) += delta;
    return c;
  }

  /// True when `this` fits inside [lo, hi] element-wise.
  bool within(const CoreConfig& lo, const CoreConfig& hi) const {
    return n_little >= lo.n_little && n_little <= hi.n_little &&
           n_big >= lo.n_big && n_big <= hi.n_big;
  }

  /// "4L+2B" style rendering.
  std::string to_string() const;

  friend auto operator<=>(const CoreConfig&, const CoreConfig&) = default;
};

}  // namespace pns::soc
