// Operating performance points: the DVFS frequency ladder plus the core
// configuration.
//
// The paper's controller uses N = 8 predefined frequency levels chosen for
// linearly spaced power: 0.2, 0.45, 0.72, 0.92, 1.1, 1.2, 1.3, 1.4 GHz
// (Section III). An OperatingPoint pairs an index into that ladder with a
// CoreConfig; together they determine power and performance.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "soc/core_types.hpp"

namespace pns::soc {

/// Immutable ascending ladder of DVFS frequencies (Hz).
class OppTable {
 public:
  /// Requires at least one strictly increasing positive frequency.
  explicit OppTable(std::vector<double> frequencies_hz);

  /// The paper's 8-level ladder (Section III).
  static OppTable paper_ladder();

  std::size_t size() const { return freqs_.size(); }
  double frequency(std::size_t index) const;
  const std::vector<double>& frequencies() const { return freqs_; }

  std::size_t min_index() const { return 0; }
  std::size_t max_index() const { return freqs_.size() - 1; }

  /// One step down (saturates at 0).
  std::size_t step_down(std::size_t index) const;
  /// One step up (saturates at the top).
  std::size_t step_up(std::size_t index) const;

  /// Index of the ladder frequency closest to f_hz. Ties at an exact
  /// midpoint between two ladder levels resolve to the *lower* index:
  /// per-domain ladders (scaled copies of each other) make midpoint
  /// collisions likely, and rounding down is the power-safe choice.
  std::size_t nearest_index(double f_hz) const;

 private:
  std::vector<double> freqs_;
};

/// A complete operating performance point.
struct OperatingPoint {
  std::size_t freq_index = 0;
  CoreConfig cores{};

  friend bool operator==(const OperatingPoint&,
                         const OperatingPoint&) = default;
};

/// "4L+2B @ 1.10 GHz" rendering.
std::string to_string(const OperatingPoint& opp, const OppTable& table);

}  // namespace pns::soc
