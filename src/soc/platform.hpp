// Platform bundle: everything the rest of the stack needs to know about a
// concrete board.
//
// Platform::odroid_xu4() is calibrated against every hardware figure in
// the paper: power curves (Fig. 4), raytrace throughput (Fig. 7),
// transition latencies (Fig. 10), and the 4.1-5.7 V input range of the
// ODROID XU4 (Section IV). Custom boards (e.g. a homogeneous quad-core
// MCU) are built by filling the struct directly -- see
// examples/custom_platform.cpp.
#pragma once

#include <memory>
#include <string>

#include "soc/latency_model.hpp"
#include "soc/opp.hpp"
#include "soc/perf_model.hpp"
#include "soc/power_model.hpp"

namespace pns::soc {

struct MultiDomainModel;

/// Complete model of a target board.
struct Platform {
  std::string name;
  OppTable opps;
  PowerModel power;
  PerfModel perf;
  LatencyModel latency;

  /// Hot-plug limits. CPU0 (a LITTLE core) can never be unplugged on the
  /// Exynos5422, hence min {1, 0}.
  CoreConfig min_cores{1, 0};
  CoreConfig max_cores{4, 4};

  /// Board electrical limits (V): the ODROID XU4 operates 4.1-5.7 V.
  double v_min = 4.1;
  double v_max = 5.7;

  /// Cold-boot behaviour after a brownout.
  double boot_time_s = 8.0;   ///< kernel boot until workload resumes
  double boot_power_w = 2.2;  ///< draw during boot
  double off_power_w = 0.012; ///< residual draw when browned out

  /// Fraction of compute lost while a transition step executes.
  double hotplug_stall = 0.5;
  double dvfs_stall = 0.15;

  /// Compiled multi-domain model (see soc/topology.hpp). Null for the
  /// legacy single-domain path; when set, `opps` is the synthetic joint
  /// ladder and board_power()/instruction_rate() dispatch per level.
  std::shared_ptr<const MultiDomainModel> domains;

  /// Clamps a configuration into [min_cores, max_cores].
  CoreConfig clamp_cores(const CoreConfig& c) const;

  /// True when `c` lies within the hot-plug limits.
  bool valid_cores(const CoreConfig& c) const;

  /// Lowest-power OPP: min cores at the bottom ladder frequency.
  OperatingPoint lowest_opp() const;

  /// Highest-power OPP: max cores at the top ladder frequency.
  OperatingPoint highest_opp() const;

  /// Board power at `opp`, utilisation `u`. Dispatches through the
  /// multi-domain model when present; otherwise identical arithmetic to
  /// power.board_power(opp, opps, u).
  double board_power(const OperatingPoint& opp, double u = 1.0) const;

  /// Aggregate instruction rate at `opp`, utilisation `u`; dispatches
  /// like board_power().
  double instruction_rate(const OperatingPoint& opp, double u = 1.0) const;

  /// The ODROID XU4 / Exynos5422 board of the paper.
  static Platform odroid_xu4();
};

}  // namespace pns::soc
