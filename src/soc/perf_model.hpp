// Raytrace performance model calibrated against Fig. 7 of the paper.
//
// The benchmark workload is smallpt (global-illumination path tracer) at
// 5 samples/pixel -- embarrassingly parallel and fully CPU bound, so
// throughput is close to the sum of per-core instruction rates with a
// small parallel-efficiency loss (synchronisation + shared-memory
// contention):
//
//   rate(OPP)  = eff(n) * f * (nL * IPC_little + nB * IPC_big)   [instr/s]
//   eff(n)     = (1 - overhead)^(n-1)
//   FPS(OPP)   = rate(OPP) / instructions_per_frame
//
// The same instruction rate integrates into the "Instructions Completed"
// column of Table II.
#pragma once

#include "soc/opp.hpp"

namespace pns::soc {

/// Calibration constants of the throughput model.
struct PerfModelParams {
  double ipc_little = 0.65;  ///< raytracer IPC on an A7 core
  double ipc_big = 2.0;      ///< raytracer IPC on an A15 core
  /// Fractional throughput loss added by each extra online core.
  double parallel_overhead = 0.025;
  /// Instructions retired per rendered frame (smallpt, 5 spp).
  double instr_per_frame = 5.0e10;
};

/// Evaluates workload throughput for any operating point.
class PerfModel {
 public:
  explicit PerfModel(PerfModelParams params);

  const PerfModelParams& params() const { return params_; }

  /// Parallel efficiency for n online cores (1 for n <= 1).
  double parallel_efficiency(int n_cores) const;

  /// Aggregate instruction rate (instr/s) at utilisation `u`.
  double instruction_rate(const CoreConfig& cores, double f_hz,
                          double u = 1.0) const;

  /// Frames rendered per second.
  double fps(const CoreConfig& cores, double f_hz) const;

  /// Convenience overloads taking an OperatingPoint + ladder.
  double instruction_rate(const OperatingPoint& opp, const OppTable& table,
                          double u = 1.0) const;
  double fps(const OperatingPoint& opp, const OppTable& table) const;

 private:
  PerfModelParams params_;
};

}  // namespace pns::soc
