#include "sweepd/client.hpp"

#include <optional>
#include <utility>

#include "sweepd/protocol.hpp"

namespace pns::sweepd {

namespace {

net::LineConn connect(const net::Endpoint& endpoint) {
  return net::LineConn(net::connect_endpoint(endpoint));
}

std::string must_recv(net::LineConn& conn) {
  std::optional<std::string> line = conn.recv_line_blocking();
  if (!line) throw ProtocolError("connection to daemon lost");
  return *std::move(line);
}

void must_send(net::LineConn& conn, const std::string& line) {
  if (!conn.send_line_blocking(line))
    throw ProtocolError("connection to daemon lost");
}

/// Receives the next message, surfacing daemon-side `error` replies as
/// ProtocolError and checking the type when one is expected.
JsonValue expect(net::LineConn& conn, const std::string& type) {
  const JsonValue msg = parse_message(must_recv(conn));
  const std::string& got = message_type(msg);
  if (got == "error")
    throw ProtocolError(msg.at("error").as_string());
  if (!type.empty() && got != type)
    throw ProtocolError("expected " + type + ", got '" + got + "'");
  return msg;
}

}  // namespace

SubmitResult submit_job(const net::Endpoint& endpoint,
                        const JobSpec& spec) {
  net::LineConn conn = connect(endpoint);
  must_send(conn, make_submit(spec));
  const JsonValue msg = expect(conn, "submitted");
  SubmitResult result;
  result.job = msg.at("job").as_string();
  result.identity = msg.at("identity").as_string();
  result.total = static_cast<std::size_t>(msg.at("total").as_uint64());
  return result;
}

StatusReport fetch_status(const net::Endpoint& endpoint,
                          const std::string& job) {
  net::LineConn conn = connect(endpoint);
  must_send(conn, make_status(job));
  const JsonValue msg = expect(conn, "status_ok");
  StatusReport report;
  report.workers =
      static_cast<std::size_t>(msg.at("workers").as_uint64());
  if (const JsonValue* d = msg.find("degraded"))
    report.degraded = d->as_bool();
  if (const JsonValue* r = msg.find("degraded_reason"))
    report.degraded_reason = r->as_string();
  if (const JsonValue* wi = msg.find("worker_info")) {
    for (const JsonValue& j : wi->items()) {
      WorkerLiveness w;
      w.worker = static_cast<std::size_t>(j.at("worker").as_uint64());
      w.threads = static_cast<unsigned>(j.at("threads").as_uint64());
      w.leases = static_cast<std::size_t>(j.at("leases").as_uint64());
      w.rows = static_cast<std::size_t>(j.at("rows").as_uint64());
      w.duplicates =
          static_cast<std::size_t>(j.at("duplicates").as_uint64());
      w.retries = static_cast<std::size_t>(j.at("retries").as_uint64());
      w.last_seen_s = j.at("last_seen_s").as_double();
      report.worker_info.push_back(w);
    }
  }
  for (const JsonValue& j : msg.at("jobs").items()) {
    JobStatus s;
    s.job = j.at("job").as_string();
    s.identity = j.at("identity").as_string();
    s.total = static_cast<std::size_t>(j.at("total").as_uint64());
    s.done = static_cast<std::size_t>(j.at("done").as_uint64());
    s.failed = static_cast<std::size_t>(j.at("failed").as_uint64());
    s.pending = static_cast<std::size_t>(j.at("pending").as_uint64());
    s.leased = static_cast<std::size_t>(j.at("leased").as_uint64());
    s.duplicates =
        static_cast<std::size_t>(j.at("duplicates").as_uint64());
    s.complete = j.at("complete").as_bool();
    report.jobs.push_back(std::move(s));
  }
  if (!job.empty() && report.jobs.empty())
    throw ProtocolError("unknown job '" + job + "'");
  return report;
}

ResultsReport fetch_results(const net::Endpoint& endpoint,
                            const std::string& job) {
  net::LineConn conn = connect(endpoint);
  must_send(conn, make_results(job));
  const JsonValue begin = expect(conn, "results_begin");
  ResultsReport report;
  report.job = begin.at("job").as_string();
  report.identity = begin.at("identity").as_string();
  report.total = static_cast<std::size_t>(begin.at("total").as_uint64());
  report.complete = begin.at("complete").as_bool();
  for (;;) {
    const JsonValue msg = expect(conn, "");
    const std::string& type = message_type(msg);
    if (type == "results_end") {
      report.failed =
          static_cast<std::size_t>(msg.at("failed").as_uint64());
      break;
    }
    if (type != "row")
      throw ProtocolError("expected row/results_end, got '" + type + "'");
    const auto index = static_cast<std::size_t>(msg.at("i").as_uint64());
    report.rows.emplace(index,
                        sweep::summary_row_from_json(msg.at("row")));
  }
  return report;
}

std::size_t watch_job(
    const net::Endpoint& endpoint, const std::string& job,
    const std::function<void(std::size_t, const sweep::SummaryRow&)>&
        on_row) {
  net::LineConn conn = connect(endpoint);
  must_send(conn, make_watch(job));
  expect(conn, "watch_ok");
  for (;;) {
    const JsonValue msg = expect(conn, "");
    const std::string& type = message_type(msg);
    if (type == "job_done")
      return static_cast<std::size_t>(msg.at("failed").as_uint64());
    if (type != "row")
      throw ProtocolError("expected row/job_done, got '" + type + "'");
    if (on_row)
      on_row(static_cast<std::size_t>(msg.at("i").as_uint64()),
             sweep::summary_row_from_json(msg.at("row")));
  }
}

void shutdown_daemon(const net::Endpoint& endpoint) {
  net::LineConn conn = connect(endpoint);
  must_send(conn, make_shutdown());
  expect(conn, "bye");
}

}  // namespace pns::sweepd
