#include "sweepd/daemon.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "sweep/runner.hpp"

namespace pns::sweepd {

namespace {

using Clock = std::chrono::steady_clock;

/// Job spec sidecar filename ("job-3" -> "job-3.spec.json").
std::string spec_filename(const std::string& job_id) {
  return job_id + ".spec.json";
}
std::string journal_filename(const std::string& job_id) {
  return job_id + ".jsonl";
}

/// Numeric suffix of a "job-N" id; nullopt for anything else.
std::optional<std::uint64_t> job_number(const std::string& id) {
  if (id.rfind("job-", 0) != 0) return std::nullopt;
  const std::string digits = id.substr(4);
  if (digits.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const unsigned long long n = std::strtoull(digits.c_str(), &end, 10);
  if (errno != 0 || end != digits.c_str() + digits.size())
    return std::nullopt;
  return n;
}

}  // namespace

struct Daemon::Impl {
  struct Job {
    std::string id;
    JobSpec spec;
    std::string identity;
    std::vector<sweep::ScenarioSpec> specs;
    sweep::JournalHeader header;

    std::map<std::size_t, sweep::SummaryRow> done;
    std::map<std::size_t, double> costs;
    std::set<std::size_t> pending;  ///< not done, not leased
    std::size_t failed = 0;
    std::size_t duplicates = 0;
    std::optional<sweep::JournalWriter> journal;

    bool complete() const { return done.size() == specs.size(); }
  };

  struct Lease {
    std::uint64_t id = 0;
    std::string job;
    std::set<std::size_t> outstanding;
    int conn_fd = -1;
    Clock::time_point deadline;
  };

  struct Conn {
    explicit Conn(net::Socket s)
        : io(std::move(s)), last_seen(Clock::now()) {}
    net::LineConn io;
    bool is_worker = false;
    unsigned threads = 0;
    std::set<std::string> watching;
    std::uint64_t lease = 0;  ///< outstanding lease id; 0 = none
    bool closing = false;     ///< close once the write buffer drains

    // Liveness bookkeeping surfaced via `status` (WorkerLiveness).
    std::size_t worker_num = 0;  ///< assigned on first worker activity
    std::size_t reconnects = 0;  ///< from hello; worker-side retry count
    std::size_t rows = 0;
    std::size_t duplicates = 0;
    Clock::time_point last_seen;
  };

  DaemonOptions options;
  net::Socket listener;
  int wake_read = -1;   ///< self-pipe: stop() writes, the loop drains
  int wake_write = -1;
  std::atomic<bool> running{false};  ///< stop() writes from other threads
  bool bound = false;

  /// Degraded mode: a journal append failed (state dir unwritable), so
  /// the daemon stops handing out leases -- it cannot uphold the
  /// journal-before-acknowledge contract -- but keeps serving status,
  /// results and watch streams from memory. Every poll iteration probes
  /// the journals; when the state dir heals, leasing resumes.
  bool degraded_mode = false;
  std::string degraded_reason;

  std::vector<std::unique_ptr<Job>> job_list;  // creation order
  std::map<std::string, Job*> jobs_by_id;
  std::uint64_t next_job = 1;
  std::size_t next_worker = 1;  ///< ordinal for WorkerLiveness::worker

  std::map<std::uint64_t, Lease> leases;
  std::uint64_t next_lease = 1;

  std::map<int, std::unique_ptr<Conn>> conns;  // keyed by fd

  explicit Impl(DaemonOptions opt) : options(std::move(opt)) {}

  ~Impl() {
    if (wake_read >= 0) ::close(wake_read);
    if (wake_write >= 0) ::close(wake_write);
    if (options.endpoint.kind == net::Endpoint::Kind::kUnix &&
        listener.valid())
      ::unlink(options.endpoint.path.c_str());
  }

  void log(const std::string& line) {
    if (options.log) options.log(line);
  }

  std::string state_path(const std::string& file) const {
    if (options.state_dir.empty()) return file;
    return options.state_dir + "/" + file;
  }

  sweep::JournalDurability durability() const {
    return options.fsync_journal ? sweep::JournalDurability::kFsync
                                 : sweep::JournalDurability::kFlush;
  }

  // ------------------------------------------------------------- state

  /// Registers a fully built job under its id.
  Job& install_job(std::unique_ptr<Job> job) {
    Job& ref = *job;
    jobs_by_id[ref.id] = &ref;
    job_list.push_back(std::move(job));
    if (const auto n = job_number(ref.id); n && *n >= next_job)
      next_job = *n + 1;
    return ref;
  }

  /// Creates a new job from a submitted spec: expands it, persists the
  /// spec sidecar and opens a fresh journal. Throws JobError /
  /// JournalError on invalid specs or unwritable state.
  Job& create_job(JobSpec spec) {
    auto job = std::make_unique<Job>();
    job->id = "job-" + std::to_string(next_job);
    job->spec = std::move(spec);
    job->identity = job->spec.identity();
    job->specs = job->spec.expand();  // JobError on unknown preset
    if (job->specs.empty()) throw JobError("job expands to zero scenarios");
    job->header = sweep::JournalHeader{
        job->identity, job->specs.size()};
    for (std::size_t i = 0; i < job->specs.size(); ++i)
      job->pending.insert(i);

    // Spec sidecar first, then the journal: a crash between the two
    // resurfaces as an empty job on restart, never an orphan journal.
    {
      std::ofstream out(state_path(spec_filename(job->id)),
                        std::ios::trunc);
      if (!out)
        throw JobError("cannot write job spec: " +
                       state_path(spec_filename(job->id)));
      std::ostringstream doc;
      JsonWriter w(doc, JsonStyle::kCompact);
      w.begin_object();
      w.kv("job", job->id);
      w.key("spec");
      job->spec.write_json(w);
      w.end_object();
      out << doc.str() << '\n';
    }
    job->journal = sweep::JournalWriter::create(
        state_path(journal_filename(job->id)), job->header, durability(),
        options.fault);

    log("job " + job->id + ": submitted '" + job->identity + "', " +
        std::to_string(job->specs.size()) + " scenarios");
    return install_job(std::move(job));
  }

  /// Reloads one persisted job (spec sidecar + journal) at startup.
  void load_job(const std::string& spec_path) {
    std::ifstream in(spec_path);
    std::string line;
    if (!in || !std::getline(in, line))
      throw JobError("cannot read job spec: " + spec_path);
    JsonValue doc;
    try {
      doc = parse_json(line);
    } catch (const JsonError& e) {
      // A truncated sidecar (crash mid-create, torn write) must not
      // read as a generic parse abort: name the file and the remedy.
      throw JobError(spec_path +
                     ": job spec file is torn or corrupt -- re-submit "
                     "the job or restore the file from a backup (" +
                     e.what() + ")");
    }
    auto job = std::make_unique<Job>();
    job->id = doc.at("job").as_string();
    job->spec = JobSpec::from_json(doc.at("spec"));
    job->identity = job->spec.identity();
    job->specs = job->spec.expand();
    job->header = sweep::JournalHeader{job->identity, job->specs.size()};

    const std::string jpath = state_path(journal_filename(job->id));
    if (std::filesystem::exists(jpath)) {
      sweep::JournalContents contents =
          sweep::read_journal(jpath, job->header);
      for (const std::string& note : contents.notes) log(note);
      if (contents.quarantined_lines > 0)
        log("job " + job->id + ": " +
            std::to_string(contents.quarantined_lines) +
            " corrupt row(s) quarantined; their scenarios re-run");
      job->done = std::move(contents.rows);
      job->costs = std::move(contents.costs);
      for (const auto& [i, row] : job->done) {
        if (i >= job->specs.size() ||
            row.label != job->specs[i].label)
          throw sweep::JournalError(
              jpath + ": journaled row does not match scenario " +
              std::to_string(i));
        if (!row.ok) ++job->failed;
      }
      job->journal = sweep::JournalWriter::append_to(jpath, durability(),
                                                     options.fault);
    } else {
      job->journal = sweep::JournalWriter::create(jpath, job->header,
                                                  durability(),
                                                  options.fault);
    }
    for (std::size_t i = 0; i < job->specs.size(); ++i)
      if (!job->done.count(i)) job->pending.insert(i);

    log("job " + job->id + ": reloaded, " +
        std::to_string(job->done.size()) + "/" +
        std::to_string(job->specs.size()) + " rows journalled");
    install_job(std::move(job));
  }

  void load_state_dir() {
    const std::string dir =
        options.state_dir.empty() ? "." : options.state_dir;
    if (!std::filesystem::exists(dir)) {
      std::filesystem::create_directories(dir);
      return;
    }
    // Deterministic reload order: ascending job number.
    std::vector<std::pair<std::uint64_t, std::string>> found;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      const std::string suffix = ".spec.json";
      if (name.size() <= suffix.size() ||
          name.compare(name.size() - suffix.size(), suffix.size(),
                       suffix) != 0)
        continue;
      const std::string id = name.substr(0, name.size() - suffix.size());
      if (const auto n = job_number(id))
        found.emplace_back(*n, entry.path().string());
    }
    std::sort(found.begin(), found.end());
    for (const auto& [n, path] : found) {
      try {
        load_job(path);
      } catch (const std::exception& e) {
        // One corrupt job must not keep the daemon (and every other
        // job) down; it is skipped and reported.
        log("skipping " + path + ": " + e.what());
      }
    }
  }

  // ------------------------------------------------------------ leases

  std::size_t worker_count() const {
    std::size_t n = 0;
    for (const auto& [fd, conn] : conns)
      if (conn->is_worker) ++n;
    return n;
  }

  std::size_t active_job_count() const {
    std::size_t n = 0;
    for (const auto& job : job_list)
      if (!job->complete()) ++n;
    return n;
  }

  /// Picks the rows of one lease from a job's pending pool using the
  /// journalled-cost LPT planner: the pending rows are partitioned into
  /// the number of leases we want outstanding, balanced by measured
  /// wall_s (costs learned from resumed journals and rows completed so
  /// far -- unmeasured rows assume the mean), and the first non-empty
  /// part becomes this lease. Re-planning happens on every grant, so
  /// re-leased rows and fresh cost data are always incorporated.
  std::vector<std::size_t> plan_lease(const Job& job) {
    const std::vector<std::size_t> pending(job.pending.begin(),
                                           job.pending.end());
    std::size_t parts;
    if (options.lease_rows > 0) {
      parts = (pending.size() + options.lease_rows - 1) /
              options.lease_rows;
    } else {
      // Two waves per connected worker keeps everyone busy while
      // leaving enough granularity to rebalance around a slow worker
      // (cf. Gupta et al.'s online dispatch for heterogeneous speeds).
      parts = 2 * std::max<std::size_t>(worker_count(), 1);
    }
    parts = std::max<std::size_t>(
        1, std::min(parts, pending.size()));

    std::map<std::size_t, double> positional_costs;
    for (std::size_t p = 0; p < pending.size(); ++p) {
      const auto it = job.costs.find(pending[p]);
      if (it != job.costs.end()) positional_costs[p] = it->second;
    }
    const auto parts_list =
        sweep::plan_shards(pending.size(), parts, positional_costs);
    for (const auto& part : parts_list) {
      if (part.empty()) continue;
      std::vector<std::size_t> indices;
      indices.reserve(part.size());
      for (const std::size_t p : part) indices.push_back(pending[p]);
      return indices;
    }
    return {};
  }

  /// Marks a connection as a worker and assigns its status ordinal.
  void ensure_worker(Conn& conn) {
    conn.is_worker = true;
    if (conn.worker_num == 0) conn.worker_num = next_worker++;
  }

  /// Grants a lease to the requesting worker, or reports idle.
  void grant_lease(Conn& conn) {
    // Any connection that pulls work is a worker, hello or not.
    ensure_worker(conn);
    if (degraded_mode) {
      // Leasing is paused: an accepted row could not be journalled, so
      // it could not be acknowledged. Idle replies carry the real
      // active-job count so --once workers keep polling instead of
      // declaring the sweep finished.
      send(conn, make_idle(active_job_count(), options.idle_poll_s));
      return;
    }
    for (const auto& job : job_list) {
      if (job->pending.empty()) continue;
      const std::vector<std::size_t> indices = plan_lease(*job);
      if (indices.empty()) continue;

      Lease lease;
      lease.id = next_lease++;
      lease.job = job->id;
      lease.conn_fd = conn.io.fd();
      lease.deadline = Clock::now() +
                       std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               options.lease_timeout_s));
      for (const std::size_t i : indices) {
        job->pending.erase(i);
        lease.outstanding.insert(i);
      }
      conn.lease = lease.id;
      send(conn, make_lease(job->id, lease.id, options.lease_timeout_s,
                            job->spec, indices));
      log("lease " + std::to_string(lease.id) + ": " + job->id + " rows " +
          std::to_string(indices.size()) + " -> fd " +
          std::to_string(conn.io.fd()));
      leases.emplace(lease.id, std::move(lease));
      return;
    }
    send(conn, make_idle(active_job_count(), options.idle_poll_s));
  }

  /// Returns a lease's unfinished rows to the pending pool.
  void revoke_lease(std::uint64_t lease_id, const char* why) {
    const auto it = leases.find(lease_id);
    if (it == leases.end()) return;
    Lease& lease = it->second;
    Job* job = find_job(lease.job);
    if (job) {
      for (const std::size_t i : lease.outstanding)
        if (!job->done.count(i)) job->pending.insert(i);
    }
    if (!lease.outstanding.empty())
      log("lease " + std::to_string(lease_id) + ": revoked (" + why +
          "), " + std::to_string(lease.outstanding.size()) +
          " rows re-leased");
    const auto conn_it = conns.find(lease.conn_fd);
    if (conn_it != conns.end() && conn_it->second->lease == lease_id)
      conn_it->second->lease = 0;
    leases.erase(it);
  }

  void revoke_expired_leases() {
    const auto now = Clock::now();
    std::vector<std::uint64_t> expired;
    for (const auto& [id, lease] : leases)
      if (lease.deadline <= now) expired.push_back(id);
    for (const std::uint64_t id : expired)
      revoke_lease(id, "liveness timeout");
  }

  /// Pushes a lease's deadline out by the configured timeout -- called
  /// for every row and heartbeat, so a slow-but-alive worker never
  /// loses its lease to the timeout meant for dead ones.
  void refresh_lease(std::uint64_t lease_id) {
    const auto it = leases.find(lease_id);
    if (it == leases.end()) return;
    it->second.deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               options.lease_timeout_s));
  }

  /// Poll timeout until the nearest lease deadline; -1 = indefinite.
  /// Degraded mode bounds the wait so the heal probe keeps running
  /// even with no traffic.
  int poll_timeout_ms() const {
    long long best = -1;
    if (degraded_mode)
      best = std::max<long long>(
          1, static_cast<long long>(options.idle_poll_s * 1000.0));
    if (!leases.empty()) {
      auto nearest = Clock::time_point::max();
      for (const auto& [id, lease] : leases)
        nearest = std::min(nearest, lease.deadline);
      const auto ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              nearest - Clock::now())
              .count();
      const long long lease_ms = std::clamp<long long>(ms, 0, 60'000);
      best = best < 0 ? lease_ms : std::min(best, lease_ms);
    }
    return static_cast<int>(std::min<long long>(
        best < 0 ? -1 : best, 60'000));
  }

  // ----------------------------------------------------- degraded mode

  void enter_degraded(const std::string& why) {
    if (!degraded_mode)
      log("entering degraded mode: " + why +
          " (leasing paused; status/results still served)");
    degraded_mode = true;
    degraded_reason = why;
  }

  /// Probes every job journal; leaves degraded mode when all accept
  /// writes again.
  void try_heal() {
    if (!degraded_mode) return;
    for (const auto& job : job_list)
      if (job->journal && !job->journal->probe()) return;
    degraded_mode = false;
    degraded_reason.clear();
    log("state dir healed; resuming leasing");
  }

  // -------------------------------------------------------------- rows

  Job* find_job(const std::string& id) {
    const auto it = jobs_by_id.find(id);
    return it == jobs_by_id.end() ? nullptr : it->second;
  }

  /// Accepts one worker result: journal first, then bookkeeping, then
  /// streaming. Duplicates (re-leased rows finishing twice, replayed
  /// messages) are counted and dropped -- row payloads of a
  /// deterministic sweep are identical, so dropping is lossless.
  void accept_row(Conn& conn, const JsonValue& msg) {
    const std::string job_id = msg.at("job").as_string();
    Job* job = find_job(job_id);
    if (!job) throw ProtocolError("row for unknown job '" + job_id + "'");
    const auto index = static_cast<std::size_t>(msg.at("i").as_uint64());
    if (index >= job->specs.size())
      throw ProtocolError("row index " + std::to_string(index) +
                          " out of range for " + job_id);
    sweep::SummaryRow row = sweep::summary_row_from_json(msg.at("row"));
    if (row.label != job->specs[index].label)
      throw ProtocolError(
          "row " + std::to_string(index) + " of " + job_id +
          " does not describe its scenario (worker/daemon spec "
          "mismatch?)");

    // A row is proof of life: refresh its lease so long-running
    // scenarios never expire a lease that is making progress.
    if (const JsonValue* lf = msg.find("lease"))
      refresh_lease(lf->as_uint64());

    if (job->done.count(index)) {
      ++job->duplicates;
      ++conn.duplicates;
      return;
    }

    const JsonValue* wall = msg.find("wall_s");
    const double wall_s = wall ? wall->as_double() : -1.0;

    // Journal before acknowledging anywhere: once streamed or counted
    // done, the row must survive a daemon restart. When the append
    // fails, the row is deliberately NOT acknowledged: it stays on its
    // lease, returns to pending at lease_done/revocation, and will be
    // re-leased after the state dir heals.
    try {
      job->journal->append(index, row, wall_s);
    } catch (const sweep::JournalError& e) {
      enter_degraded(e.what());
      return;
    }
    ++conn.rows;
    if (wall_s >= 0.0) job->costs[index] = wall_s;

    job->pending.erase(index);
    if (const JsonValue* lease_field = msg.find("lease")) {
      const auto it = leases.find(lease_field->as_uint64());
      if (it != leases.end()) it->second.outstanding.erase(index);
    } else {
      for (auto& [id, lease] : leases)
        if (lease.job == job->id && lease.outstanding.erase(index)) break;
    }

    if (!row.ok) ++job->failed;
    const bool completed_job =
        job->done.emplace(index, std::move(row)).second &&
        job->complete();

    // Stream to watchers (lease 0: the tag is worker-side bookkeeping).
    const auto& stored = job->done.at(index);
    for (auto& [fd, conn] : conns) {
      if (!conn->watching.count(job->id)) continue;
      send(*conn, make_row(job->id, 0, index, -1.0, stored));
      if (completed_job) send(*conn, make_job_done(job->id, job->failed));
    }
    if (completed_job)
      log("job " + job->id + ": complete (" +
          std::to_string(job->failed) + " failed)");
  }

  // ------------------------------------------------------ connections

  void send(Conn& conn, const std::string& line) {
    conn.io.queue_line(line);
    // Opportunistic flush; leftovers go out via POLLOUT.
    conn.io.flush();
  }

  void disconnect(int fd) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;
    if (it->second->lease != 0)
      revoke_lease(it->second->lease, "worker disconnected");
    conns.erase(it);
  }

  JobStatus status_of(const Job& job) const {
    JobStatus s;
    s.job = job.id;
    s.identity = job.identity;
    s.total = job.specs.size();
    s.done = job.done.size();
    s.failed = job.failed;
    s.pending = job.pending.size();
    s.duplicates = job.duplicates;
    s.complete = job.complete();
    for (const auto& [id, lease] : leases)
      if (lease.job == job.id) s.leased += lease.outstanding.size();
    return s;
  }

  std::vector<WorkerLiveness> worker_liveness() const {
    const auto now = Clock::now();
    std::vector<WorkerLiveness> out;
    for (const auto& [fd, conn] : conns) {
      if (!conn->is_worker) continue;
      WorkerLiveness w;
      w.worker = conn->worker_num;
      w.threads = conn->threads;
      for (const auto& [id, lease] : leases)
        if (lease.conn_fd == fd) ++w.leases;
      w.rows = conn->rows;
      w.duplicates = conn->duplicates;
      w.retries = conn->reconnects;
      w.last_seen_s =
          std::chrono::duration<double>(now - conn->last_seen).count();
      out.push_back(w);
    }
    std::sort(out.begin(), out.end(),
              [](const WorkerLiveness& a, const WorkerLiveness& b) {
                return a.worker < b.worker;
              });
    return out;
  }

  void reply_status(Conn& conn, const std::string& only_job) {
    std::ostringstream doc;
    JsonWriter w(doc, JsonStyle::kCompact);
    w.begin_object();
    w.kv("type", "status_ok");
    w.kv("workers", static_cast<std::uint64_t>(worker_count()));
    if (degraded_mode) {
      w.kv("degraded", true);
      w.kv("degraded_reason", degraded_reason);
    }
    w.key("worker_info");
    w.begin_array();
    for (const WorkerLiveness& wl : worker_liveness()) {
      w.begin_object();
      w.kv("worker", static_cast<std::uint64_t>(wl.worker));
      w.kv("threads", static_cast<std::uint64_t>(wl.threads));
      w.kv("leases", static_cast<std::uint64_t>(wl.leases));
      w.kv("rows", static_cast<std::uint64_t>(wl.rows));
      w.kv("duplicates", static_cast<std::uint64_t>(wl.duplicates));
      w.kv("retries", static_cast<std::uint64_t>(wl.retries));
      w.kv("last_seen_s", wl.last_seen_s);
      w.end_object();
    }
    w.end_array();
    w.key("jobs");
    w.begin_array();
    for (const auto& job : job_list) {
      if (!only_job.empty() && job->id != only_job) continue;
      const JobStatus s = status_of(*job);
      w.begin_object();
      w.kv("job", s.job);
      w.kv("identity", s.identity);
      w.kv("total", static_cast<std::uint64_t>(s.total));
      w.kv("done", static_cast<std::uint64_t>(s.done));
      w.kv("failed", static_cast<std::uint64_t>(s.failed));
      w.kv("pending", static_cast<std::uint64_t>(s.pending));
      w.kv("leased", static_cast<std::uint64_t>(s.leased));
      w.kv("duplicates", static_cast<std::uint64_t>(s.duplicates));
      w.kv("complete", s.complete);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    send(conn, doc.str());
  }

  void reply_results(Conn& conn, const std::string& job_id) {
    Job* job = find_job(job_id);
    if (!job) throw ProtocolError("unknown job '" + job_id + "'");
    send(conn, make_results_begin(job->id, job->identity,
                                  job->specs.size(), job->done.size(),
                                  job->complete()));
    // Global spec order: the client can append rows straight into the
    // aggregate without sorting.
    for (const auto& [index, row] : job->done)
      send(conn, make_row(job->id, 0, index, -1.0, row));
    send(conn, make_results_end(job->id, job->failed));
  }

  void start_watch(Conn& conn, const std::string& job_id) {
    Job* job = find_job(job_id);
    if (!job) throw ProtocolError("unknown job '" + job_id + "'");
    conn.watching.insert(job->id);
    send(conn, make_watch_ok(job->id, job->specs.size(),
                             job->done.size()));
    // Replay what already landed, then live rows stream from
    // accept_row. A completed job finishes the conversation at once.
    for (const auto& [index, row] : job->done)
      send(conn, make_row(job->id, 0, index, -1.0, row));
    if (job->complete()) send(conn, make_job_done(job->id, job->failed));
  }

  /// Dispatches one message line. Throws ProtocolError (framing/routing
  /// violations: connection gets an error reply and is closed) and
  /// JobError (bad submissions: error reply, connection stays usable).
  void handle_message(Conn& conn, const std::string& line) {
    const JsonValue msg = parse_message(line);
    const std::string& type = message_type(msg);
    if (type == "hello") {
      if (msg.at("role").as_string() == "worker") ensure_worker(conn);
      if (const JsonValue* t = msg.find("threads"))
        conn.threads = static_cast<unsigned>(t->as_uint64());
      if (const JsonValue* r = msg.find("reconnects"))
        conn.reconnects = static_cast<std::size_t>(r->as_uint64());
      send(conn, make_hello_ok());
    } else if (type == "submit") {
      JobSpec spec = JobSpec::from_json(msg.at("spec"));
      Job& job = create_job(std::move(spec));
      send(conn, make_submitted(job.id, job.identity, job.specs.size()));
    } else if (type == "lease_request") {
      grant_lease(conn);
    } else if (type == "row") {
      accept_row(conn, msg);
    } else if (type == "heartbeat") {
      // One-way liveness beacon: refresh the lease it names (last_seen
      // was already refreshed by the read itself). No reply -- the
      // worker's protocol reader is not expecting one.
      refresh_lease(msg.at("lease").as_uint64());
    } else if (type == "lease_done") {
      const auto lease_id = msg.at("lease").as_uint64();
      // Whatever the worker left unfinished goes back to pending.
      revoke_lease(lease_id, "lease_done with unfinished rows");
    } else if (type == "status") {
      const JsonValue* job = msg.find("job");
      reply_status(conn, job ? job->as_string() : "");
    } else if (type == "results") {
      reply_results(conn, msg.at("job").as_string());
    } else if (type == "watch") {
      start_watch(conn, msg.at("job").as_string());
    } else if (type == "shutdown") {
      send(conn, make_bye());
      log("shutdown requested");
      running.store(false);
    } else {
      throw ProtocolError("unknown message type '" + type + "'");
    }
  }

  void handle_readable(int fd) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;
    Conn& conn = *it->second;
    std::vector<std::string> lines;
    const net::IoStatus st = conn.io.read_lines(lines);
    if (!lines.empty()) conn.last_seen = Clock::now();
    for (const std::string& line : lines) {
      if (conn.closing) break;  // already poisoned; drain politely
      try {
        handle_message(conn, line);
      } catch (const ProtocolError& e) {
        // Framing/routing violation: this stream can't be trusted any
        // further. Tell the peer why, then drop it.
        send(conn, make_error(e.what()));
        conn.closing = true;
        log("fd " + std::to_string(fd) + ": " + e.what());
      } catch (const std::exception& e) {
        // Application-level failure (bad submission, journal IO):
        // report it, keep the connection.
        send(conn, make_error(e.what()));
        log("fd " + std::to_string(fd) + ": " + e.what());
      }
    }
    if (st == net::IoStatus::kLineTooLong && !conn.closing) {
      send(conn, make_error("line exceeds protocol limit"));
      conn.closing = true;
    }
    const bool peer_gone =
        st == net::IoStatus::kClosed || st == net::IoStatus::kError;
    if (peer_gone || (conn.closing && !conn.io.pending_write()))
      disconnect(fd);
  }

  void accept_new_connections() {
    for (;;) {
      net::Socket s = net::accept_connection(listener);
      if (!s.valid()) return;
      net::set_nonblocking(s.fd(), true);
      const int fd = s.fd();
      conns.emplace(fd, std::make_unique<Conn>(std::move(s)));
    }
  }

  // --------------------------------------------------------- the loop

  void bind() {
    if (bound) return;
    load_state_dir();
    listener = net::listen_endpoint(options.endpoint);
    net::set_nonblocking(listener.fd(), true);
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0)
      throw net::SocketError("pipe: " + std::string(std::strerror(errno)));
    wake_read = pipe_fds[0];
    wake_write = pipe_fds[1];
    net::set_nonblocking(wake_read, true);
    bound = true;
    log("listening on " + options.endpoint.to_string());
  }

  void run() {
    running.store(true);
    while (running.load()) {
      revoke_expired_leases();
      try_heal();

      std::vector<pollfd> fds;
      fds.push_back({listener.fd(), POLLIN, 0});
      fds.push_back({wake_read, POLLIN, 0});
      for (const auto& [fd, conn] : conns) {
        short events = POLLIN;
        if (conn->io.pending_write()) events |= POLLOUT;
        fds.push_back({fd, events, 0});
      }

      const int rc = ::poll(fds.data(), fds.size(), poll_timeout_ms());
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw net::SocketError("poll: " +
                               std::string(std::strerror(errno)));
      }

      if (fds[1].revents & POLLIN) {
        char drain[64];
        while (::read(wake_read, drain, sizeof(drain)) > 0) {
        }
      }
      if (fds[0].revents & POLLIN) accept_new_connections();

      for (std::size_t k = 2; k < fds.size(); ++k) {
        const int fd = fds[k].fd;
        const short re = fds[k].revents;
        if (re == 0) continue;
        if (re & (POLLERR | POLLHUP | POLLNVAL)) {
          // POLLHUP can still have readable data queued; try the read
          // path first so final rows of a closing worker are not lost.
          handle_readable(fd);
          if (conns.count(fd) && !(re & POLLIN)) disconnect(fd);
          continue;
        }
        if (re & POLLOUT) {
          const auto it = conns.find(fd);
          if (it != conns.end()) {
            const net::IoStatus st = it->second->io.flush();
            if (st == net::IoStatus::kClosed ||
                st == net::IoStatus::kError) {
              disconnect(fd);
              continue;
            }
            if (it->second->closing && !it->second->io.pending_write()) {
              disconnect(fd);
              continue;
            }
          }
        }
        if (re & POLLIN) handle_readable(fd);
      }
    }

    // Orderly exit: push out whatever is still buffered (bye replies,
    // final rows) with a short blocking grace pass.
    for (auto& [fd, conn] : conns) {
      if (!conn->io.pending_write()) continue;
      net::set_nonblocking(fd, false);
      conn->io.flush();
    }
    conns.clear();
  }

  void stop() {
    running.store(false);
    if (wake_write >= 0) {
      const char byte = 1;
      [[maybe_unused]] const ssize_t n = ::write(wake_write, &byte, 1);
    }
  }
};

Daemon::Daemon(DaemonOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Daemon::~Daemon() = default;

void Daemon::bind() { impl_->bind(); }

std::uint16_t Daemon::port() const {
  return net::local_port(impl_->listener);
}

void Daemon::run() { impl_->run(); }

void Daemon::stop() { impl_->stop(); }

std::vector<JobStatus> Daemon::jobs() const {
  std::vector<JobStatus> out;
  out.reserve(impl_->job_list.size());
  for (const auto& job : impl_->job_list)
    out.push_back(impl_->status_of(*job));
  return out;
}

bool Daemon::degraded() const { return impl_->degraded_mode; }

}  // namespace pns::sweepd
