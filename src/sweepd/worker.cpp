#include "sweepd/worker.hpp"

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "sweep/runner.hpp"
#include "sweepd/job.hpp"
#include "sweepd/protocol.hpp"

namespace pns::sweepd {

namespace {

struct ExpandedJob {
  std::string identity;
  std::vector<sweep::ScenarioSpec> specs;
};

void log_to(const WorkerOptions& options, const std::string& line) {
  if (options.log) options.log(line);
}

/// Receives the next line or throws: the worker protocol is strictly
/// request/response, so silence means the daemon is gone.
std::string must_recv(net::LineConn& conn) {
  std::optional<std::string> line = conn.recv_line_blocking();
  if (!line) throw ProtocolError("connection to daemon lost");
  return *std::move(line);
}

}  // namespace

WorkerReport run_worker(const WorkerOptions& options) {
  net::LineConn conn(net::connect_endpoint(options.endpoint));
  WorkerReport report;

  if (!conn.send_line_blocking(make_hello("worker", options.threads)))
    throw ProtocolError("connection to daemon lost");
  {
    const JsonValue reply = parse_message(must_recv(conn));
    if (message_type(reply) != "hello_ok")
      throw ProtocolError("expected hello_ok, got '" +
                          message_type(reply) + "'");
  }
  log_to(options, "connected to " + options.endpoint.to_string());

  // The expansion of the last-seen job is kept: leases of one job arrive
  // back to back, and expanding is pure spec work but not free.
  ExpandedJob cached;

  for (;;) {
    if (!conn.send_line_blocking(make_lease_request())) break;
    const JsonValue msg = parse_message(must_recv(conn));
    const std::string& type = message_type(msg);

    if (type == "idle") {
      // `once` exits when every job is *complete*, not merely when
      // nothing is momentarily pending: rows leased to another worker
      // may yet come back for re-leasing if that worker dies.
      const JsonValue* active = msg.find("active_jobs");
      if (options.once && (!active || active->as_uint64() == 0)) {
        log_to(options, "no unfinished jobs; exiting (--once)");
        break;
      }
      const JsonValue* poll = msg.find("poll_s");
      const double poll_s = poll ? poll->as_double() : 0.5;
      std::this_thread::sleep_for(
          std::chrono::duration<double>(poll_s));
      continue;
    }
    if (type == "bye") break;
    if (type == "error")
      throw ProtocolError("daemon error: " +
                          msg.at("error").as_string());
    if (type != "lease")
      throw ProtocolError("expected lease/idle, got '" + type + "'");

    const std::string job = msg.at("job").as_string();
    const std::uint64_t lease = msg.at("lease").as_uint64();
    JobSpec spec = JobSpec::from_json(msg.at("spec"));
    const std::string identity = spec.identity();
    if (identity != cached.identity) {
      cached.identity = identity;
      cached.specs = spec.expand();
    }

    std::vector<std::size_t> global;
    std::vector<sweep::ScenarioSpec> subset;
    for (const JsonValue& v : msg.at("indices").items()) {
      const auto i = static_cast<std::size_t>(v.as_uint64());
      if (i >= cached.specs.size())
        throw ProtocolError("leased index " + std::to_string(i) +
                            " out of range (spec drift between daemon "
                            "and worker?)");
      global.push_back(i);
      subset.push_back(cached.specs[i]);
    }
    log_to(options, job + ": leased " + std::to_string(global.size()) +
                        " rows (lease " + std::to_string(lease) + ")");

    // Stream each row the moment it completes. on_outcome runs on
    // worker threads under the runner's mutex while this thread blocks
    // in run(), so writing the connection from it is serialised.
    bool peer_lost = false;
    sweep::SweepRunnerOptions ropt;
    ropt.threads = options.threads;
    ropt.on_outcome = [&](std::size_t local,
                          const sweep::SweepOutcome& outcome) {
      if (peer_lost) return;
      const sweep::SummaryRow row = sweep::summarize(outcome);
      if (!row.ok) ++report.failed;
      ++report.rows;
      if (!conn.send_line_blocking(make_row(job, lease, global[local],
                                            outcome.wall_s, row)))
        peer_lost = true;
    };
    sweep::SweepRunner(ropt).run(subset);
    if (peer_lost) break;

    if (!conn.send_line_blocking(make_lease_done(job, lease))) break;
    ++report.leases;
  }

  log_to(options, "worker done: " + std::to_string(report.leases) +
                      " leases, " + std::to_string(report.rows) +
                      " rows (" + std::to_string(report.failed) +
                      " failed)");
  return report;
}

}  // namespace pns::sweepd
