#include "sweepd/worker.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "sweep/runner.hpp"
#include "sweepd/job.hpp"
#include "sweepd/protocol.hpp"
#include "util/rng.hpp"

namespace pns::sweepd {

namespace {

struct ExpandedJob {
  std::string identity;
  std::vector<sweep::ScenarioSpec> specs;
};

/// Thrown when the daemon link drops mid-session: run_worker's outer
/// loop catches it and enters the reconnect path. Derives from
/// ProtocolError so the initial handshake (where there is no session to
/// heal yet) propagates it unchanged to the caller.
struct ConnLost : ProtocolError {
  ConnLost() : ProtocolError("connection to daemon lost") {}
};

/// State that must survive a reconnect: the cached job expansion plus
/// the redelivery buffer of row lines the daemon has not yet provably
/// processed (any later daemon reply proves processing -- TCP delivers
/// in order).
struct SessionState {
  ExpandedJob cached;
  std::vector<std::string> unacked;  ///< framed row lines, oldest first
  std::string pending_done;          ///< lease_done line, "" = none
};

void log_to(const WorkerOptions& options, const std::string& line) {
  if (options.log) options.log(line);
}

/// Receives the next line or throws ConnLost: the worker protocol is
/// strictly request/response, so silence means the daemon is gone.
std::string must_recv(net::LineConn& conn) {
  std::optional<std::string> line = conn.recv_line_blocking();
  if (!line) throw ConnLost();
  return *std::move(line);
}

/// Connects and completes the hello handshake; `reconnects` rides along
/// so daemon status can report the worker's retry count.
net::LineConn dial(const WorkerOptions& options, std::size_t reconnects) {
  net::LineConn conn(net::connect_endpoint(options.endpoint));
  if (options.fault) conn.set_fault(options.fault);
  if (!conn.send_line_blocking(
          make_hello("worker", options.threads, reconnects)))
    throw ConnLost();
  const JsonValue reply = parse_message(must_recv(conn));
  if (message_type(reply) != "hello_ok")
    throw ProtocolError("expected hello_ok, got '" + message_type(reply) +
                        "'");
  return conn;
}

/// One lease executed end to end on an established connection. Rows are
/// buffered into state.unacked *before* each send, so a drop anywhere --
/// even mid-frame -- loses nothing: the runner keeps computing into the
/// buffer and everything is redelivered on reconnect.
void execute_lease(net::LineConn& conn, const WorkerOptions& options,
                   WorkerReport& report, SessionState& state,
                   const JsonValue& msg) {
  const std::string job = msg.at("job").as_string();
  const std::uint64_t lease = msg.at("lease").as_uint64();
  JobSpec spec = JobSpec::from_json(msg.at("spec"));
  const std::string identity = spec.identity();
  if (identity != state.cached.identity) {
    state.cached.identity = identity;
    state.cached.specs = spec.expand();
  }

  std::vector<std::size_t> global;
  std::vector<sweep::ScenarioSpec> subset;
  for (const JsonValue& v : msg.at("indices").items()) {
    const auto i = static_cast<std::size_t>(v.as_uint64());
    if (i >= state.cached.specs.size())
      throw ProtocolError("leased index " + std::to_string(i) +
                          " out of range (spec drift between daemon "
                          "and worker?)");
    global.push_back(i);
    subset.push_back(state.cached.specs[i]);
  }
  log_to(options, job + ": leased " + std::to_string(global.size()) +
                      " rows (lease " + std::to_string(lease) + ")");
  state.pending_done = make_lease_done(job, lease);

  // Heartbeat period: explicit, or a third of the daemon's announced
  // lease timeout -- three missed beats before the lease expires.
  const JsonValue* timeout = msg.find("timeout_s");
  double hb_s = options.heartbeat_s;
  if (hb_s <= 0.0 && timeout) hb_s = timeout->as_double() / 3.0;
  if (hb_s <= 0.0) hb_s = 1.0;
  hb_s = std::max(hb_s, 0.02);

  // on_outcome runs on runner threads and the heartbeat thread writes
  // too, so every send (and the unacked buffer) is serialised here.
  std::mutex send_mutex;
  std::atomic<bool> peer_lost{false};

  std::mutex hb_mutex;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  std::thread heartbeat([&] {
    const std::string beat = make_heartbeat(job, lease);
    std::unique_lock<std::mutex> lk(hb_mutex);
    while (!hb_cv.wait_for(lk, std::chrono::duration<double>(hb_s),
                           [&] { return hb_stop; })) {
      std::lock_guard<std::mutex> send_lk(send_mutex);
      if (peer_lost.load()) continue;  // keep waiting for hb_stop
      if (!conn.send_line_blocking(beat)) peer_lost.store(true);
    }
  });

  sweep::SweepRunnerOptions ropt;
  ropt.threads = options.threads;
  ropt.on_outcome = [&](std::size_t local,
                        const sweep::SweepOutcome& outcome) {
    const sweep::SummaryRow row = sweep::summarize(outcome);
    if (!row.ok) ++report.failed;
    ++report.rows;
    const std::string line =
        make_row(job, lease, global[local], outcome.wall_s, row);
    std::lock_guard<std::mutex> lk(send_mutex);
    state.unacked.push_back(line);
    if (!peer_lost.load() && !conn.send_line_blocking(line))
      peer_lost.store(true);
  };
  sweep::SweepRunner(ropt).run(subset);

  {
    std::lock_guard<std::mutex> lk(hb_mutex);
    hb_stop = true;
  }
  hb_cv.notify_all();
  heartbeat.join();

  if (peer_lost.load()) throw ConnLost();
  if (!conn.send_line_blocking(state.pending_done)) throw ConnLost();
  ++report.leases;
}

/// The request/response loop of one connected session. Returns true
/// when the worker is finished for good (bye, or --once with no
/// unfinished jobs); throws ConnLost when the link drops.
bool run_session(net::LineConn& conn, const WorkerOptions& options,
                 WorkerReport& report, SessionState& state) {
  // Redeliver what the previous session left unacknowledged. The
  // daemon journalled some of these already and drops them as
  // duplicates; the rest land now. The buffer itself is cleared only
  // once a daemon reply proves the redelivery was processed.
  if (!state.unacked.empty()) {
    for (const std::string& line : state.unacked)
      if (!conn.send_line_blocking(line)) throw ConnLost();
    report.redelivered += state.unacked.size();
    if (!state.pending_done.empty() &&
        !conn.send_line_blocking(state.pending_done))
      throw ConnLost();
    log_to(options,
           "redelivered " + std::to_string(state.unacked.size()) +
               " unacknowledged row(s)");
  }

  for (;;) {
    if (!conn.send_line_blocking(make_lease_request())) throw ConnLost();
    const JsonValue msg = parse_message(must_recv(conn));
    // Any reply proves every line sent before the request -- including
    // redelivered rows and lease_done -- was processed (TCP ordering),
    // so the redelivery buffer can be retired.
    state.unacked.clear();
    state.pending_done.clear();

    const std::string& type = message_type(msg);
    if (type == "idle") {
      // `once` exits when every job is *complete*, not merely when
      // nothing is momentarily pending: rows leased to another worker
      // may yet come back for re-leasing if that worker dies.
      const JsonValue* active = msg.find("active_jobs");
      if (options.once && (!active || active->as_uint64() == 0)) {
        log_to(options, "no unfinished jobs; exiting (--once)");
        return true;
      }
      const JsonValue* poll = msg.find("poll_s");
      const double poll_s = poll ? poll->as_double() : 0.5;
      std::this_thread::sleep_for(std::chrono::duration<double>(poll_s));
      continue;
    }
    if (type == "bye") return true;
    if (type == "error")
      throw ProtocolError("daemon error: " + msg.at("error").as_string());
    if (type != "lease")
      throw ProtocolError("expected lease/idle, got '" + type + "'");

    execute_lease(conn, options, report, state, msg);
  }
}

}  // namespace

WorkerReport run_worker(const WorkerOptions& options) {
  WorkerReport report;
  SessionState state;
  Rng jitter(options.backoff_seed);

  // The initial connection propagates failures unchanged: a wrong
  // address should fail loudly (SocketError), not retry forever. A
  // ConnLost here is different -- the link was established and then
  // dropped mid-handshake, which is chaos, not configuration -- so it
  // falls through to the reconnect path like any later drop.
  std::optional<net::LineConn> conn;
  try {
    conn.emplace(dial(options, 0));
    log_to(options, "connected to " + options.endpoint.to_string());
  } catch (const ConnLost&) {
  }

  for (;;) {
    bool done = false;
    try {
      if (!conn) throw ConnLost();
      done = run_session(*conn, options, report, state);
    } catch (const ConnLost&) {
      // Self-heal: exponential backoff with deterministic jitter, then
      // redial. Each successful redial starts a fresh session that
      // first redelivers the unacknowledged rows.
      for (;;) {
        if (report.reconnects >= options.max_reconnects)
          throw ProtocolError(
              "connection to daemon lost (" +
              std::to_string(options.max_reconnects) +
              " reconnect attempts exhausted)");
        ++report.reconnects;
        const double base =
            options.backoff_base_s *
            std::pow(2.0, static_cast<double>(report.reconnects - 1));
        const double delay =
            std::min(base, options.backoff_cap_s) * jitter.uniform(0.5, 1.5);
        log_to(options, "connection lost; reconnect " +
                            std::to_string(report.reconnects) + "/" +
                            std::to_string(options.max_reconnects) +
                            " in " + std::to_string(delay) + "s");
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
        try {
          conn.emplace(dial(options, report.reconnects));
          log_to(options, "reconnected to " +
                              options.endpoint.to_string());
          break;
        } catch (const std::exception& e) {
          log_to(options, std::string("reconnect failed: ") + e.what());
        }
      }
    }
    if (done) break;
  }

  log_to(options, "worker done: " + std::to_string(report.leases) +
                      " leases, " + std::to_string(report.rows) +
                      " rows (" + std::to_string(report.failed) +
                      " failed, " + std::to_string(report.reconnects) +
                      " reconnects, " +
                      std::to_string(report.redelivered) +
                      " redelivered)");
  return report;
}

}  // namespace pns::sweepd
