// The sweep daemon: a long-running, restartable sweep service.
//
// `pns_sweepd` turns the batch sweep runner into a service: clients
// submit JobSpecs over the JSON-lines protocol while other sweeps are in
// flight, pull-based workers lease row sets sized by the journalled-cost
// LPT planner (sweep/runner.hpp plan_shards) and push completed rows
// back, and subscribed clients receive each row as it lands. Every
// accepted row is appended to the job's canonical checkpoint journal
// (sweep/journal.hpp, identity-pinned, optionally fsynced) *before* it
// is acknowledged anywhere, so a daemon crash loses nothing: restarting
// with the same --state-dir reloads every job from its spec file +
// journal and re-leases only the missing rows.
//
// Determinism contract: the daemon never runs scenarios and never
// reduces rows -- it only routes them. A job's aggregate is assembled
// from journalled rows in global spec order, which (with the bit-exact
// row JSON round-trip, aggregate.hpp) makes a distributed run's output
// byte-identical to a single-machine `pns_sweep` run of the same spec,
// regardless of worker count, speed, disconnects or duplicated results.
//
// Threading: the daemon is single-threaded (one poll() loop); stop() is
// the only member safe to call from other threads or signal handlers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "sweep/journal.hpp"
#include "sweepd/job.hpp"
#include "sweepd/protocol.hpp"
#include "util/fault.hpp"
#include "util/socket.hpp"

namespace pns::sweepd {

struct DaemonOptions {
  net::Endpoint endpoint;
  /// Where job spec files and checkpoint journals live; "" = current
  /// directory. One daemon per state dir.
  std::string state_dir = ".";
  /// fsync every journal append (JournalDurability::kFsync): an
  /// acknowledged row then survives a machine crash, not just a daemon
  /// crash. Off by default -- a disk round-trip per row.
  bool fsync_journal = false;
  /// Rows leased to a worker are returned to the pending pool when no
  /// result arrived for this long -- the crashed-worker recovery path.
  double lease_timeout_s = 120.0;
  /// Rows per lease; 0 sizes leases automatically from the pending count
  /// and connected-worker count (smaller leases = finer rebalancing,
  /// more round trips).
  std::size_t lease_rows = 0;
  /// Poll-again hint sent to idle workers.
  double idle_poll_s = 0.5;
  /// Diagnostic sink (one line per event); null = silent.
  std::function<void(const std::string&)> log;
  /// Optional fault injector threaded into every journal writer (torn
  /// appends, failed fsyncs) -- the daemon half of `--fault` chaos runs.
  std::shared_ptr<fault::FaultInjector> fault;
};

/// Point-in-time view of one connected worker, as reported to `status`
/// clients (the per-worker liveness block of `pns_sweep status`).
struct WorkerLiveness {
  std::size_t worker = 0;      ///< daemon-assigned ordinal (1-based)
  unsigned threads = 0;        ///< worker-reported scenario threads
  std::size_t leases = 0;      ///< leases currently held
  std::size_t rows = 0;        ///< rows accepted from this connection
  std::size_t duplicates = 0;  ///< redundant rows dropped idempotently
  std::size_t retries = 0;     ///< worker-reported reconnect count
  double last_seen_s = 0.0;    ///< seconds since last message/heartbeat
};

/// Point-in-time view of one job, as reported to `status` clients.
struct JobStatus {
  std::string job;
  std::string identity;
  std::size_t total = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t pending = 0;     ///< unleased, unfinished rows
  std::size_t leased = 0;      ///< rows currently out on leases
  std::size_t duplicates = 0;  ///< redundant results accepted idempotently
  bool complete = false;
};

/// The daemon. Construct, bind(), then run() on the serving thread.
class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the listening socket and reloads jobs from the state dir.
  /// Throws net::SocketError / JobError / sweep::JournalError.
  void bind();

  /// The bound TCP port (after bind(); resolves an ephemeral port 0).
  std::uint16_t port() const;

  /// Serves until stop() or a client `shutdown` message. bind() must
  /// have been called.
  void run();

  /// Wakes run() and makes it return after the current poll iteration.
  /// Safe from other threads and signal handlers (a single write()).
  void stop();

  /// Snapshot of every job, in creation order (test/status hook; not
  /// thread-safe -- call from the serving thread or around run()).
  std::vector<JobStatus> jobs() const;

  /// True while the daemon is refusing to lease because its state dir
  /// stopped accepting journal appends (degraded mode). Test hook; same
  /// threading caveat as jobs().
  bool degraded() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pns::sweepd
