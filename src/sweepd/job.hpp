// Serializable sweep-job description shared by daemon, worker and client.
//
// A JobSpec is exactly the knob set of a `pns_sweep <preset>` invocation
// -- preset name, window length, PV mode, control/source/integrator spec
// strings -- no more, no less. Both the daemon and every worker expand
// it through the same preset + registry code that the local CLI uses, so
// a job means the *same* vector of ScenarioSpecs on every machine, and
// the daemon's journal identity (sweep_identity) pins that meaning: a
// worker built from different code fails the row-label check instead of
// silently corrupting the aggregate.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sweep/journal.hpp"
#include "sweep/scenario.hpp"
#include "util/json.hpp"

namespace pns::sweepd {

/// Error raised for an invalid job: unknown preset, malformed spec
/// strings, or a malformed JSON encoding.
class JobError : public std::runtime_error {
 public:
  explicit JobError(const std::string& what) : std::runtime_error(what) {}
};

/// One submitted sweep, as data.
struct JobSpec {
  std::string preset;  ///< sweep preset name ("table2", "quick", ...)
  double minutes = 60.0;
  ehsim::PvSource::Mode pv_mode = ehsim::PvSource::Mode::kExact;
  /// Axis overrides; empty keeps the preset's own axis (the same
  /// wholesale-replacement semantics as the CLI's --control/--source).
  std::vector<sweep::ControlSpec> controls;
  std::vector<sweep::SourceSpec> sources;
  sweep::IntegratorSpec integrator;
  /// Whole-sweep platform selection ("mono" default; a topology kind
  /// changes every row's bytes, so it is part of the identity).
  sweep::PlatformSpec platform;

  /// The canonical sweep identity (sweep/journal.hpp sweep_identity):
  /// journal headers of this job's checkpoints carry exactly this.
  std::string identity() const;

  /// Expands to the concrete scenario vector via the preset registry +
  /// axis overrides -- identical on daemon and workers. Throws JobError
  /// on an unknown preset (spec strings were validated at parse time).
  std::vector<sweep::ScenarioSpec> expand() const;

  /// Emits the JSON object form carried in submit/lease messages.
  void write_json(JsonWriter& w) const;
  /// Parses the JSON object form, validating preset and spec strings
  /// (throws JobError naming the valid choices).
  static JobSpec from_json(const JsonValue& v);
};

}  // namespace pns::sweepd
