#include "sweepd/job.hpp"

#include "sweep/presets.hpp"

namespace pns::sweepd {

namespace {

const char* pv_mode_name(ehsim::PvSource::Mode mode) {
  return mode == ehsim::PvSource::Mode::kExact ? "exact" : "tabulated";
}

ehsim::PvSource::Mode pv_mode_from_name(const std::string& name) {
  if (name == "exact") return ehsim::PvSource::Mode::kExact;
  if (name == "tabulated") return ehsim::PvSource::Mode::kTabulated;
  throw JobError("unknown pv mode '" + name +
                 "' (valid: exact, tabulated)");
}

}  // namespace

std::string JobSpec::identity() const {
  return sweep::sweep_identity(preset, minutes, pv_mode, controls, sources,
                               integrator, platform);
}

std::vector<sweep::ScenarioSpec> JobSpec::expand() const {
  const sweep::SweepPreset* p = sweep::find_sweep_preset(preset);
  if (!p) {
    std::string msg = "unknown sweep preset '" + preset + "' (valid:";
    for (const auto& known : sweep::sweep_presets())
      msg += " " + known.name;
    msg += ")";
    throw JobError(msg);
  }
  sweep::SweepSpec sw = p->make(minutes);
  if (!controls.empty()) sw.controls = controls;
  if (!sources.empty()) sw.sources = sources;
  sw.base.pv_mode = pv_mode;
  sw.base.integrator = integrator;
  // Carried as the unresolved spec: every worker resolves it through
  // its own registry inside run_scenario, so daemon and workers expand
  // byte-identically without shipping a compiled Platform.
  sw.base.platform_spec = platform;
  return sw.expand();
}

void JobSpec::write_json(JsonWriter& w) const {
  // Spec strings (not exploded param objects): round-trippable through
  // the same parse() the CLI flags use, and identical to what
  // sweep_identity pins.
  w.begin_object();
  w.kv("preset", preset);
  w.kv("minutes", minutes);
  w.kv("pv", pv_mode_name(pv_mode));
  w.key("controls");
  w.begin_array();
  for (const auto& c : controls) w.value(c.spec_string());
  w.end_array();
  w.key("sources");
  w.begin_array();
  for (const auto& s : sources) w.value(s.spec_string());
  w.end_array();
  w.kv("integrator", integrator.spec_string());
  w.kv("platform", platform.spec_string());
  w.end_object();
}

JobSpec JobSpec::from_json(const JsonValue& v) {
  JobSpec spec;
  try {
    spec.preset = v.at("preset").as_string();
    spec.minutes = v.at("minutes").as_double();
    spec.pv_mode = pv_mode_from_name(v.at("pv").as_string());
    for (const JsonValue& c : v.at("controls").items())
      spec.controls.push_back(sweep::ControlSpec::parse(c.as_string()));
    for (const JsonValue& s : v.at("sources").items())
      spec.sources.push_back(sweep::SourceSpec::parse(s.as_string()));
    spec.integrator =
        sweep::IntegratorSpec::parse(v.at("integrator").as_string());
    // Absent on the wire from pre-platform peers: default to "mono",
    // which expands identically to a job that never heard of platforms.
    if (const JsonValue* platform = v.find("platform"))
      spec.platform = sweep::PlatformSpec::parse(platform->as_string());
  } catch (const JsonError& e) {
    throw JobError(std::string("malformed job spec: ") + e.what());
  } catch (const ParamError& e) {
    throw JobError(std::string("invalid job spec: ") + e.what());
  }
  return spec;
}

}  // namespace pns::sweepd
