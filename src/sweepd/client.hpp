// Client-side operations against a running sweep daemon.
//
// Thin blocking wrappers over the JSON-lines protocol, one function per
// conversation shape (submit / status / results / watch / shutdown).
// These back the `pns_sweep submit|status|results|watch|shutdown`
// subcommands and the sweepd tests; anything they can do, a handwritten
// client in any language can do with a socket and a JSON library.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sweep/aggregate.hpp"
#include "sweepd/daemon.hpp"
#include "sweepd/job.hpp"
#include "util/socket.hpp"

namespace pns::sweepd {

/// The daemon's acknowledgement of a submitted job.
struct SubmitResult {
  std::string job;       ///< daemon-assigned id ("job-N")
  std::string identity;  ///< canonical sweep identity string
  std::size_t total = 0; ///< scenario count
};

/// Daemon-wide status snapshot.
struct StatusReport {
  std::size_t workers = 0;      ///< currently connected workers
  std::vector<JobStatus> jobs;  ///< creation order
  /// Per-worker liveness (heartbeat age, leases held, retries) --
  /// empty when talking to a pre-liveness daemon.
  std::vector<WorkerLiveness> worker_info;
  /// True when the daemon has paused leasing because its state dir
  /// stopped accepting journal appends.
  bool degraded = false;
  std::string degraded_reason;
};

/// A job's rows as fetched by `results`: global spec order, possibly
/// partial (check `complete`).
struct ResultsReport {
  std::string job;
  std::string identity;
  std::size_t total = 0;
  std::size_t failed = 0;
  bool complete = false;
  std::map<std::size_t, sweep::SummaryRow> rows;
};

/// Submits a job; throws ProtocolError / net::SocketError on failure
/// (a daemon-side rejection arrives as ProtocolError with its message).
SubmitResult submit_job(const net::Endpoint& endpoint, const JobSpec& spec);

/// Fetches status of every job ("" ) or one job id.
StatusReport fetch_status(const net::Endpoint& endpoint,
                          const std::string& job = "");

/// Fetches the rows a job has accumulated so far.
ResultsReport fetch_results(const net::Endpoint& endpoint,
                            const std::string& job);

/// Subscribes to a job's row stream: `on_row(index, row)` fires for
/// every journalled row (replay first, then live) until the job
/// completes. Returns the completed job's failed-row count.
std::size_t watch_job(
    const net::Endpoint& endpoint, const std::string& job,
    const std::function<void(std::size_t, const sweep::SummaryRow&)>&
        on_row);

/// Asks the daemon to exit its serve loop. Returns once the daemon says
/// goodbye.
void shutdown_daemon(const net::Endpoint& endpoint);

}  // namespace pns::sweepd
