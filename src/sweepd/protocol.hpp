// Wire protocol of the sweep daemon: one compact JSON object per line.
//
// Every message is a single '\n'-terminated JSON document with a "type"
// field (util/socket.hpp moves the lines; util/json parses them). The
// builders here produce the exact bytes each side sends, so the daemon,
// worker, client and the protocol tests cannot drift apart. Receivers
// parse with parse_message() and dispatch on the type string, reading
// fields straight off the JsonValue.
//
// Conversation shapes (docs/sweepd.md has the full reference):
//
//   worker:  hello -> hello_ok, then repeatedly
//            lease_request -> lease | idle,
//            row* + lease_done while executing a lease
//   client:  submit -> submitted | error
//            status -> status_ok
//            results -> results_begin, row*, results_end | error
//            watch -> watch_ok, row* (replay + live), job_done
//            shutdown -> bye
//
// Row payloads are SummaryRow JSON exactly as the checkpoint journal
// stores them (aggregate.hpp write_summary_row_json), so a row travels
// daemon-ward bit-for-bit and the distributed aggregate stays
// byte-identical to a local run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sweep/aggregate.hpp"
#include "sweepd/job.hpp"
#include "util/json.hpp"

namespace pns::sweepd {

/// Protocol revision carried in hello; bumped on breaking changes.
constexpr int kProtocolVersion = 1;

/// Error raised for a line that is not a valid protocol message
/// (unparseable JSON, missing/mistyped fields, unknown type where a
/// specific one was required).
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Parses one message line; throws ProtocolError when it is not a JSON
/// object with a string "type" member.
JsonValue parse_message(const std::string& line);

/// The "type" member of a parsed message.
const std::string& message_type(const JsonValue& msg);

// --- builders (each returns one unframed line) --------------------------

/// `reconnects` tells the daemon how many times this worker has had to
/// re-establish its session (self-healing retry loop) -- surfaced in
/// status as per-worker "retries"; 0 is omitted from the frame.
std::string make_hello(const std::string& role, unsigned threads,
                       std::size_t reconnects = 0);
std::string make_hello_ok();

std::string make_submit(const JobSpec& spec);
std::string make_submitted(const std::string& job,
                           const std::string& identity, std::size_t total);

std::string make_lease_request();
/// A work lease: the job's full spec (workers are stateless) plus the
/// global row indices to execute.
std::string make_lease(const std::string& job, std::uint64_t lease,
                       double timeout_s, const JobSpec& spec,
                       const std::vector<std::size_t>& indices);
std::string make_idle(std::size_t active_jobs, double poll_s);

/// One completed row, worker -> daemon (lease-tagged) or daemon ->
/// client (lease 0 = none). `wall_s` < 0 omits the cost field.
std::string make_row(const std::string& job, std::uint64_t lease,
                     std::size_t index, double wall_s,
                     const sweep::SummaryRow& row);
std::string make_lease_done(const std::string& job, std::uint64_t lease);

/// One-way worker -> daemon liveness beacon sent while a lease is
/// executing: refreshes the lease deadline and the worker's last-seen
/// time. Deliberately has no reply -- the worker's main thread may be
/// deep in a scenario, so a heartbeat thread fires these blind.
std::string make_heartbeat(const std::string& job, std::uint64_t lease);

std::string make_status(const std::string& job = "");  ///< "" = all jobs

std::string make_results(const std::string& job);
std::string make_results_begin(const std::string& job,
                               const std::string& identity,
                               std::size_t total, std::size_t done,
                               bool complete);
std::string make_results_end(const std::string& job, std::size_t failed);

std::string make_watch(const std::string& job);
std::string make_watch_ok(const std::string& job, std::size_t total,
                          std::size_t done);
std::string make_job_done(const std::string& job, std::size_t failed);

std::string make_shutdown();
std::string make_bye();

std::string make_error(const std::string& text);

}  // namespace pns::sweepd
