// Pull-worker for the sweep daemon (`pns_sweep worker --connect ...`).
//
// A worker is stateless: it connects, announces itself, and then pulls
// leases until told there is nothing left. Each lease carries the job's
// full JobSpec plus the global row indices to execute, so the worker
// expands the very same scenario list the daemon holds (shared preset +
// registry code, pinned by the sweep identity) and runs the leased subset
// on a local SweepRunner -- streaming every row back the moment it
// completes, in completion order. The daemon re-orders by global index,
// so worker count, speed and interleaving never show in the output.
//
// Self-healing: while a lease executes, a heartbeat thread beacons the
// daemon so a slow-but-alive worker never loses its lease to the
// liveness timeout. When the connection drops, the worker keeps
// computing, buffers every completed row, reconnects with exponential
// backoff + deterministic jitter, and redelivers the buffered rows --
// the daemon drops any it already journalled (idempotent), so a flaky
// network costs retries, never rows and never output bytes.
//
// Crash model: a worker that dies for good simply stops sending rows;
// the daemon re-leases the remainder after the lease timeout. Rows it
// did deliver were journalled on arrival and are kept.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "util/fault.hpp"
#include "util/socket.hpp"

namespace pns::sweepd {

struct WorkerOptions {
  net::Endpoint endpoint;  ///< daemon address to connect to
  /// SweepRunner threads per lease; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Exit once the daemon has no unfinished jobs, instead of polling
  /// for future submissions. Rows leased to *other* workers keep a
  /// `once` worker polling -- they may come back for re-leasing.
  bool once = false;
  /// Heartbeat period while a lease executes; 0 derives it from the
  /// lease timeout the daemon announces (timeout / 3).
  double heartbeat_s = 0.0;
  /// Reconnect attempts before giving up for good. 0 = die on the
  /// first disconnect (the pre-self-healing behaviour).
  std::size_t max_reconnects = 8;
  /// Exponential backoff between reconnect attempts: the k-th retry
  /// waits base * 2^(k-1), capped, then scaled by a deterministic
  /// jitter factor in [0.5, 1.5) drawn from `backoff_seed`.
  double backoff_base_s = 0.1;
  double backoff_cap_s = 5.0;
  std::uint64_t backoff_seed = 1;
  /// Diagnostic sink (one line per event); null = silent.
  std::function<void(const std::string&)> log;
  /// Optional fault injector attached to every daemon connection
  /// (forced short reads/writes, EINTR storms, mid-frame drops) -- the
  /// worker half of `--fault` chaos runs.
  std::shared_ptr<fault::FaultInjector> fault;
};

/// What one worker session accomplished.
struct WorkerReport {
  std::size_t leases = 0;       ///< leases executed to completion
  std::size_t rows = 0;         ///< rows computed and sent
  std::size_t failed = 0;       ///< rows whose scenario failed (ok == false)
  std::size_t reconnects = 0;   ///< sessions re-established after a drop
  std::size_t redelivered = 0;  ///< buffered rows re-sent on reconnect
};

/// Runs the worker loop until the daemon says goodbye, the work runs dry
/// (with `once`), or the connection drops `max_reconnects + 1` times.
/// Throws net::SocketError when the *initial* connection cannot be
/// established and ProtocolError when the daemon speaks an unexpected
/// dialect or the reconnect budget is exhausted.
WorkerReport run_worker(const WorkerOptions& options);

}  // namespace pns::sweepd
