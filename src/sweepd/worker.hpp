// Pull-worker for the sweep daemon (`pns_sweep worker --connect ...`).
//
// A worker is stateless: it connects, announces itself, and then pulls
// leases until told there is nothing left. Each lease carries the job's
// full JobSpec plus the global row indices to execute, so the worker
// expands the very same scenario list the daemon holds (shared preset +
// registry code, pinned by the sweep identity) and runs the leased subset
// on a local SweepRunner -- streaming every row back the moment it
// completes, in completion order. The daemon re-orders by global index,
// so worker count, speed and interleaving never show in the output.
//
// Crash model: a worker that dies mid-lease simply stops sending rows;
// the daemon re-leases the remainder after the lease timeout. Rows it
// did deliver were journalled on arrival and are kept -- duplicates from
// the re-lease are dropped idempotently.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "util/socket.hpp"

namespace pns::sweepd {

struct WorkerOptions {
  net::Endpoint endpoint;  ///< daemon address to connect to
  /// SweepRunner threads per lease; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Exit once the daemon has no unfinished jobs, instead of polling
  /// for future submissions. Rows leased to *other* workers keep a
  /// `once` worker polling -- they may come back for re-leasing.
  bool once = false;
  /// Diagnostic sink (one line per event); null = silent.
  std::function<void(const std::string&)> log;
};

/// What one worker session accomplished.
struct WorkerReport {
  std::size_t leases = 0;  ///< leases executed to completion
  std::size_t rows = 0;    ///< rows computed and sent
  std::size_t failed = 0;  ///< rows whose scenario failed (ok == false)
};

/// Runs the worker loop until the daemon says goodbye, the connection
/// drops, or (with `once`) the work runs dry. Throws net::SocketError
/// when the initial connection cannot be established and ProtocolError
/// when the daemon speaks an unexpected dialect.
WorkerReport run_worker(const WorkerOptions& options);

}  // namespace pns::sweepd
