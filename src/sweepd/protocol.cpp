#include "sweepd/protocol.hpp"

#include <sstream>

namespace pns::sweepd {

namespace {

/// Starts a compact one-line message document of the given type.
class MessageWriter {
 public:
  explicit MessageWriter(const char* type)
      : writer_(stream_, JsonStyle::kCompact) {
    writer_.begin_object();
    writer_.kv("type", type);
  }

  JsonWriter& w() { return writer_; }

  std::string finish() {
    writer_.end_object();
    return stream_.str();
  }

 private:
  std::ostringstream stream_;
  JsonWriter writer_;
};

}  // namespace

JsonValue parse_message(const std::string& line) {
  JsonValue msg;
  try {
    msg = parse_json(line);
  } catch (const JsonError& e) {
    throw ProtocolError(std::string("malformed message: ") + e.what());
  }
  if (msg.type() != JsonValue::Type::kObject)
    throw ProtocolError("malformed message: not a JSON object");
  const JsonValue* type = msg.find("type");
  if (!type || type->type() != JsonValue::Type::kString)
    throw ProtocolError("malformed message: missing \"type\"");
  return msg;
}

const std::string& message_type(const JsonValue& msg) {
  return msg.at("type").as_string();
}

std::string make_hello(const std::string& role, unsigned threads,
                       std::size_t reconnects) {
  MessageWriter m("hello");
  m.w().kv("role", role);
  m.w().kv("proto", kProtocolVersion);
  m.w().kv("threads", static_cast<std::uint64_t>(threads));
  if (reconnects != 0)
    m.w().kv("reconnects", static_cast<std::uint64_t>(reconnects));
  return m.finish();
}

std::string make_hello_ok() {
  MessageWriter m("hello_ok");
  m.w().kv("proto", kProtocolVersion);
  return m.finish();
}

std::string make_submit(const JobSpec& spec) {
  MessageWriter m("submit");
  m.w().key("spec");
  spec.write_json(m.w());
  return m.finish();
}

std::string make_submitted(const std::string& job,
                           const std::string& identity,
                           std::size_t total) {
  MessageWriter m("submitted");
  m.w().kv("job", job);
  m.w().kv("identity", identity);
  m.w().kv("total", static_cast<std::uint64_t>(total));
  return m.finish();
}

std::string make_lease_request() {
  return MessageWriter("lease_request").finish();
}

std::string make_lease(const std::string& job, std::uint64_t lease,
                       double timeout_s, const JobSpec& spec,
                       const std::vector<std::size_t>& indices) {
  MessageWriter m("lease");
  m.w().kv("job", job);
  m.w().kv("lease", lease);
  m.w().kv("timeout_s", timeout_s);
  m.w().key("spec");
  spec.write_json(m.w());
  m.w().key("indices");
  m.w().begin_array();
  for (const std::size_t i : indices)
    m.w().value(static_cast<std::uint64_t>(i));
  m.w().end_array();
  return m.finish();
}

std::string make_idle(std::size_t active_jobs, double poll_s) {
  MessageWriter m("idle");
  m.w().kv("active_jobs", static_cast<std::uint64_t>(active_jobs));
  m.w().kv("poll_s", poll_s);
  return m.finish();
}

std::string make_row(const std::string& job, std::uint64_t lease,
                     std::size_t index, double wall_s,
                     const sweep::SummaryRow& row) {
  MessageWriter m("row");
  m.w().kv("job", job);
  if (lease != 0) m.w().kv("lease", lease);
  m.w().kv("i", static_cast<std::uint64_t>(index));
  if (wall_s >= 0.0) m.w().kv("wall_s", wall_s);
  m.w().key("row");
  sweep::write_summary_row_json(m.w(), row);
  return m.finish();
}

std::string make_lease_done(const std::string& job, std::uint64_t lease) {
  MessageWriter m("lease_done");
  m.w().kv("job", job);
  m.w().kv("lease", lease);
  return m.finish();
}

std::string make_heartbeat(const std::string& job, std::uint64_t lease) {
  MessageWriter m("heartbeat");
  m.w().kv("job", job);
  m.w().kv("lease", lease);
  return m.finish();
}

std::string make_status(const std::string& job) {
  MessageWriter m("status");
  if (!job.empty()) m.w().kv("job", job);
  return m.finish();
}

std::string make_results(const std::string& job) {
  MessageWriter m("results");
  m.w().kv("job", job);
  return m.finish();
}

std::string make_results_begin(const std::string& job,
                               const std::string& identity,
                               std::size_t total, std::size_t done,
                               bool complete) {
  MessageWriter m("results_begin");
  m.w().kv("job", job);
  m.w().kv("identity", identity);
  m.w().kv("total", static_cast<std::uint64_t>(total));
  m.w().kv("done", static_cast<std::uint64_t>(done));
  m.w().kv("complete", complete);
  return m.finish();
}

std::string make_results_end(const std::string& job, std::size_t failed) {
  MessageWriter m("results_end");
  m.w().kv("job", job);
  m.w().kv("failed", static_cast<std::uint64_t>(failed));
  return m.finish();
}

std::string make_watch(const std::string& job) {
  MessageWriter m("watch");
  m.w().kv("job", job);
  return m.finish();
}

std::string make_watch_ok(const std::string& job, std::size_t total,
                          std::size_t done) {
  MessageWriter m("watch_ok");
  m.w().kv("job", job);
  m.w().kv("total", static_cast<std::uint64_t>(total));
  m.w().kv("done", static_cast<std::uint64_t>(done));
  return m.finish();
}

std::string make_job_done(const std::string& job, std::size_t failed) {
  MessageWriter m("job_done");
  m.w().kv("job", job);
  m.w().kv("failed", static_cast<std::uint64_t>(failed));
  return m.finish();
}

std::string make_shutdown() { return MessageWriter("shutdown").finish(); }

std::string make_bye() { return MessageWriter("bye").finish(); }

std::string make_error(const std::string& text) {
  MessageWriter m("error");
  m.w().kv("error", text);
  return m.finish();
}

}  // namespace pns::sweepd
