#include "core/controller.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace pns::ctl {

std::vector<pns::ParamInfo> controller_params() {
  return {
      {"v_width", "double", "0.144", "tracking window width Vwidth (V)"},
      {"v_q", "double", "0.0479", "threshold shift per crossing Vq (V)"},
      {"alpha", "double", "0.12", "hot-plug discharge-rate gain (V/s)"},
      {"beta", "double", "0.479", "hot-plug charge-rate gain (V/s)"},
      {"v_ceiling", "double", "0",
       "window-top anchor (V); 0 defers to platform/monitor limits"},
      {"ordering", "string", "core-first",
       "transition ordering: core-first or freq-first"},
      {"isr_cpu_time", "double", "0.00015",
       "CPU time per ISR execution (s, Fig. 15 overhead)"},
  };
}

namespace {

soc::OrderingPolicy ordering_from_string(const std::string& text) {
  if (text == "core-first" || text == "core_first")
    return soc::OrderingPolicy::kCoreFirst;
  if (text == "freq-first" || text == "freq_first" || text == "dvfs-first" ||
      text == "dvfs_first")
    return soc::OrderingPolicy::kFreqFirst;
  throw ParamError("param 'ordering': expected core-first or freq-first, "
                   "got '" + text + "'");
}

}  // namespace

ControllerConfig controller_config_from_params(const pns::ParamMap& params,
                                               ControllerConfig base) {
  ControllerConfig cfg = base;
  cfg.v_width = params.get_double("v_width", cfg.v_width);
  cfg.v_q = params.get_double("v_q", cfg.v_q);
  cfg.alpha = params.get_double("alpha", cfg.alpha);
  cfg.beta = params.get_double("beta", cfg.beta);
  cfg.v_ceiling = params.get_double("v_ceiling", cfg.v_ceiling);
  if (const std::string* o = params.find("ordering"))
    cfg.ordering = ordering_from_string(*o);
  cfg.isr_cpu_time_s = params.get_double("isr_cpu_time", cfg.isr_cpu_time_s);
  return cfg;
}

pns::ParamMap controller_config_to_params(const ControllerConfig& cfg,
                                          const ControllerConfig& reference) {
  pns::ParamMap params;
  if (cfg.v_width != reference.v_width)
    params.set_double("v_width", cfg.v_width);
  if (cfg.v_q != reference.v_q) params.set_double("v_q", cfg.v_q);
  if (cfg.alpha != reference.alpha) params.set_double("alpha", cfg.alpha);
  if (cfg.beta != reference.beta) params.set_double("beta", cfg.beta);
  if (cfg.v_ceiling != reference.v_ceiling)
    params.set_double("v_ceiling", cfg.v_ceiling);
  if (cfg.ordering != reference.ordering)
    params.set("ordering", soc::to_string(cfg.ordering));
  if (cfg.isr_cpu_time_s != reference.isr_cpu_time_s)
    params.set_double("isr_cpu_time", cfg.isr_cpu_time_s);
  return params;
}

PowerNeutralController::PowerNeutralController(const soc::Platform& platform,
                                               hw::VoltageMonitor& monitor,
                                               ControllerConfig config)
    : platform_(&platform),
      monitor_(&monitor),
      config_(config),
      tracker_(ThresholdConfig{
          .v_width = config.v_width,
          .v_q = config.v_q,
          // Track only within the board's safe window, and never ask the
          // monitor for a threshold it cannot express.
          .v_floor = std::max(platform.v_min,
                              monitor.low_channel().min_threshold()),
          .v_ceil = std::min({platform.v_max,
                              monitor.high_channel().max_threshold(),
                              config.v_ceiling > 0.0
                                  ? config.v_ceiling
                                  : platform.v_max}),
      }),
      dvfs_(1),
      hotplug_(HotplugParams{config.alpha, config.beta}),
      planner_(platform) {}

void PowerNeutralController::calibrate(double vc, double t) {
  tracker_.calibrate(vc);
  program_monitor(vc);
  last_crossing_t_ = t;
  last_direction_ = -1;
}

void PowerNeutralController::program_monitor(double vc_now) {
  monitor_->set_thresholds(tracker_.v_low(), tracker_.v_high(), vc_now);
  ++stats_.threshold_moves;
  // Two digipot SPI writes per move.
  stats_.isr_busy_s += monitor_->low_channel().program_time() +
                       monitor_->high_channel().program_time();
}

std::vector<soc::TransitionStep> PowerNeutralController::on_interrupt(
    hw::MonitorEdge edge, double t, const soc::OperatingPoint& current) {
  // Only genuine excursions outside the window trigger a response; the
  // re-entry edges that follow a threshold shift are ignored.
  if (edge != hw::MonitorEdge::kLowFalling &&
      edge != hw::MonitorEdge::kHighRising)
    return {};

  ++stats_.interrupts;
  stats_.isr_busy_s += config_.isr_cpu_time_s;

  const ScaleDirection direction = edge == hw::MonitorEdge::kLowFalling
                                       ? ScaleDirection::kDown
                                       : ScaleDirection::kUp;

  // --- eq. 3: slope estimate from the crossing interval -----------------
  // The estimate dVC/dt ~ Vq/tau is only meaningful when the voltage
  // actually travelled Vq in one direction since the last crossing, i.e.
  // for *consecutive same-direction* crossings (the window tracking a
  // sustained 'macro' trend). A crossing that alternates direction is the
  // stationary limit cycle of quantised power levels -- 'micro' ripple by
  // construction -- and is handled by DVFS alone.
  const double tau_s = t - last_crossing_t_;
  const bool same_direction =
      last_direction_ == static_cast<int>(direction);
  last_crossing_t_ = t;
  last_direction_ = static_cast<int>(direction);

  // When the window is pinned at its clamp even that premise fails: the
  // thresholds did not move Vq between events (e.g. VC idles beyond the
  // window right after a reboot charged the node towards Voc). Degrade to
  // pure linear control there: DVFS first, one LITTLE core per event only
  // once the ladder is exhausted.
  const bool pinned = direction == ScaleDirection::kUp
                          ? tracker_.at_ceiling()
                          : tracker_.at_floor();

  // --- DVFS response (linear control) ------------------------------------
  soc::OperatingPoint target = current;
  target.freq_index =
      dvfs_.next_index(platform_->opps, current.freq_index, direction);

  // --- core hot-plug response (derivative control, eq. 2) ----------------
  if (!pinned && same_direction) {
    const CoreScale scale = hotplug_.decide(tau_s, config_.v_q, direction);
    target.cores = hotplug_.apply(*platform_, current.cores, scale);
  } else if (pinned && target.freq_index == current.freq_index) {
    CoreScale linear;
    linear.s_little = direction == ScaleDirection::kUp ? 1 : -1;
    target.cores = hotplug_.apply(*platform_, current.cores, linear);
  }

  // --- threshold update + digipot reprogramming --------------------------
  // At the crossing instant VC equals the threshold that fired; use it to
  // seed the comparators after reprogramming.
  const double vc_at_crossing = direction == ScaleDirection::kDown
                                    ? tracker_.v_low()
                                    : tracker_.v_high();
  if (direction == ScaleDirection::kDown) {
    tracker_.shift_down();
  } else {
    tracker_.shift_up();
  }
  program_monitor(vc_at_crossing);

  if (target == current) return {};

  auto plan = planner_.plan(current, target, config_.ordering);
  for (const auto& step : plan) {
    if (step.kind == soc::TransitionKind::kDvfs) {
      ++stats_.dvfs_steps;
    } else {
      ++stats_.hotplug_steps;
      const bool is_big = step.from.cores.n_big != step.to.cores.n_big;
      (is_big ? stats_.big_ops : stats_.little_ops) += 1;
    }
  }
  return plan;
}

}  // namespace pns::ctl
