// Derivative core hot-plug response (paper Section II.B, eqs. 2-3).
//
// The slope of the storage-node voltage is approximated at each crossing
// as dVC/dt ~ Vq / tau, where tau is the time since the previous crossing
// (eq. 3). Two gradient thresholds classify the slope:
//
//   |dVC/dt| > beta   -> scale a 'big' core   (S_b = +/-1)
//   |dVC/dt| > alpha  -> scale a 'LITTLE' core (S_L = +/-1)
//
// with beta > alpha: a violent swing justifies moving a whole A15's worth
// of power; a moderate one an A7's. Per the Fig. 5 flowchart the two
// responses are evaluated big-first and at most one core changes per
// crossing. Equivalently in tau-space (eq. 3 substituted into eq. 2):
// tau < Vq/beta -> big, else tau < Vq/alpha -> LITTLE.
#pragma once

#include "soc/core_types.hpp"
#include "soc/platform.hpp"

#include "core/dvfs_policy.hpp"

namespace pns::ctl {

/// Gradient thresholds (V/s).
struct HotplugParams {
  double alpha;  ///< LITTLE-core gradient threshold
  double beta;   ///< big-core gradient threshold (beta > alpha)
};

/// Ternary core-scaling factors of eq. 2. +1 add, -1 remove, 0 hold.
struct CoreScale {
  int s_big = 0;
  int s_little = 0;
};

/// Derivative hot-plug policy.
class DerivativeHotplugPolicy {
 public:
  explicit DerivativeHotplugPolicy(HotplugParams params);

  const HotplugParams& params() const { return params_; }

  /// Raw eq. 2: both factors from a signed slope (V/s). Both may be
  /// non-zero (|slope| > beta implies |slope| > alpha).
  CoreScale factors(double dv_dt) const;

  /// Fig. 5 flowchart semantics: slope magnitude from tau (eq. 3), big
  /// checked first, at most one factor set.
  CoreScale decide(double tau_s, double v_q, ScaleDirection direction) const;

  /// Applies a CoreScale to a configuration under the platform's hot-plug
  /// limits, escalating when the preferred cluster is exhausted: a big
  /// request with no big headroom falls back to a LITTLE change and vice
  /// versa (keeps the response monotone instead of silently dropping it).
  soc::CoreConfig apply(const soc::Platform& platform,
                        const soc::CoreConfig& current,
                        const CoreScale& scale) const;

 private:
  HotplugParams params_;
};

}  // namespace pns::ctl
