// Linear DVFS response (paper Section II.B, first stage of Fig. 5).
//
// On every threshold crossing the operating frequency moves exactly one
// level along the predefined ladder: down on a LOW crossing, up on a HIGH
// crossing. This first-order ("linear control") response absorbs the
// 'micro' variability of the harvest; the derivative hot-plug policy
// handles the 'macro' component.
#pragma once

#include <cstddef>

#include "soc/opp.hpp"

namespace pns::ctl {

/// Direction of a control response.
enum class ScaleDirection {
  kDown,  ///< LOW threshold crossed: shed power
  kUp,    ///< HIGH threshold crossed: absorb surplus
};

const char* to_string(ScaleDirection d);

/// One-ladder-step frequency policy.
class LinearDvfsPolicy {
 public:
  explicit LinearDvfsPolicy(int steps_per_crossing = 1);

  /// Next frequency index after a crossing (saturates at ladder ends).
  std::size_t next_index(const soc::OppTable& table, std::size_t current,
                         ScaleDirection direction) const;

  int steps_per_crossing() const { return steps_; }

 private:
  int steps_;
};

}  // namespace pns::ctl
