#include "core/hotplug_policy.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace pns::ctl {

DerivativeHotplugPolicy::DerivativeHotplugPolicy(HotplugParams params)
    : params_(params) {
  PNS_EXPECTS(params_.alpha > 0.0);
  PNS_EXPECTS(params_.beta > params_.alpha);
}

CoreScale DerivativeHotplugPolicy::factors(double dv_dt) const {
  CoreScale s;
  if (dv_dt > params_.beta) s.s_big = 1;
  if (dv_dt < -params_.beta) s.s_big = -1;
  if (dv_dt > params_.alpha) s.s_little = 1;
  if (dv_dt < -params_.alpha) s.s_little = -1;
  return s;
}

CoreScale DerivativeHotplugPolicy::decide(double tau_s, double v_q,
                                          ScaleDirection direction) const {
  PNS_EXPECTS(v_q > 0.0);
  CoreScale s;
  if (tau_s <= 0.0) {
    // Degenerate: crossings coincide; treat as the steepest possible slope.
    s.s_big = direction == ScaleDirection::kUp ? 1 : -1;
    return s;
  }
  const double slope = v_q / tau_s;  // eq. 3 magnitude
  const int sign = direction == ScaleDirection::kUp ? 1 : -1;
  if (slope > params_.beta) {
    s.s_big = sign;  // big checked first per Fig. 5
  } else if (slope > params_.alpha) {
    s.s_little = sign;
  }
  return s;
}

soc::CoreConfig DerivativeHotplugPolicy::apply(
    const soc::Platform& platform, const soc::CoreConfig& current,
    const CoreScale& scale) const {
  soc::CoreConfig next = current;

  auto try_delta = [&](soc::CoreType type, int delta) {
    const soc::CoreConfig cand = next.with_delta(type, delta);
    if (platform.valid_cores(cand)) {
      next = cand;
      return true;
    }
    return false;
  };

  if (scale.s_big != 0) {
    if (!try_delta(soc::CoreType::kBig, scale.s_big)) {
      // Escalate: no big headroom -> move a LITTLE core the same way.
      try_delta(soc::CoreType::kLittle, scale.s_big);
    }
  }
  if (scale.s_little != 0) {
    if (!try_delta(soc::CoreType::kLittle, scale.s_little)) {
      // Escalate: LITTLE cluster exhausted -> move a big core.
      try_delta(soc::CoreType::kBig, scale.s_little);
    }
  }
  PNS_ENSURES(platform.valid_cores(next));
  return next;
}

}  // namespace pns::ctl
