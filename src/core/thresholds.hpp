// Dynamic voltage-threshold tracker (paper Section II.A, eq. 1).
//
// Two thresholds bracket the storage-node voltage with spacing Vwidth:
//
//   Vhigh(0) = VC + Vwidth/2,  Vlow(0) = VC - Vwidth/2          (eq. 1)
//
// Each LOW crossing shifts both thresholds *down* by Vq, each HIGH
// crossing shifts them *up* by Vq, so the window follows VC and thereby
// "tracks" the harvested power level without ever predicting it. The
// tracker also clamps the window into the range the monitor hardware (or
// the platform's safe operating area) can express.
#pragma once

namespace pns::ctl {

/// Tracker configuration.
struct ThresholdConfig {
  double v_width;  ///< spacing between the two thresholds (V)
  double v_q;      ///< per-crossing shift (V)
  double v_floor;  ///< lowest allowed Vlow (V)
  double v_ceil;   ///< highest allowed Vhigh (V)
};

/// Pure threshold arithmetic; the controller owns one of these and mirrors
/// its values into the monitor hardware after every change.
class ThresholdTracker {
 public:
  explicit ThresholdTracker(ThresholdConfig config);

  const ThresholdConfig& config() const { return config_; }

  /// Centres the window on `vc` per eq. 1 (then clamps).
  void calibrate(double vc);

  /// Shifts the window down by Vq (LOW crossing response).
  void shift_down();

  /// Shifts the window up by Vq (HIGH crossing response).
  void shift_up();

  double v_low() const { return v_low_; }
  double v_high() const { return v_high_; }

  /// True when the last shift was truncated by the floor/ceiling clamp.
  bool saturated() const { return saturated_; }

  /// True when the window is pinned at its ceiling / floor.
  bool at_ceiling() const { return v_high_ >= config_.v_ceil - 1e-12; }
  bool at_floor() const { return v_low_ <= config_.v_floor + 1e-12; }

 private:
  void clamp();

  ThresholdConfig config_;
  double v_low_ = 0.0;
  double v_high_ = 0.0;
  bool saturated_ = false;
};

}  // namespace pns::ctl
