#include "core/thresholds.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace pns::ctl {

ThresholdTracker::ThresholdTracker(ThresholdConfig config)
    : config_(config) {
  PNS_EXPECTS(config_.v_width > 0.0);
  PNS_EXPECTS(config_.v_q > 0.0);
  PNS_EXPECTS(config_.v_floor < config_.v_ceil);
  PNS_EXPECTS(config_.v_ceil - config_.v_floor >= config_.v_width);
  calibrate(0.5 * (config_.v_floor + config_.v_ceil));
}

void ThresholdTracker::calibrate(double vc) {
  v_low_ = vc - 0.5 * config_.v_width;
  v_high_ = vc + 0.5 * config_.v_width;
  saturated_ = false;
  clamp();
}

void ThresholdTracker::shift_down() {
  v_low_ -= config_.v_q;
  v_high_ -= config_.v_q;
  clamp();
}

void ThresholdTracker::shift_up() {
  v_low_ += config_.v_q;
  v_high_ += config_.v_q;
  clamp();
}

void ThresholdTracker::clamp() {
  saturated_ = false;
  if (v_low_ < config_.v_floor) {
    v_low_ = config_.v_floor;
    v_high_ = v_low_ + config_.v_width;
    saturated_ = true;
  }
  if (v_high_ > config_.v_ceil) {
    v_high_ = config_.v_ceil;
    v_low_ = v_high_ - config_.v_width;
    saturated_ = true;
  }
  PNS_ENSURES(v_low_ < v_high_);
}

}  // namespace pns::ctl
