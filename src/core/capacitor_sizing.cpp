#include "core/capacitor_sizing.hpp"

#include "ehsim/capacitor.hpp"
#include "util/contracts.hpp"

namespace pns::ctl {

SizingResult analyze_worst_case_transition(const soc::Platform& platform,
                                           soc::OrderingPolicy policy,
                                           double v_node,
                                           double dv_allowed) {
  PNS_EXPECTS(v_node > 0.0);
  PNS_EXPECTS(dv_allowed > 0.0);
  const soc::TransitionPlanner planner(platform.opps, platform.power,
                                       platform.latency);
  auto steps =
      planner.plan(platform.highest_opp(), platform.lowest_opp(), policy);
  SizingResult r{
      .policy = policy,
      .transition_time_s = soc::TransitionPlanner::total_duration(steps),
      .charge_c = soc::TransitionPlanner::total_charge(steps, v_node),
      .required_capacitance_f = 0.0,
      .steps = std::move(steps),
  };
  r.required_capacitance_f =
      ehsim::required_capacitance(r.charge_c, dv_allowed);
  return r;
}

std::vector<SizingResult> compare_orderings(const soc::Platform& platform) {
  // The droop starts near the regulation point and must not pass v_min, so
  // the node sits around the middle of the operating window while the
  // transition executes, and the full window width is the droop budget.
  const double dv = platform.v_max - platform.v_min;
  const double v_node = 0.5 * (platform.v_min + platform.v_max);
  return {
      analyze_worst_case_transition(platform,
                                    soc::OrderingPolicy::kFreqFirst, v_node,
                                    dv),
      analyze_worst_case_transition(platform,
                                    soc::OrderingPolicy::kCoreFirst, v_node,
                                    dv),
  };
}

}  // namespace pns::ctl
