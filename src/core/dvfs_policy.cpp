#include "core/dvfs_policy.hpp"

#include "util/contracts.hpp"

namespace pns::ctl {

const char* to_string(ScaleDirection d) {
  return d == ScaleDirection::kDown ? "down" : "up";
}

LinearDvfsPolicy::LinearDvfsPolicy(int steps_per_crossing)
    : steps_(steps_per_crossing) {
  PNS_EXPECTS(steps_per_crossing >= 1);
}

std::size_t LinearDvfsPolicy::next_index(const soc::OppTable& table,
                                         std::size_t current,
                                         ScaleDirection direction) const {
  PNS_EXPECTS(current < table.size());
  std::size_t idx = current;
  for (int s = 0; s < steps_; ++s)
    idx = direction == ScaleDirection::kDown ? table.step_down(idx)
                                             : table.step_up(idx);
  return idx;
}

}  // namespace pns::ctl
