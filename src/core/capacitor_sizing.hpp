// Worst-case buffer-capacitance analysis (paper Section IV.A, Table I).
//
// The buffer capacitor only has to carry the board through the *latency*
// of the worst-case performance transition: highest OPP (max power) down
// to lowest OPP (min power) after a sudden collapse of harvested power.
// The charge drawn during that transition depends strongly on step
// ordering -- hot-plugging at a high clock is fast, so core-first (the
// paper's scenario (b)) spends ~5x less charge than DVFS-first
// (scenario (a)) -- and the required capacitance is C = Q / dV_allowed.
#pragma once

#include <vector>

#include "soc/platform.hpp"
#include "soc/transition.hpp"

namespace pns::ctl {

/// Result of one worst-case sizing analysis.
struct SizingResult {
  soc::OrderingPolicy policy;
  double transition_time_s;  ///< total latency of the plan (Table I col 2)
  double charge_c;           ///< integral of I dt over the plan (col 3)
  double required_capacitance_f;  ///< C = Q / dV (col 4)
  std::vector<soc::TransitionStep> steps;
};

/// Analyses the highest->lowest OPP transition under `policy`, with the
/// node held at `v_node` (worst case: the minimum operating voltage, where
/// a given power costs the most current) and `dv_allowed` volts of
/// permissible droop.
SizingResult analyze_worst_case_transition(const soc::Platform& platform,
                                           soc::OrderingPolicy policy,
                                           double v_node,
                                           double dv_allowed);

/// Convenience: both orderings at the platform's minimum voltage with the
/// full (v_max - v_min) droop budget.
std::vector<SizingResult> compare_orderings(const soc::Platform& platform);

}  // namespace pns::ctl
