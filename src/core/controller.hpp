// The power-neutral performance-scaling controller (the paper's primary
// contribution; Fig. 5 flowchart).
//
// Event-driven: the external monitor hardware raises an interrupt when VC
// crosses Vlow or Vhigh. The ISR then
//   1. applies the linear DVFS response (one ladder step),
//   2. applies the derivative hot-plug response (eqs. 2-3, from the time
//      tau since the previous crossing),
//   3. shifts both thresholds by Vq in the crossing direction and
//      reprograms the monitor's digipots,
//   4. restarts the tau timer.
// The resulting OPP change is expanded into a timed transition plan
// (core-first by default, per Table I) that the co-simulation executes.
//
// The controller never observes the harvester directly -- only the
// interrupts -- which is what makes the scheme prediction-free and robust
// to 'micro' variability.
#pragma once

#include <cstddef>
#include <vector>

#include "core/dvfs_policy.hpp"
#include "core/hotplug_policy.hpp"
#include "core/thresholds.hpp"
#include "hw/monitor.hpp"
#include "soc/platform.hpp"
#include "soc/transition.hpp"
#include "util/params.hpp"

namespace pns::ctl {

/// Complete tuning of the controller. Defaults are the simulation-derived
/// optima of Section III: Vwidth = 144 mV, Vq = 47.9 mV,
/// alpha = 0.120 V/s, beta = 0.479 V/s.
struct ControllerConfig {
  double v_width = 0.144;
  double v_q = 0.0479;
  double alpha = 0.120;
  double beta = 0.479;
  /// Optional anchor for the top of the tracking window (V); 0 defers to
  /// the platform/monitor limits. The paper sets the target voltage at
  /// the array's calibrated MPP -- capping the window just above that
  /// target pins regulation to the MPP instead of letting the window
  /// wander towards the board's absolute maximum. There is no reason to
  /// regulate above the MPP: the array delivers less power there.
  double v_ceiling = 0.0;
  soc::OrderingPolicy ordering = soc::OrderingPolicy::kCoreFirst;
  /// CPU time consumed by one ISR execution (sysfs writes + bookkeeping);
  /// drives the Fig. 15 overhead accounting.
  double isr_cpu_time_s = 150e-6;
};

/// Parameters accepted by controller_config_from_params: the tunables of
/// ControllerConfig under their spec-string keys (v_width, v_q, alpha,
/// beta, v_ceiling, ordering, isr_cpu_time). Feeds the sweep registry's
/// "pns" control entry and `pns_sweep list`.
std::vector<pns::ParamInfo> controller_params();

/// Applies spec-string params over `base` ("pns:v_q=0.04,..."). Unknown
/// keys are the caller's job (ParamMap::validate_keys against
/// controller_params()); bad values throw ParamError. `ordering` accepts
/// the soc::to_string names ("core-first"/"freq-first") plus the
/// underscore and "dvfs_first" spellings.
ControllerConfig controller_config_from_params(const pns::ParamMap& params,
                                               ControllerConfig base = {});

/// Lossless inverse: encodes every field of `cfg` that differs from
/// `reference` (doubles via shortest_double, so a config survives the
/// string round trip bit-for-bit).
pns::ParamMap controller_config_to_params(const ControllerConfig& cfg,
                                          const ControllerConfig& reference = {});

/// Cumulative controller statistics (Fig. 15 overhead analysis).
struct ControllerStats {
  std::size_t interrupts = 0;
  std::size_t dvfs_steps = 0;
  std::size_t hotplug_steps = 0;
  std::size_t big_ops = 0;
  std::size_t little_ops = 0;
  std::size_t threshold_moves = 0;
  double isr_busy_s = 0.0;  ///< total CPU time spent in the ISR

  /// Mean CPU overhead over `elapsed_s` of wall time (fraction).
  double cpu_overhead(double elapsed_s) const {
    return elapsed_s > 0.0 ? isr_busy_s / elapsed_s : 0.0;
  }
};

/// Interrupt-driven power-neutral controller.
class PowerNeutralController {
 public:
  /// Borrows platform and monitor; both must outlive the controller.
  PowerNeutralController(const soc::Platform& platform,
                         hw::VoltageMonitor& monitor,
                         ControllerConfig config = {});

  const ControllerConfig& config() const { return config_; }
  const ControllerStats& stats() const { return stats_; }
  const ThresholdTracker& thresholds() const { return tracker_; }

  /// Initial calibration at time `t`: centres the thresholds on `vc`
  /// (eq. 1) and programs the monitor.
  void calibrate(double vc, double t);

  /// ISR body. `edge` is what the monitor reported; `current` is the OPP
  /// the transition queue will have reached when this response starts
  /// (SocRuntime::final_target()). Returns the transition plan to enqueue
  /// (possibly empty when already saturated at a ladder end).
  std::vector<soc::TransitionStep> on_interrupt(
      hw::MonitorEdge edge, double t, const soc::OperatingPoint& current);

  /// Time since the previous handled crossing, as of time `t`.
  double tau(double t) const { return t - last_crossing_t_; }

 private:
  void program_monitor(double vc_now);

  const soc::Platform* platform_;
  hw::VoltageMonitor* monitor_;
  ControllerConfig config_;
  ThresholdTracker tracker_;
  LinearDvfsPolicy dvfs_;
  DerivativeHotplugPolicy hotplug_;
  soc::TransitionPlanner planner_;
  double last_crossing_t_ = 0.0;
  /// Direction of the previous handled crossing; -1 none since calibrate.
  int last_direction_ = -1;
  ControllerStats stats_;
};

}  // namespace pns::ctl
