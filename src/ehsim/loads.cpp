#include "ehsim/loads.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace pns::ehsim {

namespace {
// Below this node voltage the constant-power division is floored to avoid
// the 1/v singularity; physically the regulators have long since dropped
// out at such voltages.
constexpr double kMinDivisorVolts = 0.05;
}  // namespace

ConstantPowerLoad::ConstantPowerLoad(double watts, double v_cutoff,
                                     double residual_watts)
    : watts_(watts), v_cutoff_(v_cutoff), residual_watts_(residual_watts) {
  PNS_EXPECTS(watts >= 0.0);
  PNS_EXPECTS(v_cutoff >= 0.0);
  PNS_EXPECTS(residual_watts >= 0.0);
}

double ConstantPowerLoad::current(double v, double /*t*/) const {
  const double divisor = std::max(v, kMinDivisorVolts);
  if (v < v_cutoff_) return residual_watts_ / divisor;
  return watts_ / divisor;
}

void ConstantPowerLoad::set_watts(double watts) {
  PNS_EXPECTS(watts >= 0.0);
  watts_ = watts;
}

ResistiveLoad::ResistiveLoad(double ohms) : ohms_(ohms) {
  PNS_EXPECTS(ohms > 0.0);
}

double ResistiveLoad::current(double v, double /*t*/) const {
  return v / ohms_;
}

CallbackLoad::CallbackLoad(std::function<double(double, double)> fn)
    : fn_(std::move(fn)) {
  PNS_EXPECTS(static_cast<bool>(fn_));
}

double CallbackLoad::current(double v, double t) const { return fn_(v, t); }

}  // namespace pns::ehsim
