#include "ehsim/solar_cell.hpp"

#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"

namespace pns::ehsim {
namespace {

// Residual of eq. 4 in the paper, F(I) = 0 at the operating point:
//   F(I) = Il - I0*(exp((V+Rs*I)/vt) - 1) - (V+Rs*I)/Rp - I
// dF/dI = -I0*Rs/vt * exp((V+Rs*I)/vt) - Rs/Rp - 1   (always < -1)
struct Residual {
  const SolarCellParams& p;
  double v;
  double il;

  // F and dF/dI share the same exp(vd/vt); evaluating it once halves the
  // dominant cost of every Newton iteration without changing a bit of the
  // result (identical vd, identical exp, same arithmetic as before).
  void eval(double i, double& f, double& df) const {
    const double vd = v + p.rs * i;
    const double e = std::exp(vd / p.vt_eff);
    f = il - p.i0 * (e - 1.0) - vd / p.rp - i;
    df = -p.i0 * p.rs / p.vt_eff * e - p.rs / p.rp - 1.0;
  }
};

}  // namespace

SolarCell::SolarCell(SolarCellParams params) : params_(params) {
  PNS_EXPECTS(params_.i0 > 0.0);
  PNS_EXPECTS(params_.vt_eff > 0.0);
  PNS_EXPECTS(params_.rs >= 0.0);
  PNS_EXPECTS(params_.rp > 0.0);
  PNS_EXPECTS(params_.il_ref >= 0.0);
  PNS_EXPECTS(params_.g_ref > 0.0);
}

double SolarCell::photo_current(double irradiance) const {
  if (irradiance <= 0.0) return 0.0;
  return params_.il_ref * irradiance / params_.g_ref;
}

double SolarCell::current_from_photo(double v, double il) const {
  // The residual is strictly decreasing, so Newton from any point converges
  // monotonically after at most one overshoot; start at the photo-current.
  return newton_current(v, il, il);
}

double SolarCell::current_from_photo_seeded(double v, double il,
                                            double i_seed) const {
  return newton_current(v, il, i_seed);
}

double SolarCell::current_from_photo_counted(double v, double il,
                                             double i_seed,
                                             std::uint32_t* iters) const {
  return newton_current(v, il, i_seed, iters);
}

double SolarCell::newton_current(double v, double il, double i_start,
                                 std::uint32_t* iters) const {
  const Residual res{params_, v, il};
  double i = i_start;
  for (int iter = 0; iter < 100; ++iter) {
    double f, df;
    res.eval(i, f, df);
    double step = f / df;
    // Damp enormous steps caused by the exponential blowing up.
    const double limit = std::max(1.0, std::abs(i)) * 10.0 + 1.0;
    if (std::abs(step) > limit) step = step > 0.0 ? limit : -limit;
    const double next = i - step;
    if (std::abs(next - i) < 1e-12 * (1.0 + std::abs(next))) {
      if (iters != nullptr) *iters = static_cast<std::uint32_t>(iter + 1);
      return next;
    }
    i = next;
  }
  if (iters != nullptr) *iters = 100;
  return i;  // best effort; residual tests bound the error
}

double SolarCell::current(double v, double irradiance) const {
  return current_from_photo(v, photo_current(irradiance));
}

double SolarCell::power(double v, double irradiance) const {
  return v * current(v, irradiance);
}

double SolarCell::short_circuit_current(double irradiance) const {
  return current(0.0, irradiance);
}

double SolarCell::open_circuit_voltage(double irradiance) const {
  const double il = photo_current(irradiance);
  if (il <= 0.0) return 0.0;
  // Analytic first guess ignoring parasitics, then bisection on I(V)=0;
  // I(V) is strictly decreasing in V so the root is unique.
  double hi = params_.vt_eff * std::log(il / params_.i0 + 1.0) * 1.05 + 0.1;
  double lo = 0.0;
  while (current_from_photo(hi, il) > 0.0) hi *= 1.5;
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-10 * (1.0 + hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (current_from_photo(mid, il) > 0.0)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

MppPoint SolarCell::mpp(double irradiance) const {
  const double il = photo_current(irradiance);
  if (il <= 0.0) return {0.0, 0.0, 0.0};
  const double voc = open_circuit_voltage(irradiance);
  // Golden-section maximisation of P(V) = V * I(V) over [0, voc]; P is
  // unimodal for the single-diode model.
  const double gr = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = 0.0, b = voc;
  double c = b - gr * (b - a);
  double d = a + gr * (b - a);
  double pc = c * current_from_photo(c, il);
  double pd = d * current_from_photo(d, il);
  for (int iter = 0; iter < 200 && (b - a) > 1e-9 * (1.0 + voc); ++iter) {
    if (pc > pd) {
      b = d;
      d = c;
      pd = pc;
      c = b - gr * (b - a);
      pc = c * current_from_photo(c, il);
    } else {
      a = c;
      c = d;
      pc = pd;
      d = a + gr * (b - a);
      pd = d * current_from_photo(d, il);
    }
  }
  const double v = 0.5 * (a + b);
  const double i = current_from_photo(v, il);
  return {v, i, v * i};
}

pns::PiecewiseLinear SolarCell::iv_curve(double irradiance,
                                         std::size_t points) const {
  PNS_EXPECTS(points >= 2);
  const double voc = open_circuit_voltage(irradiance);
  const double vmax = voc > 0.0 ? voc : 1.0;
  std::vector<double> vs(points), is(points);
  for (std::size_t k = 0; k < points; ++k) {
    const double v =
        vmax * static_cast<double>(k) / static_cast<double>(points - 1);
    vs[k] = v;
    is[k] = current(v, irradiance);
  }
  return pns::PiecewiseLinear(std::move(vs), std::move(is));
}

SolarCell SolarCell::scaled_area(double factor) const {
  PNS_EXPECTS(factor > 0.0);
  SolarCellParams p = params_;
  p.i0 *= factor;
  p.il_ref *= factor;
  p.rs /= factor;
  p.rp /= factor;
  return SolarCell(p);
}

SolarCell SolarCell::calibrate(double voc, double isc, double vmpp,
                               double rs, double rp, double g_ref) {
  if (!(voc > 0.0) || !(isc > 0.0) || !(vmpp > 0.0) || vmpp >= voc)
    throw std::invalid_argument("SolarCell::calibrate: need 0 < vmpp < voc "
                                "and isc > 0");
  if (rs < 0.0 || rp <= 0.0 || g_ref <= 0.0)
    throw std::invalid_argument("SolarCell::calibrate: bad parasitics");

  // For a candidate vt: pick Il so that I(0)=isc and I0 so that I(voc)=0,
  // then check where the MPP voltage lands. Vmpp/Voc falls as vt grows
  // (softer knee), so bisection on vt is monotone.
  auto build = [&](double vt) {
    // Solve the 2x2 system by fixed point: start from the ideal-cell
    // approximations and iterate a few times.
    double il = isc * (1.0 + rs / rp);
    double i0 = 1e-9;
    for (int iter = 0; iter < 60; ++iter) {
      i0 = (il - voc / rp) / (std::exp(voc / vt) - 1.0);
      if (i0 <= 0.0) i0 = 1e-18;
      // Adjust il so short-circuit current matches isc.
      const double vd = rs * isc;
      il = isc + i0 * (std::exp(vd / vt) - 1.0) + vd / rp;
    }
    return SolarCell(SolarCellParams{i0, vt, rs, rp, il, g_ref});
  };

  double vt_lo = voc / 60.0;  // very sharp knee -> vmpp close to voc
  double vt_hi = voc / 2.0;   // very soft knee -> low vmpp
  const double target = vmpp;
  auto vmpp_of = [&](double vt) { return build(vt).mpp(g_ref).voltage; };
  if (vmpp_of(vt_lo) < target || vmpp_of(vt_hi) > target)
    throw std::invalid_argument(
        "SolarCell::calibrate: vmpp target outside achievable range for "
        "the given voc/isc/parasitics");
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (vt_lo + vt_hi);
    if (vmpp_of(mid) > target)
      vt_lo = mid;
    else
      vt_hi = mid;
  }
  return build(0.5 * (vt_lo + vt_hi));
}

}  // namespace pns::ehsim
