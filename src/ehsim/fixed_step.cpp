#include "ehsim/fixed_step.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace pns::ehsim {

void integrate_euler(const OdeSystem& system, double t0,
                     std::span<double> y0, double t_end, double h) {
  PNS_EXPECTS(h > 0.0);
  PNS_EXPECTS(t_end >= t0);
  PNS_EXPECTS(y0.size() == system.dimension());
  std::vector<double> f(y0.size());
  double t = t0;
  while (t < t_end) {
    const double step = std::min(h, t_end - t);
    system.derivatives(t, y0, std::span<double>(f));
    for (std::size_t i = 0; i < y0.size(); ++i) y0[i] += step * f[i];
    t += step;
  }
}

void integrate_rk4(const OdeSystem& system, double t0, std::span<double> y0,
                   double t_end, double h) {
  PNS_EXPECTS(h > 0.0);
  PNS_EXPECTS(t_end >= t0);
  PNS_EXPECTS(y0.size() == system.dimension());
  const std::size_t n = y0.size();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);
  double t = t0;
  while (t < t_end) {
    const double step = std::min(h, t_end - t);
    system.derivatives(t, y0, std::span<double>(k1));
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y0[i] + 0.5 * step * k1[i];
    system.derivatives(t + 0.5 * step, tmp, std::span<double>(k2));
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y0[i] + 0.5 * step * k2[i];
    system.derivatives(t + 0.5 * step, tmp, std::span<double>(k3));
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y0[i] + step * k3[i];
    system.derivatives(t + step, tmp, std::span<double>(k4));
    for (std::size_t i = 0; i < n; ++i)
      y0[i] += step / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    t += step;
  }
}

}  // namespace pns::ehsim
