#include "ehsim/capacitor.hpp"

#include "util/contracts.hpp"

namespace pns::ehsim {

double Capacitor::energy(double v) const {
  return 0.5 * capacitance * v * v;
}

double Capacitor::charge(double v) const { return capacitance * v; }

double Capacitor::leakage_current(double v) const {
  PNS_EXPECTS(leakage_resistance > 0.0);
  return v / leakage_resistance;
}

double Capacitor::terminal_voltage(double v, double i_out) const {
  return v - i_out * esr;
}

double Capacitor::voltage_drop_for_charge(double dq) const {
  PNS_EXPECTS(capacitance > 0.0);
  return dq / capacitance;
}

double required_capacitance(double q, double dv_allowed) {
  PNS_EXPECTS(q >= 0.0);
  PNS_EXPECTS(dv_allowed > 0.0);
  return q / dv_allowed;
}

}  // namespace pns::ehsim
