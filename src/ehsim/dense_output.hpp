// Dense output over one accepted integrator step, as an explicit cubic.
//
// The RK23 integrator's continuous extension is the cubic Hermite
// interpolant through the step's endpoint states and derivatives. For
// event localisation the interesting question is "where does component 0
// cross a level?" -- which for the Hermite form is a *polynomial root*,
// not something that needs 60 rounds of bisection. This module expands
// the Hermite basis into monomial coefficients once per accepted step and
// localises threshold crossings with a derivative-bracketed safeguarded
// Newton iteration: the cubic is split at its critical points into
// monotone pieces, each of which holds at most one root, and the earliest
// matching piece is polished to tolerance. ~6 polynomial evaluations
// replace ~60 Hermite evaluations per localisation.
#pragma once

#include "ehsim/ode.hpp"

namespace pns::ehsim {

/// One state component's dense output over an accepted step [t0, t0+h],
/// expanded to monomial form in the normalised coordinate s = (t-t0)/h:
///   y(s) = c0 + c1 s + c2 s^2 + c3 s^3,  s in [0, 1].
struct HermiteCubic {
  double c0 = 0.0, c1 = 0.0, c2 = 0.0, c3 = 0.0;

  /// Expands the Hermite data (endpoint values y0/y1 and derivatives
  /// f0/f1 *per unit t*, step length h) into monomial coefficients.
  static HermiteCubic from_step(double h, double y0, double y1, double f0,
                                double f1);

  double eval(double s) const { return ((c3 * s + c2) * s + c1) * s + c0; }
  double deriv(double s) const { return (3.0 * c3 * s + 2.0 * c2) * s + c1; }
};

/// Result of a threshold-crossing search inside one step.
struct CrossingResult {
  bool found = false;
  double s = 1.0;  ///< normalised crossing location (valid when found)
};

/// Earliest s in [0, 1] where the cubic crosses `level` in `direction`,
/// localised to within `s_tol`. The endpoint values eval(0)/eval(1) are
/// used for the bracket test, so the caller's direction semantics match
/// the integrator's discrete crossing test exactly. Deterministic.
CrossingResult earliest_crossing(const HermiteCubic& cubic, double level,
                                 EventDirection direction, double s_tol);

}  // namespace pns::ehsim
