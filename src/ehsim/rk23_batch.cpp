#include "ehsim/rk23_batch.hpp"

#include <cmath>

#include "ehsim/solar_cell_simd.hpp"
#include "util/contracts.hpp"
#include "util/simd.hpp"

namespace pns::ehsim {

Rk23BatchStepper::Rk23BatchStepper(Rk23BatchOptions options)
    : opt_(options) {
  PNS_EXPECTS(opt_.divergence_rounds >= 1);
}

void Rk23BatchStepper::run_rounds(
    std::span<Rk23Integrator* const> integrators,
    std::span<IntegrationResult> results, BatchState& state) {
  const std::size_t n = state.size();
  PNS_EXPECTS(integrators.size() == n);
  PNS_EXPECTS(results.size() == n);

  std::size_t open = state.count(LaneStatus::kLockstep);
  while (open > 0) {
    ++stats_.rounds;
    for (std::size_t i = 0; i < n; ++i) {
      if (state.status[i] != LaneStatus::kLockstep) continue;
      Rk23Integrator& ig = *integrators[i];

      ++state.rounds[i];
      ++state.lockstep_steps[i];
      ++stats_.lockstep_steps;
      const bool more = ig.step_window(results[i]);
      state.observe(i, ig);
      if (!more) {
        if (results[i].event_fired) ++stats_.event_windows;
        state.status[i] = LaneStatus::kIdle;
        --open;
        continue;
      }

      if (state.rounds[i] >= opt_.divergence_rounds) {
        // Step divergence: this lane's window is taking far longer than
        // its peers'. Finish it here with the very calls lockstep would
        // eventually have issued -- same order, same bits -- so the
        // remaining lanes stop paying a round-robin visit to it.
        state.status[i] = LaneStatus::kTail;
        ++stats_.divergences;
        while (ig.step_window(results[i])) {
          ++state.tail_steps[i];
          ++stats_.tail_steps;
        }
        ++state.tail_steps[i];  // the closing attempt above
        ++stats_.tail_steps;
        state.observe(i, ig);
        if (results[i].event_fired) ++stats_.event_windows;
        state.status[i] = LaneStatus::kIdle;
        --open;
      }
    }
  }
}

void Rk23BatchStepper::run_rounds_simd(
    std::span<Rk23Integrator* const> integrators,
    std::span<IntegrationResult> results, BatchState& state, BatchRhs& rhs) {
  const std::size_t n = state.size();
  PNS_EXPECTS(integrators.size() == n);
  PNS_EXPECTS(results.size() == n);

  using Vec = simd::VecD<simd::kDefaultWidth>;
  constexpr std::size_t kW = simd::kDefaultWidth;

  attempts_.resize(n);

  std::size_t open = state.count(LaneStatus::kLockstep);
  while (open > 0) {
    ++stats_.rounds;
    ++stats_.simd_rounds;

    // --- open: collect this round's step attempts -----------------------
    active_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (state.status[i] != LaneStatus::kLockstep) continue;
      Rk23Integrator& ig = *integrators[i];
      ++state.rounds[i];
      ++state.lockstep_steps[i];
      ++stats_.lockstep_steps;
      if (!ig.attempt_open(attempts_[i], results[i])) {
        // The closing call of a window that reached t_end last round --
        // run_rounds() pays the same extra step_window() call.
        state.observe(i, ig);
        if (results[i].event_fired) ++stats_.event_windows;
        state.status[i] = LaneStatus::kIdle;
        --open;
        continue;
      }
      active_.push_back(i);
    }
    const std::size_t m = active_.size();
    if (m == 0) continue;
    stats_.simd_lane_steps += m;

    ta_.resize(m);
    ya_.resize(m);
    ha_.resize(m);
    k1a_.resize(m);
    k2a_.resize(m);
    k3a_.resize(m);
    k4a_.resize(m);
    tsa_.resize(m);
    ysa_.resize(m);
    ynewa_.resize(m);
    yerra_.resize(m);
    erra_.resize(m);
    rtola_.resize(m);
    atola_.resize(m);
    for (std::size_t j = 0; j < m; ++j) {
      const Rk23StepAttempt& at = attempts_[active_[j]];
      ta_[j] = at.t;
      ya_[j] = at.y;
      ha_[j] = at.h;
      k1a_[j] = at.k1;
      rtola_[j] = integrators[active_[j]]->options().rel_tol;
      atola_[j] = integrators[active_[j]]->options().abs_tol;
    }

    // --- stages, data-parallel across the active set --------------------
    // Each expression replicates the scalar step_window() line for n = 1
    // with the same association order; vector chunks and the scalar tail
    // are elementwise-identical (see util/simd.hpp). rhs.eval keeps each
    // lane's derivative evaluation order exactly scalar.
    const std::span<const std::size_t> ids(active_.data(), m);
    std::size_t j = 0;

    // Stage 2: ytmp = y + h * 0.5 * k1 at t + 0.5 * h.
    for (j = 0; j + kW <= m; j += kW) {
      const Vec t = Vec::load(&ta_[j]), y = Vec::load(&ya_[j]),
                h = Vec::load(&ha_[j]), k1 = Vec::load(&k1a_[j]);
      const Vec half = Vec::broadcast(0.5);
      (t + half * h).store(&tsa_[j]);
      (y + h * half * k1).store(&ysa_[j]);
    }
    for (; j < m; ++j) {
      tsa_[j] = ta_[j] + 0.5 * ha_[j];
      ysa_[j] = ya_[j] + ha_[j] * 0.5 * k1a_[j];
    }
    rhs.eval(ids, tsa_.data(), ysa_.data(), k2a_.data());

    // Stage 3: ytmp = y + h * 0.75 * k2 at t + 0.75 * h.
    for (j = 0; j + kW <= m; j += kW) {
      const Vec t = Vec::load(&ta_[j]), y = Vec::load(&ya_[j]),
                h = Vec::load(&ha_[j]), k2 = Vec::load(&k2a_[j]);
      const Vec q = Vec::broadcast(0.75);
      (t + q * h).store(&tsa_[j]);
      (y + h * q * k2).store(&ysa_[j]);
    }
    for (; j < m; ++j) {
      tsa_[j] = ta_[j] + 0.75 * ha_[j];
      ysa_[j] = ya_[j] + ha_[j] * 0.75 * k2a_[j];
    }
    rhs.eval(ids, tsa_.data(), ysa_.data(), k3a_.data());

    // Stage 4: ynew = y + h * (2/9 k1 + 1/3 k2 + 4/9 k3) at t + h.
    for (j = 0; j + kW <= m; j += kW) {
      const Vec t = Vec::load(&ta_[j]), y = Vec::load(&ya_[j]),
                h = Vec::load(&ha_[j]), k1 = Vec::load(&k1a_[j]),
                k2 = Vec::load(&k2a_[j]), k3 = Vec::load(&k3a_[j]);
      const Vec b1 = Vec::broadcast(2.0 / 9.0), b2 = Vec::broadcast(1.0 / 3.0),
                b3 = Vec::broadcast(4.0 / 9.0);
      (t + h).store(&tsa_[j]);
      (y + h * (b1 * k1 + b2 * k2 + b3 * k3)).store(&ynewa_[j]);
    }
    for (; j < m; ++j) {
      tsa_[j] = ta_[j] + ha_[j];
      ynewa_[j] = ya_[j] + ha_[j] * (2.0 / 9.0 * k1a_[j] +
                                     1.0 / 3.0 * k2a_[j] + 4.0 / 9.0 * k3a_[j]);
    }
    rhs.eval(ids, tsa_.data(), ynewa_.data(), k4a_.data());

    // Embedded error: z = y + h * (7/24 k1 + 1/4 k2 + 1/3 k3 + 1/8 k4),
    // yerr = ynew - z, err = sqrt((yerr / (atol + rtol*max(|y|,|ynew|)))^2)
    // -- error_norm() specialised to dimension 1 (acc/1.0 is exact).
    for (j = 0; j + kW <= m; j += kW) {
      const Vec y = Vec::load(&ya_[j]), h = Vec::load(&ha_[j]),
                k1 = Vec::load(&k1a_[j]), k2 = Vec::load(&k2a_[j]),
                k3 = Vec::load(&k3a_[j]), k4 = Vec::load(&k4a_[j]),
                ynew = Vec::load(&ynewa_[j]);
      const Vec e1 = Vec::broadcast(7.0 / 24.0), e2 = Vec::broadcast(0.25),
                e3 = Vec::broadcast(1.0 / 3.0), e4 = Vec::broadcast(0.125);
      const Vec z = y + h * (e1 * k1 + e2 * k2 + e3 * k3 + e4 * k4);
      const Vec yerr = ynew - z;
      yerr.store(&yerra_[j]);
      const Vec scale = Vec::load(&atola_[j]) +
                        Vec::load(&rtola_[j]) * vmax(vabs(y), vabs(ynew));
      const Vec e = yerr / scale;
      (e * e).store(&erra_[j]);
    }
    for (; j < m; ++j) {
      const double z =
          ya_[j] + ha_[j] * (7.0 / 24.0 * k1a_[j] + 0.25 * k2a_[j] +
                             1.0 / 3.0 * k3a_[j] + 0.125 * k4a_[j]);
      yerra_[j] = ynewa_[j] - z;
      const double scale =
          atola_[j] + rtola_[j] * std::max(std::abs(ya_[j]),
                                           std::abs(ynewa_[j]));
      const double e = yerra_[j] / scale;
      erra_[j] = e * e;
    }
    for (j = 0; j < m; ++j) erra_[j] = std::sqrt(erra_[j]);

    // --- close: accept/reject + events + divergence, in lane order ------
    for (j = 0; j < m; ++j) {
      const std::size_t i = active_[j];
      Rk23StepAttempt& at = attempts_[i];
      at.k2 = k2a_[j];
      at.k3 = k3a_[j];
      at.k4 = k4a_[j];
      at.ynew = ynewa_[j];
      at.yerr = yerra_[j];
      at.err = erra_[j];
      Rk23Integrator& ig = *integrators[i];
      const bool more = ig.attempt_close(at, results[i]);
      state.observe(i, ig);
      if (!more) {
        if (results[i].event_fired) ++stats_.event_windows;
        state.status[i] = LaneStatus::kIdle;
        --open;
        continue;
      }

      if (state.rounds[i] >= opt_.divergence_rounds) {
        // Same divergence fallback as run_rounds(): finish the window in
        // a tight scalar loop. The scalar path computes the same bits,
        // so leaving the packed rounds changes nothing but scheduling.
        state.status[i] = LaneStatus::kTail;
        ++stats_.divergences;
        while (ig.step_window(results[i])) {
          ++state.tail_steps[i];
          ++stats_.tail_steps;
        }
        ++state.tail_steps[i];  // the closing attempt above
        ++stats_.tail_steps;
        state.observe(i, ig);
        if (results[i].event_fired) ++stats_.event_windows;
        state.status[i] = LaneStatus::kIdle;
        --open;
      }
    }
  }

  stats_.kernel = rhs.stats();
}

}  // namespace pns::ehsim
