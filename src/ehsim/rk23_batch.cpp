#include "ehsim/rk23_batch.hpp"

#include "util/contracts.hpp"

namespace pns::ehsim {

Rk23BatchStepper::Rk23BatchStepper(Rk23BatchOptions options)
    : opt_(options) {
  PNS_EXPECTS(opt_.divergence_rounds >= 1);
}

void Rk23BatchStepper::run_rounds(
    std::span<Rk23Integrator* const> integrators,
    std::span<IntegrationResult> results, BatchState& state) {
  const std::size_t n = state.size();
  PNS_EXPECTS(integrators.size() == n);
  PNS_EXPECTS(results.size() == n);

  std::size_t open = state.count(LaneStatus::kLockstep);
  while (open > 0) {
    ++stats_.rounds;
    for (std::size_t i = 0; i < n; ++i) {
      if (state.status[i] != LaneStatus::kLockstep) continue;
      Rk23Integrator& ig = *integrators[i];

      ++state.rounds[i];
      ++state.lockstep_steps[i];
      ++stats_.lockstep_steps;
      const bool more = ig.step_window(results[i]);
      state.observe(i, ig);
      if (!more) {
        if (results[i].event_fired) ++stats_.event_windows;
        state.status[i] = LaneStatus::kIdle;
        --open;
        continue;
      }

      if (state.rounds[i] >= opt_.divergence_rounds) {
        // Step divergence: this lane's window is taking far longer than
        // its peers'. Finish it here with the very calls lockstep would
        // eventually have issued -- same order, same bits -- so the
        // remaining lanes stop paying a round-robin visit to it.
        state.status[i] = LaneStatus::kTail;
        ++stats_.divergences;
        while (ig.step_window(results[i])) {
          ++state.tail_steps[i];
          ++stats_.tail_steps;
        }
        ++state.tail_steps[i];  // the closing attempt above
        ++stats_.tail_steps;
        state.observe(i, ig);
        if (results[i].event_fired) ++stats_.event_windows;
        state.status[i] = LaneStatus::kIdle;
        --open;
      }
    }
  }
}

}  // namespace pns::ehsim
