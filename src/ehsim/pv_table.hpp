// Precomputed I(V, G) table for the single-diode PV model.
//
// The Newton solve in SolarCell::current is exact but costs a handful of
// exp() evaluations per call, and the co-simulation loop calls it three
// times per RK23 step. For design-space sweeps where a bounded (and
// measured) current error is acceptable, PvTable trades the solve for a
// bilinear interpolation over a uniform (V, G) grid: the grid is filled
// with exact Newton solutions at construction, and the worst-case
// interpolation error is then *measured* by probing every cell midpoint
// against the exact model, so callers can assert on it rather than trust
// an analytic estimate.
//
// Outside the tabulated rectangle ([0, v_max] x [0, g_max]) the table
// refuses to answer (covers() is false) and callers fall back to the exact
// solve -- see PvSource.
#pragma once

#include <cstddef>
#include <vector>

#include "ehsim/solar_cell.hpp"

namespace pns::ehsim {

/// Grid extents and resolution of a PvTable. Defaults suit the paper's
/// array (Voc ~ 6.8 V) under up to 1.2x reference irradiance.
struct PvTableSpec {
  double v_max = 0.0;    ///< 0 = auto: 1.02 x Voc at g_max
  double g_max = 1200.0; ///< W/m^2
  std::size_t nv = 257;  ///< voltage knots (>= 2)
  std::size_t ng = 49;   ///< irradiance knots (>= 2)
};

/// Immutable bilinear I(V, G) interpolant built from a SolarCell.
class PvTable {
 public:
  PvTable(const SolarCell& cell, PvTableSpec spec = {});

  /// True when (v, g) lies inside the tabulated rectangle.
  bool covers(double v, double g) const {
    return v >= 0.0 && v <= v_max_ && g >= 0.0 && g <= g_max_;
  }

  /// Bilinear terminal current (A). Precondition: covers(v, g).
  double current(double v, double g) const;

  /// Worst |I_table - I_newton| (A) measured at every cell midpoint of
  /// the grid during construction.
  double max_abs_error_a() const { return max_abs_error_; }

  double v_max() const { return v_max_; }
  double g_max() const { return g_max_; }
  std::size_t nv() const { return nv_; }
  std::size_t ng() const { return ng_; }

  // Raw grid access for the packed bilinear kernel
  // (ehsim/solar_cell_simd.hpp), which replicates current() elementwise
  // across lanes. Ordinary callers use current().
  double dv() const { return dv_; }
  double dg() const { return dg_; }
  /// Row-major knot currents, [gi * nv() + vi].
  const std::vector<double>& knots() const { return i_; }

 private:
  double v_max_, g_max_;
  double dv_, dg_;
  std::size_t nv_, ng_;
  std::vector<double> i_;  // row-major [gi * nv_ + vi]
  double max_abs_error_ = 0.0;
};

}  // namespace pns::ehsim
