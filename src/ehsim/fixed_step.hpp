// Fixed-step explicit integrators (forward Euler, classic RK4).
//
// These exist as verification baselines: the convergence-order tests
// integrate known analytic systems with all three integrators and assert
// the expected order of accuracy, which cross-checks the adaptive RK23
// implementation.
#pragma once

#include <span>
#include <vector>

#include "ehsim/ode.hpp"

namespace pns::ehsim {

/// Integrates y' = f(t,y) from (t0, y0) to t_end with fixed step h using
/// forward Euler. The final state overwrites `y0`.
void integrate_euler(const OdeSystem& system, double t0,
                     std::span<double> y0, double t_end, double h);

/// Same contract as integrate_euler but with the classic 4th-order
/// Runge-Kutta method.
void integrate_rk4(const OdeSystem& system, double t0, std::span<double> y0,
                   double t_end, double h);

}  // namespace pns::ehsim
