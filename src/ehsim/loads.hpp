// Loads drawing current from the storage node.
//
// The ODROID board behaves as a constant-power load over its 4.1-5.7 V
// input range (its on-board regulators hold the rails, so I = P / Vin).
// ConstantPowerLoad captures that with a minimum-voltage cutoff below
// which the regulators drop out and draw only residual current.
// CallbackLoad is the hook the co-simulation engine uses to couple the SoC
// power model into the circuit.
#pragma once

#include <functional>
#include <limits>

namespace pns::ehsim {

/// A device that draws current from the storage node.
class Load {
 public:
  virtual ~Load() = default;

  /// Current (A) out of the node at node voltage `v` and time `t`.
  virtual double current(double v, double t) const = 0;

  /// Latest time T >= t such that the load's *time* dependence is
  /// provably constant over [t, T] (same contract as
  /// CurrentSource::constant_until). Default: unknown.
  virtual double constant_until(double t) const { return t; }
};

/// Constant-power load with undervoltage cutoff:
///   I = P / v          for v >= v_cutoff
///   I = residual / v   below cutoff (regulator dropout, residual watts)
/// A small series floor on v avoids the 1/v singularity at node collapse.
class ConstantPowerLoad : public Load {
 public:
  ConstantPowerLoad(double watts, double v_cutoff = 0.0,
                    double residual_watts = 0.0);

  double current(double v, double t) const override;
  double constant_until(double /*t*/) const override {
    return std::numeric_limits<double>::infinity();
  }

  double watts() const { return watts_; }
  void set_watts(double watts);

 private:
  double watts_;
  double v_cutoff_;
  double residual_watts_;
};

/// Ohmic load I = v / R (test baseline: gives analytic RC discharge).
class ResistiveLoad : public Load {
 public:
  explicit ResistiveLoad(double ohms);
  double current(double v, double t) const override;
  double constant_until(double /*t*/) const override {
    return std::numeric_limits<double>::infinity();
  }

 private:
  double ohms_;
};

/// Adapts an arbitrary callable (v, t) -> amps. The co-simulation engine
/// wires the SoC power model in through this.
class CallbackLoad : public Load {
 public:
  explicit CallbackLoad(std::function<double(double, double)> fn);
  double current(double v, double t) const override;

 private:
  std::function<double(double, double)> fn_;
};

}  // namespace pns::ehsim
