#include "ehsim/pv_table.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace pns::ehsim {

PvTable::PvTable(const SolarCell& cell, PvTableSpec spec) {
  PNS_EXPECTS(spec.nv >= 2);
  PNS_EXPECTS(spec.ng >= 2);
  PNS_EXPECTS(spec.g_max > 0.0);
  g_max_ = spec.g_max;
  v_max_ = spec.v_max > 0.0
               ? spec.v_max
               : cell.open_circuit_voltage(g_max_) * 1.02;
  PNS_EXPECTS(v_max_ > 0.0);
  nv_ = spec.nv;
  ng_ = spec.ng;
  dv_ = v_max_ / static_cast<double>(nv_ - 1);
  dg_ = g_max_ / static_cast<double>(ng_ - 1);

  i_.resize(nv_ * ng_);
  for (std::size_t gi = 0; gi < ng_; ++gi) {
    const double g = static_cast<double>(gi) * dg_;
    const double il = cell.photo_current(g);
    // Walking the voltage axis keeps consecutive roots close, so seeding
    // each solve with the previous root makes the table build cheap.
    double seed = il;
    for (std::size_t vi = 0; vi < nv_; ++vi) {
      const double v = static_cast<double>(vi) * dv_;
      const double i = cell.current_from_photo_seeded(v, il, seed);
      i_[gi * nv_ + vi] = i;
      seed = i;
    }
  }

  // Measure the interpolation error where bilinear error peaks: the cell
  // midpoints. This is the bound callers get from max_abs_error_a().
  for (std::size_t gi = 0; gi + 1 < ng_; ++gi) {
    const double g = (static_cast<double>(gi) + 0.5) * dg_;
    const double il = cell.photo_current(g);
    double seed = il;
    for (std::size_t vi = 0; vi + 1 < nv_; ++vi) {
      const double v = (static_cast<double>(vi) + 0.5) * dv_;
      const double exact = cell.current_from_photo_seeded(v, il, seed);
      seed = exact;
      max_abs_error_ =
          std::max(max_abs_error_, std::abs(current(v, g) - exact));
    }
  }
}

double PvTable::current(double v, double g) const {
  PNS_EXPECTS(covers(v, g));
  const double fv = std::min(v / dv_, static_cast<double>(nv_ - 1));
  const double fg = std::min(g / dg_, static_cast<double>(ng_ - 1));
  const std::size_t vi =
      std::min(static_cast<std::size_t>(fv), nv_ - 2);
  const std::size_t gi =
      std::min(static_cast<std::size_t>(fg), ng_ - 2);
  const double tv = fv - static_cast<double>(vi);
  const double tg = fg - static_cast<double>(gi);
  const double* row0 = &i_[gi * nv_ + vi];
  const double* row1 = row0 + nv_;
  const double i0 = row0[0] + tv * (row0[1] - row0[0]);
  const double i1 = row1[0] + tv * (row1[1] - row1[0]);
  return i0 + tg * (i1 - i0);
}

}  // namespace pns::ehsim
