// Packed PV kernels. Bit-identity with the scalar solvers is the contract
// here, so every expression below replicates its scalar counterpart's
// association order exactly (see solar_cell.cpp / pv_table.cpp); this TU
// and those TUs all pin -ffp-contract=off (CMakeLists.txt) so neither side
// can be FMA-contracted into disagreement.
#include "ehsim/solar_cell_simd.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>

#include "util/contracts.hpp"
#include "util/simd.hpp"

namespace pns::ehsim {
namespace {

std::atomic<bool> g_force_scalar{false};

constexpr int kW = simd::kDefaultWidth;

bool run_self_test() {
  // A plausible small array; the exact values only need to drive the
  // solver through its branches (damping, convergence, out-of-range V).
  const SolarCell cell(SolarCellParams{2e-9, 1.6, 0.3, 200.0, 1.15, 1000.0});

  // Newton probes across the IV curve, cold and warm seeds, with a count
  // that is not a multiple of the chunk width so the scalar tail-drain
  // path runs too.
  std::vector<NewtonLane> nl;
  for (double v : {0.0, 1.3, 4.2, 5.3, 6.4, 7.1})
    for (double il : {0.0, 0.2, 0.7, 1.15}) nl.push_back({&cell, v, il, il});
  for (std::size_t k = 0; k < 3; ++k) {
    NewtonLane ln = nl[4 * k + 1];
    ln.seed = cell.current_from_photo(ln.v, ln.il) + 0.01;
    nl.push_back(ln);
  }
  std::vector<double> got(nl.size());
  std::vector<std::uint32_t> got_iters(nl.size());
  simd_detail::newton_packed(nl, got.data(), got_iters.data());
  for (std::size_t k = 0; k < nl.size(); ++k) {
    std::uint32_t want_iters = 0;
    const double want = nl[k].cell->current_from_photo_counted(
        nl[k].v, nl[k].il, nl[k].seed, &want_iters);
    if (std::bit_cast<std::uint64_t>(want) !=
        std::bit_cast<std::uint64_t>(got[k]))
      return false;
    if (want_iters != got_iters[k]) return false;
  }

  // Bilinear probes on a deliberately coarse table (cheap to build),
  // covering corners, knots and interior points, again with a tail.
  PvTableSpec spec;
  spec.v_max = 7.0;
  spec.g_max = 1200.0;
  spec.nv = 9;
  spec.ng = 5;
  const PvTable table(cell, spec);
  std::vector<TableLane> tl;
  for (double v : {0.0, 0.37, 2.6, 5.3, 6.999, 7.0})
    for (double g : {0.0, 12.5, 640.0, 1200.0}) tl.push_back({&table, v, g});
  tl.push_back({&table, 3.14159, 271.8});
  tl.push_back({&table, 0.875, 1111.0});  // 26 lanes: 6x4 + one half chunk
  std::vector<double> tgot(tl.size());
  simd_detail::bilinear_packed(tl, tgot.data());
  for (std::size_t k = 0; k < tl.size(); ++k) {
    const double want = table.current(tl[k].v, tl[k].g);
    if (std::bit_cast<std::uint64_t>(want) !=
        std::bit_cast<std::uint64_t>(tgot[k]))
      return false;
  }
  return true;
}

}  // namespace

bool simd_kernel_compiled() { return simd::kNativeVectors; }

bool simd_kernel_self_test() {
  static const bool ok = run_self_test();
  return ok;
}

void simd_force_scalar(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

bool simd_forced_scalar() {
  return g_force_scalar.load(std::memory_order_relaxed);
}

bool simd_kernel_active() {
  return simd_kernel_compiled() && !simd_forced_scalar() &&
         simd_kernel_self_test();
}

namespace simd_detail {

namespace {

// On x86-64 the generic vector code is also cloned for AVX2 and dispatched
// by CPU at load time (GCC/Clang target_clones -> ifunc). Bit-identity is
// unaffected: the clones run the same elementwise IEEE-754 operations, this
// TU pins -ffp-contract=off so the FMA units the avx2 clone unlocks are
// never allowed to fuse, and the startup self-test validates whichever
// clone the dispatcher picked on the actual silicon.
#if PNS_SIMD_NATIVE && defined(__x86_64__) && defined(__GNUC__) && \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#define PNS_SIMD_CLONES __attribute__((target_clones("default", "avx2")))
#else
#define PNS_SIMD_CLONES
#endif

/// One width-W Newton chunk: lanes[0..W) solved in lockstep, each lane
/// executing exactly the scalar newton_current iteration sequence. Forced
/// inline into the (cloned) width wrappers below so the generic vector ops
/// lower with whatever ISA the selected clone enables.
template <int W>
[[gnu::always_inline]] inline void newton_chunk_impl(const NewtonLane* lanes,
                                                     double* out,
                                                     std::uint32_t* iters) {
  using Vec = simd::VecD<W>;
  using VMask = typename Vec::Mask;
  constexpr int kW = W;
  const Vec zero = Vec::broadcast(0.0);
  const Vec one = Vec::broadcast(1.0);
  const Vec ten = Vec::broadcast(10.0);
  const Vec eps = Vec::broadcast(1e-12);

  double i0a[kW], vta[kW], rsa[kW], rpa[kW], va[kW], ila[kW], ia[kW];
  for (int l = 0; l < kW; ++l) {
    const NewtonLane& ln = lanes[l];
    const SolarCellParams& p = ln.cell->params();
    i0a[l] = p.i0;
    vta[l] = p.vt_eff;
    rsa[l] = p.rs;
    rpa[l] = p.rp;
    va[l] = ln.v;
    ila[l] = ln.il;
    ia[l] = ln.seed;
  }
  const Vec i0 = Vec::load(i0a), vt = Vec::load(vta), rs = Vec::load(rsa),
            rp = Vec::load(rpa), v = Vec::load(va), il = Vec::load(ila);
  Vec i = Vec::load(ia);
  // Loop invariants of the scalar Residual::eval derivative
  //   df = -i0 * rs / vt_eff * e - rs / rp - 1.0
  // hoisted with the same association order ((((-i0)*rs)/vt)*e ...), so
  // each iteration's df is bit-identical to the scalar one.
  const Vec c1 = ((-i0) * rs) / vt;
  const Vec c2 = rs / rp;

  VMask active = cmp_lt(zero, one);  // all lanes
  Vec result = i;
  Vec itv = Vec::broadcast(100.0);  // best-effort default, as scalar

  bool all_done = false;
  for (int iter = 0; iter < 100 && !all_done; ++iter) {
    const Vec vd = v + rs * i;
    const Vec x = vd / vt;
    // std::exp stays scalar: there is no vector exp with bit-identical
    // results, and it is the one transcendental in the loop. Converged
    // lanes skip it -- exactly the calls the scalar solver would not
    // have made.
    double ea[kW];
    for (int l = 0; l < kW; ++l)
      ea[l] = active.test(l) ? std::exp(x[l]) : 1.0;
    const Vec e = Vec::load(ea);
    const Vec f = il - i0 * (e - one) - vd / rp - i;
    const Vec df = c1 * e - c2 - one;
    Vec step = f / df;
    const Vec limit = vmax(one, vabs(i)) * ten + one;
    const VMask big = cmp_gt(vabs(step), limit);
    step = select(big, select(cmp_gt(step, zero), limit, -limit), step);
    const Vec next = i - step;
    const VMask conv = cmp_lt(vabs(next - i), eps * (one + vabs(next)));
    const VMask newly = conv & active;
    result = select(newly, next, result);
    itv = select(newly, Vec::broadcast(static_cast<double>(iter + 1)), itv);
    active = active & ~conv;
    all_done = !active.any();
    i = next;
  }
  // Lanes that never converged return the last iterate, matching the
  // scalar solver's best-effort return (iters stays 100).
  result = select(active, i, result);

  for (int l = 0; l < kW; ++l) {
    out[l] = result[l];
    iters[l] = static_cast<std::uint32_t>(itv[l]);
  }
}

/// One width-W bilinear chunk: PvTable::current with vector arithmetic
/// and scalar index/knot gathers.
template <int W>
[[gnu::always_inline]] inline void bilinear_chunk_impl(const TableLane* lanes,
                                                       double* out) {
  using Vec = simd::VecD<W>;
  constexpr int kW = W;
  const PvTable* tbl[kW];
  double va[kW], ga[kW], dva[kW], dga[kW], nv1[kW], ng1[kW];
  for (int l = 0; l < kW; ++l) {
    const TableLane& ln = lanes[l];
    tbl[l] = ln.table;
    va[l] = ln.v;
    ga[l] = ln.g;
    dva[l] = ln.table->dv();
    dga[l] = ln.table->dg();
    nv1[l] = static_cast<double>(ln.table->nv() - 1);
    ng1[l] = static_cast<double>(ln.table->ng() - 1);
  }
  //   fv = min(v / dv, nv - 1), vi = min(size_t(fv), nv - 2), ...
  const Vec fv = vmin(Vec::load(va) / Vec::load(dva), Vec::load(nv1));
  const Vec fg = vmin(Vec::load(ga) / Vec::load(dga), Vec::load(ng1));
  double r00[kW], r01[kW], r10[kW], r11[kW], tva[kW], tga[kW];
  for (int l = 0; l < kW; ++l) {
    const PvTable* tb = tbl[l];
    const std::size_t vi =
        std::min(static_cast<std::size_t>(fv[l]), tb->nv() - 2);
    const std::size_t gi =
        std::min(static_cast<std::size_t>(fg[l]), tb->ng() - 2);
    tva[l] = fv[l] - static_cast<double>(vi);
    tga[l] = fg[l] - static_cast<double>(gi);
    const double* row0 = &tb->knots()[gi * tb->nv() + vi];
    const double* row1 = row0 + tb->nv();
    r00[l] = row0[0];
    r01[l] = row0[1];
    r10[l] = row1[0];
    r11[l] = row1[1];
  }
  const Vec tv = Vec::load(tva), tg = Vec::load(tga);
  const Vec q00 = Vec::load(r00), q01 = Vec::load(r01), q10 = Vec::load(r10),
            q11 = Vec::load(r11);
  const Vec i0v = q00 + tv * (q01 - q00);
  const Vec i1v = q10 + tv * (q11 - q10);
  const Vec res = i0v + tg * (i1v - i0v);
  for (int l = 0; l < kW; ++l) out[l] = res[l];
}

// GCC cannot multiversion templates, so each chunk width gets a plain
// wrapper carrying the clone attribute; the always_inline impl then
// compiles per clone.
PNS_SIMD_CLONES
void newton_chunk4(const NewtonLane* l, double* o, std::uint32_t* it) {
  newton_chunk_impl<4>(l, o, it);
}
PNS_SIMD_CLONES
void newton_chunk2(const NewtonLane* l, double* o, std::uint32_t* it) {
  newton_chunk_impl<2>(l, o, it);
}
PNS_SIMD_CLONES
void bilinear_chunk4(const TableLane* l, double* o) {
  bilinear_chunk_impl<4>(l, o);
}
PNS_SIMD_CLONES
void bilinear_chunk2(const TableLane* l, double* o) {
  bilinear_chunk_impl<2>(l, o);
}

}  // namespace

std::size_t newton_packed(std::span<const NewtonLane> lanes, double* out,
                          std::uint32_t* iters) {
  // Full chunks go through the vector kernel, a 2- or 3-lane remainder
  // through one half-width chunk, and a final odd lane through the scalar
  // solver -- which is the same iteration sequence (that is the kernel's
  // whole contract), and cheaper than a padded vector pass that mostly
  // computes masked lanes.
  static_assert(kW == 4, "chunk schedule assumes a width-4 default");
  std::size_t base = 0;
  for (; base + kW <= lanes.size(); base += kW)
    newton_chunk4(lanes.data() + base, out + base, iters + base);
  if (base + 2 <= lanes.size()) {
    newton_chunk2(lanes.data() + base, out + base, iters + base);
    base += 2;
  }
  const std::size_t packed = base;
  for (std::size_t k = packed; k < lanes.size(); ++k)
    out[k] = lanes[k].cell->current_from_photo_counted(
        lanes[k].v, lanes[k].il, lanes[k].seed, &iters[k]);
  return packed;
}

std::size_t bilinear_packed(std::span<const TableLane> lanes, double* out) {
  std::size_t base = 0;
  for (; base + kW <= lanes.size(); base += kW)
    bilinear_chunk4(lanes.data() + base, out + base);
  if (base + 2 <= lanes.size()) {
    bilinear_chunk2(lanes.data() + base, out + base);
    base += 2;
  }
  const std::size_t packed = base;
  for (std::size_t k = packed; k < lanes.size(); ++k)
    out[k] = lanes[k].table->current(lanes[k].v, lanes[k].g);
  return packed;
}

}  // namespace simd_detail

std::size_t newton_current_batch(std::span<const NewtonLane> lanes,
                                 double* out, std::uint32_t* iters) {
  if (!lanes.empty() && simd_kernel_active())
    return simd_detail::newton_packed(lanes, out, iters);
  for (std::size_t k = 0; k < lanes.size(); ++k)
    out[k] = lanes[k].cell->current_from_photo_counted(
        lanes[k].v, lanes[k].il, lanes[k].seed, &iters[k]);
  return 0;
}

std::size_t pv_table_current_batch(std::span<const TableLane> lanes,
                                   double* out) {
  if (!lanes.empty() && simd_kernel_active())
    return simd_detail::bilinear_packed(lanes, out);
  for (std::size_t k = 0; k < lanes.size(); ++k)
    out[k] = lanes[k].table->current(lanes[k].v, lanes[k].g);
  return 0;
}

void BatchRhs::bind(std::span<const EhCircuit* const> circuits) {
  lanes_.clear();
  lanes_.reserve(circuits.size());
  for (const EhCircuit* c : circuits) {
    Binding b;
    b.circuit = c;
    if (c != nullptr) b.pv = dynamic_cast<const PvSource*>(&c->source());
    b.newton_biased = b.pv != nullptr && b.pv->table() == nullptr;
    lanes_.push_back(b);
  }
}

std::size_t BatchRhs::packable_lanes() const {
  std::size_t n = 0;
  for (const Binding& b : lanes_)
    if (b.pv != nullptr) ++n;
  return n;
}

void BatchRhs::eval(std::span<const std::size_t> lane_ids, const double* t,
                    const double* y, double* f) {
  const std::size_t n = lane_ids.size();

  // The packed path pays classify/queue bookkeeping per lane and wins it
  // back on Newton solves (an exp-bound iteration per lane); bilinear
  // table hits are too cheap to recover it. Enter it only when the call
  // has at least two lanes whose solves are Newton-biased (exact-mode PV,
  // no table); otherwise answer every lane through its circuit's scalar
  // derivatives() -- same bits either way.
  std::size_t newton_lanes = 0;
  for (std::size_t k = 0; k < n; ++k)
    if (lanes_[lane_ids[k]].newton_biased) ++newton_lanes;
  if (newton_lanes < 2) {
    for (std::size_t k = 0; k < n; ++k) {
      const Binding& b = lanes_[lane_ids[k]];
      PNS_EXPECTS(b.circuit != nullptr);
      b.circuit->derivatives(t[k], std::span<const double>(&y[k], 1),
                             std::span<double>(&f[k], 1));
    }
    return;
  }

  newton_.clear();
  newton_plans_.clear();
  newton_slot_.clear();
  table_.clear();
  table_slot_.clear();
  isrc_.assign(n, 0.0);

  // Classify each lane's evaluation. Non-PV lanes are answered scalar on
  // the spot; PV lanes queue their table lookups / Newton solves for the
  // packed kernels.
  for (std::size_t k = 0; k < n; ++k) {
    const Binding& b = lanes_[lane_ids[k]];
    PNS_EXPECTS(b.circuit != nullptr);
    if (b.pv == nullptr) {
      b.circuit->derivatives(t[k], std::span<const double>(&y[k], 1),
                             std::span<double>(&f[k], 1));
      continue;
    }
    const PvSource::SolvePlan plan = b.pv->plan_current(y[k], t[k]);
    ++stats_.calls;
    switch (plan.path) {
      case PvSource::SolvePlan::Path::kMemo:
        ++stats_.memo_hits;
        isrc_[k] = plan.value;
        break;
      case PvSource::SolvePlan::Path::kTable:
        ++stats_.table_hits;
        table_.push_back({b.pv->table(), plan.v, plan.g});
        table_slot_.push_back(k);
        break;
      case PvSource::SolvePlan::Path::kNewton:
        newton_.push_back({&b.pv->cell(), plan.v, plan.il, plan.seed});
        newton_plans_.push_back(plan);
        newton_slot_.push_back(k);
        break;
    }
  }

  if (!table_.empty()) {
    table_i_.resize(table_.size());
    pv_table_current_batch(table_, table_i_.data());
    for (std::size_t j = 0; j < table_.size(); ++j)
      isrc_[table_slot_[j]] = table_i_[j];
  }

  if (!newton_.empty()) {
    newton_i_.resize(newton_.size());
    newton_iters_.resize(newton_.size());
    const std::size_t packed =
        newton_current_batch(newton_, newton_i_.data(), newton_iters_.data());
    for (std::size_t j = 0; j < newton_.size(); ++j) {
      const std::size_t k = newton_slot_[j];
      const Binding& b = lanes_[lane_ids[k]];
      b.pv->commit_newton(newton_plans_[j], newton_i_[j], newton_iters_[j],
                          j < packed);
      isrc_[k] = newton_i_[j];
      ++stats_.newton_solves;
      stats_.newton_iterations += newton_iters_[j];
      if (newton_plans_[j].warm) ++stats_.warm_starts;
      if (j < packed) ++stats_.simd_lanes;
    }
  }

  for (std::size_t k = 0; k < n; ++k) {
    const Binding& b = lanes_[lane_ids[k]];
    if (b.pv != nullptr)
      f[k] = b.circuit->derivative_with_source(t[k], y[k], isrc_[k]);
  }
}

}  // namespace pns::ehsim
