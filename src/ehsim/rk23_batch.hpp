// Lockstep round executor over N open RK23 integration windows.
//
// Rk23BatchStepper drives several independent Rk23Integrators through
// their open windows (begin_window .. step_window completion) in
// round-robin rounds: every lane still in lockstep attempts exactly one
// step per round, in lane order. Because each lane's numerics live
// entirely inside its own integrator and step_window() is bit-identical
// to advance() (see ehsim/rk23.hpp), the *interleave* is pure execution
// strategy: per lane, the sequence of floating-point operations -- and
// therefore the trajectory, the event roots, every output bit -- is
// exactly what a scalar advance() would produce, for any batch width and
// any lane order.
//
// Divergence fallback: a lane whose window drags on (its step size
// collapsed while its peers finished -- e.g. a stiff transient after
// brownout) stops holding the batch hostage after `divergence_rounds`
// attempts. It leaves lockstep and finishes the window in a tight scalar
// loop on the spot ("tail"). The calls it executes are the same calls in
// the same order, so the fallback cannot change its results either; it
// only changes who waits for whom.
#pragma once

#include <cstdint>
#include <span>

#include "ehsim/batch_state.hpp"
#include "ehsim/ode.hpp"
#include "ehsim/rk23.hpp"

#include "ehsim/sources.hpp"

namespace pns::ehsim {

class BatchRhs;

struct Rk23BatchOptions {
  /// Step attempts a lane may spend on one window inside the rounds
  /// before it leaves lockstep and finishes the window scalar. Purely a
  /// scheduling knob: results are bit-identical for any value >= 1.
  std::uint32_t divergence_rounds = 64;
};

/// Aggregate counters across every run_rounds() call of one stepper.
struct BatchStepStats {
  std::uint64_t rounds = 0;          ///< lockstep rounds executed
  std::uint64_t lockstep_steps = 0;  ///< step attempts inside rounds
  std::uint64_t tail_steps = 0;      ///< attempts finishing divergent lanes
  std::uint64_t divergences = 0;     ///< lane-windows that left lockstep
  std::uint64_t event_windows = 0;   ///< windows closed by an event root
  std::uint64_t simd_rounds = 0;     ///< rounds driven by run_rounds_simd
  std::uint64_t simd_lane_steps = 0; ///< lane attempts staged across lanes
  PvSolveStats kernel;  ///< packed-kernel solve accounting (BatchRhs)
};

class Rk23BatchStepper {
 public:
  explicit Rk23BatchStepper(Rk23BatchOptions options = {});

  /// Runs every kLockstep lane of `state` to window completion.
  ///
  /// Preconditions, per lane i with state.status[i] == kLockstep:
  /// integrators[i] has an open window (begin_window returned true) whose
  /// result accumulates into results[i], and state.rounds[i] counts the
  /// attempts already spent on that window (0 for a fresh window).
  /// Lanes in any other status are left untouched.
  ///
  /// On return every such lane is kIdle: its window completed (results[i]
  /// is exactly what a scalar advance() would have returned) and its
  /// mirrored columns in `state` are fresh. Windows that closed on an
  /// event root leave the integrator stopped at the root, ready for the
  /// caller to dispatch and re-plan.
  void run_rounds(std::span<Rk23Integrator* const> integrators,
                  std::span<IntegrationResult> results, BatchState& state);

  /// run_rounds() with the per-round stage math executed data-parallel
  /// across the active lanes (the rk23simd integrator kind): each round
  /// opens every lockstep lane's step attempt (Rk23Integrator::
  /// attempt_open), evaluates the four RK stages and the error norm
  /// across the whole active set -- stage combinations in width-4 vector
  /// chunks, derivative evaluations through `rhs` with the PV solves
  /// packed (ehsim/solar_cell_simd.hpp) -- then closes each attempt in
  /// lane order (attempt_close: accept/reject, events, divergence
  /// fallback). Every per-lane floating-point sequence is replicated
  /// exactly, so results are bit-identical to run_rounds(), which is
  /// bit-identical to scalar advance().
  ///
  /// `rhs` must be bound to the same circuits the integrators integrate,
  /// indexed by lane. Same pre/postconditions as run_rounds().
  void run_rounds_simd(std::span<Rk23Integrator* const> integrators,
                       std::span<IntegrationResult> results,
                       BatchState& state, BatchRhs& rhs);

  const BatchStepStats& stats() const { return stats_; }
  const Rk23BatchOptions& options() const { return opt_; }

 private:
  Rk23BatchOptions opt_;
  BatchStepStats stats_;

  // run_rounds_simd scratch (SoA over the active lane set), reused
  // across rounds and calls.
  std::vector<Rk23StepAttempt> attempts_;   // lane-indexed
  std::vector<std::size_t> active_;         // lane ids staging this round
  std::vector<double> ta_, ya_, ha_, k1a_, k2a_, k3a_, k4a_;
  std::vector<double> tsa_, ysa_, ynewa_, yerra_, erra_;
  std::vector<double> rtola_, atola_;
};

}  // namespace pns::ehsim
