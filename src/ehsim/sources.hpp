// Harvester / supply sources feeding the storage node.
//
// Everything upstream of the capacitor implements CurrentSource: given the
// node voltage and the time, return the current pushed into the node. Three
// concrete sources cover the paper's experiments:
//   * PvSource            -- solar array + irradiance profile (Figs. 12-14)
//   * ControlledSupply    -- bench supply with series resistance (Fig. 11)
//   * ConstantCurrent     -- analytic baseline for tests
#pragma once

#include <functional>
#include <memory>

#include "ehsim/solar_cell.hpp"

namespace pns::ehsim {

/// A device that injects current into the storage node.
class CurrentSource {
 public:
  virtual ~CurrentSource() = default;

  /// Current (A) into the node at node voltage `v` and time `t`.
  virtual double current(double v, double t) const = 0;

  /// Estimated maximum extractable power (W) at time `t`, maximised over
  /// the node voltage. Used by the power-neutrality analysis (Fig. 14);
  /// sources with no meaningful optimum may return 0.
  virtual double available_power(double /*t*/) const { return 0.0; }
};

/// PV array driven by an irradiance profile G(t) in W/m^2.
class PvSource : public CurrentSource {
 public:
  /// `irradiance` is sampled on demand; it must be callable for any t >= 0.
  PvSource(SolarCell cell, std::function<double(double)> irradiance);

  double current(double v, double t) const override;

  /// MPP power of the array under the irradiance at time t.
  double available_power(double t) const override;

  const SolarCell& cell() const { return cell_; }
  double irradiance_at(double t) const { return irradiance_(t); }

 private:
  SolarCell cell_;
  std::function<double(double)> irradiance_;
};

/// Ideal programmable supply behind a series resistor: I = (Vs(t) - v)/R.
/// When `diode_isolated` is set, the source can only push current (a
/// blocking diode), never absorb it.
class ControlledSupply : public CurrentSource {
 public:
  ControlledSupply(std::function<double(double)> v_source,
                   double series_resistance, bool diode_isolated = false);

  double current(double v, double t) const override;
  double available_power(double t) const override;

  double source_voltage_at(double t) const { return v_source_(t); }

 private:
  std::function<double(double)> v_source_;
  double series_resistance_;
  bool diode_isolated_;
};

/// Fixed current injection (test baseline).
class ConstantCurrentSource : public CurrentSource {
 public:
  explicit ConstantCurrentSource(double amps) : amps_(amps) {}
  double current(double /*v*/, double /*t*/) const override { return amps_; }

 private:
  double amps_;
};

}  // namespace pns::ehsim
