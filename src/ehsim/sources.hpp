// Harvester / supply sources feeding the storage node.
//
// Everything upstream of the capacitor implements CurrentSource: given the
// node voltage and the time, return the current pushed into the node. Three
// concrete sources cover the paper's experiments:
//   * PvSource            -- solar array + irradiance profile (Figs. 12-14)
//   * ControlledSupply    -- bench supply with series resistance (Fig. 11)
//   * ConstantCurrent     -- analytic baseline for tests
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>

#include "ehsim/pv_table.hpp"
#include "ehsim/solar_cell.hpp"

namespace pns::ehsim {

/// Accounting of the PV implicit solves behind a PvSource (and of the
/// packed kernel executing them in batched runs). Pure observability:
/// counting changes no arithmetic, and none of these numbers reach the
/// default CSV/JSON emitters -- they surface through pns_bench_report
/// and the batch stepper stats, where kernel wins must be attributable.
struct PvSolveStats {
  std::uint64_t calls = 0;         ///< current() evaluations
  std::uint64_t table_hits = 0;    ///< answered by the bilinear table
  std::uint64_t memo_hits = 0;     ///< exact (v, il) repeats from the memo
  std::uint64_t newton_solves = 0; ///< damped-Newton solves executed
  std::uint64_t newton_iterations = 0;  ///< iterations across those solves
  std::uint64_t warm_starts = 0;   ///< solves seeded from a nearby point
  std::uint64_t simd_lanes = 0;    ///< solves executed inside a packed kernel

  PvSolveStats& operator+=(const PvSolveStats& o) {
    calls += o.calls;
    table_hits += o.table_hits;
    memo_hits += o.memo_hits;
    newton_solves += o.newton_solves;
    newton_iterations += o.newton_iterations;
    warm_starts += o.warm_starts;
    simd_lanes += o.simd_lanes;
    return *this;
  }
};

/// A device that injects current into the storage node.
class CurrentSource {
 public:
  virtual ~CurrentSource() = default;

  /// Current (A) into the node at node voltage `v` and time `t`.
  virtual double current(double v, double t) const = 0;

  /// Estimated maximum extractable power (W) at time `t`, maximised over
  /// the node voltage. Used by the power-neutrality analysis (Fig. 14);
  /// sources with no meaningful optimum may return 0.
  virtual double available_power(double /*t*/) const { return 0.0; }

  /// Latest time T >= t such that the source's *time* dependence is
  /// provably constant over [t, T] (output may still vary with the node
  /// voltage). Sources that cannot vouch return `t`; truly
  /// time-invariant ones return +infinity. The steady-state coasting
  /// fast path (sim/engine.hpp) only jumps across vouched-for spans, so
  /// a conservative answer costs speed, never correctness.
  virtual double constant_until(double t) const { return t; }
};

/// PV array driven by an irradiance profile G(t) in W/m^2.
///
/// Two evaluation modes:
///   * Mode::kExact (default) -- every current() runs the exact Newton
///     solve, so results are bit-identical to calling
///     SolarCell::current directly. A memo of the last converged solve
///     short-circuits the repeated evaluations the co-simulation loop
///     produces at segment boundaries (FSAL restarts, metric sampling)
///     without perturbing any bit.
///   * Mode::kTabulated -- current() answers from a precomputed bilinear
///     I(V, G) table (PvTable) whose worst-case error is measured at
///     construction; outside the tabulated rectangle it falls back to the
///     exact Newton solve, warm-started from the last converged current
///     when the operating point moved by less than kWarmStartDeltaV /
///     kWarmStartDeltaIl.
///
/// The caches make const calls stateful: a PvSource must not be shared by
/// concurrently running simulations. Every engine/sweep worker constructs
/// its own source, so this only matters for hand-rolled callers.
class PvSource : public CurrentSource {
 public:
  enum class Mode { kExact, kTabulated };

  /// Operating-point deltas below which the tabulated mode's off-table
  /// fallback reuses the last converged current as the Newton seed.
  static constexpr double kWarmStartDeltaV = 0.25;   // V
  static constexpr double kWarmStartDeltaIl = 0.25;  // A

  /// `irradiance` is sampled on demand; it must be callable for any t >= 0.
  /// `table_spec` is only consulted in Mode::kTabulated.
  PvSource(SolarCell cell, std::function<double(double)> irradiance,
           Mode mode = Mode::kExact, PvTableSpec table_spec = {});

  /// Tabulated mode with an externally built table (must match `cell`).
  /// PvTable is immutable, so one table can be shared across the many
  /// sources of a sweep instead of each scenario re-running the ~25k
  /// Newton solves of a table build.
  PvSource(SolarCell cell, std::function<double(double)> irradiance,
           std::shared_ptr<const PvTable> table);

  double current(double v, double t) const override;

  /// Decomposition of one current(v, t) evaluation for the batched SIMD
  /// kernel (ehsim/solar_cell_simd.hpp): plan_current() classifies the
  /// evaluation without solving, the caller executes the table / Newton
  /// paths (possibly packed across lanes), and commit_newton() applies
  /// the cache update a direct current() call would have made. The
  /// classification and the seed are computed with exactly the
  /// operations current() uses, so plan -> execute -> commit is
  /// bit-identical to current() -- current() itself is implemented on
  /// top of this plan, keeping one copy of the logic.
  struct SolvePlan {
    enum class Path : unsigned char {
      kMemo,    ///< exact (v, il) repeat: `value` is the answer, no commit
      kTable,   ///< inside the tabulated rectangle: bilinear table lookup
      kNewton,  ///< damped Newton from `seed`; commit_newton() afterwards
    };
    Path path = Path::kNewton;
    double v = 0.0;      ///< node voltage of the evaluation
    double g = 0.0;      ///< irradiance at t (table lookup coordinate)
    double il = 0.0;     ///< photo-current (Newton target)
    double value = 0.0;  ///< the answer when path == kMemo
    double seed = 0.0;   ///< Newton start current when path == kNewton
    bool warm = false;   ///< seed reuses the last converged current
  };

  /// Classifies the evaluation at (v, t) and accounts it in
  /// solve_stats(). For kMemo/kTable plans there is nothing to commit.
  SolvePlan plan_current(double v, double t) const;

  /// Records the solved current of a kNewton plan: advances the
  /// memo/warm-start cache exactly as current() would and accounts
  /// `iters` Newton iterations (`packed` marks kernel-executed solves).
  void commit_newton(const SolvePlan& plan, double i, std::uint32_t iters,
                     bool packed) const;

  /// Lifetime solve accounting of this source (see PvSolveStats).
  const PvSolveStats& solve_stats() const { return stats_; }

  /// MPP power of the array under the irradiance at time t (memoised on
  /// the irradiance value; exact in both modes).
  double available_power(double t) const override;

  /// Declares how long the irradiance profile stays flat from a given
  /// time (e.g. PiecewiseLinear::flat_until over the backing trace).
  /// Unset, constant_until conservatively reports "unknown" (t).
  void set_irradiance_hold(std::function<double(double)> hold) {
    irradiance_hold_ = std::move(hold);
  }

  /// The irradiance hold window when declared; `t` otherwise.
  double constant_until(double t) const override {
    return irradiance_hold_ ? irradiance_hold_(t) : t;
  }

  Mode mode() const { return mode_; }

  /// The interpolation table; nullptr in Mode::kExact.
  const PvTable* table() const { return table_.get(); }

  const SolarCell& cell() const { return cell_; }
  double irradiance_at(double t) const { return irradiance_(t); }

 private:
  SolarCell cell_;
  std::function<double(double)> irradiance_;
  std::function<double(double)> irradiance_hold_;  ///< optional flat window
  Mode mode_;
  std::shared_ptr<const PvTable> table_;

  // Last converged Newton solve (memo + warm-start seed).
  struct SolveCache {
    double v = 0.0, il = 0.0, i = 0.0;
    bool valid = false;
  };
  mutable SolveCache solve_cache_;

  // Last MPP evaluation, keyed on the exact irradiance value.
  struct MppCache {
    double g = 0.0, power = 0.0;
    bool valid = false;
  };
  mutable MppCache mpp_cache_;

  mutable PvSolveStats stats_;
};

/// Ideal programmable supply behind a series resistor: I = (Vs(t) - v)/R.
/// When `diode_isolated` is set, the source can only push current (a
/// blocking diode), never absorb it.
class ControlledSupply : public CurrentSource {
 public:
  ControlledSupply(std::function<double(double)> v_source,
                   double series_resistance, bool diode_isolated = false);

  double current(double v, double t) const override;
  double available_power(double t) const override;

  double source_voltage_at(double t) const { return v_source_(t); }

 private:
  std::function<double(double)> v_source_;
  double series_resistance_;
  bool diode_isolated_;
};

/// Fixed current injection (test baseline).
class ConstantCurrentSource : public CurrentSource {
 public:
  explicit ConstantCurrentSource(double amps) : amps_(amps) {}
  double current(double /*v*/, double /*t*/) const override { return amps_; }
  double constant_until(double /*t*/) const override {
    return std::numeric_limits<double>::infinity();
  }

 private:
  double amps_;
};

}  // namespace pns::ehsim
