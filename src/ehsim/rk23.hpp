// Adaptive Bogacki-Shampine RK2(3) integrator with event localisation.
//
// This is the method behind Matlab's ODE23, which the paper uses for its
// Simulink parameter-selection study (Section III). The embedded 2nd-order
// solution provides the error estimate; the 3rd-order solution propagates.
// FSAL (first-same-as-last) gives 3 derivative evaluations per accepted
// step. Dense output is cubic Hermite over the accepted step, which is
// enough to localise threshold/brownout events to ~1 us.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "ehsim/ode.hpp"
#include "ehsim/stepper_pi.hpp"

namespace pns::ehsim {

/// Step-size control law of the adaptive integrator.
enum class StepControl {
  /// The original per-step rule: h * clamp(0.9 * err^(-1/3), 0.2, 5).
  /// Reproduces the pre-PI integrator bit for bit.
  kClamped,
  /// Proportional-integral controller (ehsim/stepper_pi.hpp): damps the
  /// grow/reject limit cycle, so quiescent stretches run at the largest
  /// tolerable step.
  kPi,
};

/// How threshold-event roots are localised inside an accepted step.
enum class EventLocalization {
  /// Bisection on the Hermite dense output (the original scheme).
  kBisection,
  /// Direct root solve on the dense-output cubic (ehsim/dense_output.hpp)
  /// for data-only threshold events; callback events still bisect.
  kDenseRoot,
};

/// Tolerances and step-size limits for Rk23Integrator.
struct Rk23Options {
  double rel_tol = 1e-6;
  double abs_tol = 1e-9;
  double max_step = 1e9;      ///< upper bound on step size (seconds)
  double min_step = 1e-12;    ///< below this the step is accepted anyway
  double initial_step = 0.0;  ///< 0 = choose automatically
  double event_tol = 1e-9;    ///< event time localisation tolerance (s)
  std::size_t max_steps_per_call = 50'000'000;  ///< runaway guard
  StepControl step_control = StepControl::kClamped;
  EventLocalization event_localization = EventLocalization::kBisection;
};

/// One staged step attempt of an open window, used by the batched SIMD
/// stepper (ehsim/rk23_batch): attempt_open() runs step_window()'s
/// prologue (step-size choice, runaway guard) and exposes the stage
/// inputs; the caller evaluates the four RK stages and the scaled error
/// norm -- packed across lanes, with the exact scalar arithmetic -- and
/// attempt_close() feeds them back into the accept/reject epilogue.
struct Rk23StepAttempt {
  // Filled by attempt_open():
  double t = 0.0;   ///< time at the start of the attempt
  double y = 0.0;   ///< state at the start of the attempt
  double h = 0.0;   ///< step size of this attempt
  double k1 = 0.0;  ///< FSAL stage: derivative at (t, y)
  bool end_capped = false;  ///< h shortened only to land on t_end
  double h_limit = 0.0;     ///< min(h_, max_step) before the end cap
  // Filled by the caller before attempt_close():
  double k2 = 0.0, k3 = 0.0, k4 = 0.0;
  double ynew = 0.0;  ///< 3rd-order solution at t + h
  double yerr = 0.0;  ///< embedded 2nd-order error estimate
  double err = 0.0;   ///< scaled error norm of yerr
};

/// Single-trajectory adaptive integrator. Typical use:
///
///   Rk23Integrator ig(system, opts);
///   ig.reset(0.0, y0);
///   auto res = ig.advance(t_end, events);
///   if (res.event_fired) { ...handle, maybe mutate system..., }
///   res = ig.advance(t_end, events);   // continues from the event time
///
/// After an event fires the integrator stops exactly at the event time; the
/// caller may change the system's parameters (load power, thresholds) and
/// call advance() again -- the integrator restarts cleanly (no stale FSAL).
class Rk23Integrator {
 public:
  Rk23Integrator(const OdeSystem& system, Rk23Options options = {});

  /// Sets the current time and state, discarding integration history.
  void reset(double t0, std::span<const double> y0);

  double time() const { return t_; }
  std::span<const double> state() const { return y_; }

  /// Step-size hint the next step attempt will start from.
  double step_size() const { return h_; }
  /// Whether the FSAL derivative cache is valid for (time(), state()).
  bool have_fsal() const { return have_f0_; }
  /// FSAL derivative of component `i`; meaningful only while have_fsal().
  double fsal_derivative(std::size_t i = 0) const { return f0_[i]; }
  /// Smallest |g| across the open window's events at the last event
  /// baseline -- how close the trajectory sits to its nearest watched
  /// threshold. +infinity when the window watches no events.
  double min_event_margin() const;

  /// Integrates forward until `t_end` or until the first event root,
  /// whichever comes first. Events are tested on every accepted step.
  /// Equivalent to begin_window() + step_window() until completion.
  IntegrationResult advance(double t_end,
                            std::span<const EventSpec> events = {});

  /// Incremental form of advance() for callers that interleave several
  /// trajectories (sim/batch_engine): begin_window() performs advance()'s
  /// prologue -- FSAL ensure, initial step guess, event baseline -- without
  /// taking a step, writes the trivial result into `result`, and returns
  /// true when there is integration work to do (false when t_end <=
  /// time(), matching advance()'s early return). The events storage must
  /// outlive the window.
  bool begin_window(double t_end, std::span<const EventSpec> events,
                    IntegrationResult& result);

  /// Attempts exactly one step of the open window: one rejected trial or
  /// one accepted step (with event scan and possible rewind), accumulating
  /// into the same `result` given to begin_window(). Returns true while
  /// the window is still open; false once it completed -- `result` then
  /// equals what advance() would have returned. The interleaved sequence
  /// of FP operations per trajectory is identical to advance()'s, so a
  /// window-stepped run is bit-identical to a plain advance().
  bool step_window(IntegrationResult& result);

  /// Split form of step_window() for the batched SIMD stepper: performs
  /// the prologue and fills the attempt's inputs. Returns false (and
  /// completes `result`) when the window is already done -- exactly when
  /// step_window() would have returned false without attempting a step.
  /// Only dimension-1 systems are supported (the batched engine
  /// integrates the single-node circuit).
  bool attempt_open(Rk23StepAttempt& at, IntegrationResult& result);

  /// Completes the attempt: accept/reject, step-size control, event scan
  /// and possible rewind. Same return convention as step_window(). The
  /// caller must have filled k2..k4/ynew/yerr/err with values
  /// bit-identical to what step_window() would have computed; the
  /// epilogue is the very same code (finish_attempt), so the resulting
  /// trajectory is bit-identical too.
  bool attempt_close(const Rk23StepAttempt& at, IntegrationResult& result);

  const Rk23Options& options() const { return opt_; }

  /// Invalidates cached derivatives; call after mutating the OdeSystem's
  /// parameters mid-run (the FSAL derivative would otherwise be stale).
  /// Also forgets the PI controller's error history -- errors measured
  /// under the old right-hand side say nothing about the new one.
  void notify_discontinuity() {
    have_f0_ = false;
    pi_.reset();
  }

  /// Statistics for the whole lifetime of the integrator.
  std::size_t total_steps() const { return total_steps_; }
  std::size_t total_rejected() const { return total_rejected_; }

 private:
  /// Cubic Hermite interpolation inside the last accepted step.
  void interpolate(double t, std::span<double> y_out) const;

  /// Cubic Hermite interpolation of a single state component.
  double interpolate_one(double t, std::size_t i) const;

  /// Evaluates event g at (t, y interpolated inside last step). Threshold
  /// events interpolate only y[0]; general events use the event_y_ scratch
  /// buffer (hence non-const).
  double event_value(const EventSpec& ev, double t);

  double initial_step_guess(double t_end) const;

  /// Shared epilogue of step_window()/attempt_close(): reject (with
  /// step-size cut) or accept (commit, FSAL, step growth, event scan and
  /// rewind). Reads the stage buffers k1_..k4_/ynew_/yerr_.
  bool finish_attempt(double h, bool end_capped, double h_limit, double err,
                      IntegrationResult& result);

  const OdeSystem* system_;
  Rk23Options opt_;

  double t_ = 0.0;
  std::vector<double> y_;
  std::vector<double> f0_;  // derivative at (t_, y_) -- FSAL cache
  bool have_f0_ = false;

  // Last accepted step (for dense output / event bisection).
  double step_t0_ = 0.0, step_t1_ = 0.0;
  std::vector<double> step_y0_, step_y1_, step_f0_, step_f1_;

  // Work arrays. advance() is allocation-free in steady state: the event
  // buffers below grow once to the largest event count seen and are then
  // reused across calls.
  std::vector<double> k1_, k2_, k3_, k4_, ytmp_, yerr_, ynew_;
  std::vector<double> g_prev_, g_curr_;  // event values across a step
  std::vector<double> event_y_;          // scratch for general-event eval

  double h_ = 0.0;  // current step size
  PiStepController pi_;  // used only in StepControl::kPi
  std::size_t total_steps_ = 0;
  std::size_t total_rejected_ = 0;

  // Open stepping window (begin_window/step_window).
  double win_t_end_ = 0.0;
  std::span<const EventSpec> win_events_{};
  std::size_t win_steps_ = 0;  // runaway guard, counts attempted steps
};

}  // namespace pns::ehsim
