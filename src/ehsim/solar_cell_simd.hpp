// Packed (SIMD) kernels for the PV co-simulation hot path.
//
// The batched lockstep engine (sim/batch_engine + ehsim/rk23_batch) steps
// many independent scenarios in lockstep; at every RK stage each lane asks
// its circuit for dVC/dt, and for solar scenarios that means a damped
// Newton solve of the implicit diode equation (ehsim/solar_cell.cpp) or a
// bilinear table lookup (ehsim/pv_table.cpp). This header packs those
// per-lane solves into width-kDefaultWidth vector chunks:
//
//   * newton_current_batch  -- masked lockstep Newton: every lane executes
//     exactly the scalar iteration sequence (same expressions, same
//     association order, scalar std::exp per lane), lanes freeze as they
//     converge, and the chunk retires when all lanes have.
//   * pv_table_current_batch -- the bilinear interpolation with vector
//     arithmetic and scalar gathers.
//   * BatchRhs -- binds a batch of EhCircuits and evaluates a whole
//     active-lane set's derivatives with the PV solves packed.
//
// Bit-identity contract: both kernels produce *bit-identical* results to
// their scalar counterparts, on every input. That is possible because the
// scalar code is straight-line IEEE-754 double arithmetic plus std::exp
// (which the kernel keeps scalar, one call per active lane per iteration).
// A cheap startup self-test (simd_kernel_self_test) re-proves the claim on
// the running platform; if it fails -- e.g. an exotic target where the
// compiler contracts vector expressions differently despite
// -ffp-contract=off -- this TU degrades to per-lane scalar execution and
// the batched engine stays correct, merely unaccelerated.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ehsim/circuit.hpp"
#include "ehsim/pv_table.hpp"
#include "ehsim/solar_cell.hpp"
#include "ehsim/sources.hpp"

namespace pns::ehsim {

/// One pending Newton solve: cell parameters, operating point, seed.
struct NewtonLane {
  const SolarCell* cell = nullptr;
  double v = 0.0;     ///< terminal voltage
  double il = 0.0;    ///< photo-current (residual target)
  double seed = 0.0;  ///< Newton start current
};

/// One pending bilinear lookup. Precondition: table->covers(v, g).
struct TableLane {
  const PvTable* table = nullptr;
  double v = 0.0;
  double g = 0.0;
};

/// True when this build compiled the kernels over compiler vector
/// extensions (PNS_SIMD=auto on GCC/Clang); false in the PNS_SIMD=off leg.
bool simd_kernel_compiled();

/// Runtime self-test: packed kernels vs. scalar on a probe set, compared
/// bit for bit. Memoised after the first call; cheap (~100 solves).
bool simd_kernel_self_test();

/// Test/diagnostic override: force the per-lane scalar path even where the
/// packed kernels are available and proven. Global, not thread-local --
/// intended for test setup, not for toggling mid-run.
void simd_force_scalar(bool force);
bool simd_forced_scalar();

/// True when the packed kernels will actually be used: compiled in, not
/// forced off, and the self-test passed on this platform.
bool simd_kernel_active();

/// Solves every lane; out[k] / iters[k] receive lane k's converged current
/// and iteration count. Returns the number of leading lanes executed inside
/// full-width vector chunks (0 when the kernel degraded to scalar; the
/// remainder past a partial chunk always drains scalar). Results are
/// bit-identical either way.
std::size_t newton_current_batch(std::span<const NewtonLane> lanes,
                                 double* out, std::uint32_t* iters);

/// Interpolates every lane; returns the packed-lane count as above.
std::size_t pv_table_current_batch(std::span<const TableLane> lanes,
                                   double* out);

namespace simd_detail {
/// The packed implementations, callable directly (bypassing the
/// active/forced gates) so tests can pit them against scalar on both the
/// native and the fallback VecD backends. Same return as the _batch
/// wrappers: the count of lanes that went through vector chunks.
std::size_t newton_packed(std::span<const NewtonLane> lanes, double* out,
                          std::uint32_t* iters);
std::size_t bilinear_packed(std::span<const TableLane> lanes, double* out);
}  // namespace simd_detail

/// Derivative evaluator for a batch of bound circuits.
///
/// bind() inspects each lane's circuit: lanes whose source is a PvSource
/// are "packable" -- their stage evaluations decompose via
/// PvSource::plan_current into memo hits, table lookups and Newton solves,
/// the latter two executed by the packed kernels above, and the cache
/// update re-applied through PvSource::commit_newton. Everything else
/// falls back to the circuit's scalar derivatives() per lane. Either way
/// eval() is bit-identical to calling derivatives() lane by lane in lane
/// order, because plan/execute/commit *is* PvSource::current (one copy of
/// the logic, see sources.cpp).
class BatchRhs {
 public:
  /// Binds lane i to circuits[i] (borrowed; may be nullptr for lanes the
  /// stepper will never evaluate). Resolves the PvSource fast path.
  void bind(std::span<const EhCircuit* const> circuits);

  /// Number of bound lanes whose solves the packed kernels can take.
  std::size_t packable_lanes() const;

  /// Evaluates dy/dt for an active-lane set: entry k uses the binding of
  /// lane lane_ids[k] at time t[k], state y[k], writing f[k]. Lane ids
  /// must be distinct (each bound circuit owns per-source caches).
  void eval(std::span<const std::size_t> lane_ids, const double* t,
            const double* y, double* f);

  /// Aggregate PV-solve accounting across eval() calls that entered the
  /// packed path (two or more Newton-biased lanes; calls with fewer are
  /// answered scalar and counted only by each PvSource's solve_stats()).
  const PvSolveStats& stats() const { return stats_; }

 private:
  struct Binding {
    const EhCircuit* circuit = nullptr;
    const PvSource* pv = nullptr;  ///< non-null iff the lane is packable
    /// Exact-mode PV (no interpolation table): solves are Newton-biased,
    /// which is what the packed path actually accelerates.
    bool newton_biased = false;
  };
  std::vector<Binding> lanes_;
  PvSolveStats stats_;

  // eval() scratch, reused across calls.
  std::vector<NewtonLane> newton_;
  std::vector<PvSource::SolvePlan> newton_plans_;
  std::vector<std::size_t> newton_slot_;  ///< entry index k per solve
  std::vector<double> newton_i_;
  std::vector<std::uint32_t> newton_iters_;
  std::vector<TableLane> table_;
  std::vector<std::size_t> table_slot_;
  std::vector<double> table_i_;
  std::vector<double> isrc_;  ///< per-entry source current
};

}  // namespace pns::ehsim
