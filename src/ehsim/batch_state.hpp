// Lane bookkeeping for batched lockstep integration.
//
// A batch run advances N independent trajectories ("lanes") through
// shared stepping rounds (ehsim/rk23_batch.hpp). Each lane keeps its
// numerics inside its own Rk23Integrator -- batching is an execution
// strategy, never a model change -- but the round scheduler needs a
// compact, cache-friendly view of every lane to decide who steps next,
// who diverged and who retired. BatchState is that view: a
// structure-of-arrays block mirroring the hot per-lane scalars (time,
// node voltage, step size, FSAL derivative, event margin) plus the
// per-window round counters the divergence policy reads. The mirror is
// observational: nothing in the integration reads it back, so a stale or
// absent mirror can never change a trajectory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pns::ehsim {

class Rk23Integrator;

/// Where a lane stands in the batch lifecycle.
enum class LaneStatus : std::uint8_t {
  kIdle,      ///< between windows: needs a plan before it can step
  kLockstep,  ///< window open, stepping in the shared rounds
  kTail,      ///< window open but left lockstep (step divergence);
              ///< finishing the window in a tight scalar loop
  kRetired,   ///< permanently out of lockstep (e.g. a coast was taken);
              ///< finishes the remaining simulation independently
  kDone,      ///< reached its end time
};

const char* to_string(LaneStatus s);

/// SoA mirror of N lanes' hot integration state. Columns are
/// lane-indexed and resized together; resize() also resets every lane to
/// kIdle with zeroed counters.
struct BatchState {
  // --- mirrored integrator state (refreshed by observe()) -------------
  std::vector<double> t;       ///< lane simulation time (s)
  std::vector<double> v;       ///< state component 0 (node voltage, V)
  std::vector<double> h;       ///< step-size hint for the next attempt
  std::vector<double> f;       ///< FSAL derivative of component 0 (NaN
                               ///< while the lane's FSAL cache is stale)
  std::vector<double> margin;  ///< min |event g|: distance to the nearest
                               ///< watched threshold (+inf: none watched)

  // --- per-window scheduling state -------------------------------------
  std::vector<double> t_stop;          ///< open window's stop point
  std::vector<std::uint32_t> rounds;   ///< step attempts in the open window
  std::vector<LaneStatus> status;

  // --- lifetime counters ------------------------------------------------
  std::vector<std::uint64_t> lockstep_steps;  ///< attempts inside rounds
  std::vector<std::uint64_t> tail_steps;      ///< attempts outside rounds

  std::size_t size() const { return status.size(); }
  void resize(std::size_t n);

  /// Refreshes lane `i`'s mirrored columns from its integrator.
  void observe(std::size_t i, const Rk23Integrator& integrator);

  /// Number of lanes currently in `s`.
  std::size_t count(LaneStatus s) const;
  /// True when every lane reached kDone.
  bool all_done() const;
};

}  // namespace pns::ehsim
