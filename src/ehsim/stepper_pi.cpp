#include "ehsim/stepper_pi.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace pns::ehsim {

namespace {

// Errors at (numerically) zero would send err^(-beta) to infinity; below
// this floor the step is limited by max_factor anyway.
constexpr double kErrFloor = 1e-12;

}  // namespace

PiStepController::PiStepController(PiControllerOptions options)
    : opt_(options) {
  PNS_EXPECTS(opt_.order > 0.0);
  PNS_EXPECTS(opt_.safety > 0.0);
  PNS_EXPECTS(opt_.min_factor > 0.0 && opt_.min_factor <= 1.0);
  PNS_EXPECTS(opt_.max_factor >= 1.0);
}

void PiStepController::reset() {
  prev_err_ = 0.0;
  just_rejected_ = false;
}

double PiStepController::on_accepted(double err, bool record_history) {
  const double e = std::max(err, kErrFloor);
  double factor;
  if (prev_err_ > 0.0) {
    // PI law: proportional term on this step's error, integral term on
    // the previous one. prev_err <= 1 (it was accepted), so the integral
    // term only ever damps growth -- a near-rejection (err ~ 1) keeps the
    // next step conservative even if the current error is tiny.
    factor = opt_.safety * std::pow(e, -opt_.beta1 / opt_.order) *
             std::pow(std::max(prev_err_, kErrFloor),
                      opt_.beta2 / opt_.order);
  } else {
    // No history yet (first step, or first after a discontinuity): fall
    // back to the elementary controller.
    factor = opt_.safety * std::pow(e, -1.0 / opt_.order);
  }
  factor = std::clamp(factor, opt_.min_factor, opt_.max_factor);
  if (just_rejected_) factor = std::min(factor, 1.0);
  if (record_history) {
    just_rejected_ = false;
    prev_err_ = e;
  }
  return factor;
}

double PiStepController::on_rejected(double err) {
  ++rejections_;
  just_rejected_ = true;
  const double e = std::max(err, 1.0);
  const double factor =
      opt_.safety * std::pow(e, -1.0 / opt_.order);
  return std::clamp(factor, opt_.min_factor, 1.0);
}

}  // namespace pns::ehsim
