// Buffer capacitor model.
//
// The paper's whole point is that only a *tiny* capacitor (47 mF vs the
// multi-farad supercapacitors of energy-neutral designs) is needed when
// consumption tracks harvest. The model includes the two parasitics that
// matter at this scale: equivalent series resistance (voltage step under
// load-current steps) and a parallel leakage resistance.
#pragma once

namespace pns::ehsim {

/// Capacitor with ESR and parallel leakage.
struct Capacitor {
  double capacitance;          ///< F
  double esr = 0.0;            ///< ohm, equivalent series resistance
  double leakage_resistance = 1e9;  ///< ohm, parallel self-discharge path

  /// Stored energy at internal voltage v: E = C v^2 / 2 (J).
  double energy(double v) const;

  /// Stored charge at internal voltage v: Q = C v (C).
  double charge(double v) const;

  /// Self-discharge current at internal voltage v (A).
  double leakage_current(double v) const;

  /// Terminal voltage when sourcing `i_out` amps from internal voltage v
  /// (drops across the ESR).
  double terminal_voltage(double v, double i_out) const;

  /// Voltage change produced by extracting charge `dq` (C) at voltage v,
  /// ignoring parasitics: dv = dq / C. Used in capacitance sizing.
  double voltage_drop_for_charge(double dq) const;
};

/// Returns the capacitance (F) required to supply charge `q` while the
/// voltage falls by no more than `dv_allowed` -- the sizing rule behind
/// Table I of the paper.
double required_capacitance(double q, double dv_allowed);

}  // namespace pns::ehsim
