// Single-diode photovoltaic model (paper eq. 4) with Newton solution.
//
//   I = Il - I0*(exp((V + Rs*I)/(N*VT)) - 1) - (V + Rs*I)/Rp
//
// The implicit equation is solved for terminal current I by damped
// Newton-Raphson (the residual is strictly monotone in I so convergence is
// global). N*VT and the series cell count are lumped into one thermal
// voltage parameter `vt_eff`. Photo-current scales linearly with
// irradiance: Il(G) = il_ref * G / g_ref.
//
// Calibration: `SolarCell::calibrate` fits (i0, vt_eff, il_ref) so the
// model reproduces a measured (Voc, Isc, Vmpp) triple -- we target the IV
// curve of the paper's 1340 cm^2 monocrystalline array (Fig. 13):
// Isc ~ 1.15 A, Voc ~ 6.8 V, MPP ~ 5.4 W at 5.3 V.
#pragma once

#include <cstdint>

#include "util/interp.hpp"

namespace pns::ehsim {

/// Electrical parameters of the lumped single-diode model.
struct SolarCellParams {
  double i0;      ///< diode saturation current (A)
  double vt_eff;  ///< lumped N * n_series * VT (V)
  double rs;      ///< series resistance (ohm)
  double rp;      ///< parallel (shunt) resistance (ohm)
  double il_ref;  ///< photo-current at reference irradiance (A)
  double g_ref;   ///< reference irradiance (W/m^2), typically 1000
};

/// Maximum-power-point summary for a given irradiance.
struct MppPoint {
  double voltage;  ///< V at maximum power
  double current;  ///< A at maximum power
  double power;    ///< W at maximum power
};

/// Lumped PV cell/array. Thread-compatible: const methods are re-entrant.
class SolarCell {
 public:
  explicit SolarCell(SolarCellParams params);

  const SolarCellParams& params() const { return params_; }

  /// Photo-current for irradiance G (W/m^2); clamped at 0 for G <= 0.
  double photo_current(double irradiance) const;

  /// Terminal current at terminal voltage `v` given photo-current `il`.
  /// Negative values mean the cell is absorbing (v beyond open circuit).
  double current_from_photo(double v, double il) const;

  /// Same solve but starting Newton from `i_seed` instead of `il`. With a
  /// seed near the root this converges in 1-3 iterations; the converged
  /// value agrees with current_from_photo to the solver tolerance (~1e-12
  /// relative) but is not guaranteed bit-identical, so callers needing
  /// exact reproducibility must use current_from_photo.
  double current_from_photo_seeded(double v, double il, double i_seed) const;

  /// current_from_photo_seeded that also reports the number of Newton
  /// iterations executed (solver observability; `iters` may be null).
  /// Seeding with `il` makes it bit-identical to current_from_photo.
  double current_from_photo_counted(double v, double il, double i_seed,
                                    std::uint32_t* iters) const;

  /// Terminal current at voltage `v` under irradiance `g`.
  double current(double v, double irradiance) const;

  /// Terminal power P = V*I at voltage `v` under irradiance `g`.
  double power(double v, double irradiance) const;

  /// Short-circuit current under irradiance `g`.
  double short_circuit_current(double irradiance) const;

  /// Open-circuit voltage under irradiance `g` (0 when dark).
  double open_circuit_voltage(double irradiance) const;

  /// Maximum power point under irradiance `g` (golden-section search).
  MppPoint mpp(double irradiance) const;

  /// Samples the IV curve at `points` evenly spaced voltages in
  /// [0, Voc(g)]; returns V -> I as a piecewise-linear function.
  pns::PiecewiseLinear iv_curve(double irradiance,
                                std::size_t points = 64) const;

  /// Returns an electrically equivalent array scaled in area by `factor`
  /// (currents scale up, resistances scale down).
  SolarCell scaled_area(double factor) const;

  /// Fits (i0, vt_eff, il_ref) so that at `g_ref` the model achieves the
  /// given open-circuit voltage, short-circuit current and MPP voltage,
  /// with the supplied parasitics. Throws std::invalid_argument when the
  /// targets are inconsistent (e.g. vmpp >= voc).
  static SolarCell calibrate(double voc, double isc, double vmpp,
                             double rs = 0.3, double rp = 200.0,
                             double g_ref = 1000.0);

 private:
  /// Damped Newton on the implicit diode equation from `i_start`.
  /// `iters` (optional) receives the number of iterations executed.
  double newton_current(double v, double il, double i_start,
                        std::uint32_t* iters = nullptr) const;

  SolarCellParams params_;
};

}  // namespace pns::ehsim
