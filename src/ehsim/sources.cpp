#include "ehsim/sources.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace pns::ehsim {

PvSource::PvSource(SolarCell cell, std::function<double(double)> irradiance,
                   Mode mode, PvTableSpec table_spec)
    : cell_(std::move(cell)),
      irradiance_(std::move(irradiance)),
      mode_(mode) {
  PNS_EXPECTS(static_cast<bool>(irradiance_));
  if (mode_ == Mode::kTabulated)
    table_ = std::make_shared<const PvTable>(cell_, table_spec);
}

PvSource::PvSource(SolarCell cell, std::function<double(double)> irradiance,
                   std::shared_ptr<const PvTable> table)
    : cell_(std::move(cell)),
      irradiance_(std::move(irradiance)),
      mode_(Mode::kTabulated),
      table_(std::move(table)) {
  PNS_EXPECTS(static_cast<bool>(irradiance_));
  PNS_EXPECTS(table_ != nullptr);
}

double PvSource::current(double v, double t) const {
  // current() is the plan executed inline, so the scalar path and the
  // batched kernel path (plan -> packed solve -> commit) share one copy
  // of the classification, seeding and cache logic -- they cannot drift.
  const SolvePlan plan = plan_current(v, t);
  switch (plan.path) {
    case SolvePlan::Path::kMemo:
      return plan.value;
    case SolvePlan::Path::kTable:
      return table_->current(plan.v, plan.g);
    case SolvePlan::Path::kNewton:
      break;
  }
  std::uint32_t iters = 0;
  const double i =
      cell_.current_from_photo_counted(plan.v, plan.il, plan.seed, &iters);
  commit_newton(plan, i, iters, /*packed=*/false);
  return i;
}

PvSource::SolvePlan PvSource::plan_current(double v, double t) const {
  ++stats_.calls;
  SolvePlan plan;
  plan.v = v;
  plan.g = irradiance_(t);
  if (table_ && table_->covers(v, plan.g)) {
    ++stats_.table_hits;
    plan.path = SolvePlan::Path::kTable;
    return plan;
  }

  plan.il = cell_.photo_current(plan.g);
  if (solve_cache_.valid && v == solve_cache_.v &&
      plan.il == solve_cache_.il) {
    ++stats_.memo_hits;
    plan.path = SolvePlan::Path::kMemo;
    plan.value = solve_cache_.i;
    return plan;
  }

  plan.path = SolvePlan::Path::kNewton;
  if (table_ && solve_cache_.valid &&
      std::abs(v - solve_cache_.v) < kWarmStartDeltaV &&
      std::abs(plan.il - solve_cache_.il) < kWarmStartDeltaIl) {
    // Off-table fallback in tabulated mode: the exact-reproducibility
    // contract is already relaxed, so warm-start the Newton iteration.
    plan.seed = solve_cache_.i;
    plan.warm = true;
  } else {
    // Start at the photo-current (see SolarCell::current_from_photo).
    plan.seed = plan.il;
  }
  return plan;
}

void PvSource::commit_newton(const SolvePlan& plan, double i,
                             std::uint32_t iters, bool packed) const {
  PNS_EXPECTS(plan.path == SolvePlan::Path::kNewton);
  ++stats_.newton_solves;
  stats_.newton_iterations += iters;
  if (plan.warm) ++stats_.warm_starts;
  if (packed) ++stats_.simd_lanes;
  solve_cache_ = {plan.v, plan.il, i, true};
}

double PvSource::available_power(double t) const {
  const double g = irradiance_(t);
  if (mpp_cache_.valid && g == mpp_cache_.g) return mpp_cache_.power;
  const double p = cell_.mpp(g).power;
  mpp_cache_ = {g, p, true};
  return p;
}

ControlledSupply::ControlledSupply(std::function<double(double)> v_source,
                                   double series_resistance,
                                   bool diode_isolated)
    : v_source_(std::move(v_source)),
      series_resistance_(series_resistance),
      diode_isolated_(diode_isolated) {
  PNS_EXPECTS(static_cast<bool>(v_source_));
  PNS_EXPECTS(series_resistance_ > 0.0);
}

double ControlledSupply::current(double v, double t) const {
  const double i = (v_source_(t) - v) / series_resistance_;
  if (diode_isolated_) return std::max(0.0, i);
  return i;
}

double ControlledSupply::available_power(double t) const {
  // Max power transfer at v = Vs/2: P = Vs^2 / (4 R).
  const double vs = v_source_(t);
  return vs * vs / (4.0 * series_resistance_);
}

}  // namespace pns::ehsim
