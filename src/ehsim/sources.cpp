#include "ehsim/sources.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace pns::ehsim {

PvSource::PvSource(SolarCell cell, std::function<double(double)> irradiance,
                   Mode mode, PvTableSpec table_spec)
    : cell_(std::move(cell)),
      irradiance_(std::move(irradiance)),
      mode_(mode) {
  PNS_EXPECTS(static_cast<bool>(irradiance_));
  if (mode_ == Mode::kTabulated)
    table_ = std::make_shared<const PvTable>(cell_, table_spec);
}

PvSource::PvSource(SolarCell cell, std::function<double(double)> irradiance,
                   std::shared_ptr<const PvTable> table)
    : cell_(std::move(cell)),
      irradiance_(std::move(irradiance)),
      mode_(Mode::kTabulated),
      table_(std::move(table)) {
  PNS_EXPECTS(static_cast<bool>(irradiance_));
  PNS_EXPECTS(table_ != nullptr);
}

double PvSource::current(double v, double t) const {
  const double g = irradiance_(t);
  if (table_ && table_->covers(v, g)) return table_->current(v, g);

  const double il = cell_.photo_current(g);
  if (solve_cache_.valid && v == solve_cache_.v && il == solve_cache_.il)
    return solve_cache_.i;

  double i;
  if (table_ && solve_cache_.valid &&
      std::abs(v - solve_cache_.v) < kWarmStartDeltaV &&
      std::abs(il - solve_cache_.il) < kWarmStartDeltaIl) {
    // Off-table fallback in tabulated mode: the exact-reproducibility
    // contract is already relaxed, so warm-start the Newton iteration.
    i = cell_.current_from_photo_seeded(v, il, solve_cache_.i);
  } else {
    i = cell_.current_from_photo(v, il);
  }
  solve_cache_ = {v, il, i, true};
  return i;
}

double PvSource::available_power(double t) const {
  const double g = irradiance_(t);
  if (mpp_cache_.valid && g == mpp_cache_.g) return mpp_cache_.power;
  const double p = cell_.mpp(g).power;
  mpp_cache_ = {g, p, true};
  return p;
}

ControlledSupply::ControlledSupply(std::function<double(double)> v_source,
                                   double series_resistance,
                                   bool diode_isolated)
    : v_source_(std::move(v_source)),
      series_resistance_(series_resistance),
      diode_isolated_(diode_isolated) {
  PNS_EXPECTS(static_cast<bool>(v_source_));
  PNS_EXPECTS(series_resistance_ > 0.0);
}

double ControlledSupply::current(double v, double t) const {
  const double i = (v_source_(t) - v) / series_resistance_;
  if (diode_isolated_) return std::max(0.0, i);
  return i;
}

double ControlledSupply::available_power(double t) const {
  // Max power transfer at v = Vs/2: P = Vs^2 / (4 R).
  const double vs = v_source_(t);
  return vs * vs / (4.0 * series_resistance_);
}

}  // namespace pns::ehsim
