#include "ehsim/sources.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace pns::ehsim {

PvSource::PvSource(SolarCell cell, std::function<double(double)> irradiance)
    : cell_(std::move(cell)), irradiance_(std::move(irradiance)) {
  PNS_EXPECTS(static_cast<bool>(irradiance_));
}

double PvSource::current(double v, double t) const {
  return cell_.current(v, irradiance_(t));
}

double PvSource::available_power(double t) const {
  return cell_.mpp(irradiance_(t)).power;
}

ControlledSupply::ControlledSupply(std::function<double(double)> v_source,
                                   double series_resistance,
                                   bool diode_isolated)
    : v_source_(std::move(v_source)),
      series_resistance_(series_resistance),
      diode_isolated_(diode_isolated) {
  PNS_EXPECTS(static_cast<bool>(v_source_));
  PNS_EXPECTS(series_resistance_ > 0.0);
}

double ControlledSupply::current(double v, double t) const {
  const double i = (v_source_(t) - v) / series_resistance_;
  if (diode_isolated_) return std::max(0.0, i);
  return i;
}

double ControlledSupply::available_power(double t) const {
  // Max power transfer at v = Vs/2: P = Vs^2 / (4 R).
  const double vs = v_source_(t);
  return vs * vs / (4.0 * series_resistance_);
}

}  // namespace pns::ehsim
