#include "ehsim/circuit.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace pns::ehsim {

EhCircuit::EhCircuit(const CurrentSource& source, const Load& load,
                     Capacitor cap)
    : source_(&source), load_(&load), cap_(cap) {
  PNS_EXPECTS(cap_.capacitance > 0.0);
}

void EhCircuit::derivatives(double t, std::span<const double> y,
                            std::span<double> dydt) const {
  const double v = y[0];
  double dv = net_current(v, t) / cap_.capacitance;
  // The node voltage cannot go negative: clamp the derivative at 0 V.
  if (v <= 0.0 && dv < 0.0) dv = 0.0;
  dydt[0] = dv;
}

double EhCircuit::net_current(double v, double t) const {
  return source_->current(v, t) - load_->current(v, t) -
         cap_.leakage_current(v);
}

double EhCircuit::derivative_with_source(double t, double v,
                                         double i_source) const {
  // Mirrors derivatives()/net_current() term for term (same association
  // order), with the source term already evaluated.
  const double net =
      i_source - load_->current(v, t) - cap_.leakage_current(v);
  double dv = net / cap_.capacitance;
  if (v <= 0.0 && dv < 0.0) dv = 0.0;
  return dv;
}

double EhCircuit::time_invariant_until(double t) const {
  return std::min(source_->constant_until(t), load_->constant_until(t));
}

double EhCircuit::equilibrium_voltage(double t, double v_lo,
                                      double v_hi) const {
  PNS_EXPECTS(v_lo < v_hi);
  double f_lo = net_current(v_lo, t);
  double f_hi = net_current(v_hi, t);
  if (f_lo * f_hi > 0.0)
    return std::abs(f_lo) < std::abs(f_hi) ? v_lo : v_hi;
  for (int iter = 0; iter < 100 && (v_hi - v_lo) > 1e-9; ++iter) {
    const double mid = 0.5 * (v_lo + v_hi);
    const double f_mid = net_current(mid, t);
    if (f_lo * f_mid <= 0.0) {
      v_hi = mid;
      f_hi = f_mid;
    } else {
      v_lo = mid;
      f_lo = f_mid;
    }
  }
  return 0.5 * (v_lo + v_hi);
}

}  // namespace pns::ehsim
