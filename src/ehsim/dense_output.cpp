#include "ehsim/dense_output.hpp"

#include <algorithm>
#include <cmath>

namespace pns::ehsim {

HermiteCubic HermiteCubic::from_step(double h, double y0, double y1,
                                     double f0, double f1) {
  // Expansion of the Hermite basis h00/h10/h01/h11 in s = (t - t0)/h,
  // with the derivative terms scaled by h (chain rule).
  HermiteCubic c;
  const double hf0 = h * f0;
  const double hf1 = h * f1;
  c.c0 = y0;
  c.c1 = hf0;
  c.c2 = -3.0 * y0 + 3.0 * y1 - 2.0 * hf0 - hf1;
  c.c3 = 2.0 * y0 - 2.0 * y1 + hf0 + hf1;
  return c;
}

namespace {

/// Refines the single root of g(s) = cubic(s) - level inside the
/// monotone bracket [lo, hi] (g changes sign across it) with Newton
/// iterations safeguarded by bisection. Deterministic; ~3-6 iterations
/// for the smooth cubics dense output produces.
double refine_root(const HermiteCubic& cubic, double level, double lo,
                   double hi, double g_lo, double s_tol) {
  double s = 0.5 * (lo + hi);
  for (int it = 0; it < 64 && (hi - lo) > s_tol; ++it) {
    const double g = cubic.eval(s) - level;
    // Shrink the bracket around the root.
    if ((g_lo < 0.0) == (g < 0.0)) {
      lo = s;
      g_lo = g;
    } else {
      hi = s;
    }
    const double d = cubic.deriv(s);
    double next = d != 0.0 ? s - g / d : lo;
    // Newton step outside the bracket (or stalled): bisect instead.
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    s = next;
  }
  return hi;  // first point at/after the sign change, as bisection returns
}

}  // namespace

CrossingResult earliest_crossing(const HermiteCubic& cubic, double level,
                                 EventDirection direction, double s_tol) {
  // Split [0, 1] at the cubic's critical points (roots of the derivative
  // quadratic): each piece is monotone and holds at most one crossing, so
  // scanning pieces in order yields the earliest root.
  double brk[4] = {0.0, 1.0, 1.0, 1.0};
  int n_brk = 1;
  const double a = 3.0 * cubic.c3, b = 2.0 * cubic.c2, c = cubic.c1;
  if (a != 0.0) {
    const double disc = b * b - 4.0 * a * c;
    if (disc > 0.0) {
      const double sq = std::sqrt(disc);
      // Stable quadratic roots (avoid cancellation on the small root).
      const double q = -0.5 * (b + std::copysign(sq, b));
      double r1 = q / a;
      double r2 = c != 0.0 && q != 0.0 ? c / q : r1;
      if (r1 > r2) std::swap(r1, r2);
      if (r1 > 0.0 && r1 < 1.0) brk[n_brk++] = r1;
      if (r2 > r1 && r2 > 0.0 && r2 < 1.0) brk[n_brk++] = r2;
    }
  } else if (b != 0.0) {
    const double r = -c / b;
    if (r > 0.0 && r < 1.0) brk[n_brk++] = r;
  }
  brk[n_brk++] = 1.0;

  CrossingResult result;
  double g_lo = cubic.eval(0.0) - level;
  for (int i = 0; i + 1 < n_brk; ++i) {
    const double hi = brk[i + 1];
    const double g_hi = cubic.eval(hi) - level;
    if (event_direction_matches(direction, g_lo, g_hi)) {
      result.found = true;
      result.s = refine_root(cubic, level, brk[i], hi, g_lo,
                             std::max(s_tol, 0.0));
      return result;
    }
    g_lo = g_hi;
  }
  return result;
}

}  // namespace pns::ehsim
