// The storage-node circuit of Fig. 2/Fig. 8 as an ODE system.
//
// One state variable: the capacitor voltage VC.
//
//   C * dVC/dt = I_source(VC, t) - I_load(VC, t) - VC / R_leak
//
// The source and load are polymorphic (PV array / bench supply; SoC load),
// so the same circuit serves the Simulink-style study (Section III), the
// controlled-supply experiment (Fig. 11) and the full solar runs
// (Figs. 12-14).
#pragma once

#include "ehsim/capacitor.hpp"
#include "ehsim/loads.hpp"
#include "ehsim/ode.hpp"
#include "ehsim/sources.hpp"

namespace pns::ehsim {

/// Single-node harvester + capacitor + load circuit.
class EhCircuit : public OdeSystem {
 public:
  /// Both `source` and `load` are borrowed and must outlive the circuit.
  EhCircuit(const CurrentSource& source, const Load& load, Capacitor cap);

  std::size_t dimension() const override { return 1; }

  void derivatives(double t, std::span<const double> y,
                   std::span<double> dydt) const override;

  const Capacitor& capacitor() const { return cap_; }

  /// The harvester feeding the node (borrowed at construction).
  const CurrentSource& source() const { return *source_; }

  /// Net current into the node at voltage v, time t (A).
  double net_current(double v, double t) const;

  /// derivatives() with the source current supplied by the caller: the
  /// batched SIMD path (ehsim/solar_cell_simd.hpp) evaluates the PV
  /// solves packed across lanes and feeds each lane's current back
  /// through here. Must stay bit-identical to derivatives() when
  /// `i_source == source().current(v, t)`.
  double derivative_with_source(double t, double v, double i_source) const;

  /// Latest time T >= t such that the whole right-hand side is provably
  /// time-invariant on [t, T]: the minimum of the source's and the load's
  /// constant_until (capacitor leakage depends on V only). On such spans
  /// the ODE is autonomous, which is what licenses the engine's
  /// steady-state coasting jump.
  double time_invariant_until(double t) const;

  /// Finds the equilibrium node voltage in [v_lo, v_hi] where net current
  /// is zero, by bisection; returns the boundary with smaller |net| when no
  /// sign change exists in the bracket.
  double equilibrium_voltage(double t, double v_lo, double v_hi) const;

 private:
  const CurrentSource* source_;
  const Load* load_;
  Capacitor cap_;
};

}  // namespace pns::ehsim
