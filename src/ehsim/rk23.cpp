#include "ehsim/rk23.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ehsim/dense_output.hpp"
#include "util/contracts.hpp"

namespace pns::ehsim {
namespace {

double error_norm(std::span<const double> err, std::span<const double> y0,
                  std::span<const double> y1, double rel_tol,
                  double abs_tol) {
  double acc = 0.0;
  for (std::size_t i = 0; i < err.size(); ++i) {
    const double scale =
        abs_tol + rel_tol * std::max(std::abs(y0[i]), std::abs(y1[i]));
    const double e = err[i] / scale;
    acc += e * e;
  }
  return std::sqrt(acc / static_cast<double>(err.size()));
}

}  // namespace

Rk23Integrator::Rk23Integrator(const OdeSystem& system, Rk23Options options)
    : system_(&system), opt_(options) {
  PNS_EXPECTS(opt_.rel_tol > 0.0);
  PNS_EXPECTS(opt_.abs_tol > 0.0);
  PNS_EXPECTS(opt_.max_step > 0.0);
  const std::size_t n = system_->dimension();
  PNS_EXPECTS(n >= 1);
  y_.resize(n);
  f0_.resize(n);
  step_y0_.resize(n);
  step_y1_.resize(n);
  step_f0_.resize(n);
  step_f1_.resize(n);
  k1_.resize(n);
  k2_.resize(n);
  k3_.resize(n);
  k4_.resize(n);
  ytmp_.resize(n);
  yerr_.resize(n);
  ynew_.resize(n);
  event_y_.resize(n);
}

void Rk23Integrator::reset(double t0, std::span<const double> y0) {
  PNS_EXPECTS(y0.size() == y_.size());
  pi_.reset();
  t_ = t0;
  std::copy(y0.begin(), y0.end(), y_.begin());
  have_f0_ = false;
  h_ = opt_.initial_step;
  step_t0_ = step_t1_ = t0;
  std::copy(y0.begin(), y0.end(), step_y0_.begin());
  std::copy(y0.begin(), y0.end(), step_y1_.begin());
}

double Rk23Integrator::initial_step_guess(double t_end) const {
  // Tolerance-scaled norms of state and derivative (SciPy-style h0): the
  // first step should change the scaled state by about 1 %. Starting small
  // also avoids landing on isolated zeros of the embedded error estimator
  // (for y' = lambda*y the BS23 estimator vanishes at h*lambda = -1).
  double d0 = 0.0, d1 = 0.0;
  for (std::size_t i = 0; i < y_.size(); ++i) {
    const double scale = opt_.abs_tol + opt_.rel_tol * std::abs(y_[i]);
    d0 = std::max(d0, std::abs(y_[i]) / scale);
    d1 = std::max(d1, std::abs(f0_[i]) / scale);
  }
  double h = (d0 >= 1e-5 && d1 >= 1e-5) ? 0.01 * d0 / d1 : 1e-6;
  h = std::clamp(h, opt_.min_step * 10.0, opt_.max_step);
  return std::min(h, std::max(t_end - t_, opt_.min_step));
}

IntegrationResult Rk23Integrator::advance(double t_end,
                                          std::span<const EventSpec> events) {
  IntegrationResult result;
  if (!begin_window(t_end, events, result)) return result;
  while (step_window(result)) {
  }
  return result;
}

bool Rk23Integrator::begin_window(double t_end,
                                  std::span<const EventSpec> events,
                                  IntegrationResult& result) {
  result = {};
  result.t = t_;
  if (t_end <= t_) return false;

  if (g_prev_.size() < events.size()) {
    g_prev_.resize(events.size());
    g_curr_.resize(events.size());
  }

  if (!have_f0_) {
    system_->derivatives(t_, y_, std::span<double>(f0_));
    have_f0_ = true;
  }
  if (h_ <= 0.0) h_ = initial_step_guess(t_end);

  for (std::size_t e = 0; e < events.size(); ++e)
    g_prev_[e] = events[e].eval(t_, y_);

  win_t_end_ = t_end;
  win_events_ = events;
  win_steps_ = 0;
  return true;
}

bool Rk23Integrator::step_window(IntegrationResult& result) {
  const double t_end = win_t_end_;
  if (t_ < t_end) {
    PNS_ENSURES(++win_steps_ <= opt_.max_steps_per_call);

    const double h_limit = std::min(h_, opt_.max_step);
    double h = std::min(h_limit, t_end - t_);
    // True when this step is shortened only to land on t_end (a segment
    // boundary), not because the controller asked for a small step.
    const bool end_capped = h < h_limit;
    h = std::max(h, opt_.min_step);

    // Bogacki-Shampine tableau. k1 is the FSAL derivative from the
    // previous step (f0_).
    std::copy(f0_.begin(), f0_.end(), k1_.begin());

    for (std::size_t i = 0; i < y_.size(); ++i)
      ytmp_[i] = y_[i] + h * 0.5 * k1_[i];
    system_->derivatives(t_ + 0.5 * h, ytmp_, std::span<double>(k2_));

    for (std::size_t i = 0; i < y_.size(); ++i)
      ytmp_[i] = y_[i] + h * 0.75 * k2_[i];
    system_->derivatives(t_ + 0.75 * h, ytmp_, std::span<double>(k3_));

    for (std::size_t i = 0; i < y_.size(); ++i)
      ynew_[i] = y_[i] + h * (2.0 / 9.0 * k1_[i] + 1.0 / 3.0 * k2_[i] +
                              4.0 / 9.0 * k3_[i]);
    system_->derivatives(t_ + h, ynew_, std::span<double>(k4_));

    // Embedded 2nd-order error estimate.
    for (std::size_t i = 0; i < y_.size(); ++i) {
      const double z = y_[i] + h * (7.0 / 24.0 * k1_[i] + 0.25 * k2_[i] +
                                    1.0 / 3.0 * k3_[i] + 0.125 * k4_[i]);
      yerr_[i] = ynew_[i] - z;
    }

    const double err =
        error_norm(yerr_, y_, ynew_, opt_.rel_tol, opt_.abs_tol);

    return finish_attempt(h, end_capped, h_limit, err, result);
  }

  result.t = t_;
  return false;
}

bool Rk23Integrator::attempt_open(Rk23StepAttempt& at,
                                  IntegrationResult& result) {
  PNS_EXPECTS(y_.size() == 1);
  if (t_ < win_t_end_) {
    PNS_ENSURES(++win_steps_ <= opt_.max_steps_per_call);

    const double h_limit = std::min(h_, opt_.max_step);
    double h = std::min(h_limit, win_t_end_ - t_);
    const bool end_capped = h < h_limit;
    h = std::max(h, opt_.min_step);

    at.t = t_;
    at.y = y_[0];
    at.h = h;
    at.k1 = f0_[0];
    at.end_capped = end_capped;
    at.h_limit = h_limit;
    return true;
  }

  result.t = t_;
  return false;
}

bool Rk23Integrator::attempt_close(const Rk23StepAttempt& at,
                                   IntegrationResult& result) {
  k1_[0] = at.k1;
  k2_[0] = at.k2;
  k3_[0] = at.k3;
  k4_[0] = at.k4;
  ynew_[0] = at.ynew;
  yerr_[0] = at.yerr;
  return finish_attempt(at.h, at.end_capped, at.h_limit, at.err, result);
}

bool Rk23Integrator::finish_attempt(double h, bool end_capped,
                                    double h_limit, double err,
                                    IntegrationResult& result) {
  const std::span<const EventSpec> events = win_events_;
  if (err > 1.0 && h > opt_.min_step) {
    ++total_rejected_;
    ++result.rejected_steps;
    h_ = h * (opt_.step_control == StepControl::kPi
                  ? pi_.on_rejected(err)
                  : std::max(0.2, 0.9 * std::pow(err, -1.0 / 3.0)));
    return true;
  }
  {

    // Accept the step.
    step_t0_ = t_;
    step_t1_ = t_ + h;
    std::copy(y_.begin(), y_.end(), step_y0_.begin());
    std::copy(ynew_.begin(), ynew_.end(), step_y1_.begin());
    std::copy(k1_.begin(), k1_.end(), step_f0_.begin());
    std::copy(k4_.begin(), k4_.end(), step_f1_.begin());

    t_ = step_t1_;
    std::copy(ynew_.begin(), ynew_.end(), y_.begin());
    std::copy(k4_.begin(), k4_.end(), f0_.begin());  // FSAL
    ++total_steps_;
    ++result.steps_taken;

    // Grow the step for the next iteration.
    if (opt_.step_control == StepControl::kPi) {
      // A step truncated to land exactly on t_end says nothing about
      // what the error tolerates: never let it shrink the learned step
      // size, and keep its artificially tiny error out of the PI
      // history (it would damp the next full step's growth). The
      // co-simulation loop ends a segment every few dozen ms, so paying
      // a re-grow at each boundary would dominate.
      const double grown =
          h * pi_.on_accepted(err, /*record_history=*/!end_capped);
      h_ = end_capped ? std::max(h_limit, grown) : grown;
    } else {
      const double growth =
          err > 1e-12 ? 0.9 * std::pow(err, -1.0 / 3.0) : 5.0;
      h_ = h * std::clamp(growth, 0.2, 5.0);
    }

    // --- event detection over the accepted step ------------------------
    double earliest_t = step_t1_;
    int earliest_tag = 0;
    std::size_t earliest_event = 0;
    bool earliest_dense = false;
    bool fired = false;
    // Dense-output cubic of component 0, built on demand once per step
    // (threshold events in kDenseRoot mode all localise against it).
    HermiteCubic cubic;
    bool have_cubic = false;
    for (std::size_t e = 0; e < events.size(); ++e) {
      g_curr_[e] = events[e].eval(t_, y_);
      if (!event_direction_matches(events[e].direction, g_prev_[e], g_curr_[e]))
        continue;
      double root_t = step_t1_;
      bool localised = false;
      if (opt_.event_localization == EventLocalization::kDenseRoot &&
          events[e].is_threshold() && h > 0.0) {
        if (!have_cubic) {
          cubic = HermiteCubic::from_step(h, step_y0_[0], step_y1_[0],
                                          step_f0_[0], step_f1_[0]);
          have_cubic = true;
        }
        const CrossingResult cr = earliest_crossing(
            cubic, events[e].level, events[e].direction, opt_.event_tol / h);
        if (cr.found) {
          root_t = step_t0_ + cr.s * h;
          localised = true;
        }
      }
      if (!localised) {
        // Bisect for the root inside [step_t0_, step_t1_].
        double lo = step_t0_, hi = step_t1_;
        double g_lo = g_prev_[e];
        for (int it = 0; it < 64 && (hi - lo) > opt_.event_tol; ++it) {
          const double mid = 0.5 * (lo + hi);
          const double g_mid = event_value(events[e], mid);
          const bool crossed =
              event_direction_matches(events[e].direction, g_lo, g_mid);
          if (crossed) {
            hi = mid;
          } else {
            lo = mid;
            g_lo = g_mid;
          }
        }
        root_t = hi;
      }
      if (!fired || root_t < earliest_t) {
        earliest_t = root_t;
        earliest_tag = events[e].tag;
        earliest_event = e;
        earliest_dense = localised;
        fired = true;
      }
    }

    if (fired) {
      // Rewind the trajectory to the event time.
      interpolate(earliest_t, std::span<double>(ytmp_));
      t_ = earliest_t;
      std::copy(ytmp_.begin(), ytmp_.end(), y_.begin());
      have_f0_ = false;  // state changed off the step grid
      // A dense-output root sits on the crossed side of the *cubic*, but
      // mapping s -> t -> s through interpolate() can land the committed
      // state an ulp short of the threshold. Left there, the next window
      // re-arms the same event on the un-crossed baseline and fires it at
      // the same instant forever (the crossing now sits at s = 0, where
      // t0 + s*h rounds back to t0 and the trajectory never advances).
      // Snap component 0 onto the threshold -- within the event tolerance
      // by construction, and a no-op whenever the round-trip already
      // landed on the crossed side. Bisection roots are evaluated through
      // interpolate() itself and cannot undershoot, so the original rk23
      // path is untouched bit for bit.
      if (earliest_dense) {
        const EventSpec& ev = events[earliest_event];
        const double g = y_[0] - ev.level;
        const bool undershot =
            (ev.direction == EventDirection::kRising && g < 0.0) ||
            (ev.direction == EventDirection::kFalling && g > 0.0) ||
            (ev.direction == EventDirection::kAny && g != 0.0 &&
             (g < 0.0) == (g_prev_[earliest_event] < 0.0));
        if (undershot) y_[0] = ev.level;
      }
      result.t = t_;
      result.event_fired = true;
      result.event_tag = earliest_tag;
      return false;
    }

    std::swap(g_prev_, g_curr_);
    return true;
  }
}

double Rk23Integrator::min_event_margin() const {
  double m = std::numeric_limits<double>::infinity();
  for (std::size_t e = 0; e < win_events_.size(); ++e)
    m = std::min(m, std::abs(g_prev_[e]));
  return m;
}

void Rk23Integrator::interpolate(double t, std::span<double> y_out) const {
  for (std::size_t i = 0; i < y_out.size(); ++i)
    y_out[i] = interpolate_one(t, i);
}

double Rk23Integrator::interpolate_one(double t, std::size_t i) const {
  const double h = step_t1_ - step_t0_;
  if (h <= 0.0) return step_y1_[i];
  const double s = std::clamp((t - step_t0_) / h, 0.0, 1.0);
  const double s2 = s * s, s3 = s2 * s;
  const double h00 = 2 * s3 - 3 * s2 + 1;
  const double h10 = s3 - 2 * s2 + s;
  const double h01 = -2 * s3 + 3 * s2;
  const double h11 = s3 - s2;
  return h00 * step_y0_[i] + h * h10 * step_f0_[i] + h01 * step_y1_[i] +
         h * h11 * step_f1_[i];
}

double Rk23Integrator::event_value(const EventSpec& ev, double t) {
  if (ev.is_threshold()) return interpolate_one(t, 0) - ev.level;
  interpolate(t, std::span<double>(event_y_));
  return ev.eval(t, event_y_);
}

}  // namespace pns::ehsim
