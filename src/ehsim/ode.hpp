// ODE system interface and event specification.
//
// The energy-harvesting circuit (Fig. 2 of the paper) is a stiff-ish first
// order system d(VC)/dt = (I_harvest - I_load) / C with discontinuous load
// current (OPP changes) and threshold events (comparator crossings,
// brownout). The paper validates its controller with Matlab's ODE23; we
// provide the same integrator family (Bogacki-Shampine RK2(3)) plus event
// localisation, defined against this minimal system interface.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace pns::ehsim {

/// Right-hand side of an autonomous-in-form ODE y' = f(t, y).
///
/// Implementations must be side-effect free: the integrator evaluates the
/// derivative at trial points that may be discarded.
class OdeSystem {
 public:
  virtual ~OdeSystem() = default;

  /// Number of state variables.
  virtual std::size_t dimension() const = 0;

  /// Writes f(t, y) into dydt (both spans have dimension() elements).
  virtual void derivatives(double t, std::span<const double> y,
                           std::span<double> dydt) const = 0;
};

/// Crossing direction an event fires on.
enum class EventDirection {
  kRising,   ///< g goes from negative to non-negative
  kFalling,  ///< g goes from positive to non-positive
  kAny,      ///< any sign change
};

/// The discrete crossing test: did g move across zero in `direction`
/// between two samples? Single definition shared by the integrator's
/// event gate (rk23.cpp) and the dense-output root search
/// (dense_output.cpp) -- the two MUST agree or the root search could
/// miss a crossing the gate fired on.
inline bool event_direction_matches(EventDirection direction, double g0,
                                    double g1) {
  switch (direction) {
    case EventDirection::kRising:
      return g0 < 0.0 && g1 >= 0.0;
    case EventDirection::kFalling:
      return g0 > 0.0 && g1 <= 0.0;
    case EventDirection::kAny:
      return (g0 < 0.0 && g1 >= 0.0) || (g0 > 0.0 && g1 <= 0.0);
  }
  return false;
}

/// Scalar event function g(t, y); a root of g marks the event.
///
/// Two representations share this struct:
///   * the dominant case -- a linear threshold on the first state variable,
///     g(t, y) = y[0] - level -- is stored as plain data (`g` left empty),
///     so evaluating it is a subtract instead of a type-erased call and
///     building it never allocates;
///   * anything else supplies a callable `g`.
/// Use EventSpec::threshold() for the first form; aggregate-initialising
/// `{fn, direction, tag}` keeps working for the general form.
struct EventSpec {
  std::function<double(double t, std::span<const double> y)> g;
  EventDirection direction = EventDirection::kAny;
  /// Opaque tag returned to the caller when this event fires.
  int tag = 0;
  /// Threshold level for the fast path (used only when `g` is empty).
  double level = 0.0;

  /// Builds the allocation-free "y[0] crosses `level`" event.
  static EventSpec threshold(double level, EventDirection direction,
                             int tag) {
    EventSpec e;
    e.direction = direction;
    e.tag = tag;
    e.level = level;
    return e;
  }

  /// True when this is the data-only threshold form.
  bool is_threshold() const { return !g; }

  /// Evaluates the event function.
  double eval(double t, std::span<const double> y) const {
    return g ? g(t, y) : y[0] - level;
  }
};

/// Outcome of advancing an integrator to a time limit.
struct IntegrationResult {
  double t = 0.0;            ///< time reached
  bool event_fired = false;  ///< true if stopped by an event root
  int event_tag = 0;         ///< tag of the event that fired
  std::size_t steps_taken = 0;
  std::size_t rejected_steps = 0;
};

}  // namespace pns::ehsim
