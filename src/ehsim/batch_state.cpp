#include "ehsim/batch_state.hpp"

#include <algorithm>
#include <limits>

#include "ehsim/rk23.hpp"

namespace pns::ehsim {

const char* to_string(LaneStatus s) {
  switch (s) {
    case LaneStatus::kIdle: return "idle";
    case LaneStatus::kLockstep: return "lockstep";
    case LaneStatus::kTail: return "tail";
    case LaneStatus::kRetired: return "retired";
    case LaneStatus::kDone: return "done";
  }
  return "?";
}

void BatchState::resize(std::size_t n) {
  t.assign(n, 0.0);
  v.assign(n, 0.0);
  h.assign(n, 0.0);
  f.assign(n, std::numeric_limits<double>::quiet_NaN());
  margin.assign(n, std::numeric_limits<double>::infinity());
  t_stop.assign(n, 0.0);
  rounds.assign(n, 0);
  status.assign(n, LaneStatus::kIdle);
  lockstep_steps.assign(n, 0);
  tail_steps.assign(n, 0);
}

void BatchState::observe(std::size_t i, const Rk23Integrator& integrator) {
  t[i] = integrator.time();
  v[i] = integrator.state()[0];
  h[i] = integrator.step_size();
  f[i] = integrator.have_fsal()
             ? integrator.fsal_derivative(0)
             : std::numeric_limits<double>::quiet_NaN();
  margin[i] = integrator.min_event_margin();
}

std::size_t BatchState::count(LaneStatus s) const {
  return static_cast<std::size_t>(
      std::count(status.begin(), status.end(), s));
}

bool BatchState::all_done() const {
  return std::all_of(status.begin(), status.end(),
                     [](LaneStatus s) { return s == LaneStatus::kDone; });
}

}  // namespace pns::ehsim
