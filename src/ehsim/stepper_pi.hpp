// Proportional-integral step-size controller for embedded RK pairs.
//
// The classic per-step rule h <- h * 0.9 * err^(-1/k) reacts only to the
// *current* scaled error, so on smooth problems it oscillates between
// growth and rejection (grow 5x, reject, shrink, grow...). The PI
// controller of Gustafsson / Soderlind adds an integral term -- the
// previous accepted step's error -- which damps that limit cycle: the
// step size converges to the largest h the tolerance admits and stays
// there, cutting both rejected steps and derivative evaluations. This is
// the control law behind the `rk23pi` integrator kind.
#pragma once

#include <cstddef>

namespace pns::ehsim {

/// Tuning of the PI control law. Exponents follow the standard
/// PI.4.2-style choice beta1 = 0.7/k, beta2 = 0.4/k for a method whose
/// local error is O(h^k) (k = 3 for the Bogacki-Shampine 2(3) pair).
struct PiControllerOptions {
  double order = 3.0;        ///< local-error order k of the embedded pair
  double safety = 0.9;       ///< multiplicative safety factor
  double beta1 = 0.7;        ///< proportional exponent, divided by order
  double beta2 = 0.4;        ///< integral exponent, divided by order
  double min_factor = 0.2;   ///< hardest per-step shrink
  double max_factor = 5.0;   ///< hardest per-step growth
};

/// Stateful step-size controller. Feed it every scaled error norm (the
/// accept test is err <= 1) and it returns the factor to apply to h.
/// Deterministic: the factor is a pure function of the error sequence.
class PiStepController {
 public:
  explicit PiStepController(PiControllerOptions options = {});

  /// Forgets the error history (call at integrator reset and across
  /// discontinuities, where the old error is meaningless).
  void reset();

  /// Factor for the next step after an *accepted* step with scaled error
  /// `err` (<= 1). Growth right after a rejection is capped at 1, the
  /// standard guard against re-entering the rejection region.
  /// `record_history = false` computes the factor without feeding `err`
  /// into the integral term -- for steps artificially truncated to land
  /// on a segment boundary, whose tiny error says nothing about the
  /// dynamics and would otherwise shrink the next full step.
  double on_accepted(double err, bool record_history = true);

  /// Factor for retrying a *rejected* step with scaled error `err` (> 1).
  /// Always <= 1.
  double on_rejected(double err);

  std::size_t rejections() const { return rejections_; }

 private:
  PiControllerOptions opt_;
  double prev_err_ = 0.0;     // last accepted step's error (0 = none yet)
  bool just_rejected_ = false;
  std::size_t rejections_ = 0;
};

}  // namespace pns::ehsim
