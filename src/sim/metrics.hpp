// Metric accumulation for co-simulation runs.
//
// Accumulates, segment by segment, everything the paper's evaluation
// reports: voltage stability (fraction of time within +/-5 % of the target
// voltage, Fig. 12), energy harvested vs consumed (Fig. 14), instructions
// and renders (Table II), lifetime to first brownout (Table II), and
// voltage dwell histograms (Fig. 13).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "ehsim/sources.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace pns::sim {

/// Per-domain accounting of a multi-domain run (see soc/topology.hpp).
/// Accumulated by the engine alongside the board totals; empty on
/// legacy single-domain platforms.
struct DomainMetrics {
  std::string name;
  double energy_j = 0.0;       ///< domain energy consumed while on
  double instructions = 0.0;   ///< workload-share-scaled instructions
  /// Time-averaged fraction of the (base-exclusive) domain power budget
  /// the arbiter allocated to this domain while the board was on.
  double mean_budget_share = 0.0;

  friend bool operator==(const DomainMetrics&,
                         const DomainMetrics&) = default;
};

/// Final metrics of one run.
struct SimMetrics {
  double t_start = 0.0;
  double t_end = 0.0;

  /// Time from start to the first brownout; whole duration when none.
  double lifetime_s = 0.0;
  std::size_t brownouts = 0;

  double instructions = 0.0;
  double frames = 0.0;

  double energy_harvested_j = 0.0;  ///< source power into the node
  double energy_consumed_j = 0.0;   ///< load power out of the node

  double v_target = 0.0;        ///< band centre used for in-band fraction
  double band_fraction = 0.0;   ///< half-width as a fraction of v_target
  double time_in_band_s = 0.0;
  double uptime_s = 0.0;        ///< time spent in the ON state

  pns::RunningStats vc_stats;   ///< time-weighted node-voltage statistics

  /// Per-domain breakdown; empty unless the platform was compiled from
  /// a PlatformTopology.
  std::vector<DomainMetrics> domains;

  /// PV implicit-solve accounting of the run's source (zeroed when the
  /// source is not a PvSource). Observability only: deliberately NOT
  /// serialised by write_summary_row_json, so default CSV/JSON outputs
  /// stay byte-identical; pns_bench_report prints it.
  ehsim::PvSolveStats pv_solve;

  double duration() const { return t_end - t_start; }
  double fraction_in_band() const {
    const double d = duration();
    return d > 0.0 ? time_in_band_s / d : 0.0;
  }
  double renders_per_min() const {
    const double d = duration();
    return d > 0.0 ? frames * 60.0 / d : 0.0;
  }
  double avg_power_consumed_w() const {
    const double d = duration();
    return d > 0.0 ? energy_consumed_j / d : 0.0;
  }
};

/// Per-segment accumulator used by the engine's main loop.
class MetricsAccumulator {
 public:
  /// `v_target` and `band_fraction` define the +/- band of Fig. 12
  /// (the paper uses the array's MPP voltage and 5 %).
  MetricsAccumulator(double t_start, double v_target, double band_fraction);

  /// Accounts one integration segment. Voltages are the endpoint node
  /// voltages; powers are endpoint source/load powers (trapezoidal
  /// integration); `instr_rate` is the (constant) instruction rate over
  /// the segment; `on` whether the board executed.
  void add_segment(double t0, double t1, double v0, double v1,
                   double p_harv0, double p_harv1, double p_load,
                   double instr_rate, bool on);

  /// Records a brownout at time t.
  void on_brownout(double t);

  /// Adds a voltage-dwell histogram to be filled alongside (borrowed).
  void attach_histogram(pns::Histogram* h) { histogram_ = h; }

  /// Finalises and returns the metrics at end time `t_end`;
  /// `instr_per_frame` converts instructions to frames.
  SimMetrics finish(double t_end, double instr_per_frame) const;

 private:
  SimMetrics m_;
  std::optional<double> first_brownout_;
  pns::Histogram* histogram_ = nullptr;
};

/// Fraction of a linear segment [v0 -> v1] lying inside [lo, hi].
double band_overlap_fraction(double v0, double v1, double lo, double hi);

}  // namespace pns::sim
